// CRC accelerator walkthrough: watch the decompiler work on a real
// binary, then inspect the synthesized accelerator and its VHDL.
//
//	go run ./examples/crcaccel
package main

import (
	"fmt"
	"log"
	"strings"

	"binpart/internal/bench"
	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/synth"
	"binpart/internal/vhdl"
)

func main() {
	b, _ := bench.ByName("crc")
	img, err := b.Compile(2)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: binary parsing + CDFG creation.
	res, err := decompile.Decompile(img)
	if err != nil {
		log.Fatal(err)
	}
	f := res.Func("crc_kernel")
	fmt.Printf("== raw lifted CDFG: %d blocks, %d instructions\n",
		len(f.Blocks), f.NumInstrs())

	// Stage 2: decompiler optimizations.
	rep := dopt.Optimize(f)
	fmt.Printf("== after decompiler optimizations: %d instructions\n", f.NumInstrs())
	fmt.Printf("   stack slots promoted: %d, operators narrowed: %d (saving %d bits of datapath)\n",
		rep.Stack.SlotsPromoted, rep.Width.OpsNarrowed, rep.Width.BitsSaved)

	// Stage 3: control structure recovery.
	st := ir.Recover(f)
	for _, l := range st.Loops {
		trip := "unknown trip count"
		for _, iv := range l.Loop.IndVars {
			if n, ok := iv.TripCount(); ok {
				trip = fmt.Sprintf("trip count %d", n)
			}
		}
		fmt.Printf("   recovered %s loop at 0x%x (%s)\n", l.Shape, l.Loop.Header.Start, trip)
	}

	// Stage 4: behavioral synthesis of the hot loop.
	loops := ir.FindLoops(f)
	var hot *ir.Loop
	for _, l := range loops {
		if hot == nil || l.NumInstrs() > hot.NumInstrs() {
			hot = l
		}
	}
	design, err := synth.Synthesize(synth.LoopRegion(f, hot), img, synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== synthesized %s\n", design.Name)
	fmt.Printf("   clock %.2f ns (%.0f MHz), %d slices, %d multipliers, %d BRAMs (%d equivalent gates)\n",
		design.ClockNs, design.ClockMHz(), design.Area.Slices,
		design.Area.Mult18, design.Area.BRAM, design.GateEquivalent())
	for _, p := range design.Pipelines {
		fmt.Printf("   pipelined body block %d: II=%d, depth=%d\n", p.BodyIndex, p.II, p.Depth)
	}
	for _, m := range design.MemObjects {
		fmt.Printf("   array %q (%d bytes) moved into block RAM\n", m.Sym, m.Bytes)
	}

	// Stage 5: VHDL.
	text, err := vhdl.Emit(design)
	if err != nil {
		log.Fatal(err)
	}
	if err := vhdl.Check(text); err != nil {
		log.Fatalf("generated VHDL failed structural check: %v", err)
	}
	lines := strings.Split(text, "\n")
	fmt.Printf("== VHDL (%d lines, structurally checked); first 20:\n", len(lines))
	for i := 0; i < 20 && i < len(lines); i++ {
		fmt.Printf("   %s\n", lines[i])
	}
}
