// Quickstart: compile a small program, partition its binary onto the
// default MIPS/FPGA platform, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"binpart/internal/core"
	"binpart/internal/mcc"
)

// The input to the partitioner is a BINARY — the compiler here is just a
// convenient way to make one. Any MIPS SBF image works, whatever produced
// it; that independence is the point of the approach.
const program = `
int samples[64];

int smooth(int n) {
	int i;
	int acc = 0;
	for (i = 1; i < 63; i++) {
		int v = (samples[i-1] + 2*samples[i] + samples[i+1]) >> 2;
		acc += v;
	}
	return acc;
}

int main() {
	int i;
	int seed = 7;
	for (i = 0; i < 64; i++) {
		seed = seed * 1103 + 12345;
		samples[i] = (seed >> 8) & 255;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 50; frame++) {
		total += smooth(64);
	}
	return total & 0xffff;
}
`

func main() {
	img, err := mcc.Compile(program, mcc.Options{OptLevel: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions, %d bytes of data\n", len(img.Text), len(img.Data))

	rep, err := core.Run(img, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("software-only run: %d cycles, exit code %d\n", rep.SWCycles, rep.ExitCode)
	fmt.Printf("functions recovered: %d (failed: %d)\n",
		rep.Recovery.FuncsRecovered, rep.Recovery.FuncsFailed)
	for _, r := range rep.Regions {
		state := "software"
		if r.Selected {
			state = fmt.Sprintf("HARDWARE (step %d)", r.Step)
		}
		fmt.Printf("  region %-28s %8d sw cycles -> %s\n", r.Name, r.SWCycles, state)
	}
	m := rep.Metrics
	fmt.Printf("application speedup: %.2fx\n", m.AppSpeedup)
	fmt.Printf("kernel speedup:      %.2fx\n", m.KernelSpeedup)
	fmt.Printf("energy savings:      %.1f%%\n", 100*m.EnergySavings)
	fmt.Printf("FPGA area:           %d equivalent gates\n", m.AreaGates)
}
