// Device sizing study: find the smallest Virtex-II part that meets a
// speedup goal for a workload — the procurement question the paper's
// "different FPGA sizes" evaluation enables.
//
//	go run ./examples/fpgasweep
//	go run ./examples/fpgasweep -stats   # per-stage span table on stderr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"binpart/internal/bench"
	"binpart/internal/core"
	"binpart/internal/fpga"
	"binpart/internal/obs"
	"binpart/internal/platform"
)

const speedupGoal = 8.0

func main() {
	stats := flag.Bool("stats", false, "print the per-stage span table to stderr")
	flag.Parse()

	var rec *obs.Recorder
	if *stats {
		rec = obs.NewRecorder()
	}

	workload := []string{"fir", "brev", "autcor"}
	fmt.Printf("workload: %v, goal: %.1fx average speedup\n\n", workload, speedupGoal)
	fmt.Printf("%-10s %9s %9s %9s   %s\n", "device", "slices", "mult18", "speedup", "verdict")

	// The heavy stages — profiling, decompilation, synthesis — never
	// observe the FPGA device, so analyze each binary once and price
	// every device with a microsecond Evaluate call.
	var analyses []*core.Analysis
	var scopes []*obs.Scope
	for _, name := range workload {
		b, ok := bench.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		img, err := b.Compile(1)
		if err != nil {
			log.Fatal(err)
		}
		sc := rec.Scope(name, 1, 0)
		a, err := core.AnalyzeScoped(img, core.DefaultOptions(), nil, sc)
		if err != nil {
			log.Fatal(err)
		}
		analyses = append(analyses, a)
		scopes = append(scopes, sc)
	}

	var pick string
	for _, dev := range fpga.Catalog {
		var sum float64
		for i, a := range analyses {
			rep := core.EvaluateScoped(a, platform.MIPS(200, dev), 0, core.AlgNinetyTen, scopes[i])
			sum += rep.Metrics.AppSpeedup
		}
		avg := sum / float64(len(analyses))
		verdict := "too small"
		if avg >= speedupGoal {
			verdict = "meets goal"
			if pick == "" {
				pick = dev.Name
				verdict = "meets goal  <-- cheapest"
			}
		}
		fmt.Printf("%-10s %9d %9d %8.2fx   %s\n", dev.Name, dev.Slices, dev.Mult18, avg, verdict)
	}
	if *stats {
		fmt.Fprint(os.Stderr, rec.Table())
	}
	if pick == "" {
		fmt.Println("\nno device in the catalog meets the goal")
		return
	}
	fmt.Printf("\nrecommended device: %s\n", pick)
}
