// Dynamic ("warp processing") demo: the paper motivates its fast
// partitioning heuristic by the intent to integrate with dynamic
// partitioning and dynamic synthesis (Lysecky/Vahid's warp processing).
// This example plays that scenario out: an application starts running in
// software; an on-chip tool profiles it, partitions the BINARY on the
// fly, and from the detection point onward the kernels run in hardware.
//
//	go run ./examples/warp
package main

import (
	"fmt"
	"log"

	"binpart/internal/bench"
	"binpart/internal/core"
)

func main() {
	b, _ := bench.ByName("fir")
	img, err := b.Compile(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: application executes in software on the MIPS core")

	// The dynamic tool runs the whole flow on the live binary. Everything
	// it needs — profile, CDFG, partition, RTL — comes from the binary
	// alone; no source code exists at run time.
	rep, err := core.Run(img, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: on-chip partitioner runs (selection took %v — fast enough for run-time use)\n",
		rep.PartitionTime)
	for _, r := range rep.SelectedRegions() {
		fmt.Printf("  detected hot region %s: %d cycles observed, mapping to FPGA (%d gates)\n",
			r.Name, r.SWCycles, r.AreaGates)
	}

	// Model the amortization: the first W executions run in software
	// (while the tool works and the fabric configures), the rest in
	// hardware.
	swT := rep.Metrics.SWTimeS
	hwT := rep.Metrics.HWSWTimeS
	fmt.Println("phase 3: kernels execute in hardware from now on")
	fmt.Printf("\nsteady-state speedup: %.2fx\n", rep.Metrics.AppSpeedup)
	fmt.Println("amortization (speedup over N periods incl. one software warm-up period):")
	for _, n := range []int{1, 2, 5, 10, 100} {
		total := swT + float64(n-1)*hwT
		fmt.Printf("  N=%3d: %.2fx\n", n, float64(n)*swT/total)
	}
}
