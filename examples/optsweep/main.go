// Compiler-independence study: partition the SAME program compiled at
// -O0 through -O3 and compare. This reproduces the paper's key argument —
// binary-level partitioning works regardless of the compiler's
// optimization level, and rerolling/promotion undo the harmful ones.
//
//	go run ./examples/optsweep
package main

import (
	"fmt"
	"log"

	"binpart/internal/bench"
	"binpart/internal/core"
)

func main() {
	b, ok := bench.ByName("matmul")
	if !ok {
		log.Fatal("matmul benchmark missing")
	}
	fmt.Printf("benchmark: %s (%s)\n\n", b.Name, b.Description)
	fmt.Printf("%5s %12s %12s %9s %9s %10s %10s\n",
		"level", "sw cycles", "binary size", "speedup", "energy", "rerolled", "promoted")
	for lvl := 0; lvl <= 3; lvl++ {
		img, err := b.Compile(lvl)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.Run(img, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -O%d %12d %10dw %8.2fx %8.1f%% %10d %10d\n",
			lvl, rep.SWCycles, len(img.Text), rep.Metrics.AppSpeedup,
			100*rep.Metrics.EnergySavings,
			rep.Recovery.RerolledLoops, rep.Recovery.PromotedMultiplies)
	}
	fmt.Println("\nReading the table:")
	fmt.Println(" - software cycles fall as the compiler optimizes harder;")
	fmt.Println(" - speedup stays significant at EVERY level (compiler independence);")
	fmt.Println(" - at -O3 the decompiler rerolls the unrolled loops, and at -O2/-O3 it")
	fmt.Println("   promotes strength-reduced shift/add chains back into multiplies.")
}
