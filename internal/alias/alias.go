// Package alias implements the memory-reference analysis the reproduced
// paper uses in two places: partitioning step 2 ("use alias information to
// find regions of code that access the same memory locations as the loops
// in the hardware partition", so arrays can move into FPGA block RAM) and
// memory disambiguation inside behavioral synthesis (accesses to distinct
// arrays need not be serialized).
//
// The analysis resolves each load/store to a base data object by chasing
// the address computation back to a constant section address, using the
// binary's data symbols for object extents. Stack-relative accesses
// resolve to a per-function pseudo object; anything else is unknown and
// conflicts with everything.
package alias

import (
	"sort"

	"binpart/internal/binimg"
	"binpart/internal/ir"
)

// Ref describes the resolved target of one memory access.
type Ref struct {
	// Sym is the data object's symbol name; "<stack>" for frame accesses,
	// "" when unresolved.
	Sym string
	// Base is the object's start address (0 for stack/unknown).
	Base uint32
	// Size is the object's byte size (0 if unknown).
	Size uint32
	// Stride is the access stride in bytes per loop iteration when the
	// address is driven by an induction variable; 0 if unknown/fixed.
	Stride int32
	// Known reports whether the object was resolved at all.
	Known bool
}

// Conflicts reports whether two references may touch the same memory.
func (r Ref) Conflicts(o Ref) bool {
	if !r.Known || !o.Known {
		return true
	}
	return r.Sym == o.Sym
}

// Info holds the per-function analysis results.
type Info struct {
	refs map[*ir.Instr]Ref
}

// RefOf returns the resolved reference of a load/store instruction.
func (in *Info) RefOf(i *ir.Instr) Ref {
	if r, ok := in.refs[i]; ok {
		return r
	}
	return Ref{}
}

// Footprint returns the sorted set of data objects the given blocks
// access, with unknown accesses reported via the second result.
func (in *Info) Footprint(blocks map[int]*ir.Block) (syms []string, hasUnknown bool) {
	seen := map[string]bool{}
	for _, b := range blocks {
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			if instr.Op != ir.Load && instr.Op != ir.Store {
				continue
			}
			r := in.RefOf(instr)
			if !r.Known {
				hasUnknown = true
				continue
			}
			if r.Sym != "<stack>" && !seen[r.Sym] {
				seen[r.Sym] = true
				syms = append(syms, r.Sym)
			}
		}
	}
	sort.Strings(syms)
	return syms, hasUnknown
}

// FuncFootprint returns the data objects accessed anywhere in f.
func (in *Info) FuncFootprint(f *ir.Func) (syms []string, hasUnknown bool) {
	m := map[int]*ir.Block{}
	for _, b := range f.Blocks {
		m[b.Index] = b
	}
	return in.Footprint(m)
}

// Analyze resolves every memory access in f against the image's data
// symbols. Run it after the dopt pipeline: constant propagation must have
// exposed the base addresses first.
func Analyze(f *ir.Func, img *binimg.Image) *Info {
	info := &Info{refs: map[*ir.Instr]Ref{}}
	dataSyms := dataSymbols(img)

	// Induction steps per loop for stride inference.
	loops := ir.FindLoops(f)
	stepOf := map[ir.Loc]int32{}
	for _, l := range loops {
		for _, iv := range l.IndVars {
			stepOf[iv.Loc] = iv.Step
		}
	}

	for _, b := range f.Blocks {
		// In-block reaching definitions for address chasing.
		lastDef := map[ir.Loc]int{}
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			if instr.Op == ir.Load || instr.Op == ir.Store {
				base := instr.A
				if instr.Op == ir.Store {
					base = instr.B
				}
				ref := resolve(b, base, int32(instr.Off), lastDef, dataSyms, stepOf, 8)
				info.refs[instr] = ref
			}
			if instr.HasDst() {
				lastDef[instr.Dst] = i
			}
		}
	}
	return info
}

type dataSym struct {
	name string
	addr uint32
	size uint32
}

func dataSymbols(img *binimg.Image) []dataSym {
	var out []dataSym
	for _, s := range img.Symbols {
		if !img.InText(s.Addr) && s.Size > 0 {
			out = append(out, dataSym{s.Name, s.Addr, s.Size})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// resolve chases an address operand to (object, stride). addend
// accumulates constant displacement.
func resolve(b *ir.Block, a ir.Arg, addend int32, lastDef map[ir.Loc]int, syms []dataSym, stepOf map[ir.Loc]int32, depth int) Ref {
	if depth == 0 {
		return Ref{}
	}
	if a.IsConst {
		return lookup(uint32(a.Val)+uint32(addend), syms)
	}
	if a.Loc == ir.RegSP || a.Loc == ir.RegFP {
		return Ref{Sym: "<stack>", Known: true}
	}
	di, ok := lastDef[a.Loc]
	if !ok {
		// Defined outside the block: if it is an induction variable, the
		// access walks memory but the base is unknown from here.
		return Ref{}
	}
	in := &b.Instrs[di]
	switch in.Op {
	case ir.Move:
		if in.A.IsConst {
			return lookup(uint32(in.A.Val)+uint32(addend), syms)
		}
		return resolveBefore(b, in.A, addend, di, syms, stepOf, depth-1)
	case ir.Add:
		switch {
		case in.A.IsConst && !in.B.IsConst:
			r := resolveBefore(b, in.B, addend+in.A.Val, di, syms, stepOf, depth-1)
			if !r.Known {
				// Classic pattern: constant base + variable offset.
				r = lookup(uint32(in.A.Val), syms)
				r.Stride = strideOf(b, in.B, di, stepOf, depth-1)
			}
			return r
		case !in.A.IsConst && in.B.IsConst:
			r := resolveBefore(b, in.A, addend+in.B.Val, di, syms, stepOf, depth-1)
			return r
		case !in.A.IsConst && !in.B.IsConst:
			// base + offset where either side may be the constant-rooted
			// base; try both.
			if r := resolveBefore(b, in.A, addend, di, syms, stepOf, depth-1); r.Known {
				r.Stride = strideOf(b, in.B, di, stepOf, depth-1)
				return r
			}
			if r := resolveBefore(b, in.B, addend, di, syms, stepOf, depth-1); r.Known {
				r.Stride = strideOf(b, in.A, di, stepOf, depth-1)
				return r
			}
		}
	}
	return Ref{}
}

// resolveBefore re-resolves an operand using only definitions before
// index bound.
func resolveBefore(b *ir.Block, a ir.Arg, addend int32, bound int, syms []dataSym, stepOf map[ir.Loc]int32, depth int) Ref {
	lastDef := map[ir.Loc]int{}
	for i := 0; i < bound; i++ {
		if b.Instrs[i].HasDst() {
			lastDef[b.Instrs[i].Dst] = i
		}
	}
	return resolve(b, a, addend, lastDef, syms, stepOf, depth)
}

// strideOf infers the per-iteration byte stride of an offset expression:
// an induction variable possibly scaled by a constant shift or multiply.
func strideOf(b *ir.Block, a ir.Arg, bound int, stepOf map[ir.Loc]int32, depth int) int32 {
	if a.IsConst || depth == 0 {
		return 0
	}
	if s, ok := stepOf[a.Loc]; ok {
		return s
	}
	var def *ir.Instr
	for i := 0; i < bound; i++ {
		in := &b.Instrs[i]
		if in.HasDst() && in.Dst == a.Loc {
			def = in
		}
	}
	if def == nil {
		return 0
	}
	switch def.Op {
	case ir.Shl:
		if def.B.IsConst && !def.A.IsConst {
			if s, ok := stepOf[def.A.Loc]; ok {
				return s << uint(def.B.Val&31)
			}
		}
	case ir.Mul:
		if def.B.IsConst && !def.A.IsConst {
			if s, ok := stepOf[def.A.Loc]; ok {
				return s * def.B.Val
			}
		}
	case ir.Add:
		if !def.A.IsConst {
			if s, ok := stepOf[def.A.Loc]; ok {
				return s
			}
		}
	}
	return 0
}

func lookup(addr uint32, syms []dataSym) Ref {
	i := sort.Search(len(syms), func(i int) bool { return syms[i].addr > addr })
	if i == 0 {
		return Ref{}
	}
	s := syms[i-1]
	if addr >= s.addr+s.size {
		return Ref{}
	}
	return Ref{Sym: s.name, Base: s.addr, Size: s.size, Known: true}
}
