package alias

import (
	"testing"

	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/mcc"
)

func analyzed(t *testing.T, src, fn string) (*Info, *ir.Func) {
	t.Helper()
	img, err := mcc.Compile(src, mcc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := decompile.Decompile(img)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Func(fn)
	if f == nil {
		t.Fatalf("%s not recovered", fn)
	}
	dopt.Optimize(f)
	return Analyze(f, img), f
}

const twoArrays = `
	int src[32];
	int dst[32];
	int other[8];
	int kernel(int n) {
		int i;
		for (i = 0; i < 32; i++) { dst[i] = src[i] * 3; }
		return dst[0];
	}
	int main() { return kernel(1); }
`

func TestResolvesArrayBases(t *testing.T) {
	info, f := analyzed(t, twoArrays, "kernel")
	var loads, stores int
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.Load:
				r := info.RefOf(in)
				if !r.Known {
					t.Errorf("unresolved load %v", in)
					continue
				}
				if r.Sym == "src" {
					loads++
					if r.Stride != 4 {
						t.Errorf("src load stride = %d, want 4", r.Stride)
					}
				}
			case ir.Store:
				r := info.RefOf(in)
				if r.Known && r.Sym == "dst" {
					stores++
				}
			}
		}
	}
	if loads == 0 {
		t.Error("no loads resolved to src")
	}
	if stores == 0 {
		t.Error("no stores resolved to dst")
	}
}

func TestFootprint(t *testing.T) {
	info, f := analyzed(t, twoArrays, "kernel")
	syms, unknown := info.FuncFootprint(f)
	if unknown {
		t.Errorf("footprint has unknown accesses")
	}
	want := map[string]bool{"src": true, "dst": true}
	for _, s := range syms {
		if !want[s] {
			t.Errorf("unexpected footprint member %q", s)
		}
		delete(want, s)
	}
	for s := range want {
		t.Errorf("footprint missing %q", s)
	}
}

func TestConflicts(t *testing.T) {
	a := Ref{Sym: "x", Known: true}
	b := Ref{Sym: "y", Known: true}
	u := Ref{}
	if a.Conflicts(b) {
		t.Error("distinct objects conflict")
	}
	if !a.Conflicts(a) {
		t.Error("same object does not conflict")
	}
	if !a.Conflicts(u) || !u.Conflicts(b) {
		t.Error("unknown must conflict with everything")
	}
}

func TestPointerParameterIsUnknown(t *testing.T) {
	// A pointer parameter could alias anything; the analysis must not
	// claim knowledge.
	src := `
		int buf[16];
		int kernel(int *p) {
			int s = 0;
			int i;
			for (i = 0; i < 16; i++) { s += p[i]; }
			return s;
		}
		int main() { return kernel(buf); }
	`
	info, f := analyzed(t, src, "kernel")
	_, unknown := info.FuncFootprint(f)
	if !unknown {
		t.Error("pointer-parameter accesses reported as fully known")
	}
}

func TestStackAccessesResolveToStack(t *testing.T) {
	// O0 keeps locals in frame slots accessed via computed sp addresses;
	// after optimization a local array stays on the stack.
	src := `
		int kernel(int n) {
			int a[8];
			int i;
			for (i = 0; i < 8; i++) { a[i] = i * n; }
			int s = 0;
			for (i = 0; i < 8; i++) { s += a[i]; }
			return s;
		}
		int main() { return kernel(2); }
	`
	info, f := analyzed(t, src, "kernel")
	foundStack := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Load || in.Op == ir.Store {
				if r := info.RefOf(in); r.Known && r.Sym == "<stack>" {
					foundStack = true
				}
			}
		}
	}
	if !foundStack {
		t.Error("no stack-resolved access found for local array")
	}
}
