package cache

import (
	"fmt"
	"os"
	"path/filepath"
)

// Codec converts cache values to and from bytes for the disk layer.
type Codec[V any] struct {
	Marshal   func(V) ([]byte, error)
	Unmarshal func([]byte) (V, error)
}

// DiskStore is a content-addressed on-disk blob store: one file per key,
// named by the key's hex form. Writes are atomic (temp file + rename), so
// concurrent processes sharing a -cachedir never observe torn entries;
// because files are content-addressed, a racing double-write is benign.
type DiskStore struct {
	dir string
}

// OpenDisk opens (creating if needed) a store rooted at dir.
func OpenDisk(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: open disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

func (d *DiskStore) path(k Key) string {
	return filepath.Join(d.dir, k.String()+".sbc")
}

// Get returns the blob stored for k.
func (d *DiskStore) Get(k Key) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Delete removes the blob stored for k; a missing blob is not an error.
// The cache uses it to drop corrupt entries so they are not retried on
// every warm run.
func (d *DiskStore) Delete(k Key) error {
	if d == nil {
		return nil
	}
	if err := os.Remove(d.path(k)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Put stores the blob for k atomically.
func (d *DiskStore) Put(k Key, data []byte) error {
	if d == nil {
		return nil
	}
	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, d.path(k))
}
