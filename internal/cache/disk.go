package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Codec converts cache values to and from bytes for the backing tiers.
type Codec[V any] struct {
	Marshal   func(V) ([]byte, error)
	Unmarshal func([]byte) (V, error)
}

// DiskStore is a content-addressed on-disk blob store: one file per key,
// named by the key's hex form. Writes are atomic (temp file + rename), so
// concurrent processes sharing a -cachedir never observe torn entries;
// because files are content-addressed, a racing double-write is benign.
//
// An optional byte budget (OpenDiskMax) bounds the directory: when a Put
// pushes the approximate total past the budget, a background sweep
// evicts the oldest-mtime blobs until the total is back under the low
// watermark. Eviction is off the hot path and best effort — a sweep
// racing another process's Put can only delete a recomputable blob.
type DiskStore struct {
	dir      string
	maxBytes int64
	// size approximates the directory's blob bytes; Put and Delete
	// adjust it and each sweep resyncs it from a directory scan.
	size atomic.Int64
	// sweeping single-flights the background sweep.
	sweeping atomic.Bool
}

// OpenDisk opens (creating if needed) an unbounded store rooted at dir.
func OpenDisk(dir string) (*DiskStore, error) {
	return OpenDiskMax(dir, 0)
}

// OpenDiskMax opens a store rooted at dir bounded to maxBytes of blobs
// (0 means unbounded). The opening scan prices the existing contents so
// a long-lived directory is swept from the first overflowing Put.
func OpenDiskMax(dir string, maxBytes int64) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: open disk store: %w", err)
	}
	d := &DiskStore{dir: dir, maxBytes: maxBytes}
	if maxBytes > 0 {
		d.size.Store(d.scanSize())
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// MaxBytes returns the byte budget (0 when unbounded).
func (d *DiskStore) MaxBytes() int64 { return d.maxBytes }

// Size returns the approximate blob bytes currently stored. Only
// tracked on a bounded store; an unbounded store reports 0.
func (d *DiskStore) Size() int64 { return d.size.Load() }

// Name implements Tier.
func (d *DiskStore) Name() string { return "disk" }

// HitOutcome implements Tier.
func (d *DiskStore) HitOutcome() Outcome { return OutcomeDisk }

func (d *DiskStore) path(k Key) string {
	return filepath.Join(d.dir, k.String()+".sbc")
}

// Get returns the blob stored for k.
func (d *DiskStore) Get(k Key) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Delete removes the blob stored for k; a missing blob is not an error.
// The cache uses it to drop corrupt entries so they are not retried on
// every warm run.
func (d *DiskStore) Delete(k Key) error {
	if d == nil {
		return nil
	}
	path := d.path(k)
	if d.maxBytes > 0 {
		if fi, err := os.Stat(path); err == nil {
			d.size.Add(-fi.Size())
		}
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Put stores the blob for k atomically, triggering a background sweep
// when a byte budget is set and exceeded.
func (d *DiskStore) Put(k Key, data []byte) error {
	if d == nil {
		return nil
	}
	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, d.path(k)); err != nil {
		os.Remove(name)
		return err
	}
	if d.maxBytes > 0 {
		if d.size.Add(int64(len(data))) > d.maxBytes && d.sweeping.CompareAndSwap(false, true) {
			go func() {
				defer d.sweeping.Store(false)
				d.Sweep() //nolint:errcheck // best effort by design
			}()
		}
	}
	return nil
}

// sweepLowWater is the fraction of the budget a sweep evicts down to, so
// the store does not sweep again on the very next Put.
const sweepLowWater = 0.9

// Sweep synchronously evicts the oldest-mtime blobs until the store is
// under its low watermark (90% of the budget), returning how many blobs
// were evicted and how many bytes were freed. The directory scan also
// resyncs the approximate size counter, so drift from other processes
// sharing the directory is corrected on every sweep. A no-op on an
// unbounded store. Put runs it in the background; tests call it
// directly.
func (d *DiskStore) Sweep() (evicted int, freed int64, err error) {
	if d == nil || d.maxBytes <= 0 {
		return 0, 0, nil
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0, err
	}
	type blob struct {
		name  string
		size  int64
		mtime int64
	}
	var blobs []blob
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sbc") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // deleted under us
		}
		blobs = append(blobs, blob{name: e.Name(), size: fi.Size(), mtime: fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	sort.Slice(blobs, func(i, j int) bool {
		if blobs[i].mtime != blobs[j].mtime {
			return blobs[i].mtime < blobs[j].mtime
		}
		return blobs[i].name < blobs[j].name
	})
	target := int64(float64(d.maxBytes) * sweepLowWater)
	for _, b := range blobs {
		if total <= target {
			break
		}
		if rmErr := os.Remove(filepath.Join(d.dir, b.name)); rmErr != nil {
			if os.IsNotExist(rmErr) {
				total -= b.size
			}
			continue
		}
		total -= b.size
		evicted++
		freed += b.size
	}
	d.size.Store(total)
	return evicted, freed, nil
}

// scanSize totals the directory's blob bytes.
func (d *DiskStore) scanSize() int64 {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sbc") {
			continue
		}
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// ParseByteSize parses a human-friendly byte size: a plain integer is
// bytes; suffixes K, M, G, T (optionally followed by "B", case
// insensitive) scale by 1024. Used by the -cachedir-max flag.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	t = strings.TrimSuffix(t, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, strings.TrimSuffix(t, "K")
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "T"):
		mult, t = 1<<40, strings.TrimSuffix(t, "T")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("cache: bad byte size %q", s)
	}
	return n * mult, nil
}
