package cache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stringCodec is the trivial test codec.
var stringCodec = Codec[string]{
	Marshal:   func(s string) ([]byte, error) { return []byte(s), nil },
	Unmarshal: func(b []byte) (string, error) { return string(b), nil },
}

// TestSealOpen pins the checksum framing: round trip, and every way a
// blob can rot — truncation, bad magic, a flipped payload bit — must be
// detected and classified as ErrBlobCorrupt.
func TestSealOpen(t *testing.T) {
	payload := []byte("stage result bytes")
	blob := Seal(payload)
	got, err := Open(blob)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if _, err := Open(Seal(nil)); err != nil {
		t.Errorf("empty payload: %v", err)
	}

	cases := map[string][]byte{
		"truncated header":  blob[:4],
		"truncated payload": blob[:len(blob)-3],
		"bad magic":         append([]byte("XXXX"), blob[4:]...),
		"raw pre-header":    payload,
	}
	flipped := append([]byte(nil), blob...)
	flipped[blobHeaderLen] ^= 0x40
	cases["flipped payload bit"] = flipped
	for name, b := range cases {
		if _, err := Open(b); !errors.Is(err, ErrBlobCorrupt) {
			t.Errorf("%s: err = %v, want ErrBlobCorrupt", name, err)
		}
	}
}

// TestMemTier checks the LRU-as-blob-store adapter.
func TestMemTier(t *testing.T) {
	m := NewMemTier(4)
	if m.Name() != "memory" || m.HitOutcome() != OutcomeHit {
		t.Fatalf("identity: %s/%v", m.Name(), m.HitOutcome())
	}
	k := NewHasher("t").String("m").Sum()
	if _, ok := m.Get(k); ok {
		t.Fatal("hit on empty tier")
	}
	if err := m.Put(k, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Get(k); !ok || string(got) != "blob" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if err := m.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(k); ok {
		t.Error("deleted blob served")
	}
}

// startServer runs a cache server on a loopback port for the test's
// lifetime.
func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := ListenAndServe("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// dialTier connects a RemoteTier to the given servers with test-speed
// timeouts.
func dialTier(t *testing.T, cfg RemoteConfig, srvs ...*Server) *RemoteTier {
	t.Helper()
	addrs := make([]string, len(srvs))
	for i, s := range srvs {
		addrs[i] = s.Addr()
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	rt, err := NewRemoteTier(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	if err := rt.Ping(); err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestRemoteTierProtocol exercises every wire op against a live server:
// GET miss, PUT, GET hit, DELETE, STATS, and the server's rejection of
// a blob that fails its checksum.
func TestRemoteTierProtocol(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	rt := dialTier(t, RemoteConfig{}, srv)

	k := NewHasher("t").String("wire").Sum()
	if _, ok := rt.Get(k); ok {
		t.Fatal("hit on empty server")
	}
	blob := Seal([]byte("profile bytes"))
	if err := rt.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	got, ok := rt.Get(k)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("get after put: ok=%v", ok)
	}

	// An unsealed PUT must be refused, keeping the shared store clean.
	if err := rt.Put(k, []byte("raw junk")); err == nil {
		t.Error("server accepted an unsealed blob")
	}
	if got, _ := rt.Get(k); !bytes.Equal(got, blob) {
		t.Error("rejected put clobbered the stored blob")
	}

	if err := rt.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.Get(k); ok {
		t.Error("deleted blob served")
	}

	stats, err := rt.StatsFromPeers()
	if err != nil {
		t.Fatal(err)
	}
	s := stats[0]
	if s.Gets != 4 || s.GetHits != 2 || s.Puts != 2 || s.Corrupt != 1 || s.Dels != 1 {
		t.Errorf("server stats = %+v", s)
	}
	if rt.Errs() != 0 {
		t.Errorf("transport errors = %d", rt.Errs())
	}
}

// TestTieredCacheRemote wires a Cache to a remote tier: a compute in one
// cache must be served remotely (OutcomeRemote) by a second cache that
// shares only the server, with per-tier stats accounting for it.
func TestTieredCacheRemote(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	k := NewHasher("t").String("shared").Sum()

	a := New[string](8).WithTiers(stringCodec, dialTier(t, RemoteConfig{}, srv))
	v, out, err := a.GetOrComputeOutcome(k, func() (string, error) { return "computed", nil })
	if err != nil || v != "computed" || out != OutcomeMiss {
		t.Fatalf("first compute: %q, %v, %v", v, out, err)
	}

	b := New[string](8).WithTiers(stringCodec, dialTier(t, RemoteConfig{}, srv))
	v, out, err = b.GetOrComputeOutcome(k, func() (string, error) {
		t.Error("second cache recomputed a remotely cached value")
		return "", nil
	})
	if err != nil || v != "computed" {
		t.Fatalf("remote fetch: %q, %v", v, err)
	}
	if out != OutcomeRemote {
		t.Errorf("outcome = %v, want remote", out)
	}
	s := b.Stats()
	if s.RemoteHits != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v, want one remote hit", s)
	}
	// Third call in b: the memory layer now has it.
	if _, out, _ := b.GetOrComputeOutcome(k, nil); out != OutcomeHit {
		t.Errorf("memory refill outcome = %v", out)
	}
}

// TestCrossProcessSingleflight is the claim/lease acceptance test: two
// clients racing one key against one server must produce exactly one
// compute (the claim winner) and one remote-wait (the loser receives
// the winner's PUT), with byte-identical values. Run under -race.
func TestCrossProcessSingleflight(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	k := NewHasher("t").String("raced").Sum()

	winner := New[string](8).WithTiers(stringCodec, dialTier(t, RemoteConfig{}, srv))
	loser := New[string](8).WithTiers(stringCodec, dialTier(t, RemoteConfig{}, srv))

	var computes atomic.Int32
	gate := make(chan struct{})
	type result struct {
		val string
		out Outcome
		err error
	}
	winCh := make(chan result, 1)
	go func() {
		v, out, err := winner.GetOrComputeOutcome(k, func() (string, error) {
			computes.Add(1)
			<-gate // hold the claim while the loser arrives
			return "the value", nil
		})
		winCh <- result{v, out, err}
	}()

	// Wait until the winner holds the server-side claim, then race the
	// loser into the parked CLAIM path.
	waitFor(t, "winner's claim", func() bool { return srv.Stats().ClaimWins == 1 })
	loseCh := make(chan result, 1)
	go func() {
		v, out, err := loser.GetOrComputeOutcome(k, func() (string, error) {
			computes.Add(1)
			return "the value", nil
		})
		loseCh <- result{v, out, err}
	}()
	// The loser must be parked on the claim before the winner finishes.
	waitFor(t, "loser parked", func() bool { return srv.Stats().Claims == 2 })
	close(gate)

	win, lose := <-winCh, <-loseCh
	if win.err != nil || lose.err != nil {
		t.Fatalf("errors: winner %v, loser %v", win.err, lose.err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want exactly 1", n)
	}
	if win.out != OutcomeMiss {
		t.Errorf("winner outcome = %v, want miss", win.out)
	}
	if lose.out != OutcomeRemoteWait {
		t.Errorf("loser outcome = %v, want rwait", lose.out)
	}
	if win.val != lose.val || win.val != "the value" {
		t.Errorf("values differ: winner %q, loser %q", win.val, lose.val)
	}
	if s := loser.Stats(); s.RemoteWaits != 1 || s.Hits != 1 {
		t.Errorf("loser stats = %+v, want one remote wait", s)
	}
	if s := srv.Stats(); s.ClaimWaits != 1 || s.ClaimWins != 1 {
		t.Errorf("server stats = %+v, want one win + one wait", s)
	}
}

// TestClaimLeaseExpiry is the fault test: the claim holder dies without
// a PUT, so the waiter's park must end at lease expiry with the waiter
// recomputing — delayed by one lease, never hung.
func TestClaimLeaseExpiry(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	k := NewHasher("t").String("orphaned").Sum()

	// The "dying" holder: claim directly at the tier layer and never PUT.
	dead := dialTier(t, RemoteConfig{Lease: 200 * time.Millisecond}, srv)
	if _, res, err := dead.Claim(k); err != nil || res != ClaimWon {
		t.Fatalf("setup claim: %v, %v", res, err)
	}

	waiter := New[string](8).WithTiers(stringCodec, dialTier(t, RemoteConfig{Lease: 200 * time.Millisecond}, srv))
	start := time.Now()
	done := make(chan struct{})
	var v string
	var out Outcome
	var err error
	go func() {
		defer close(done)
		v, out, err = waiter.GetOrComputeOutcome(k, func() (string, error) { return "recomputed", nil })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung past the lease: lease expiry did not hand the claim over")
	}
	if err != nil || v != "recomputed" {
		t.Fatalf("waiter result: %q, %v", v, err)
	}
	if out != OutcomeMiss {
		t.Errorf("waiter outcome = %v, want miss (recompute)", out)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("waiter returned in %v, before the lease could expire", elapsed)
	}
	if s := srv.Stats(); s.Expired < 1 {
		t.Errorf("server stats = %+v, want an expired lease", s)
	}
}

// TestConsistentHashSharding checks the ring: keys spread over every
// peer, the key->peer mapping is deterministic across client instances,
// and each blob lands on exactly the shard the ring names.
func TestConsistentHashSharding(t *testing.T) {
	srvs := []*Server{startServer(t, ServerConfig{}), startServer(t, ServerConfig{}), startServer(t, ServerConfig{})}
	rt := dialTier(t, RemoteConfig{}, srvs...)
	rt2 := dialTier(t, RemoteConfig{}, srvs...)

	const n = 64
	for i := 0; i < n; i++ {
		k := NewHasher("t").Int(int64(i)).Sum()
		if err := rt.Put(k, Seal([]byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
		if rt.peerFor(k).addr != rt2.peerFor(k).addr {
			t.Fatalf("key %d routes differently across client instances", i)
		}
		if got, ok := rt.Get(k); !ok || string(got[blobHeaderLen:]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d unreadable after put", i)
		}
	}
	var total uint64
	for i, s := range srvs {
		st := s.Stats()
		if st.Puts == 0 {
			t.Errorf("shard %d received no keys: ring is unbalanced", i)
		}
		total += st.Puts
	}
	if total != n {
		t.Errorf("puts across shards = %d, want %d", total, n)
	}
}

// TestRemoteFailSoft points a tiered cache at a dead peer: every
// operation must degrade to local compute, counting transport errors,
// never failing the lookup.
func TestRemoteFailSoft(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	addr := srv.Addr()
	srv.Close() // the port is now dead

	rt, err := NewRemoteTier([]string{addr}, RemoteConfig{Timeout: 200 * time.Millisecond, Lease: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c := New[string](8).WithTiers(stringCodec, rt)
	k := NewHasher("t").String("unreachable").Sum()
	v, out, err := c.GetOrComputeOutcome(k, func() (string, error) { return "local", nil })
	if err != nil || v != "local" {
		t.Fatalf("compute behind dead peer: %q, %v", v, err)
	}
	if out != OutcomeMiss {
		t.Errorf("outcome = %v, want miss", out)
	}
	if rt.Errs() == 0 {
		t.Error("dead peer produced no transport-error count")
	}
}

// TestServerDiskBacking restarts a server over one directory: values
// PUT before the restart must survive it.
func TestServerDiskBacking(t *testing.T) {
	dir := t.TempDir()
	k := NewHasher("t").String("durable").Sum()
	blob := Seal([]byte("persisted"))

	srv1 := startServer(t, ServerConfig{Dir: dir})
	rt1 := dialTier(t, RemoteConfig{}, srv1)
	if err := rt1.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	srv2 := startServer(t, ServerConfig{Dir: dir})
	rt2 := dialTier(t, RemoteConfig{}, srv2)
	got, ok := rt2.Get(k)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("blob did not survive restart: ok=%v", ok)
	}
}

// TestTierChainMemoryDiskRemote runs the full three-tier chain and
// checks probe order: disk serves before remote is consulted, and a
// disk hit backfills the remote tier for other workers.
func TestTierChainMemoryDiskRemote(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	dir := t.TempDir()
	disk, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt := dialTier(t, RemoteConfig{}, srv)
	k := NewHasher("t").String("chained").Sum()

	// Seed only the disk tier.
	if err := disk.Put(k, Seal([]byte("from disk"))); err != nil {
		t.Fatal(err)
	}
	c := New[string](8).WithTiers(stringCodec, disk, rt)
	v, out, err := c.GetOrComputeOutcome(k, func() (string, error) {
		t.Error("computed despite a disk blob")
		return "", nil
	})
	if err != nil || v != "from disk" {
		t.Fatalf("disk tier: %q, %v", v, err)
	}
	if out != OutcomeDisk {
		t.Errorf("outcome = %v, want disk", out)
	}
	// The disk hit must have pushed the blob up to the remote tier.
	waitFor(t, "remote backfill", func() bool {
		_, ok := rt.Get(k)
		return ok
	})
	if s := c.Stats(); s.DiskHits != 1 || s.RemoteHits != 0 {
		t.Errorf("stats = %+v, want one disk hit", s)
	}
}

// waitFor polls cond for up to 5s; the deadline failure names what
// never happened.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentTieredCache hammers one server from several tiered
// caches; under -race this is the concurrency audit for the tier path
// (client pools, claim table, server LRU).
func TestConcurrentTieredCache(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := New[string](16).WithTiers(stringCodec, dialTier(t, RemoteConfig{}, srv))
			for i := 0; i < 40; i++ {
				k := NewHasher("t").Int(int64(i % 8)).Sum()
				want := fmt.Sprintf("v%d", i%8)
				v, err := c.GetOrCompute(k, func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("goroutine %d: %q, %v", g, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
