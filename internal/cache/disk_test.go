package cache

import (
	"os"
	"testing"
	"time"
)

// putAged writes a blob and backdates its mtime so eviction order is
// deterministic regardless of filesystem timestamp granularity.
func putAged(t *testing.T, d *DiskStore, k Key, blob []byte, age time.Duration) {
	t.Helper()
	if err := d.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(d.path(k), when, when); err != nil {
		t.Fatal(err)
	}
}

// TestDiskSweepEvictsOldest pins the satellite-1 behavior: a bounded
// store's sweep drops the oldest-mtime blobs first, stops at the low
// watermark, and resyncs the size counter from the directory.
func TestDiskSweepEvictsOldest(t *testing.T) {
	d, err := OpenDiskMax(t.TempDir(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 300)
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = NewHasher("t").Int(int64(i)).Sum()
		// keys[0] is the oldest, keys[3] the newest.
		putAged(t, d, keys[i], blob, time.Duration(len(keys)-i)*time.Hour)
	}
	// 1200 bytes in a 1000-byte budget; the watermark is 900, so the
	// sweep must evict exactly the oldest blob (down to 900).
	d.Sweep() // synchronous; Put's background sweep may also have run
	waitFor(t, "sweep settling", func() bool { return !d.sweeping.Load() })
	if _, _, err := d.Sweep(); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get(keys[0]); ok {
		t.Error("oldest blob survived the sweep")
	}
	for _, k := range keys[1:] {
		if _, ok := d.Get(k); !ok {
			t.Errorf("young blob %s evicted", k)
		}
	}
	if got := d.Size(); got != 900 {
		t.Errorf("size after sweep = %d, want 900", got)
	}
}

// TestDiskSweepTriggersOnPut checks the hot-path contract: Put itself
// never blocks on eviction, but an overflowing Put schedules the sweep
// that brings the store back under budget.
func TestDiskSweepTriggersOnPut(t *testing.T) {
	d, err := OpenDiskMax(t.TempDir(), 500)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 200)
	putAged(t, d, NewHasher("t").String("old").Sum(), blob, time.Hour)
	putAged(t, d, NewHasher("t").String("mid").Sum(), blob, time.Minute)
	if err := d.Put(NewHasher("t").String("new").Sum(), blob); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "background sweep", func() bool {
		return !d.sweeping.Load() && d.Size() <= 450 // low watermark
	})
	if _, ok := d.Get(NewHasher("t").String("new").Sum()); !ok {
		t.Error("newest blob evicted by its own sweep")
	}
}

// TestOpenDiskMaxPricesExisting ensures a reopened bounded directory
// counts what is already on disk, so the first overflowing Put sweeps.
func TestOpenDiskMaxPricesExisting(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(NewHasher("t").String("pre").Sum(), make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDiskMax(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Size(); got != 400 {
		t.Errorf("opening scan priced %d bytes, want 400", got)
	}
}

// TestDiskDeleteAdjustsSize keeps the approximate counter honest across
// deletes on a bounded store.
func TestDiskDeleteAdjustsSize(t *testing.T) {
	d, err := OpenDiskMax(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := NewHasher("t").String("gone").Sum()
	if err := d.Put(k, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(k); err != nil {
		t.Fatal(err)
	}
	if got := d.Size(); got != 0 {
		t.Errorf("size after delete = %d, want 0", got)
	}
	if err := d.Delete(k); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

// TestParseByteSize covers the -cachedir-max grammar.
func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"0":     0,
		"123":   123,
		"1K":    1 << 10,
		"2k":    2 << 10,
		"64KB":  64 << 10,
		"3M":    3 << 20,
		"512mb": 512 << 20,
		"4G":    4 << 30,
		"1T":    1 << 40,
		" 10M ": 10 << 20,
		"100B":  100,
	}
	for in, want := range good {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "-1", "1X", "K", "1.5G", "one"} {
		if _, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) accepted", in)
		}
	}
}
