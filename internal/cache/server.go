package cache

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig tunes a cache server. The zero value selects the
// defaults: a 16384-blob memory tier, no disk backing, 10s default
// lease capped at 60s.
type ServerConfig struct {
	// MemEntries bounds the in-memory blob LRU.
	MemEntries int
	// Dir, when set, backs the memory tier with a DiskStore: PUTs write
	// through and a memory miss consults disk, so a restarted server
	// keeps its contents.
	Dir string
	// DirMaxBytes bounds the disk backing (0: unbounded); see
	// DiskStore's eviction sweep.
	DirMaxBytes int64
	// DefaultLease is granted when a CLAIM requests no lease; MaxLease
	// caps what a client may request.
	DefaultLease time.Duration
	MaxLease     time.Duration
}

const (
	defaultServerEntries = 16384
	maxServerLease       = 60 * time.Second
)

// ServerStats is a cache server's counter snapshot, served over the
// STATS op and printed when the server shuts down.
type ServerStats struct {
	Gets       uint64 `json:"gets"`
	GetHits    uint64 `json:"get_hits"`
	Puts       uint64 `json:"puts"`
	Dels       uint64 `json:"dels"`
	Claims     uint64 `json:"claims"`
	ClaimHits  uint64 `json:"claim_hits"`  // CLAIMs answered immediately with the value
	ClaimWaits uint64 `json:"claim_waits"` // CLAIMs that blocked on a holder and got its PUT
	ClaimWins  uint64 `json:"claim_wins"`  // CLAIMs granted the compute lease
	Expired    uint64 `json:"expired"`     // leases that ran out before the holder's PUT
	Corrupt    uint64 `json:"corrupt"`     // PUTs rejected for a bad checksum
	Entries    int    `json:"entries"`     // memory-tier blob count
}

// Server is the cache-server side of the wire protocol (see remote.go):
// a memory blob LRU, an optional disk backing, and the cross-process
// claim table behind GET/PUT/CLAIM/DELETE/STATS over TCP. One goroutine
// per connection, one request in flight per connection — a blocked
// CLAIM parks its connection and nothing else.
//
// Start one with ListenAndServe (`cmd/experiments -cache-serve addr`);
// shard a key space over several with RemoteTier's consistent hashing.
type Server struct {
	cfg  ServerConfig
	ln   net.Listener
	mem  *MemTier
	disk *DiskStore

	mu     sync.Mutex
	claims map[Key]*serverClaim
	conns  map[net.Conn]struct{}

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	gets, getHits, puts, dels atomic.Uint64
	claimOps, claimHits       atomic.Uint64
	claimWaits, claimWins     atomic.Uint64
	expired, corrupt          atomic.Uint64
}

// serverClaim is one in-flight cross-process compute: done is closed by
// the fulfilling PUT; waiters that outlive deadline take the claim over.
type serverClaim struct {
	done     chan struct{}
	deadline time.Time
}

// ListenAndServe starts a cache server on addr ("host:port"; ":0" picks
// a free port — read it back from Addr).
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cache: server listen: %w", err)
	}
	return NewServer(ln, cfg)
}

// NewServer serves the cache protocol on an existing listener, which it
// takes ownership of.
func NewServer(ln net.Listener, cfg ServerConfig) (*Server, error) {
	if cfg.MemEntries <= 0 {
		cfg.MemEntries = defaultServerEntries
	}
	if cfg.DefaultLease <= 0 {
		cfg.DefaultLease = defaultLease
	}
	if cfg.MaxLease <= 0 {
		cfg.MaxLease = maxServerLease
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		mem:    NewMemTier(cfg.MemEntries),
		claims: map[Key]*serverClaim{},
		conns:  map[net.Conn]struct{}{},
		closed: make(chan struct{}),
	}
	if cfg.Dir != "" {
		disk, err := OpenDiskMax(cfg.Dir, cfg.DirMaxBytes)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.disk = disk
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Gets:       s.gets.Load(),
		GetHits:    s.getHits.Load(),
		Puts:       s.puts.Load(),
		Dels:       s.dels.Load(),
		Claims:     s.claimOps.Load(),
		ClaimHits:  s.claimHits.Load(),
		ClaimWaits: s.claimWaits.Load(),
		ClaimWins:  s.claimWins.Load(),
		Expired:    s.expired.Load(),
		Corrupt:    s.corrupt.Load(),
		Entries:    s.mem.Len(),
	}
}

// Close stops the listener, unblocks every parked CLAIM, closes every
// connection, and waits for the handlers to drain.
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.closed)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var hdr [reqHeaderLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // client went away (or Close tore the conn down)
		}
		op := hdr[0]
		var k Key
		copy(k[:], hdr[1:1+len(k)])
		n := binary.LittleEndian.Uint32(hdr[1+len(k):])
		if n > maxWireBlob {
			return
		}
		var payload []byte
		if n > 0 {
			payload = make([]byte, n)
			if _, err := io.ReadFull(conn, payload); err != nil {
				return
			}
		}
		code, resp := s.serve(op, k, payload)
		if err := writeResp(conn, code, resp); err != nil {
			return
		}
	}
}

func writeResp(conn net.Conn, code byte, payload []byte) error {
	out := make([]byte, respHeaderLen+len(payload))
	out[0] = code
	binary.LittleEndian.PutUint32(out[1:respHeaderLen], uint32(len(payload)))
	copy(out[respHeaderLen:], payload)
	_, err := conn.Write(out)
	return err
}

func (s *Server) serve(op byte, k Key, payload []byte) (byte, []byte) {
	switch op {
	case opGet:
		s.gets.Add(1)
		if blob, ok := s.lookup(k); ok {
			s.getHits.Add(1)
			return rcHit, blob
		}
		return rcMiss, nil
	case opPut:
		s.puts.Add(1)
		// Verify before storing: a blob the checksum rejects would be
		// rejected again by every client that fetched it; refusing it
		// here keeps the shared store clean and points at the writer.
		if _, err := Open(payload); err != nil {
			s.corrupt.Add(1)
			return rcErr, []byte(err.Error())
		}
		s.store(k, payload)
		s.resolveClaim(k)
		return rcOK, nil
	case opDelete:
		s.dels.Add(1)
		s.mem.Delete(k) //nolint:errcheck // cannot fail
		if s.disk != nil {
			s.disk.Delete(k) //nolint:errcheck // best effort
		}
		return rcOK, nil
	case opClaim:
		return s.claim(k, s.leaseFrom(payload))
	case opStats:
		data, err := json.Marshal(s.Stats())
		if err != nil {
			return rcErr, []byte(err.Error())
		}
		return rcOK, data
	}
	return rcErr, []byte(fmt.Sprintf("unknown op %d", op))
}

// lookup consults memory then the disk backing, refilling memory on a
// disk hit.
func (s *Server) lookup(k Key) ([]byte, bool) {
	if blob, ok := s.mem.Get(k); ok {
		return blob, true
	}
	if s.disk != nil {
		if blob, ok := s.disk.Get(k); ok {
			s.mem.Put(k, blob) //nolint:errcheck // cannot fail
			return blob, true
		}
	}
	return nil, false
}

func (s *Server) store(k Key, blob []byte) {
	s.mem.Put(k, blob) //nolint:errcheck // cannot fail
	if s.disk != nil {
		s.disk.Put(k, blob) //nolint:errcheck // best effort
	}
}

// resolveClaim wakes waiters parked on k. Called after store, so a
// woken waiter's lookup always finds the value.
func (s *Server) resolveClaim(k Key) {
	s.mu.Lock()
	cl := s.claims[k]
	if cl != nil {
		delete(s.claims, k)
	}
	s.mu.Unlock()
	if cl != nil {
		close(cl.done)
	}
}

// leaseFrom decodes a CLAIM's requested lease, clamped to the server's
// bounds.
func (s *Server) leaseFrom(payload []byte) time.Duration {
	lease := s.cfg.DefaultLease
	if len(payload) >= 4 {
		if ms := binary.LittleEndian.Uint32(payload); ms > 0 {
			lease = time.Duration(ms) * time.Millisecond
		}
	}
	if lease > s.cfg.MaxLease {
		lease = s.cfg.MaxLease
	}
	return lease
}

// claim implements the cross-process singleflight: return the value if
// it exists, grant the lease if nobody holds it, otherwise park until
// the holder's PUT resolves the claim or its lease expires (the waiter
// then takes the claim over — a dead holder delays waiters by one
// lease, never forever).
func (s *Server) claim(k Key, lease time.Duration) (byte, []byte) {
	s.claimOps.Add(1)
	waited := false
	for {
		if blob, ok := s.lookup(k); ok {
			if waited {
				s.claimWaits.Add(1)
				return rcWaitHit, blob
			}
			s.claimHits.Add(1)
			return rcHit, blob
		}
		s.mu.Lock()
		cl := s.claims[k]
		if cl == nil {
			s.claims[k] = &serverClaim{done: make(chan struct{}), deadline: time.Now().Add(lease)}
			s.mu.Unlock()
			s.claimWins.Add(1)
			return rcWon, nil
		}
		deadline := cl.deadline
		s.mu.Unlock()

		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-cl.done:
			timer.Stop()
			waited = true
			// Loop: the fulfilling PUT stored the value before
			// resolving, so the next lookup serves it.
		case <-timer.C:
			// Lease ran out: presume the holder dead and retire its
			// claim (unless a racing PUT already did). The loop then
			// either finds a late PUT's value or grants this caller a
			// fresh lease.
			s.mu.Lock()
			if s.claims[k] == cl {
				delete(s.claims, k)
				s.expired.Add(1)
			}
			s.mu.Unlock()
			waited = true
		case <-s.closed:
			timer.Stop()
			return rcErr, []byte("server closed")
		}
	}
}
