package cache

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"binpart/internal/obs/hist"
)

// ServerConfig tunes a cache server. The zero value selects the
// defaults: a 16384-blob memory tier, no disk backing, 10s default
// lease capped at 60s.
type ServerConfig struct {
	// MemEntries bounds the in-memory blob LRU.
	MemEntries int
	// Dir, when set, backs the memory tier with a DiskStore: PUTs write
	// through and a memory miss consults disk, so a restarted server
	// keeps its contents.
	Dir string
	// DirMaxBytes bounds the disk backing (0: unbounded); see
	// DiskStore's eviction sweep.
	DirMaxBytes int64
	// DefaultLease is granted when a CLAIM requests no lease; MaxLease
	// caps what a client may request.
	DefaultLease time.Duration
	MaxLease     time.Duration
	// MetricsAddr, when set, starts an HTTP listener serving Prometheus
	// text on /metrics (":0" picks a free port — read it back from
	// MetricsAddr()), making the server observable while running instead
	// of only at shutdown.
	MetricsAddr string
}

const (
	defaultServerEntries = 16384
	maxServerLease       = 60 * time.Second
	// maxServerTraces bounds the distinct-trace-ID set a server retains;
	// beyond it new IDs still count but are not stored.
	maxServerTraces = 64
)

// ServerStats is a cache server's counter snapshot, served over the
// STATS op and printed when the server shuts down.
type ServerStats struct {
	Gets       uint64 `json:"gets"`
	GetHits    uint64 `json:"get_hits"`
	Puts       uint64 `json:"puts"`
	Dels       uint64 `json:"dels"`
	Claims     uint64 `json:"claims"`
	ClaimHits  uint64 `json:"claim_hits"`          // CLAIMs answered immediately with the value
	ClaimWaits uint64 `json:"claim_waits"`         // CLAIMs that blocked on a holder and got its PUT
	ClaimWins  uint64 `json:"claim_wins"`          // CLAIMs granted the compute lease
	Expired    uint64 `json:"expired"`             // leases that ran out before the holder's PUT
	Corrupt    uint64 `json:"corrupt"`             // PUTs rejected for a bad checksum
	Entries    int    `json:"entries"`             // memory-tier blob count
	Hellos     uint64 `json:"hellos,omitempty"`    // HELLO handshakes received (v2 clients)
	Traces     int    `json:"traces,omitempty"`    // distinct trace IDs announced
	BytesIn    uint64 `json:"bytes_in,omitempty"`  // request bytes read off the wire
	BytesOut   uint64 `json:"bytes_out,omitempty"` // response bytes written
}

// Server is the cache-server side of the wire protocol (see remote.go):
// a memory blob LRU, an optional disk backing, and the cross-process
// claim table behind GET/PUT/CLAIM/DELETE/STATS over TCP. One goroutine
// per connection, one request in flight per connection — a blocked
// CLAIM parks its connection and nothing else.
//
// Start one with ListenAndServe (`cmd/experiments -cache-serve addr`);
// shard a key space over several with RemoteTier's consistent hashing.
type Server struct {
	cfg        ServerConfig
	ln         net.Listener
	metricsLn  net.Listener
	metricsSrv *http.Server
	mem        *MemTier
	disk       *DiskStore

	mu     sync.Mutex
	claims map[Key]*serverClaim
	conns  map[net.Conn]struct{}
	traces map[string]struct{} // distinct trace IDs announced via HELLO

	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	gets, getHits, puts, dels atomic.Uint64
	claimOps, claimHits       atomic.Uint64
	claimWaits, claimWins     atomic.Uint64
	expired, corrupt          atomic.Uint64
	hellos                    atomic.Uint64
	bytesIn, bytesOut         atomic.Uint64

	// opHists is indexed by wire op code: serve-side latency per
	// operation (a CLAIM's includes its lease wait).
	opHists [opHello + 1]hist.Histogram
}

// serverClaim is one in-flight cross-process compute: done is closed by
// the fulfilling PUT; waiters that outlive deadline take the claim over.
type serverClaim struct {
	done     chan struct{}
	deadline time.Time
}

// ListenAndServe starts a cache server on addr ("host:port"; ":0" picks
// a free port — read it back from Addr).
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cache: server listen: %w", err)
	}
	return NewServer(ln, cfg)
}

// NewServer serves the cache protocol on an existing listener, which it
// takes ownership of.
func NewServer(ln net.Listener, cfg ServerConfig) (*Server, error) {
	if cfg.MemEntries <= 0 {
		cfg.MemEntries = defaultServerEntries
	}
	if cfg.DefaultLease <= 0 {
		cfg.DefaultLease = defaultLease
	}
	if cfg.MaxLease <= 0 {
		cfg.MaxLease = maxServerLease
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		mem:    NewMemTier(cfg.MemEntries),
		claims: map[Key]*serverClaim{},
		conns:  map[net.Conn]struct{}{},
		traces: map[string]struct{}{},
		closed: make(chan struct{}),
	}
	if cfg.Dir != "" {
		disk, err := OpenDiskMax(cfg.Dir, cfg.DirMaxBytes)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.disk = disk
	}
	if cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("cache: server metrics listen: %w", err)
		}
		s.metricsLn = mln
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			s.WriteMetrics(w)
		})
		s.metricsSrv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       time.Minute,
		}
		// The serve goroutine joins the same WaitGroup as the protocol
		// handlers, so Close's wg.Wait observes its exit — no goroutine
		// outlives a returned Close.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.metricsSrv.Serve(mln) //nolint:errcheck // ErrServerClosed after Shutdown
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the bound /metrics address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return ""
	}
	return s.metricsLn.Addr().String()
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	traces := len(s.traces)
	s.mu.Unlock()
	return ServerStats{
		Gets:       s.gets.Load(),
		GetHits:    s.getHits.Load(),
		Puts:       s.puts.Load(),
		Dels:       s.dels.Load(),
		Claims:     s.claimOps.Load(),
		ClaimHits:  s.claimHits.Load(),
		ClaimWaits: s.claimWaits.Load(),
		ClaimWins:  s.claimWins.Load(),
		Expired:    s.expired.Load(),
		Corrupt:    s.corrupt.Load(),
		Entries:    s.mem.Len(),
		Hellos:     s.hellos.Load(),
		Traces:     traces,
		BytesIn:    s.bytesIn.Load(),
		BytesOut:   s.bytesOut.Load(),
	}
}

// TraceIDs lists the distinct trace IDs clients have announced, sorted.
func (s *Server) TraceIDs() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.traces))
	for id := range s.traces {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// serverOpNames labels the op-latency histograms for /metrics.
var serverOpNames = map[byte]string{
	opGet:    "get",
	opPut:    "put",
	opClaim:  "claim",
	opStats:  "stats",
	opDelete: "delete",
	opHello:  "hello",
}

// WriteMetrics renders the server's counters and per-op latency
// histograms in the Prometheus text exposition format.
func (s *Server) WriteMetrics(w io.Writer) {
	st := s.Stats()
	p := hist.NewProm(w)
	p.Counter("binpart_cache_server_gets_total", "", float64(st.Gets))
	p.Counter("binpart_cache_server_get_hits_total", "", float64(st.GetHits))
	p.Counter("binpart_cache_server_puts_total", "", float64(st.Puts))
	p.Counter("binpart_cache_server_dels_total", "", float64(st.Dels))
	p.Counter("binpart_cache_server_claims_total", hist.Label("outcome", "hit"), float64(st.ClaimHits))
	p.Counter("binpart_cache_server_claims_total", hist.Label("outcome", "wait"), float64(st.ClaimWaits))
	p.Counter("binpart_cache_server_claims_total", hist.Label("outcome", "won"), float64(st.ClaimWins))
	p.Counter("binpart_cache_server_leases_expired_total", "", float64(st.Expired))
	p.Counter("binpart_cache_server_corrupt_puts_total", "", float64(st.Corrupt))
	p.Counter("binpart_cache_server_hellos_total", "", float64(st.Hellos))
	p.Counter("binpart_cache_server_bytes_total", hist.Label("direction", "in"), float64(st.BytesIn))
	p.Counter("binpart_cache_server_bytes_total", hist.Label("direction", "out"), float64(st.BytesOut))
	p.Gauge("binpart_cache_server_entries", "", float64(st.Entries))
	p.Gauge("binpart_cache_server_traces", "", float64(st.Traces))
	for op := opGet; op <= opHello; op++ {
		p.Summary("binpart_cache_server_op_latency_seconds",
			hist.Label("op", serverOpNames[op]), s.opHists[op].Snapshot())
	}
}

// Close shuts the server down deterministically: stop accepting, unblock
// every parked CLAIM, close every protocol connection, drain the metrics
// sidecar (graceful with a short deadline, then hard), and wait for every
// goroutine — accept loop, connection handlers, metrics serve loop — to
// exit. When Close returns, nothing of the server is still running.
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.closed)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		if s.metricsSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := s.metricsSrv.Shutdown(ctx); err != nil {
				s.metricsSrv.Close() // a stuck scrape does not hold up exit
			}
			cancel()
		}
	})
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var hdr [reqHeaderLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // client went away (or Close tore the conn down)
		}
		op := hdr[0]
		var k Key
		copy(k[:], hdr[1:1+len(k)])
		n := binary.LittleEndian.Uint32(hdr[1+len(k):])
		if n > maxWireBlob {
			return
		}
		var payload []byte
		if n > 0 {
			payload = make([]byte, n)
			if _, err := io.ReadFull(conn, payload); err != nil {
				return
			}
		}
		s.bytesIn.Add(uint64(reqHeaderLen) + uint64(n))
		start := time.Now()
		code, resp := s.serve(op, k, payload)
		if int(op) < len(s.opHists) {
			s.opHists[op].Record(time.Since(start))
		}
		s.bytesOut.Add(uint64(respHeaderLen) + uint64(len(resp)))
		if err := writeResp(conn, code, resp); err != nil {
			return
		}
	}
}

func writeResp(conn net.Conn, code byte, payload []byte) error {
	out := make([]byte, respHeaderLen+len(payload))
	out[0] = code
	binary.LittleEndian.PutUint32(out[1:respHeaderLen], uint32(len(payload)))
	copy(out[respHeaderLen:], payload)
	_, err := conn.Write(out)
	return err
}

func (s *Server) serve(op byte, k Key, payload []byte) (byte, []byte) {
	switch op {
	case opGet:
		s.gets.Add(1)
		if blob, ok := s.lookup(k); ok {
			s.getHits.Add(1)
			return rcHit, blob
		}
		return rcMiss, nil
	case opPut:
		s.puts.Add(1)
		// Verify before storing: a blob the checksum rejects would be
		// rejected again by every client that fetched it; refusing it
		// here keeps the shared store clean and points at the writer.
		if _, err := Open(payload); err != nil {
			s.corrupt.Add(1)
			return rcErr, []byte(err.Error())
		}
		s.store(k, payload)
		s.resolveClaim(k)
		return rcOK, nil
	case opDelete:
		s.dels.Add(1)
		s.mem.Delete(k) //nolint:errcheck // cannot fail
		if s.disk != nil {
			s.disk.Delete(k) //nolint:errcheck // best effort
		}
		return rcOK, nil
	case opClaim:
		return s.claim(k, s.leaseFrom(payload))
	case opHello:
		// [version:1][trace-id:rest]. Versions are informational — the
		// op set is backward compatible — and the trace set is bounded,
		// so a misbehaving client cannot grow server memory.
		s.hellos.Add(1)
		if len(payload) > 1 {
			if id := string(payload[1:]); len(id) <= 128 {
				s.mu.Lock()
				if len(s.traces) < maxServerTraces {
					s.traces[id] = struct{}{}
				}
				s.mu.Unlock()
			}
		}
		return rcOK, nil
	case opStats:
		data, err := json.Marshal(s.Stats())
		if err != nil {
			return rcErr, []byte(err.Error())
		}
		return rcOK, data
	}
	return rcErr, []byte(fmt.Sprintf("unknown op %d", op))
}

// lookup consults memory then the disk backing, refilling memory on a
// disk hit.
func (s *Server) lookup(k Key) ([]byte, bool) {
	if blob, ok := s.mem.Get(k); ok {
		return blob, true
	}
	if s.disk != nil {
		if blob, ok := s.disk.Get(k); ok {
			s.mem.Put(k, blob) //nolint:errcheck // cannot fail
			return blob, true
		}
	}
	return nil, false
}

func (s *Server) store(k Key, blob []byte) {
	s.mem.Put(k, blob) //nolint:errcheck // cannot fail
	if s.disk != nil {
		s.disk.Put(k, blob) //nolint:errcheck // best effort
	}
}

// resolveClaim wakes waiters parked on k. Called after store, so a
// woken waiter's lookup always finds the value.
func (s *Server) resolveClaim(k Key) {
	s.mu.Lock()
	cl := s.claims[k]
	if cl != nil {
		delete(s.claims, k)
	}
	s.mu.Unlock()
	if cl != nil {
		close(cl.done)
	}
}

// leaseFrom decodes a CLAIM's requested lease, clamped to the server's
// bounds.
func (s *Server) leaseFrom(payload []byte) time.Duration {
	lease := s.cfg.DefaultLease
	if len(payload) >= 4 {
		if ms := binary.LittleEndian.Uint32(payload); ms > 0 {
			lease = time.Duration(ms) * time.Millisecond
		}
	}
	if lease > s.cfg.MaxLease {
		lease = s.cfg.MaxLease
	}
	return lease
}

// claim implements the cross-process singleflight: return the value if
// it exists, grant the lease if nobody holds it, otherwise park until
// the holder's PUT resolves the claim or its lease expires (the waiter
// then takes the claim over — a dead holder delays waiters by one
// lease, never forever).
func (s *Server) claim(k Key, lease time.Duration) (byte, []byte) {
	s.claimOps.Add(1)
	waited := false
	for {
		if blob, ok := s.lookup(k); ok {
			if waited {
				s.claimWaits.Add(1)
				return rcWaitHit, blob
			}
			s.claimHits.Add(1)
			return rcHit, blob
		}
		s.mu.Lock()
		cl := s.claims[k]
		if cl == nil {
			s.claims[k] = &serverClaim{done: make(chan struct{}), deadline: time.Now().Add(lease)}
			s.mu.Unlock()
			s.claimWins.Add(1)
			return rcWon, nil
		}
		deadline := cl.deadline
		s.mu.Unlock()

		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-cl.done:
			timer.Stop()
			waited = true
			// Loop: the fulfilling PUT stored the value before
			// resolving, so the next lookup serves it.
		case <-timer.C:
			// Lease ran out: presume the holder dead and retire its
			// claim (unless a racing PUT already did). The loop then
			// either finds a late PUT's value or grants this caller a
			// fresh lease.
			s.mu.Lock()
			if s.claims[k] == cl {
				delete(s.claims, k)
				s.expired.Add(1)
			}
			s.mu.Unlock()
			waited = true
		case <-s.closed:
			timer.Stop()
			return rcErr, []byte("server closed")
		}
	}
}
