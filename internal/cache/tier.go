package cache

// Tier is one backing layer of a tiered cache: a content-addressed blob
// store below the typed in-memory LRU. Tiers hold sealed blobs (see
// Seal/Open); the Cache seals on the way down and verifies on the way
// up, so every tier detects corruption the same way. Implementations:
// MemTier (the in-memory LRU as a blob store, used by the cache
// server), DiskStore (one file per key), and RemoteTier (a network
// peer speaking the cache-server protocol).
//
// All methods are best effort from the Cache's point of view: a failed
// Put loses sharing, not correctness, and a failed Get is a miss.
type Tier interface {
	// Name identifies the tier in stats and logs ("memory", "disk",
	// "remote").
	Name() string
	// HitOutcome is the per-call Outcome a lookup served by this tier
	// reports (OutcomeDisk, OutcomeRemote, ...).
	HitOutcome() Outcome
	// Get returns the sealed blob stored for k.
	Get(k Key) ([]byte, bool)
	// Put stores the sealed blob for k.
	Put(k Key, blob []byte) error
	// Delete removes k; a missing entry is not an error.
	Delete(k Key) error
}

// ClaimResult classifies a ClaimTier.Claim call.
type ClaimResult uint8

const (
	// ClaimWon means the caller now holds the cross-process lease for k
	// and is expected to compute the value and fulfil the claim with a
	// Put. If it dies instead, the lease expires and a waiter takes over.
	ClaimWon ClaimResult = iota
	// ClaimHit means the value already existed; no lease was taken.
	ClaimHit
	// ClaimWaitHit means another process held the lease and this call
	// blocked until the winner's Put, which it returns.
	ClaimWaitHit
)

func (r ClaimResult) String() string {
	switch r {
	case ClaimWon:
		return "won"
	case ClaimHit:
		return "hit"
	case ClaimWaitHit:
		return "wait-hit"
	}
	return "unknown"
}

// ClaimTier is a Tier that extends singleflight across processes: Claim
// either returns the value, blocks on the process currently computing
// it, or grants the caller a lease to compute it. Only the remote tier
// implements it — in-process coalescing is the Cache's inflight map.
type ClaimTier interface {
	Tier
	Claim(k Key) ([]byte, ClaimResult, error)
}

// MemTier adapts the in-memory LRU to the blob Tier interface. The
// cache server uses it as the hot layer above its disk store; it is
// also the natural fake for tier-chain tests.
type MemTier struct {
	c *Cache[[]byte]
}

// NewMemTier builds a memory tier bounded to capacity blobs.
func NewMemTier(capacity int) *MemTier {
	return &MemTier{c: New[[]byte](capacity)}
}

// Name implements Tier.
func (m *MemTier) Name() string { return "memory" }

// HitOutcome implements Tier: a memory-tier hit is a plain hit.
func (m *MemTier) HitOutcome() Outcome { return OutcomeHit }

// Get implements Tier.
func (m *MemTier) Get(k Key) ([]byte, bool) { return m.c.Get(k) }

// Put implements Tier.
func (m *MemTier) Put(k Key, blob []byte) error {
	m.c.Put(k, blob)
	return nil
}

// Delete implements Tier.
func (m *MemTier) Delete(k Key) error {
	m.c.Delete(k)
	return nil
}

// Len returns the current blob count.
func (m *MemTier) Len() int { return m.c.Len() }

// Stats exposes the underlying LRU counters.
func (m *MemTier) Stats() Stats { return m.c.Stats() }
