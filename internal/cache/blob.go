package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Sealed blob framing. Every serialized cache value that leaves the
// typed in-memory layer — for the disk tier, the remote tier, or the
// cache server — is wrapped in an 8-byte header:
//
//	[0:4]  magic "SBC1"
//	[4:8]  CRC32-C (Castagnoli) of the payload, little endian
//	[8:]   codec payload
//
// The header makes corruption (torn writes, truncation, bit rot, a
// damaged network transfer) detectable identically at every tier and
// without running the value codec: Open is a checksum over the bytes,
// not a parse. A blob that fails Open is treated exactly like the old
// codec-rejection path — counted corrupt, deleted from the tier that
// served it, and recomputed.

// blobMagic distinguishes sealed blobs from raw or pre-header files; a
// version bump (SBC2) invalidates every existing blob, which is the
// designed migration path.
const blobMagic = "SBC1"

// blobHeaderLen is the sealed header size in bytes.
const blobHeaderLen = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Blob corruption errors. Both unwrap to ErrBlobCorrupt so tiers can
// classify without string matching.
var (
	ErrBlobCorrupt  = errors.New("cache: corrupt blob")
	errBlobShort    = fmt.Errorf("%w: shorter than header", ErrBlobCorrupt)
	errBlobMagic    = fmt.Errorf("%w: bad magic", ErrBlobCorrupt)
	errBlobChecksum = fmt.Errorf("%w: checksum mismatch", ErrBlobCorrupt)
)

// Seal wraps a codec payload in the checksum header.
func Seal(payload []byte) []byte {
	out := make([]byte, blobHeaderLen+len(payload))
	copy(out, blobMagic)
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[blobHeaderLen:], payload)
	return out
}

// Open verifies a sealed blob and returns its payload (aliasing the
// input). It fails on a short blob, a missing magic, or a checksum
// mismatch; every failure wraps ErrBlobCorrupt.
func Open(blob []byte) ([]byte, error) {
	if len(blob) < blobHeaderLen {
		return nil, errBlobShort
	}
	if string(blob[:4]) != blobMagic {
		return nil, errBlobMagic
	}
	payload := blob[blobHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(blob[4:8]) {
		return nil, errBlobChecksum
	}
	return payload, nil
}
