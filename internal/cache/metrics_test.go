package cache

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHelloTraceRegistration checks the v2 handshake: a client dialed
// with a trace ID announces it once per connection, and the server
// records both the hello count and the distinct trace ID.
func TestHelloTraceRegistration(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	rt := dialTier(t, RemoteConfig{TraceID: "feedface01"}, srv)

	k := NewHasher("t").String("hello").Sum()
	if err := rt.Put(k, Seal([]byte("x"))); err != nil {
		t.Fatal(err)
	}

	ids := srv.TraceIDs()
	if len(ids) != 1 || ids[0] != "feedface01" {
		t.Errorf("server trace IDs = %v, want [feedface01]", ids)
	}
	if s := srv.Stats(); s.Hellos == 0 || s.Traces != 1 {
		t.Errorf("server stats hellos=%d traces=%d", s.Hellos, s.Traces)
	}

	// A second client on the same run must not inflate the trace set.
	rt2 := dialTier(t, RemoteConfig{TraceID: "feedface01"}, srv)
	if _, ok := rt2.Get(k); !ok {
		t.Fatal("get after put missed")
	}
	if s := srv.Stats(); s.Traces != 1 {
		t.Errorf("duplicate trace ID double-counted: traces=%d", s.Traces)
	}

	// A client without a trace ID stays on the v1 wire exchange.
	rt3 := dialTier(t, RemoteConfig{}, srv)
	if _, ok := rt3.Get(k); !ok {
		t.Fatal("untraced get missed")
	}
	if s := srv.Stats(); s.Traces != 1 {
		t.Errorf("untraced client registered a trace: traces=%d", s.Traces)
	}
}

// TestServerTraceCap: the trace set is bounded so a misbehaving fleet
// cannot grow server memory without limit.
func TestServerTraceCap(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	for i := 0; i < maxServerTraces+8; i++ {
		rt := dialTier(t, RemoteConfig{TraceID: fmt.Sprintf("trace-%03d", i)}, srv)
		rt.Close()
	}
	if got := len(srv.TraceIDs()); got != maxServerTraces {
		t.Errorf("trace set grew to %d, cap is %d", got, maxServerTraces)
	}
}

// TestPeerMetrics checks the client-side ledger: per-peer op counts,
// byte counters in both directions, and a populated RTT histogram.
func TestPeerMetrics(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	rt := dialTier(t, RemoteConfig{TraceID: "cafe"}, srv)

	k := NewHasher("t").String("pm").Sum()
	blob := Seal([]byte("payload"))
	if err := rt.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.Get(k); !ok {
		t.Fatal("get missed")
	}

	pms := rt.PeerMetrics()
	if len(pms) != 1 {
		t.Fatalf("got %d peers, want 1", len(pms))
	}
	pm := pms[0]
	if pm.Addr != srv.Addr() {
		t.Errorf("peer addr = %q, want %q", pm.Addr, srv.Addr())
	}
	// Ping + hello + put + get, all against one peer.
	if pm.Ops < 3 || pm.Errs != 0 {
		t.Errorf("ops=%d errs=%d", pm.Ops, pm.Errs)
	}
	if pm.RTT.Count != pm.Ops {
		t.Errorf("rtt samples %d != ops %d", pm.RTT.Count, pm.Ops)
	}
	if pm.BytesOut < uint64(len(blob)) || pm.BytesIn < uint64(len(blob)) {
		t.Errorf("bytes out=%d in=%d, blob is %d", pm.BytesOut, pm.BytesIn, len(blob))
	}

	// Server-side byte accounting must have seen the same payload.
	if s := srv.Stats(); s.BytesIn < uint64(len(blob)) || s.BytesOut < uint64(len(blob)) {
		t.Errorf("server bytes in=%d out=%d", s.BytesIn, s.BytesOut)
	}
}

// TestServerMetricsEndpoint stands up the sidecar /metrics listener and
// scrapes it after live traffic: counters, the traces gauge, and op
// latency quantiles must all be present in exposition format.
func TestServerMetricsEndpoint(t *testing.T) {
	srv := startServer(t, ServerConfig{MetricsAddr: "127.0.0.1:0"})
	if srv.MetricsAddr() == "" {
		t.Fatal("metrics listener did not bind")
	}
	rt := dialTier(t, RemoteConfig{TraceID: "beef"}, srv)
	k := NewHasher("t").String("scrape").Sum()
	if err := rt.Put(k, Seal([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.Get(k); !ok {
		t.Fatal("get missed")
	}

	resp, err := http.Get("http://" + srv.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"binpart_cache_server_gets_total 1",
		"binpart_cache_server_get_hits_total 1",
		"binpart_cache_server_puts_total 1",
		"binpart_cache_server_hellos_total 1",
		"binpart_cache_server_traces 1",
		`binpart_cache_server_bytes_total{direction="in"}`,
		`binpart_cache_server_op_latency_seconds{op="get",quantile="0.99"}`,
		`binpart_cache_server_op_latency_seconds{op="put",quantile="0.5"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestCacheTierLatencies checks that tier probes feed the per-tier
// histograms keyed by tier name, and that a tierless cache reports nil.
func TestCacheTierLatencies(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	rt := dialTier(t, RemoteConfig{}, srv)
	c := New[string](8).WithTiers(stringCodec, rt)

	k := NewHasher("t").String("lat").Sum()
	if _, err := c.GetOrCompute(k, func() (string, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}

	lat := c.TierLatencies()
	snap, ok := lat[rt.Name()]
	if !ok || snap.Count == 0 {
		t.Fatalf("no latency samples for tier %q: %v", rt.Name(), lat)
	}

	if got := New[string](8).TierLatencies(); got != nil {
		t.Errorf("tierless cache reports latencies: %v", got)
	}
}
