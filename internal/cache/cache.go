// Package cache provides content-addressed memoization for the
// partitioning pipeline. Every stage of the flow — MicroC compilation,
// profiling simulation, decompilation + decompiler optimization, and
// behavioral synthesis — is a pure function of its inputs, so each stage
// result can be keyed by a stable hash of exactly those inputs and reused
// across experiment sweeps (the O-level sweep recompiles the same four
// sources sixteen times; the area sweep re-lifts the same twenty binaries
// eleven times).
//
// A Cache is a bounded in-memory LRU with per-key in-flight coalescing
// (concurrent GetOrCompute calls for the same key compute once), hit /
// miss / eviction counters, and an optional chain of backing tiers —
// disk, a remote cache server, anything implementing Tier — for values
// that have a byte codec (see tier.go; serialized blobs carry a
// checksum header, see blob.go). Invalidation is purely structural: a key
// covers every byte of stage input, so changing any input byte produces a
// different key and the stale entry simply ages out of the LRU.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"binpart/internal/obs/hist"
)

// Key is a 256-bit content address of one stage's inputs.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates stage inputs into a Key. Every write is tagged with
// a type byte and, for variable-length data, a length prefix, so distinct
// input sequences cannot collide by concatenation ("ab"+"c" vs "a"+"bc").
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher starts a key for the named stage. The stage name separates
// key spaces: a compile key and a lift key over identical bytes differ.
func NewHasher(stage string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.String(stage)
	return h
}

func (h *Hasher) tag(t byte, n int) {
	h.buf[0] = t
	binary.LittleEndian.PutUint64(h.buf[1:9], uint64(n))
	h.h.Write(h.buf[:9])
}

// Bytes hashes a variable-length byte slice.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.tag('b', len(b))
	h.h.Write(b)
	return h
}

// String hashes a string.
func (h *Hasher) String(s string) *Hasher {
	h.tag('s', len(s))
	h.h.Write([]byte(s))
	return h
}

// Int hashes a signed integer.
func (h *Hasher) Int(v int64) *Hasher { return h.Uint64(uint64(v)) }

// Uint64 hashes an unsigned integer.
func (h *Hasher) Uint64(v uint64) *Hasher {
	h.buf[0] = 'u'
	binary.LittleEndian.PutUint64(h.buf[1:9], v)
	h.h.Write(h.buf[:9])
	return h
}

// Uint32 hashes a 32-bit word (addresses, machine words).
func (h *Hasher) Uint32(v uint32) *Hasher { return h.Uint64(uint64(v)) }

// Float64 hashes a float by bit pattern.
func (h *Hasher) Float64(v float64) *Hasher {
	h.buf[0] = 'f'
	binary.LittleEndian.PutUint64(h.buf[1:9], math.Float64bits(v))
	h.h.Write(h.buf[:9])
	return h
}

// Bool hashes a flag.
func (h *Hasher) Bool(v bool) *Hasher {
	b := byte(0)
	if v {
		b = 1
	}
	h.buf[0] = 't'
	h.buf[1] = b
	h.h.Write(h.buf[:2])
	return h
}

// Words hashes a machine-word slice (text sections) without copying into
// an intermediate buffer per element.
func (h *Hasher) Words(ws []uint32) *Hasher {
	h.tag('w', len(ws))
	var tmp [4]byte
	for _, w := range ws {
		binary.LittleEndian.PutUint32(tmp[:], w)
		h.h.Write(tmp[:])
	}
	return h
}

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Stats is a point-in-time counter snapshot. The aggregate Hits counter
// includes every served lookup regardless of tier, so per-tier
// accounting reconciles exactly: Hits = memory hits + Waits + DiskHits
// + RemoteHits + RemoteWaits, and Hits + Misses = total lookups
// (Misses already includes Corrupt recomputes).
type Stats struct {
	Hits        uint64 `json:"hits"`    // served lookups across every tier, including waits
	Misses      uint64 `json:"misses"`  // full computes, including recomputes after a corrupt blob
	Evictions   uint64 `json:"evict"`   // LRU entries dropped at capacity
	DiskHits    uint64 `json:"disk"`    // misses served from the disk tier
	RemoteHits  uint64 `json:"remote"`  // misses served from the remote peer tier
	RemoteWaits uint64 `json:"rwait"`   // cross-process claim losses served by the winner's Put
	Waits       uint64 `json:"waits"`   // GetOrCompute calls that blocked on another caller's in-flight compute
	Corrupt     uint64 `json:"corrupt"` // tier blobs that failed checksum or decode (deleted, treated as misses)
	Entries     int    `json:"entries"` // current in-memory entry count
}

// Outcome classifies how one cache lookup was served. It is the per-call
// counterpart of the aggregate Stats counters: observability spans record
// an Outcome per stage execution, and summing span outcomes per stage
// reconciles with the stage cache's Stats (hits = hit + wait + disk +
// remote + remote-wait, misses = miss + corrupt).
type Outcome uint8

const (
	// OutcomeNone marks uncached work: no cache was attached, so the
	// value was computed directly and no counter moved.
	OutcomeNone Outcome = iota
	// OutcomeHit is a memory hit.
	OutcomeHit
	// OutcomeMiss is a full compute.
	OutcomeMiss
	// OutcomeWait is a coalesced wait on another caller's in-flight
	// compute (counted as a hit in Stats, plus the Waits counter).
	OutcomeWait
	// OutcomeDisk is a memory miss served from the disk layer.
	OutcomeDisk
	// OutcomeCorrupt is a tier blob that failed checksum or decode: the
	// blob was deleted and the value recomputed (a miss in Stats, plus
	// Corrupt).
	OutcomeCorrupt
	// OutcomeRemote is a memory miss served by the remote peer tier.
	OutcomeRemote
	// OutcomeRemoteWait is a lost cross-process claim race: another
	// process computed the value and this call received its Put (a hit
	// in Stats, plus RemoteWaits).
	OutcomeRemoteWait
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeWait:
		return "wait"
	case OutcomeDisk:
		return "disk"
	case OutcomeCorrupt:
		return "corrupt"
	case OutcomeRemote:
		return "remote"
	case OutcomeRemoteWait:
		return "rwait"
	}
	return ""
}

type entry[V any] struct {
	key Key
	val V
}

type inflightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a bounded, concurrency-safe, content-addressed LRU.
// A nil *Cache is valid and caches nothing: Get always misses, Put is a
// no-op, and GetOrCompute always computes. That lets call sites thread an
// optional cache without branching.
//
// The hit path takes only a read lock: counters are atomic and recency
// updates are buffered rather than applied in place, so a warm sweep's
// workers never serialize on list bookkeeping. Buffered promotions are
// applied, oldest first, under the next write lock — before any insert or
// eviction — which keeps eviction order identical to an LRU that promotes
// immediately (as the single-threaded eviction tests require).
type Cache[V any] struct {
	capacity int

	mu       sync.RWMutex
	ll       *list.List               // front = most recently used
	items    map[Key]*list.Element    // key -> *entry
	inflight map[Key]*inflightCall[V] // keys being computed right now

	// pending buffers hit promotions recorded under the read lock. When
	// the buffer is full the note is dropped: recency degrades but
	// correctness does not.
	pending chan Key

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	diskHits    atomic.Uint64
	remoteHits  atomic.Uint64
	remoteWaits atomic.Uint64
	waits       atomic.Uint64
	corrupt     atomic.Uint64

	// tiers are the backing blob layers below the typed memory LRU, in
	// probe order (typically disk then remote). Set once during wiring,
	// before concurrent use; the codec serializes values for them.
	// tierHists is parallel to tiers: one read-latency histogram per
	// tier, recording Get/Claim probe round trips (alloc-free, so it can
	// sit on the miss path unconditionally).
	tiers     []Tier
	tierHists []*hist.Histogram
	codec     *Codec[V]
}

// New creates a cache bounded to capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*inflightCall[V]),
		pending:  make(chan Key, 1024),
	}
}

// WithDisk attaches a write-through disk tier: Put persists entries via
// the codec, and a memory miss consults the store before recomputing.
func (c *Cache[V]) WithDisk(d *DiskStore, codec Codec[V]) *Cache[V] {
	if d == nil {
		return c
	}
	return c.WithTiers(codec, d)
}

// WithTiers appends backing tiers in probe order (shallow first, e.g.
// disk then remote) and sets the byte codec that serializes values for
// them. Call during wiring, before the cache sees concurrent use;
// repeated calls append and must pass the same codec.
func (c *Cache[V]) WithTiers(codec Codec[V], tiers ...Tier) *Cache[V] {
	if c == nil || len(tiers) == 0 {
		return c
	}
	c.mu.Lock()
	c.codec = &codec
	for range tiers {
		c.tierHists = append(c.tierHists, &hist.Histogram{})
	}
	c.tiers = append(c.tiers, tiers...)
	c.mu.Unlock()
	return c
}

// tierGet probes one backing tier, timing the round trip into the
// tier's latency histogram.
func (c *Cache[V]) tierGet(i int, t Tier, k Key) ([]byte, bool) {
	start := time.Now()
	blob, ok := t.Get(k)
	c.tierHists[i].Record(time.Since(start))
	return blob, ok
}

// tierClaim is tierGet for the claim round trip, which can legitimately
// block for a lease — the histogram is where that wait becomes visible.
func (c *Cache[V]) tierClaim(i int, ct ClaimTier, k Key) ([]byte, ClaimResult, error) {
	start := time.Now()
	blob, res, err := ct.Claim(k)
	c.tierHists[i].Record(time.Since(start))
	return blob, res, err
}

// TierLatencies snapshots the per-tier read-latency histograms, keyed by
// tier name ("disk", "remote", ...). Nil-safe; empty when no tiers are
// attached.
func (c *Cache[V]) TierLatencies() map[string]hist.Snapshot {
	if c == nil || len(c.tiers) == 0 {
		return nil
	}
	out := make(map[string]hist.Snapshot, len(c.tiers))
	for i, t := range c.tiers {
		out[t.Name()] = c.tierHists[i].Snapshot()
	}
	return out
}

// Get returns the cached value for k, consulting memory then every
// backing tier (without taking a cross-process claim). Tier I/O runs
// outside the cache lock.
func (c *Cache[V]) Get(k Key) (V, bool) {
	v, _, ok := c.GetOutcome(k)
	return v, ok
}

// GetOutcome is Get reporting which layer served the lookup (OutcomeMiss
// or OutcomeCorrupt when it missed). Callers that probe, batch the
// misses elsewhere, and Put the results back — the corpus harness's
// reference-simulation phase — use it to emit one span per probe, so
// span totals still reconcile with the cache counters.
func (c *Cache[V]) GetOutcome(k Key) (V, Outcome, bool) {
	var zero V
	if c == nil {
		return zero, OutcomeNone, false
	}
	if v, ok := c.fastGet(k); ok {
		return v, OutcomeHit, true
	}
	c.mu.Lock()
	v, ok := c.memLocked(k)
	c.mu.Unlock()
	if ok {
		return v, OutcomeHit, true
	}
	sawCorrupt := false
	for i, t := range c.tiers {
		blob, ok := c.tierGet(i, t, k)
		if !ok {
			continue
		}
		v, ok := c.openBlob(k, t, blob)
		if !ok {
			sawCorrupt = true
			continue // corrupt: counted and deleted, try the next tier
		}
		out := t.HitOutcome()
		c.countServed(out)
		c.mu.Lock()
		c.drainPendingLocked()
		c.insertLocked(k, v)
		c.mu.Unlock()
		return v, out, true
	}
	c.misses.Add(1)
	if sawCorrupt {
		return zero, OutcomeCorrupt, false
	}
	return zero, OutcomeMiss, false
}

// fastGet is the contention-free hit path: a read lock, an atomic hit
// count, and a buffered recency note. The list is only mutated under the
// write lock, so concurrent readers are safe.
func (c *Cache[V]) fastGet(k Key) (V, bool) {
	var v V
	c.mu.RLock()
	e, ok := c.items[k]
	if ok {
		v = e.Value.(*entry[V]).val
	}
	c.mu.RUnlock()
	if !ok {
		return v, false
	}
	c.hits.Add(1)
	select {
	case c.pending <- k:
	default:
	}
	return v, true
}

// drainPendingLocked applies buffered hit promotions in arrival order.
// Every write-lock holder drains before inserting or evicting.
func (c *Cache[V]) drainPendingLocked() {
	for {
		select {
		case k := <-c.pending:
			if e, ok := c.items[k]; ok {
				c.ll.MoveToFront(e)
			}
		default:
			return
		}
	}
}

// memLocked checks the memory layer, recording a hit but never a miss,
// so callers decide how a miss is counted. Callers hold the write lock.
func (c *Cache[V]) memLocked(k Key) (V, bool) {
	c.drainPendingLocked()
	if e, ok := c.items[k]; ok {
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		return e.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// openBlob verifies a tier blob's checksum and decodes it. A blob that
// fails either check would, were it returned, fail the caller (or
// poison the memory layer) on a value the tier itself cannot vouch for:
// count it, delete it from the serving tier so no later run trips over
// it, and let the caller fall through — the recompute rewrites a good
// blob.
func (c *Cache[V]) openBlob(k Key, t Tier, blob []byte) (V, bool) {
	var zero V
	if c.codec == nil {
		return zero, false
	}
	payload, err := Open(blob)
	if err == nil {
		v, derr := c.codec.Unmarshal(payload)
		if derr == nil {
			return v, true
		}
	}
	c.corrupt.Add(1)
	t.Delete(k) //nolint:errcheck // best effort, like Put
	return zero, false
}

// countServed counts a lookup served by a backing tier.
func (c *Cache[V]) countServed(out Outcome) {
	c.hits.Add(1)
	switch out {
	case OutcomeDisk:
		c.diskHits.Add(1)
	case OutcomeRemote:
		c.remoteHits.Add(1)
	case OutcomeRemoteWait:
		c.remoteWaits.Add(1)
	}
}

// seal marshals and seals a value for the backing tiers.
func (c *Cache[V]) seal(v V) ([]byte, bool) {
	if c.codec == nil {
		return nil, false
	}
	payload, err := c.codec.Marshal(v)
	if err != nil {
		return nil, false
	}
	return Seal(payload), true
}

// writeTiers pushes a sealed blob to every tier except the one that
// served it (served < 0 after a compute writes all). Best effort, and
// outside any lock: blobs are content addressed, so a racing double
// write is benign.
func (c *Cache[V]) writeTiers(k Key, blob []byte, served int) {
	for i, t := range c.tiers {
		if i == served {
			continue
		}
		t.Put(k, blob) //nolint:errcheck // best effort; memory stays primary
	}
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity, and writes through to every backing tier.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.drainPendingLocked()
	c.insertLocked(k, v)
	c.mu.Unlock()
	if len(c.tiers) > 0 {
		if blob, ok := c.seal(v); ok {
			c.writeTiers(k, blob, -1)
		}
	}
}

// Delete removes k from the memory layer and every backing tier.
func (c *Cache[V]) Delete(k Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.drainPendingLocked()
	if e, ok := c.items[k]; ok {
		c.ll.Remove(e)
		delete(c.items, k)
	}
	c.mu.Unlock()
	for _, t := range c.tiers {
		t.Delete(k) //nolint:errcheck // best effort
	}
}

// insertLocked updates the memory layer only; tier write-through happens
// outside the lock (see Put and fill).
func (c *Cache[V]) insertLocked(k Key, v V) {
	if e, ok := c.items[k]; ok {
		e.Value.(*entry[V]).val = v
		c.ll.MoveToFront(e)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[V]{key: k, val: v})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry[V]).key)
		c.evictions.Add(1)
	}
}

// GetOrCompute returns the value for k, computing it with fn on a miss.
// Concurrent calls for the same key coalesce: one caller computes, the
// rest wait and share the result (a waiter counts as a hit, and also as a
// wait — the contention-visible counter). Errors are not cached.
func (c *Cache[V]) GetOrCompute(k Key, fn func() (V, error)) (V, error) {
	v, _, err := c.GetOrComputeOutcome(k, fn)
	return v, err
}

// GetOrComputeOutcome is GetOrCompute reporting how the call was served,
// so observability spans can attribute cache behavior per stage execution
// without re-deriving it from counter deltas.
//
// Tier I/O (disk reads, network round trips) happens outside the cache
// lock: the caller first registers itself in the inflight map, which
// gives it per-key exclusion, then probes the tiers. Later same-key
// callers coalesce on the inflight entry as waits — including callers
// that would have hit a tier — so a slow tier never blocks unrelated
// keys.
func (c *Cache[V]) GetOrComputeOutcome(k Key, fn func() (V, error)) (V, Outcome, error) {
	if c == nil {
		v, err := fn()
		return v, OutcomeNone, err
	}
	if v, ok := c.fastGet(k); ok {
		return v, OutcomeHit, nil
	}
	c.mu.Lock()
	if v, ok := c.memLocked(k); ok {
		c.mu.Unlock()
		return v, OutcomeHit, nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.hits.Add(1)
		c.waits.Add(1)
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			var zero V
			return zero, OutcomeWait, fl.err
		}
		return fl.val, OutcomeWait, nil
	}
	fl := &inflightCall[V]{done: make(chan struct{})}
	c.inflight[k] = fl
	c.mu.Unlock()

	out := c.fill(k, fl, fn)

	c.mu.Lock()
	delete(c.inflight, k)
	if fl.err == nil {
		c.drainPendingLocked()
		c.insertLocked(k, fl.val)
	}
	c.mu.Unlock()
	return fl.val, out, fl.err
}

// fill resolves a registered inflight call: probe the backing tiers —
// taking the cross-process claim on a ClaimTier — and compute on a
// miss, then write the sealed blob back to the tiers that did not serve
// it. Runs outside the cache lock; the inflight entry is this key's
// exclusion. fl.done is closed as soon as the value is known, before
// the tier write-back, so waiters resume immediately.
func (c *Cache[V]) fill(k Key, fl *inflightCall[V], fn func() (V, error)) Outcome {
	served := -1
	sawCorrupt := false
	var blob []byte
	var out Outcome

probe:
	for i, t := range c.tiers {
		if ct, ok := t.(ClaimTier); ok {
			// The claim tier is terminal: it either serves the value,
			// blocks until the current holder's Put, or grants this
			// process the lease to compute. A transport error degrades
			// to a local compute — losing sharing, not correctness.
			data, res, err := c.tierClaim(i, ct, k)
			if err != nil {
				break probe
			}
			switch res {
			case ClaimHit, ClaimWaitHit:
				if v, ok := c.openBlob(k, t, data); ok {
					fl.val = v
					out = OutcomeRemote
					if res == ClaimWaitHit {
						out = OutcomeRemoteWait
					}
					c.countServed(out)
					blob, served = data, i
				} else {
					sawCorrupt = true
				}
			case ClaimWon:
				// This process now owns the cross-process compute; if
				// it errors out below, the lease simply expires and a
				// waiter takes over.
			}
			break probe
		}
		if data, ok := c.tierGet(i, t, k); ok {
			if v, ok := c.openBlob(k, t, data); ok {
				fl.val = v
				out = t.HitOutcome()
				c.countServed(out)
				blob, served = data, i
				break probe
			}
			sawCorrupt = true
		}
	}

	if served < 0 {
		fl.val, fl.err = fn()
		c.misses.Add(1)
		out = OutcomeMiss
		if sawCorrupt {
			// Distinguishes a clean miss from a corrupt-blob recompute.
			out = OutcomeCorrupt
		}
	}
	close(fl.done)

	if fl.err == nil && len(c.tiers) > 0 {
		if blob == nil {
			blob, _ = c.seal(fl.val)
		}
		if blob != nil {
			c.writeTiers(k, blob, served)
		}
	}
	return out
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		DiskHits:    c.diskHits.Load(),
		RemoteHits:  c.remoteHits.Load(),
		RemoteWaits: c.remoteWaits.Load(),
		Waits:       c.waits.Load(),
		Corrupt:     c.corrupt.Load(),
	}
	c.mu.RLock()
	s.Entries = c.ll.Len()
	c.mu.RUnlock()
	return s
}
