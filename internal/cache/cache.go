// Package cache provides content-addressed memoization for the
// partitioning pipeline. Every stage of the flow — MicroC compilation,
// profiling simulation, decompilation + decompiler optimization, and
// behavioral synthesis — is a pure function of its inputs, so each stage
// result can be keyed by a stable hash of exactly those inputs and reused
// across experiment sweeps (the O-level sweep recompiles the same four
// sources sixteen times; the area sweep re-lifts the same twenty binaries
// eleven times).
//
// A Cache is a bounded in-memory LRU with per-key in-flight coalescing
// (concurrent GetOrCompute calls for the same key compute once), hit /
// miss / eviction counters, and an optional write-through disk layer for
// values that have a byte codec. Invalidation is purely structural: a key
// covers every byte of stage input, so changing any input byte produces a
// different key and the stale entry simply ages out of the LRU.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"
)

// Key is a 256-bit content address of one stage's inputs.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates stage inputs into a Key. Every write is tagged with
// a type byte and, for variable-length data, a length prefix, so distinct
// input sequences cannot collide by concatenation ("ab"+"c" vs "a"+"bc").
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher starts a key for the named stage. The stage name separates
// key spaces: a compile key and a lift key over identical bytes differ.
func NewHasher(stage string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.String(stage)
	return h
}

func (h *Hasher) tag(t byte, n int) {
	h.buf[0] = t
	binary.LittleEndian.PutUint64(h.buf[1:9], uint64(n))
	h.h.Write(h.buf[:9])
}

// Bytes hashes a variable-length byte slice.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.tag('b', len(b))
	h.h.Write(b)
	return h
}

// String hashes a string.
func (h *Hasher) String(s string) *Hasher {
	h.tag('s', len(s))
	h.h.Write([]byte(s))
	return h
}

// Int hashes a signed integer.
func (h *Hasher) Int(v int64) *Hasher { return h.Uint64(uint64(v)) }

// Uint64 hashes an unsigned integer.
func (h *Hasher) Uint64(v uint64) *Hasher {
	h.buf[0] = 'u'
	binary.LittleEndian.PutUint64(h.buf[1:9], v)
	h.h.Write(h.buf[:9])
	return h
}

// Uint32 hashes a 32-bit word (addresses, machine words).
func (h *Hasher) Uint32(v uint32) *Hasher { return h.Uint64(uint64(v)) }

// Float64 hashes a float by bit pattern.
func (h *Hasher) Float64(v float64) *Hasher {
	h.buf[0] = 'f'
	binary.LittleEndian.PutUint64(h.buf[1:9], math.Float64bits(v))
	h.h.Write(h.buf[:9])
	return h
}

// Bool hashes a flag.
func (h *Hasher) Bool(v bool) *Hasher {
	b := byte(0)
	if v {
		b = 1
	}
	h.buf[0] = 't'
	h.buf[1] = b
	h.h.Write(h.buf[:2])
	return h
}

// Words hashes a machine-word slice (text sections) without copying into
// an intermediate buffer per element.
func (h *Hasher) Words(ws []uint32) *Hasher {
	h.tag('w', len(ws))
	var tmp [4]byte
	for _, w := range ws {
		binary.LittleEndian.PutUint32(tmp[:], w)
		h.h.Write(tmp[:])
	}
	return h
}

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 // memory hits, including coalesced in-flight waits
	Misses    uint64 // full computes
	Evictions uint64 // LRU entries dropped at capacity
	DiskHits  uint64 // misses served from the disk layer
	Entries   int    // current in-memory entry count
}

type entry[V any] struct {
	key Key
	val V
}

type inflightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a bounded, concurrency-safe, content-addressed LRU.
// A nil *Cache is valid and caches nothing: Get always misses, Put is a
// no-op, and GetOrCompute always computes. That lets call sites thread an
// optional cache without branching.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[Key]*list.Element    // key -> *entry
	inflight map[Key]*inflightCall[V] // keys being computed right now
	stats    Stats

	disk  *DiskStore
	codec *Codec[V]
}

// New creates a cache bounded to capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*inflightCall[V]),
	}
}

// WithDisk attaches a write-through disk layer: Put persists entries via
// the codec, and a memory miss consults the store before recomputing.
func (c *Cache[V]) WithDisk(d *DiskStore, codec Codec[V]) *Cache[V] {
	if c == nil || d == nil {
		return c
	}
	c.mu.Lock()
	c.disk = d
	c.codec = &codec
	c.mu.Unlock()
	return c
}

// Get returns the cached value for k.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.lookupLocked(k); ok {
		return v, true
	}
	c.stats.Misses++
	return zero, false
}

// lookupLocked checks memory then disk; it records hits but not misses,
// so callers decide how a miss is counted.
func (c *Cache[V]) lookupLocked(k Key) (V, bool) {
	if e, ok := c.items[k]; ok {
		c.ll.MoveToFront(e)
		c.stats.Hits++
		return e.Value.(*entry[V]).val, true
	}
	if c.disk != nil && c.codec != nil {
		if data, ok := c.disk.Get(k); ok {
			if v, err := c.codec.Unmarshal(data); err == nil {
				c.insertLocked(k, v, false)
				c.stats.Hits++
				c.stats.DiskHits++
				return v, true
			}
		}
	}
	var zero V
	return zero, false
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.insertLocked(k, v, true)
	c.mu.Unlock()
}

func (c *Cache[V]) insertLocked(k Key, v V, writeDisk bool) {
	if e, ok := c.items[k]; ok {
		e.Value.(*entry[V]).val = v
		c.ll.MoveToFront(e)
	} else {
		c.items[k] = c.ll.PushFront(&entry[V]{key: k, val: v})
		for c.ll.Len() > c.capacity {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(*entry[V]).key)
			c.stats.Evictions++
		}
	}
	if writeDisk && c.disk != nil && c.codec != nil {
		if data, err := c.codec.Marshal(v); err == nil {
			c.disk.Put(k, data) // best effort; the memory layer is primary
		}
	}
}

// GetOrCompute returns the value for k, computing it with fn on a miss.
// Concurrent calls for the same key coalesce: one caller computes, the
// rest wait and share the result (a waiter counts as a hit). Errors are
// not cached.
func (c *Cache[V]) GetOrCompute(k Key, fn func() (V, error)) (V, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if v, ok := c.lookupLocked(k); ok {
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			var zero V
			return zero, fl.err
		}
		return fl.val, nil
	}
	c.stats.Misses++
	fl := &inflightCall[V]{done: make(chan struct{})}
	c.inflight[k] = fl
	c.mu.Unlock()

	fl.val, fl.err = fn()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, k)
	if fl.err == nil {
		c.insertLocked(k, fl.val, true)
	}
	c.mu.Unlock()
	return fl.val, fl.err
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
