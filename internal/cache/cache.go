// Package cache provides content-addressed memoization for the
// partitioning pipeline. Every stage of the flow — MicroC compilation,
// profiling simulation, decompilation + decompiler optimization, and
// behavioral synthesis — is a pure function of its inputs, so each stage
// result can be keyed by a stable hash of exactly those inputs and reused
// across experiment sweeps (the O-level sweep recompiles the same four
// sources sixteen times; the area sweep re-lifts the same twenty binaries
// eleven times).
//
// A Cache is a bounded in-memory LRU with per-key in-flight coalescing
// (concurrent GetOrCompute calls for the same key compute once), hit /
// miss / eviction counters, and an optional write-through disk layer for
// values that have a byte codec. Invalidation is purely structural: a key
// covers every byte of stage input, so changing any input byte produces a
// different key and the stale entry simply ages out of the LRU.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"
	"sync/atomic"
)

// Key is a 256-bit content address of one stage's inputs.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates stage inputs into a Key. Every write is tagged with
// a type byte and, for variable-length data, a length prefix, so distinct
// input sequences cannot collide by concatenation ("ab"+"c" vs "a"+"bc").
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher starts a key for the named stage. The stage name separates
// key spaces: a compile key and a lift key over identical bytes differ.
func NewHasher(stage string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.String(stage)
	return h
}

func (h *Hasher) tag(t byte, n int) {
	h.buf[0] = t
	binary.LittleEndian.PutUint64(h.buf[1:9], uint64(n))
	h.h.Write(h.buf[:9])
}

// Bytes hashes a variable-length byte slice.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.tag('b', len(b))
	h.h.Write(b)
	return h
}

// String hashes a string.
func (h *Hasher) String(s string) *Hasher {
	h.tag('s', len(s))
	h.h.Write([]byte(s))
	return h
}

// Int hashes a signed integer.
func (h *Hasher) Int(v int64) *Hasher { return h.Uint64(uint64(v)) }

// Uint64 hashes an unsigned integer.
func (h *Hasher) Uint64(v uint64) *Hasher {
	h.buf[0] = 'u'
	binary.LittleEndian.PutUint64(h.buf[1:9], v)
	h.h.Write(h.buf[:9])
	return h
}

// Uint32 hashes a 32-bit word (addresses, machine words).
func (h *Hasher) Uint32(v uint32) *Hasher { return h.Uint64(uint64(v)) }

// Float64 hashes a float by bit pattern.
func (h *Hasher) Float64(v float64) *Hasher {
	h.buf[0] = 'f'
	binary.LittleEndian.PutUint64(h.buf[1:9], math.Float64bits(v))
	h.h.Write(h.buf[:9])
	return h
}

// Bool hashes a flag.
func (h *Hasher) Bool(v bool) *Hasher {
	b := byte(0)
	if v {
		b = 1
	}
	h.buf[0] = 't'
	h.buf[1] = b
	h.h.Write(h.buf[:2])
	return h
}

// Words hashes a machine-word slice (text sections) without copying into
// an intermediate buffer per element.
func (h *Hasher) Words(ws []uint32) *Hasher {
	h.tag('w', len(ws))
	var tmp [4]byte
	for _, w := range ws {
		binary.LittleEndian.PutUint32(tmp[:], w)
		h.h.Write(tmp[:])
	}
	return h
}

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 `json:"hits"`    // memory hits, including disk hits and coalesced in-flight waits
	Misses    uint64 `json:"misses"`  // full computes, including recomputes after a corrupt blob
	Evictions uint64 `json:"evict"`   // LRU entries dropped at capacity
	DiskHits  uint64 `json:"disk"`    // misses served from the disk layer
	Waits     uint64 `json:"waits"`   // GetOrCompute calls that blocked on another caller's in-flight compute
	Corrupt   uint64 `json:"corrupt"` // disk blobs that failed to decode (deleted, treated as misses)
	Entries   int    `json:"entries"` // current in-memory entry count
}

// Outcome classifies how one cache lookup was served. It is the per-call
// counterpart of the aggregate Stats counters: observability spans record
// an Outcome per stage execution, and summing span outcomes per stage
// reconciles with the stage cache's Stats (hits = hit + wait + disk,
// misses = miss + corrupt).
type Outcome uint8

const (
	// OutcomeNone marks uncached work: no cache was attached, so the
	// value was computed directly and no counter moved.
	OutcomeNone Outcome = iota
	// OutcomeHit is a memory hit.
	OutcomeHit
	// OutcomeMiss is a full compute.
	OutcomeMiss
	// OutcomeWait is a coalesced wait on another caller's in-flight
	// compute (counted as a hit in Stats, plus the Waits counter).
	OutcomeWait
	// OutcomeDisk is a memory miss served from the disk layer.
	OutcomeDisk
	// OutcomeCorrupt is a disk blob that failed to decode: the file was
	// deleted and the value recomputed (a miss in Stats, plus Corrupt).
	OutcomeCorrupt
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeWait:
		return "wait"
	case OutcomeDisk:
		return "disk"
	case OutcomeCorrupt:
		return "corrupt"
	}
	return ""
}

type entry[V any] struct {
	key Key
	val V
}

type inflightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a bounded, concurrency-safe, content-addressed LRU.
// A nil *Cache is valid and caches nothing: Get always misses, Put is a
// no-op, and GetOrCompute always computes. That lets call sites thread an
// optional cache without branching.
//
// The hit path takes only a read lock: counters are atomic and recency
// updates are buffered rather than applied in place, so a warm sweep's
// workers never serialize on list bookkeeping. Buffered promotions are
// applied, oldest first, under the next write lock — before any insert or
// eviction — which keeps eviction order identical to an LRU that promotes
// immediately (as the single-threaded eviction tests require).
type Cache[V any] struct {
	capacity int

	mu       sync.RWMutex
	ll       *list.List               // front = most recently used
	items    map[Key]*list.Element    // key -> *entry
	inflight map[Key]*inflightCall[V] // keys being computed right now

	// pending buffers hit promotions recorded under the read lock. When
	// the buffer is full the note is dropped: recency degrades but
	// correctness does not.
	pending chan Key

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	diskHits  atomic.Uint64
	waits     atomic.Uint64
	corrupt   atomic.Uint64

	disk  *DiskStore
	codec *Codec[V]
}

// New creates a cache bounded to capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*inflightCall[V]),
		pending:  make(chan Key, 1024),
	}
}

// WithDisk attaches a write-through disk layer: Put persists entries via
// the codec, and a memory miss consults the store before recomputing.
func (c *Cache[V]) WithDisk(d *DiskStore, codec Codec[V]) *Cache[V] {
	if c == nil || d == nil {
		return c
	}
	c.mu.Lock()
	c.disk = d
	c.codec = &codec
	c.mu.Unlock()
	return c
}

// Get returns the cached value for k.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	if v, ok := c.fastGet(k); ok {
		return v, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, _, ok := c.lookupLocked(k); ok {
		return v, true
	}
	c.misses.Add(1)
	return zero, false
}

// fastGet is the contention-free hit path: a read lock, an atomic hit
// count, and a buffered recency note. The list is only mutated under the
// write lock, so concurrent readers are safe.
func (c *Cache[V]) fastGet(k Key) (V, bool) {
	var v V
	c.mu.RLock()
	e, ok := c.items[k]
	if ok {
		v = e.Value.(*entry[V]).val
	}
	c.mu.RUnlock()
	if !ok {
		return v, false
	}
	c.hits.Add(1)
	select {
	case c.pending <- k:
	default:
	}
	return v, true
}

// drainPendingLocked applies buffered hit promotions in arrival order.
// Every write-lock holder drains before inserting or evicting.
func (c *Cache[V]) drainPendingLocked() {
	for {
		select {
		case k := <-c.pending:
			if e, ok := c.items[k]; ok {
				c.ll.MoveToFront(e)
			}
		default:
			return
		}
	}
}

// lookupLocked checks memory then disk; it records hits but not misses,
// so callers decide how a miss is counted. The returned Outcome is
// OutcomeHit or OutcomeDisk when found, and OutcomeMiss or OutcomeCorrupt
// when not. Callers hold the write lock.
func (c *Cache[V]) lookupLocked(k Key) (V, Outcome, bool) {
	c.drainPendingLocked()
	if e, ok := c.items[k]; ok {
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		return e.Value.(*entry[V]).val, OutcomeHit, true
	}
	var zero V
	if c.disk != nil && c.codec != nil {
		if data, ok := c.disk.Get(k); ok {
			v, err := c.codec.Unmarshal(data)
			if err == nil {
				c.insertLocked(k, v, false)
				c.hits.Add(1)
				c.diskHits.Add(1)
				return v, OutcomeDisk, true
			}
			// Corrupt or truncated blob: were it returned, the caller
			// would fail (or poison the memory layer) on a value the
			// codec itself rejects. Count it, delete the file so no
			// later run trips over it, and fall through to a miss — the
			// recompute rewrites a good blob.
			c.corrupt.Add(1)
			c.disk.Delete(k) //nolint:errcheck // best effort, like Put
			return zero, OutcomeCorrupt, false
		}
	}
	return zero, OutcomeMiss, false
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.drainPendingLocked()
	c.insertLocked(k, v, true)
	c.mu.Unlock()
}

func (c *Cache[V]) insertLocked(k Key, v V, writeDisk bool) {
	if e, ok := c.items[k]; ok {
		e.Value.(*entry[V]).val = v
		c.ll.MoveToFront(e)
	} else {
		c.items[k] = c.ll.PushFront(&entry[V]{key: k, val: v})
		for c.ll.Len() > c.capacity {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(*entry[V]).key)
			c.evictions.Add(1)
		}
	}
	if writeDisk && c.disk != nil && c.codec != nil {
		if data, err := c.codec.Marshal(v); err == nil {
			c.disk.Put(k, data) // best effort; the memory layer is primary
		}
	}
}

// GetOrCompute returns the value for k, computing it with fn on a miss.
// Concurrent calls for the same key coalesce: one caller computes, the
// rest wait and share the result (a waiter counts as a hit, and also as a
// wait — the contention-visible counter). Errors are not cached.
func (c *Cache[V]) GetOrCompute(k Key, fn func() (V, error)) (V, error) {
	v, _, err := c.GetOrComputeOutcome(k, fn)
	return v, err
}

// GetOrComputeOutcome is GetOrCompute reporting how the call was served,
// so observability spans can attribute cache behavior per stage execution
// without re-deriving it from counter deltas.
func (c *Cache[V]) GetOrComputeOutcome(k Key, fn func() (V, error)) (V, Outcome, error) {
	if c == nil {
		v, err := fn()
		return v, OutcomeNone, err
	}
	if v, ok := c.fastGet(k); ok {
		return v, OutcomeHit, nil
	}
	c.mu.Lock()
	v, out, ok := c.lookupLocked(k)
	if ok {
		c.mu.Unlock()
		return v, out, nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.hits.Add(1)
		c.waits.Add(1)
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			var zero V
			return zero, OutcomeWait, fl.err
		}
		return fl.val, OutcomeWait, nil
	}
	c.misses.Add(1)
	fl := &inflightCall[V]{done: make(chan struct{})}
	c.inflight[k] = fl
	c.mu.Unlock()

	fl.val, fl.err = fn()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, k)
	if fl.err == nil {
		c.drainPendingLocked()
		c.insertLocked(k, fl.val, true)
	}
	c.mu.Unlock()
	// out distinguishes a clean miss from a corrupt-blob recompute.
	return fl.val, out, fl.err
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		DiskHits:  c.diskHits.Load(),
		Waits:     c.waits.Load(),
		Corrupt:   c.corrupt.Load(),
	}
	c.mu.RLock()
	s.Entries = c.ll.Len()
	c.mu.RUnlock()
	return s
}
