package cache

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestServerCloseDrainsEverything is the shutdown-ordering regression
// test: after exercising every kind of server goroutine — protocol
// connections, a parked CLAIM, the metrics sidecar — Close must return
// with all of them gone. The assertion is goleak-style: the process
// goroutine count returns to its pre-server baseline.
func TestServerCloseDrainsEverything(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	srv, err := ListenAndServe("127.0.0.1:0", ServerConfig{
		Dir:         t.TempDir(), // unbounded budget: no background eviction sweep
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}

	rt, err := NewRemoteTier([]string{srv.Addr()}, RemoteConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Ping(); err != nil {
		t.Fatal(err)
	}
	k := NewHasher("t").String("shutdown").Sum()
	blob := Seal([]byte("payload"))
	if err := rt.Put(k, blob); err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.Get(k); !ok {
		t.Fatal("get after put missed")
	}

	// Win a lease on an uncomputed key, then park a second client's CLAIM
	// behind it: its connection handler blocks server-side exactly the way
	// a crashed holder would leave it, and only Close may unblock it.
	k2 := NewHasher("t").String("parked").Sum()
	if _, res, err := rt.Claim(k2); err != nil || res != ClaimWon {
		t.Fatalf("claim: res=%v err=%v", res, err)
	}
	rt2, err := NewRemoteTier([]string{srv.Addr()}, RemoteConfig{Timeout: 30 * time.Second, Lease: 25 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		rt2.Claim(k2) //nolint:errcheck // fails with "server closed" when Close unblocks it
	}()
	time.Sleep(100 * time.Millisecond) // let the CLAIM reach the server and park

	// Scrape the sidecar mid-life. Keep-alives off: an idle pooled client
	// connection would otherwise hold a server-side conn goroutine and
	// make the leak assertion flaky for the wrong reason.
	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := client.Get("http://" + srv.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "binpart_cache_server_gets_total") {
		t.Errorf("metrics scrape missing server families:\n%s", body)
	}

	srv.Close()

	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the parked CLAIM")
	}
	rt.Close()
	rt2.Close()
	client.CloseIdleConnections()

	// Everything the server and clients spawned must be gone; poll
	// briefly because client-side conn goroutines unwind asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count %d never returned to baseline %d after Close:\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
