package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"binpart/internal/obs/hist"
)

// Cache-server wire protocol, version 2. One request, one response,
// length prefixed both ways; a connection carries one request at a
// time, so a blocked CLAIM occupies its connection and nothing else.
//
//	request:  [op:1][key:32][len:4 LE][payload:len]
//	response: [code:1][len:4 LE][payload:len]
//
// GET    payload: none.            response: rcHit + blob, or rcMiss.
// PUT    payload: sealed blob.     response: rcOK, or rcErr (bad checksum).
// CLAIM  payload: lease ms (4 LE). response: rcHit + blob (value existed),
//
//	rcWaitHit + blob (blocked on the holder's PUT), or rcWon (the
//	caller now holds the lease and must PUT or let it expire).
//
// DELETE payload: none.            response: rcOK.
// STATS  payload: none.            response: rcOK + ServerStats JSON.
// HELLO  payload: [version:1][trace-id:rest] (v2). The client announces
//
//	its protocol version and run trace ID once per fresh connection,
//	tying the server's work into the run's distributed trace. The key
//	field is unused. Response: rcOK. A v1 server answers rcErr
//	("unknown op"), which clients ignore — HELLO is fail-soft, so v2
//	clients interoperate with v1 servers and vice versa.
//
// Blobs cross the wire sealed (see blob.go): the server verifies the
// checksum on PUT and stores the blob opaquely; clients re-verify on
// the way in, so a corrupted transfer or a corrupted server store is
// caught at the same place as a corrupt disk file.
const (
	opGet    byte = 1
	opPut    byte = 2
	opClaim  byte = 3
	opStats  byte = 4
	opDelete byte = 5
	opHello  byte = 6

	rcMiss    byte = 0
	rcHit     byte = 1
	rcWon     byte = 2
	rcWaitHit byte = 3
	rcOK      byte = 4
	rcErr     byte = 5

	// protocolVersion is what HELLO announces. Version 1 predates HELLO.
	protocolVersion byte = 2
)

// maxWireBlob bounds a single wire payload; anything larger is a
// protocol error, not a cache entry.
const maxWireBlob = 256 << 20

// reqHeaderLen and respHeaderLen are the fixed wire header sizes.
const (
	reqHeaderLen  = 1 + sha256.Size + 4
	respHeaderLen = 1 + 4
)

// RemoteConfig tunes a RemoteTier. The zero value selects the defaults.
type RemoteConfig struct {
	// Lease is the cross-process claim lease this client requests: how
	// long the server waits for the claim winner's PUT before handing
	// the claim to a waiter. Default 10s.
	Lease time.Duration
	// Timeout is the per-operation I/O deadline (dial, write, read). A
	// CLAIM's read deadline is Lease+Timeout, since it legitimately
	// blocks for up to the lease. Default 5s.
	Timeout time.Duration
	// TraceID, when set, is announced to every peer on each fresh
	// connection via HELLO, tagging the server's view of this client
	// into the run's distributed trace. Empty disables the handshake.
	TraceID string
}

const (
	defaultLease   = 10 * time.Second
	defaultTimeout = 5 * time.Second
	// idleConnsPerPeer caps the per-peer idle pool; bursts dial extra
	// connections and close them on release.
	idleConnsPerPeer = 4
	// ringReplicas is the virtual-node count per peer on the hash ring:
	// enough for ±a few percent of balance with a handful of peers,
	// cheap to binary search.
	ringReplicas = 128
)

// RemoteTier is the network peer tier: a client of one or more cache
// servers (server.go) with keys consistent-hash sharded across the
// peers. It implements ClaimTier, extending singleflight across
// processes — a worker that loses the claim race for a key waits for
// the winner's PUT instead of recomputing.
//
// Every operation is fail-soft: a transport error counts on Errs and
// degrades to a miss (Get) or a won claim (Claim), so a dead peer slows
// a sweep down to local recomputes rather than failing it.
type RemoteTier struct {
	peers   []*remotePeer
	ring    []ringPoint
	lease   time.Duration
	timeout time.Duration
	errs    atomic.Uint64
}

type ringPoint struct {
	hash uint64
	peer *remotePeer
}

// NewRemoteTier builds a tier over the given peer addresses (host:port).
// No connection is made until the first operation; Ping checks
// reachability eagerly.
func NewRemoteTier(addrs []string, cfg RemoteConfig) (*RemoteTier, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cache: remote tier needs at least one peer address")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = defaultLease
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	t := &RemoteTier{lease: cfg.Lease, timeout: cfg.Timeout}
	for _, addr := range addrs {
		p := &remotePeer{addr: addr, timeout: cfg.Timeout, traceID: cfg.TraceID}
		t.peers = append(t.peers, p)
		for i := 0; i < ringReplicas; i++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", addr, i)))
			t.ring = append(t.ring, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), peer: p})
		}
	}
	sort.Slice(t.ring, func(i, j int) bool { return t.ring[i].hash < t.ring[j].hash })
	return t, nil
}

// peerFor routes a key to its shard: the first ring point at or after
// the key's hash, wrapping. With one peer this is a constant.
func (t *RemoteTier) peerFor(k Key) *remotePeer {
	if len(t.peers) == 1 {
		return t.peers[0]
	}
	h := binary.BigEndian.Uint64(k[:8])
	i := sort.Search(len(t.ring), func(i int) bool { return t.ring[i].hash >= h })
	if i == len(t.ring) {
		i = 0
	}
	return t.ring[i].peer
}

// Name implements Tier.
func (t *RemoteTier) Name() string { return "remote" }

// HitOutcome implements Tier.
func (t *RemoteTier) HitOutcome() Outcome { return OutcomeRemote }

// Get implements Tier: a GET against the key's shard. Transport errors
// degrade to a miss.
func (t *RemoteTier) Get(k Key) ([]byte, bool) {
	code, payload, err := t.peerFor(k).do(opGet, k, nil, t.timeout)
	if err != nil {
		t.errs.Add(1)
		return nil, false
	}
	if code != rcHit {
		return nil, false
	}
	return payload, true
}

// Put implements Tier: a PUT against the key's shard. A PUT also
// fulfils any claim the caller holds for k, waking cross-process
// waiters.
func (t *RemoteTier) Put(k Key, blob []byte) error {
	code, payload, err := t.peerFor(k).do(opPut, k, blob, t.timeout)
	if err != nil {
		t.errs.Add(1)
		return err
	}
	if code == rcErr {
		return fmt.Errorf("cache: remote put: %s", payload)
	}
	return nil
}

// Delete implements Tier.
func (t *RemoteTier) Delete(k Key) error {
	if _, _, err := t.peerFor(k).do(opDelete, k, nil, t.timeout); err != nil {
		t.errs.Add(1)
		return err
	}
	return nil
}

// Claim implements ClaimTier. The server answers immediately with the
// value (ClaimHit) or the lease (ClaimWon), or blocks the call until
// the current holder's PUT (ClaimWaitHit) or lease expiry (in which
// case this caller becomes the holder). Transport errors degrade to
// ClaimWon — compute locally, lose the sharing.
func (t *RemoteTier) Claim(k Key) ([]byte, ClaimResult, error) {
	var leaseMs [4]byte
	binary.LittleEndian.PutUint32(leaseMs[:], uint32(t.lease.Milliseconds()))
	code, payload, err := t.peerFor(k).do(opClaim, k, leaseMs[:], t.lease+t.timeout)
	if err != nil {
		t.errs.Add(1)
		return nil, ClaimWon, err
	}
	switch code {
	case rcHit:
		return payload, ClaimHit, nil
	case rcWaitHit:
		return payload, ClaimWaitHit, nil
	case rcWon, rcMiss:
		return nil, ClaimWon, nil
	case rcErr:
		return nil, ClaimWon, fmt.Errorf("cache: remote claim: %s", payload)
	}
	return nil, ClaimWon, fmt.Errorf("cache: remote claim: unexpected response code %d", code)
}

// Errs returns the transport-error count: operations that degraded to
// local behavior instead of reaching their shard.
func (t *RemoteTier) Errs() uint64 { return t.errs.Load() }

// Ping verifies every peer answers a STATS round trip.
func (t *RemoteTier) Ping() error {
	for _, p := range t.peers {
		if _, err := statsFrom(p, t.timeout); err != nil {
			return fmt.Errorf("cache: remote peer %s: %w", p.addr, err)
		}
	}
	return nil
}

// PeerStats is one shard server's counters, tagged with its address.
type PeerStats struct {
	Addr string `json:"addr"`
	ServerStats
}

// PeerMetrics is this client's wire-level view of one shard: operations
// completed, transport errors, bytes each way, and the round-trip-time
// histogram (CLAIM round trips include lease waits, so the tail is the
// cross-process contention signal).
type PeerMetrics struct {
	Addr     string        `json:"addr"`
	Ops      uint64        `json:"ops"`
	Errs     uint64        `json:"errs"`
	BytesIn  uint64        `json:"bytes_in"`
	BytesOut uint64        `json:"bytes_out"`
	RTT      hist.Snapshot `json:"rtt"`
}

// PeerMetrics snapshots the client-side wire metrics for every peer, in
// configuration order.
func (t *RemoteTier) PeerMetrics() []PeerMetrics {
	out := make([]PeerMetrics, 0, len(t.peers))
	for _, p := range t.peers {
		out = append(out, PeerMetrics{
			Addr:     p.addr,
			Ops:      p.ops.Load(),
			Errs:     p.errs.Load(),
			BytesIn:  p.bytesIn.Load(),
			BytesOut: p.bytesOut.Load(),
			RTT:      p.rtt.Snapshot(),
		})
	}
	return out
}

// StatsFromPeers fetches every shard's ServerStats.
func (t *RemoteTier) StatsFromPeers() ([]PeerStats, error) {
	out := make([]PeerStats, 0, len(t.peers))
	for _, p := range t.peers {
		s, err := statsFrom(p, t.timeout)
		if err != nil {
			return nil, fmt.Errorf("cache: remote peer %s: %w", p.addr, err)
		}
		out = append(out, PeerStats{Addr: p.addr, ServerStats: s})
	}
	return out, nil
}

func statsFrom(p *remotePeer, timeout time.Duration) (ServerStats, error) {
	var s ServerStats
	code, payload, err := p.do(opStats, Key{}, nil, timeout)
	if err != nil {
		return s, err
	}
	if code != rcOK {
		return s, fmt.Errorf("stats response code %d", code)
	}
	if err := json.Unmarshal(payload, &s); err != nil {
		return s, err
	}
	return s, nil
}

// Close drops every pooled connection. In-flight operations finish on
// their own connections.
func (t *RemoteTier) Close() {
	for _, p := range t.peers {
		p.closeIdle()
	}
}

// remotePeer is one shard endpoint with a small idle-connection pool
// and per-peer wire metrics: operation/error counts, bytes each way,
// and a round-trip-time histogram (claim RTTs include lease waits).
type remotePeer struct {
	addr    string
	timeout time.Duration
	traceID string

	ops      atomic.Uint64
	errs     atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	rtt      hist.Histogram

	mu   sync.Mutex
	idle []net.Conn
}

func (p *remotePeer) conn() (net.Conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", p.addr, p.timeout)
	if err != nil {
		return nil, err
	}
	// Announce trace context once per fresh connection. Any failure —
	// including a v1 server's rcErr — leaves the connection usable; a
	// genuinely broken transport surfaces on the operation that follows.
	if p.traceID != "" {
		if err := p.hello(c); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// hello runs the HELLO round trip on a fresh connection: protocol
// version byte plus the trace ID. The response code is deliberately
// ignored — a v1 server answers rcErr for the unknown op and the
// connection stays usable either way.
func (p *remotePeer) hello(c net.Conn) error {
	if err := c.SetDeadline(time.Now().Add(p.timeout)); err != nil {
		return err
	}
	payload := append([]byte{protocolVersion}, p.traceID...)
	req := make([]byte, reqHeaderLen+len(payload))
	req[0] = opHello
	binary.LittleEndian.PutUint32(req[1+sha256.Size:reqHeaderLen], uint32(len(payload)))
	copy(req[reqHeaderLen:], payload)
	if _, err := c.Write(req); err != nil {
		return err
	}
	var hdr [respHeaderLen]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxWireBlob {
		return fmt.Errorf("cache: hello response blob %d bytes exceeds limit", n)
	}
	if n > 0 {
		if _, err := io.CopyN(io.Discard, c, int64(n)); err != nil {
			return err
		}
	}
	p.bytesOut.Add(uint64(len(req)))
	p.bytesIn.Add(uint64(respHeaderLen) + uint64(n))
	return nil
}

func (p *remotePeer) release(c net.Conn) {
	c.SetDeadline(time.Time{}) //nolint:errcheck // pooled conns reset their deadline per op
	p.mu.Lock()
	if len(p.idle) < idleConnsPerPeer {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

func (p *remotePeer) closeIdle() {
	p.mu.Lock()
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	p.mu.Unlock()
}

// do runs one request/response round trip on a pooled connection. Any
// error closes the connection instead of returning it to the pool, so a
// half-read stream never poisons a later operation.
func (p *remotePeer) do(op byte, k Key, payload []byte, deadline time.Duration) (code byte, resp []byte, err error) {
	start := time.Now()
	c, err := p.conn()
	if err != nil {
		p.errs.Add(1)
		return 0, nil, err
	}
	defer func() {
		if err != nil {
			p.errs.Add(1)
			c.Close()
			return
		}
		p.ops.Add(1)
		p.rtt.Record(time.Since(start))
		p.release(c)
	}()
	if err = c.SetDeadline(time.Now().Add(deadline)); err != nil {
		return 0, nil, err
	}
	req := make([]byte, reqHeaderLen+len(payload))
	req[0] = op
	copy(req[1:1+sha256.Size], k[:])
	binary.LittleEndian.PutUint32(req[1+sha256.Size:reqHeaderLen], uint32(len(payload)))
	copy(req[reqHeaderLen:], payload)
	if _, err = c.Write(req); err != nil {
		return 0, nil, err
	}
	p.bytesOut.Add(uint64(len(req)))
	var hdr [respHeaderLen]byte
	if _, err = io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxWireBlob {
		err = fmt.Errorf("cache: remote response blob %d bytes exceeds limit", n)
		return 0, nil, err
	}
	if n > 0 {
		resp = make([]byte, n)
		if _, err = io.ReadFull(c, resp); err != nil {
			return 0, nil, err
		}
	}
	p.bytesIn.Add(uint64(respHeaderLen) + uint64(n))
	return hdr[0], resp, nil
}
