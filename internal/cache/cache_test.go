package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestKeyStability pins the key derivation: the same inputs must hash to
// the same key within a process, across processes, and across releases.
// The literal below is part of the cache's on-disk compatibility surface;
// if the encoding changes intentionally, update it (old disk entries are
// then unreachable, which is the designed invalidation path).
func TestKeyStability(t *testing.T) {
	mk := func() Key {
		return NewHasher("stage").
			String("source text").
			Int(-3).
			Uint64(7).
			Uint32(0x0040_0000).
			Float64(0.9).
			Bool(true).
			Bytes([]byte{1, 2, 3}).
			Words([]uint32{0xdeadbeef, 0}).
			Sum()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("same inputs, different keys: %s vs %s", a, b)
	}
	const pinned = "40e846754eb13ba607856324ca9bbf65dcdbac5e7642c0c7b854d728bffd578c"
	if a.String() != pinned {
		t.Errorf("key derivation changed: got %s, pinned %s", a, pinned)
	}
}

// TestKeyInvalidation is table-driven over single-component perturbations:
// changing any one input byte (or the stage name, or the write order) must
// change the key.
func TestKeyInvalidation(t *testing.T) {
	base := func() *Hasher { return NewHasher("compile") }
	baseKey := base().String("int main(){}").Int(2).Bool(false).Sum()

	cases := []struct {
		name string
		key  Key
	}{
		{"stage differs", NewHasher("lift").String("int main(){}").Int(2).Bool(false).Sum()},
		{"one source byte differs", base().String("int main(){ }").Int(2).Bool(false).Sum()},
		{"option int differs", base().String("int main(){}").Int(3).Bool(false).Sum()},
		{"option flag differs", base().String("int main(){}").Int(2).Bool(true).Sum()},
		{"field order differs", base().Int(2).String("int main(){}").Bool(false).Sum()},
		{"concatenation shifted", base().String("int main(){}2").Int(0).Bool(false).Sum()},
		{"missing trailing field", base().String("int main(){}").Int(2).Sum()},
	}
	for _, tc := range cases {
		if tc.key == baseKey {
			t.Errorf("%s: key did not change", tc.name)
		}
	}
}

// TestLRUEvictionOrder checks both eviction order and that Get refreshes
// recency.
func TestLRUEvictionOrder(t *testing.T) {
	key := func(i int) Key { return NewHasher("t").Int(int64(i)).Sum() }
	c := New[int](2)
	c.Put(key(1), 1)
	c.Put(key(2), 2)
	if _, ok := c.Get(key(1)); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(key(3), 3) // evicts 2
	if _, ok := c.Get(key(2)); ok {
		t.Error("entry 2 survived eviction; LRU order wrong")
	}
	for _, i := range []int{1, 3} {
		if v, ok := c.Get(key(i)); !ok || v != i {
			t.Errorf("entry %d lost (ok=%v v=%d)", i, ok, v)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

// TestGetOrCompute covers the miss-compute-hit cycle and error paths.
func TestGetOrCompute(t *testing.T) {
	c := New[string](8)
	k := NewHasher("t").String("k").Sum()
	calls := 0
	get := func() (string, error) { calls++; return "v", nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute(k, get)
		if err != nil || v != "v" {
			t.Fatalf("round %d: %q, %v", i, v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	// Errors are not cached: the next call recomputes.
	ke := NewHasher("t").String("err").Sum()
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(ke, func() (string, error) { return "", boom }); err != boom {
		t.Fatalf("error not propagated: %v", err)
	}
	if v, err := c.GetOrCompute(ke, func() (string, error) { return "ok", nil }); err != nil || v != "ok" {
		t.Fatalf("error was cached: %q, %v", v, err)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 3 {
		t.Errorf("stats = %+v, want 2 hits / 3 misses", s)
	}
}

// TestConcurrentGetPut hammers a small cache from many goroutines; run
// under -race this is the data-race check for the LRU internals.
func TestConcurrentGetPut(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := NewHasher("t").Int(int64(i % 32)).Sum()
				switch i % 3 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				default:
					c.GetOrCompute(k, func() (int, error) { return i, nil })
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Errorf("capacity exceeded: %d entries", n)
	}
}

// TestInflightCoalescing checks that concurrent GetOrCompute calls for
// one key run the compute function exactly once and all share the result.
func TestInflightCoalescing(t *testing.T) {
	c := New[int](4)
	k := NewHasher("t").String("slow").Sum()
	var computes atomic.Int32
	gate := make(chan struct{})
	const waiters = 6
	results := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrCompute(k, func() (int, error) {
				computes.Add(1)
				<-gate // hold every racer in the in-flight window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	close(gate)
	wg.Wait()
	close(results)
	for v := range results {
		if v != 42 {
			t.Errorf("waiter got %d, want 42", v)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}

// TestNilCacheSafe checks the nil-cache contract used by optional wiring.
func TestNilCacheSafe(t *testing.T) {
	var c *Cache[int]
	k := NewHasher("t").Sum()
	if _, ok := c.Get(k); ok {
		t.Error("nil cache hit")
	}
	c.Put(k, 1)
	v, err := c.GetOrCompute(k, func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("nil GetOrCompute = %d, %v", v, err)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil stats = %+v", s)
	}
}

// TestDiskStoreRoundTrip checks the write-through layer: a second cache
// sharing the directory serves a cold Get from disk.
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	codec := Codec[string]{
		Marshal:   func(s string) ([]byte, error) { return []byte(s), nil },
		Unmarshal: func(b []byte) (string, error) { return string(b), nil },
	}
	k := NewHasher("t").String("persist").Sum()

	warm := New[string](4).WithDisk(store, codec)
	warm.Put(k, "hello")

	cold := New[string](4).WithDisk(store, codec)
	v, ok := cold.Get(k)
	if !ok || v != "hello" {
		t.Fatalf("disk miss: %q, %v", v, ok)
	}
	s := cold.Stats()
	if s.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", s.DiskHits)
	}
	// A corrupt blob must fall through to a miss, not an error.
	k2 := NewHasher("t").String("corrupt").Sum()
	bad := Codec[string]{
		Marshal:   codec.Marshal,
		Unmarshal: func([]byte) (string, error) { return "", fmt.Errorf("corrupt") },
	}
	store.Put(k2, []byte("junk"))
	c3 := New[string](4).WithDisk(store, bad)
	if _, ok := c3.Get(k2); ok {
		t.Error("corrupt blob served")
	}
}

// lengthCodec is a codec whose unmarshal actually validates the blob: a
// 4-byte length prefix followed by the payload. Truncating the file makes
// decode fail, the way a torn write corrupts a real .sbc entry.
var lengthCodec = Codec[string]{
	Marshal: func(s string) ([]byte, error) {
		b := make([]byte, 4+len(s))
		binary.LittleEndian.PutUint32(b, uint32(len(s)))
		copy(b[4:], s)
		return b, nil
	},
	Unmarshal: func(b []byte) (string, error) {
		if len(b) < 4 {
			return "", fmt.Errorf("short blob: %d bytes", len(b))
		}
		n := binary.LittleEndian.Uint32(b)
		if uint32(len(b)-4) != n {
			return "", fmt.Errorf("truncated blob: have %d want %d", len(b)-4, n)
		}
		return string(b[4:]), nil
	},
}

// TestCorruptBlobRecovery is the regression test for the silent-corruption
// bug: a truncated .sbc blob must be treated as a miss (never served), be
// counted in the Corrupt stat, be deleted from disk, and be rewritten by
// the recompute — so a warm rerun over a damaged cache directory produces
// exactly the cold run's results.
func TestCorruptBlobRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewHasher("sim").String("fir").Int(2).Sum()
	compute := func() (string, error) { return "profile-data", nil }

	// Cold run: compute and persist.
	cold := New[string](4).WithDisk(store, lengthCodec)
	coldVal, err := cold.GetOrCompute(k, compute)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the blob on disk, as a torn write or partial copy would.
	blobPath := filepath.Join(dir, k.String()+".sbc")
	data, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatalf("blob not persisted: %v", err)
	}
	if err := os.WriteFile(blobPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm rerun in a fresh process (new cache, same directory): the
	// corrupt blob must not be served; the recompute must match cold.
	warm := New[string](4).WithDisk(store, lengthCodec)
	warmVal, out, err := warm.GetOrComputeOutcome(k, compute)
	if err != nil {
		t.Fatal(err)
	}
	if warmVal != coldVal {
		t.Errorf("warm value %q != cold value %q", warmVal, coldVal)
	}
	if out != OutcomeCorrupt {
		t.Errorf("outcome = %v, want corrupt", out)
	}
	s := warm.Stats()
	if s.Corrupt != 1 {
		t.Errorf("corrupt stat = %d, want 1", s.Corrupt)
	}
	if s.Misses != 1 || s.Hits != 0 || s.DiskHits != 0 {
		t.Errorf("stats = %+v, want exactly one miss", s)
	}

	// The recompute must have replaced the damaged blob with a good one:
	// a third cold cache now serves it from disk.
	third := New[string](4).WithDisk(store, lengthCodec)
	v, out, err := third.GetOrComputeOutcome(k, func() (string, error) {
		t.Error("recompute ran; corrupt blob was not rewritten")
		return "", nil
	})
	if err != nil || v != coldVal {
		t.Fatalf("disk reread = %q, %v", v, err)
	}
	if out != OutcomeDisk {
		t.Errorf("outcome = %v, want disk", out)
	}
}

// TestCorruptBlobDeleted checks the delete half in isolation: after the
// corrupt lookup the damaged file is gone even if nothing recomputes (a
// plain Get), so later runs do not trip over it again.
func TestCorruptBlobDeleted(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewHasher("t").String("victim").Sum()
	if err := store.Put(k, []byte{1, 2}); err != nil { // too short for lengthCodec
		t.Fatal(err)
	}
	c := New[string](4).WithDisk(store, lengthCodec)
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt blob served")
	}
	if _, err := os.Stat(filepath.Join(dir, k.String()+".sbc")); !os.IsNotExist(err) {
		t.Errorf("corrupt blob still on disk (err=%v)", err)
	}
	if got := c.Stats().Corrupt; got != 1 {
		t.Errorf("corrupt stat = %d, want 1", got)
	}
}
