package exper

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"binpart/internal/bench"
	"binpart/internal/binimg"
	"binpart/internal/core"
)

// Runner executes experiment sweeps over a bounded worker pool with an
// optional content-addressed stage-cache set. Every table and figure
// fans its (benchmark, opt level, options) points out across Workers
// goroutines and reassembles the rows in submission order, so the
// rendered tables are byte-identical to a serial run at any worker
// count. The zero value runs serially without caching.
type Runner struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Caches memoizes the compile, simulate, lift, and synthesis stages
	// across sweep points; nil disables caching.
	Caches *core.Caches
}

// NewRunner builds a Runner. workers <= 0 selects GOMAXPROCS; caches may
// be nil.
func NewRunner(workers int, caches *core.Caches) *Runner {
	return &Runner{Workers: workers, Caches: caches}
}

// defaultRunner backs the package-level Run* entry points: serial and
// cacheless, preserving the historical behavior the per-stage benchmarks
// in bench_test.go measure.
var defaultRunner = &Runner{Workers: 1}

// rowJob is one sweep point: a benchmark compiled at one optimization
// level and partitioned under one configuration.
type rowJob struct {
	bench bench.Benchmark
	level int
	opts  core.Options
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fanOut runs n indexed jobs over a bounded worker pool and returns the
// results in index order regardless of completion order: workers pull
// indexes from a channel and send indexed results back, and the collector
// writes each into its slot. The first error aborts the sweep (remaining
// jobs are skipped, in-flight ones drain).
func fanOut[T any](workers, n int, run func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	type result struct {
		index int
		val   T
		err   error
	}
	jobCh := make(chan int)
	resCh := make(chan result, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				if failed.Load() {
					resCh <- result{index: i, err: errSkipped}
					continue
				}
				v, err := run(i)
				if err != nil {
					failed.Store(true)
				}
				resCh <- result{index: i, val: v, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobCh <- i
		}
		close(jobCh)
		wg.Wait()
		close(resCh)
	}()

	var firstErr error
	for res := range resCh {
		if res.err != nil {
			if firstErr == nil && res.err != errSkipped {
				firstErr = res.err
			}
			continue
		}
		out[res.index] = res.val
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// rows executes every job through the full flow, one Row per job, in job
// order.
func (r *Runner) rows(jobs []rowJob) ([]Row, error) {
	return fanOut(r.workers(), len(jobs), func(i int) (Row, error) {
		return r.runOne(jobs[i])
	})
}

// analyses builds each job's platform-independent core.Analysis through
// the worker pool, in job order. Sweeps whose points differ only in
// platform, area budget, or algorithm analyze once per benchmark here and
// fan the points over core.Evaluate, which costs microseconds per call.
func (r *Runner) analyses(jobs []rowJob) ([]*core.Analysis, error) {
	return fanOut(r.workers(), len(jobs), func(i int) (*core.Analysis, error) {
		j := jobs[i]
		img, err := r.compile(j)
		if err != nil {
			return nil, err
		}
		a, err := core.AnalyzeWith(img, j.opts, r.Caches)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.bench.Name, err)
		}
		return a, nil
	})
}

// errSkipped marks jobs abandoned after another job already failed.
var errSkipped = fmt.Errorf("exper: skipped after earlier failure")

// compile builds a job's binary, through the compile cache when present.
func (r *Runner) compile(j rowJob) (*binimg.Image, error) {
	if r.Caches != nil {
		return j.bench.CompileCached(j.level, r.Caches.Compile)
	}
	return j.bench.Compile(j.level)
}

// runOne executes the full flow for one sweep point.
func (r *Runner) runOne(j rowJob) (Row, error) {
	img, err := r.compile(j)
	if err != nil {
		return Row{}, err
	}
	rep, err := core.RunWith(img, j.opts, r.Caches)
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", j.bench.Name, err)
	}
	return rowFrom(j, rep), nil
}

// rowFrom flattens one sweep point's Report into a Row.
func rowFrom(j rowJob, rep *core.Report) Row {
	_, failed := rep.Recovery.FailReasons[j.bench.KernelFunc]
	return Row{
		Name:          j.bench.Name,
		Suite:         j.bench.Suite,
		OptLevel:      j.level,
		SWTimeMs:      rep.Metrics.SWTimeS * 1e3,
		HWSWTimeMs:    rep.Metrics.HWSWTimeS * 1e3,
		AppSpeedup:    rep.Metrics.AppSpeedup,
		KernelSpeedup: rep.Metrics.KernelSpeedup,
		EnergySavings: rep.Metrics.EnergySavings,
		AreaGates:     rep.Metrics.AreaGates,
		Selected:      len(rep.SelectedRegions()),
		KernelFailed:  failed,
		PartitionTime: rep.PartitionTime,
		Recovery:      rep.Recovery,
	}
}
