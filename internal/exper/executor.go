package exper

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"binpart/internal/bench"
	"binpart/internal/binimg"
	"binpart/internal/core"
	"binpart/internal/obs"
	"binpart/internal/sim"
)

// Runner executes experiment sweeps over a bounded worker pool with an
// optional content-addressed stage-cache set. Every table and figure
// fans its (benchmark, opt level, options) points out across Workers
// goroutines and reassembles the rows in submission order, so the
// rendered tables are byte-identical to a serial run at any worker
// count. The zero value runs serially without caching.
type Runner struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Caches memoizes the compile, simulate, lift, and synthesis stages
	// across sweep points; nil disables caching.
	Caches *core.Caches
	// Obs records per-stage spans for every sweep point, attributed with
	// the benchmark, opt level, and worker id; nil disables recording
	// (the alloc-free fast path — tables are byte-identical either way).
	Obs *obs.Recorder
	// Engine selects the simulator engine for every sweep point. The zero
	// value is sim.EngineFused, the simulator's default; all engines are
	// bit-identical, so tables don't change with the engine — only wall
	// time does (and the engine-differential suite holds them to that).
	Engine sim.Engine
	// ShardIndex/ShardCount split a sweep across cooperating processes
	// converging on one shared cache (-dist): a sharded runner executes
	// only the jobs whose index i satisfies i%ShardCount == ShardIndex
	// and skips the rest. A sharded worker exists to warm the shared
	// cache, not to render output — its tables carry zero rows for the
	// jobs it skipped, and the launcher re-runs the full sweep afterwards,
	// served from the now-warm cache. ShardCount <= 1 disables sharding.
	ShardIndex, ShardCount int

	// interrupted, once set by Interrupt, makes every not-yet-started job
	// fail fast with ErrInterrupted; in-flight jobs drain normally. That
	// rides the fanOut abort machinery, so an interrupted sweep returns
	// promptly with spans and cache counters intact for the trace flush.
	interrupted atomic.Bool
}

// ErrInterrupted is the error every sweep returns once Interrupt has
// been called — callers distinguish a cancelled run (flush partial
// observability, exit on the signal path) from a genuine failure.
var ErrInterrupted = errors.New("exper: run interrupted")

// Interrupt cancels the runner: jobs not yet started fail with
// ErrInterrupted, in-flight jobs complete. Safe from any goroutine
// (it is called from signal handlers).
func (r *Runner) Interrupt() { r.interrupted.Store(true) }

// owns reports whether this runner's shard executes job i.
func (r *Runner) owns(i int) bool {
	return r.ShardCount <= 1 || i%r.ShardCount == r.ShardIndex
}

// NewRunner builds a Runner. workers <= 0 selects GOMAXPROCS; caches may
// be nil.
func NewRunner(workers int, caches *core.Caches) *Runner {
	return &Runner{Workers: workers, Caches: caches}
}

// defaultRunner backs the package-level Run* entry points: serial and
// cacheless, preserving the historical behavior the per-stage benchmarks
// in bench_test.go measure.
var defaultRunner = &Runner{Workers: 1}

// rowJob is one sweep point: a benchmark compiled at one optimization
// level and partitioned under one configuration.
type rowJob struct {
	bench bench.Benchmark
	level int
	opts  core.Options
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fanOut runs n indexed jobs over a bounded worker pool and returns the
// results in index order regardless of completion order: workers pull
// indexes from a channel and send indexed results back, and the collector
// writes each into its slot. run receives the worker id (0 in the serial
// path) so per-job observability spans can attribute contention. The
// first error aborts the sweep (remaining jobs are skipped, in-flight
// ones drain), but every job that failed before the abort propagated is
// reported: the errors are joined in job-index order, so a sweep broken
// on three benchmarks names all three, not just the first across the
// finish line.
func fanOut[T any](workers, n int, run func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := run(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	type result struct {
		index int
		val   T
		err   error
	}
	jobCh := make(chan int)
	resCh := make(chan result, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobCh {
				if failed.Load() {
					resCh <- result{index: i, err: errSkipped}
					continue
				}
				v, err := run(worker, i)
				if err != nil {
					failed.Store(true)
				}
				resCh <- result{index: i, val: v, err: err}
			}
		}(w)
	}
	go func() {
		for i := 0; i < n; i++ {
			jobCh <- i
		}
		close(jobCh)
		wg.Wait()
		close(resCh)
	}()

	errs := make([]error, n) // per-index slots keep the join deterministic
	nerr := 0
	for res := range resCh {
		if res.err != nil {
			if res.err != errSkipped {
				errs[res.index] = res.err
				nerr++
			}
			continue
		}
		out[res.index] = res.val
	}
	if nerr > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// scope attributes spans for one sweep point; nil when recording is off.
func (r *Runner) scope(j rowJob, worker int) *obs.Scope {
	return r.Obs.Scope(j.bench.Name, j.level, worker)
}

// rows executes every job through the full flow, one Row per job, in job
// order. Each job records a "job" span covering the whole sweep point.
func (r *Runner) rows(jobs []rowJob) ([]Row, error) {
	return fanOut(r.workers(), len(jobs), func(w, i int) (Row, error) {
		if r.interrupted.Load() {
			return Row{}, ErrInterrupted
		}
		if !r.owns(i) {
			return Row{}, nil
		}
		sc := r.scope(jobs[i], w)
		sp := sc.Start(obs.StageJob)
		row, err := r.runOne(jobs[i], sc)
		sp.End()
		return row, err
	})
}

// analyses builds each job's platform-independent core.Analysis through
// the worker pool, in job order. Sweeps whose points differ only in
// platform, area budget, or algorithm analyze once per benchmark here and
// fan the points over core.Evaluate, which costs microseconds per call.
func (r *Runner) analyses(jobs []rowJob) ([]*core.Analysis, error) {
	return fanOut(r.workers(), len(jobs), func(w, i int) (*core.Analysis, error) {
		if r.interrupted.Load() {
			return nil, ErrInterrupted
		}
		if !r.owns(i) {
			return nil, nil // skipped by this shard; consumers tolerate nil
		}
		j := jobs[i]
		j.opts.Sim.Engine = r.Engine
		sc := r.scope(j, w)
		sp := sc.Start(obs.StageJob)
		defer sp.End()
		img, err := r.compile(j, sc)
		if err != nil {
			return nil, err
		}
		a, err := core.AnalyzeScoped(img, j.opts, r.Caches, sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.bench.Name, err)
		}
		return a, nil
	})
}

// errSkipped marks jobs abandoned after another job already failed.
var errSkipped = fmt.Errorf("exper: skipped after earlier failure")

// compile builds a job's binary, through the compile cache when present,
// recording a compile span with the cache outcome.
func (r *Runner) compile(j rowJob, sc *obs.Scope) (*binimg.Image, error) {
	sp := sc.Start(obs.StageCompile)
	defer sp.End()
	if r.Caches != nil && r.Caches.Compile != nil {
		img, out, err := r.Caches.Compile.GetOrComputeOutcome(
			bench.CompileKey(j.bench.Source, j.level),
			func() (*binimg.Image, error) { return j.bench.Compile(j.level) })
		sp.SetOutcome(out)
		return img, err
	}
	return j.bench.Compile(j.level)
}

// runOne executes the full flow for one sweep point.
func (r *Runner) runOne(j rowJob, sc *obs.Scope) (Row, error) {
	j.opts.Sim.Engine = r.Engine
	img, err := r.compile(j, sc)
	if err != nil {
		return Row{}, err
	}
	rep, err := core.RunScoped(img, j.opts, r.Caches, sc)
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", j.bench.Name, err)
	}
	return rowFrom(j, rep), nil
}

// rowFrom flattens one sweep point's Report into a Row.
func rowFrom(j rowJob, rep *core.Report) Row {
	_, failed := rep.Recovery.FailReasons[j.bench.KernelFunc]
	return Row{
		Name:          j.bench.Name,
		Suite:         j.bench.Suite,
		OptLevel:      j.level,
		SWTimeMs:      rep.Metrics.SWTimeS * 1e3,
		HWSWTimeMs:    rep.Metrics.HWSWTimeS * 1e3,
		AppSpeedup:    rep.Metrics.AppSpeedup,
		KernelSpeedup: rep.Metrics.KernelSpeedup,
		EnergySavings: rep.Metrics.EnergySavings,
		AreaGates:     rep.Metrics.AreaGates,
		Selected:      len(rep.SelectedRegions()),
		KernelFailed:  failed,
		PartitionTime: rep.PartitionTime,
		Recovery:      rep.Recovery,
	}
}
