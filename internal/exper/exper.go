// Package exper regenerates the paper's evaluation: every table and
// figure in DESIGN.md's experiment index is produced by a function here,
// shared by the experiments CLI (cmd/experiments) and the benchmark
// harness (bench_test.go at the repository root).
//
// Each experiment is a sweep over (benchmark, optimization level,
// configuration) points. Sweeps whose points differ only in the platform,
// area budget, or partitioning algorithm run analyze-once / evaluate-many:
// each benchmark's platform-independent core.Analysis is built once (in
// parallel across benchmarks) and every sweep point is a microsecond-scale
// core.Evaluate call. Sweeps that vary analysis inputs (opt level, dopt
// config, synthesis options) fan full-flow points over the pool instead.
// Either way a Runner bounds the worker pool and reuses stage results
// through a content-addressed cache (see internal/cache); the
// package-level Run* functions execute serially without caching and exist
// for API stability. Row order — and therefore every formatted table — is
// identical at any worker count.
package exper

import (
	"fmt"
	"strings"
	"time"

	"binpart/internal/bench"
	"binpart/internal/core"
	"binpart/internal/dopt"
	"binpart/internal/fpga"
	"binpart/internal/platform"
)

// Row is one benchmark's outcome on one configuration.
type Row struct {
	Name          string
	Suite         string
	OptLevel      int
	SWTimeMs      float64
	HWSWTimeMs    float64
	AppSpeedup    float64
	KernelSpeedup float64
	EnergySavings float64
	AreaGates     int
	Selected      int
	KernelFailed  bool
	PartitionTime time.Duration
	Recovery      core.RecoveryStats
}

// Summary aggregates rows as the paper does: averages over benchmarks
// with a hardware partition.
type Summary struct {
	AppSpeedup    float64
	KernelSpeedup float64
	EnergySavings float64
	AreaGates     int
	N             int
}

func summarize(rows []Row) Summary {
	var s Summary
	var kernelN int
	for _, r := range rows {
		s.AppSpeedup += r.AppSpeedup
		s.EnergySavings += r.EnergySavings
		s.AreaGates += r.AreaGates
		if r.KernelSpeedup > 0 {
			s.KernelSpeedup += r.KernelSpeedup
			kernelN++
		}
		s.N++
	}
	if s.N > 0 {
		s.AppSpeedup /= float64(s.N)
		s.EnergySavings /= float64(s.N)
		s.AreaGates /= s.N
	}
	if kernelN > 0 {
		s.KernelSpeedup /= float64(kernelN)
	}
	return s
}

// suiteJobs builds one job per benchmark at -O1 on the given platform.
func suiteJobs(p platform.Platform) []rowJob {
	var jobs []rowJob
	for _, b := range bench.All() {
		opts := core.DefaultOptions()
		opts.Platform = p
		jobs = append(jobs, rowJob{bench: b, level: 1, opts: opts})
	}
	return jobs
}

// Table1 is the main-results experiment: all 20 benchmarks, -O1
// binaries, 200 MHz MIPS + XC2V2000. Paper reference: average application
// speedup 5.4, kernel speedup 44.8, energy savings 69 %, area 26,261
// gates.
type Table1 struct {
	Rows    []Row
	Summary Summary
}

// RunTable1 executes the main-results experiment serially.
func RunTable1() (*Table1, error) { return defaultRunner.Table1() }

// Table1 executes the main-results experiment.
func (r *Runner) Table1() (*Table1, error) {
	return r.tableOn(platform.MIPS200)
}

func (r *Runner) tableOn(p platform.Platform) (*Table1, error) {
	rows, err := r.rows(suiteJobs(p))
	if err != nil {
		return nil, err
	}
	return &Table1{Rows: rows, Summary: summarize(rows)}, nil
}

// Format renders the table.
func (t *Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T1  Main results (-O1 binaries, %s)\n", platform.MIPS200.Name)
	fmt.Fprintf(&b, "%-12s %-10s %9s %9s %8s %8s %7s %9s\n",
		"benchmark", "suite", "sw(ms)", "hw/sw(ms)", "speedup", "kernel", "energy", "gates")
	for _, r := range t.Rows {
		note := ""
		if r.KernelFailed {
			note = "  (kernel CDFG recovery failed: indirect jump)"
		}
		fmt.Fprintf(&b, "%-12s %-10s %9.3f %9.3f %8.2f %8.2f %6.1f%% %9d%s\n",
			r.Name, r.Suite, r.SWTimeMs, r.HWSWTimeMs, r.AppSpeedup,
			r.KernelSpeedup, 100*r.EnergySavings, r.AreaGates, note)
	}
	s := t.Summary
	fmt.Fprintf(&b, "%-12s %-10s %9s %9s %8.2f %8.2f %6.1f%% %9d\n",
		"AVERAGE", "", "", "", s.AppSpeedup, s.KernelSpeedup, 100*s.EnergySavings, s.AreaGates)
	fmt.Fprintf(&b, "paper:        speedup 5.4, kernel 44.8, energy 69%%, 26261 gates\n")
	return b.String()
}

// Table2 is the platform clock sweep. Paper reference: 40 MHz -> 12.6x /
// 84 %; 200 MHz -> 5.4x / 69 %; 400 MHz -> 3.8x / 49 %.
type Table2 struct {
	MHz       []float64
	Summaries []Summary
}

// RunTable2 executes the platform sweep serially.
func RunTable2() (*Table2, error) { return defaultRunner.Table2() }

// Table2 executes the platform sweep analyze-once: the analysis stages
// never observe the CPU clock, so each benchmark is analyzed once (the
// fan-out) and every clock point is a microsecond core.Evaluate call.
func (r *Runner) Table2() (*Table2, error) {
	mhzs := []float64{40, 200, 400}
	jobs := suiteJobs(platform.MIPS200)
	as, err := r.analyses(jobs)
	if err != nil {
		return nil, err
	}
	t := &Table2{}
	for _, mhz := range mhzs {
		p := platform.MIPS(mhz, platform.MIPS200.Device)
		rows := make([]Row, len(jobs))
		for i, a := range as {
			if a == nil {
				continue // job owned by another shard
			}
			rows[i] = rowFrom(jobs[i], core.EvaluateScoped(a, p, 0, jobs[i].opts.Algorithm, r.scope(jobs[i], 0)))
		}
		t.MHz = append(t.MHz, mhz)
		t.Summaries = append(t.Summaries, summarize(rows))
	}
	return t, nil
}

// Format renders the table.
func (t *Table2) Format() string {
	var b strings.Builder
	b.WriteString("T2  Platform clock sweep (suite averages)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s  %s\n", "CPU clock", "speedup", "energy", "paper")
	paper := map[float64]string{40: "12.6x / 84%", 200: "5.4x / 69%", 400: "3.8x / 49%"}
	for i, mhz := range t.MHz {
		s := t.Summaries[i]
		fmt.Fprintf(&b, "%7.0fMHz %9.2fx %9.1f%%  %s\n", mhz, s.AppSpeedup, 100*s.EnergySavings, paper[mhz])
	}
	return b.String()
}

// Table3 is the compiler-optimization-level sweep over the four sweep
// benchmarks. Paper reference: software time improves with level;
// synthesized time usually improves too; speedup significant at every
// level but not monotone; energy similar across levels.
type Table3 struct {
	Rows []Row // grouped by benchmark, levels 0..3
}

// RunTable3 executes the optimization-level experiment serially.
func RunTable3() (*Table3, error) { return defaultRunner.Table3() }

// Table3 executes the optimization-level experiment.
func (r *Runner) Table3() (*Table3, error) {
	var jobs []rowJob
	for _, b := range bench.OptSweepSet() {
		for lvl := 0; lvl <= 3; lvl++ {
			jobs = append(jobs, rowJob{bench: b, level: lvl, opts: core.DefaultOptions()})
		}
	}
	rows, err := r.rows(jobs)
	if err != nil {
		return nil, err
	}
	return &Table3{Rows: rows}, nil
}

// Format renders the table.
func (t *Table3) Format() string {
	var b strings.Builder
	b.WriteString("T3  Compiler optimization level sweep (200 MHz MIPS)\n")
	fmt.Fprintf(&b, "%-10s %5s %10s %10s %9s %8s\n", "benchmark", "level", "sw(ms)", "hw/sw(ms)", "speedup", "energy")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %5s %10.3f %10.3f %8.2fx %7.1f%%\n",
			r.Name, fmt.Sprintf("-O%d", r.OptLevel), r.SWTimeMs, r.HWSWTimeMs,
			r.AppSpeedup, 100*r.EnergySavings)
	}
	return b.String()
}

// Table4 is the decompilation-success audit. Paper reference: almost all
// high-level constructs recovered; CDFG recovery fails for 2 EEMBC
// examples because of indirect jumps.
type Table4 struct {
	Rows       []Row
	Recovered  int
	Failed     int
	FailedList []string
}

// RunTable4 executes the recovery audit serially.
func RunTable4() (*Table4, error) { return defaultRunner.Table4() }

// Table4 executes the recovery audit.
func (r *Runner) Table4() (*Table4, error) {
	var jobs []rowJob
	for _, b := range bench.All() {
		jobs = append(jobs, rowJob{bench: b, level: 1, opts: core.DefaultOptions()})
	}
	rows, err := r.rows(jobs)
	if err != nil {
		return nil, err
	}
	t := &Table4{Rows: rows}
	for _, row := range rows {
		if row.KernelFailed {
			t.Failed++
			t.FailedList = append(t.FailedList, row.Name)
		} else {
			t.Recovered++
		}
	}
	return t, nil
}

// Format renders the table.
func (t *Table4) Format() string {
	var b strings.Builder
	b.WriteString("T4  Decompilation / control-structure recovery\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %6s %6s %8s %8s %7s %7s\n",
		"benchmark", "funcs", "fail", "loops", "shaped", "ifs", "rerolled", "promote", "narrow")
	for _, r := range t.Rows {
		rec := r.Recovery
		fmt.Fprintf(&b, "%-12s %6d %6d %6d %6d %4d/%-3d %8d %7d %7d\n",
			r.Name, rec.FuncsRecovered, rec.FuncsFailed, rec.LoopsFound,
			rec.LoopsShaped, rec.IfsShaped, rec.IfsFound,
			rec.RerolledLoops, rec.PromotedMultiplies, rec.OpsNarrowed)
	}
	if t.Failed == 0 {
		fmt.Fprintf(&b, "kernels recovered: %d/20 (paper: 18/20 — switch-table recovery closes the indirect-jump gap)\n",
			t.Recovered)
	} else {
		fmt.Fprintf(&b, "kernels recovered: %d/20 (paper: 18/20, failures from indirect jumps: %v)\n",
			t.Recovered, t.FailedList)
	}
	return b.String()
}

// Figure1 sweeps the FPGA device size (area budget) and reports the suite
// average speedup per device, motivating the paper's "different FPGA
// sizes" evaluation: speedup grows with capacity, then saturates.
type Figure1 struct {
	Devices  []string
	Speedups []float64
	Areas    []int
}

// RunFigure1 executes the area sweep serially.
func RunFigure1() (*Figure1, error) { return defaultRunner.Figure1() }

// Figure1 executes the area sweep over the Virtex-II catalog analyze-
// once: compilation, simulation, lift, and synthesis are all device-
// independent, so each of the 20 benchmarks is analyzed once (the
// fan-out) and each of the 11 devices costs one core.Evaluate call per
// benchmark — partitioning plus platform evaluation, microseconds each.
func (r *Runner) Figure1() (*Figure1, error) {
	jobs := suiteJobs(platform.MIPS200)
	as, err := r.analyses(jobs)
	if err != nil {
		return nil, err
	}
	f := &Figure1{}
	for _, dev := range fpga.Catalog {
		p := platform.MIPS(200, dev)
		var sum float64
		for i, a := range as {
			if a == nil {
				continue // job owned by another shard
			}
			sum += core.EvaluateScoped(a, p, 0, jobs[i].opts.Algorithm, r.scope(jobs[i], 0)).Metrics.AppSpeedup
		}
		f.Devices = append(f.Devices, dev.Name)
		f.Speedups = append(f.Speedups, sum/float64(len(as)))
		f.Areas = append(f.Areas, fpga.Area{Slices: dev.Slices, Mult18: dev.Mult18}.GateEquivalent())
	}
	return f, nil
}

// Format renders the figure as an ASCII series.
func (f *Figure1) Format() string {
	var b strings.Builder
	b.WriteString("F1  Average speedup vs FPGA size (200 MHz MIPS)\n")
	max := 0.0
	for _, s := range f.Speedups {
		if s > max {
			max = s
		}
	}
	for i, d := range f.Devices {
		bar := int(f.Speedups[i] / max * 40)
		fmt.Fprintf(&b, "%-9s %9d gates %7.2fx %s\n", d, f.Areas[i], f.Speedups[i], strings.Repeat("#", bar))
	}
	return b.String()
}

// Ablation compares the 90-10 heuristic against the baselines and
// measures partitioning execution time (the paper's motivation for the
// simple heuristic is speed, targeting dynamic partitioning).
type Ablation struct {
	Names     []string
	Speedups  []float64
	PartTimes []time.Duration
}

// RunPartitionerComparison compares partitioning algorithms serially.
func RunPartitionerComparison() (*Ablation, error) { return defaultRunner.PartitionerComparison() }

// PartitionerComparison compares partitioning algorithms over the suite
// analyze-once: the candidate set is algorithm-independent, so each
// benchmark is analyzed once and every algorithm is a core.Evaluate call
// — which is also the honest way to time the partitioners themselves,
// isolated from the heavy stages.
func (r *Runner) PartitionerComparison() (*Ablation, error) {
	algs := []core.Algorithm{core.AlgNinetyTen, core.AlgGreedy, core.AlgGCLP}
	jobs := suiteJobs(platform.MIPS200)
	as, err := r.analyses(jobs)
	if err != nil {
		return nil, err
	}
	a := &Ablation{}
	for _, alg := range algs {
		var sum float64
		var ptime time.Duration
		for i, an := range as {
			if an == nil {
				continue // job owned by another shard
			}
			rep := core.EvaluateScoped(an, jobs[i].opts.Platform, jobs[i].opts.AreaBudgetGates, alg, r.scope(jobs[i], 0))
			sum += rep.Metrics.AppSpeedup
			ptime += rep.PartitionTime
		}
		a.Names = append(a.Names, alg.String())
		a.Speedups = append(a.Speedups, sum/float64(len(as)))
		a.PartTimes = append(a.PartTimes, ptime/time.Duration(len(as)))
	}
	return a, nil
}

// Format renders the comparison.
func (a *Ablation) Format() string {
	var b strings.Builder
	b.WriteString("A1  Partitioning algorithm comparison (suite average)\n")
	for i, n := range a.Names {
		fmt.Fprintf(&b, "%-10s speedup %6.2fx  partition time %v\n", n, a.Speedups[i], a.PartTimes[i])
	}
	return b.String()
}

// PassAblation measures the contribution of individual decompiler
// optimizations on the four sweep benchmarks at -O3 (where rerolling and
// promotion have the most to undo).
type PassAblation struct {
	Names    []string
	Speedups []float64
	Areas    []int
}

// RunPassAblation toggles decompiler passes off one at a time, serially.
func RunPassAblation() (*PassAblation, error) { return defaultRunner.PassAblation() }

// PassAblation toggles decompiler passes off one at a time.
func (r *Runner) PassAblation() (*PassAblation, error) {
	cfgs := []struct {
		name string
		cfg  dopt.Config
		syn  func(o *core.Options)
	}{
		{name: "full", cfg: dopt.Config{}},
		{name: "no-reroll", cfg: dopt.Config{NoReroll: true}},
		{name: "no-promote", cfg: dopt.Config{NoPromote: true}},
		{name: "no-stackrm", cfg: dopt.Config{NoStackRemoval: true}},
		{name: "no-width", cfg: dopt.Config{NoWidthReduce: true}},
		{name: "no-pipeline", cfg: dopt.Config{}, syn: func(o *core.Options) { o.Synth.Pipeline = false }},
		{name: "no-alias", cfg: dopt.Config{}, syn: func(o *core.Options) { o.Partition.SkipAliasStep = true }},
		{name: "banked-mem4", cfg: dopt.Config{}, syn: func(o *core.Options) { o.Synth.Resources.MemBanks = 4 }},
	}
	var jobs []rowJob
	for _, c := range cfgs {
		for _, b := range bench.OptSweepSet() {
			opts := core.DefaultOptions()
			opts.Dopt = c.cfg
			if c.syn != nil {
				c.syn(&opts)
			}
			jobs = append(jobs, rowJob{bench: b, level: 3, opts: opts})
		}
	}
	rows, err := r.rows(jobs)
	if err != nil {
		return nil, err
	}
	a := &PassAblation{}
	per := len(bench.OptSweepSet())
	for i, c := range cfgs {
		var sum float64
		var area int
		for _, row := range rows[i*per : (i+1)*per] {
			sum += row.AppSpeedup
			area += row.AreaGates
		}
		a.Names = append(a.Names, c.name)
		a.Speedups = append(a.Speedups, sum/float64(per))
		a.Areas = append(a.Areas, area/per)
	}
	return a, nil
}

// Format renders the ablation.
func (a *PassAblation) Format() string {
	var b strings.Builder
	b.WriteString("A2  Decompiler-pass ablation (-O3 binaries, sweep benchmarks)\n")
	for i, n := range a.Names {
		fmt.Fprintf(&b, "%-12s speedup %6.2fx  area %6d gates\n", n, a.Speedups[i], a.Areas[i])
	}
	return b.String()
}

// Extension measures the indirect-jump (jump table) recovery extension:
// the paper's two failing benchmarks, with and without recovery.
type Extension struct {
	Names         []string
	BaseSpeedups  []float64
	ExtSpeedups   []float64
	BaseRecovered []bool
	ExtRecovered  []bool
}

// RunJumpTableExtension executes the extension experiment serially.
func RunJumpTableExtension() (*Extension, error) { return defaultRunner.JumpTableExtension() }

// JumpTableExtension executes the extension experiment.
func (r *Runner) JumpTableExtension() (*Extension, error) {
	names := []string{"routelookup", "ttsprk"}
	var jobs []rowJob
	for _, name := range names {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("missing benchmark %s", name)
		}
		// The baseline reproduces the paper's flow, where indirect
		// jumps defeat CDFG recovery; the default options have the
		// extension on, so it is switched off explicitly here.
		base := core.DefaultOptions()
		base.RecoverJumpTables = false
		ext := core.DefaultOptions()
		ext.RecoverJumpTables = true
		jobs = append(jobs, rowJob{bench: b, level: 1, opts: base}, rowJob{bench: b, level: 1, opts: ext})
	}
	rows, err := r.rows(jobs)
	if err != nil {
		return nil, err
	}
	e := &Extension{}
	for i, name := range names {
		base, ext := rows[2*i], rows[2*i+1]
		e.Names = append(e.Names, name)
		e.BaseSpeedups = append(e.BaseSpeedups, base.AppSpeedup)
		e.ExtSpeedups = append(e.ExtSpeedups, ext.AppSpeedup)
		e.BaseRecovered = append(e.BaseRecovered, !base.KernelFailed)
		e.ExtRecovered = append(e.ExtRecovered, !ext.KernelFailed)
	}
	return e, nil
}

// Format renders the extension experiment.
func (e *Extension) Format() string {
	var b strings.Builder
	b.WriteString("E1  Indirect-jump (jump table) recovery extension\n")
	fmt.Fprintf(&b, "%-12s %18s %18s\n", "benchmark", "paper flow", "with extension")
	for i, n := range e.Names {
		status := func(rec bool, s float64) string {
			if !rec {
				return fmt.Sprintf("FAILED (%.2fx)", s)
			}
			return fmt.Sprintf("recovered %.2fx", s)
		}
		fmt.Fprintf(&b, "%-12s %18s %18s\n", n,
			status(e.BaseRecovered[i], e.BaseSpeedups[i]),
			status(e.ExtRecovered[i], e.ExtSpeedups[i]))
	}
	return b.String()
}
