package exper

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"binpart/internal/core"
	"binpart/internal/sim"
)

// TestEngineAblationBitIdentical runs the full engine-differential sweep
// — every suite benchmark at every optimization level, through each
// engine as one multi-core batch — and requires the threaded engines to
// be bit-identical to the reference stepper.
func TestEngineAblationBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("3 engines x full suite x 4 levels")
	}
	r := &Runner{Workers: runtime.GOMAXPROCS(0), Caches: core.NewCaches()}
	e, err := r.EngineAblation()
	if err != nil {
		t.Fatal(err)
	}
	if e.Points != 80 {
		t.Fatalf("%d points, want 80 (20 benchmarks x 4 levels)", e.Points)
	}
	if len(e.Runs) != 3 {
		t.Fatalf("%d engine runs, want 3", len(e.Runs))
	}
	for _, run := range e.Runs {
		for _, m := range run.Mismatches {
			t.Errorf("%s: %s", run.Engine, m)
		}
	}
	if !e.Identical() {
		t.Fatal("engines are not bit-identical")
	}
	// Every engine retires the same instruction stream.
	for _, run := range e.Runs[1:] {
		if run.Steps != e.Runs[0].Steps {
			t.Errorf("%s retired %d steps, reference %d", run.Engine, run.Steps, e.Runs[0].Steps)
		}
	}
	// The fused engine's raison d'être: a substantial share of dynamic
	// steps retire inside fused superops.
	var fused *EngineRun
	for i := range e.Runs {
		if e.Runs[i].Engine == sim.EngineFused.String() {
			fused = &e.Runs[i]
		}
	}
	if fused == nil {
		t.Fatal("no fused engine run")
	}
	if fused.Fusion.Coverage < 0.5 {
		t.Errorf("fusion coverage %.1f%% below 50%%", 100*fused.Fusion.Coverage)
	}

	path := filepath.Join(t.TempDir(), "engines.json")
	if err := e.WriteStats(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back EngineAblation
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("stats artifact not valid JSON: %v", err)
	}
	if back.Points != e.Points || len(back.Runs) != len(e.Runs) {
		t.Errorf("artifact round-trip lost data: %d/%d points, %d/%d runs",
			back.Points, e.Points, len(back.Runs), len(e.Runs))
	}

	out := e.Format()
	for _, want := range []string{"E2", "reference", "block", "fused", "bit-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted ablation missing %q", want)
		}
	}
}
