package exper

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"binpart/internal/core"
)

// TestCorpusDifferentialClean runs a slice of the generated-program
// corpus and requires it clean: every program recovered, no report-vs-
// reference or cold-vs-warm divergence, and every switch shape present.
func TestCorpusDifferentialClean(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 24
	}
	r := NewRunner(8, core.NewCaches())
	c, err := r.Corpus(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != n {
		t.Fatalf("%d points, want %d", len(c.Points), n)
	}
	s := c.Summary()
	if len(s.Mismatches) != 0 {
		t.Errorf("differential mismatches: %v", s.Mismatches)
	}
	if s.RecoveryRate < 0.99 {
		t.Errorf("recovery rate %.3f below 0.99 (failures: %v)", s.RecoveryRate, s.Failures)
	}
	if s.SwitchPrograms == 0 {
		t.Error("no switch-shaped programs in the corpus")
	}
	if s.Accelerated == 0 {
		t.Error("no corpus program accelerated; speedup distribution is vacuous")
	}
	for _, want := range []string{"F2", "recovery:", "speedup distribution", "mean speedup"} {
		if out := c.Format(); !strings.Contains(out, want) {
			t.Errorf("corpus format missing %q", want)
		}
	}
}

// TestCorpusParallelMatchesSerial pins the executor contract for the
// corpus: an 8-worker cached run formats byte-identically to a serial
// cacheless run (PartitionTime and Design pointers are excluded from
// every observable).
func TestCorpusParallelMatchesSerial(t *testing.T) {
	n := 32
	if testing.Short() {
		n = 12
	}
	serial, err := (&Runner{Workers: 1}).Corpus(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(8, core.NewCaches()).Corpus(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parallel.Format(), serial.Format(); got != want {
		t.Errorf("parallel cached corpus differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestCorpusSummaryArtifact checks the JSON artifact round-trips.
func TestCorpusSummaryArtifact(t *testing.T) {
	r := NewRunner(4, core.NewCaches())
	c, err := r.Corpus(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := c.WriteSummary(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s CorpusSummary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if s.Programs != 8 || s.Recovered != c.Summary().Recovered {
		t.Errorf("artifact %+v does not match summary %+v", s, c.Summary())
	}
}
