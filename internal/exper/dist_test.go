package exper

import (
	"testing"

	"binpart/internal/cache"
	"binpart/internal/core"
)

// remoteCaches builds a process-equivalent cache set wired to the shared
// server, Analysis sharing included (no VHDL is emitted in a sweep).
func remoteCaches(t *testing.T, srv *cache.Server) *core.Caches {
	t.Helper()
	rt, err := cache.NewRemoteTier([]string{srv.Addr()}, cache.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return core.NewCaches().WithRemote(rt, true)
}

// TestDistributedShardedT1MatchesSerial is the distributed-sweep golden
// test, in process: two sharded runners (the "worker processes") split
// T1 between them against one shared cache server, then a fresh
// unsharded runner (the "launcher's re-run") executes the full sweep.
// Its table must be byte-identical to a serial uncached run, and it must
// have been served from the shared cache — remote analysis hits, zero
// analysis computes.
func TestDistributedShardedT1MatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full T1 sweep")
	}
	serial, err := NewRunner(1, nil).Table1()
	if err != nil {
		t.Fatal(err)
	}

	srv, err := cache.ListenAndServe("127.0.0.1:0", cache.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const shards = 2
	for s := 0; s < shards; s++ {
		w := &Runner{Workers: 2, Caches: remoteCaches(t, srv), ShardIndex: s, ShardCount: shards}
		if _, err := w.Table1(); err != nil {
			t.Fatalf("shard %d/%d: %v", s, shards, err)
		}
	}

	final := &Runner{Workers: 2, Caches: remoteCaches(t, srv)}
	dist, err := final.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dist.Format(), serial.Format(); got != want {
		t.Errorf("distributed table differs from serial:\n got:\n%s\nwant:\n%s", got, want)
	}

	s := final.Caches.Analysis.Stats()
	if s.RemoteHits == 0 {
		t.Errorf("final sweep had no remote analysis hits: %+v", s)
	}
	if s.Misses != 0 {
		t.Errorf("final sweep recomputed %d analyses the shards should have shared", s.Misses)
	}
	if srv.Stats().Expired != 0 {
		t.Errorf("server expired a lease during a healthy run: %+v", srv.Stats())
	}
}

// TestShardsPartitionJobs pins the ownership rule: every job index is
// owned by exactly one shard.
func TestShardsPartitionJobs(t *testing.T) {
	const shards, jobs = 3, 20
	for i := 0; i < jobs; i++ {
		owners := 0
		for s := 0; s < shards; s++ {
			r := &Runner{ShardIndex: s, ShardCount: shards}
			if r.owns(i) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("job %d has %d owners", i, owners)
		}
	}
	unsharded := &Runner{}
	for i := 0; i < jobs; i++ {
		if !unsharded.owns(i) {
			t.Errorf("unsharded runner disowns job %d", i)
		}
	}
}

// TestShardedCorpusCoversAllSeeds checks the corpus remapping: shards
// split the seed range without overlap, and a union of their points is
// the full unsharded corpus.
func TestShardedCorpusCoversAllSeeds(t *testing.T) {
	const n = 8
	seen := map[int64]int{}
	for s := 0; s < 2; s++ {
		r := &Runner{Workers: 2, Caches: core.NewCaches(), ShardIndex: s, ShardCount: 2}
		c, err := r.Corpus(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c.N != n/2 {
			t.Errorf("shard %d: N = %d, want %d", s, c.N, n/2)
		}
		for _, pt := range c.Points {
			seen[pt.Seed]++
			if pt.Mismatch != "" {
				t.Errorf("shard %d seed %d: %s", s, pt.Seed, pt.Mismatch)
			}
		}
	}
	for seed := int64(1); seed < 1+n; seed++ {
		if seen[seed] != 1 {
			t.Errorf("seed %d run %d times across shards, want once", seed, seen[seed])
		}
	}
}

// TestCorpusRefSimCached checks the reference-oracle caching: a second
// corpus run over one cache set must serve every reference simulation
// from the sim cache instead of re-running the slow reference stepper.
func TestCorpusRefSimCached(t *testing.T) {
	caches := core.NewCaches()
	r := &Runner{Workers: 2, Caches: caches}
	const n = 4
	if _, err := r.Corpus(n, 1); err != nil {
		t.Fatal(err)
	}
	before := caches.Sim.Stats()
	if _, err := r.Corpus(n, 1); err != nil {
		t.Fatal(err)
	}
	after := caches.Sim.Stats()
	if after.Misses != before.Misses {
		t.Errorf("second corpus run recomputed %d sims", after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("second corpus run had no sim cache hits: %+v -> %+v", before, after)
	}
}
