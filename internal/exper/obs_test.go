package exper

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"binpart/internal/core"
	"binpart/internal/obs"
)

// TestFanOutJoinsConcurrentErrors is the regression test for the
// first-error-only bug: when several jobs fail before the abort
// propagates, every failure must appear in the returned error, not just
// the one that crossed the finish line first.
func TestFanOutJoinsConcurrentErrors(t *testing.T) {
	// Two workers, two jobs, and a barrier holding both jobs in flight
	// until each has started: neither failure can win the abort race
	// before the other job is already running, so both must be reported.
	var barrier sync.WaitGroup
	barrier.Add(2)
	_, err := fanOut(2, 2, func(worker, i int) (int, error) {
		barrier.Done()
		barrier.Wait()
		return 0, fmt.Errorf("job %d exploded", i)
	})
	if err == nil {
		t.Fatal("concurrent failures produced no error")
	}
	for i := 0; i < 2; i++ {
		if want := fmt.Sprintf("job %d exploded", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestFanOutSkippedJobsNotJoined checks the complement: jobs abandoned
// after the abort flag was raised must not pollute the joined error, and
// a successful fan-out returns nil (not a joined slice of nils).
func TestFanOutSkippedJobsNotJoined(t *testing.T) {
	// Serial pool: job 0 fails, so jobs 1..3 are never attempted.
	_, err := fanOut(1, 4, func(worker, i int) (int, error) {
		if i == 0 {
			return 0, errors.New("first failure")
		}
		t.Errorf("job %d ran after failure in the serial path", i)
		return i, nil
	})
	if err == nil || strings.Contains(err.Error(), "skipped") {
		t.Errorf("serial error = %v", err)
	}

	out, err := fanOut(4, 8, func(worker, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("clean fan-out errored: %v", err)
	}
	for i, v := range out {
		if v != i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

// TestTracedSweepMatchesUntraced pins the tentpole's observer contract:
// attaching a Recorder to an 8-worker sweep must not change a byte of the
// rendered table. The recorder only watches.
func TestTracedSweepMatchesUntraced(t *testing.T) {
	plain, err := NewRunner(8, core.NewCaches()).Table3()
	if err != nil {
		t.Fatal(err)
	}

	traced := NewRunner(8, core.NewCaches())
	traced.Obs = obs.NewRecorder()
	got, err := traced.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if got.Format() != plain.Format() {
		t.Errorf("tracing changed the table:\n--- untraced ---\n%s--- traced ---\n%s", plain.Format(), got.Format())
	}
	if len(traced.Obs.Spans()) == 0 {
		t.Error("traced run recorded no spans")
	}
}

// stageCounts aggregates a recorder's spans into stage -> span count.
func stageCounts(rec *obs.Recorder) map[string]int {
	out := map[string]int{}
	for _, st := range rec.StageTotals() {
		out[st.Stage] = st.Spans
	}
	return out
}

// TestParallelSpanCountsMatchSerial checks that fan-out width never
// changes what the trace claims happened: a stage executes once per
// distinct cache key no matter how many workers race (coalesced waiters
// record wait spans, not duplicate computes), so the per-stage span
// counts of an 8-worker sweep equal a serial run's.
func TestParallelSpanCountsMatchSerial(t *testing.T) {
	serial := NewRunner(1, core.NewCaches())
	serial.Obs = obs.NewRecorder()
	if _, err := serial.Table3(); err != nil {
		t.Fatal(err)
	}

	parallel := NewRunner(8, core.NewCaches())
	parallel.Obs = obs.NewRecorder()
	if _, err := parallel.Table3(); err != nil {
		t.Fatal(err)
	}

	want := stageCounts(serial.Obs)
	got := stageCounts(parallel.Obs)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("per-stage span counts differ: serial %v, parallel %v", want, got)
	}
}

// TestManifestReconciliation is the unified-accounting property test: on
// a shared-recorder 8-worker sweep, the manifest's cache section must be
// exactly the -stats snapshot, its span total must equal the recorder's,
// and per stage the span outcomes must sum to the corresponding cache's
// counters (hits = hit + wait + disk spans, misses = miss + corrupt
// spans). Run under -race this doubles as the recorder's concurrency test.
func TestManifestReconciliation(t *testing.T) {
	caches := core.NewCaches()
	r := NewRunner(8, caches)
	r.Obs = obs.NewRecorder()
	if _, err := r.Table3(); err != nil {
		t.Fatal(err)
	}

	statsMap := caches.StatsMap()
	m := obs.BuildManifest("test", nil, 8, r.Obs, statsMap)

	if fmt.Sprint(m.Caches) != fmt.Sprint(statsMap) {
		t.Errorf("manifest caches %v != stats map %v", m.Caches, statsMap)
	}
	if got := len(r.Obs.Spans()); m.Spans != got {
		t.Errorf("manifest spans = %d, recorder has %d", m.Spans, got)
	}

	for _, st := range m.Stages {
		cacheName, ok := obs.CacheForStage[st.Stage]
		if !ok {
			continue // job/evaluate stages have no cache
		}
		s := statsMap[cacheName]
		if got, want := st.Hit+st.Wait+st.Disk+st.Remote+st.RemoteWait, s.Hits; got != want {
			t.Errorf("%s: span hits %d (hit %d + wait %d + disk %d + remote %d + rwait %d) != cache %q hits %d",
				st.Stage, got, st.Hit, st.Wait, st.Disk, st.Remote, st.RemoteWait, cacheName, want)
		}
		if got, want := st.Miss+st.Corrupt, s.Misses; got != want {
			t.Errorf("%s: span misses %d (miss %d + corrupt %d) != cache %q misses %d",
				st.Stage, got, st.Miss, st.Corrupt, cacheName, want)
		}
	}
}

// TestMetricsScrapeDuringSweep hammers the /metrics endpoint from four
// scraper goroutines while an 8-worker sweep runs underneath it. Every
// scrape must return 200 with well-formed exposition text (scrapes see a
// live Recorder and live cache histograms mid-mutation), and the final
// scrape must report the finished sweep's stage spans. Run under -race
// this is the lock-discipline test for the whole DebugSources surface.
func TestMetricsScrapeDuringSweep(t *testing.T) {
	caches := core.NewCaches()
	r := NewRunner(8, caches)
	r.Obs = obs.NewRecorder()

	dbg, err := obs.ServeDebug("127.0.0.1:0", obs.DebugSources{
		Rec:           r.Obs,
		Caches:        caches.StatsMap,
		TierLatencies: caches.TierLatencyMap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	url := "http://" + dbg.Addr() + "/metrics"

	scrape := func() string {
		resp, err := http.Get(url)
		if err != nil {
			t.Errorf("scrape: %v", err)
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("scrape: status %d, err %v", resp.StatusCode, err)
		}
		return string(body)
	}

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				body := scrape()
				// Structural sanity on a mid-sweep snapshot: every
				// non-comment line is "name{labels} value".
				for _, line := range strings.Split(body, "\n") {
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					if !strings.HasPrefix(line, "binpart_") || len(strings.Fields(line)) != 2 {
						t.Errorf("malformed exposition line %q", line)
					}
				}
			}
		}()
	}

	if _, err := r.Table3(); err != nil {
		t.Fatal(err)
	}
	close(done)
	scrapers.Wait()

	final := scrape()
	for _, want := range []string{
		`binpart_stage_spans_total{stage="sim"}`,
		`binpart_stage_latency_seconds{stage="sim",quantile="0.99"}`,
		`binpart_cache_hits_total{cache="sim"}`,
	} {
		if !strings.Contains(final, want) {
			t.Errorf("final scrape missing %q", want)
		}
	}
}
