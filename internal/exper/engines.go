package exper

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"binpart/internal/bench"
	"binpart/internal/binimg"
	"binpart/internal/core"
	"binpart/internal/sim"
)

// This file is the simulator engine ablation (experiment E2): every
// suite benchmark at every optimization level, simulated by each of the
// three engines as one multi-core batch. The reference stepper is the
// oracle; the block and fused engines must be bit-identical to it —
// same steps, cycles, exit code, and full profile (instruction counts
// and taken edges) — and the experiment reports each engine's wall time
// plus the fused engine's pattern-level fusion counters.

// EngineRun is one engine's outcome over the whole sweep.
type EngineRun struct {
	Engine string `json:"engine"`
	// Wall is the batch's wall time across the worker pool; CPU is the
	// per-job simulation time summed over the batch.
	Wall time.Duration `json:"wall_ns"`
	CPU  time.Duration `json:"cpu_ns"`
	// Steps is the total instructions retired across the sweep —
	// identical for every engine, by construction.
	Steps uint64 `json:"steps"`
	// Mismatches lists bit-identity violations against the reference
	// oracle; empty on a clean run.
	Mismatches []string `json:"mismatches,omitempty"`
	// Fusion merges the translation/fusion counters over the sweep
	// (zero-valued for the reference engine, which translates nothing).
	Fusion sim.FusionStats `json:"fusion"`
}

// EngineAblation is the engine-differential experiment: points is the
// sweep size (suite benchmarks x opt levels), one EngineRun per engine
// in reference, block, fused order.
type EngineAblation struct {
	Points int         `json:"points"`
	Runs   []EngineRun `json:"runs"`
}

// RunEngineAblation executes the engine ablation serially.
func RunEngineAblation() (*EngineAblation, error) { return defaultRunner.EngineAblation() }

// EngineAblation compiles the suite at every optimization level, then
// runs the whole image set through each engine as one sim.RunBatch and
// differentially compares the threaded engines against the reference
// stepper.
func (r *Runner) EngineAblation() (*EngineAblation, error) {
	var jobs []rowJob
	for _, b := range bench.All() {
		for lvl := 0; lvl <= 3; lvl++ {
			jobs = append(jobs, rowJob{bench: b, level: lvl, opts: core.DefaultOptions()})
		}
	}
	imgs, err := fanOut(r.workers(), len(jobs), func(w, i int) (*binimg.Image, error) {
		if r.interrupted.Load() {
			return nil, ErrInterrupted
		}
		return r.compile(jobs[i], r.scope(jobs[i], w))
	})
	if err != nil {
		return nil, err
	}

	cfg := sim.DefaultConfig()
	cfg.Profile = true
	e := &EngineAblation{Points: len(jobs)}
	var refs []sim.BatchResult
	for _, eng := range []sim.Engine{sim.EngineReference, sim.EngineBlock, sim.EngineFused} {
		ecfg := cfg
		ecfg.Engine = eng
		bjobs := make([]sim.BatchJob, len(imgs))
		for i, img := range imgs {
			bjobs[i] = sim.BatchJob{Img: img, Cfg: ecfg}
		}
		start := time.Now()
		results := sim.RunBatch(bjobs, r.workers())
		run := EngineRun{Engine: eng.String(), Wall: time.Since(start)}
		for i, br := range results {
			point := fmt.Sprintf("%s -O%d", jobs[i].bench.Name, jobs[i].level)
			if br.Err != nil {
				run.Mismatches = append(run.Mismatches, fmt.Sprintf("%s: %v", point, br.Err))
				continue
			}
			run.CPU += br.Dur
			run.Steps += br.Res.Steps
			run.Fusion.Merge(br.Fusion)
			if eng != sim.EngineReference {
				if d := diffResults(refs[i].Res, br.Res); d != "" {
					run.Mismatches = append(run.Mismatches, fmt.Sprintf("%s: %s", point, d))
				}
			}
		}
		if eng == sim.EngineReference {
			refs = results
		}
		e.Runs = append(e.Runs, run)
	}
	return e, nil
}

// diffResults compares one engine result against the reference oracle,
// down to the full profile maps. Empty means bit-identical.
func diffResults(ref, got sim.Result) string {
	var diffs []string
	if got.Steps != ref.Steps {
		diffs = append(diffs, fmt.Sprintf("steps %d != %d", got.Steps, ref.Steps))
	}
	if got.Cycles != ref.Cycles {
		diffs = append(diffs, fmt.Sprintf("cycles %d != %d", got.Cycles, ref.Cycles))
	}
	if got.ExitCode != ref.ExitCode {
		diffs = append(diffs, fmt.Sprintf("exit %d != %d", got.ExitCode, ref.ExitCode))
	}
	switch {
	case (got.Profile == nil) != (ref.Profile == nil):
		diffs = append(diffs, "profile presence differs")
	case got.Profile != nil:
		if !mapsEqual(got.Profile.InstCount, ref.Profile.InstCount) {
			diffs = append(diffs, "InstCount differs")
		}
		if !mapsEqual(got.Profile.EdgeCount, ref.Profile.EdgeCount) {
			diffs = append(diffs, "EdgeCount differs")
		}
	}
	return strings.Join(diffs, "; ")
}

func mapsEqual[K comparable](a, b map[K]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Identical reports whether every threaded engine matched the oracle.
func (e *EngineAblation) Identical() bool {
	for _, run := range e.Runs {
		if len(run.Mismatches) > 0 {
			return false
		}
	}
	return true
}

// WriteStats writes the ablation (wall times, fusion counters, any
// mismatches) as indented JSON — the CI artifact.
func (e *EngineAblation) WriteStats(path string) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Format renders the ablation.
func (e *EngineAblation) Format() string {
	var b strings.Builder
	b.WriteString("E2  Simulator engine ablation (suite x -O0..-O3, batched across cores)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %14s %9s %10s\n",
		"engine", "wall", "cpu", "steps", "speedup", "coverage")
	var refCPU time.Duration
	for _, run := range e.Runs {
		if run.Engine == sim.EngineReference.String() {
			refCPU = run.CPU
		}
		speedup := "-"
		if refCPU > 0 && run.CPU > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(refCPU)/float64(run.CPU))
		}
		coverage := "-"
		if run.Engine == sim.EngineFused.String() && run.Fusion.Steps > 0 {
			coverage = fmt.Sprintf("%.1f%%", 100*run.Fusion.Coverage)
		}
		fmt.Fprintf(&b, "%-10s %12s %12s %14d %9s %10s\n",
			run.Engine, run.Wall.Round(time.Millisecond), run.CPU.Round(time.Millisecond),
			run.Steps, speedup, coverage)
	}
	if e.Identical() {
		fmt.Fprintf(&b, "differential: all engines bit-identical over %d points (steps, cycles, exit, profile)\n", e.Points)
	} else {
		for _, run := range e.Runs {
			for i, m := range run.Mismatches {
				if i == 5 {
					fmt.Fprintf(&b, "  %s: ... %d more\n", run.Engine, len(run.Mismatches)-5)
					break
				}
				fmt.Fprintf(&b, "  %s MISMATCH %s\n", run.Engine, m)
			}
		}
	}
	return b.String()
}
