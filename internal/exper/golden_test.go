package exper

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"binpart/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current serial run")

const t1GoldenPath = "testdata/t1_golden.txt"

// TestTable1Golden pins the main-results table to a golden file and
// requires the parallel cached executor to reproduce it byte for byte.
// The golden file freezes the experiment's observable output: any change
// to the pipeline that moves a number shows up as a diff here, and any
// ordering or sharing bug in the concurrent executor breaks the
// serial/parallel equality.
func TestTable1Golden(t *testing.T) {
	serial, err := NewRunner(1, nil).Table1()
	if err != nil {
		t.Fatal(err)
	}
	serialText := serial.Format()

	parallel, err := NewRunner(8, core.NewCaches()).Table1()
	if err != nil {
		t.Fatal(err)
	}
	if parText := parallel.Format(); parText != serialText {
		t.Errorf("parallel (-j 8, cached) table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serialText, parText)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(t1GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(t1GoldenPath, []byte(serialText), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(t1GoldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/exper -run TestTable1Golden -update` to create it)", err)
	}
	if serialText != string(golden) {
		t.Errorf("T1 drifted from golden file (re-run with -update if intended):\n--- golden ---\n%s--- got ---\n%s", golden, serialText)
	}
}

// TestParallelSweepsMatchSerial runs the cheaper sweeps at -j 8 on one
// shared cache, concurrently with each other, and checks each against its
// serial rendering. Under `go test -race` this is the executor's
// data-race sweep: rows from all three experiments interleave in one
// worker pool while sharing cached profiles, lifted functions, and
// designs.
func TestParallelSweepsMatchSerial(t *testing.T) {
	serialT3, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	serialT4, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	serialE1, err := RunJumpTableExtension()
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(8, core.NewCaches())
	var wg sync.WaitGroup
	var parT3 *Table3
	var parT4 *Table4
	var parE1 *Extension
	var errT3, errT4, errE1 error
	wg.Add(3)
	go func() { defer wg.Done(); parT3, errT3 = r.Table3() }()
	go func() { defer wg.Done(); parT4, errT4 = r.Table4() }()
	go func() { defer wg.Done(); parE1, errE1 = r.JumpTableExtension() }()
	wg.Wait()
	for _, err := range []error{errT3, errT4, errE1} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := parT3.Format(), serialT3.Format(); got != want {
		t.Errorf("T3 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := parT4.Format(), serialT4.Format(); got != want {
		t.Errorf("T4 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := parE1.Format(), serialE1.Format(); got != want {
		t.Errorf("E1 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestAnalyzeOnceSweepsMatchSerial covers the analyze-once sweeps the
// same way: Figure1 and Table2 at -j 8 on one shared cache, running
// concurrently with each other and with the partitioner comparison, must
// render byte-identically to their serial, cacheless runs. Under `go
// test -race` this exercises the hot sharing added by the Analyze split:
// one immutable Analysis priced by many concurrent core.Evaluate calls,
// plus the Analysis cache itself. The partitioner comparison checks
// speedups only — its Format includes measured partition wall-clock.
func TestAnalyzeOnceSweepsMatchSerial(t *testing.T) {
	serialF1, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	serialT2, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	serialA1, err := RunPartitionerComparison()
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(8, core.NewCaches())
	var wg sync.WaitGroup
	var parF1 *Figure1
	var parT2 *Table2
	var parA1 *Ablation
	var errF1, errT2, errA1 error
	wg.Add(3)
	go func() { defer wg.Done(); parF1, errF1 = r.Figure1() }()
	go func() { defer wg.Done(); parT2, errT2 = r.Table2() }()
	go func() { defer wg.Done(); parA1, errA1 = r.PartitionerComparison() }()
	wg.Wait()
	for _, err := range []error{errF1, errT2, errA1} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := parF1.Format(), serialF1.Format(); got != want {
		t.Errorf("F1 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := parT2.Format(), serialT2.Format(); got != want {
		t.Errorf("T2 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	for i, name := range serialA1.Names {
		if parA1.Names[i] != name || parA1.Speedups[i] != serialA1.Speedups[i] {
			t.Errorf("A1 %s: parallel speedup %.6f != serial %.6f",
				name, parA1.Speedups[i], serialA1.Speedups[i])
		}
	}
}

// TestRunnerErrorPropagation checks that a failing sweep point aborts the
// fan-out and surfaces its error.
func TestRunnerErrorPropagation(t *testing.T) {
	r := NewRunner(4, nil)
	jobs := make([]rowJob, 6)
	for i := range jobs {
		jobs[i] = rowJob{level: 99} // invalid opt level: compile must fail
	}
	if _, err := r.rows(jobs); err == nil {
		t.Fatal("invalid jobs produced no error")
	}
}
