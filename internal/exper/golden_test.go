package exper

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"binpart/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current serial run")

const t1GoldenPath = "testdata/t1_golden.txt"

// TestTable1Golden pins the main-results table to a golden file and
// requires the parallel cached executor to reproduce it byte for byte.
// The golden file freezes the experiment's observable output: any change
// to the pipeline that moves a number shows up as a diff here, and any
// ordering or sharing bug in the concurrent executor breaks the
// serial/parallel equality.
func TestTable1Golden(t *testing.T) {
	serial, err := NewRunner(1, nil).Table1()
	if err != nil {
		t.Fatal(err)
	}
	serialText := serial.Format()

	parallel, err := NewRunner(8, core.NewCaches()).Table1()
	if err != nil {
		t.Fatal(err)
	}
	if parText := parallel.Format(); parText != serialText {
		t.Errorf("parallel (-j 8, cached) table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serialText, parText)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(t1GoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(t1GoldenPath, []byte(serialText), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(t1GoldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/exper -run TestTable1Golden -update` to create it)", err)
	}
	if serialText != string(golden) {
		t.Errorf("T1 drifted from golden file (re-run with -update if intended):\n--- golden ---\n%s--- got ---\n%s", golden, serialText)
	}
}

// TestParallelSweepsMatchSerial runs the cheaper sweeps at -j 8 on one
// shared cache, concurrently with each other, and checks each against its
// serial rendering. Under `go test -race` this is the executor's
// data-race sweep: rows from all three experiments interleave in one
// worker pool while sharing cached profiles, lifted functions, and
// designs.
func TestParallelSweepsMatchSerial(t *testing.T) {
	serialT3, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	serialT4, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	serialE1, err := RunJumpTableExtension()
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(8, core.NewCaches())
	var wg sync.WaitGroup
	var parT3 *Table3
	var parT4 *Table4
	var parE1 *Extension
	var errT3, errT4, errE1 error
	wg.Add(3)
	go func() { defer wg.Done(); parT3, errT3 = r.Table3() }()
	go func() { defer wg.Done(); parT4, errT4 = r.Table4() }()
	go func() { defer wg.Done(); parE1, errE1 = r.JumpTableExtension() }()
	wg.Wait()
	for _, err := range []error{errT3, errT4, errE1} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := parT3.Format(), serialT3.Format(); got != want {
		t.Errorf("T3 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := parT4.Format(), serialT4.Format(); got != want {
		t.Errorf("T4 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if got, want := parE1.Format(), serialE1.Format(); got != want {
		t.Errorf("E1 parallel != serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestRunnerErrorPropagation checks that a failing sweep point aborts the
// fan-out and surfaces its error.
func TestRunnerErrorPropagation(t *testing.T) {
	r := NewRunner(4, nil)
	jobs := make([]rowJob, 6)
	for i := range jobs {
		jobs[i] = rowJob{level: 99} // invalid opt level: compile must fail
	}
	if _, err := r.rows(jobs); err == nil {
		t.Fatal("invalid jobs produced no error")
	}
}
