package exper

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"binpart/internal/binimg"
	"binpart/internal/core"
	"binpart/internal/mcc"
	"binpart/internal/obs"
	"binpart/internal/progen"
	"binpart/internal/sim"
)

// This file is the workload-frontier harness: where T1-T4 replay the
// paper's fixed 20-benchmark suite, the corpus sweeps thousands of
// generated switch-shaped programs through the full flow and
// differentially checks every one. Each program is the subject of three
// oracles at once: the partitioning report against the reference
// simulator's ground truth, the cold (uncached) flow against the warm
// (fully cached) flow, and kernel CDFG recovery against the generator's
// promise that every emitted switch follows the jump-table idiom.

// CorpusPoint is one generated program's outcome.
type CorpusPoint struct {
	Seed     int64    `json:"seed"`
	OptLevel int      `json:"opt_level"`
	Shapes   []string `json:"shapes,omitempty"`
	// Recovered reports whether the kernel's CDFG was recovered
	// (switch-table recovery is on by default).
	Recovered bool `json:"recovered"`
	// FailReason carries the typed decompiler error (faulting PC and
	// function) when recovery failed.
	FailReason string  `json:"fail_reason,omitempty"`
	Speedup    float64 `json:"speedup"`
	Selected   int     `json:"selected"`
	// Mismatch describes a differential failure (report vs reference
	// simulator, or cold vs warm cache); empty on a clean point.
	Mismatch string `json:"mismatch,omitempty"`
}

// Corpus is the differential fuzz-corpus experiment (figure F2): n
// generated programs, compiled round-robin over -O0..-O3, each run
// through the full flow and differentially checked.
type Corpus struct {
	N        int
	BaseSeed int64
	Points   []CorpusPoint
}

// RunCorpus executes the corpus experiment serially without caching.
func RunCorpus(n int) (*Corpus, error) { return defaultRunner.Corpus(n, 1) }

// Corpus sweeps n generated programs (seeds baseSeed..baseSeed+n-1)
// through the full flow over the worker pool. Every point is checked
// three ways: the report's exit code and cycle count must equal the
// reference simulator's, an uncached run must match a cold-then-warm
// cached pair observable for observable, and kernel recovery failures
// are recorded (never fatal — the flow must degrade, not die). Points
// come back in seed order, so the formatted figure is byte-identical at
// any worker count.
//
// The sweep runs in three phases: generate + compile every program over
// the worker pool, run every reference-oracle simulation as one
// sim.RunBatch (the oracle uses the deliberately slow reference stepper,
// so batching it across cores is where the harness's wall time went),
// then fan the full-flow points back over the pool.
func (r *Runner) Corpus(n int, baseSeed int64) (*Corpus, error) {
	if n <= 0 {
		return nil, fmt.Errorf("exper: corpus size %d", n)
	}
	caches := r.Caches
	if caches == nil {
		// The cold-vs-warm differential needs a cache even when the
		// runner is configured cacheless.
		caches = core.NewCaches()
	}

	// A sharded runner (see Runner.ShardIndex) generates and runs only
	// its own points; N shrinks to the owned count so the summary's
	// recovery-rate denominator stays honest for the child's gating.
	owned := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if r.owns(i) {
			owned = append(owned, i)
		}
	}

	type genPoint struct {
		prog progen.Program
		img  *binimg.Image
	}
	gens, err := fanOut(r.workers(), len(owned), func(w, oi int) (genPoint, error) {
		if r.interrupted.Load() {
			return genPoint{}, ErrInterrupted
		}
		i := owned[oi]
		seed := baseSeed + int64(i)
		lvl := i % 4
		p := progen.Generate(seed, progen.SwitchConfig())
		img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
		if err != nil {
			return genPoint{}, fmt.Errorf("corpus seed %d -O%d: compile: %w", seed, lvl, err)
		}
		return genPoint{prog: p, img: img}, nil
	})
	if err != nil {
		return nil, err
	}

	// The reference-oracle simulations go through the sim stage cache —
	// they are keyed like any other sim result — so a distributed corpus
	// shares its most expensive phase across workers. Probe first, batch
	// only the misses over the pool, and put the results back (flowing to
	// the disk/remote tiers); each probe emits a sim span so span totals
	// still reconcile with the cache counters.
	refCfg := sim.DefaultConfig()
	refCfg.Engine = sim.EngineReference
	type refOut struct {
		res sim.Result
		err error
	}
	refs := make([]refOut, len(gens))
	var missIdx []int
	var missJobs []sim.BatchJob
	for oi, g := range gens {
		i := owned[oi]
		sc := r.Obs.Scope(fmt.Sprintf("corpus/%d", baseSeed+int64(i)), i%4, 0)
		sp := sc.Start(obs.StageSim)
		res, out, ok := caches.Sim.GetOutcome(core.SimKey(g.img.Key(), refCfg))
		sp.SetOutcome(out)
		sp.SetEngine(refCfg.Engine.String())
		sp.End()
		if ok {
			refs[oi] = refOut{res: res}
			continue
		}
		missIdx = append(missIdx, oi)
		missJobs = append(missJobs, sim.BatchJob{Img: g.img, Cfg: refCfg})
	}
	if len(missJobs) > 0 {
		batch := sim.RunBatch(missJobs, r.workers())
		for bi, oi := range missIdx {
			if batch[bi].Err != nil {
				refs[oi] = refOut{err: batch[bi].Err}
				continue
			}
			refs[oi] = refOut{res: batch[bi].Res}
			caches.Sim.Put(core.SimKey(gens[oi].img.Key(), refCfg), batch[bi].Res)
		}
	}

	pts, err := fanOut(r.workers(), len(owned), func(w, oi int) (CorpusPoint, error) {
		if r.interrupted.Load() {
			return CorpusPoint{}, ErrInterrupted
		}
		i := owned[oi]
		seed := baseSeed + int64(i)
		lvl := i % 4
		sc := r.Obs.Scope(fmt.Sprintf("corpus/%d", seed), lvl, w)
		sp := sc.Start(obs.StageJob)
		defer sp.End()
		if refs[oi].err != nil {
			return CorpusPoint{Seed: seed, OptLevel: lvl, Shapes: gens[oi].prog.Shapes},
				fmt.Errorf("corpus seed %d -O%d: reference sim: %w", seed, lvl, refs[oi].err)
		}
		return corpusPoint(seed, lvl, gens[oi].prog, gens[oi].img, refs[oi].res, r.Engine, caches, sc)
	})
	if err != nil {
		return nil, err
	}
	return &Corpus{N: len(owned), BaseSeed: baseSeed, Points: pts}, nil
}

// corpusPoint runs one generated program through every oracle. The
// reference-oracle result arrives precomputed from the batched phase.
func corpusPoint(seed int64, lvl int, p progen.Program, img *binimg.Image, ref sim.Result, engine sim.Engine, caches *core.Caches, sc *obs.Scope) (CorpusPoint, error) {
	pt := CorpusPoint{Seed: seed, OptLevel: lvl, Shapes: p.Shapes}
	opts := core.DefaultOptions()
	opts.Sim.Engine = engine

	// Cold, uncached flow.
	cold, err := core.Run(img, opts)
	if err != nil {
		return pt, fmt.Errorf("corpus seed %d -O%d: run: %w", seed, lvl, err)
	}
	// Cold-through-cache, then fully warm.
	first, err := core.RunScoped(img, opts, caches, sc)
	if err != nil {
		return pt, fmt.Errorf("corpus seed %d -O%d: cached run: %w", seed, lvl, err)
	}
	warm, err := core.RunScoped(img, opts, caches, sc)
	if err != nil {
		return pt, fmt.Errorf("corpus seed %d -O%d: warm run: %w", seed, lvl, err)
	}

	var diffs []string
	if cold.ExitCode != ref.ExitCode {
		diffs = append(diffs, fmt.Sprintf("exit code %d != reference %d", cold.ExitCode, ref.ExitCode))
	}
	if cold.SWCycles != ref.Cycles {
		diffs = append(diffs, fmt.Sprintf("sw cycles %d != reference %d", cold.SWCycles, ref.Cycles))
	}
	want := corpusFingerprint(cold)
	if got := corpusFingerprint(first); got != want {
		diffs = append(diffs, "cold cached run differs from uncached")
	}
	if got := corpusFingerprint(warm); got != want {
		diffs = append(diffs, "warm cached run differs from uncached")
	}
	pt.Mismatch = strings.Join(diffs, "; ")

	reason, failed := cold.Recovery.FailReasons["kernel"]
	pt.Recovered = !failed
	pt.FailReason = reason
	pt.Speedup = cold.Metrics.AppSpeedup
	pt.Selected = len(cold.SelectedRegions())
	return pt, nil
}

// corpusFingerprint renders a Report's cache-relevant observables:
// everything except wall-clock times and Design pointers. Computed and
// cached runs of the same binary must produce identical fingerprints.
func corpusFingerprint(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "exit=%d sw=%d metrics=%+v\nrecovery=%+v\n",
		rep.ExitCode, rep.SWCycles, rep.Metrics, rep.Recovery)
	for _, r := range rep.Regions {
		fmt.Fprintf(&b, "region %s func=%s sw=%d hw=%.6f clk=%.6f inv=%d area=%d fp=%v sel=%v step=%d\n",
			r.Name, r.Func, r.SWCycles, r.HWCycles, r.HWClockNs,
			r.Invocations, r.AreaGates, r.Footprint, r.Selected, r.Step)
	}
	return b.String()
}

// speedupBuckets are the distribution bins of the corpus figure.
var speedupBuckets = []struct {
	Label string
	Max   float64 // exclusive upper bound; the last bucket is open
}{
	{"1.00x (all-sw)", 1.005},
	{"1.00-1.50x", 1.5},
	{"1.50-2.00x", 2},
	{"2.00-3.00x", 3},
	{"3.00-5.00x", 5},
	{">5.00x", 0},
}

// CorpusSummary is the aggregate view of a corpus run, also written as
// the CI artifact (JSON).
type CorpusSummary struct {
	Programs       int            `json:"programs"`
	BaseSeed       int64          `json:"base_seed"`
	Recovered      int            `json:"recovered"`
	RecoveryRate   float64        `json:"recovery_rate"`
	SwitchPrograms int            `json:"switch_programs"`
	ShapeCounts    map[string]int `json:"shape_counts"`
	Accelerated    int            `json:"accelerated"` // speedup > 1.00
	MeanSpeedup    float64        `json:"mean_speedup"`
	MaxSpeedup     float64        `json:"max_speedup"`
	Buckets        map[string]int `json:"speedup_buckets"`
	Mismatches     []string       `json:"mismatches,omitempty"`
	Failures       []string       `json:"failures,omitempty"`
}

// Summary aggregates the corpus points.
func (c *Corpus) Summary() CorpusSummary {
	s := CorpusSummary{
		Programs: c.N, BaseSeed: c.BaseSeed,
		ShapeCounts: map[string]int{}, Buckets: map[string]int{},
	}
	var sum float64
	for _, pt := range c.Points {
		if len(pt.Shapes) > 0 {
			s.SwitchPrograms++
		}
		for _, sh := range pt.Shapes {
			s.ShapeCounts[sh]++
		}
		if pt.Recovered {
			s.Recovered++
		} else {
			s.Failures = append(s.Failures,
				fmt.Sprintf("seed %d -O%d: %s", pt.Seed, pt.OptLevel, pt.FailReason))
		}
		if pt.Mismatch != "" {
			s.Mismatches = append(s.Mismatches,
				fmt.Sprintf("seed %d -O%d: %s", pt.Seed, pt.OptLevel, pt.Mismatch))
		}
		if pt.Speedup > 1.00 {
			s.Accelerated++
		}
		sum += pt.Speedup
		if pt.Speedup > s.MaxSpeedup {
			s.MaxSpeedup = pt.Speedup
		}
		for bi, bk := range speedupBuckets {
			if bi == len(speedupBuckets)-1 || pt.Speedup < bk.Max {
				s.Buckets[bk.Label]++
				break
			}
		}
	}
	if c.N > 0 {
		s.RecoveryRate = float64(s.Recovered) / float64(c.N)
		s.MeanSpeedup = sum / float64(c.N)
	}
	return s
}

// WriteSummary writes the aggregate as indented JSON (the CI artifact).
func (c *Corpus) WriteSummary(path string) error {
	data, err := json.MarshalIndent(c.Summary(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Format renders the figure.
func (c *Corpus) Format() string {
	s := c.Summary()
	var b strings.Builder
	b.WriteString("F2  Generated switch-workload corpus (differential fuzz)\n")
	fmt.Fprintf(&b, "programs: %d (seeds %d..%d, levels -O0..-O3 round-robin)\n",
		s.Programs, c.BaseSeed, c.BaseSeed+int64(c.N)-1)
	fmt.Fprintf(&b, "shapes:   dense %d  sparse %d  fallthrough %d  in-loop %d  (switchless: %d)\n",
		s.ShapeCounts["switch-dense"], s.ShapeCounts["switch-sparse"],
		s.ShapeCounts["switch-fallthrough"], s.ShapeCounts["switch-in-loop"],
		s.Programs-s.SwitchPrograms)
	fmt.Fprintf(&b, "recovery: %d/%d kernels (%.1f%%)\n",
		s.Recovered, s.Programs, 100*s.RecoveryRate)
	if len(s.Mismatches) == 0 {
		fmt.Fprintf(&b, "differential: report==reference sim and cold==warm cache for all %d programs\n", s.Programs)
	} else {
		fmt.Fprintf(&b, "differential: %d MISMATCHES\n", len(s.Mismatches))
		for i, m := range s.Mismatches {
			if i == 5 {
				fmt.Fprintf(&b, "  ... %d more\n", len(s.Mismatches)-5)
				break
			}
			fmt.Fprintf(&b, "  %s\n", m)
		}
	}
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "recovery failure: %s\n", f)
	}
	b.WriteString("speedup distribution:\n")
	max := 0
	for _, bk := range speedupBuckets {
		if n := s.Buckets[bk.Label]; n > max {
			max = n
		}
	}
	for _, bk := range speedupBuckets {
		n := s.Buckets[bk.Label]
		bar := 0
		if max > 0 {
			bar = n * 40 / max
		}
		fmt.Fprintf(&b, "  %-14s %5d %s\n", bk.Label, n, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&b, "mean speedup %.2fx, max %.2fx; %d/%d accelerate\n",
		s.MeanSpeedup, s.MaxSpeedup, s.Accelerated, s.Programs)
	return b.String()
}
