package exper

import (
	"strings"
	"testing"
)

// TestTable1ShapeClaims checks the paper's headline claims hold on the
// regenerated main-results table.
func TestTable1ShapeClaims(t *testing.T) {
	t1, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 20 {
		t.Fatalf("%d rows, want 20", len(t1.Rows))
	}
	s := t1.Summary
	// Paper: 5.4x average application speedup. Shape: same factor class.
	if s.AppSpeedup < 3 || s.AppSpeedup > 12 {
		t.Errorf("average speedup %.2f outside the paper's factor class (5.4)", s.AppSpeedup)
	}
	// Paper: kernel speedup (44.8) far exceeds application speedup.
	if s.KernelSpeedup <= s.AppSpeedup {
		t.Errorf("kernel speedup %.2f not above app speedup %.2f", s.KernelSpeedup, s.AppSpeedup)
	}
	// Paper: 69 % average energy savings.
	if s.EnergySavings < 0.5 || s.EnergySavings > 0.85 {
		t.Errorf("energy savings %.1f%% outside the paper's class (69%%)", 100*s.EnergySavings)
	}
	// Paper: 26,261 average equivalent gates — same order of magnitude.
	if s.AreaGates < 10_000 || s.AreaGates > 100_000 {
		t.Errorf("average area %d gates outside the paper's order (26k)", s.AreaGates)
	}
	// Switch-table recovery is on by default: no kernel fails, and the
	// paper's two indirect-jump casualties partition and accelerate.
	for _, r := range t1.Rows {
		if r.KernelFailed {
			t.Errorf("%s: kernel failed recovery with switch-table recovery on", r.Name)
		}
	}
	formerFailures := map[string]bool{"routelookup": true, "ttsprk": true}
	for _, r := range t1.Rows {
		if !formerFailures[r.Name] {
			continue
		}
		if r.Selected == 0 {
			t.Errorf("%s: no selected hardware regions", r.Name)
		}
		if r.AppSpeedup <= 1.00 {
			t.Errorf("%s: speedup %.2f not above 1.00", r.Name, r.AppSpeedup)
		}
	}
	out := t1.Format()
	for _, want := range []string{"AVERAGE", "crc", "routelookup", "ttsprk"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
	if strings.Contains(out, "recovery failed") {
		t.Error("formatted table still reports a recovery failure")
	}
}

// TestTable2MonotoneShape checks the platform-sweep ordering claims.
func TestTable2MonotoneShape(t *testing.T) {
	if testing.Short() {
		t.Skip("3x full-suite runs")
	}
	t2, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Summaries) != 3 {
		t.Fatalf("%d platforms, want 3", len(t2.Summaries))
	}
	for i := 1; i < len(t2.Summaries); i++ {
		if t2.Summaries[i].AppSpeedup >= t2.Summaries[i-1].AppSpeedup {
			t.Errorf("speedup not decreasing with CPU clock: %v -> %v",
				t2.Summaries[i-1].AppSpeedup, t2.Summaries[i].AppSpeedup)
		}
		if t2.Summaries[i].EnergySavings >= t2.Summaries[i-1].EnergySavings {
			t.Errorf("savings not decreasing with CPU clock")
		}
	}
	// 40 MHz speedup should land near the paper's 12.6x.
	if s := t2.Summaries[0].AppSpeedup; s < 8 || s > 20 {
		t.Errorf("40 MHz speedup %.2f far from paper's 12.6", s)
	}
	out := t2.Format()
	for _, want := range []string{"40MHz", "200MHz", "400MHz", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("T2 format missing %q", want)
		}
	}
}

// TestTable3Claims checks the optimization-level experiment's claims.
func TestTable3Claims(t *testing.T) {
	t3, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 16 {
		t.Fatalf("%d rows, want 16 (4 benchmarks x 4 levels)", len(t3.Rows))
	}
	byBench := map[string][]Row{}
	for _, r := range t3.Rows {
		byBench[r.Name] = append(byBench[r.Name], r)
	}
	for name, rows := range byBench {
		for i := 1; i < len(rows); i++ {
			// "software execution times improved as the level of compiler
			// optimizations increased" (allow equality).
			if rows[i].SWTimeMs > rows[i-1].SWTimeMs*1.001 {
				t.Errorf("%s: sw time rose from -O%d to -O%d (%.3f -> %.3f ms)",
					name, rows[i-1].OptLevel, rows[i].OptLevel, rows[i-1].SWTimeMs, rows[i].SWTimeMs)
			}
		}
		// "speedup was significant for all levels".
		for _, r := range rows {
			if r.AppSpeedup < 1.5 {
				t.Errorf("%s -O%d: speedup %.2f not significant", name, r.OptLevel, r.AppSpeedup)
			}
		}
	}
	if out := t3.Format(); !strings.Contains(out, "-O3") {
		t.Error("T3 format missing level column")
	}
}

// TestTable4Exact checks the recovery audit: with switch-table recovery
// on by default, every kernel recovers (the paper stops at 18/20).
func TestTable4Exact(t *testing.T) {
	t4, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if t4.Recovered != 20 || t4.Failed != 0 {
		t.Errorf("recovered %d / failed %d, want 20/0", t4.Recovered, t4.Failed)
	}
	if len(t4.FailedList) != 0 {
		t.Errorf("unexpected failures %v", t4.FailedList)
	}
	out := t4.Format()
	if !strings.Contains(out, "20/20") {
		t.Error("T4 format missing the 20/20 summary")
	}
	// The paper's result stays quotable next to ours.
	if !strings.Contains(out, "18/20") {
		t.Error("T4 format dropped the paper's 18/20 reference")
	}
}

// TestFigure1Saturates checks the area-sweep series grows then flattens.
func TestFigure1Saturates(t *testing.T) {
	if testing.Short() {
		t.Skip("11x full-suite runs")
	}
	f1, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Speedups) != 11 {
		t.Fatalf("%d devices, want 11", len(f1.Speedups))
	}
	first, last := f1.Speedups[0], f1.Speedups[len(f1.Speedups)-1]
	if last <= first {
		t.Errorf("speedup does not grow with device size: %.2f -> %.2f", first, last)
	}
	// Monotone non-decreasing within tolerance.
	for i := 1; i < len(f1.Speedups); i++ {
		if f1.Speedups[i] < f1.Speedups[i-1]-0.05 {
			t.Errorf("speedup dropped at %s: %.2f -> %.2f",
				f1.Devices[i], f1.Speedups[i-1], f1.Speedups[i])
		}
	}
	// Saturation: the top half of the catalog should be flat.
	mid := f1.Speedups[len(f1.Speedups)/2]
	if last > mid*1.1 {
		t.Errorf("no saturation: mid %.2f vs largest %.2f", mid, last)
	}
	if out := f1.Format(); !strings.Contains(out, "XC2V8000") {
		t.Error("F1 format missing largest device")
	}
}

// TestPartitionerComparisonRuns smoke-tests A1 and its formatting.
func TestPartitionerComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("3x full-suite runs")
	}
	a, err := RunPartitionerComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Names) != 3 {
		t.Fatalf("%d algorithms, want 3", len(a.Names))
	}
	for i, n := range a.Names {
		if a.Speedups[i] < 1 {
			t.Errorf("%s: speedup %.2f", n, a.Speedups[i])
		}
		if a.PartTimes[i] <= 0 {
			t.Errorf("%s: no partition time", n)
		}
	}
	if out := a.Format(); !strings.Contains(out, "90-10") {
		t.Error("A1 format missing 90-10 row")
	}
}

// TestPassAblationShape checks the headline ablation claims.
func TestPassAblationShape(t *testing.T) {
	a, err := RunPassAblation()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range a.Names {
		idx[n] = i
	}
	// Rerolling exists to shrink hardware: disabling it must cost area.
	if a.Areas[idx["no-reroll"]] <= a.Areas[idx["full"]] {
		t.Errorf("no-reroll area %d not above full %d", a.Areas[idx["no-reroll"]], a.Areas[idx["full"]])
	}
	// Pipelining is the main speedup source.
	if a.Speedups[idx["no-pipeline"]] >= a.Speedups[idx["full"]] {
		t.Errorf("no-pipeline speedup %.2f not below full %.2f",
			a.Speedups[idx["no-pipeline"]], a.Speedups[idx["full"]])
	}
	// Banking costs area on non-port-bound kernels.
	if a.Areas[idx["banked-mem4"]] <= a.Areas[idx["full"]] {
		t.Errorf("banking did not cost area: %d vs %d",
			a.Areas[idx["banked-mem4"]], a.Areas[idx["full"]])
	}
	if out := a.Format(); !strings.Contains(out, "no-reroll") {
		t.Error("A2 format missing rows")
	}
}

// TestJumpTableExtension checks the E1 extension experiment: both of the
// paper's failures recover and accelerate.
func TestJumpTableExtension(t *testing.T) {
	e, err := RunJumpTableExtension()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Names) != 2 {
		t.Fatalf("%d rows, want 2", len(e.Names))
	}
	for i, n := range e.Names {
		if e.BaseRecovered[i] {
			t.Errorf("%s: baseline recovered; paper failure mode lost", n)
		}
		if !e.ExtRecovered[i] {
			t.Errorf("%s: extension did not recover", n)
		}
		if e.ExtSpeedups[i] <= e.BaseSpeedups[i] {
			t.Errorf("%s: no speedup gain (%.2f vs %.2f)", n, e.ExtSpeedups[i], e.BaseSpeedups[i])
		}
	}
	if out := e.Format(); !strings.Contains(out, "FAILED") || !strings.Contains(out, "recovered") {
		t.Error("E1 format missing status columns")
	}
}
