package mcc

import (
	"sort"

	"binpart/internal/mips"
)

// Register allocation: liveness analysis over TAC followed by linear scan.
// Temps that are live across a call go to callee-saved $s registers; others
// to caller-saved $t registers (plus $v1). Temps that do not fit are
// spilled to frame slots and accessed through the $k0/$k1 scratch
// registers, which the MicroC runtime never uses otherwise. $at is reserved
// for immediate materialization and branch lowering.

var callerPool = []mips.Reg{
	mips.T0, mips.T1, mips.T2, mips.T3, mips.T4, mips.T5, mips.T6, mips.T7,
	mips.T8, mips.T9, mips.V1,
}

var calleePool = []mips.Reg{
	mips.S0, mips.S1, mips.S2, mips.S3, mips.S4, mips.S5, mips.S6, mips.S7,
}

// allocation is the result of register allocation for one function.
type allocation struct {
	reg        map[Temp]mips.Reg
	spill      map[Temp]int // temp -> spill slot index (within spill area)
	numSpills  int
	usedCallee []mips.Reg // callee-saved registers the prologue must save
	hasCall    bool
}

// tacBlock is a basic block over instruction index ranges with successors.
type tacBlock struct {
	start, end int // [start, end)
	succs      []int
	liveIn     tempSet
	liveOut    tempSet
}

// buildBlocks splits the function into basic blocks and wires successors.
func buildBlocks(f *tacFunc) []*tacBlock {
	ranges := blockRanges(f)
	blocks := make([]*tacBlock, len(ranges))
	store := make([]tacBlock, len(ranges))
	words := tempWords(f.NTemp)
	backing := make([]uint64, 2*len(ranges)*words)
	labelBlock := make(map[string]int)
	for i, r := range ranges {
		store[i] = tacBlock{start: r[0], end: r[1],
			liveIn:  tempSet(backing[2*i*words : (2*i+1)*words]),
			liveOut: tempSet(backing[(2*i+1)*words : (2*i+2)*words])}
		blocks[i] = &store[i]
		if f.Ins[r[0]].Kind == iLabel {
			labelBlock[f.Ins[r[0]].Sym] = i
		}
	}
	// A block may start with several consecutive labels only if empty
	// blocks exist between them; blockRanges creates one block per label,
	// so map every label at a block head.
	for i, r := range ranges {
		for j := r[0]; j < r[1] && f.Ins[j].Kind == iLabel; j++ {
			labelBlock[f.Ins[j].Sym] = i
		}
	}
	allLabelBlocks := make([]int, 0, len(labelBlock))
	for _, b := range labelBlock {
		allLabelBlocks = append(allLabelBlocks, b)
	}
	for i, b := range blocks {
		last := f.Ins[b.end-1]
		switch last.Kind {
		case iBr:
			if t, ok := labelBlock[last.Sym]; ok {
				b.succs = append(b.succs, t)
			}
		case iCBr:
			if t, ok := labelBlock[last.Sym]; ok {
				b.succs = append(b.succs, t)
			}
			if i+1 < len(blocks) {
				b.succs = append(b.succs, i+1)
			}
		case iRet:
		case iJT:
			// Conservative: an indirect jump may reach any label.
			b.succs = append(b.succs, allLabelBlocks...)
		default:
			if i+1 < len(blocks) {
				b.succs = append(b.succs, i+1)
			}
		}
	}
	return blocks
}

// liveness computes live-in/out sets per block by iteration to fixpoint.
func liveness(f *tacFunc, blocks []*tacBlock) {
	n := len(blocks)
	words := tempWords(f.NTemp)
	backing := make([]uint64, 2*n*words)
	gen := make([]tempSet, n)
	kill := make([]tempSet, n)
	var ub [4]Temp
	for i, b := range blocks {
		gen[i] = tempSet(backing[2*i*words : (2*i+1)*words])
		kill[i] = tempSet(backing[(2*i+1)*words : (2*i+2)*words])
		for j := b.start; j < b.end; j++ {
			in := &f.Ins[j]
			for _, u := range in.appendUses(ub[:0]) {
				if !kill[i].has(u) {
					gen[i].set(u)
				}
			}
			if d, ok := in.def(); ok {
				kill[i].set(d)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			for _, s := range b.succs {
				if b.liveOut.or(blocks[s].liveIn) {
					changed = true
				}
			}
			// liveIn = gen ∪ (liveOut − kill), accumulated word-wise.
			for w := range b.liveIn {
				nw := b.liveIn[w] | gen[i][w] | (b.liveOut[w] &^ kill[i][w])
				if nw != b.liveIn[w] {
					b.liveIn[w] = nw
					changed = true
				}
			}
		}
	}
}

// interval is the linearized live range of a temp.
type interval struct {
	t          Temp
	start, end int
	acrossCall bool
}

// computeIntervals builds conservative live intervals and marks temps live
// across calls.
func computeIntervals(f *tacFunc, blocks []*tacBlock) []interval {
	// start < 0 marks a temp never touched; start and end are always
	// stamped together.
	start := make([]int32, f.NTemp)
	end := make([]int32, f.NTemp)
	for i := range start {
		start[i] = -1
	}
	touch := func(t Temp, i int) {
		if start[t] < 0 {
			start[t], end[t] = int32(i), int32(i)
			return
		}
		if int32(i) < start[t] {
			start[t] = int32(i)
		}
		if int32(i) > end[t] {
			end[t] = int32(i)
		}
	}
	// Parameters are defined at entry.
	for _, p := range f.Params {
		touch(p, 0)
	}
	var ub [4]Temp
	for i := range f.Ins {
		in := &f.Ins[i]
		for _, u := range in.appendUses(ub[:0]) {
			touch(u, i)
		}
		if d, ok := in.def(); ok {
			touch(d, i)
		}
	}
	for _, b := range blocks {
		bb := b
		bb.liveIn.forEach(func(t Temp) { touch(t, bb.start) })
		bb.liveOut.forEach(func(t Temp) { touch(t, bb.end-1) })
	}

	across := newTempSet(f.NTemp)
	live := newTempSet(f.NTemp)
	for _, b := range blocks {
		// Per-instruction liveness backward within the block.
		live.reset()
		live.or(b.liveOut)
		for j := b.end - 1; j >= b.start; j-- {
			in := &f.Ins[j]
			if d, ok := in.def(); ok {
				live.clear(d)
			}
			if in.Kind == iCall {
				across.or(live)
			}
			for _, u := range in.appendUses(ub[:0]) {
				live.set(u)
			}
		}
	}

	var ivs []interval
	for t := Temp(0); int(t) < f.NTemp; t++ {
		if start[t] < 0 {
			continue
		}
		ivs = append(ivs, interval{t: t, start: int(start[t]), end: int(end[t]), acrossCall: across.has(t)})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].t < ivs[j].t
	})
	return ivs
}

// allocate runs linear scan over the intervals.
func allocate(f *tacFunc) *allocation {
	blocks := buildBlocks(f)
	liveness(f, blocks)
	ivs := computeIntervals(f, blocks)

	a := &allocation{reg: make(map[Temp]mips.Reg), spill: make(map[Temp]int)}
	for i := range f.Ins {
		if f.Ins[i].Kind == iCall {
			a.hasCall = true
			break
		}
	}

	type active struct {
		iv  interval
		reg mips.Reg
	}
	var act []active
	freeCaller := append([]mips.Reg(nil), callerPool...)
	freeCallee := append([]mips.Reg(nil), calleePool...)
	usedCallee := make(map[mips.Reg]bool)

	expire := func(pos int) {
		out := act[:0]
		for _, ac := range act {
			if ac.iv.end < pos {
				if ac.iv.acrossCall {
					freeCallee = append(freeCallee, ac.reg)
				} else {
					freeCaller = append(freeCaller, ac.reg)
				}
				continue
			}
			out = append(out, ac)
		}
		act = out
	}

	for _, iv := range ivs {
		expire(iv.start)
		pool := &freeCaller
		if iv.acrossCall {
			pool = &freeCallee
		}
		if len(*pool) == 0 {
			// Spill the active interval (same class) with the furthest
			// end, or this one.
			victim := -1
			for i, ac := range act {
				if ac.iv.acrossCall == iv.acrossCall && ac.iv.end > iv.end {
					if victim < 0 || ac.iv.end > act[victim].iv.end {
						victim = i
					}
				}
			}
			if victim >= 0 {
				v := act[victim]
				a.spill[v.iv.t] = a.numSpills
				a.numSpills++
				delete(a.reg, v.iv.t)
				a.reg[iv.t] = v.reg
				act[victim] = active{iv: iv, reg: v.reg}
			} else {
				a.spill[iv.t] = a.numSpills
				a.numSpills++
			}
			continue
		}
		r := (*pool)[len(*pool)-1]
		*pool = (*pool)[:len(*pool)-1]
		a.reg[iv.t] = r
		if iv.acrossCall {
			usedCallee[r] = true
		}
		act = append(act, active{iv: iv, reg: r})
	}

	for _, r := range calleePool {
		if usedCallee[r] {
			a.usedCallee = append(a.usedCallee, r)
		}
	}
	return a
}
