package mcc

import (
	"fmt"

	"binpart/internal/mips"
)

// genFunc is the machine code of one function before final placement.
type genFunc struct {
	name      string
	insts     []mips.Inst
	callFix   []callFix
	labelAddr map[string]int // label -> instruction index within function
	tables    []jumpTable
}

type callFix struct {
	instIdx int
	callee  string
}

// codegen translates one TAC function to MIPS. globalAddr resolves global
// data symbols (including jump tables) to absolute addresses.
type codegen struct {
	f         *tacFunc
	alloc     *allocation
	globals   map[string]uint32
	insts     []mips.Inst
	labelPos  map[string]int
	branchFix []branchFix
	callFix   []callFix
	frame     int32
	slotOff   []int32
	spillOff  int32
	raOff     int32
	saveOff   map[mips.Reg]int32
}

type branchFix struct {
	instIdx int
	label   string
}

const epilogueLabel = ".epilogue"

// genFunction compiles one TAC function to relocatable machine code.
func genFunction(f *tacFunc, globals map[string]uint32) (*genFunc, error) {
	cg := &codegen{
		f:        f,
		alloc:    allocate(f),
		globals:  globals,
		labelPos: make(map[string]int),
		saveOff:  make(map[mips.Reg]int32),
	}
	cg.layoutFrame()
	cg.prologue()
	for i := range f.Ins {
		if err := cg.genIns(&f.Ins[i]); err != nil {
			return nil, fmt.Errorf("mcc: %s: %w", f.Name, err)
		}
	}
	cg.labelPos[epilogueLabel] = len(cg.insts)
	cg.epilogue()
	if err := cg.fixBranches(); err != nil {
		return nil, fmt.Errorf("mcc: %s: %w", f.Name, err)
	}
	return &genFunc{
		name:      f.Name,
		insts:     cg.insts,
		callFix:   cg.callFix,
		labelAddr: cg.labelPos,
		tables:    f.Tables,
	}, nil
}

func (cg *codegen) layoutFrame() {
	// Spills, saved registers and $ra go at the bottom so their offsets
	// always fit 16-bit immediates even when local arrays make the frame
	// huge; large local-slot offsets go through $at in the addressing
	// paths instead.
	off := int32(0)
	cg.spillOff = off
	off += int32(4 * cg.alloc.numSpills)
	for _, r := range cg.alloc.usedCallee {
		cg.saveOff[r] = off
		off += 4
	}
	if cg.alloc.hasCall {
		cg.raOff = off
		off += 4
	}
	// Local slots.
	cg.slotOff = make([]int32, len(cg.f.Slots))
	for i, s := range cg.f.Slots {
		align := int32(s.Align)
		if align < 4 {
			align = 4
		}
		off = (off + align - 1) &^ (align - 1)
		cg.slotOff[i] = off
		off += (int32(s.Size) + 3) &^ 3
	}
	cg.frame = (off + 7) &^ 7
}

func (cg *codegen) emit(in mips.Inst) { cg.insts = append(cg.insts, in) }

// adjustSP moves the stack pointer by delta, using $at for adjustments
// beyond the 16-bit immediate range (large frames).
func (cg *codegen) adjustSP(delta int32) {
	if delta == 0 {
		return
	}
	if fitsSigned16(delta) {
		cg.emit(mips.Inst{Op: mips.ADDIU, Rt: mips.SP, Rs: mips.SP, Imm: delta})
		return
	}
	cg.loadImm(mips.AT, delta)
	cg.emit(mips.Inst{Op: mips.ADDU, Rd: mips.SP, Rs: mips.SP, Rt: mips.AT})
}

func (cg *codegen) prologue() {
	cg.adjustSP(-cg.frame)
	if cg.alloc.hasCall {
		cg.emit(mips.Inst{Op: mips.SW, Rt: mips.RA, Rs: mips.SP, Imm: cg.raOff})
	}
	for _, r := range cg.alloc.usedCallee {
		cg.emit(mips.Inst{Op: mips.SW, Rt: r, Rs: mips.SP, Imm: cg.saveOff[r]})
	}
	// Bind incoming arguments to their temps.
	argRegs := []mips.Reg{mips.A0, mips.A1, mips.A2, mips.A3}
	for i, p := range cg.f.Params {
		if i >= len(argRegs) {
			break
		}
		cg.writeTemp(p, argRegs[i])
	}
}

func (cg *codegen) epilogue() {
	for _, r := range cg.alloc.usedCallee {
		cg.emit(mips.Inst{Op: mips.LW, Rt: r, Rs: mips.SP, Imm: cg.saveOff[r]})
	}
	if cg.alloc.hasCall {
		cg.emit(mips.Inst{Op: mips.LW, Rt: mips.RA, Rs: mips.SP, Imm: cg.raOff})
	}
	cg.adjustSP(cg.frame)
	cg.emit(mips.Inst{Op: mips.JR, Rs: mips.RA})
}

// tempReg returns the register holding t, loading a spilled temp into the
// given scratch first.
func (cg *codegen) tempReg(t Temp, scratch mips.Reg) mips.Reg {
	if r, ok := cg.alloc.reg[t]; ok {
		return r
	}
	slot, ok := cg.alloc.spill[t]
	if !ok {
		// A temp with no allocation was never live; its value is
		// irrelevant, but reads must still produce something.
		return mips.Zero
	}
	cg.emit(mips.Inst{Op: mips.LW, Rt: scratch, Rs: mips.SP, Imm: cg.spillOff + int32(4*slot)})
	return scratch
}

// destReg returns the register an instruction should compute into for dest
// temp t; if t is spilled the result goes into scratch and writeBack must
// be called after the computation.
func (cg *codegen) destReg(t Temp, scratch mips.Reg) (mips.Reg, bool) {
	if r, ok := cg.alloc.reg[t]; ok {
		return r, false
	}
	return scratch, true
}

func (cg *codegen) writeBack(t Temp, from mips.Reg) {
	slot, ok := cg.alloc.spill[t]
	if !ok {
		return // dead temp
	}
	cg.emit(mips.Inst{Op: mips.SW, Rt: from, Rs: mips.SP, Imm: cg.spillOff + int32(4*slot)})
}

// writeTemp moves a value already in register from into temp t.
func (cg *codegen) writeTemp(t Temp, from mips.Reg) {
	if r, ok := cg.alloc.reg[t]; ok {
		if r != from {
			cg.emit(mips.Inst{Op: mips.ADDU, Rd: r, Rs: from, Rt: mips.Zero})
		}
		return
	}
	cg.writeBack(t, from)
}

// loadImm materializes a 32-bit constant into reg.
func (cg *codegen) loadImm(reg mips.Reg, v int32) {
	if v >= -32768 && v <= 32767 {
		cg.emit(mips.Inst{Op: mips.ADDIU, Rt: reg, Rs: mips.Zero, Imm: v})
		return
	}
	uv := uint32(v)
	cg.emit(mips.Inst{Op: mips.LUI, Rt: reg, Imm: int32(uv >> 16)})
	if low := uv & 0xffff; low != 0 {
		cg.emit(mips.Inst{Op: mips.ORI, Rt: reg, Rs: reg, Imm: int32(low)})
	}
}

// operandReg places an operand in a register.
func (cg *codegen) operandReg(o Operand, scratch mips.Reg) mips.Reg {
	if o.IsConst {
		if o.Val == 0 {
			return mips.Zero
		}
		cg.loadImm(scratch, o.Val)
		return scratch
	}
	return cg.tempReg(o.Temp, scratch)
}

func fitsSigned16(v int32) bool   { return v >= -32768 && v <= 32767 }
func fitsUnsigned16(v int32) bool { return v >= 0 && v <= 0xffff }

func (cg *codegen) genIns(in *ins) error {
	switch in.Kind {
	case iNop:
	case iLabel:
		cg.labelPos[in.Sym] = len(cg.insts)
	case iMov:
		d, spilled := cg.destReg(in.Dst, mips.K0)
		if in.A.IsConst {
			cg.loadImm(d, in.A.Val)
		} else {
			src := cg.tempReg(in.A.Temp, mips.K0)
			if src != d {
				cg.emit(mips.Inst{Op: mips.ADDU, Rd: d, Rs: src, Rt: mips.Zero})
			}
		}
		if spilled {
			cg.writeBack(in.Dst, d)
		}
	case iBin:
		return cg.genBin(in)
	case iLoad:
		base := cg.operandReg(in.A, mips.K0)
		base = cg.addLargeOffset(base, &in.Off)
		d, spilled := cg.destReg(in.Dst, mips.K0)
		var op mips.Op
		switch {
		case in.Width == 1 && in.SignExtend:
			op = mips.LB
		case in.Width == 1:
			op = mips.LBU
		case in.Width == 2 && in.SignExtend:
			op = mips.LH
		case in.Width == 2:
			op = mips.LHU
		default:
			op = mips.LW
		}
		cg.emit(mips.Inst{Op: op, Rt: d, Rs: base, Imm: in.Off})
		if spilled {
			cg.writeBack(in.Dst, d)
		}
	case iStore:
		base := cg.operandReg(in.B, mips.K0)
		base = cg.addLargeOffset(base, &in.Off)
		val := cg.operandReg(in.A, mips.K1)
		var op mips.Op
		switch in.Width {
		case 1:
			op = mips.SB
		case 2:
			op = mips.SH
		default:
			op = mips.SW
		}
		cg.emit(mips.Inst{Op: op, Rt: val, Rs: base, Imm: in.Off})
	case iAddrG:
		addr, ok := cg.globals[in.Sym]
		if !ok {
			return fmt.Errorf("unknown global %q", in.Sym)
		}
		d, spilled := cg.destReg(in.Dst, mips.K0)
		cg.loadImm(d, int32(addr))
		if spilled {
			cg.writeBack(in.Dst, d)
		}
	case iAddrL:
		d, spilled := cg.destReg(in.Dst, mips.K0)
		if off := cg.slotOff[in.Slot]; fitsSigned16(off) {
			cg.emit(mips.Inst{Op: mips.ADDIU, Rt: d, Rs: mips.SP, Imm: off})
		} else {
			cg.loadImm(mips.AT, off)
			cg.emit(mips.Inst{Op: mips.ADDU, Rd: d, Rs: mips.SP, Rt: mips.AT})
		}
		if spilled {
			cg.writeBack(in.Dst, d)
		}
	case iBr:
		cg.branchFix = append(cg.branchFix, branchFix{len(cg.insts), in.Sym})
		cg.emit(mips.Inst{Op: mips.BEQ, Rs: mips.Zero, Rt: mips.Zero})
	case iCBr:
		return cg.genCBr(in)
	case iJT:
		r := cg.operandReg(in.A, mips.K0)
		cg.emit(mips.Inst{Op: mips.JR, Rs: r})
	case iCall:
		argRegs := []mips.Reg{mips.A0, mips.A1, mips.A2, mips.A3}
		if len(in.Args) > len(argRegs) {
			return fmt.Errorf("call to %q with %d args", in.Sym, len(in.Args))
		}
		for i, a := range in.Args {
			if a.IsConst {
				cg.loadImm(argRegs[i], a.Val)
				continue
			}
			src := cg.tempReg(a.Temp, mips.K0)
			if src != argRegs[i] {
				cg.emit(mips.Inst{Op: mips.ADDU, Rd: argRegs[i], Rs: src, Rt: mips.Zero})
			}
		}
		cg.callFix = append(cg.callFix, callFix{len(cg.insts), in.Sym})
		cg.emit(mips.Inst{Op: mips.JAL})
		if in.HasDst {
			cg.writeTemp(in.Dst, mips.V0)
		}
	case iRet:
		if in.HasA {
			if in.A.IsConst {
				cg.loadImm(mips.V0, in.A.Val)
			} else {
				src := cg.tempReg(in.A.Temp, mips.K0)
				if src != mips.V0 {
					cg.emit(mips.Inst{Op: mips.ADDU, Rd: mips.V0, Rs: src, Rt: mips.Zero})
				}
			}
		}
		cg.branchFix = append(cg.branchFix, branchFix{len(cg.insts), epilogueLabel})
		cg.emit(mips.Inst{Op: mips.BEQ, Rs: mips.Zero, Rt: mips.Zero})
	default:
		return fmt.Errorf("unhandled TAC instruction %v", *in)
	}
	return nil
}

// addLargeOffset folds an out-of-range memory offset into the base register
// using $at, returning the effective base.
func (cg *codegen) addLargeOffset(base mips.Reg, off *int32) mips.Reg {
	if fitsSigned16(*off) {
		return base
	}
	cg.loadImm(mips.AT, *off)
	cg.emit(mips.Inst{Op: mips.ADDU, Rd: mips.AT, Rs: base, Rt: mips.AT})
	*off = 0
	return mips.AT
}

func (cg *codegen) genBin(in *ins) error {
	d, spilled := cg.destReg(in.Dst, mips.K0)
	defer func() {
		if spilled {
			cg.writeBack(in.Dst, d)
		}
	}()

	a, b := in.A, in.B
	// Try immediate forms with the constant on the right; commute where
	// legal.
	if a.IsConst && !b.IsConst {
		switch in.Op {
		case "+", "&", "|", "^", "*":
			a, b = b, a
		}
	}

	if !a.IsConst && b.IsConst {
		ra := func() mips.Reg { return cg.tempReg(a.Temp, mips.K0) }
		v := b.Val
		switch in.Op {
		case "+":
			if fitsSigned16(v) {
				cg.emit(mips.Inst{Op: mips.ADDIU, Rt: d, Rs: ra(), Imm: v})
				return nil
			}
		case "-":
			if fitsSigned16(-v) {
				cg.emit(mips.Inst{Op: mips.ADDIU, Rt: d, Rs: ra(), Imm: -v})
				return nil
			}
		case "&":
			if fitsUnsigned16(v) {
				cg.emit(mips.Inst{Op: mips.ANDI, Rt: d, Rs: ra(), Imm: v})
				return nil
			}
		case "|":
			if fitsUnsigned16(v) {
				cg.emit(mips.Inst{Op: mips.ORI, Rt: d, Rs: ra(), Imm: v})
				return nil
			}
		case "^":
			if fitsUnsigned16(v) {
				cg.emit(mips.Inst{Op: mips.XORI, Rt: d, Rs: ra(), Imm: v})
				return nil
			}
		case "<":
			if fitsSigned16(v) {
				cg.emit(mips.Inst{Op: mips.SLTI, Rt: d, Rs: ra(), Imm: v})
				return nil
			}
		case "<u":
			if fitsSigned16(v) {
				cg.emit(mips.Inst{Op: mips.SLTIU, Rt: d, Rs: ra(), Imm: v})
				return nil
			}
		case "<<":
			cg.emit(mips.Inst{Op: mips.SLL, Rd: d, Rt: ra(), Imm: v & 31})
			return nil
		case ">>s":
			cg.emit(mips.Inst{Op: mips.SRA, Rd: d, Rt: ra(), Imm: v & 31})
			return nil
		case ">>u":
			cg.emit(mips.Inst{Op: mips.SRL, Rd: d, Rt: ra(), Imm: v & 31})
			return nil
		}
	}

	rs := cg.operandReg(a, mips.K0)
	rt := cg.operandReg(b, mips.K1)
	switch in.Op {
	case "+":
		cg.emit(mips.Inst{Op: mips.ADDU, Rd: d, Rs: rs, Rt: rt})
	case "-":
		cg.emit(mips.Inst{Op: mips.SUBU, Rd: d, Rs: rs, Rt: rt})
	case "&":
		cg.emit(mips.Inst{Op: mips.AND, Rd: d, Rs: rs, Rt: rt})
	case "|":
		cg.emit(mips.Inst{Op: mips.OR, Rd: d, Rs: rs, Rt: rt})
	case "^":
		cg.emit(mips.Inst{Op: mips.XOR, Rd: d, Rs: rs, Rt: rt})
	case "<":
		cg.emit(mips.Inst{Op: mips.SLT, Rd: d, Rs: rs, Rt: rt})
	case "<u":
		cg.emit(mips.Inst{Op: mips.SLTU, Rd: d, Rs: rs, Rt: rt})
	case "<<":
		cg.emit(mips.Inst{Op: mips.SLLV, Rd: d, Rs: rt, Rt: rs})
	case ">>s":
		cg.emit(mips.Inst{Op: mips.SRAV, Rd: d, Rs: rt, Rt: rs})
	case ">>u":
		cg.emit(mips.Inst{Op: mips.SRLV, Rd: d, Rs: rt, Rt: rs})
	case "*":
		cg.emit(mips.Inst{Op: mips.MULT, Rs: rs, Rt: rt})
		cg.emit(mips.Inst{Op: mips.MFLO, Rd: d})
	case "/":
		cg.emit(mips.Inst{Op: mips.DIV, Rs: rs, Rt: rt})
		cg.emit(mips.Inst{Op: mips.MFLO, Rd: d})
	case "/u":
		cg.emit(mips.Inst{Op: mips.DIVU, Rs: rs, Rt: rt})
		cg.emit(mips.Inst{Op: mips.MFLO, Rd: d})
	case "%":
		cg.emit(mips.Inst{Op: mips.DIV, Rs: rs, Rt: rt})
		cg.emit(mips.Inst{Op: mips.MFHI, Rd: d})
	case "%u":
		cg.emit(mips.Inst{Op: mips.DIVU, Rs: rs, Rt: rt})
		cg.emit(mips.Inst{Op: mips.MFHI, Rd: d})
	default:
		return fmt.Errorf("unhandled binary operator %q", in.Op)
	}
	return nil
}

func (cg *codegen) genCBr(in *ins) error {
	branch := func(inst mips.Inst) {
		cg.branchFix = append(cg.branchFix, branchFix{len(cg.insts), in.Sym})
		cg.emit(inst)
	}
	// Comparisons against constant zero map to MIPS's dedicated branches.
	if in.B.IsConst && in.B.Val == 0 && !in.A.IsConst {
		ra := cg.tempReg(in.A.Temp, mips.K0)
		switch in.Op {
		case "==":
			branch(mips.Inst{Op: mips.BEQ, Rs: ra, Rt: mips.Zero})
			return nil
		case "!=":
			branch(mips.Inst{Op: mips.BNE, Rs: ra, Rt: mips.Zero})
			return nil
		case "<":
			branch(mips.Inst{Op: mips.BLTZ, Rs: ra})
			return nil
		case "<=":
			branch(mips.Inst{Op: mips.BLEZ, Rs: ra})
			return nil
		case ">":
			branch(mips.Inst{Op: mips.BGTZ, Rs: ra})
			return nil
		case ">=":
			branch(mips.Inst{Op: mips.BGEZ, Rs: ra})
			return nil
		case "<u":
			return nil // x <u 0 is never true
		case ">=u":
			branch(mips.Inst{Op: mips.BEQ, Rs: mips.Zero, Rt: mips.Zero})
			return nil
		case ">u":
			branch(mips.Inst{Op: mips.BNE, Rs: ra, Rt: mips.Zero})
			return nil
		case "<=u":
			branch(mips.Inst{Op: mips.BEQ, Rs: ra, Rt: mips.Zero})
			return nil
		}
	}

	if in.Op == "==" || in.Op == "!=" {
		ra := cg.operandReg(in.A, mips.K0)
		rb := cg.operandReg(in.B, mips.K1)
		op := mips.BEQ
		if in.Op == "!=" {
			op = mips.BNE
		}
		branch(mips.Inst{Op: op, Rs: ra, Rt: rb})
		return nil
	}

	// General relational: slt into $at, then branch on $at.
	sltInto := func(x, y Operand, unsigned bool) {
		rx := cg.operandReg(x, mips.K0)
		if y.IsConst && fitsSigned16(y.Val) {
			op := mips.SLTI
			if unsigned {
				op = mips.SLTIU
			}
			cg.emit(mips.Inst{Op: op, Rt: mips.AT, Rs: rx, Imm: y.Val})
			return
		}
		ry := cg.operandReg(y, mips.K1)
		op := mips.SLT
		if unsigned {
			op = mips.SLTU
		}
		cg.emit(mips.Inst{Op: op, Rd: mips.AT, Rs: rx, Rt: ry})
	}
	switch in.Op {
	case "<":
		sltInto(in.A, in.B, false)
		branch(mips.Inst{Op: mips.BNE, Rs: mips.AT, Rt: mips.Zero})
	case "<u":
		sltInto(in.A, in.B, true)
		branch(mips.Inst{Op: mips.BNE, Rs: mips.AT, Rt: mips.Zero})
	case ">=":
		sltInto(in.A, in.B, false)
		branch(mips.Inst{Op: mips.BEQ, Rs: mips.AT, Rt: mips.Zero})
	case ">=u":
		sltInto(in.A, in.B, true)
		branch(mips.Inst{Op: mips.BEQ, Rs: mips.AT, Rt: mips.Zero})
	case ">":
		sltInto(in.B, in.A, false)
		branch(mips.Inst{Op: mips.BNE, Rs: mips.AT, Rt: mips.Zero})
	case ">u":
		sltInto(in.B, in.A, true)
		branch(mips.Inst{Op: mips.BNE, Rs: mips.AT, Rt: mips.Zero})
	case "<=":
		sltInto(in.B, in.A, false)
		branch(mips.Inst{Op: mips.BEQ, Rs: mips.AT, Rt: mips.Zero})
	case "<=u":
		sltInto(in.B, in.A, true)
		branch(mips.Inst{Op: mips.BEQ, Rs: mips.AT, Rt: mips.Zero})
	default:
		return fmt.Errorf("unhandled branch condition %q", in.Op)
	}
	return nil
}

// fixBranches resolves local branch targets to PC-relative word offsets.
func (cg *codegen) fixBranches() error {
	for _, fx := range cg.branchFix {
		pos, ok := cg.labelPos[fx.label]
		if !ok {
			return fmt.Errorf("undefined label %q", fx.label)
		}
		off := pos - (fx.instIdx + 1)
		if off < -32768 || off > 32767 {
			return fmt.Errorf("branch to %q out of range (%d instructions)", fx.label, off)
		}
		cg.insts[fx.instIdx].Imm = int32(off)
	}
	return nil
}
