package mcc

import (
	"fmt"
	"strconv"
)

// varLoc says where a variable lives during lowering.
type varLoc struct {
	kind locKind
	temp Temp   // locTemp
	slot int    // locSlot
	sym  string // locGlobal
	typ  *Type
}

type locKind int

const (
	locTemp locKind = iota
	locSlot
	locGlobal
)

// lowerer translates one function's AST to TAC.
type lowerer struct {
	f        *tacFunc
	labelN   int
	tableN   int
	vars     map[*symbol]varLoc
	breakLs  []string
	contLs   []string
	memLocal bool // O0: every scalar local lives in a stack slot
	rotate   bool // O1+: bottom-test ("rotated") loops
}

// lowerFunc converts fn to TAC. memLocals selects O0-style slot-allocated
// locals; rotate selects bottom-test loop shape (both match what real
// compilers emit at the corresponding levels).
func lowerFunc(fn *FuncDecl, memLocals, rotate bool) (*tacFunc, error) {
	lo := &lowerer{
		f:        &tacFunc{Name: fn.Name, IsVoid: fn.Ret.Kind == TypeVoid},
		vars:     make(map[*symbol]varLoc),
		memLocal: memLocals,
		rotate:   rotate,
	}
	// Bind parameters: incoming values land in fresh temps; O0 copies
	// them to slots like a naive compiler would.
	for _, pd := range fn.Params {
		t := lo.f.newTemp()
		lo.f.Params = append(lo.f.Params, t)
		sym := findSym(fn, pd)
		if sym == nil {
			return nil, fmt.Errorf("mcc: internal: unresolved parameter %q", pd.Name)
		}
		if lo.memQualifies(sym) {
			slot := lo.newSlot(4, 4, pd.Name)
			lo.vars[sym] = varLoc{kind: locSlot, slot: slot, typ: pd.Type}
			addr := lo.f.newTemp()
			lo.f.emit(ins{Kind: iAddrL, Dst: addr, Slot: slot})
			lo.f.emit(ins{Kind: iStore, A: tmp(t), B: tmp(addr), Width: 4})
		} else {
			lo.vars[sym] = varLoc{kind: locTemp, temp: t, typ: pd.Type}
		}
	}
	if err := lo.stmt(fn.Body); err != nil {
		return nil, err
	}
	// Implicit return. main falls back to returning 0.
	lo.f.emit(ins{Kind: iRet, HasA: !lo.f.IsVoid, A: cnst(0)})
	return lo.f, nil
}

// findSym digs the sema symbol for a parameter out of the first Ident that
// references it; parameters always have a symbol after Analyze. To avoid a
// traversal we stash symbols on first use, so instead record them eagerly:
// Analyze stores the symbol in the scope only, so we reconstruct it here by
// matching name/type through the body. Rather than traverse, we rely on the
// convention that sema stored paramIx in the scope symbol; the decl pointer
// is the link.
func findSym(fn *FuncDecl, pd *VarDecl) *symbol {
	if pd.sym == nil {
		// The body never referenced the parameter; synthesize a symbol.
		pd.sym = &symbol{name: pd.Name, typ: pd.Type, decl: pd, paramIx: -1}
	}
	return pd.sym
}

func (lo *lowerer) memQualifies(sym *symbol) bool {
	return lo.memLocal || sym.addrOf
}

func (lo *lowerer) newSlot(size, align int, name string) int {
	lo.f.Slots = append(lo.f.Slots, slotInfo{Size: size, Align: align, Name: name})
	return len(lo.f.Slots) - 1
}

func (lo *lowerer) newLabel(hint string) string {
	lo.labelN++
	var b []byte
	b = append(b, '.')
	b = append(b, lo.f.Name...)
	b = append(b, '.')
	b = append(b, hint...)
	b = strconv.AppendInt(b, int64(lo.labelN), 10)
	return string(b)
}

func (lo *lowerer) errf(format string, args ...any) error {
	return fmt.Errorf("mcc: %s: %s", lo.f.Name, fmt.Sprintf(format, args...))
}

// loc returns (creating if needed) the storage binding of a symbol.
func (lo *lowerer) loc(sym *symbol) varLoc {
	if sym.global {
		return varLoc{kind: locGlobal, sym: sym.name, typ: sym.typ}
	}
	if l, ok := lo.vars[sym]; ok {
		return l
	}
	var l varLoc
	if sym.typ.Kind == TypeArray {
		l = varLoc{kind: locSlot, slot: lo.newSlot(sym.typ.Size(), 4, sym.name), typ: sym.typ}
	} else if lo.memQualifies(sym) {
		l = varLoc{kind: locSlot, slot: lo.newSlot(4, 4, sym.name), typ: sym.typ}
	} else {
		l = varLoc{kind: locTemp, temp: lo.f.newTemp(), typ: sym.typ}
	}
	lo.vars[sym] = l
	return l
}

func (lo *lowerer) stmt(st Stmt) error {
	switch st := st.(type) {
	case *BlockStmt:
		for _, s := range st.Stmts {
			if err := lo.stmt(s); err != nil {
				return err
			}
		}
	case *DeclStmt:
		return lo.declStmt(st)
	case *ExprStmt:
		_, err := lo.expr(st.X)
		return err
	case *IfStmt:
		return lo.ifStmt(st)
	case *WhileStmt:
		return lo.whileStmt(st)
	case *DoWhileStmt:
		return lo.doWhileStmt(st)
	case *ForStmt:
		return lo.forStmt(st)
	case *SwitchStmt:
		return lo.switchStmt(st)
	case *BreakStmt:
		if len(lo.breakLs) == 0 {
			return lo.errf("break outside loop")
		}
		lo.f.emit(ins{Kind: iBr, Sym: lo.breakLs[len(lo.breakLs)-1]})
	case *ContinueStmt:
		if len(lo.contLs) == 0 {
			return lo.errf("continue outside loop")
		}
		lo.f.emit(ins{Kind: iBr, Sym: lo.contLs[len(lo.contLs)-1]})
	case *ReturnStmt:
		if st.X == nil {
			lo.f.emit(ins{Kind: iRet})
			return nil
		}
		v, err := lo.expr(st.X)
		if err != nil {
			return err
		}
		lo.f.emit(ins{Kind: iRet, HasA: true, A: v})
	default:
		return lo.errf("unhandled statement %T", st)
	}
	return nil
}

func (lo *lowerer) declStmt(st *DeclStmt) error {
	for _, d := range st.Decls {
		if err := lo.declOne(d); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) declOne(d *VarDecl) error {
	if d.sym == nil {
		return lo.errf("internal: local %q has no symbol", d.Name)
	}
	l := lo.loc(d.sym)
	if d.Type.Kind == TypeArray {
		// Initialize elements that have initializers; MicroC zero-fills
		// nothing for locals (like C automatic storage, reads of
		// uninitialized elements are garbage).
		for i, v := range d.Vals {
			val, err := lo.expr(v)
			if err != nil {
				return err
			}
			addr := lo.f.newTemp()
			lo.f.emit(ins{Kind: iAddrL, Dst: addr, Slot: l.slot})
			es := d.Type.Elem.Size()
			lo.f.emit(ins{Kind: iStore, A: val, B: tmp(addr), Off: int32(i * es), Width: es})
		}
		return nil
	}
	if d.Init == nil {
		return nil
	}
	v, err := lo.expr(d.Init)
	if err != nil {
		return err
	}
	return lo.storeTo(l, v, d.Type)
}

// storeTo writes v into the variable at l, truncating for narrow types.
func (lo *lowerer) storeTo(l varLoc, v Operand, t *Type) error {
	switch l.kind {
	case locTemp:
		v = lo.truncate(v, t)
		lo.f.emit(ins{Kind: iMov, Dst: l.temp, A: v})
	case locSlot:
		addr := lo.f.newTemp()
		lo.f.emit(ins{Kind: iAddrL, Dst: addr, Slot: l.slot})
		lo.f.emit(ins{Kind: iStore, A: v, B: tmp(addr), Width: scalarWidth(t)})
	case locGlobal:
		addr := lo.f.newTemp()
		lo.f.emit(ins{Kind: iAddrG, Dst: addr, Sym: l.sym})
		lo.f.emit(ins{Kind: iStore, A: v, B: tmp(addr), Width: scalarWidth(t)})
	}
	return nil
}

func scalarWidth(t *Type) int {
	if t.Kind == TypePtr {
		return 4
	}
	return t.Size()
}

// truncate normalizes a value to a narrow type's range, as a real compiler
// must when the value lives in a full-width register.
func (lo *lowerer) truncate(v Operand, t *Type) Operand {
	switch t.Kind {
	case TypeChar:
		return lo.extend(v, 24, true)
	case TypeUChar:
		return lo.binOp("&", v, cnst(0xff))
	case TypeShort:
		return lo.extend(v, 16, true)
	case TypeUShort:
		return lo.binOp("&", v, cnst(0xffff))
	}
	return v
}

func (lo *lowerer) extend(v Operand, sh int32, arith bool) Operand {
	t1 := lo.binOp("<<", v, cnst(sh))
	op := ">>u"
	if arith {
		op = ">>s"
	}
	return lo.binOp(op, t1, cnst(sh))
}

func (lo *lowerer) binOp(op string, a, b Operand) Operand {
	d := lo.f.newTemp()
	lo.f.emit(ins{Kind: iBin, Op: op, Dst: d, A: a, B: b})
	return tmp(d)
}

func (lo *lowerer) ifStmt(st *IfStmt) error {
	thenL := lo.newLabel("then")
	endL := lo.newLabel("endif")
	elseL := endL
	if st.Else != nil {
		elseL = lo.newLabel("else")
	}
	if err := lo.cond(st.Cond, thenL, elseL); err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: thenL})
	if err := lo.stmt(st.Then); err != nil {
		return err
	}
	if st.Else != nil {
		lo.f.emit(ins{Kind: iBr, Sym: endL})
		lo.f.emit(ins{Kind: iLabel, Sym: elseL})
		if err := lo.stmt(st.Else); err != nil {
			return err
		}
	}
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return nil
}

func (lo *lowerer) loopBody(body Stmt, breakL, contL string) error {
	lo.breakLs = append(lo.breakLs, breakL)
	lo.contLs = append(lo.contLs, contL)
	err := lo.stmt(body)
	lo.breakLs = lo.breakLs[:len(lo.breakLs)-1]
	lo.contLs = lo.contLs[:len(lo.contLs)-1]
	return err
}

func (lo *lowerer) whileStmt(st *WhileStmt) error {
	if lo.rotate {
		// goto cond; body: ...; cond: if (c) goto body; end:
		bodyL := lo.newLabel("wbody")
		condL := lo.newLabel("wcond")
		endL := lo.newLabel("wend")
		lo.f.emit(ins{Kind: iBr, Sym: condL})
		lo.f.emit(ins{Kind: iLabel, Sym: bodyL})
		if err := lo.loopBody(st.Body, endL, condL); err != nil {
			return err
		}
		lo.f.emit(ins{Kind: iLabel, Sym: condL})
		if err := lo.cond(st.Cond, bodyL, endL); err != nil {
			return err
		}
		lo.f.emit(ins{Kind: iLabel, Sym: endL})
		return nil
	}
	// Top-test shape: cond: if (!c) goto end; body; goto cond; end:
	condL := lo.newLabel("wcond")
	bodyL := lo.newLabel("wbody")
	endL := lo.newLabel("wend")
	lo.f.emit(ins{Kind: iLabel, Sym: condL})
	if err := lo.cond(st.Cond, bodyL, endL); err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: bodyL})
	if err := lo.loopBody(st.Body, endL, condL); err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iBr, Sym: condL})
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return nil
}

func (lo *lowerer) doWhileStmt(st *DoWhileStmt) error {
	bodyL := lo.newLabel("dbody")
	condL := lo.newLabel("dcond")
	endL := lo.newLabel("dend")
	lo.f.emit(ins{Kind: iLabel, Sym: bodyL})
	if err := lo.loopBody(st.Body, endL, condL); err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: condL})
	if err := lo.cond(st.Cond, bodyL, endL); err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return nil
}

func (lo *lowerer) forStmt(st *ForStmt) error {
	if st.Init != nil {
		if err := lo.stmt(st.Init); err != nil {
			return err
		}
	}
	bodyL := lo.newLabel("fbody")
	condL := lo.newLabel("fcond")
	contL := lo.newLabel("fcont")
	endL := lo.newLabel("fend")

	if lo.rotate {
		lo.f.emit(ins{Kind: iBr, Sym: condL})
		lo.f.emit(ins{Kind: iLabel, Sym: bodyL})
		if err := lo.loopBody(st.Body, endL, contL); err != nil {
			return err
		}
		lo.f.emit(ins{Kind: iLabel, Sym: contL})
		if st.Post != nil {
			if _, err := lo.expr(st.Post); err != nil {
				return err
			}
		}
		lo.f.emit(ins{Kind: iLabel, Sym: condL})
		if st.Cond == nil {
			lo.f.emit(ins{Kind: iBr, Sym: bodyL})
		} else if err := lo.cond(st.Cond, bodyL, endL); err != nil {
			return err
		}
		lo.f.emit(ins{Kind: iLabel, Sym: endL})
		return nil
	}
	lo.f.emit(ins{Kind: iLabel, Sym: condL})
	if st.Cond != nil {
		if err := lo.cond(st.Cond, bodyL, endL); err != nil {
			return err
		}
	}
	lo.f.emit(ins{Kind: iLabel, Sym: bodyL})
	if err := lo.loopBody(st.Body, endL, contL); err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: contL})
	if st.Post != nil {
		if _, err := lo.expr(st.Post); err != nil {
			return err
		}
	}
	lo.f.emit(ins{Kind: iBr, Sym: condL})
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return nil
}

func (lo *lowerer) switchStmt(st *SwitchStmt) error {
	tag, err := lo.expr(st.Tag)
	if err != nil {
		return err
	}
	endL := lo.newLabel("swend")
	defL := endL
	if st.Default != nil {
		defL = lo.newLabel("swdef")
	}
	caseLs := make([]string, len(st.Cases))
	for i := range st.Cases {
		caseLs[i] = lo.newLabel(fmt.Sprintf("case%d", i))
	}

	if useJumpTable(st) {
		lo.emitJumpTable(st, tag, caseLs, defL)
	} else {
		for i, c := range st.Cases {
			lo.f.emit(ins{Kind: iCBr, Op: "==", A: tag, B: cnst(c.Val), Sym: caseLs[i]})
		}
		lo.f.emit(ins{Kind: iBr, Sym: defL})
	}

	// Case bodies with C fallthrough semantics.
	lo.breakLs = append(lo.breakLs, endL)
	for i, c := range st.Cases {
		lo.f.emit(ins{Kind: iLabel, Sym: caseLs[i]})
		for _, s := range c.Body {
			if err := lo.stmt(s); err != nil {
				return err
			}
		}
	}
	if st.Default != nil {
		lo.f.emit(ins{Kind: iLabel, Sym: defL})
		for _, s := range st.Default {
			if err := lo.stmt(s); err != nil {
				return err
			}
		}
	}
	lo.breakLs = lo.breakLs[:len(lo.breakLs)-1]
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return nil
}

// useJumpTable decides between a jump table and a compare chain using the
// same density rule real compilers apply: at least 4 cases spanning at most
// 3x their count.
func useJumpTable(st *SwitchStmt) bool {
	if len(st.Cases) < 4 {
		return false
	}
	min, max := st.Cases[0].Val, st.Cases[0].Val
	for _, c := range st.Cases {
		if c.Val < min {
			min = c.Val
		}
		if c.Val > max {
			max = c.Val
		}
	}
	span := int64(max) - int64(min) + 1
	return span <= int64(3*len(st.Cases))
}

func (lo *lowerer) emitJumpTable(st *SwitchStmt, tag Operand, caseLs []string, defL string) {
	min, max := st.Cases[0].Val, st.Cases[0].Val
	for _, c := range st.Cases {
		if c.Val < min {
			min = c.Val
		}
		if c.Val > max {
			max = c.Val
		}
	}
	span := max - min + 1
	table := jumpTable{Sym: fmt.Sprintf(".jt.%s.%d", lo.f.Name, lo.tableN)}
	lo.tableN++
	byVal := make(map[int32]string)
	for i, c := range st.Cases {
		byVal[c.Val] = caseLs[i]
	}
	for v := min; ; v++ {
		if l, ok := byVal[v]; ok {
			table.Labels = append(table.Labels, l)
		} else {
			table.Labels = append(table.Labels, defL)
		}
		if v == max {
			break
		}
	}
	lo.f.Tables = append(lo.f.Tables, table)

	idx := lo.binOp("-", tag, cnst(min))
	inRange := lo.binOp("<u", idx, cnst(span))
	lo.f.emit(ins{Kind: iCBr, Op: "==", A: inRange, B: cnst(0), Sym: defL})
	off := lo.binOp("<<", idx, cnst(2))
	base := lo.f.newTemp()
	lo.f.emit(ins{Kind: iAddrG, Dst: base, Sym: table.Sym})
	slotAddr := lo.binOp("+", tmp(base), off)
	target := lo.f.newTemp()
	lo.f.emit(ins{Kind: iLoad, Dst: target, A: slotAddr, Width: 4})
	lo.f.emit(ins{Kind: iJT, A: tmp(target)})
}
