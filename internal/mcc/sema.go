package mcc

import "fmt"

// sema performs name resolution and type checking, annotating the AST in
// place: every Expr receives a type, every Ident a symbol, every CallExpr
// its callee. It also marks locals whose address is taken (they need stack
// slots even at -O1 and above).
type sema struct {
	prog   *Program
	funcs  map[string]*FuncDecl
	scopes []map[string]*symbol
	fn     *FuncDecl
	loops  int // nesting depth of breakable/continuable constructs
	sw     int // nesting depth of switches (break only)
}

// Analyze type-checks the program. It must run before lowering.
func Analyze(prog *Program) error {
	s := &sema{prog: prog, funcs: make(map[string]*FuncDecl)}
	for _, fn := range prog.Funcs {
		if _, dup := s.funcs[fn.Name]; dup {
			return fmt.Errorf("mcc: function %q redefined", fn.Name)
		}
		if len(fn.Params) > 4 {
			return fmt.Errorf("mcc: function %q has %d parameters; MicroC supports at most 4 (register-passed)", fn.Name, len(fn.Params))
		}
		s.funcs[fn.Name] = fn
	}
	if _, ok := s.funcs["main"]; !ok {
		return fmt.Errorf("mcc: no main function")
	}

	s.push()
	for _, g := range prog.Globals {
		if g.Type.Kind == TypeVoid {
			return fmt.Errorf("mcc: global %q has void type", g.Name)
		}
		if err := s.declare(g, true); err != nil {
			return err
		}
		if g.Init != nil {
			if _, err := s.constEval(g.Init); err != nil {
				return fmt.Errorf("mcc: global %q: initializer must be constant: %w", g.Name, err)
			}
		}
		for _, v := range g.Vals {
			if _, err := s.constEval(v); err != nil {
				return fmt.Errorf("mcc: global %q: initializer must be constant: %w", g.Name, err)
			}
		}
	}
	for _, fn := range prog.Funcs {
		if err := s.checkFunc(fn); err != nil {
			return err
		}
	}
	s.pop()
	return nil
}

func (s *sema) push() { s.scopes = append(s.scopes, make(map[string]*symbol)) }
func (s *sema) pop()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *sema) declare(d *VarDecl, global bool) error {
	top := s.scopes[len(s.scopes)-1]
	if _, dup := top[d.Name]; dup {
		return fmt.Errorf("mcc: line %d: %q redeclared", d.Line, d.Name)
	}
	sym := &symbol{name: d.Name, typ: d.Type, global: global, decl: d, paramIx: -1}
	top[d.Name] = sym
	d.sym = sym
	return nil
}

func (s *sema) resolve(name string) *symbol {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if sym, ok := s.scopes[i][name]; ok {
			return sym
		}
	}
	return nil
}

func (s *sema) checkFunc(fn *FuncDecl) error {
	s.fn = fn
	s.push()
	defer s.pop()
	for i, pd := range fn.Params {
		if pd.Type.Kind == TypeVoid || pd.Type.Kind == TypeArray {
			return fmt.Errorf("mcc: %q: bad parameter type %s", fn.Name, pd.Type)
		}
		if err := s.declare(pd, false); err != nil {
			return err
		}
		s.scopes[len(s.scopes)-1][pd.Name].paramIx = i
	}
	return s.checkStmt(fn.Body)
}

func (s *sema) checkStmt(st Stmt) error {
	switch st := st.(type) {
	case *BlockStmt:
		s.push()
		defer s.pop()
		for _, inner := range st.Stmts {
			if err := s.checkStmt(inner); err != nil {
				return err
			}
		}
	case *DeclStmt:
		for _, d := range st.Decls {
			if d.Type.Kind == TypeVoid {
				return fmt.Errorf("mcc: line %d: local %q has void type", d.Line, d.Name)
			}
			if d.Init != nil {
				if err := s.checkExpr(d.Init); err != nil {
					return err
				}
				if !assignable(d.Type, d.Init.ExprType()) {
					return fmt.Errorf("mcc: line %d: cannot initialize %s %q from %s", d.Line, d.Type, d.Name, d.Init.ExprType())
				}
			}
			for _, v := range d.Vals {
				if _, err := s.constEval(v); err != nil {
					return fmt.Errorf("mcc: line %d: local array initializer must be constant: %w", d.Line, err)
				}
			}
			if err := s.declare(d, false); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		return s.checkExpr(st.X)
	case *IfStmt:
		if err := s.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := s.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return s.checkStmt(st.Else)
		}
	case *WhileStmt:
		if err := s.checkExpr(st.Cond); err != nil {
			return err
		}
		s.loops++
		defer func() { s.loops-- }()
		return s.checkStmt(st.Body)
	case *DoWhileStmt:
		s.loops++
		err := s.checkStmt(st.Body)
		s.loops--
		if err != nil {
			return err
		}
		return s.checkExpr(st.Cond)
	case *ForStmt:
		s.push()
		defer s.pop()
		if st.Init != nil {
			if err := s.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := s.checkExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := s.checkExpr(st.Post); err != nil {
				return err
			}
		}
		s.loops++
		defer func() { s.loops-- }()
		return s.checkStmt(st.Body)
	case *SwitchStmt:
		if err := s.checkExpr(st.Tag); err != nil {
			return err
		}
		seen := make(map[int32]bool)
		s.sw++
		defer func() { s.sw-- }()
		for _, c := range st.Cases {
			if seen[c.Val] {
				return fmt.Errorf("mcc: duplicate case %d", c.Val)
			}
			seen[c.Val] = true
			for _, inner := range c.Body {
				if err := s.checkStmt(inner); err != nil {
					return err
				}
			}
		}
		for _, inner := range st.Default {
			if err := s.checkStmt(inner); err != nil {
				return err
			}
		}
	case *BreakStmt:
		if s.loops == 0 && s.sw == 0 {
			return fmt.Errorf("mcc: break outside loop or switch")
		}
	case *ContinueStmt:
		if s.loops == 0 {
			return fmt.Errorf("mcc: continue outside loop")
		}
	case *ReturnStmt:
		if st.X == nil {
			if s.fn.Ret.Kind != TypeVoid {
				return fmt.Errorf("mcc: %q: return without value in non-void function", s.fn.Name)
			}
			return nil
		}
		if s.fn.Ret.Kind == TypeVoid {
			return fmt.Errorf("mcc: %q: return with value in void function", s.fn.Name)
		}
		if err := s.checkExpr(st.X); err != nil {
			return err
		}
		if !assignable(s.fn.Ret, st.X.ExprType()) {
			return fmt.Errorf("mcc: %q: cannot return %s as %s", s.fn.Name, st.X.ExprType(), s.fn.Ret)
		}
	}
	return nil
}

// assignable reports whether a value of type src may be stored into dst.
// MicroC allows any scalar-to-scalar conversion and same-type pointers;
// arrays decay to pointers to their element type.
func assignable(dst, src *Type) bool {
	if dst.IsScalar() && src.IsScalar() {
		return true
	}
	if dst.Kind == TypePtr {
		if src.Kind == TypePtr && dst.Elem.Kind == src.Elem.Kind {
			return true
		}
		if src.Kind == TypeArray && dst.Elem.Kind == src.Elem.Kind {
			return true
		}
	}
	return false
}

func (s *sema) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *NumLit:
		e.T = tyInt
	case *Ident:
		sym := s.resolve(e.Name)
		if sym == nil {
			return fmt.Errorf("mcc: undefined identifier %q", e.Name)
		}
		e.Sym = sym
		e.T = sym.typ
	case *BinExpr:
		if err := s.checkExpr(e.L); err != nil {
			return err
		}
		if err := s.checkExpr(e.R); err != nil {
			return err
		}
		lt, rt := e.L.ExprType(), e.R.ExprType()
		switch e.Op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			e.T = tyInt
		case "+", "-":
			// Pointer arithmetic: ptr ± int and array ± int yield pointer.
			if pt := pointerish(lt); pt != nil && rt.IsScalar() {
				e.T = pt
				return nil
			}
			if pt := pointerish(rt); pt != nil && lt.IsScalar() && e.Op == "+" {
				e.T = pt
				return nil
			}
			if !lt.IsScalar() || !rt.IsScalar() {
				return fmt.Errorf("mcc: invalid operands to %q: %s and %s", e.Op, lt, rt)
			}
			e.T = usualArith(lt, rt)
		default:
			if !lt.IsScalar() || !rt.IsScalar() {
				return fmt.Errorf("mcc: invalid operands to %q: %s and %s", e.Op, lt, rt)
			}
			e.T = usualArith(lt, rt)
		}
	case *UnExpr:
		if err := s.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.ExprType()
		switch e.Op {
		case "-", "~":
			if !xt.IsScalar() {
				return fmt.Errorf("mcc: invalid operand to unary %q: %s", e.Op, xt)
			}
			e.T = usualArith(xt, tyInt)
		case "!":
			e.T = tyInt
		case "*":
			pt := pointerish(xt)
			if pt == nil {
				return fmt.Errorf("mcc: cannot dereference %s", xt)
			}
			e.T = pt.Elem
		case "&":
			if !isLValue(e.X) {
				return fmt.Errorf("mcc: cannot take address of non-lvalue")
			}
			markAddrTaken(e.X)
			e.T = &Type{Kind: TypePtr, Elem: xt}
		}
	case *AssignExpr:
		if err := s.checkExpr(e.LV); err != nil {
			return err
		}
		if err := s.checkExpr(e.RV); err != nil {
			return err
		}
		if !isLValue(e.LV) {
			return fmt.Errorf("mcc: assignment target is not an lvalue")
		}
		lt := e.LV.ExprType()
		if lt.Kind == TypeArray {
			return fmt.Errorf("mcc: cannot assign to array")
		}
		if e.Op == "=" {
			if !assignable(lt, e.RV.ExprType()) {
				return fmt.Errorf("mcc: cannot assign %s to %s", e.RV.ExprType(), lt)
			}
		} else if !lt.IsScalar() || !e.RV.ExprType().IsScalar() {
			return fmt.Errorf("mcc: invalid compound assignment on %s", lt)
		}
		e.T = lt
	case *IncDecExpr:
		if err := s.checkExpr(e.LV); err != nil {
			return err
		}
		if !isLValue(e.LV) || !e.LV.ExprType().IsScalar() {
			return fmt.Errorf("mcc: %s requires a scalar lvalue", e.Op)
		}
		e.T = e.LV.ExprType()
	case *IndexExpr:
		if err := s.checkExpr(e.Arr); err != nil {
			return err
		}
		if err := s.checkExpr(e.Idx); err != nil {
			return err
		}
		pt := pointerish(e.Arr.ExprType())
		if pt == nil {
			return fmt.Errorf("mcc: cannot index %s", e.Arr.ExprType())
		}
		if !e.Idx.ExprType().IsScalar() {
			return fmt.Errorf("mcc: array index must be scalar, got %s", e.Idx.ExprType())
		}
		e.T = pt.Elem
	case *CallExpr:
		fn, ok := s.funcs[e.Name]
		if !ok {
			return fmt.Errorf("mcc: call to undefined function %q", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return fmt.Errorf("mcc: %q expects %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			if err := s.checkExpr(a); err != nil {
				return err
			}
			if !assignable(fn.Params[i].Type, a.ExprType()) {
				return fmt.Errorf("mcc: %q argument %d: cannot pass %s as %s", e.Name, i+1, a.ExprType(), fn.Params[i].Type)
			}
		}
		e.Fn = fn
		e.T = fn.Ret
	case *CastExpr:
		if err := s.checkExpr(e.X); err != nil {
			return err
		}
		// e.T was set by the parser.
	case *CondExpr:
		if err := s.checkExpr(e.Cond); err != nil {
			return err
		}
		if err := s.checkExpr(e.Then); err != nil {
			return err
		}
		if err := s.checkExpr(e.Else); err != nil {
			return err
		}
		if !e.Then.ExprType().IsScalar() || !e.Else.ExprType().IsScalar() {
			return fmt.Errorf("mcc: ?: arms must be scalar")
		}
		e.T = usualArith(e.Then.ExprType(), e.Else.ExprType())
	default:
		return fmt.Errorf("mcc: unhandled expression %T", e)
	}
	return nil
}

// pointerish returns the pointer type a value of type t behaves as, with
// arrays decaying to element pointers, or nil.
func pointerish(t *Type) *Type {
	switch t.Kind {
	case TypePtr:
		return t
	case TypeArray:
		return &Type{Kind: TypePtr, Elem: t.Elem}
	}
	return nil
}

// usualArith implements MicroC's simplified usual arithmetic conversions:
// everything widens to 32 bits; the result is unsigned if either operand
// is an unsigned type.
func usualArith(a, b *Type) *Type {
	if !a.Signed() || !b.Signed() {
		return tyUInt
	}
	return tyInt
}

func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return e.Sym != nil && e.Sym.typ.Kind != TypeArray
	case *IndexExpr:
		return true
	case *UnExpr:
		return e.Op == "*"
	}
	return false
}

func markAddrTaken(e Expr) {
	switch e := e.(type) {
	case *Ident:
		if e.Sym != nil {
			e.Sym.addrOf = true
		}
	case *IndexExpr:
		if id, ok := e.Arr.(*Ident); ok && id.Sym != nil {
			// &a[i] does not force a slot for arrays (they always have
			// storage) but mark it anyway for uniformity.
			id.Sym.addrOf = true
		}
	}
}

// constEval evaluates a constant expression for use in initializers.
func (s *sema) constEval(e Expr) (int32, error) {
	switch e := e.(type) {
	case *NumLit:
		e.T = tyInt
		return e.Val, nil
	case *UnExpr:
		v, err := s.constEval(e.X)
		if err != nil {
			return 0, err
		}
		e.T = tyInt
		switch e.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("non-constant unary %q", e.Op)
	case *BinExpr:
		l, err := s.constEval(e.L)
		if err != nil {
			return 0, err
		}
		r, err := s.constEval(e.R)
		if err != nil {
			return 0, err
		}
		e.T = tyInt
		v, ok := foldBin(e.Op, l, r, true)
		if !ok {
			return 0, fmt.Errorf("non-constant or invalid operator %q", e.Op)
		}
		return v, nil
	}
	return 0, fmt.Errorf("expression is not constant")
}

// foldBin evaluates a binary operator on 32-bit values. signed selects
// signed semantics for /, %, >>, and ordered comparisons. Division by zero
// returns !ok rather than folding.
func foldBin(op string, l, r int32, signed bool) (int32, bool) {
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	ul, ur := uint32(l), uint32(r)
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		if signed {
			if l == -1<<31 && r == -1 {
				return -1 << 31, true
			}
			return l / r, true
		}
		return int32(ul / ur), true
	case "%":
		if r == 0 {
			return 0, false
		}
		if signed {
			if l == -1<<31 && r == -1 {
				return 0, true
			}
			return l % r, true
		}
		return int32(ul % ur), true
	case "&":
		return l & r, true
	case "|":
		return l | r, true
	case "^":
		return l ^ r, true
	case "<<":
		return l << (ur & 31), true
	case ">>":
		if signed {
			return l >> (ur & 31), true
		}
		return int32(ul >> (ur & 31)), true
	case "==":
		return b2i(l == r), true
	case "!=":
		return b2i(l != r), true
	case "<":
		if signed {
			return b2i(l < r), true
		}
		return b2i(ul < ur), true
	case "<=":
		if signed {
			return b2i(l <= r), true
		}
		return b2i(ul <= ur), true
	case ">":
		if signed {
			return b2i(l > r), true
		}
		return b2i(ul > ur), true
	case ">=":
		if signed {
			return b2i(l >= r), true
		}
		return b2i(ul >= ur), true
	case "&&":
		return b2i(l != 0 && r != 0), true
	case "||":
		return b2i(l != 0 || r != 0), true
	}
	return 0, false
}
