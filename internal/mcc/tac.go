package mcc

import (
	"fmt"
	"strings"
)

// Temp is a virtual register in the three-address code.
type Temp int32

// Operand is a TAC operand: a temp or an immediate constant.
type Operand struct {
	IsConst bool
	Temp    Temp
	Val     int32
}

func tmp(t Temp) Operand   { return Operand{Temp: t} }
func cnst(v int32) Operand { return Operand{IsConst: true, Val: v} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Val)
	}
	return fmt.Sprintf("t%d", o.Temp)
}

// insKind enumerates TAC instruction kinds.
type insKind int

const (
	iNop   insKind = iota
	iMov           // Dst = A
	iBin           // Dst = A Op B
	iLoad          // Dst = mem[A + Off] (Width, SignExtend)
	iStore         // mem[B + Off] = A (Width)
	iAddrG         // Dst = address of global Sym
	iAddrL         // Dst = address of frame slot Slot
	iLabel         // Sym:
	iBr            // goto Sym
	iCBr           // if (A Op B) goto Sym
	iJT            // indirect jump to address in A (jump tables)
	iCall          // Dst = Sym(Args...)  (Dst optional: HasDst)
	iRet           // return A (optional: HasA)
)

// Binary operator strings used in iBin and iCBr. Signed and unsigned
// variants are distinct where MIPS distinguishes them.
//
//	+ - * / /u % %u & | ^ << >>s >>u < <u
//
// and for iCBr additionally: == != <= <=u > >u >= >=u.

// ins is one TAC instruction.
type ins struct {
	Kind insKind
	Op   string
	Dst  Temp
	A, B Operand
	Off  int32
	// Width/SignExtend qualify loads and stores.
	Width      int
	SignExtend bool
	Sym        string
	Slot       int
	Args       []Operand
	HasDst     bool
	HasA       bool
}

func (in ins) String() string {
	switch in.Kind {
	case iNop:
		return "nop"
	case iMov:
		return fmt.Sprintf("t%d = %s", in.Dst, in.A)
	case iBin:
		return fmt.Sprintf("t%d = %s %s %s", in.Dst, in.A, in.Op, in.B)
	case iLoad:
		sx := "z"
		if in.SignExtend {
			sx = "s"
		}
		return fmt.Sprintf("t%d = load%d%s [%s%+d]", in.Dst, in.Width, sx, in.A, in.Off)
	case iStore:
		return fmt.Sprintf("store%d [%s%+d] = %s", in.Width, in.B, in.Off, in.A)
	case iAddrG:
		return fmt.Sprintf("t%d = &%s", in.Dst, in.Sym)
	case iAddrL:
		return fmt.Sprintf("t%d = &slot%d", in.Dst, in.Slot)
	case iLabel:
		return in.Sym + ":"
	case iBr:
		return "goto " + in.Sym
	case iCBr:
		return fmt.Sprintf("if %s %s %s goto %s", in.A, in.Op, in.B, in.Sym)
	case iJT:
		return fmt.Sprintf("goto *%s", in.A)
	case iCall:
		var parts []string
		for _, a := range in.Args {
			parts = append(parts, a.String())
		}
		call := fmt.Sprintf("%s(%s)", in.Sym, strings.Join(parts, ", "))
		if in.HasDst {
			return fmt.Sprintf("t%d = %s", in.Dst, call)
		}
		return call
	case iRet:
		if in.HasA {
			return "ret " + in.A.String()
		}
		return "ret"
	}
	return "?"
}

// slotInfo describes one stack frame slot.
type slotInfo struct {
	Size  int
	Align int
	Name  string // for diagnostics
}

// jumpTable records a switch jump table to be emitted into the data
// section; Labels are TAC label names patched to addresses at link time.
type jumpTable struct {
	Sym    string // data symbol that will hold the table
	Labels []string
}

// tacFunc is one function in TAC form.
type tacFunc struct {
	Name   string
	NTemp  int
	Params []Temp // temps holding incoming $a0..$a3
	Ins    []ins
	Slots  []slotInfo
	Tables []jumpTable
	IsVoid bool
}

func (f *tacFunc) newTemp() Temp {
	t := Temp(f.NTemp)
	f.NTemp++
	return t
}

func (f *tacFunc) emit(in ins) { f.Ins = append(f.Ins, in) }

func (f *tacFunc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (%d temps, %d slots)\n", f.Name, f.NTemp, len(f.Slots))
	for _, in := range f.Ins {
		if in.Kind == iLabel {
			fmt.Fprintf(&b, "%s\n", in)
		} else {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
	}
	return b.String()
}

// uses returns the temps read by the instruction.
func (in *ins) uses() []Temp {
	return in.appendUses(nil)
}

// appendUses appends the temps the instruction reads to dst and returns
// the extended slice; a caller-held buffer of capacity 4 (the argument
// register count bounds iCall) keeps the analysis loops allocation-free.
func (in *ins) appendUses(dst []Temp) []Temp {
	add := func(o Operand) {
		if !o.IsConst {
			dst = append(dst, o.Temp)
		}
	}
	switch in.Kind {
	case iMov, iJT:
		add(in.A)
	case iBin, iCBr:
		add(in.A)
		add(in.B)
	case iLoad:
		add(in.A)
	case iStore:
		add(in.A)
		add(in.B)
	case iCall:
		for _, a := range in.Args {
			add(a)
		}
	case iRet:
		if in.HasA {
			add(in.A)
		}
	}
	return dst
}

// def returns the temp written by the instruction, if any.
func (in *ins) def() (Temp, bool) {
	switch in.Kind {
	case iMov, iBin, iLoad, iAddrG, iAddrL:
		return in.Dst, true
	case iCall:
		if in.HasDst {
			return in.Dst, true
		}
	}
	return 0, false
}

// replaceUses substitutes temp uses via the given map (temp -> operand).
// Only pure value uses are replaced; definitions are left alone.
func (in *ins) replaceUses(m map[Temp]Operand) {
	sub := func(o Operand) Operand {
		if o.IsConst {
			return o
		}
		if r, ok := m[o.Temp]; ok {
			return r
		}
		return o
	}
	switch in.Kind {
	case iMov, iJT:
		in.A = sub(in.A)
	case iBin, iCBr:
		in.A = sub(in.A)
		in.B = sub(in.B)
	case iLoad:
		in.A = sub(in.A)
	case iStore:
		in.A = sub(in.A)
		in.B = sub(in.B)
	case iCall:
		for i := range in.Args {
			in.Args[i] = sub(in.Args[i])
		}
	case iRet:
		if in.HasA {
			in.A = sub(in.A)
		}
	}
}
