package mcc

import "math/bits"

// tempSet is a dense bitset over a function's temp space (f.NTemp).
// Liveness and dead-code analysis iterate to fixpoints over every block,
// so the sets use flat words instead of maps: one backing allocation per
// analysis, no per-iteration allocation.
type tempSet []uint64

func tempWords(nTemp int) int { return (nTemp + 63) / 64 }

func newTempSet(nTemp int) tempSet { return make(tempSet, tempWords(nTemp)) }

func (s tempSet) has(t Temp) bool { return s[t>>6]&(1<<(uint(t)&63)) != 0 }
func (s tempSet) set(t Temp)      { s[t>>6] |= 1 << (uint(t) & 63) }
func (s tempSet) clear(t Temp)    { s[t>>6] &^= 1 << (uint(t) & 63) }

func (s tempSet) reset() {
	for i := range s {
		s[i] = 0
	}
}

// or unions t into s and reports whether s gained any member.
func (s tempSet) or(t tempSet) bool {
	changed := false
	for i, w := range t {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// forEach calls fn for every member in ascending order.
func (s tempSet) forEach(fn func(Temp)) {
	for i, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(Temp(i*64 + b))
			w &= w - 1
		}
	}
}
