package mcc

import (
	"testing"

	"binpart/internal/mips"
	"binpart/internal/sim"
)

// Back-end unit tests: register allocation and code generation details
// that the end-to-end tests exercise only incidentally.

func TestLargeImmediates(t *testing.T) {
	// Constants beyond 16 bits need lui/ori materialization.
	runAll(t, `
		int main() {
			int big = 0x12345678;
			uint ubig = 0xdeadbeef;
			return (big >> 16) + (int)(ubig & 0xff);  /* 0x1234 + 0xef */
		}
	`, 0x1234+0xef)
}

func TestLargeFrameOffsets(t *testing.T) {
	// A local array bigger than the 16-bit immediate range forces the
	// large-offset path through $at.
	runAll(t, `
		int main() {
			int a[9000];
			a[0] = 7;
			a[8999] = 35;
			return a[0] + a[8999];
		}
	`, 42)
}

func TestManySimultaneousLives(t *testing.T) {
	// More live values than registers: spills must round-trip through
	// the frame correctly, including across calls.
	runAll(t, `
		int id(int x) { return x; }
		int main() {
			int a0 = id(1), a1 = id(2), a2 = id(3), a3 = id(4);
			int a4 = id(5), a5 = id(6), a6 = id(7), a7 = id(8);
			int a8 = id(9), a9 = id(10), aa = id(11), ab = id(12);
			int ac = id(13), ad = id(14), ae = id(15), af = id(16);
			int b0 = id(17), b1 = id(18), b2 = id(19), b3 = id(20);
			return a0+a1+a2+a3+a4+a5+a6+a7+a8+a9+aa+ab+ac+ad+ae+af+b0+b1+b2+b3;
		}
	`, 210)
}

func TestCalleeSavedPreservedAcrossCalls(t *testing.T) {
	// Values live across calls land in $s registers; the callee must
	// save/restore any it uses.
	runAll(t, `
		int clobber(int x) {
			int p = x * 2, q = x * 3, r = x * 4, s2 = x * 5;
			int u = x * 6, v = x * 7, w = x * 8, y = x * 9;
			return p + q + r + s2 + u + v + w + y;
		}
		int main() {
			int keep1 = 100;
			int keep2 = 200;
			int sum = 0;
			int i;
			for (i = 0; i < 3; i++) {
				sum += clobber(i);
			}
			return keep1 + keep2 + sum;  /* 300 + (0 + 44 + 88) */
		}
	`, 300+44*3)
}

func TestRecursionDepth(t *testing.T) {
	runAll(t, `
		int sumto(int n) {
			if (n <= 0) { return 0; }
			return n + sumto(n - 1);
		}
		int main() { return sumto(100); }
	`, 5050)
}

func TestRegisterPools(t *testing.T) {
	// Allocator must never hand out reserved registers.
	reserved := map[mips.Reg]bool{
		mips.Zero: true, mips.AT: true, mips.K0: true, mips.K1: true,
		mips.GP: true, mips.SP: true, mips.FP: true, mips.RA: true,
		mips.V0: true, mips.A0: true, mips.A1: true, mips.A2: true, mips.A3: true,
	}
	for _, r := range callerPool {
		if reserved[r] {
			t.Errorf("caller pool contains reserved register %v", r)
		}
	}
	for _, r := range calleePool {
		if reserved[r] {
			t.Errorf("callee pool contains reserved register %v", r)
		}
		if r < mips.S0 || r > mips.S7 {
			t.Errorf("callee pool register %v is not an $s register", r)
		}
	}
}

func TestLivenessAcrossCallClassification(t *testing.T) {
	// A temp live across a call must be assigned to a callee-saved
	// register or spilled — never a $t register.
	src := `
		int f(int x) { return x + 1; }
		int main() {
			int keep = 42;
			int r = f(1);
			return keep + r;
		}
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Analyze(prog); err != nil {
		t.Fatal(err)
	}
	var mainTF *tacFunc
	for _, fn := range prog.Funcs {
		tf, err := lowerFunc(fn, false, true)
		if err != nil {
			t.Fatal(err)
		}
		optimize(tf, 1)
		if fn.Name == "main" {
			mainTF = tf
		}
	}
	a := allocate(mainTF)
	blocks := buildBlocks(mainTF)
	liveness(mainTF, blocks)
	for _, iv := range computeIntervals(mainTF, blocks) {
		if !iv.acrossCall {
			continue
		}
		if r, ok := a.reg[iv.t]; ok {
			isCalleeSaved := r >= mips.S0 && r <= mips.S7
			if !isCalleeSaved {
				t.Errorf("temp t%d live across call allocated to caller-saved %v", iv.t, r)
			}
		}
	}
}

func TestGlobalAddressMaterialization(t *testing.T) {
	// Global addresses are full 32-bit constants (0x10000000 base).
	img, err := Compile(`
		int g = 5;
		int main() { return g; }
	`, Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a lui with the data-section high half.
	foundLui := false
	for _, w := range img.Text {
		in, err := mips.Decode(w)
		if err == nil && in.Op == mips.LUI && in.Imm == 0x1000 {
			foundLui = true
		}
	}
	if !foundLui {
		t.Error("no lui materializing the data base address")
	}
}

func TestEmptyFunctionBodies(t *testing.T) {
	runAll(t, `
		void nothing() { }
		int zero() { return 0; }
		int main() {
			nothing();
			return zero() + 9;
		}
	`, 9)
}

func TestNestedCallsArgumentOrder(t *testing.T) {
	runAll(t, `
		int sub2(int a, int b) { return a - b; }
		int main() {
			/* nested calls must not clobber outer argument staging */
			return sub2(sub2(10, 3), sub2(4, 2));  /* 7 - 2 */
		}
	`, 5)
}

func TestDoWhileAtAllLevels(t *testing.T) {
	results := runAll(t, `
		int main() {
			int n = 0;
			int i = 0;
			do {
				n += i;
				i++;
			} while (i < 10);
			return n;
		}
	`, 45)
	// O0 uses more memory traffic; its cycle count must exceed O1's.
	if results[0].Cycles <= results[1].Cycles {
		t.Errorf("O0 (%d cycles) not slower than O1 (%d)", results[0].Cycles, results[1].Cycles)
	}
}

func TestStressManyFunctions(t *testing.T) {
	// Call-graph with several functions checks jal patching across the
	// whole text section.
	src := `
		int f1(int x) { return x + 1; }
		int f2(int x) { return f1(x) * 2; }
		int f3(int x) { return f2(x) + f1(x); }
		int f4(int x) { return f3(x) - f2(x); }
		int f5(int x) { return f4(x) + f3(x) + f2(x) + f1(x); }
		int main() { return f5(3); }
	`
	runAll(t, src, func() int32 {
		f1 := func(x int32) int32 { return x + 1 }
		f2 := func(x int32) int32 { return f1(x) * 2 }
		f3 := func(x int32) int32 { return f2(x) + f1(x) }
		f4 := func(x int32) int32 { return f3(x) - f2(x) }
		f5 := func(x int32) int32 { return f4(x) + f3(x) + f2(x) + f1(x) }
		return f5(3)
	}())
}

func TestBinaryDeterminism(t *testing.T) {
	// The same source at the same level must produce identical binaries
	// (no map-iteration nondeterminism in the compiler).
	src := `
		int a[8] = {1,2,3,4,5,6,7,8};
		int f(int x) { return a[x & 7] * 3; }
		int main() { int i; int s = 0; for (i = 0; i < 20; i++) { s += f(i); } return s; }
	`
	for lvl := 0; lvl <= 3; lvl++ {
		img1, err := Compile(src, Options{OptLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		img2, err := Compile(src, Options{OptLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		if len(img1.Text) != len(img2.Text) {
			t.Fatalf("O%d: nondeterministic text length", lvl)
		}
		for i := range img1.Text {
			if img1.Text[i] != img2.Text[i] {
				t.Fatalf("O%d: nondeterministic word %d: %08x vs %08x", lvl, i, img1.Text[i], img2.Text[i])
			}
		}
	}
}

func TestStackDiscipline(t *testing.T) {
	// After any call tree, $sp must return to its starting value; the
	// simulator would fault on a misaligned or underflowed stack, but
	// check the register value explicitly too.
	img, err := Compile(`
		int f(int n) { if (n <= 0) { return 1; } return f(n-1) + n; }
		int main() { return f(5); }
	`, Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(img, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spBefore := m.Regs[mips.SP]
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[mips.SP] != spBefore {
		t.Errorf("stack pointer leaked: 0x%x -> 0x%x", spBefore, m.Regs[mips.SP])
	}
}
