package mcc

import (
	"encoding/binary"
	"fmt"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// Options configures a compilation.
type Options struct {
	// OptLevel is 0..3, mirroring -O0..-O3.
	OptLevel int
	// TextBase/DataBase override the default load addresses when nonzero.
	TextBase uint32
	DataBase uint32
}

// Compile translates MicroC source into an executable SBF image. The image
// starts at a two-instruction _start stub (jal main; break), so the
// simulator halts with main's return value in $v0.
func Compile(src string, opts Options) (*binimg.Image, error) {
	if opts.OptLevel < 0 || opts.OptLevel > 3 {
		return nil, fmt.Errorf("mcc: bad optimization level %d", opts.OptLevel)
	}
	if opts.TextBase == 0 {
		opts.TextBase = binimg.DefaultTextBase
	}
	if opts.DataBase == 0 {
		opts.DataBase = binimg.DefaultDataBase
	}

	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog); err != nil {
		return nil, err
	}
	if opts.OptLevel >= 3 {
		unrollProgram(prog)
	}

	// Lower and optimize every function.
	var tfs []*tacFunc
	for _, fn := range prog.Funcs {
		tf, err := lowerFunc(fn, opts.OptLevel == 0, opts.OptLevel >= 1)
		if err != nil {
			return nil, err
		}
		optimize(tf, opts.OptLevel)
		tfs = append(tfs, tf)
	}

	// Lay out the data section: globals first, then switch jump tables.
	globals := make(map[string]uint32)
	var data []byte
	addGlobal := func(name string, size, align int) uint32 {
		for len(data)%align != 0 {
			data = append(data, 0)
		}
		addr := opts.DataBase + uint32(len(data))
		globals[name] = addr
		data = append(data, make([]byte, size)...)
		return addr
	}
	for _, g := range prog.Globals {
		align := g.Type.Size()
		if g.Type.Kind == TypeArray {
			align = g.Type.Elem.Size()
		}
		if align > 4 {
			align = 4
		}
		if align < 1 {
			align = 1
		}
		addr := addGlobal(g.Name, g.Type.Size(), align)
		if err := initGlobal(data, addr-opts.DataBase, g); err != nil {
			return nil, err
		}
	}
	type tableLoc struct {
		table jumpTable
		fn    string
		off   uint32 // offset into data
	}
	var tables []tableLoc
	for i, tf := range tfs {
		for _, t := range tf.Tables {
			addr := addGlobal(t.Sym, 4*len(t.Labels), 4)
			tables = append(tables, tableLoc{table: t, fn: tfs[i].Name, off: addr - opts.DataBase})
		}
	}

	// Generate machine code for each function.
	var gfs []*genFunc
	for _, tf := range tfs {
		gf, err := genFunction(tf, globals)
		if err != nil {
			return nil, err
		}
		gfs = append(gfs, gf)
	}

	// Place: _start stub then functions in source order.
	im := &binimg.Image{
		Entry:    opts.TextBase,
		TextBase: opts.TextBase,
		DataBase: opts.DataBase,
		Data:     data,
	}
	funcAddr := make(map[string]uint32)
	funcOf := make(map[string]*genFunc)
	cursor := opts.TextBase + 8 // after jal main; break
	for _, gf := range gfs {
		funcAddr[gf.name] = cursor
		funcOf[gf.name] = gf
		cursor += uint32(4 * len(gf.insts))
	}

	// Patch call targets.
	for _, gf := range gfs {
		for _, fx := range gf.callFix {
			target, ok := funcAddr[fx.callee]
			if !ok {
				return nil, fmt.Errorf("mcc: call to undefined function %q", fx.callee)
			}
			gf.insts[fx.instIdx].Target = target
		}
	}
	// Patch jump tables with absolute label addresses.
	for _, tl := range tables {
		gf := funcOf[tl.fn]
		for i, label := range tl.table.Labels {
			pos, ok := gf.labelAddr[label]
			if !ok {
				return nil, fmt.Errorf("mcc: jump table references unknown label %q", label)
			}
			addr := funcAddr[tl.fn] + uint32(4*pos)
			binary.LittleEndian.PutUint32(im.Data[tl.off+uint32(4*i):], addr)
		}
	}

	// Encode.
	startInsts := []mips.Inst{
		{Op: mips.JAL, Target: funcAddr["main"]},
		{Op: mips.BREAK},
	}
	for _, in := range startInsts {
		w, err := mips.Encode(in)
		if err != nil {
			return nil, err
		}
		im.Text = append(im.Text, w)
	}
	im.Symbols = append(im.Symbols, binimg.Symbol{Name: "_start", Addr: opts.TextBase, Size: 8})
	for _, gf := range gfs {
		for _, in := range gf.insts {
			w, err := mips.Encode(in)
			if err != nil {
				return nil, fmt.Errorf("mcc: %s: encode %v: %w", gf.name, in, err)
			}
			im.Text = append(im.Text, w)
		}
		im.Symbols = append(im.Symbols, binimg.Symbol{
			Name: gf.name,
			Addr: funcAddr[gf.name],
			Size: uint32(4 * len(gf.insts)),
		})
	}
	for _, g := range prog.Globals {
		im.Symbols = append(im.Symbols, binimg.Symbol{
			Name: g.Name,
			Addr: globals[g.Name],
			Size: uint32(g.Type.Size()),
		})
	}
	im.SortSymbols()
	return im, nil
}

// initGlobal writes a global's initializer into the data buffer at off.
func initGlobal(data []byte, off uint32, g *VarDecl) error {
	writeVal := func(at uint32, size int, v int32) {
		switch size {
		case 1:
			data[at] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(data[at:], uint16(v))
		default:
			binary.LittleEndian.PutUint32(data[at:], uint32(v))
		}
	}
	if g.Init != nil {
		v, ok := evalConstExpr(g.Init)
		if !ok {
			return fmt.Errorf("mcc: global %q: non-constant initializer", g.Name)
		}
		writeVal(off, g.Type.Size(), v)
	}
	if g.Vals != nil {
		es := g.Type.Elem.Size()
		for i, e := range g.Vals {
			v, ok := evalConstExpr(e)
			if !ok {
				return fmt.Errorf("mcc: global %q[%d]: non-constant initializer", g.Name, i)
			}
			writeVal(off+uint32(i*es), es, v)
		}
	}
	return nil
}

// evalConstExpr evaluates a compile-time constant expression.
func evalConstExpr(e Expr) (int32, bool) {
	switch e := e.(type) {
	case *NumLit:
		return e.Val, true
	case *UnExpr:
		v, ok := evalConstExpr(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinExpr:
		l, ok := evalConstExpr(e.L)
		if !ok {
			return 0, false
		}
		r, ok := evalConstExpr(e.R)
		if !ok {
			return 0, false
		}
		return foldBin(e.Op, l, r, true)
	}
	return 0, false
}
