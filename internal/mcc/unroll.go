package mcc

// Loop unrolling (−O3). Runs after semantic analysis, before lowering.
// Counted for-loops with constant bounds are unrolled by factor 4 (or 2)
// when the trip count divides evenly: each copy of the body sees the
// induction variable offset by its copy index, and a single combined
// increment follows the copies. This produces exactly the binary shape —
// repeated isomorphic statement groups with stepped offsets and a scaled
// induction increment — that the decompiler's loop rerolling pass detects
// and reverses.

const (
	maxUnrollBodyStmts = 12
	unrollFactorMax    = 4
)

// unrollProgram unrolls eligible loops in every function, in place.
func unrollProgram(prog *Program) {
	for _, fn := range prog.Funcs {
		unrollInStmt(fn.Body)
	}
}

func unrollInStmt(st Stmt) {
	switch st := st.(type) {
	case *BlockStmt:
		for _, s := range st.Stmts {
			unrollInStmt(s)
		}
	case *IfStmt:
		unrollInStmt(st.Then)
		if st.Else != nil {
			unrollInStmt(st.Else)
		}
	case *WhileStmt:
		unrollInStmt(st.Body)
	case *DoWhileStmt:
		unrollInStmt(st.Body)
	case *ForStmt:
		// Inner loops first: unrolling an outer loop would clone inner
		// loops and double the work.
		unrollInStmt(st.Body)
		tryUnrollFor(st)
	case *SwitchStmt:
		for _, c := range st.Cases {
			for _, s := range c.Body {
				unrollInStmt(s)
			}
		}
		for _, s := range st.Default {
			unrollInStmt(s)
		}
	}
}

// forShape captures an analyzable counted loop: for (i=c0; i<c1; i+=step).
type forShape struct {
	iv    *symbol
	c0    int32
	c1    int32
	step  int32
	incEq bool // condition is <= rather than <
}

func tryUnrollFor(st *ForStmt) {
	shape, ok := analyzeFor(st)
	if !ok {
		return
	}
	body, ok := st.Body.(*BlockStmt)
	if !ok {
		body = &BlockStmt{Stmts: []Stmt{st.Body}}
	}
	if len(body.Stmts) == 0 || len(body.Stmts) > maxUnrollBodyStmts {
		return
	}
	if !bodyUnrollable(body, shape.iv) {
		return
	}
	limit := int64(shape.c1)
	if shape.incEq {
		limit++
	}
	span := limit - int64(shape.c0)
	if span <= 0 || shape.step <= 0 {
		return
	}
	if span%int64(shape.step) != 0 {
		return
	}
	trip := span / int64(shape.step)
	factor := int64(0)
	for f := int64(unrollFactorMax); f >= 2; f-- {
		if trip%f == 0 && trip >= f {
			factor = f
			break
		}
	}
	if factor == 0 {
		return
	}

	var newBody []Stmt
	for m := int64(0); m < factor; m++ {
		off := int32(m) * shape.step
		for _, s := range body.Stmts {
			newBody = append(newBody, cloneStmtOffset(s, shape.iv, off))
		}
	}
	st.Body = &BlockStmt{Stmts: newBody}
	// Single combined increment: i += factor*step.
	ivRef := &Ident{Name: shape.iv.name, Sym: shape.iv}
	ivRef.T = shape.iv.typ
	inc := &AssignExpr{Op: "+=", LV: ivRef, RV: numLit(int32(factor) * shape.step)}
	inc.T = shape.iv.typ
	st.Post = inc
}

func numLit(v int32) *NumLit {
	n := &NumLit{Val: v}
	n.T = tyInt
	return n
}

// analyzeFor recognizes for (i = c0; i < c1; i += step) with int induction.
func analyzeFor(st *ForStmt) (forShape, bool) {
	var sh forShape

	// Init: `int i = c0` or `i = c0`.
	switch init := st.Init.(type) {
	case *DeclStmt:
		if len(init.Decls) != 1 {
			return sh, false
		}
		d := init.Decls[0]
		if d.sym == nil || d.Init == nil {
			return sh, false
		}
		n, ok := d.Init.(*NumLit)
		if !ok {
			return sh, false
		}
		sh.iv, sh.c0 = d.sym, n.Val
	case *ExprStmt:
		as, ok := init.X.(*AssignExpr)
		if !ok || as.Op != "=" {
			return sh, false
		}
		id, ok := as.LV.(*Ident)
		if !ok || id.Sym == nil {
			return sh, false
		}
		n, ok := as.RV.(*NumLit)
		if !ok {
			return sh, false
		}
		sh.iv, sh.c0 = id.Sym, n.Val
	default:
		return sh, false
	}
	if sh.iv.typ.Kind != TypeInt && sh.iv.typ.Kind != TypeUInt {
		return sh, false
	}
	if sh.iv.addrOf {
		return sh, false
	}

	// Cond: i < c1 or i <= c1.
	cmp, ok := st.Cond.(*BinExpr)
	if !ok || (cmp.Op != "<" && cmp.Op != "<=") {
		return sh, false
	}
	id, ok := cmp.L.(*Ident)
	if !ok || id.Sym != sh.iv {
		return sh, false
	}
	n, ok := cmp.R.(*NumLit)
	if !ok {
		return sh, false
	}
	sh.c1, sh.incEq = n.Val, cmp.Op == "<="

	// Post: i++, i += step, or i = i + step.
	switch post := st.Post.(type) {
	case *IncDecExpr:
		pid, ok := post.LV.(*Ident)
		if !ok || pid.Sym != sh.iv || post.Op != "++" {
			return sh, false
		}
		sh.step = 1
	case *AssignExpr:
		pid, ok := post.LV.(*Ident)
		if !ok || pid.Sym != sh.iv {
			return sh, false
		}
		switch post.Op {
		case "+=":
			n, ok := post.RV.(*NumLit)
			if !ok || n.Val <= 0 {
				return sh, false
			}
			sh.step = n.Val
		case "=":
			add, ok := post.RV.(*BinExpr)
			if !ok || add.Op != "+" {
				return sh, false
			}
			aid, ok := add.L.(*Ident)
			if !ok || aid.Sym != sh.iv {
				return sh, false
			}
			n, ok := add.R.(*NumLit)
			if !ok || n.Val <= 0 {
				return sh, false
			}
			sh.step = n.Val
		default:
			return sh, false
		}
	default:
		return sh, false
	}
	return sh, true
}

// bodyUnrollable rejects bodies with control transfers out of the loop or
// writes to the induction variable.
func bodyUnrollable(body *BlockStmt, iv *symbol) bool {
	ok := true
	var walkStmt func(Stmt)
	var walkExpr func(Expr)
	walkStmt = func(st Stmt) {
		switch st := st.(type) {
		case *BlockStmt:
			for _, s := range st.Stmts {
				walkStmt(s)
			}
		case *DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
			}
		case *ExprStmt:
			walkExpr(st.X)
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *BreakStmt, *ContinueStmt, *ReturnStmt:
			ok = false
		case *WhileStmt, *DoWhileStmt, *ForStmt, *SwitchStmt:
			// Nested loops/switches are legal to clone but blow up size;
			// be conservative.
			ok = false
		}
	}
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *UnExpr:
			walkExpr(e.X)
		case *AssignExpr:
			if id, isID := e.LV.(*Ident); isID && id.Sym == iv {
				ok = false
			}
			walkExpr(e.LV)
			walkExpr(e.RV)
		case *IncDecExpr:
			if id, isID := e.LV.(*Ident); isID && id.Sym == iv {
				ok = false
			}
			walkExpr(e.LV)
		case *IndexExpr:
			walkExpr(e.Arr)
			walkExpr(e.Idx)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *CastExpr:
			walkExpr(e.X)
		case *CondExpr:
			walkExpr(e.Cond)
			walkExpr(e.Then)
			walkExpr(e.Else)
		}
	}
	for _, s := range body.Stmts {
		walkStmt(s)
	}
	return ok
}

// cloneStmtOffset deep-copies a statement, replacing reads of iv with
// (iv + off). off = 0 still clones so each copy is a distinct tree.
func cloneStmtOffset(st Stmt, iv *symbol, off int32) Stmt {
	switch st := st.(type) {
	case *BlockStmt:
		out := &BlockStmt{}
		for _, s := range st.Stmts {
			out.Stmts = append(out.Stmts, cloneStmtOffset(s, iv, off))
		}
		return out
	case *DeclStmt:
		out := &DeclStmt{}
		for _, od := range st.Decls {
			d := *od
			if d.Init != nil {
				d.Init = cloneExprOffset(d.Init, iv, off)
			}
			out.Decls = append(out.Decls, &d)
		}
		return out
	case *ExprStmt:
		return &ExprStmt{X: cloneExprOffset(st.X, iv, off)}
	case *IfStmt:
		out := &IfStmt{
			Cond: cloneExprOffset(st.Cond, iv, off),
			Then: cloneStmtOffset(st.Then, iv, off),
		}
		if st.Else != nil {
			out.Else = cloneStmtOffset(st.Else, iv, off)
		}
		return out
	}
	// bodyUnrollable guarantees no other statement kinds appear.
	return st
}

func cloneExprOffset(e Expr, iv *symbol, off int32) Expr {
	switch e := e.(type) {
	case *NumLit:
		out := *e
		return &out
	case *Ident:
		out := *e
		if e.Sym == iv && off != 0 {
			add := &BinExpr{Op: "+", L: &out, R: numLit(off)}
			add.T = e.T
			return add
		}
		return &out
	case *BinExpr:
		out := *e
		out.L = cloneExprOffset(e.L, iv, off)
		out.R = cloneExprOffset(e.R, iv, off)
		return &out
	case *UnExpr:
		out := *e
		out.X = cloneExprOffset(e.X, iv, off)
		return &out
	case *AssignExpr:
		out := *e
		out.LV = cloneExprOffset(e.LV, iv, off)
		out.RV = cloneExprOffset(e.RV, iv, off)
		return &out
	case *IncDecExpr:
		out := *e
		out.LV = cloneExprOffset(e.LV, iv, off)
		return &out
	case *IndexExpr:
		out := *e
		out.Arr = cloneExprOffset(e.Arr, iv, off)
		out.Idx = cloneExprOffset(e.Idx, iv, off)
		return &out
	case *CallExpr:
		out := *e
		out.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			out.Args[i] = cloneExprOffset(a, iv, off)
		}
		return &out
	case *CastExpr:
		out := *e
		out.X = cloneExprOffset(e.X, iv, off)
		return &out
	case *CondExpr:
		out := *e
		out.Cond = cloneExprOffset(e.Cond, iv, off)
		out.Then = cloneExprOffset(e.Then, iv, off)
		out.Else = cloneExprOffset(e.Else, iv, off)
		return &out
	}
	return e
}
