package mcc

import (
	"strings"
	"testing"
)

// Front-end unit tests: lexer, parser, and semantic analysis in
// isolation (compile_test.go covers the full pipeline end to end).

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`int x = 0x1f + 'A' - '\n'; // comment
		/* block */ x <<= 2;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	// int x = 0x1f + 'A' - '\n' ; x <<= 2 ; EOF
	wantTexts := []string{"int", "x", "=", "0x1f", "+", "'", "-", "'", ";", "x", "<<=", "2", ";", ""}
	if len(texts) != len(wantTexts) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(wantTexts))
	}
	for i, w := range wantTexts {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[0] != tokKeyword || kinds[1] != tokIdent || kinds[3] != tokNumber {
		t.Errorf("token kinds wrong: %v", kinds[:4])
	}
	if toks[3].val != 0x1f {
		t.Errorf("hex literal = %d", toks[3].val)
	}
	if toks[5].val != 'A' || toks[7].val != '\n' {
		t.Errorf("char literals = %d, %d", toks[5].val, toks[7].val)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"int a = 0x; ",
		"int a = 99999999999999999999;",
		"int a = 'ab';",
		"int a = '\\q';",
		"int a = @;",
	} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks, err := lex("int a;\nint b;\nint @")
	if err == nil {
		_ = toks
		t.Fatal("expected error on line 3")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error %q does not name line 3", err)
	}
}

func TestParserPrecedence(t *testing.T) {
	prog, err := Parse(`int main() { return 1 + 2 * 3 == 7 && 4 < 5; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	// Top node must be &&.
	and, ok := ret.X.(*BinExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("top operator = %T %v, want &&", ret.X, ret.X)
	}
	eq, ok := and.L.(*BinExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("left of && = %v, want ==", and.L)
	}
	add, ok := eq.L.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("left of == = %v, want +", eq.L)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + = %v, want *", add.R)
	}
}

func TestParserPointersAndArrays(t *testing.T) {
	prog, err := Parse(`
		int buf[4];
		int f(int *p, char c) { return p[0] + (int)c; }
		int main() { return f(buf, 'x'); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Globals[0].Type.Kind != TypeArray || prog.Globals[0].Type.Len != 4 {
		t.Errorf("global type = %v", prog.Globals[0].Type)
	}
	f := prog.Funcs[0]
	if f.Params[0].Type.Kind != TypePtr || f.Params[0].Type.Elem.Kind != TypeInt {
		t.Errorf("param type = %v", f.Params[0].Type)
	}
	if err := Analyze(prog); err != nil {
		t.Fatal(err)
	}
}

func TestParserArrayParamDecays(t *testing.T) {
	prog, err := Parse(`int f(int a[], int n) { return a[n]; } int main() { int b[3]; return f(b, 0); }`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Funcs[0].Params[0].Type.Kind != TypePtr {
		t.Errorf("array parameter did not decay: %v", prog.Funcs[0].Params[0].Type)
	}
	if err := Analyze(prog); err != nil {
		t.Fatal(err)
	}
}

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		ty     *Type
		size   int
		signed bool
	}{
		{tyChar, 1, true},
		{tyUChar, 1, false},
		{tyShort, 2, true},
		{tyUShort, 2, false},
		{tyInt, 4, true},
		{tyUInt, 4, false},
		{&Type{Kind: TypePtr, Elem: tyChar}, 4, false},
		{&Type{Kind: TypeArray, Elem: tyShort, Len: 10}, 20, false},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.ty, c.ty.Size(), c.size)
		}
		if c.ty.Signed() != c.signed {
			t.Errorf("%v.Signed() = %v", c.ty, c.ty.Signed())
		}
	}
	if tyVoid.IsScalar() || !tyUInt.IsScalar() {
		t.Error("IsScalar wrong")
	}
	if s := (&Type{Kind: TypePtr, Elem: tyInt}).String(); s != "int*" {
		t.Errorf("pointer String = %q", s)
	}
	if s := (&Type{Kind: TypeArray, Elem: tyInt, Len: 3}).String(); s != "int[3]" {
		t.Errorf("array String = %q", s)
	}
}

func TestFoldBinProperties(t *testing.T) {
	// Signed/unsigned divisions disagree where they should.
	if v, ok := foldBin("/", -8, 2, true); !ok || v != -4 {
		t.Errorf("signed -8/2 = %d, %v", v, ok)
	}
	if v, ok := foldBin("/", -8, 2, false); !ok || v == -4 {
		t.Errorf("unsigned -8/2 must differ from signed, got %d", v)
	}
	// Division by zero refuses to fold.
	if _, ok := foldBin("/", 1, 0, true); ok {
		t.Error("folded division by zero")
	}
	if _, ok := foldBin("%", 1, 0, false); ok {
		t.Error("folded remainder by zero")
	}
	// INT_MIN edge cases are defined.
	if v, ok := foldBin("/", -1<<31, -1, true); !ok || v != -1<<31 {
		t.Errorf("INT_MIN/-1 = %d, %v", v, ok)
	}
	if v, ok := foldBin("%", -1<<31, -1, true); !ok || v != 0 {
		t.Errorf("INT_MIN%%-1 = %d, %v", v, ok)
	}
	// Shifts mask the count.
	if v, _ := foldBin("<<", 1, 33, true); v != 2 {
		t.Errorf("1<<33 = %d, want 2 (masked)", v)
	}
}

func TestCSDRecoding(t *testing.T) {
	// CSD of every small constant must reconstruct the constant.
	for c := int64(1); c < 4096; c++ {
		terms := csdRecode(c)
		var sum int64
		for _, tm := range terms {
			v := int64(1) << uint(tm.shift)
			if tm.neg {
				sum -= v
			} else {
				sum += v
			}
		}
		if sum != c {
			t.Fatalf("csdRecode(%d) sums to %d (terms %+v)", c, sum, terms)
		}
		// CSD guarantees no two adjacent nonzero digits, so the count is
		// at most ceil(bits/2)+1.
		if len(terms) > 8 {
			t.Fatalf("csdRecode(%d) has %d terms", c, len(terms))
		}
	}
}

func TestUseJumpTableHeuristic(t *testing.T) {
	mk := func(vals ...int32) *SwitchStmt {
		st := &SwitchStmt{}
		for _, v := range vals {
			st.Cases = append(st.Cases, &SwitchCase{Val: v})
		}
		return st
	}
	if useJumpTable(mk(1, 2, 3)) {
		t.Error("3 cases should not use a table")
	}
	if !useJumpTable(mk(0, 1, 2, 3)) {
		t.Error("4 dense cases should use a table")
	}
	if useJumpTable(mk(0, 100, 200, 300)) {
		t.Error("sparse cases should not use a table")
	}
	if !useJumpTable(mk(0, 2, 4, 6, 8, 10)) {
		t.Error("span 11 over 6 cases is dense enough (<= 3x)")
	}
}

func TestSemaErrorsDetailed(t *testing.T) {
	cases := map[string]string{
		"void local":    `int main() { void v; return 0; }`,
		"void param":    `int f(void v) { return 0; } int main() { return f(0); }`,
		"array assign":  `int a[2]; int main() { int *p = a; a = p; return 0; }`,
		"ptr mismatch":  `char c; int main() { int *p = &c; return *p; }`,
		"call arity":    `int f(int a, int b) { return a; } int main() { return f(1); }`,
		"not lvalue ++": `int main() { return (1+2)++; }`,
		"deref scalar":  `int main() { int x = 1; return *x; }`,
		"index int":     `int main() { int x = 1; return x[2]; }`,
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also counts
		}
		if err := Analyze(prog); err == nil {
			t.Errorf("%s: analysis succeeded, want error", name)
		}
	}
}

func TestUnrollEligibility(t *testing.T) {
	compileSize := func(src string, lvl int) int {
		img, err := Compile(src, Options{OptLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		return len(img.Text)
	}
	// Divisible trip count: O3 unrolls (bigger text).
	divisible := `
		int a[16];
		int main() {
			int i; int s = 0;
			for (i = 0; i < 16; i++) { s += a[i]; }
			return s;
		}
	`
	if compileSize(divisible, 3) <= compileSize(divisible, 2) {
		t.Error("divisible loop not unrolled at O3")
	}
	// Loop with break: not unrolled.
	withBreak := `
		int a[16];
		int main() {
			int i; int s = 0;
			for (i = 0; i < 16; i++) { if (a[i] < 0) { break; } s += a[i]; }
			return s;
		}
	`
	if compileSize(withBreak, 3) > compileSize(withBreak, 2)+4 {
		t.Error("loop with break was unrolled")
	}
	// Non-constant bound: not unrolled.
	dynBound := `
		int a[16];
		int f(int n) {
			int i; int s = 0;
			for (i = 0; i < n; i++) { s += a[i]; }
			return s;
		}
		int main() { return f(16); }
	`
	if compileSize(dynBound, 3) > compileSize(dynBound, 2)+4 {
		t.Error("dynamic-bound loop was unrolled")
	}
}

func TestBlockRangesAndTACString(t *testing.T) {
	f := &tacFunc{Name: "t"}
	d := f.newTemp()
	f.emit(ins{Kind: iMov, Dst: d, A: cnst(1)})
	f.emit(ins{Kind: iLabel, Sym: "L1"})
	f.emit(ins{Kind: iBin, Op: "+", Dst: f.newTemp(), A: tmp(d), B: cnst(2)})
	f.emit(ins{Kind: iCBr, Op: "<", A: tmp(d), B: cnst(10), Sym: "L1"})
	f.emit(ins{Kind: iRet, HasA: true, A: tmp(d)})
	rs := blockRanges(f)
	if len(rs) != 3 {
		t.Fatalf("blockRanges = %v, want 3 blocks", rs)
	}
	s := f.String()
	for _, want := range []string{"t0 = 1", "L1:", "t1 = t0 + 2", "if t0 < 10 goto L1", "ret t0"} {
		if !strings.Contains(s, want) {
			t.Errorf("TAC dump missing %q:\n%s", want, s)
		}
	}
}
