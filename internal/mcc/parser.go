package mcc

import "fmt"

// parser is a recursive-descent parser for MicroC.
type parser struct {
	toks []token
	pos  int
	// Slabs for the highest-volume AST nodes: expression-heavy sources
	// create thousands of these tiny nodes, so they are carved out of
	// chunked backing arrays instead of allocated one by one.
	numLits slab[NumLit]
	idents  slab[Ident]
	bins    slab[BinExpr]
}

// slab hands out *T values carved from chunked backing arrays.
type slab[T any] struct{ buf []T }

func (s *slab[T]) new() *T {
	if len(s.buf) == 0 {
		s.buf = make([]T, 64)
	}
	p := &s.buf[0]
	s.buf = s.buf[1:]
	return p
}

// Parse builds the AST for a MicroC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF) {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("mcc: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	p.advance()
	return nil
}

var typeKeywords = map[string]*Type{
	"void": tyVoid, "char": tyChar, "uchar": tyUChar,
	"short": tyShort, "ushort": tyUShort, "int": tyInt, "uint": tyUInt,
}

func (p *parser) atType() bool {
	t := p.cur()
	if t.kind != tokKeyword {
		return false
	}
	_, ok := typeKeywords[t.text]
	return ok
}

// parseBaseType consumes a type keyword plus any '*' suffixes.
func (p *parser) parseBaseType() (*Type, error) {
	t := p.cur()
	base, ok := typeKeywords[t.text]
	if t.kind != tokKeyword || !ok {
		return nil, p.errf("expected type, found %s", t)
	}
	p.advance()
	for p.atPunct("*") {
		p.advance()
		base = &Type{Kind: TypePtr, Elem: base}
	}
	return base, nil
}

func (p *parser) parseTopLevel(prog *Program) error {
	line := p.cur().line
	base, err := p.parseBaseType()
	if err != nil {
		return err
	}
	if !p.at(tokIdent) {
		return p.errf("expected identifier, found %s", p.cur())
	}
	name := p.advance().text

	if p.atPunct("(") {
		fn, err := p.parseFuncRest(base, name, line)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}

	// Global variable declaration(s).
	for {
		decl, err := p.parseDeclarator(base, name, line)
		if err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, decl)
		if p.atPunct(",") {
			p.advance()
			if !p.at(tokIdent) {
				return p.errf("expected identifier after ','")
			}
			name = p.advance().text
			line = p.cur().line
			continue
		}
		break
	}
	return p.expectPunct(";")
}

// parseDeclarator handles the part after `type name`: optional [N] and
// optional initializer.
func (p *parser) parseDeclarator(base *Type, name string, line int) (*VarDecl, error) {
	d := &VarDecl{Name: name, Type: base, Line: line}
	if p.atPunct("[") {
		p.advance()
		if !p.at(tokNumber) {
			return nil, p.errf("array length must be a number literal")
		}
		n := p.advance().val
		if n <= 0 || n > 1<<20 {
			return nil, p.errf("array length %d out of range", n)
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		d.Type = &Type{Kind: TypeArray, Elem: base, Len: int(n)}
	}
	if p.atPunct("=") {
		p.advance()
		if p.atPunct("{") {
			if d.Type.Kind != TypeArray {
				return nil, p.errf("brace initializer on non-array %q", name)
			}
			p.advance()
			for !p.atPunct("}") {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.Vals = append(d.Vals, e)
				if p.atPunct(",") {
					p.advance()
					continue
				}
				break
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			if len(d.Vals) > d.Type.Len {
				return nil, p.errf("too many initializers for %q (%d > %d)", name, len(d.Vals), d.Type.Len)
			}
		} else {
			e, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	return d, nil
}

func (p *parser) parseFuncRest(ret *Type, name string, line int) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Ret: ret, Line: line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.atKeyword("void") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
		p.advance()
	}
	for !p.atPunct(")") {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		if !p.at(tokIdent) {
			return nil, p.errf("expected parameter name")
		}
		pname := p.advance().text
		ptype := base
		if p.atPunct("[") {
			// `int a[]` decays to a pointer parameter, as in C.
			p.advance()
			if p.at(tokNumber) {
				p.advance()
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			ptype = &Type{Kind: TypePtr, Elem: base}
		}
		fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: ptype, Line: line})
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.advance()
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atType():
		return p.parseDeclStmt()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("while"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.atKeyword("do"):
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.atKeyword("while") {
			return nil, p.errf("expected 'while' after do body")
		}
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond}, nil
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("switch"):
		return p.parseSwitch()
	case p.atKeyword("break"):
		p.advance()
		return &BreakStmt{}, p.expectPunct(";")
	case p.atKeyword("continue"):
		p.advance()
		return &ContinueStmt{}, p.expectPunct(";")
	case p.atKeyword("return"):
		p.advance()
		if p.atPunct(";") {
			p.advance()
			return &ReturnStmt{}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, p.expectPunct(";")
	case p.atPunct(";"):
		p.advance()
		return &BlockStmt{}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, p.expectPunct(";")
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	line := p.cur().line
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errf("expected identifier in declaration")
	}
	name := p.advance().text
	ds := &DeclStmt{}
	for {
		d, err := p.parseDeclarator(base, name, line)
		if err != nil {
			return nil, err
		}
		ds.Decls = append(ds.Decls, d)
		if p.atPunct(",") {
			p.advance()
			if !p.at(tokIdent) {
				return nil, p.errf("expected identifier after ','")
			}
			name = p.advance().text
			continue
		}
		break
	}
	return ds, p.expectPunct(";")
}

func (p *parser) parseIf() (Stmt, error) {
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.atKeyword("else") {
		p.advance()
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	if !p.atPunct(";") {
		if p.atType() {
			s, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			st.Init = s
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: x}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if !p.atPunct(";") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = x
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = x
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Tag: tag}
	for !p.atPunct("}") {
		switch {
		case p.atKeyword("case"):
			p.advance()
			neg := false
			if p.atPunct("-") {
				p.advance()
				neg = true
			}
			if !(p.at(tokNumber) || p.at(tokChar)) {
				return nil, p.errf("case label must be a literal")
			}
			v := int32(p.advance().val)
			if neg {
				v = -v
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			sc := &SwitchCase{Val: v}
			for !p.atKeyword("case") && !p.atKeyword("default") && !p.atPunct("}") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				sc.Body = append(sc.Body, s)
			}
			st.Cases = append(st.Cases, sc)
		case p.atKeyword("default"):
			p.advance()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			for !p.atKeyword("case") && !p.atKeyword("default") && !p.atPunct("}") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				st.Default = append(st.Default, s)
			}
		default:
			return nil, p.errf("expected 'case' or 'default' in switch, found %s", p.cur())
		}
	}
	p.advance()
	return st, nil
}

// Expression parsing: precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct && assignOps[p.cur().text] {
		op := p.advance().text
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op, LV: lhs, RV: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	p.advance()
	then, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els}, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		if p.cur().kind == tokPunct {
			for _, op := range binLevels[level] {
				if p.cur().text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		bin := p.bins.new()
		bin.Op, bin.L, bin.R = matched, lhs, rhs
		lhs = bin
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.atPunct("-") || p.atPunct("~") || p.atPunct("!") || p.atPunct("*") || p.atPunct("&"):
		op := p.advance().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: op, X: x}, nil
	case p.atPunct("+"):
		p.advance()
		return p.parseUnary()
	case p.atPunct("++") || p.atPunct("--"):
		op := p.advance().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Op: op, LV: x}, nil
	case p.atPunct("("):
		// Either a cast or a parenthesized expression.
		if p.toks[p.pos+1].kind == tokKeyword {
			if _, ok := typeKeywords[p.toks[p.pos+1].text]; ok {
				p.advance()
				t, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				c := &CastExpr{X: x}
				c.T = t
				return c, nil
			}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("["):
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Arr: x, Idx: idx}
		case p.atPunct("++") || p.atPunct("--"):
			op := p.advance().text
			x = &IncDecExpr{Op: op, Post: true, LV: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber || t.kind == tokChar:
		p.advance()
		n := p.numLits.new()
		n.Val = int32(t.val)
		return n, nil
	case t.kind == tokIdent:
		name := p.advance().text
		if p.atPunct("(") {
			p.advance()
			call := &CallExpr{Name: name}
			for !p.atPunct(")") {
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.atPunct(",") {
					p.advance()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		id := p.idents.new()
		id.Name = name
		return id, nil
	case p.atPunct("("):
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	}
	return nil, p.errf("expected expression, found %s", t)
}
