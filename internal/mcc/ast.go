package mcc

import "fmt"

// Type describes a MicroC type. MicroC has six scalar types, one level of
// pointers, and one-dimensional arrays. All arithmetic happens in 32 bits;
// narrow types matter only at loads, stores, and conversions, exactly as on
// a real MIPS.
type Type struct {
	Kind TypeKind
	Elem *Type // element type for pointers and arrays
	Len  int   // array length
}

type TypeKind int

const (
	TypeVoid TypeKind = iota
	TypeChar
	TypeUChar
	TypeShort
	TypeUShort
	TypeInt
	TypeUInt
	TypePtr
	TypeArray
)

var (
	tyVoid   = &Type{Kind: TypeVoid}
	tyChar   = &Type{Kind: TypeChar}
	tyUChar  = &Type{Kind: TypeUChar}
	tyShort  = &Type{Kind: TypeShort}
	tyUShort = &Type{Kind: TypeUShort}
	tyInt    = &Type{Kind: TypeInt}
	tyUInt   = &Type{Kind: TypeUInt}
)

// Size returns the storage size of the type in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar, TypeUChar:
		return 1
	case TypeShort, TypeUShort:
		return 2
	case TypeInt, TypeUInt, TypePtr:
		return 4
	case TypeArray:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// Signed reports whether values of the type sign-extend on narrow loads and
// use signed comparison, division, and right shift.
func (t *Type) Signed() bool {
	switch t.Kind {
	case TypeChar, TypeShort, TypeInt:
		return true
	}
	return false
}

// IsScalar reports whether the type is one of the integer scalars.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TypeChar, TypeUChar, TypeShort, TypeUShort, TypeInt, TypeUInt:
		return true
	}
	return false
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeChar:
		return "char"
	case TypeUChar:
		return "uchar"
	case TypeShort:
		return "short"
	case TypeUShort:
		return "ushort"
	case TypeInt:
		return "int"
	case TypeUInt:
		return "uint"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl is a global or local variable declaration.
type VarDecl struct {
	Name string
	Type *Type
	Init Expr   // scalar initializer, may be nil
	Vals []Expr // array initializer list, may be nil
	Line int
	sym  *symbol // attached by sema
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *BlockStmt
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

type (
	// BlockStmt is a brace-delimited statement list.
	BlockStmt struct{ Stmts []Stmt }
	// DeclStmt declares one or more local variables (int a = 1, b = 2;).
	DeclStmt struct{ Decls []*VarDecl }
	// ExprStmt evaluates an expression for its side effects.
	ExprStmt struct{ X Expr }
	// IfStmt is if/else.
	IfStmt struct {
		Cond Expr
		Then Stmt
		Else Stmt // may be nil
	}
	// WhileStmt is a pre-test loop; DoWhile a post-test loop.
	WhileStmt struct {
		Cond Expr
		Body Stmt
	}
	DoWhileStmt struct {
		Body Stmt
		Cond Expr
	}
	// ForStmt is for(init; cond; post) body. Any part may be nil.
	ForStmt struct {
		Init Stmt
		Cond Expr
		Post Expr
		Body Stmt
	}
	// SwitchStmt dispatches on an int expression. Dense case sets compile
	// to a jump table, producing the indirect jumps that defeat CDFG
	// recovery in the reproduced paper.
	SwitchStmt struct {
		Tag     Expr
		Cases   []*SwitchCase
		Default []Stmt // may be nil
	}
	BreakStmt    struct{}
	ContinueStmt struct{}
	ReturnStmt   struct{ X Expr } // X may be nil
)

// SwitchCase is one case label and its statements.
type SwitchCase struct {
	Val  int32
	Body []Stmt
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}

// Expr is implemented by all expression nodes. Every expression carries the
// type assigned during semantic analysis.
type Expr interface {
	exprNode()
	ExprType() *Type
}

type exprBase struct{ T *Type }

func (e *exprBase) exprNode()       {}
func (e *exprBase) ExprType() *Type { return e.T }

type (
	// NumLit is an integer literal.
	NumLit struct {
		exprBase
		Val int32
	}
	// Ident references a variable or parameter.
	Ident struct {
		exprBase
		Name string
		Sym  *symbol // filled by sema
	}
	// BinExpr is a binary operation, including comparisons and the
	// short-circuit && and ||.
	BinExpr struct {
		exprBase
		Op   string
		L, R Expr
	}
	// UnExpr is -x, ~x, !x, *p, &lv.
	UnExpr struct {
		exprBase
		Op string
		X  Expr
	}
	// AssignExpr is lv = rv or a compound assignment lv op= rv.
	AssignExpr struct {
		exprBase
		Op string // "=", "+=", ...
		LV Expr
		RV Expr
	}
	// IncDecExpr is ++lv, lv++, --lv or lv--.
	IncDecExpr struct {
		exprBase
		Op   string // "++" or "--"
		Post bool
		LV   Expr
	}
	// IndexExpr is a[i]; a may be an array or pointer.
	IndexExpr struct {
		exprBase
		Arr Expr
		Idx Expr
	}
	// CallExpr is f(args...).
	CallExpr struct {
		exprBase
		Name string
		Args []Expr
		Fn   *FuncDecl // filled by sema
	}
	// CastExpr is (type)x.
	CastExpr struct {
		exprBase
		X Expr
	}
	// CondExpr is c ? a : b.
	CondExpr struct {
		exprBase
		Cond, Then, Else Expr
	}
)

// symbol is the semantic binding of a name.
type symbol struct {
	name    string
	typ     *Type
	global  bool
	addr    uint32 // assigned global data address
	addrOf  bool   // address taken (forces a stack slot for locals)
	decl    *VarDecl
	paramIx int // parameter index, or -1
}
