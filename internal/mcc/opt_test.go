package mcc

import (
	"testing"
)

// TAC-level optimizer unit tests (the end-to-end differential tests in
// internal/progen cover whole-pipeline semantics; these pin down the
// individual transformations).

func tacOf(t *testing.T, src string, level int, fn string) *tacFunc {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Analyze(prog); err != nil {
		t.Fatal(err)
	}
	if level >= 3 {
		unrollProgram(prog)
	}
	for _, f := range prog.Funcs {
		if f.Name != fn {
			continue
		}
		tf, err := lowerFunc(f, level == 0, level >= 1)
		if err != nil {
			t.Fatal(err)
		}
		optimize(tf, level)
		return tf
	}
	t.Fatalf("function %q not found", fn)
	return nil
}

func countKind(tf *tacFunc, k insKind) int {
	n := 0
	for i := range tf.Ins {
		if tf.Ins[i].Kind == k {
			n++
		}
	}
	return n
}

func countBinOp(tf *tacFunc, op string) int {
	n := 0
	for i := range tf.Ins {
		if tf.Ins[i].Kind == iBin && tf.Ins[i].Op == op {
			n++
		}
	}
	return n
}

func TestConstantFoldingCollapses(t *testing.T) {
	tf := tacOf(t, `int f() { return (3 + 4) * (10 - 2); } int main() { return f(); }`, 1, "f")
	if got := countKind(tf, iBin); got != 0 {
		t.Errorf("constant expression left %d binary ops:\n%s", got, tf)
	}
	// The return value must be the folded constant 56.
	found := false
	for i := range tf.Ins {
		if tf.Ins[i].Kind == iRet && tf.Ins[i].A.IsConst && tf.Ins[i].A.Val == 56 {
			found = true
		}
	}
	if !found {
		t.Errorf("folded return constant missing:\n%s", tf)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	tf := tacOf(t, `
		int f(int x) {
			int a = x + 0;
			int b = x * 1;
			int c = x & -1;
			int d = x | 0;
			int e = x << 0;
			return a + b + c + d + e;
		}
		int main() { return f(3); }
	`, 1, "f")
	// Only the four adds of the return expression should survive.
	if got := countBinOp(tf, "+"); got > 4 {
		t.Errorf("identity ops not simplified (%d adds):\n%s", got, tf)
	}
	for _, op := range []string{"*", "&", "|", "<<"} {
		if got := countBinOp(tf, op); got != 0 {
			t.Errorf("%q identity not simplified:\n%s", op, tf)
		}
	}
}

func TestLocalCSEAtO2(t *testing.T) {
	src := `
		int g;
		int f(int x, int y) {
			int a = (x * y) + 1;
			int b = (x * y) + 2;
			return a + b;
		}
		int main() { return f(3, 4); }
	`
	o1 := tacOf(t, src, 1, "f")
	o2 := tacOf(t, src, 2, "f")
	if countBinOp(o1, "*") != 2 {
		t.Errorf("O1 should keep both multiplies:\n%s", o1)
	}
	if countBinOp(o2, "*") != 1 {
		t.Errorf("O2 CSE should leave one multiply:\n%s", o2)
	}
}

func TestStrengthReductionAtO2(t *testing.T) {
	src := `int f(int x) { return x * 10; } int main() { return f(7); }`
	o1 := tacOf(t, src, 1, "f")
	o2 := tacOf(t, src, 2, "f")
	if countBinOp(o1, "*") != 1 {
		t.Errorf("O1 should keep the multiply:\n%s", o1)
	}
	if countBinOp(o2, "*") != 0 {
		t.Errorf("O2 should strength-reduce *10:\n%s", o2)
	}
	if countBinOp(o2, "<<") < 1 {
		t.Errorf("O2 reduction should introduce shifts:\n%s", o2)
	}
	// An expensive constant (many CSD terms) stays a multiply.
	hairy := tacOf(t, `int f(int x) { return x * 1431655765; } int main() { return f(1); }`, 2, "f")
	if countBinOp(hairy, "*") != 1 {
		t.Errorf("expensive constant should stay a multiply:\n%s", hairy)
	}
}

func TestUnsignedDivModReduction(t *testing.T) {
	tf := tacOf(t, `
		uint f(uint x) { return x / 16 + x % 8; }
		int main() { return (int)f(100); }
	`, 2, "f")
	if countBinOp(tf, "/u") != 0 || countBinOp(tf, "%u") != 0 {
		t.Errorf("unsigned div/mod by power of two not reduced:\n%s", tf)
	}
}

func TestDeadCodeEliminated(t *testing.T) {
	tf := tacOf(t, `
		int f(int x) {
			int unused = x * 99;
			int chain = unused + 5;
			return x;
		}
		int main() { return f(1); }
	`, 1, "f")
	if got := countBinOp(tf, "*"); got != 0 {
		t.Errorf("dead multiply survived:\n%s", tf)
	}
}

func TestBranchFoldingRemovesDeadArm(t *testing.T) {
	tf := tacOf(t, `
		int f(int x) {
			if (1 < 0) { x = x * 12345; }
			return x;
		}
		int main() { return f(2); }
	`, 1, "f")
	if got := countBinOp(tf, "*"); got != 0 {
		t.Errorf("statically dead branch arm survived:\n%s", tf)
	}
	if got := countKind(tf, iCBr); got != 0 {
		t.Errorf("constant branch not folded:\n%s", tf)
	}
}

func TestO0IsNaive(t *testing.T) {
	// O0 keeps every local in memory: loads/stores dominate.
	o0 := tacOf(t, `
		int f(int x) { int a = x + 1; int b = a + 2; return a + b; }
		int main() { return f(1); }
	`, 0, "f")
	if countKind(o0, iStore) < 2 || countKind(o0, iLoad) < 2 {
		t.Errorf("O0 not slot-based:\n%s", o0)
	}
	o1 := tacOf(t, `
		int f(int x) { int a = x + 1; int b = a + 2; return a + b; }
		int main() { return f(1); }
	`, 1, "f")
	if countKind(o1, iStore) != 0 {
		t.Errorf("O1 should keep scalars in registers:\n%s", o1)
	}
}

func TestUnrollingScalesBody(t *testing.T) {
	src := `
		int a[8];
		int f(int n) {
			int s = 0;
			int i;
			for (i = 0; i < 8; i++) { s += a[i]; }
			return s;
		}
		int main() { return f(0); }
	`
	o2 := tacOf(t, src, 2, "f")
	o3 := tacOf(t, src, 3, "f")
	l2, l3 := countKind(o2, iLoad), countKind(o3, iLoad)
	if l3 != 4*l2 {
		t.Errorf("O3 loads = %d, want 4x O2's %d", l3, l2)
	}
}
