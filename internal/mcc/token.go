// Package mcc implements the MicroC compiler: a small C-subset front end
// with a three-address-code middle end and a MIPS back end, supporting four
// optimization levels O0–O3.
//
// mcc stands in for "any software compiler" in the reproduced paper's tool
// flow: the decompiler and partitioner consume only the binaries mcc emits,
// never its internal representations. The optimization levels matter
// because the paper studies how compiler optimizations interact with
// binary-level synthesis:
//
//	O0  naive code, every local lives in a stack slot
//	O1  register allocation, constant folding/propagation, copy
//	    propagation, dead code elimination
//	O2  O1 + local common subexpression elimination + strength reduction
//	    (multiplication/division by constants become shift/add sequences,
//	    which the decompiler's strength promotion must undo)
//	O3  O2 + loop unrolling of small counted loops (which the decompiler's
//	    loop rerolling must undo)
package mcc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
	tokString
	tokChar
)

type token struct {
	kind tokKind
	text string
	val  int64 // for tokNumber and tokChar
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"int": true, "uint": true, "short": true, "ushort": true,
	"char": true, "uchar": true, "void": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"switch": true, "case": true, "default": true,
	"break": true, "continue": true, "return": true,
}

// multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ":", "?",
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex tokenizes src. It returns a descriptive error with line/column on any
// malformed input.
func lex(src string) ([]token, error) {
	// One token per ~4 source bytes is a close upper estimate for MicroC;
	// reserving it up front avoids the append-growth copies on every
	// compile.
	lx := &lexer{src: src, line: 1, col: 1, toks: make([]token, 0, len(src)/4+16)}
	for {
		lx.skipSpaceAndComments()
		if lx.pos >= len(lx.src) {
			lx.toks = append(lx.toks, token{kind: tokEOF, line: lx.line, col: lx.col})
			return lx.toks, nil
		}
		if err := lx.next(); err != nil {
			return nil, err
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("mcc: %d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.advance(2)
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				lx.advance(1)
			}
			lx.advance(2)
		default:
			return
		}
	}
}

func (lx *lexer) next() error {
	line, col := lx.line, lx.col
	c := lx.src[lx.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.advance(1)
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		lx.toks = append(lx.toks, token{kind: kind, text: text, line: line, col: col})
		return nil
	case unicode.IsDigit(rune(c)):
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.advance(1)
		}
		text := lx.src[start:lx.pos]
		// Allow trailing u/U suffix as in C.
		numText := strings.TrimRight(text, "uU")
		v, err := strconv.ParseInt(numText, 0, 64)
		if err != nil {
			return lx.errf("bad number literal %q", text)
		}
		if v > 0xffffffff || v < -(1<<31) {
			return lx.errf("number %q out of 32-bit range", text)
		}
		lx.toks = append(lx.toks, token{kind: tokNumber, text: text, val: v, line: line, col: col})
		return nil
	case c == '\'':
		lx.advance(1)
		if lx.pos >= len(lx.src) {
			return lx.errf("unterminated character literal")
		}
		var v int64
		if lx.src[lx.pos] == '\\' {
			lx.advance(1)
			if lx.pos >= len(lx.src) {
				return lx.errf("unterminated character literal")
			}
			switch lx.src[lx.pos] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return lx.errf("unknown escape \\%c", lx.src[lx.pos])
			}
		} else {
			v = int64(lx.src[lx.pos])
		}
		lx.advance(1)
		if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
			return lx.errf("unterminated character literal")
		}
		lx.advance(1)
		lx.toks = append(lx.toks, token{kind: tokChar, text: "'", val: v, line: line, col: col})
		return nil
	}
	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.advance(len(p))
			lx.toks = append(lx.toks, token{kind: tokPunct, text: p, line: line, col: col})
			return nil
		}
	}
	return lx.errf("unexpected character %q", c)
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == 'x' || c == 'X'
}
