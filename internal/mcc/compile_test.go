package mcc

import (
	"testing"

	"binpart/internal/sim"
)

// runAll compiles src at every optimization level, runs each binary, and
// checks they all return want. It returns the per-level results so callers
// can make additional assertions (e.g. O1 executes fewer cycles than O0).
func runAll(t *testing.T, src string, want int32) [4]sim.Result {
	t.Helper()
	var out [4]sim.Result
	for lvl := 0; lvl <= 3; lvl++ {
		img, err := Compile(src, Options{OptLevel: lvl})
		if err != nil {
			t.Fatalf("O%d: compile: %v", lvl, err)
		}
		res, err := sim.Execute(img, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("O%d: run: %v", lvl, err)
		}
		if res.ExitCode != want {
			t.Errorf("O%d: result = %d, want %d", lvl, res.ExitCode, want)
		}
		out[lvl] = res
	}
	return out
}

func TestReturnConstant(t *testing.T) {
	runAll(t, `int main() { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	runAll(t, `
		int main() {
			int a = 15;
			int b = 4;
			return a + b*3 - (a/b) - (a%b) + (a<<2) - (a>>1) + (a&b) + (a|b) + (a^b);
		}
	`, 15+12-3-3+60-7+4+15+11)
}

func TestUnsignedSemantics(t *testing.T) {
	runAll(t, `
		int main() {
			uint a = 0;
			a = a - 1;          /* 0xffffffff */
			uint b = a / 2;     /* 0x7fffffff */
			int c = (int)(a >> 24); /* logical shift: 255 */
			if (a < 1) { return 1; }  /* unsigned compare: false */
			return c + (int)(b >> 24); /* 255 + 127 */
		}
	`, 382)
}

func TestSignedSemantics(t *testing.T) {
	runAll(t, `
		int main() {
			int a = -17;
			int q = a / 5;      /* -3 */
			int r = a % 5;      /* -2 */
			int s = a >> 2;     /* arithmetic: -5 */
			if (a < 0) { return q*100 + r*10 + s; }
			return 0;
		}
	`, -3*100+-2*10+-5)
}

func TestNarrowTypes(t *testing.T) {
	runAll(t, `
		char gc;
		uchar guc;
		short gs;
		ushort gus;
		int main() {
			gc = 200;       /* wraps to -56 */
			guc = 200;
			gs = 70000;     /* wraps to 4464 */
			gus = 70000;
			char c = 130;   /* -126 */
			uchar uc = 130;
			return (int)gc + (int)guc + (int)gs + (int)gus + c + (int)uc;
		}
	`, -56+200+4464+4464-126+130)
}

func TestControlFlow(t *testing.T) {
	runAll(t, `
		int main() {
			int n = 0;
			int i;
			for (i = 0; i < 10; i++) {
				if (i % 2 == 0) { n += i; } else { n -= 1; }
			}
			while (n > 17) { n--; }
			do { n += 2; } while (n < 21);
			return n;
		}
	`, 21)
}

func TestBreakContinue(t *testing.T) {
	runAll(t, `
		int main() {
			int n = 0;
			int i;
			for (i = 0; i < 100; i++) {
				if (i == 5) { continue; }
				if (i == 9) { break; }
				n += i;
			}
			return n;  /* 0+1+2+3+4+6+7+8 = 31 */
		}
	`, 31)
}

func TestShortCircuit(t *testing.T) {
	runAll(t, `
		int g;
		int bump() { g++; return 0; }
		int main() {
			g = 0;
			int a = (1 || bump());  /* bump not called */
			int b = (0 && bump());  /* bump not called */
			int c = (0 || bump());  /* called */
			int d = (1 && bump());  /* called */
			return g*100 + a*10 + b + c + d;
		}
	`, 210)
}

func TestGlobalArrays(t *testing.T) {
	runAll(t, `
		int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
		short stab[4] = {-1, -2, -3, -4};
		uchar btab[4] = {250, 251, 252, 253};
		int main() {
			int s = 0;
			int i;
			for (i = 0; i < 8; i++) { s += tab[i]; }
			for (i = 0; i < 4; i++) { s += stab[i]; }
			for (i = 0; i < 4; i++) { s += (int)btab[i]; }
			return s;  /* 36 - 10 + 1006 */
		}
	`, 36-10+1006)
}

func TestLocalArrays(t *testing.T) {
	runAll(t, `
		int main() {
			int a[5];
			int i;
			for (i = 0; i < 5; i++) { a[i] = i*i; }
			int s = 0;
			for (i = 0; i < 5; i++) { s += a[i]; }
			return s;  /* 0+1+4+9+16 */
		}
	`, 30)
}

func TestPointers(t *testing.T) {
	runAll(t, `
		int buf[4] = {10, 20, 30, 40};
		int sumthrough(int *p, int n) {
			int s = 0;
			int i;
			for (i = 0; i < n; i++) { s += p[i]; }
			return s;
		}
		int main() {
			int x = 5;
			int *px = &x;
			*px = *px + 2;
			int *p = buf;
			p = p + 1;
			return sumthrough(buf, 4) + *p + x;  /* 100 + 20 + 7 */
		}
	`, 127)
}

func TestFunctionCalls(t *testing.T) {
	runAll(t, `
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n-1) + fib(n-2);
		}
		int max4(int a, int b, int c, int d) {
			int m = a;
			if (b > m) { m = b; }
			if (c > m) { m = c; }
			if (d > m) { m = d; }
			return m;
		}
		int main() {
			return fib(10) + max4(3, 99, -5, 12);  /* 55 + 99 */
		}
	`, 154)
}

func TestVoidFunction(t *testing.T) {
	runAll(t, `
		int acc;
		void add(int v) { acc += v; }
		int main() {
			acc = 0;
			add(3); add(4); add(5);
			return acc;
		}
	`, 12)
}

func TestSwitchCompareChain(t *testing.T) {
	// 3 sparse cases: compiles to a compare chain, no jump table.
	runAll(t, `
		int classify(int v) {
			switch (v) {
			case 1: return 10;
			case 100: return 20;
			case -7: return 30;
			default: return 0;
			}
		}
		int main() {
			return classify(1) + classify(100) + classify(-7) + classify(8);
		}
	`, 60)
}

func TestSwitchJumpTable(t *testing.T) {
	// 6 dense cases: compiles to a jump table (indirect jump).
	runAll(t, `
		int dispatch(int v) {
			int r = 0;
			switch (v) {
			case 0: r = 1; break;
			case 1: r = 2; break;
			case 2: r = 4; break;
			case 3: r = 8; break;
			case 4: r = 16; break;
			case 5: r = 32; break;
			default: r = 100; break;
			}
			return r;
		}
		int main() {
			int s = 0;
			int i;
			for (i = -1; i < 7; i++) { s += dispatch(i); }
			return s;  /* 100 + 63 + 100 */
		}
	`, 263)
}

func TestSwitchFallthrough(t *testing.T) {
	runAll(t, `
		int main() {
			int v = 2;
			int r = 0;
			switch (v) {
			case 1: r += 1;
			case 2: r += 2;
			case 3: r += 4;  /* falls through from 2 */
			case 4: r += 8;
			default: r += 16;
			}
			return r;  /* 2+4+8+16 */
		}
	`, 30)
}

func TestTernaryAndIncDec(t *testing.T) {
	runAll(t, `
		int main() {
			int a = 5;
			int b = a++;        /* b=5 a=6 */
			int c = ++a;        /* c=7 a=7 */
			int d = a-- + --a;  /* 7 + 5; a=5 */
			int e = a > 3 ? 100 : 200;
			return b + c + d + e;  /* 5+7+12+100 */
		}
	`, 124)
}

func TestCompoundAssign(t *testing.T) {
	runAll(t, `
		int main() {
			int a = 100;
			a += 5; a -= 3; a *= 2; a /= 4; a %= 13;  /* 204/4=51 %13=12 */
			a <<= 3; a >>= 1; a |= 0x40; a &= 0x7f; a ^= 0x0f;  /* 48|64=112 &0x7f=112 ^15=127 */
			return a;
		}
	`, 127)
}

func TestStrengthReducedMultiply(t *testing.T) {
	// x*10 = (x<<3)+(x<<1): O2+ strength-reduces this.
	results := runAll(t, `
		int main() {
			int s = 0;
			int i;
			for (i = 1; i <= 8; i++) { s += i * 10; }
			return s;
		}
	`, 360)
	// O2 should avoid multiply instructions, making it no slower than O1.
	if results[2].Cycles > results[1].Cycles {
		t.Errorf("O2 (%d cycles) slower than O1 (%d): strength reduction regressed",
			results[2].Cycles, results[1].Cycles)
	}
}

func TestDivModByPowerOfTwo(t *testing.T) {
	runAll(t, `
		int main() {
			uint a = 1000;
			return (int)(a / 8) + (int)(a % 8);  /* 125 + 0 */
		}
	`, 125)
}

func TestOptLevelsSpeedOrdering(t *testing.T) {
	// A loop-heavy kernel must get faster (in cycles) from O0 to O1.
	results := runAll(t, `
		int data[64];
		int main() {
			int i;
			int acc = 0;
			for (i = 0; i < 64; i++) { data[i] = i ^ (i << 1); }
			for (i = 0; i < 64; i++) { acc += data[i] * 3; }
			return acc & 0xffff;
		}
	`, func() int32 {
		var acc int32
		for i := int32(0); i < 64; i++ {
			acc += (i ^ (i << 1)) * 3
		}
		return acc & 0xffff
	}())
	if results[1].Cycles >= results[0].Cycles {
		t.Errorf("O1 (%d cycles) not faster than O0 (%d)", results[1].Cycles, results[0].Cycles)
	}
}

func TestLoopUnrollingPreservesResult(t *testing.T) {
	// Trip count 16 divisible by 4: O3 unrolls. Result must not change,
	// and the O3 binary must be larger (the unrolling artifact the
	// decompiler later detects).
	src := `
		int a[16];
		int main() {
			int i;
			for (i = 0; i < 16; i++) { a[i] = i*i + 1; }
			int s = 0;
			for (i = 0; i < 16; i++) { s += a[i]; }
			return s;
		}
	`
	var want int32
	for i := int32(0); i < 16; i++ {
		want += i*i + 1
	}
	runAll(t, src, want)

	img2, err := Compile(src, Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img3, err := Compile(src, Options{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(img3.Text) <= len(img2.Text) {
		t.Errorf("O3 text (%d words) not larger than O2 (%d): unrolling did not fire",
			len(img3.Text), len(img2.Text))
	}
}

func TestDeepExpressionSpills(t *testing.T) {
	// Force register pressure beyond the allocatable pools.
	runAll(t, `
		int main() {
			int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
			int i = 9, j = 10, k = 11, l = 12, m = 13, n = 14, o = 15, p = 16;
			int q = 17, r = 18, s = 19, u = 20, v = 21, w = 22;
			int x = a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+u+v+w;
			return x + (a*b) + (v*w);  /* 253 + 2 + 462 */
		}
	`, 717)
}

func TestComments(t *testing.T) {
	runAll(t, `
		/* block comment
		   over lines */
		int main() {
			// line comment
			return 7; /* trailing */
		}
	`, 7)
}

func TestCharLiterals(t *testing.T) {
	runAll(t, `
		int main() {
			char nl = '\n';
			char z = '\0';
			char a = 'A';
			return a + nl + z;  /* 65 + 10 */
		}
	`, 75)
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":              `int f() { return 1; }`,
		"undefined var":        `int main() { return x; }`,
		"undefined func":       `int main() { return f(); }`,
		"redeclared":           `int main() { int a = 1; int a = 2; return a; }`,
		"bad arg count":        `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"too many params":      `int f(int a, int b, int c, int d, int e) { return a; } int main() { return f(1,2,3,4,5); }`,
		"void value":           `void f() { } int main() { return f() + 1; }`,
		"assign to array":      `int a[3]; int b[3]; int main() { a = b; return 0; }`,
		"break outside":        `int main() { break; return 0; }`,
		"continue outside":     `int main() { continue; return 0; }`,
		"return value in void": `void f() { return 3; } int main() { f(); return 0; }`,
		"non-const global":     `int g; int h = g + 1; int main() { return h; }`,
		"duplicate case":       `int main() { switch (1) { case 1: return 1; case 1: return 2; } return 0; }`,
		"syntax error":         `int main() { return 1 + ; }`,
		"bad token":            "int main() { return 1 @ 2; }",
		"unterminated":         `int main() { return 1;`,
		"deref int":            `int main() { int a = 1; return *a; }`,
		"index scalar":         `int main() { int a = 1; return a[0]; }`,
		"address of rvalue":    `int main() { int *p = &(1+2); return *p; }`,
	}
	for name, src := range cases {
		if _, err := Compile(src, Options{OptLevel: 1}); err == nil {
			t.Errorf("%s: compile succeeded, want error", name)
		}
	}
}

func TestSymbolsEmitted(t *testing.T) {
	img, err := Compile(`
		int g = 5;
		int tab[4] = {1,2,3,4};
		int helper(int x) { return x + g; }
		int main() { return helper(tab[0]); }
	`, Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"_start", "main", "helper", "g", "tab"} {
		if _, ok := img.Lookup(name); !ok {
			t.Errorf("symbol %q missing", name)
		}
	}
	s, _ := img.Lookup("main")
	if !img.InText(s.Addr) {
		t.Errorf("main at 0x%x not in text", s.Addr)
	}
	g, _ := img.Lookup("g")
	if img.InText(g.Addr) {
		t.Errorf("global g at 0x%x is in text", g.Addr)
	}
}

func TestGlobalScalarInit(t *testing.T) {
	runAll(t, `
		int a = 5;
		int b = -(3 + 4);
		uint c = 1 << 20;
		short s = -12;
		uchar u = 200;
		int main() { return a + b + (int)(c >> 18) + s + (int)u; }
	`, 5-7+4-12+200)
}

func TestMixedSignedUnsignedCompare(t *testing.T) {
	runAll(t, `
		int main() {
			int si = -1;
			uint ui = 1;
			/* mixed comparison is unsigned, like C: (uint)-1 > 1 */
			if (si > (int)0 || (uint)si > ui) { return 1; }
			return 0;
		}
	`, 1)
}
