package mcc

// lval describes an assignable location: either a temp-resident scalar or a
// memory address with width and signedness.
type lval struct {
	isTemp bool
	loc    varLoc
	addr   Operand
	off    int32
	width  int
	signed bool
	typ    *Type
}

func (lo *lowerer) lvalue(e Expr) (lval, error) {
	switch e := e.(type) {
	case *Ident:
		if e.Sym == nil {
			return lval{}, lo.errf("internal: unresolved identifier %q", e.Name)
		}
		l := lo.loc(e.Sym)
		t := e.Sym.typ
		switch l.kind {
		case locTemp:
			return lval{isTemp: true, loc: l, typ: t}, nil
		case locSlot:
			addr := lo.f.newTemp()
			lo.f.emit(ins{Kind: iAddrL, Dst: addr, Slot: l.slot})
			return lval{addr: tmp(addr), width: scalarWidth(t), signed: t.Signed(), typ: t}, nil
		default:
			addr := lo.f.newTemp()
			lo.f.emit(ins{Kind: iAddrG, Dst: addr, Sym: l.sym})
			return lval{addr: tmp(addr), width: scalarWidth(t), signed: t.Signed(), typ: t}, nil
		}
	case *IndexExpr:
		base, elem, err := lo.baseAddress(e.Arr)
		if err != nil {
			return lval{}, err
		}
		addr, off, err := lo.indexAddress(base, e.Idx, elem)
		if err != nil {
			return lval{}, err
		}
		return lval{addr: addr, off: off, width: scalarWidth(elem), signed: elem.Signed(), typ: elem}, nil
	case *UnExpr:
		if e.Op != "*" {
			break
		}
		p, err := lo.expr(e.X)
		if err != nil {
			return lval{}, err
		}
		elem := e.T
		return lval{addr: p, width: scalarWidth(elem), signed: elem.Signed(), typ: elem}, nil
	}
	return lval{}, lo.errf("expression is not an lvalue")
}

// baseAddress returns the address operand a pointer-ish expression decays
// to, plus the element type.
func (lo *lowerer) baseAddress(e Expr) (Operand, *Type, error) {
	t := e.ExprType()
	pt := pointerish(t)
	if pt == nil {
		return Operand{}, nil, lo.errf("cannot index %s", t)
	}
	if id, ok := e.(*Ident); ok && id.Sym != nil && id.Sym.typ.Kind == TypeArray {
		l := lo.loc(id.Sym)
		addr := lo.f.newTemp()
		if l.kind == locGlobal {
			lo.f.emit(ins{Kind: iAddrG, Dst: addr, Sym: l.sym})
		} else {
			lo.f.emit(ins{Kind: iAddrL, Dst: addr, Slot: l.slot})
		}
		return tmp(addr), pt.Elem, nil
	}
	// Pointer value (or array decayed through earlier arithmetic).
	v, err := lo.expr(e)
	return v, pt.Elem, err
}

// indexAddress computes base + idx*sizeof(elem), folding constant indices
// into the load/store offset.
func (lo *lowerer) indexAddress(base Operand, idx Expr, elem *Type) (Operand, int32, error) {
	iv, err := lo.expr(idx)
	if err != nil {
		return Operand{}, 0, err
	}
	es := int32(elem.Size())
	if iv.IsConst {
		return base, iv.Val * es, nil
	}
	scaled := lo.scale(iv, es)
	return lo.binOp("+", base, scaled), 0, nil
}

// scale multiplies v by a constant element size using a shift when the
// size is a power of two, as real compilers do at all levels.
func (lo *lowerer) scale(v Operand, size int32) Operand {
	switch {
	case size == 1:
		return v
	case size&(size-1) == 0:
		sh := int32(0)
		for s := size; s > 1; s >>= 1 {
			sh++
		}
		return lo.binOp("<<", v, cnst(sh))
	default:
		return lo.binOp("*", v, cnst(size))
	}
}

// read loads the current value of an lvalue.
func (lo *lowerer) read(l lval) Operand {
	if l.isTemp {
		return tmp(l.loc.temp)
	}
	d := lo.f.newTemp()
	lo.f.emit(ins{Kind: iLoad, Dst: d, A: l.addr, Off: l.off, Width: l.width, SignExtend: l.signed && l.width < 4})
	return tmp(d)
}

// write stores v into an lvalue, truncating for narrow temp-resident types.
func (lo *lowerer) write(l lval, v Operand) {
	if l.isTemp {
		v = lo.truncate(v, l.typ)
		lo.f.emit(ins{Kind: iMov, Dst: l.loc.temp, A: v})
		return
	}
	lo.f.emit(ins{Kind: iStore, A: v, B: l.addr, Off: l.off, Width: l.width})
}

// signedOf reports whether an operation on the given operand types uses
// signed semantics.
func signedOf(a, b *Type) bool {
	sa, sb := true, true
	if a != nil && a.IsScalar() {
		sa = a.Signed()
	}
	if b != nil && b.IsScalar() {
		sb = b.Signed()
	}
	return sa && sb
}

// tacBinOp maps a source operator plus signedness to the TAC operator.
func tacBinOp(op string, signed bool) string {
	if signed {
		switch op {
		case ">>":
			return ">>s"
		}
		return op
	}
	switch op {
	case "/":
		return "/u"
	case "%":
		return "%u"
	case ">>":
		return ">>u"
	case "<":
		return "<u"
	case "<=":
		return "<=u"
	case ">":
		return ">u"
	case ">=":
		return ">=u"
	}
	return op
}

func (lo *lowerer) expr(e Expr) (Operand, error) {
	switch e := e.(type) {
	case *NumLit:
		return cnst(e.Val), nil
	case *Ident:
		if e.Sym != nil && e.Sym.typ.Kind == TypeArray {
			addr, _, err := lo.baseAddress(e)
			return addr, err
		}
		l, err := lo.lvalue(e)
		if err != nil {
			return Operand{}, err
		}
		return lo.read(l), nil
	case *BinExpr:
		return lo.binExpr(e)
	case *UnExpr:
		return lo.unExpr(e)
	case *AssignExpr:
		return lo.assignExpr(e)
	case *IncDecExpr:
		return lo.incDecExpr(e)
	case *IndexExpr:
		l, err := lo.lvalue(e)
		if err != nil {
			return Operand{}, err
		}
		return lo.read(l), nil
	case *CallExpr:
		return lo.callExpr(e)
	case *CastExpr:
		v, err := lo.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		return lo.truncate(v, e.T), nil
	case *CondExpr:
		return lo.condExpr(e)
	}
	return Operand{}, lo.errf("unhandled expression %T", e)
}

func (lo *lowerer) binExpr(e *BinExpr) (Operand, error) {
	switch e.Op {
	case "&&", "||":
		return lo.boolValue(e)
	}
	a, err := lo.expr(e.L)
	if err != nil {
		return Operand{}, err
	}
	b, err := lo.expr(e.R)
	if err != nil {
		return Operand{}, err
	}
	lt, rt := e.L.ExprType(), e.R.ExprType()

	// Pointer arithmetic scales the integer operand by the element size.
	if pt := pointerish(lt); pt != nil && rt.IsScalar() && (e.Op == "+" || e.Op == "-") {
		sb := lo.scale(b, int32(pt.Elem.Size()))
		return lo.binOp(e.Op, a, sb), nil
	}
	if pt := pointerish(rt); pt != nil && lt.IsScalar() && e.Op == "+" {
		sa := lo.scale(a, int32(pt.Elem.Size()))
		return lo.binOp("+", sa, b), nil
	}

	signed := signedOf(lt, rt)
	switch e.Op {
	case "<":
		return lo.binOp(tacBinOp("<", signed), a, b), nil
	case ">":
		return lo.binOp(tacBinOp("<", signed), b, a), nil
	case "<=":
		t := lo.binOp(tacBinOp("<", signed), b, a)
		return lo.binOp("^", t, cnst(1)), nil
	case ">=":
		t := lo.binOp(tacBinOp("<", signed), a, b)
		return lo.binOp("^", t, cnst(1)), nil
	case "==":
		t := lo.binOp("^", a, b)
		return lo.binOp("<u", t, cnst(1)), nil
	case "!=":
		t := lo.binOp("^", a, b)
		return lo.binOp("<u", cnst(0), t), nil
	}
	return lo.binOp(tacBinOp(e.Op, signed), a, b), nil
}

func (lo *lowerer) unExpr(e *UnExpr) (Operand, error) {
	switch e.Op {
	case "-":
		v, err := lo.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		return lo.binOp("-", cnst(0), v), nil
	case "~":
		v, err := lo.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		return lo.binOp("^", v, cnst(-1)), nil
	case "!":
		v, err := lo.expr(e.X)
		if err != nil {
			return Operand{}, err
		}
		return lo.binOp("<u", v, cnst(1)), nil
	case "*":
		l, err := lo.lvalue(e)
		if err != nil {
			return Operand{}, err
		}
		return lo.read(l), nil
	case "&":
		return lo.addressOf(e.X)
	}
	return Operand{}, lo.errf("unhandled unary %q", e.Op)
}

func (lo *lowerer) addressOf(e Expr) (Operand, error) {
	switch e := e.(type) {
	case *Ident:
		l := lo.loc(e.Sym)
		addr := lo.f.newTemp()
		switch l.kind {
		case locGlobal:
			lo.f.emit(ins{Kind: iAddrG, Dst: addr, Sym: l.sym})
		case locSlot:
			lo.f.emit(ins{Kind: iAddrL, Dst: addr, Slot: l.slot})
		default:
			return Operand{}, lo.errf("internal: address of temp-resident %q", e.Name)
		}
		return tmp(addr), nil
	case *IndexExpr:
		base, elem, err := lo.baseAddress(e.Arr)
		if err != nil {
			return Operand{}, err
		}
		addr, off, err := lo.indexAddress(base, e.Idx, elem)
		if err != nil {
			return Operand{}, err
		}
		if off != 0 {
			return lo.binOp("+", addr, cnst(off)), nil
		}
		return addr, nil
	case *UnExpr:
		if e.Op == "*" {
			return lo.expr(e.X)
		}
	}
	return Operand{}, lo.errf("cannot take address of expression")
}

func (lo *lowerer) assignExpr(e *AssignExpr) (Operand, error) {
	// Evaluate the right side first (MicroC fixes the C-unspecified order).
	rv, err := lo.expr(e.RV)
	if err != nil {
		return Operand{}, err
	}
	l, err := lo.lvalue(e.LV)
	if err != nil {
		return Operand{}, err
	}
	if e.Op != "=" {
		srcOp := e.Op[:len(e.Op)-1] // "+=" -> "+"
		old := lo.read(l)
		signed := signedOf(e.LV.ExprType(), e.RV.ExprType())
		if pt := pointerish(e.LV.ExprType()); pt != nil && (srcOp == "+" || srcOp == "-") {
			rv = lo.scale(rv, int32(pt.Elem.Size()))
		}
		rv = lo.binOp(tacBinOp(srcOp, signed), old, rv)
	}
	lo.write(l, rv)
	if l.isTemp {
		return tmp(l.loc.temp), nil
	}
	return rv, nil
}

func (lo *lowerer) incDecExpr(e *IncDecExpr) (Operand, error) {
	l, err := lo.lvalue(e.LV)
	if err != nil {
		return Operand{}, err
	}
	step := int32(1)
	if pt := pointerish(e.LV.ExprType()); pt != nil {
		step = int32(pt.Elem.Size())
	}
	op := "+"
	if e.Op == "--" {
		op = "-"
	}
	old := lo.read(l)
	if e.Post && l.isTemp {
		// The read of a temp-resident variable aliases the variable
		// itself; copy it so the pre-update value survives the write.
		c := lo.f.newTemp()
		lo.f.emit(ins{Kind: iMov, Dst: c, A: old})
		old = tmp(c)
	}
	nw := lo.binOp(op, old, cnst(step))
	lo.write(l, nw)
	if e.Post {
		return old, nil
	}
	if l.isTemp {
		return tmp(l.loc.temp), nil
	}
	return nw, nil
}

func (lo *lowerer) callExpr(e *CallExpr) (Operand, error) {
	args := make([]Operand, len(e.Args))
	for i, a := range e.Args {
		v, err := lo.expr(a)
		if err != nil {
			return Operand{}, err
		}
		args[i] = v
	}
	call := ins{Kind: iCall, Sym: e.Name, Args: args}
	if e.T.Kind != TypeVoid {
		call.HasDst = true
		call.Dst = lo.f.newTemp()
	}
	lo.f.emit(call)
	if call.HasDst {
		return tmp(call.Dst), nil
	}
	return cnst(0), nil
}

func (lo *lowerer) condExpr(e *CondExpr) (Operand, error) {
	r := lo.f.newTemp()
	thenL := lo.newLabel("ct")
	elseL := lo.newLabel("cf")
	endL := lo.newLabel("ce")
	if err := lo.cond(e.Cond, thenL, elseL); err != nil {
		return Operand{}, err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: thenL})
	v, err := lo.expr(e.Then)
	if err != nil {
		return Operand{}, err
	}
	lo.f.emit(ins{Kind: iMov, Dst: r, A: v})
	lo.f.emit(ins{Kind: iBr, Sym: endL})
	lo.f.emit(ins{Kind: iLabel, Sym: elseL})
	v, err = lo.expr(e.Else)
	if err != nil {
		return Operand{}, err
	}
	lo.f.emit(ins{Kind: iMov, Dst: r, A: v})
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return tmp(r), nil
}

// boolValue materializes a short-circuit expression as 0/1.
func (lo *lowerer) boolValue(e Expr) (Operand, error) {
	r := lo.f.newTemp()
	tL := lo.newLabel("bt")
	fL := lo.newLabel("bf")
	endL := lo.newLabel("be")
	if err := lo.cond(e, tL, fL); err != nil {
		return Operand{}, err
	}
	lo.f.emit(ins{Kind: iLabel, Sym: tL})
	lo.f.emit(ins{Kind: iMov, Dst: r, A: cnst(1)})
	lo.f.emit(ins{Kind: iBr, Sym: endL})
	lo.f.emit(ins{Kind: iLabel, Sym: fL})
	lo.f.emit(ins{Kind: iMov, Dst: r, A: cnst(0)})
	lo.f.emit(ins{Kind: iLabel, Sym: endL})
	return tmp(r), nil
}

// cond lowers a boolean expression to branches: control reaches trueL when
// the expression is nonzero, falseL otherwise.
func (lo *lowerer) cond(e Expr, trueL, falseL string) error {
	switch e := e.(type) {
	case *BinExpr:
		switch e.Op {
		case "&&":
			mid := lo.newLabel("and")
			if err := lo.cond(e.L, mid, falseL); err != nil {
				return err
			}
			lo.f.emit(ins{Kind: iLabel, Sym: mid})
			return lo.cond(e.R, trueL, falseL)
		case "||":
			mid := lo.newLabel("or")
			if err := lo.cond(e.L, trueL, mid); err != nil {
				return err
			}
			lo.f.emit(ins{Kind: iLabel, Sym: mid})
			return lo.cond(e.R, trueL, falseL)
		case "==", "!=", "<", "<=", ">", ">=":
			a, err := lo.expr(e.L)
			if err != nil {
				return err
			}
			b, err := lo.expr(e.R)
			if err != nil {
				return err
			}
			signed := signedOf(e.L.ExprType(), e.R.ExprType())
			op := e.Op
			if op != "==" && op != "!=" {
				op = tacBinOp(op, signed)
			}
			lo.f.emit(ins{Kind: iCBr, Op: op, A: a, B: b, Sym: trueL})
			lo.f.emit(ins{Kind: iBr, Sym: falseL})
			return nil
		}
	case *UnExpr:
		if e.Op == "!" {
			return lo.cond(e.X, falseL, trueL)
		}
	case *NumLit:
		if e.Val != 0 {
			lo.f.emit(ins{Kind: iBr, Sym: trueL})
		} else {
			lo.f.emit(ins{Kind: iBr, Sym: falseL})
		}
		return nil
	}
	v, err := lo.expr(e)
	if err != nil {
		return err
	}
	lo.f.emit(ins{Kind: iCBr, Op: "!=", A: v, B: cnst(0), Sym: trueL})
	lo.f.emit(ins{Kind: iBr, Sym: falseL})
	return nil
}
