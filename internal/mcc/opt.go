package mcc

// TAC optimization passes. The pass set per level mirrors a classic C
// compiler, which matters here: the decompiler must cope with (and undo)
// exactly these artifacts.
//
//	O1: constant folding/propagation, copy propagation, algebraic
//	    simplification, branch folding, dead code elimination
//	O2: O1 + local common subexpression elimination + strength reduction
//	O3: O2 (+ loop unrolling, applied earlier at the AST level)

// optimize runs the pass pipeline for the given level on f in place.
func optimize(f *tacFunc, level int) {
	if level < 1 {
		return
	}
	for round := 0; round < 4; round++ {
		propagate(f)
		if level >= 2 {
			localCSE(f)
		}
		simplifyBranches(f)
		removeUnreachable(f)
		deadCode(f)
	}
	if level >= 2 {
		strengthReduce(f)
		// Reduction introduces new temps and moves; clean up once more.
		propagate(f)
		deadCode(f)
	}
	pruneDeadTables(f)
}

// pruneDeadTables drops jump tables whose dispatch was eliminated (e.g. a
// constant switch tag folded the whole indirect jump away); otherwise the
// linker would try to patch labels of deleted case blocks.
func pruneDeadTables(f *tacFunc) {
	if len(f.Tables) == 0 {
		return
	}
	live := map[string]bool{}
	for i := range f.Ins {
		if f.Ins[i].Kind == iAddrG {
			live[f.Ins[i].Sym] = true
		}
	}
	out := f.Tables[:0]
	for _, t := range f.Tables {
		if live[t.Sym] {
			out = append(out, t)
		}
	}
	f.Tables = out
}

// blockRanges splits f.Ins into basic-block index ranges [start,end).
// Every TAC pass re-derives block structure through this, so it counts
// first and allocates the result exactly once.
func blockRanges(f *tacFunc) [][2]int {
	n, start := 0, 0
	for i := range f.Ins {
		switch f.Ins[i].Kind {
		case iLabel:
			if i > start {
				n++
			}
			start = i
		case iBr, iCBr, iJT, iRet:
			n++
			start = i + 1
		}
	}
	if start < len(f.Ins) {
		n++
	}
	out := make([][2]int, 0, n)
	start = 0
	for i := range f.Ins {
		switch f.Ins[i].Kind {
		case iLabel:
			if i > start {
				out = append(out, [2]int{start, i})
			}
			start = i
		case iBr, iCBr, iJT, iRet:
			out = append(out, [2]int{start, i + 1})
			start = i + 1
		}
	}
	if start < len(f.Ins) {
		out = append(out, [2]int{start, len(f.Ins)})
	}
	return out
}

// foldTac folds a TAC binary operator over two constants.
func foldTac(op string, a, b int32) (int32, bool) {
	switch op {
	case "/u":
		return foldBin("/", a, b, false)
	case "%u":
		return foldBin("%", a, b, false)
	case ">>s":
		return foldBin(">>", a, b, true)
	case ">>u":
		return foldBin(">>", a, b, false)
	case "<u":
		return foldBin("<", a, b, false)
	case "<=u":
		return foldBin("<=", a, b, false)
	case ">u":
		return foldBin(">", a, b, false)
	case ">=u":
		return foldBin(">=", a, b, false)
	default:
		return foldBin(op, a, b, true)
	}
}

// propagate performs per-block constant and copy propagation plus algebraic
// simplification and constant folding.
func propagate(f *tacFunc) {
	for _, r := range blockRanges(f) {
		val := make(map[Temp]Operand) // temp -> known const or copy source
		invalidate := func(t Temp) {
			delete(val, t)
			for k, v := range val {
				if !v.IsConst && v.Temp == t {
					delete(val, k)
				}
			}
		}
		for i := r[0]; i < r[1]; i++ {
			in := &f.Ins[i]
			in.replaceUses(val)
			if in.Kind == iBin {
				simplifyBin(in)
			}
			if d, ok := in.def(); ok {
				invalidate(d)
				switch in.Kind {
				case iMov:
					if in.A.IsConst || in.A.Temp != d {
						val[d] = in.A
					}
				case iBin:
					if in.A.IsConst && in.B.IsConst {
						if v, ok := foldTac(in.Op, in.A.Val, in.B.Val); ok {
							*in = ins{Kind: iMov, Dst: d, A: cnst(v)}
							val[d] = cnst(v)
						}
					}
				}
			}
		}
	}
}

// simplifyBin applies algebraic identities in place, possibly turning the
// instruction into a move.
func simplifyBin(in *ins) {
	isC := func(o Operand, v int32) bool { return o.IsConst && o.Val == v }
	toMov := func(a Operand) { *in = ins{Kind: iMov, Dst: in.Dst, A: a} }
	switch in.Op {
	case "+":
		if isC(in.B, 0) {
			toMov(in.A)
		} else if isC(in.A, 0) {
			toMov(in.B)
		}
	case "-":
		if isC(in.B, 0) {
			toMov(in.A)
		} else if !in.A.IsConst && !in.B.IsConst && in.A.Temp == in.B.Temp {
			toMov(cnst(0))
		}
	case "*":
		if isC(in.B, 1) {
			toMov(in.A)
		} else if isC(in.A, 1) {
			toMov(in.B)
		} else if isC(in.A, 0) || isC(in.B, 0) {
			toMov(cnst(0))
		}
	case "&":
		if isC(in.B, 0) || isC(in.A, 0) {
			toMov(cnst(0))
		} else if isC(in.B, -1) {
			toMov(in.A)
		} else if isC(in.A, -1) {
			toMov(in.B)
		}
	case "|", "^":
		if isC(in.B, 0) {
			toMov(in.A)
		} else if isC(in.A, 0) {
			toMov(in.B)
		}
	case "<<", ">>s", ">>u":
		if isC(in.B, 0) {
			toMov(in.A)
		}
	case "/", "/u":
		if isC(in.B, 1) {
			toMov(in.A)
		}
	}
}

// localCSE eliminates repeated pure computations within a block.
type cseKey struct {
	op   string
	kind insKind
	a, b Operand
	off  int32
	sym  string
	slot int
}

func localCSE(f *tacFunc) {
	for _, r := range blockRanges(f) {
		avail := make(map[cseKey]Temp)
		invalidate := func(t Temp) {
			for k, v := range avail {
				if (!k.a.IsConst && k.a.Temp == t) || (!k.b.IsConst && k.b.Temp == t) || v == t {
					delete(avail, k)
				}
			}
		}
		for i := r[0]; i < r[1]; i++ {
			in := &f.Ins[i]
			var key cseKey
			cacheable := false
			switch in.Kind {
			case iBin:
				key = cseKey{op: in.Op, kind: iBin, a: in.A, b: in.B}
				cacheable = true
			case iAddrG:
				key = cseKey{kind: iAddrG, sym: in.Sym}
				cacheable = true
			case iAddrL:
				key = cseKey{kind: iAddrL, slot: in.Slot}
				cacheable = true
			}
			if cacheable {
				if t, ok := avail[key]; ok {
					*in = ins{Kind: iMov, Dst: in.Dst, A: tmp(t)}
					if d, ok := in.def(); ok {
						invalidate(d)
					}
					continue
				}
			}
			if d, ok := in.def(); ok {
				invalidate(d)
				if cacheable {
					avail[key] = d
				}
			}
		}
	}
}

// simplifyBranches folds constant conditional branches and removes jumps to
// the immediately following label.
func simplifyBranches(f *tacFunc) {
	out := f.Ins[:0]
	for _, in := range f.Ins {
		if in.Kind == iCBr && in.A.IsConst && in.B.IsConst {
			if v, ok := foldTac(cbrFoldOp(in.Op), in.A.Val, in.B.Val); ok {
				if v != 0 {
					out = append(out, ins{Kind: iBr, Sym: in.Sym})
				}
				continue
			}
		}
		out = append(out, in)
	}
	f.Ins = out
	// Drop br/cbr to the next label.
	out = f.Ins[:0]
	for i, in := range f.Ins {
		if (in.Kind == iBr || in.Kind == iCBr) && i+1 < len(f.Ins) &&
			f.Ins[i+1].Kind == iLabel && f.Ins[i+1].Sym == in.Sym {
			continue
		}
		out = append(out, in)
	}
	f.Ins = out
}

func cbrFoldOp(op string) string {
	// iCBr ops are already TAC comparison operators.
	return op
}

// removeUnreachable deletes instructions between an unconditional control
// transfer and the next label, then removes whole blocks no control flow
// can reach (e.g. arms of statically folded branches).
func removeUnreachable(f *tacFunc) {
	out := f.Ins[:0]
	dead := false
	for _, in := range f.Ins {
		if in.Kind == iLabel {
			dead = false
		}
		if dead {
			continue
		}
		out = append(out, in)
		if in.Kind == iBr || in.Kind == iRet || in.Kind == iJT {
			dead = true
		}
	}
	f.Ins = out
	removeUnreachableBlocks(f)
}

// removeUnreachableBlocks drops basic blocks unreachable from the entry.
// Indirect jumps (jump tables) conservatively keep every labeled block.
func removeUnreachableBlocks(f *tacFunc) {
	for i := range f.Ins {
		if f.Ins[i].Kind == iJT {
			return
		}
	}
	ranges := blockRanges(f)
	if len(ranges) == 0 {
		return
	}
	labelBlock := map[string]int{}
	for bi, r := range ranges {
		for j := r[0]; j < r[1] && f.Ins[j].Kind == iLabel; j++ {
			labelBlock[f.Ins[j].Sym] = bi
		}
	}
	reach := make([]bool, len(ranges))
	var visit func(bi int)
	visit = func(bi int) {
		if bi >= len(ranges) || reach[bi] {
			return
		}
		reach[bi] = true
		r := ranges[bi]
		last := f.Ins[r[1]-1]
		switch last.Kind {
		case iBr:
			if t, ok := labelBlock[last.Sym]; ok {
				visit(t)
			}
		case iCBr:
			if t, ok := labelBlock[last.Sym]; ok {
				visit(t)
			}
			visit(bi + 1)
		case iRet:
		default:
			visit(bi + 1)
		}
	}
	visit(0)
	out := f.Ins[:0]
	for bi, r := range ranges {
		if !reach[bi] {
			continue
		}
		out = append(out, f.Ins[r[0]:r[1]]...)
	}
	f.Ins = out
}

// deadCode removes pure instructions whose results are never used anywhere
// in the function. Loads are pure in MicroC (no volatile).
func deadCode(f *tacFunc) {
	used := newTempSet(f.NTemp)
	var ub [4]Temp
	for {
		used.reset()
		for i := range f.Ins {
			for _, t := range f.Ins[i].appendUses(ub[:0]) {
				used.set(t)
			}
		}
		changed := false
		out := f.Ins[:0]
		for _, in := range f.Ins {
			if d, ok := in.def(); ok && !used.has(d) {
				switch in.Kind {
				case iMov, iBin, iLoad, iAddrG, iAddrL:
					changed = true
					continue
				case iCall:
					// Keep the call, drop the unused result.
					in.HasDst = false
				}
			}
			out = append(out, in)
		}
		f.Ins = out
		if !changed {
			return
		}
	}
}

// strengthReduce rewrites multiplications by constants into shift/add/sub
// sequences when that takes at most 4 operations (the classic heuristic:
// cheaper than a pipelined multiply), and unsigned divisions/remainders by
// powers of two into shifts/masks. This is the compiler optimization the
// paper's "strength promotion" decompiler pass must undo.
func strengthReduce(f *tacFunc) {
	var out []ins
	for _, in := range f.Ins {
		if in.Kind == iBin {
			switch in.Op {
			case "*":
				c, x, ok := constOperand(&in)
				if ok {
					if seq, ok2 := mulSequence(f, x, c, in.Dst); ok2 {
						out = append(out, seq...)
						continue
					}
				}
			case "/u":
				if in.B.IsConst && isPow2(in.B.Val) {
					out = append(out, ins{Kind: iBin, Op: ">>u", Dst: in.Dst, A: in.A, B: cnst(log2(in.B.Val))})
					continue
				}
			case "%u":
				if in.B.IsConst && isPow2(in.B.Val) {
					out = append(out, ins{Kind: iBin, Op: "&", Dst: in.Dst, A: in.A, B: cnst(in.B.Val - 1)})
					continue
				}
			}
		}
		out = append(out, in)
	}
	f.Ins = out
}

func constOperand(in *ins) (int32, Operand, bool) {
	if in.B.IsConst && !in.A.IsConst {
		return in.B.Val, in.A, true
	}
	if in.A.IsConst && !in.B.IsConst {
		return in.A.Val, in.B, true
	}
	return 0, Operand{}, false
}

func isPow2(v int32) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int32) int32 {
	n := int32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// csdTerm is one signed power-of-two term of a constant multiplier.
type csdTerm struct {
	shift int32
	neg   bool
}

// csdRecode decomposes c into signed power-of-two terms using canonical
// signed-digit recoding, which minimizes the term count.
func csdRecode(c int64) []csdTerm {
	var terms []csdTerm
	for i := 0; c != 0 && i < 40; i++ {
		if c&1 != 0 {
			// Choose digit +1 or -1 so the remaining value is even.
			if c&3 == 3 { // ...11 -> digit -1, carry
				terms = append(terms, csdTerm{shift: int32(i), neg: true})
				c++
			} else {
				terms = append(terms, csdTerm{shift: int32(i)})
				c--
			}
		}
		c >>= 1
	}
	return terms
}

// mulSequence builds the shift/add/sub sequence computing dst = x*c, or
// reports false when a multiply instruction is cheaper.
func mulSequence(f *tacFunc, x Operand, c int32, dst Temp) ([]ins, bool) {
	if c == 0 {
		return []ins{{Kind: iMov, Dst: dst, A: cnst(0)}}, true
	}
	neg := c < 0
	terms := csdRecode(int64(abs64(int64(c))))
	// Cost: one shift per nonzero-shift term plus one add/sub per extra
	// term, plus a final negate. More than 4 ops: keep the multiply.
	cost := len(terms) - 1
	for _, t := range terms {
		if t.shift != 0 {
			cost++
		}
	}
	if neg {
		cost++
	}
	if cost > 4 || len(terms) == 0 {
		return nil, false
	}
	var seq []ins
	// acc holds the running sum as an operand.
	var acc Operand
	for i, t := range terms {
		var term Operand
		if t.shift == 0 {
			term = x
		} else {
			tt := f.newTemp()
			seq = append(seq, ins{Kind: iBin, Op: "<<", Dst: tt, A: x, B: cnst(t.shift)})
			term = tmp(tt)
		}
		if i == 0 {
			if t.neg {
				tt := f.newTemp()
				seq = append(seq, ins{Kind: iBin, Op: "-", Dst: tt, A: cnst(0), B: term})
				term = tmp(tt)
			}
			acc = term
			continue
		}
		tt := f.newTemp()
		op := "+"
		if t.neg {
			op = "-"
		}
		seq = append(seq, ins{Kind: iBin, Op: op, Dst: tt, A: acc, B: term})
		acc = tmp(tt)
	}
	if neg {
		tt := f.newTemp()
		seq = append(seq, ins{Kind: iBin, Op: "-", Dst: tt, A: cnst(0), B: acc})
		acc = tmp(tt)
	}
	seq = append(seq, ins{Kind: iMov, Dst: dst, A: acc})
	return seq, true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
