// Package progen generates random MicroC programs for differential
// testing. Programs are deterministic and defined for every input: loops
// have constant bounds, array indexes are masked to the array size, and
// division by zero / shift overflow have the same defined semantics in
// the compiler, the simulator, and the IR interpreter.
//
// Generated programs follow the kernel convention used across the
// repository: a call-free `kernel` function holding all loops, and a
// `main` that calls it once and returns its checksum. That makes the same
// program usable for three oracles: cross-optimization-level output
// equality, simulator-vs-IR-interpreter equality after decompilation, and
// decompiler-pass semantic preservation.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Program is one generated test case.
type Program struct {
	Source string
	Seed   int64
}

// Config bounds the generator.
type Config struct {
	// MaxStmts bounds the kernel's statement count per block.
	MaxStmts int
	// MaxDepth bounds expression nesting.
	MaxDepth int
	// MaxLoops bounds loop count (each with constant trip count).
	MaxLoops int
	// Arrays enables global array access.
	Arrays bool
	// UnrollFriendly biases loop bounds to multiples of four so the -O3
	// unroller and the decompiler's reroller both fire.
	UnrollFriendly bool
	// Switches sprinkles dense switch statements into loop bodies so the
	// compiler emits jump tables (exercising indirect-jump recovery).
	Switches bool
}

// DefaultConfig returns moderate bounds.
func DefaultConfig() Config {
	return Config{MaxStmts: 6, MaxDepth: 3, MaxLoops: 3, Arrays: true}
}

type gen struct {
	r      *rand.Rand
	cfg    Config
	sb     strings.Builder
	scals  []string // scalar local names in scope
	loopN  int
	indent string
}

// Generate produces a random program from the seed.
func Generate(seed int64, cfg Config) Program {
	g := &gen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.emit()
	return Program{Source: g.sb.String(), Seed: seed}
}

func (g *gen) pf(format string, args ...any) {
	fmt.Fprintf(&g.sb, "%s", g.indent)
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteString("\n")
}

func (g *gen) emit() {
	// Globals: two power-of-two arrays with deterministic initializers.
	if g.cfg.Arrays {
		g.pf("int ga[16] = {%s};", g.initList(16))
		g.pf("int gb[8] = {%s};", g.initList(8))
	}
	g.pf("int kernel(int n) {")
	g.indent = "\t"
	// Scalar pool.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("v%d", i)
		g.pf("int %s = %d;", name, g.r.Intn(200)-100)
		g.scals = append(g.scals, name)
	}
	g.scals = append(g.scals, "n")
	g.block(g.cfg.MaxLoops)
	g.pf("return %s;", g.checksum())
	g.indent = ""
	g.pf("}")
	g.pf("int main() { return kernel(%d); }", g.r.Intn(100)+1)
}

func (g *gen) initList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("%d", g.r.Intn(512)-256)
	}
	return strings.Join(parts, ", ")
}

func (g *gen) checksum() string {
	parts := make([]string, 0, len(g.scals))
	for _, v := range g.scals {
		if v == "n" {
			continue
		}
		parts = append(parts, v)
	}
	return "(" + strings.Join(parts, " + ") + ") & 0xffff"
}

// block emits up to MaxStmts statements, spending at most loops loop
// budget.
func (g *gen) block(loops int) {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(loops)
	}
}

func (g *gen) stmt(loops int) {
	switch k := g.r.Intn(10); {
	case k < 3: // plain assignment
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth))
	case k < 5: // compound assignment
		ops := []string{"+=", "-=", "^=", "|=", "&="}
		g.pf("%s %s %s;", g.scalar(), ops[g.r.Intn(len(ops))], g.expr(g.cfg.MaxDepth-1))
	case k == 5 && g.cfg.Switches:
		// Dense switch: at least 4 consecutive cases forces a jump table.
		tgt := g.scalar()
		g.pf("switch ((%s) & 7) {", g.expr(1))
		for c := 0; c < 6; c++ {
			g.pf("case %d: %s = %s; break;", c, tgt, g.expr(1))
		}
		g.pf("default: %s = %s; break;", tgt, g.expr(1))
		g.pf("}")
	case k < 7 && g.cfg.Arrays: // array store
		g.pf("ga[(%s) & 15] = %s;", g.expr(1), g.expr(g.cfg.MaxDepth-1))
	case k < 8: // if/else
		g.pf("if (%s %s %s) {", g.scalar(), g.relop(), g.expr(1))
		saved := g.indent
		g.indent += "\t"
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth-1))
		g.indent = saved
		if g.r.Intn(2) == 0 {
			g.pf("} else {")
			g.indent += "\t"
			g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth-1))
			g.indent = saved
		}
		g.pf("}")
	case loops > 0: // counted loop
		iv := fmt.Sprintf("i%d", g.loopN)
		g.loopN++
		bound := 2 + g.r.Intn(14)
		if g.cfg.UnrollFriendly {
			bound = 4 * (1 + g.r.Intn(4))
		}
		g.pf("int %s;", iv)
		g.pf("for (%s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
		saved := g.indent
		g.indent += "\t"
		g.scals = append(g.scals, iv)
		inner := 1 + g.r.Intn(3)
		for j := 0; j < inner; j++ {
			g.stmt(loops - 1)
		}
		g.scals = g.scals[:len(g.scals)-1]
		g.indent = saved
		g.pf("}")
	default:
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth))
	}
}

func (g *gen) scalar() string {
	// Never assign to n or a live loop variable (loop vars sit at the
	// tail of scals; exclude the last entry while inside a loop to keep
	// trip counts constant). Assigning the outermost 4 names is enough.
	return g.scals[g.r.Intn(4)]
}

func (g *gen) relop() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return ops[g.r.Intn(len(ops))]
}

func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(8) {
	case 0:
		return g.leaf()
	case 1:
		// The space keeps "-(-x)" from lexing as a "--" decrement.
		return fmt.Sprintf("(- %s)", g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	case 3:
		if g.cfg.Arrays {
			return fmt.Sprintf("ga[(%s) & 15]", g.expr(depth-1))
		}
		return g.leaf()
	case 4:
		if g.cfg.Arrays {
			return fmt.Sprintf("gb[(%s) & 7]", g.expr(depth-1))
		}
		return g.leaf()
	case 5:
		// Shift by a masked amount keeps semantics identical everywhere.
		dirs := []string{"<<", ">>"}
		return fmt.Sprintf("(%s %s ((%s) & 15))", g.expr(depth-1), dirs[g.r.Intn(2)], g.leaf())
	case 6:
		// Multiplication by a small constant exercises strength
		// reduction and promotion.
		return fmt.Sprintf("(%s * %d)", g.expr(depth-1), g.r.Intn(21))
	default:
		ops := []string{"+", "-", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)",
			g.expr(depth-1), ops[g.r.Intn(len(ops))], g.expr(depth-1))
	}
}

func (g *gen) leaf() string {
	if g.r.Intn(3) == 0 {
		return fmt.Sprintf("%d", g.r.Intn(256)-128)
	}
	return g.scals[g.r.Intn(len(g.scals))]
}
