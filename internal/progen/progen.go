// Package progen generates random MicroC programs for differential
// testing. Programs are deterministic and defined for every input: loops
// have constant bounds, array indexes are masked to the array size, and
// division by zero / shift overflow have the same defined semantics in
// the compiler, the simulator, and the IR interpreter.
//
// Generated programs follow the kernel convention used across the
// repository: a call-free `kernel` function holding all loops, and a
// `main` that calls it once and returns its checksum. That makes the same
// program usable for three oracles: cross-optimization-level output
// equality, simulator-vs-IR-interpreter equality after decompilation, and
// decompiler-pass semantic preservation.
package progen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Program is one generated test case.
type Program struct {
	Source string
	Seed   int64
	// Shapes lists the switch shapes present in the source, sorted:
	// "switch-dense", "switch-sparse", "switch-fallthrough", and
	// "switch-in-loop" (a switch nested in a loop body). Empty when the
	// program contains no switch.
	Shapes []string
}

// HasShape reports whether the program contains the named shape.
func (p Program) HasShape(shape string) bool {
	for _, s := range p.Shapes {
		if s == shape {
			return true
		}
	}
	return false
}

// Config bounds the generator.
type Config struct {
	// MaxStmts bounds the kernel's statement count per block.
	MaxStmts int
	// MaxDepth bounds expression nesting.
	MaxDepth int
	// MaxLoops bounds loop count (each with constant trip count).
	MaxLoops int
	// Arrays enables global array access.
	Arrays bool
	// UnrollFriendly biases loop bounds to multiples of four so the -O3
	// unroller and the decompiler's reroller both fire.
	UnrollFriendly bool
	// Switches sprinkles switch statements into the kernel — dense,
	// sparse, and fallthrough-ridden, inside and outside loops. Every
	// shape satisfies the compiler's jump-table density rule, so each
	// switch compiles to the indirect-jump idiom the decompiler's
	// switch-table recovery must resolve.
	Switches bool
	// Straightline restricts the kernel to long unbranched runs of
	// scalar and array arithmetic (hot loops allowed, ifs and switches
	// not): the fusion-friendly extreme, where basic blocks are long and
	// the simulator's superinstruction translator should cover most of
	// the dynamic stream.
	Straightline bool
	// Branchy makes nearly every statement a conditional guarding a
	// single assignment: basic blocks of one or two instructions, the
	// fusion-hostile extreme where almost no adjacent pair is fusible.
	Branchy bool
}

// SwitchConfig returns the switch-rich bounds used by the differential
// corpus: every generated kernel draws from all switch shapes.
func SwitchConfig() Config {
	return Config{MaxStmts: 5, MaxDepth: 3, MaxLoops: 2, Arrays: true, Switches: true}
}

// DefaultConfig returns moderate bounds.
func DefaultConfig() Config {
	return Config{MaxStmts: 6, MaxDepth: 3, MaxLoops: 3, Arrays: true}
}

// StraightlineConfig returns the fusion-friendly bounds: long unbranched
// statement runs, one hot loop for dynamic weight.
func StraightlineConfig() Config {
	return Config{MaxStmts: 24, MaxDepth: 2, MaxLoops: 1, Arrays: true, Straightline: true}
}

// BranchyConfig returns the fusion-hostile bounds: branch-per-statement
// kernels whose basic blocks are too short to fuse.
func BranchyConfig() Config {
	return Config{MaxStmts: 10, MaxDepth: 1, MaxLoops: 2, Arrays: true, Branchy: true}
}

type gen struct {
	r         *rand.Rand
	cfg       Config
	sb        strings.Builder
	scals     []string // scalar local names in scope
	loopN     int
	loopDepth int // current loop nesting, for shape tracking
	shapes    map[string]bool
	indent    string
}

// Generate produces a random program from the seed.
func Generate(seed int64, cfg Config) Program {
	g := &gen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.emit()
	shapes := make([]string, 0, len(g.shapes))
	for s := range g.shapes {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	return Program{Source: g.sb.String(), Seed: seed, Shapes: shapes}
}

func (g *gen) mark(shape string) {
	if g.shapes == nil {
		g.shapes = map[string]bool{}
	}
	g.shapes[shape] = true
}

func (g *gen) pf(format string, args ...any) {
	fmt.Fprintf(&g.sb, "%s", g.indent)
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteString("\n")
}

func (g *gen) emit() {
	// Globals: two power-of-two arrays with deterministic initializers.
	if g.cfg.Arrays {
		g.pf("int ga[16] = {%s};", g.initList(16))
		g.pf("int gb[8] = {%s};", g.initList(8))
	}
	g.pf("int kernel(int n) {")
	g.indent = "\t"
	// Scalar pool.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("v%d", i)
		g.pf("int %s = %d;", name, g.r.Intn(200)-100)
		g.scals = append(g.scals, name)
	}
	g.scals = append(g.scals, "n")
	g.block(g.cfg.MaxLoops)
	g.pf("return %s;", g.checksum())
	g.indent = ""
	g.pf("}")
	g.pf("int main() { return kernel(%d); }", g.r.Intn(100)+1)
}

func (g *gen) initList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("%d", g.r.Intn(512)-256)
	}
	return strings.Join(parts, ", ")
}

func (g *gen) checksum() string {
	parts := make([]string, 0, len(g.scals))
	for _, v := range g.scals {
		if v == "n" {
			continue
		}
		parts = append(parts, v)
	}
	return "(" + strings.Join(parts, " + ") + ") & 0xffff"
}

// block emits up to MaxStmts statements, spending at most loops loop
// budget.
func (g *gen) block(loops int) {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(loops)
	}
}

func (g *gen) stmt(loops int) {
	if g.cfg.Straightline {
		g.straightStmt(loops)
		return
	}
	if g.cfg.Branchy {
		g.branchyStmt(loops)
		return
	}
	switch k := g.r.Intn(10); {
	case k < 3: // plain assignment
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth))
	case k < 5: // compound assignment
		ops := []string{"+=", "-=", "^=", "|=", "&="}
		g.pf("%s %s %s;", g.scalar(), ops[g.r.Intn(len(ops))], g.expr(g.cfg.MaxDepth-1))
	case (k == 5 || k == 8) && g.cfg.Switches:
		g.switchStmt()
	case k < 7 && g.cfg.Arrays: // array store
		g.pf("ga[(%s) & 15] = %s;", g.expr(1), g.expr(g.cfg.MaxDepth-1))
	case k < 8: // if/else
		g.pf("if (%s %s %s) {", g.scalar(), g.relop(), g.expr(1))
		saved := g.indent
		g.indent += "\t"
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth-1))
		g.indent = saved
		if g.r.Intn(2) == 0 {
			g.pf("} else {")
			g.indent += "\t"
			g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth-1))
			g.indent = saved
		}
		g.pf("}")
	case loops > 0: // counted loop
		iv := fmt.Sprintf("i%d", g.loopN)
		g.loopN++
		bound := 2 + g.r.Intn(14)
		if g.cfg.UnrollFriendly {
			bound = 4 * (1 + g.r.Intn(4))
		}
		g.pf("int %s;", iv)
		g.pf("for (%s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
		saved := g.indent
		g.indent += "\t"
		g.scals = append(g.scals, iv)
		g.loopDepth++
		inner := 1 + g.r.Intn(3)
		for j := 0; j < inner; j++ {
			g.stmt(loops - 1)
		}
		g.loopDepth--
		g.scals = g.scals[:len(g.scals)-1]
		g.indent = saved
		g.pf("}")
	default:
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth))
	}
}

// straightStmt emits the fusion-friendly extreme: plain scalar and
// array arithmetic only, optionally wrapped in one hot loop so the long
// straightline body dominates the dynamic stream.
func (g *gen) straightStmt(loops int) {
	g.mark("straightline")
	if loops > 0 && g.loopDepth == 0 && g.r.Intn(3) == 0 {
		iv := fmt.Sprintf("i%d", g.loopN)
		g.loopN++
		bound := 16 + g.r.Intn(48)
		g.pf("int %s;", iv)
		g.pf("for (%s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
		saved := g.indent
		g.indent += "\t"
		g.scals = append(g.scals, iv)
		g.loopDepth++
		inner := 8 + g.r.Intn(g.cfg.MaxStmts)
		for j := 0; j < inner; j++ {
			g.straightStmt(0)
		}
		g.loopDepth--
		g.scals = g.scals[:len(g.scals)-1]
		g.indent = saved
		g.pf("}")
		return
	}
	switch g.r.Intn(5) {
	case 0:
		ops := []string{"+=", "-=", "^=", "|=", "&="}
		g.pf("%s %s %s;", g.scalar(), ops[g.r.Intn(len(ops))], g.expr(g.cfg.MaxDepth))
	case 1:
		if g.cfg.Arrays {
			g.pf("ga[(%s) & 15] = %s;", g.expr(1), g.expr(g.cfg.MaxDepth))
			return
		}
		fallthrough
	default:
		g.pf("%s = %s;", g.scalar(), g.expr(g.cfg.MaxDepth))
	}
}

// branchyStmt emits the fusion-hostile extreme: nearly every statement
// is a conditional guarding a single assignment, so basic blocks hold
// one or two instructions and almost no adjacent pair is fusible.
func (g *gen) branchyStmt(loops int) {
	g.mark("branch-dense")
	switch k := g.r.Intn(8); {
	case k < 5:
		g.pf("if (%s %s %s) {", g.scalar(), g.relop(), g.leaf())
		saved := g.indent
		g.indent += "\t"
		g.pf("%s = %s;", g.scalar(), g.expr(1))
		g.indent = saved
		if g.r.Intn(2) == 0 {
			g.pf("} else {")
			g.indent += "\t"
			g.pf("%s = %s;", g.scalar(), g.expr(1))
			g.indent = saved
		}
		g.pf("}")
	case k < 7 && loops > 0:
		iv := fmt.Sprintf("i%d", g.loopN)
		g.loopN++
		bound := 2 + g.r.Intn(10)
		g.pf("int %s;", iv)
		g.pf("for (%s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
		saved := g.indent
		g.indent += "\t"
		g.scals = append(g.scals, iv)
		g.loopDepth++
		inner := 1 + g.r.Intn(3)
		for j := 0; j < inner; j++ {
			g.branchyStmt(loops - 1)
		}
		g.loopDepth--
		g.scals = g.scals[:len(g.scals)-1]
		g.indent = saved
		g.pf("}")
	default:
		g.pf("%s = %s;", g.scalar(), g.expr(1))
	}
}

// switchStmt emits one of three switch shapes. Every shape keeps at
// least 4 cases whose value span stays within 3x the case count, so the
// compiler always lowers it to the bound-check + scaled-load + jr
// jump-table idiom rather than a compare chain — the construct the
// decompiler's switch-table recovery must resolve.
func (g *gen) switchStmt() {
	if g.loopDepth > 0 {
		g.mark("switch-in-loop")
	}
	tgt := g.scalar()
	switch g.r.Intn(3) {
	case 0:
		// Dense: consecutive cases 0..5 under an &7 tag.
		g.mark("switch-dense")
		g.pf("switch ((%s) & 7) {", g.expr(1))
		for c := 0; c < 6; c++ {
			g.pf("case %d: %s = %s; break;", c, tgt, g.expr(1))
		}
		g.pf("default: %s = %s; break;", tgt, g.expr(1))
		g.pf("}")
	case 1:
		// Sparse: 5-7 distinct values from 0..15 under an &15 tag. The
		// span is at most 15 <= 3*5, so the table (with default-filled
		// holes) is still emitted.
		g.mark("switch-sparse")
		n := 5 + g.r.Intn(3)
		vals := g.r.Perm(16)[:n]
		sort.Ints(vals)
		g.pf("switch ((%s) & 15) {", g.expr(1))
		for _, c := range vals {
			g.pf("case %d: %s = %s; break;", c, tgt, g.expr(1))
		}
		g.pf("default: %s = %s; break;", tgt, g.expr(1))
		g.pf("}")
	default:
		// Dense with fallthrough arms: case 1 always falls through (so
		// the shape is present in every such switch) and other early
		// cases may; a fallthrough case's successor block has two
		// incoming dispatch paths.
		g.mark("switch-fallthrough")
		g.pf("switch ((%s) & 7) {", g.expr(1))
		for c := 0; c < 6; c++ {
			if c == 1 || (c < 5 && g.r.Intn(3) == 0) {
				g.pf("case %d: %s = %s;", c, tgt, g.expr(1))
			} else {
				g.pf("case %d: %s = %s; break;", c, tgt, g.expr(1))
			}
		}
		g.pf("default: %s = %s; break;", tgt, g.expr(1))
		g.pf("}")
	}
}

func (g *gen) scalar() string {
	// Never assign to n or a live loop variable (loop vars sit at the
	// tail of scals; exclude the last entry while inside a loop to keep
	// trip counts constant). Assigning the outermost 4 names is enough.
	return g.scals[g.r.Intn(4)]
}

func (g *gen) relop() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return ops[g.r.Intn(len(ops))]
}

func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(8) {
	case 0:
		return g.leaf()
	case 1:
		// The space keeps "-(-x)" from lexing as a "--" decrement.
		return fmt.Sprintf("(- %s)", g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	case 3:
		if g.cfg.Arrays {
			return fmt.Sprintf("ga[(%s) & 15]", g.expr(depth-1))
		}
		return g.leaf()
	case 4:
		if g.cfg.Arrays {
			return fmt.Sprintf("gb[(%s) & 7]", g.expr(depth-1))
		}
		return g.leaf()
	case 5:
		// Shift by a masked amount keeps semantics identical everywhere.
		dirs := []string{"<<", ">>"}
		return fmt.Sprintf("(%s %s ((%s) & 15))", g.expr(depth-1), dirs[g.r.Intn(2)], g.leaf())
	case 6:
		// Multiplication by a small constant exercises strength
		// reduction and promotion.
		return fmt.Sprintf("(%s * %d)", g.expr(depth-1), g.r.Intn(21))
	default:
		ops := []string{"+", "-", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)",
			g.expr(depth-1), ops[g.r.Intn(len(ops))], g.expr(depth-1))
	}
}

func (g *gen) leaf() string {
	if g.r.Intn(3) == 0 {
		return fmt.Sprintf("%d", g.r.Intn(256)-128)
	}
	return g.scals[g.r.Intn(len(g.scals))]
}
