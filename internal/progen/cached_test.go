package progen

import (
	"fmt"
	"testing"

	"binpart/internal/core"
	"binpart/internal/mcc"
)

// reportFingerprint renders the cache-relevant observable content of a
// Report: everything except PartitionTime (wall-clock) and the Design
// pointers. Two runs of the same binary under the same options must
// produce identical fingerprints whether stages were computed or served
// from the cache.
func reportFingerprint(rep *core.Report) string {
	s := fmt.Sprintf("exit=%d sw=%d metrics=%+v\nrecovery=%+v\n",
		rep.ExitCode, rep.SWCycles, rep.Metrics, rep.Recovery)
	for _, r := range rep.Regions {
		s += fmt.Sprintf("region %s func=%s sw=%d hw=%.6f clk=%.6f inv=%d area=%d fp=%v sel=%v step=%d\n",
			r.Name, r.Func, r.SWCycles, r.HWCycles, r.HWClockNs,
			r.Invocations, r.AreaGates, r.Footprint, r.Selected, r.Step)
	}
	return s
}

// TestCachedRunDifferential extends the differential suite to the cached
// pipeline: for random programs at -O2 and -O3, a cold core.Run, a cold
// cached core.RunWith, and a fully warm core.RunWith (same cache, second
// call) must agree on every observable output — exit code, cycle counts,
// metrics, recovery statistics, and every candidate region. This is the
// guarantee that content-addressed memoization of the compile/sim/lift/
// synthesis stages is invisible to results.
func TestCachedRunDifferential(t *testing.T) {
	cfg := Config{MaxStmts: 6, MaxDepth: 3, MaxLoops: 3, Arrays: true, UnrollFriendly: true}
	caches := core.NewCaches()
	opts := core.DefaultOptions()
	for seed := int64(0); seed < 12; seed++ {
		p := Generate(seed*29+5, cfg)
		for lvl := 2; lvl <= 3; lvl++ {
			img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			cold, err := core.Run(img, opts)
			if err != nil {
				t.Fatalf("seed %d O%d: uncached run: %v", p.Seed, lvl, err)
			}
			first, err := core.RunWith(img, opts, caches)
			if err != nil {
				t.Fatalf("seed %d O%d: cached run: %v", p.Seed, lvl, err)
			}
			warm, err := core.RunWith(img, opts, caches)
			if err != nil {
				t.Fatalf("seed %d O%d: warm cached run: %v", p.Seed, lvl, err)
			}

			want := reportFingerprint(cold)
			if got := reportFingerprint(first); got != want {
				t.Fatalf("seed %d O%d: cold cached run differs from uncached:\n--- uncached ---\n%s--- cached ---\n%s\n%s",
					p.Seed, lvl, want, got, p.Source)
			}
			if got := reportFingerprint(warm); got != want {
				t.Fatalf("seed %d O%d: warm cached run differs from uncached:\n--- uncached ---\n%s--- warm ---\n%s\n%s",
					p.Seed, lvl, want, got, p.Source)
			}

			// Vary an evaluate-stage option: the assembled-analysis cache
			// misses (its key covers partition options) but every inner
			// stage cache hits, and the result must still match an
			// uncached run under the same options.
			opts2 := opts
			opts2.Partition.CoverageTarget = 0.85
			cold2, err := core.Run(img, opts2)
			if err != nil {
				t.Fatalf("seed %d O%d: uncached varied run: %v", p.Seed, lvl, err)
			}
			warm2, err := core.RunWith(img, opts2, caches)
			if err != nil {
				t.Fatalf("seed %d O%d: cached varied run: %v", p.Seed, lvl, err)
			}
			if got, want2 := reportFingerprint(warm2), reportFingerprint(cold2); got != want2 {
				t.Fatalf("seed %d O%d: varied cached run differs from uncached:\n--- uncached ---\n%s--- cached ---\n%s\n%s",
					p.Seed, lvl, want2, got, p.Source)
			}
		}
	}

	// The warm runs must actually have been served from the cache: the
	// second RunWith of every (program, level) pair hits the assembled
	// Analysis cache, and the varied-options runs hit the inner stage
	// caches underneath a fresh analysis.
	if st := caches.Analysis.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("analysis cache saw no reuse: %+v", st)
	}
	st := caches.Sim.Stats()
	if st.Hits == 0 {
		t.Errorf("sim cache recorded no hits: %+v", st)
	}
	st = caches.Lift.Stats()
	if st.Hits == 0 {
		t.Errorf("lift cache recorded no hits: %+v", st)
	}
	if st := caches.Synth.Stats(); st.Hits == 0 {
		t.Errorf("synth cache recorded no hits: %+v", st)
	}
}

// TestCachedRunCrossLevelIsolation compiles the same program at -O2 and
// -O3 into one shared cache and checks the keys do not collide: each
// level's cached result must match its own uncached baseline even after
// the other level populated the cache.
func TestCachedRunCrossLevelIsolation(t *testing.T) {
	cfg := DefaultConfig()
	opts := core.DefaultOptions()
	for seed := int64(0); seed < 6; seed++ {
		p := Generate(seed*37+1, cfg)
		caches := core.NewCaches()
		base := map[int]string{}
		for lvl := 2; lvl <= 3; lvl++ {
			img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			rep, err := core.Run(img, opts)
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			base[lvl] = reportFingerprint(rep)
			if _, err := core.RunWith(img, opts, caches); err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
		}
		// Second pass in reverse order: every stage is now warm for both
		// levels; results must still match the per-level baselines.
		for lvl := 3; lvl >= 2; lvl-- {
			img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			rep, err := core.RunWith(img, opts, caches)
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			if got := reportFingerprint(rep); got != base[lvl] {
				t.Fatalf("seed %d: warm O%d report took another level's cache entries:\n--- want ---\n%s--- got ---\n%s",
					p.Seed, lvl, base[lvl], got)
			}
		}
	}
}
