package progen

import (
	"strings"
	"testing"

	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/mcc"
	"binpart/internal/sim"
)

// TestGenerateDeterministic pins the generator contract the corpus
// harness depends on: the same (seed, config) pair always yields the
// same source and the same shape list.
func TestGenerateDeterministic(t *testing.T) {
	cfgs := []Config{DefaultConfig(), SwitchConfig(),
		{MaxStmts: 8, MaxDepth: 4, MaxLoops: 2, Arrays: true, UnrollFriendly: true, Switches: true}}
	for ci, cfg := range cfgs {
		for seed := int64(0); seed < 50; seed++ {
			a := Generate(seed, cfg)
			b := Generate(seed, cfg)
			if a.Source != b.Source {
				t.Fatalf("cfg %d seed %d: source differs between runs", ci, seed)
			}
			if len(a.Shapes) != len(b.Shapes) {
				t.Fatalf("cfg %d seed %d: shapes differ: %v vs %v", ci, seed, a.Shapes, b.Shapes)
			}
			for i := range a.Shapes {
				if a.Shapes[i] != b.Shapes[i] {
					t.Fatalf("cfg %d seed %d: shapes differ: %v vs %v", ci, seed, a.Shapes, b.Shapes)
				}
			}
		}
	}
}

// TestSwitchShapeCoverage requires every switch shape — dense, sparse,
// fallthrough, and nested-in-loop — to appear within the first 200
// seeds of the corpus configuration, so the differential corpus
// actually exercises all of them.
func TestSwitchShapeCoverage(t *testing.T) {
	counts := map[string]int{}
	withSwitch := 0
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, SwitchConfig())
		if len(p.Shapes) > 0 {
			withSwitch++
		}
		for _, s := range p.Shapes {
			counts[s]++
			if !strings.Contains(p.Source, "switch") {
				t.Fatalf("seed %d: shape %s reported but no switch in source", seed, s)
			}
		}
	}
	for _, shape := range []string{"switch-dense", "switch-sparse", "switch-fallthrough", "switch-in-loop"} {
		if counts[shape] == 0 {
			t.Errorf("shape %s never generated in 200 seeds (%v)", shape, counts)
		}
	}
	if withSwitch < 100 {
		t.Errorf("only %d/200 programs contain a switch; corpus too thin", withSwitch)
	}
}

// TestSwitchShapesCompileToJumpTables checks the generator's density
// promise: each shape's switch really lowers to the indirect-jump idiom
// (recovery-off decompilation fails on the kernel) and switch-table
// recovery resolves it.
func TestSwitchShapesCompileToJumpTables(t *testing.T) {
	need := map[string]bool{"switch-dense": true, "switch-sparse": true, "switch-fallthrough": true}
	for seed := int64(0); seed < 200 && len(need) > 0; seed++ {
		p := Generate(seed, SwitchConfig())
		if len(p.Shapes) == 0 {
			continue
		}
		hit := false
		for s := range need {
			if p.HasShape(s) {
				delete(need, s)
				hit = true
			}
		}
		if !hit {
			continue
		}
		img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: 1})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Source)
		}
		off, err := decompile.Decompile(img)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, failed := off.Failed["kernel"]; !failed {
			t.Errorf("seed %d (%v): switch did not compile to a jump table", seed, p.Shapes)
		}
		on, err := decompile.DecompileWith(img, decompile.Options{RecoverJumpTables: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ferr, failed := on.Failed["kernel"]; failed {
			t.Errorf("seed %d (%v): recovery failed: %v\n%s", seed, p.Shapes, ferr, p.Source)
		}
	}
	if len(need) > 0 {
		t.Fatalf("shapes never checked: %v", need)
	}
}

// FuzzSwitchDifferential is the go test -fuzz entry point for the
// switch-recovery differential: any (seed, level) the fuzzer reaches
// must decompile cleanly and compute exactly what the binary computes.
// The seed corpus covers all four levels; `go test -fuzz
// FuzzSwitchDifferential ./internal/progen` explores from there.
func FuzzSwitchDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%4))
	}
	f.Fuzz(func(t *testing.T, seed int64, lvlByte uint8) {
		lvl := int(lvlByte % 4)
		p := Generate(seed, SwitchConfig())
		img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
		if err != nil {
			t.Fatalf("seed %d O%d: compile: %v\n%s", seed, lvl, err, p.Source)
		}
		res, err := sim.Execute(img, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d O%d: sim: %v", seed, lvl, err)
		}
		dec, err := decompile.DecompileWith(img, decompile.Options{RecoverJumpTables: true})
		if err != nil {
			t.Fatalf("seed %d O%d: decompile: %v", seed, lvl, err)
		}
		if ferr, failed := dec.Failed["kernel"]; failed {
			t.Fatalf("seed %d O%d: kernel not recovered: %v\n%s", seed, lvl, ferr, p.Source)
		}
		fn := dec.Func("kernel")
		dopt.Optimize(fn)
		st := ir.NewEvalState()
		st.Regs[ir.RegSP] = 0x7fff0000
		st.Regs[ir.RegA0] = kernelArg(t, p.Source)
		for i, bv := range img.Data {
			st.Mem[img.DataBase+uint32(i)] = bv
		}
		if err := ir.Eval(fn, st); err != nil {
			t.Fatalf("seed %d O%d: eval: %v\n%s\n%s", seed, lvl, err, p.Source, fn)
		}
		if got := st.Regs[ir.RegV0]; got != res.ExitCode {
			t.Fatalf("seed %d O%d: IR = %d, binary = %d\n%s\n%s",
				seed, lvl, got, res.ExitCode, p.Source, fn)
		}
	})
}
