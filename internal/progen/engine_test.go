package progen

import (
	"fmt"
	"reflect"
	"testing"

	"binpart/internal/mcc"
	"binpart/internal/sim"
)

// TestEngineDifferentialShapes runs generated programs from the
// fusion-friendly (straightline), fusion-hostile (branchy), and
// switch-rich shapes through all three simulator engines and requires
// bit-identical results — steps, cycles, exit code, both profile maps.
// The two new shapes bracket the translator: long unbranched blocks are
// where fusion pays, branch-per-statement kernels are where it can't,
// and the engines must agree on both extremes.
func TestEngineDifferentialShapes(t *testing.T) {
	shapes := []struct {
		name string
		cfg  Config
	}{
		{"straightline", StraightlineConfig()},
		{"branchy", BranchyConfig()},
		{"switch", SwitchConfig()},
	}
	engines := []sim.Engine{sim.EngineBlock, sim.EngineFused}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				p := Generate(seed, sh.cfg)
				lvl := int(seed) % 4
				img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
				if err != nil {
					t.Fatalf("seed %d -O%d: compile: %v\n%s", seed, lvl, err, p.Source)
				}
				cfg := sim.DefaultConfig()
				cfg.Profile = true
				cfg.Engine = sim.EngineReference
				ref, err := sim.Execute(img, cfg)
				if err != nil {
					t.Fatalf("seed %d -O%d: reference: %v", seed, lvl, err)
				}
				for _, eng := range engines {
					ecfg := cfg
					ecfg.Engine = eng
					got, err := sim.Execute(img, ecfg)
					if err != nil {
						t.Fatalf("seed %d -O%d %s: %v", seed, lvl, eng, err)
					}
					label := fmt.Sprintf("seed %d -O%d %s", seed, lvl, eng)
					if got.Steps != ref.Steps || got.Cycles != ref.Cycles || got.ExitCode != ref.ExitCode {
						t.Errorf("%s: steps/cycles/exit %d/%d/%d != reference %d/%d/%d",
							label, got.Steps, got.Cycles, got.ExitCode, ref.Steps, ref.Cycles, ref.ExitCode)
					}
					if !reflect.DeepEqual(got.Profile.InstCount, ref.Profile.InstCount) {
						t.Errorf("%s: InstCount differs", label)
					}
					if !reflect.DeepEqual(got.Profile.EdgeCount, ref.Profile.EdgeCount) {
						t.Errorf("%s: EdgeCount differs", label)
					}
				}
			}
		})
	}
}

// TestShapeFusionContrast checks the shapes do what their names claim:
// aggregated over seeds, the straightline kernels retire a clearly
// larger share of their dynamic stream inside fused superops than the
// branch-dense kernels.
func TestShapeFusionContrast(t *testing.T) {
	coverage := func(cfg Config) float64 {
		var agg sim.FusionStats
		for seed := int64(0); seed < 10; seed++ {
			p := Generate(seed, cfg)
			img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: 1})
			if err != nil {
				t.Fatalf("seed %d: compile: %v\n%s", seed, err, p.Source)
			}
			m, err := sim.New(img, sim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatalf("seed %d: run: %v", seed, err)
			}
			agg.Merge(m.FusionStats())
		}
		return agg.Coverage
	}
	straight := coverage(StraightlineConfig())
	branchy := coverage(BranchyConfig())
	t.Logf("fusion coverage: straightline %.1f%%, branchy %.1f%%", 100*straight, 100*branchy)
	if straight < 0.6 {
		t.Errorf("straightline coverage %.1f%% below 60%% — shape is not fusion-friendly", 100*straight)
	}
	if branchy >= straight {
		t.Errorf("branchy coverage %.1f%% not below straightline %.1f%% — shapes do not bracket the translator",
			100*branchy, 100*straight)
	}
	// Shape markers recorded by the generator.
	if p := Generate(1, StraightlineConfig()); !p.HasShape("straightline") {
		t.Error("straightline program missing its shape marker")
	}
	if p := Generate(1, BranchyConfig()); !p.HasShape("branch-dense") {
		t.Error("branchy program missing its shape marker")
	}
}
