package progen

import (
	"strconv"
	"strings"
	"testing"

	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/mcc"
	"binpart/internal/sim"
	"binpart/internal/synth"
	"binpart/internal/vhdl"
)

// TestGeneratedProgramsCompile is a basic sanity check on the generator.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Generate(seed, DefaultConfig())
		if _, err := mcc.Compile(p.Source, mcc.Options{OptLevel: 0}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Source)
		}
		if !strings.Contains(p.Source, "int kernel") {
			t.Fatalf("seed %d: no kernel function", seed)
		}
	}
}

// TestCrossLevelDifferential compiles each random program at -O0 through
// -O3 and requires identical results: the optimizer pipeline must be
// semantics-preserving on arbitrary (defined-behaviour) programs, not
// just the hand-written corpus.
func TestCrossLevelDifferential(t *testing.T) {
	const cases = 120
	cfgs := []Config{
		DefaultConfig(),
		{MaxStmts: 8, MaxDepth: 4, MaxLoops: 2, Arrays: true, UnrollFriendly: true},
		{MaxStmts: 4, MaxDepth: 5, MaxLoops: 1, Arrays: false},
	}
	for ci, cfg := range cfgs {
		for seed := int64(0); seed < cases/int64(len(cfgs)); seed++ {
			p := Generate(seed*31+int64(ci), cfg)
			var want int32
			for lvl := 0; lvl <= 3; lvl++ {
				img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
				if err != nil {
					t.Fatalf("cfg %d seed %d O%d: compile: %v\n%s", ci, p.Seed, lvl, err, p.Source)
				}
				res, err := sim.Execute(img, sim.DefaultConfig())
				if err != nil {
					t.Fatalf("cfg %d seed %d O%d: run: %v\n%s", ci, p.Seed, lvl, err, p.Source)
				}
				if lvl == 0 {
					want = res.ExitCode
				} else if res.ExitCode != want {
					t.Fatalf("cfg %d seed %d: O%d result %d != O0 result %d\n%s",
						ci, p.Seed, lvl, res.ExitCode, want, p.Source)
				}
			}
		}
	}
}

// TestDecompileOptimizeDifferential is the repository's strongest
// correctness property: for random programs at every optimization level,
// the decompiled-and-optimized kernel IR must compute exactly what the
// binary computes. The oracle is the simulator's exit code; the subject
// is the IR interpreter running the kernel after the full dopt pipeline
// (including stack-op removal, rerolling, and promotion).
func TestDecompileOptimizeDifferential(t *testing.T) {
	const perCfg = 30
	cfgs := []Config{
		DefaultConfig(),
		{MaxStmts: 6, MaxDepth: 3, MaxLoops: 3, Arrays: true, UnrollFriendly: true},
	}
	for ci, cfg := range cfgs {
		for seed := int64(0); seed < perCfg; seed++ {
			p := Generate(seed*17+3+int64(ci), cfg)
			for lvl := 0; lvl <= 3; lvl++ {
				img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
				if err != nil {
					t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
				}
				res, err := sim.Execute(img, sim.DefaultConfig())
				if err != nil {
					t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
				}

				dec, err := decompile.Decompile(img)
				if err != nil {
					t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
				}
				if ferr, failed := dec.Failed["kernel"]; failed {
					t.Fatalf("seed %d O%d: kernel recovery failed: %v\n%s", p.Seed, lvl, ferr, p.Source)
				}
				f := dec.Func("kernel")
				dopt.Optimize(f)

				// Recover the argument main passes (main is
				// "return kernel(C)", so C is a constant in the source).
				arg := kernelArg(t, p.Source)
				st := ir.NewEvalState()
				st.Regs[ir.RegSP] = 0x7fff0000
				st.Regs[ir.RegA0] = arg
				for i, bv := range img.Data {
					st.Mem[img.DataBase+uint32(i)] = bv
				}
				if err := ir.Eval(f, st); err != nil {
					t.Fatalf("seed %d O%d: eval: %v\n%s\n%s", p.Seed, lvl, err, p.Source, f)
				}
				if got := st.Regs[ir.RegV0]; got != res.ExitCode {
					t.Fatalf("seed %d O%d: IR kernel = %d, binary = %d\n%s\n%s",
						p.Seed, lvl, got, res.ExitCode, p.Source, f)
				}
			}
		}
	}
}

// kernelArg extracts C from "int main() { return kernel(C); }".
func kernelArg(t *testing.T, src string) int32 {
	t.Helper()
	i := strings.LastIndex(src, "kernel(")
	rest := src[i+len("kernel("):]
	j := strings.Index(rest, ")")
	v, err := strconv.Atoi(strings.TrimSpace(rest[:j]))
	if err != nil {
		t.Fatalf("cannot parse kernel argument: %v", err)
	}
	return int32(v)
}

// TestJumpTableDifferential fuzzes the indirect-jump recovery extension:
// random programs with dense switches are compiled at every level,
// decompiled with jump-table recovery, fully optimized, and interpreted —
// the result must match the binary's.
func TestJumpTableDifferential(t *testing.T) {
	cfg := Config{MaxStmts: 5, MaxDepth: 3, MaxLoops: 2, Arrays: true, Switches: true}
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed*13+7, cfg)
		if !strings.Contains(p.Source, "switch") {
			continue
		}
		for lvl := 0; lvl <= 3; lvl++ {
			img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
			if err != nil {
				t.Fatalf("seed %d O%d: %v\n%s", p.Seed, lvl, err, p.Source)
			}
			res, err := sim.Execute(img, sim.DefaultConfig())
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			dec, err := decompile.DecompileWith(img, decompile.Options{RecoverJumpTables: true})
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			if ferr, failed := dec.Failed["kernel"]; failed {
				t.Fatalf("seed %d O%d: kernel not recovered: %v\n%s", p.Seed, lvl, ferr, p.Source)
			}
			f := dec.Func("kernel")
			dopt.Optimize(f)
			st := ir.NewEvalState()
			st.Regs[ir.RegSP] = 0x7fff0000
			st.Regs[ir.RegA0] = kernelArg(t, p.Source)
			for i, bv := range img.Data {
				st.Mem[img.DataBase+uint32(i)] = bv
			}
			if err := ir.Eval(f, st); err != nil {
				t.Fatalf("seed %d O%d: eval: %v\n%s\n%s", p.Seed, lvl, err, p.Source, f)
			}
			if got := st.Regs[ir.RegV0]; got != res.ExitCode {
				t.Fatalf("seed %d O%d: IR = %d, binary = %d\n%s\n%s",
					p.Seed, lvl, got, res.ExitCode, p.Source, f)
			}
		}
	}
}

// TestRTLDifferential drives random kernels through the ENTIRE flow —
// compile, decompile, optimize, synthesize, emit VHDL — and executes the
// emitted RTL text against the IR interpreter. A mismatch anywhere in the
// chain (lifting, passes, scheduling, emission, RTL semantics) fails.
func TestRTLDifferential(t *testing.T) {
	cfg := Config{MaxStmts: 5, MaxDepth: 3, MaxLoops: 2, Arrays: true}
	for seed := int64(0); seed < 40; seed++ {
		p := Generate(seed*41+11, cfg)
		img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", p.Seed, err)
		}
		dec, err := decompile.Decompile(img)
		if err != nil {
			t.Fatalf("seed %d: %v", p.Seed, err)
		}
		f := dec.Func("kernel")
		dopt.Optimize(f)
		arg := kernelArg(t, p.Source)

		st := ir.NewEvalState()
		st.Regs[ir.RegSP] = 0x7fff0000
		st.Regs[ir.RegA0] = arg
		for i, bv := range img.Data {
			st.Mem[img.DataBase+uint32(i)] = bv
		}
		if err := ir.Eval(f, st); err != nil {
			t.Fatalf("seed %d: eval: %v", p.Seed, err)
		}

		d, err := synth.Synthesize(synth.FuncRegion(f), img, synth.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: synth: %v", p.Seed, err)
		}
		text, err := vhdl.Emit(d)
		if err != nil {
			t.Fatalf("seed %d: emit: %v", p.Seed, err)
		}
		if err := vhdl.Check(text); err != nil {
			t.Fatalf("seed %d: check: %v", p.Seed, err)
		}
		mem := map[uint32]byte{}
		for i, bv := range img.Data {
			mem[img.DataBase+uint32(i)] = bv
		}
		sim2, err := vhdl.SimulateDesign(text, vhdl.SimConfig{Arg0: arg, Mem: mem})
		if err != nil {
			t.Fatalf("seed %d: rtl sim: %v\n%s\n%s", p.Seed, err, p.Source, text)
		}
		if sim2.Result != st.Regs[ir.RegV0] {
			t.Fatalf("seed %d: RTL = %d, IR = %d\n%s\n%s\n%s",
				p.Seed, sim2.Result, st.Regs[ir.RegV0], p.Source, f, text)
		}
		for i := range img.Data {
			a := img.DataBase + uint32(i)
			if sim2.Mem[a] != st.Mem[a] {
				t.Fatalf("seed %d: RTL mem[0x%x] = %d, IR = %d\n%s",
					p.Seed, a, sim2.Mem[a], st.Mem[a], p.Source)
			}
		}
	}
}
