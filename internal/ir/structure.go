package ir

import (
	"fmt"
	"strings"
)

// Control structure recovery: classify the CFG into high-level constructs
// (pre-test loops, post-test loops, if-then, if-then-else). This implements
// the paper's "control structure recovery" stage; the resulting report
// feeds the decompilation-success experiment, and loop classification
// guides synthesis.

// LoopShape classifies a recovered loop.
type LoopShape int

const (
	LoopOther LoopShape = iota
	LoopPreTest
	LoopPostTest
	LoopSelf // single-block loop
)

func (s LoopShape) String() string {
	switch s {
	case LoopPreTest:
		return "while"
	case LoopPostTest:
		return "do-while"
	case LoopSelf:
		return "self"
	}
	return "other"
}

// IfShape classifies a recovered conditional.
type IfShape int

const (
	IfUnstructured IfShape = iota
	IfThen
	IfThenElse
)

// IfInfo is one recovered conditional.
type IfInfo struct {
	Cond  *Block
	Merge *Block
	Shape IfShape
}

// LoopRecovery pairs a loop with its recovered shape.
type LoopRecovery struct {
	Loop  *Loop
	Shape LoopShape
}

// Structure is the result of control structure recovery on one function.
type Structure struct {
	Loops []LoopRecovery
	Ifs   []IfInfo
	// Switches counts resolved multi-way dispatches (recovered jump
	// tables).
	Switches int
	// UnstructuredBranches counts conditional branches that fit no schema.
	UnstructuredBranches int
}

// RecoveredFraction is the fraction of conditional branches explained by a
// loop or if schema. 1.0 means full recovery.
func (s *Structure) RecoveredFraction() float64 {
	structured := 0
	for _, i := range s.Ifs {
		if i.Shape != IfUnstructured {
			structured++
		}
	}
	// Every classified loop explains its exit branch.
	for _, l := range s.Loops {
		if l.Shape != LoopOther {
			structured++
		}
	}
	total := structured + s.UnstructuredBranches
	if total == 0 {
		return 1.0
	}
	return float64(structured) / float64(total)
}

// Outline renders the recovered control structure as a human-readable
// report — the classic decompiler demonstration that high-level structure
// really was recovered from the binary.
func (s *Structure) Outline(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d blocks, %d instructions\n", f.Name, len(f.Blocks), f.NumInstrs())
	for _, lr := range s.Loops {
		l := lr.Loop
		detail := ""
		for _, iv := range l.IndVars {
			if n, ok := iv.TripCount(); ok {
				detail = fmt.Sprintf(", %d iterations", n)
			}
		}
		indent := strings.Repeat("  ", l.Depth)
		fmt.Fprintf(&b, "%s%s loop @0x%x (depth %d, %d instrs%s)\n",
			indent, lr.Shape, l.Header.Start, l.Depth, l.NumInstrs(), detail)
		for _, iv := range l.IndVars {
			limit := "?"
			if iv.HasLimit {
				limit = fmt.Sprintf("%s %s", iv.LimitCond, iv.Limit)
			}
			init := "?"
			if iv.HasInit {
				init = iv.Init.String()
			}
			fmt.Fprintf(&b, "%s  induction %s: init %s, step %+d, while %s\n",
				indent, iv.Loc, init, iv.Step, limit)
		}
	}
	if s.Switches > 0 {
		fmt.Fprintf(&b, "  %d recovered switch dispatch(es)\n", s.Switches)
	}
	for _, i := range s.Ifs {
		switch i.Shape {
		case IfThen:
			fmt.Fprintf(&b, "  if-then @0x%x (merge 0x%x)\n", i.Cond.Start, i.Merge.Start)
		case IfThenElse:
			fmt.Fprintf(&b, "  if-then-else @0x%x (merge 0x%x)\n", i.Cond.Start, i.Merge.Start)
		default:
			fmt.Fprintf(&b, "  unstructured branch @0x%x\n", i.Cond.Start)
		}
	}
	fmt.Fprintf(&b, "  recovered fraction: %.0f%%\n", 100*s.RecoveredFraction())
	return b.String()
}

// Recover runs control structure recovery over f.
func Recover(f *Func) *Structure {
	st := &Structure{}
	loops := FindLoops(f)
	loopBranch := make(map[int]bool) // blocks whose terminator is a loop test

	for _, l := range loops {
		shape := classifyLoop(l)
		st.Loops = append(st.Loops, LoopRecovery{Loop: l, Shape: shape})
		for _, e := range l.Exits {
			if t := e.From.Terminator(); t != nil && t.Op == Branch {
				loopBranch[e.From.Index] = true
			}
		}
		if t := l.Latch.Terminator(); t != nil && t.Op == Branch {
			loopBranch[l.Latch.Index] = true
		}
	}

	ipdom := postDominators(f)
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t != nil && t.Op == IJump && t.Table != nil {
			st.Switches++
			continue
		}
		if t == nil || t.Op != Branch || loopBranch[b.Index] {
			continue
		}
		info := classifyIf(f, b, ipdom)
		st.Ifs = append(st.Ifs, info)
		if info.Shape == IfUnstructured {
			st.UnstructuredBranches++
		}
	}
	return st
}

func classifyLoop(l *Loop) LoopShape {
	if len(l.Blocks) == 1 {
		return LoopSelf
	}
	latchT := l.Latch.Terminator()
	latchExits := false
	for _, e := range l.Exits {
		if e.From == l.Latch {
			latchExits = true
		}
	}
	if latchT != nil && latchT.Op == Branch && latchExits {
		return LoopPostTest
	}
	headerT := l.Header.Terminator()
	headerExits := false
	for _, e := range l.Exits {
		if e.From == l.Header {
			headerExits = true
		}
	}
	if headerT != nil && headerT.Op == Branch && headerExits {
		return LoopPreTest
	}
	return LoopOther
}

func classifyIf(f *Func, b *Block, ipdom []int) IfInfo {
	info := IfInfo{Cond: b}
	if len(b.Succs) != 2 {
		return info
	}
	m := ipdom[b.Index]
	if m < 0 {
		return info
	}
	merge := f.Blocks[m]
	info.Merge = merge
	t, e := b.Succs[0], b.Succs[1]
	if t == merge || e == merge {
		info.Shape = IfThen
		return info
	}
	if postDominated(ipdom, t.Index, m) && postDominated(ipdom, e.Index, m) {
		info.Shape = IfThenElse
		return info
	}
	return info
}

// postDominated reports whether block m appears on x's ipdom chain, i.e.
// every path from x to the exit passes through m.
func postDominated(ipdom []int, x, m int) bool {
	for i := 0; x >= 0 && i < len(ipdom); i++ {
		if x == m {
			return true
		}
		x = ipdom[x]
	}
	return false
}

// postDominators computes immediate postdominators via the iterative
// algorithm on the reversed CFG with a virtual exit. Returns -1 where
// undefined. The virtual exit is not represented; blocks whose only
// postdominator is the exit get -1.
func postDominators(f *Func) []int {
	n := len(f.Blocks)
	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	if n == 0 {
		return ipdom
	}
	const exit = -2 // virtual exit marker inside the lattice

	// Postorder over the reversed graph starting from all exit blocks.
	// Simpler formulation: iterate to fixpoint over "pdom sets" encoded
	// as idom-style trees rooted at the virtual exit.
	// Order blocks by reverse of a forward RPO for fast convergence.
	rpo, _ := reversePostorder(f)

	// pd[i] is either exit, -1 (unknown), or a block index.
	pd := make([]int, n)
	for i := range pd {
		pd[i] = -1
	}
	isExit := func(b *Block) bool {
		t := b.Terminator()
		return len(b.Succs) == 0 || (t != nil && (t.Op == Ret || t.Op == Halt))
	}
	for _, b := range f.Blocks {
		if isExit(b) {
			pd[b.Index] = exit
		}
	}

	// depth of node in current pdom tree, exit at depth 0.
	depth := func(x int) int {
		d := 0
		for x != exit {
			if x < 0 {
				return 1 << 30
			}
			x = pd[x]
			d++
			if d > n+1 {
				return 1 << 30
			}
		}
		return d
	}
	intersect := func(a, b int) int {
		da, db := depth(a), depth(b)
		for a != b {
			for da > db {
				a = pd[a]
				da--
			}
			for db > da {
				b = pd[b]
				db--
			}
			if a == b {
				break
			}
			a, b = pd[a], pd[b]
			da, db = depth(a), depth(b)
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Process in postorder of the forward graph (≈ RPO of reverse).
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			if isExit(b) {
				continue
			}
			newPd := -1
			for _, s := range b.Succs {
				if pd[s.Index] == -1 && !isExit(s) {
					continue
				}
				cand := s.Index
				if newPd == -1 {
					newPd = cand
				} else {
					newPd = intersect(newPd, cand)
				}
			}
			if newPd != -1 && pd[b.Index] != newPd {
				pd[b.Index] = newPd
				changed = true
			}
		}
	}
	for i := range ipdom {
		if pd[i] >= 0 {
			ipdom[i] = pd[i]
		}
	}
	return ipdom
}
