package ir

import "fmt"

// EvalState is the machine state for the IR interpreter. The interpreter
// exists to validate transformations: a decompiler pass is semantics-
// preserving iff evaluation before and after yields the same state.
type EvalState struct {
	Regs     map[Loc]int32
	Mem      map[uint32]byte
	MaxSteps int
	Steps    int
}

// NewEvalState returns an empty state with a generous step budget.
func NewEvalState() *EvalState {
	return &EvalState{
		Regs:     make(map[Loc]int32),
		Mem:      make(map[uint32]byte),
		MaxSteps: 10_000_000,
	}
}

// WriteWord stores a little-endian word in interpreter memory.
func (st *EvalState) WriteWord(addr uint32, v int32) {
	for i := uint32(0); i < 4; i++ {
		st.Mem[addr+i] = byte(uint32(v) >> (8 * i))
	}
}

// ReadWord loads a little-endian word from interpreter memory.
func (st *EvalState) ReadWord(addr uint32) int32 {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(st.Mem[addr+i]) << (8 * i)
	}
	return int32(v)
}

func (st *EvalState) arg(a Arg) int32 {
	if a.IsConst {
		return a.Val
	}
	if a.Loc == RegZero {
		return 0
	}
	return st.Regs[a.Loc]
}

// Eval interprets the function until Ret or Halt. Calls are unsupported
// (kernels selected for hardware never contain them in this system) and
// raise an error, as do indirect jumps.
func Eval(f *Func, st *EvalState) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: empty function")
	}
	b := f.Blocks[0]
	for {
		next := (*Block)(nil)
		jumped := false
		for i := range b.Instrs {
			in := &b.Instrs[i]
			st.Steps++
			if st.Steps > st.MaxSteps {
				return fmt.Errorf("ir: step limit exceeded in %s", f.Name)
			}
			switch {
			case in.Op == Nop:
			case in.Op.IsBinary():
				v, ok := evalBinaryIR(in.Op, st.arg(in.A), st.arg(in.B))
				if !ok {
					v = 0 // division by zero: defined as 0 for evaluation
				}
				if in.Dst != RegZero {
					st.Regs[in.Dst] = v
				}
			case in.Op == Move:
				if in.Dst != RegZero {
					st.Regs[in.Dst] = st.arg(in.A)
				}
			case in.Op == Load:
				addr := uint32(st.arg(in.A)) + uint32(in.Off)
				var v uint32
				for k := 0; k < in.Width; k++ {
					v |= uint32(st.Mem[addr+uint32(k)]) << (8 * k)
				}
				res := int32(v)
				if in.Signed {
					switch in.Width {
					case 1:
						res = int32(int8(v))
					case 2:
						res = int32(int16(v))
					}
				}
				if in.Dst != RegZero {
					st.Regs[in.Dst] = res
				}
			case in.Op == Store:
				addr := uint32(st.arg(in.B)) + uint32(in.Off)
				v := uint32(st.arg(in.A))
				for k := 0; k < in.Width; k++ {
					st.Mem[addr+uint32(k)] = byte(v >> (8 * k))
				}
			case in.Op == Branch:
				if in.Cond.Eval(st.arg(in.A), st.arg(in.B)) {
					t := f.BlockAt(in.Target)
					if t == nil {
						return fmt.Errorf("ir: branch target 0x%x has no block", in.Target)
					}
					next, jumped = t, true
				}
			case in.Op == Jump:
				t := f.BlockAt(in.Target)
				if t == nil {
					return fmt.Errorf("ir: jump target 0x%x has no block", in.Target)
				}
				next, jumped = t, true
			case in.Op == Ret || in.Op == Halt:
				return nil
			case in.Op == Call:
				return fmt.Errorf("ir: cannot evaluate call at 0x%x", in.Addr)
			case in.Op == IJump:
				if in.Table == nil {
					return fmt.Errorf("ir: cannot evaluate unresolved indirect jump at 0x%x", in.Addr)
				}
				t := f.BlockAt(uint32(st.arg(in.A)))
				if t == nil {
					return fmt.Errorf("ir: indirect jump to 0x%x has no block", uint32(st.arg(in.A)))
				}
				next, jumped = t, true
			default:
				return fmt.Errorf("ir: cannot evaluate %v", in)
			}
			if jumped {
				break
			}
		}
		if !jumped {
			if b.Index+1 >= len(f.Blocks) {
				return fmt.Errorf("ir: fell off the end of %s", f.Name)
			}
			next = f.Blocks[b.Index+1]
		}
		b = next
	}
}

// evalBinaryIR mirrors the constant folder; exported logic kept in one
// place would create an import cycle with dopt, so the small table is
// duplicated here intentionally.
func evalBinaryIR(op Op, a, b int32) (int32, bool) {
	ua, ub := uint32(a), uint32(b)
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return a * b, true
	case MulH:
		return int32(uint64(int64(a)*int64(b)) >> 32), true
	case MulHU:
		return int32(uint64(ua) * uint64(ub) >> 32), true
	case Div:
		if b == 0 {
			return 0, false
		}
		if a == -1<<31 && b == -1 {
			return a, true
		}
		return a / b, true
	case DivU:
		if b == 0 {
			return 0, false
		}
		return int32(ua / ub), true
	case Rem:
		if b == 0 {
			return 0, false
		}
		if a == -1<<31 && b == -1 {
			return 0, true
		}
		return a % b, true
	case RemU:
		if b == 0 {
			return 0, false
		}
		return int32(ua % ub), true
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Shl:
		return a << (ub & 31), true
	case ShrL:
		return int32(ua >> (ub & 31)), true
	case ShrA:
		return a >> (ub & 31), true
	case SetLT:
		if a < b {
			return 1, true
		}
		return 0, true
	case SetLTU:
		if ua < ub {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
