package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalFunc builds a one-block function computing a single op and returns
// the result register value.
func evalOne(t *testing.T, op Op, a, b int32) int32 {
	t.Helper()
	f := &Func{Blocks: []*Block{{
		Instrs: []Instr{
			{Op: op, Dst: RegV0, A: C(a), B: C(b)},
			{Op: Ret},
		},
	}}}
	f.Reindex()
	st := NewEvalState()
	if err := Eval(f, st); err != nil {
		t.Fatal(err)
	}
	return st.Regs[RegV0]
}

func TestEvalBinaryOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int32
		want int32
	}{
		{Add, 3, 4, 7},
		{Sub, 3, 4, -1},
		{Mul, -3, 4, -12},
		{MulH, 1 << 30, 1 << 30, 1 << 28},
		{Div, -17, 5, -3},
		{DivU, -1, 2, 0x7fffffff},
		{Rem, -17, 5, -2},
		{RemU, 17, 5, 2},
		{And, 12, 10, 8},
		{Or, 12, 10, 14},
		{Xor, 12, 10, 6},
		{Shl, 1, 35, 8}, // masked shift
		{ShrL, -16, 28, 15},
		{ShrA, -16, 2, -4},
		{SetLT, -1, 0, 1},
		{SetLTU, -1, 0, 0},
		{Div, 5, 0, 0}, // division by zero defined as 0
	}
	for _, c := range cases {
		if got := evalOne(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalMemoryRoundTrip(t *testing.T) {
	f := &Func{Blocks: []*Block{{
		Instrs: []Instr{
			{Op: Move, Dst: 40, A: C(0x2000)},
			{Op: Store, A: C(-7), B: L(40), Off: 4, Width: 4},
			{Op: Load, Dst: RegV0, A: L(40), Off: 4, Width: 4},
			{Op: Ret},
		},
	}}}
	f.Reindex()
	st := NewEvalState()
	if err := Eval(f, st); err != nil {
		t.Fatal(err)
	}
	if st.Regs[RegV0] != -7 {
		t.Errorf("store/load round trip = %d", st.Regs[RegV0])
	}
}

func TestEvalNarrowLoads(t *testing.T) {
	mk := func(width int, signed bool) int32 {
		f := &Func{Blocks: []*Block{{
			Instrs: []Instr{
				{Op: Move, Dst: 40, A: C(0x3000)},
				{Op: Store, A: C(0x8FF0), B: L(40), Width: 4},
				{Op: Load, Dst: RegV0, A: L(40), Width: width, Signed: signed},
				{Op: Ret},
			},
		}}}
		f.Reindex()
		st := NewEvalState()
		if err := Eval(f, st); err != nil {
			t.Fatal(err)
		}
		return st.Regs[RegV0]
	}
	if got := mk(1, false); got != 0xF0 {
		t.Errorf("load1u = %#x", got)
	}
	if got := mk(1, true); got != -16 {
		t.Errorf("load1s = %d", got)
	}
	if got := mk(2, false); got != 0x8FF0 {
		t.Errorf("load2u = %#x", got)
	}
	if got := mk(2, true); got != -28688 { // 0x8FF0 sign-extended
		t.Errorf("load2s = %d", got)
	}
}

func TestEvalControlFlow(t *testing.T) {
	// Count down from 5: two-block loop.
	b0 := &Block{Start: 0x100, Instrs: []Instr{
		{Op: Move, Dst: 40, A: C(5)},
		{Op: Move, Dst: RegV0, A: C(0)},
	}}
	b1 := &Block{Start: 0x110, Instrs: []Instr{
		{Op: Add, Dst: RegV0, A: L(RegV0), B: L(40)},
		{Op: Add, Dst: 40, A: L(40), B: C(-1)},
		{Op: Branch, Cond: CondGT, A: L(40), B: C(0), Target: 0x110},
	}}
	b2 := &Block{Start: 0x120, Instrs: []Instr{{Op: Ret}}}
	f := &Func{Blocks: []*Block{b0, b1, b2}}
	f.Reindex()
	st := NewEvalState()
	if err := Eval(f, st); err != nil {
		t.Fatal(err)
	}
	if st.Regs[RegV0] != 15 {
		t.Errorf("sum 5..1 = %d, want 15", st.Regs[RegV0])
	}
}

func TestEvalErrors(t *testing.T) {
	// Step limit.
	f := &Func{Blocks: []*Block{{Start: 0x100, Instrs: []Instr{
		{Op: Jump, Target: 0x100},
	}}}}
	f.Reindex()
	st := NewEvalState()
	st.MaxSteps = 100
	if err := Eval(f, st); err == nil {
		t.Error("infinite loop did not hit the step limit")
	}
	// Calls are not evaluable.
	f2 := &Func{Blocks: []*Block{{Instrs: []Instr{{Op: Call, Target: 0x100}}}}}
	f2.Reindex()
	if err := Eval(f2, NewEvalState()); err == nil {
		t.Error("call evaluated")
	}
	// Fell off the end.
	f3 := &Func{Blocks: []*Block{{Instrs: []Instr{{Op: Nop}}}}}
	f3.Reindex()
	if err := Eval(f3, NewEvalState()); err == nil {
		t.Error("fallthrough off the end succeeded")
	}
	// Empty function.
	if err := Eval(&Func{}, NewEvalState()); err == nil {
		t.Error("empty function evaluated")
	}
}

func TestEvalWriteReadWordHelpers(t *testing.T) {
	st := NewEvalState()
	st.WriteWord(0x4000, -123456)
	if got := st.ReadWord(0x4000); got != -123456 {
		t.Errorf("ReadWord = %d", got)
	}
}

// TestEvalMatchesConstantFolder cross-checks the interpreter's binary
// operators against the decompiler's constant folder on random inputs:
// the two implementations must agree everywhere, or constant propagation
// would change program behaviour.
func TestEvalMatchesConstantFolder(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ops := []Op{Add, Sub, Mul, MulH, MulHU, Div, DivU, Rem, RemU,
		And, Or, Xor, Shl, ShrL, ShrA, SetLT, SetLTU}
	f := func() bool {
		op := ops[r.Intn(len(ops))]
		a, b := int32(r.Uint32()), int32(r.Uint32())
		if r.Intn(4) == 0 {
			b = int32(r.Intn(5)) - 2 // exercise small/zero divisors
		}
		got := evalOne(t, op, a, b)
		want, ok := evalBinaryIR(op, a, b)
		if !ok {
			want = 0 // interpreter defines division by zero as 0
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
