// Package ir defines the instruction-set independent representation the
// decompiler lifts binaries into, plus the CFG/dominator/loop analyses that
// implement the paper's "CDFG creation" and "control structure recovery"
// stages. Downstream passes (internal/dopt) rewrite this IR; behavioral
// synthesis (internal/synth) consumes it.
//
// The IR is location-based rather than SSA: locations 0..31 are the lifted
// MIPS registers, 32/33 are HI/LO, and decompiler passes may allocate fresh
// virtual locations above those. Explicitness about machine registers is
// the point — the input is a binary, and the decompiler's job is to
// recover structure from exactly this level.
package ir

import (
	"fmt"
	"strings"
)

// Loc is a storage location: a lifted machine register or a virtual
// location introduced by a decompiler pass.
type Loc int32

// Machine locations.
const (
	LocHI Loc = 32
	LocLO Loc = 33
	// FirstVirtual is the first location id available to passes.
	FirstVirtual Loc = 34
)

// Well-known lifted register locations (MIPS numbering).
const (
	RegZero Loc = 0
	RegSP   Loc = 29
	RegFP   Loc = 30
	RegRA   Loc = 31
	RegV0   Loc = 2
	RegA0   Loc = 4
)

func (l Loc) String() string {
	switch {
	case l < 32:
		return fmt.Sprintf("r%d", int32(l))
	case l == LocHI:
		return "hi"
	case l == LocLO:
		return "lo"
	default:
		return fmt.Sprintf("v%d", int32(l))
	}
}

// Arg is an instruction operand: a location or a constant.
type Arg struct {
	IsConst bool
	Loc     Loc
	Val     int32
}

// L makes a location argument.
func L(l Loc) Arg { return Arg{Loc: l} }

// C makes a constant argument.
func C(v int32) Arg { return Arg{IsConst: true, Val: v} }

func (a Arg) String() string {
	if a.IsConst {
		return fmt.Sprintf("%d", a.Val)
	}
	return a.Loc.String()
}

// Op enumerates IR operations.
type Op int

const (
	Nop Op = iota

	// Dst = A op B.
	Add
	Sub
	Mul  // full 64-bit product semantics live in MulHi; Mul is low 32
	MulH // high 32 bits of signed product
	MulHU
	Div
	DivU
	Rem
	RemU
	And
	Or
	Xor
	Shl
	ShrL
	ShrA
	SetLT  // Dst = (A < B) signed
	SetLTU // Dst = (A <u B)

	// Dst = A.
	Move

	// Memory. Dst = mem[A+Off] / mem[B+Off] = A. Width 1, 2, or 4;
	// Signed selects sign extension on narrow loads.
	Load
	Store

	// Control. Branch compares A Cond B and jumps to Target on success.
	Branch
	Jump  // unconditional, Target
	IJump // indirect, target address in A — defeats CDFG recovery
	Call  // Target is callee address
	Ret
	Halt
)

var opNames = map[Op]string{
	Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", MulH: "mulh",
	MulHU: "mulhu", Div: "div", DivU: "divu", Rem: "rem", RemU: "remu",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", ShrL: "shrl", ShrA: "shra",
	SetLT: "setlt", SetLTU: "setltu", Move: "mov", Load: "load",
	Store: "store", Branch: "br", Jump: "jmp", IJump: "ijmp", Call: "call",
	Ret: "ret", Halt: "halt",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", int(o))
}

// IsBinary reports whether the op computes Dst from A and B.
func (o Op) IsBinary() bool {
	switch o {
	case Add, Sub, Mul, MulH, MulHU, Div, DivU, Rem, RemU,
		And, Or, Xor, Shl, ShrL, ShrA, SetLT, SetLTU:
		return true
	}
	return false
}

// Commutative reports whether swapping A and B preserves the result.
func (o Op) Commutative() bool {
	switch o {
	case Add, Mul, MulH, MulHU, And, Or, Xor:
		return true
	}
	return false
}

// Cond is a branch condition.
type Cond int

const (
	CondNone Cond = iota
	CondEQ
	CondNE
	CondLT
	CondGE
	CondLE
	CondGT
	CondLTU
	CondGEU
)

var condNames = map[Cond]string{
	CondEQ: "==", CondNE: "!=", CondLT: "<", CondGE: ">=",
	CondLE: "<=", CondGT: ">", CondLTU: "<u", CondGEU: ">=u",
}

func (c Cond) String() string {
	if s, ok := condNames[c]; ok {
		return s
	}
	return "?"
}

// Negate returns the condition with inverted truth.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondLTU:
		return CondGEU
	case CondGEU:
		return CondLTU
	}
	return CondNone
}

// Eval evaluates the condition over two 32-bit values.
func (c Cond) Eval(a, b int32) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondGE:
		return a >= b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondLTU:
		return uint32(a) < uint32(b)
	case CondGEU:
		return uint32(a) >= uint32(b)
	}
	return false
}

// Instr is one IR instruction.
type Instr struct {
	Op     Op
	Dst    Loc
	A, B   Arg
	Off    int32 // load/store displacement
	Width  int   // load/store width in bytes
	Signed bool  // sign-extend narrow loads
	Cond   Cond  // Branch condition
	Target uint32
	Addr   uint32 // original program counter (provenance)
	// WidthBits, when nonzero, is the operator bit-width assigned by
	// operator size reduction; 0 means the full 32 bits.
	WidthBits int
	// Table holds the resolved target addresses of an IJump whose jump
	// table was recovered from the data section (the optional extension
	// to the paper's failing indirect-jump cases). A nil Table means the
	// indirect jump is unresolved and defeats CDFG recovery.
	Table []uint32
}

// HasDst reports whether the instruction writes Dst.
func (in *Instr) HasDst() bool {
	if in.Op.IsBinary() {
		return true
	}
	switch in.Op {
	case Move, Load:
		return true
	}
	return false
}

// Uses returns the locations the instruction reads.
func (in *Instr) Uses() []Loc {
	return in.AppendUses(nil)
}

// AppendUses appends the locations the instruction reads to dst and
// returns the extended slice. An instruction reads at most two
// locations, so a caller-held buffer of capacity two makes the hot
// analysis loops allocation-free.
func (in *Instr) AppendUses(dst []Loc) []Loc {
	add := func(a Arg) {
		if !a.IsConst {
			dst = append(dst, a.Loc)
		}
	}
	switch {
	case in.Op.IsBinary():
		add(in.A)
		add(in.B)
	case in.Op == Move || in.Op == IJump:
		add(in.A)
	case in.Op == Load:
		add(in.A)
	case in.Op == Store:
		add(in.A)
		add(in.B)
	case in.Op == Branch:
		add(in.A)
		add(in.B)
	}
	return dst
}

func (in *Instr) String() string {
	switch {
	case in.Op.IsBinary():
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	case in.Op == Move:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case in.Op == Load:
		sx := "u"
		if in.Signed {
			sx = "s"
		}
		return fmt.Sprintf("%s = load%d%s [%s%+d]", in.Dst, in.Width, sx, in.A, in.Off)
	case in.Op == Store:
		return fmt.Sprintf("store%d [%s%+d] = %s", in.Width, in.B, in.Off, in.A)
	case in.Op == Branch:
		return fmt.Sprintf("br %s %s %s -> 0x%x", in.A, in.Cond, in.B, in.Target)
	case in.Op == Jump:
		return fmt.Sprintf("jmp 0x%x", in.Target)
	case in.Op == IJump:
		return fmt.Sprintf("ijmp *%s", in.A)
	case in.Op == Call:
		return fmt.Sprintf("call 0x%x", in.Target)
	case in.Op == Ret:
		return "ret"
	case in.Op == Halt:
		return "halt"
	}
	return in.Op.String()
}

// Block is a basic block.
type Block struct {
	// Index is the block's position in Func.Blocks.
	Index int
	// Start is the address of the first lifted instruction.
	Start  uint32
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block
}

// Terminator returns the last instruction, or nil for an empty block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Func is a decompiled function: a CFG over lifted instructions.
type Func struct {
	Name   string
	Entry  uint32 // entry address
	Blocks []*Block
	// NextLoc is the next free virtual location id.
	NextLoc Loc
}

// NewLoc allocates a fresh virtual location.
func (f *Func) NewLoc() Loc {
	if f.NextLoc < FirstVirtual {
		f.NextLoc = FirstVirtual
	}
	l := f.NextLoc
	f.NextLoc++
	return l
}

// BlockAt returns the block starting at the given address.
func (f *Func) BlockAt(addr uint32) *Block {
	for _, b := range f.Blocks {
		if b.Start == addr {
			return b
		}
	}
	return nil
}

// Reindex renumbers Block.Index after structural edits.
func (f *Func) Reindex() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// NumInstrs counts instructions across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s @0x%x\n", f.Name, f.Entry)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d (0x%x):", b.Index, b.Start)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteString("\n")
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", &b.Instrs[i])
		}
	}
	return sb.String()
}
