package ir

import (
	"strings"
	"testing"
)

// link wires blocks into a Func with Succs/Preds derived from succ lists.
func link(blocks []*Block, succs map[int][]int) *Func {
	f := &Func{Blocks: blocks}
	for i, b := range blocks {
		b.Index = i
		b.Start = uint32(0x1000 + 16*i)
	}
	for i, ss := range succs {
		for _, s := range ss {
			blocks[i].Succs = append(blocks[i].Succs, blocks[s])
			blocks[s].Preds = append(blocks[s].Preds, blocks[i])
		}
	}
	return f
}

func nBlocks(n int) []*Block {
	out := make([]*Block, n)
	for i := range out {
		out[i] = &Block{}
	}
	return out
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 2; 1 -> 3; 2 -> 3
	f := link(nBlocks(4), map[int][]int{0: {1, 2}, 1: {3}, 2: {3}})
	idom := Dominators(f)
	want := []int{0, 0, 0, 0}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], w)
		}
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 1, 3) {
		t.Error("Dominates wrong on diamond")
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 1, 3
	f := link(nBlocks(4), map[int][]int{0: {1}, 1: {2}, 2: {1, 3}})
	idom := Dominators(f)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 2 {
		t.Errorf("idom = %v", idom)
	}
}

func TestFindLoopsSimple(t *testing.T) {
	// Bottom-test loop: 0 -> 1(body); 1 -> 2(latch/test); 2 -> 1, 3
	blocks := nBlocks(4)
	blocks[2].Instrs = []Instr{{Op: Branch, Cond: CondLT, A: L(8), B: C(10), Target: 0x1010}}
	f := link(blocks, map[int][]int{0: {1}, 1: {2}, 2: {1, 3}})
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header.Index != 1 || l.Latch.Index != 2 {
		t.Errorf("header b%d latch b%d", l.Header.Index, l.Latch.Index)
	}
	if len(l.Blocks) != 2 || !l.Contains(1) || !l.Contains(2) {
		t.Errorf("body = %v", l.Blocks)
	}
	if len(l.Exits) != 1 || l.Exits[0].To.Index != 3 {
		t.Errorf("exits = %+v", l.Exits)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d", l.Depth)
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 2(self), 3; 3 -> 1, 4
	f := link(nBlocks(5), map[int][]int{0: {1}, 1: {2}, 2: {2, 3}, 3: {1, 4}})
	loops := FindLoops(f)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var inner, outer *Loop
	for _, l := range loops {
		if l.Header.Index == 2 {
			inner = l
		} else {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing inner or outer loop")
	}
	if inner.Parent != outer {
		t.Error("inner.Parent != outer")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths: inner %d outer %d", inner.Depth, outer.Depth)
	}
}

func TestInductionVariable(t *testing.T) {
	// b0: v40 = 0; b1(header): body w/ v40 += 1; latch branch v40 < 10.
	blocks := nBlocks(3)
	iv := Loc(40)
	blocks[0].Instrs = []Instr{{Op: Move, Dst: iv, A: C(0)}}
	blocks[1].Instrs = []Instr{
		{Op: Add, Dst: iv, A: L(iv), B: C(1)},
		{Op: Branch, Cond: CondLT, A: L(iv), B: C(10), Target: 0x1010},
	}
	f := link(blocks, map[int][]int{0: {1}, 1: {1, 2}})
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops", len(loops))
	}
	ivs := loops[0].IndVars
	if len(ivs) != 1 {
		t.Fatalf("found %d induction variables, want 1: %+v", len(ivs), ivs)
	}
	v := ivs[0]
	if v.Loc != iv || v.Step != 1 {
		t.Errorf("iv = %+v", v)
	}
	if !v.HasInit || !v.Init.IsConst || v.Init.Val != 0 {
		t.Errorf("init = %+v", v.Init)
	}
	if !v.HasLimit || v.Limit.Val != 10 || v.LimitCond != CondLT {
		t.Errorf("limit = %+v cond %v", v.Limit, v.LimitCond)
	}
	n, ok := v.TripCount()
	if !ok || n != 10 {
		t.Errorf("trip count = %d,%v want 10", n, ok)
	}
}

func TestTripCountVariants(t *testing.T) {
	cases := []struct {
		iv   IndVar
		want int64
		ok   bool
	}{
		{IndVar{Step: 1, Init: C(0), HasInit: true, Limit: C(10), LimitCond: CondLT, HasLimit: true}, 10, true},
		{IndVar{Step: 2, Init: C(0), HasInit: true, Limit: C(10), LimitCond: CondLT, HasLimit: true}, 5, true},
		{IndVar{Step: 1, Init: C(0), HasInit: true, Limit: C(10), LimitCond: CondLE, HasLimit: true}, 11, true},
		{IndVar{Step: -1, Init: C(10), HasInit: true, Limit: C(0), LimitCond: CondGT, HasLimit: true}, 10, true},
		{IndVar{Step: -2, Init: C(10), HasInit: true, Limit: C(0), LimitCond: CondGE, HasLimit: true}, 6, true},
		{IndVar{Step: 1, Init: C(0), HasInit: true, Limit: C(8), LimitCond: CondNE, HasLimit: true}, 8, true},
		{IndVar{Step: 0, Init: C(0), HasInit: true, Limit: C(8), LimitCond: CondLT, HasLimit: true}, 0, false},
		{IndVar{Step: 1, HasLimit: true, Limit: C(8), LimitCond: CondLT}, 0, false},
		{IndVar{Step: 1, Init: L(5), HasInit: true, Limit: C(8), LimitCond: CondLT, HasLimit: true}, 0, false},
	}
	for i, c := range cases {
		n, ok := c.iv.TripCount()
		if ok != c.ok || (ok && n != c.want) {
			t.Errorf("case %d: TripCount = %d,%v want %d,%v", i, n, ok, c.want, c.ok)
		}
	}
}

func TestRecoverShapes(t *testing.T) {
	// Bottom-test loop plus an if-then-else after it.
	blocks := nBlocks(7)
	// b1 latch test
	blocks[2].Instrs = []Instr{{Op: Branch, Cond: CondLT, A: L(8), B: C(4), Target: 0x1010}}
	// b3: if cond
	blocks[3].Instrs = []Instr{{Op: Branch, Cond: CondEQ, A: L(9), B: C(0), Target: 0x1050}}
	blocks[6].Instrs = []Instr{{Op: Ret}}
	// 0->1; 1->2; 2->1,3; 3->4,5; 4->6; 5->6
	f := link(blocks, map[int][]int{0: {1}, 1: {2}, 2: {1, 3}, 3: {4, 5}, 4: {6}, 5: {6}})
	st := Recover(f)
	if len(st.Loops) != 1 || st.Loops[0].Shape != LoopPostTest {
		t.Errorf("loop recovery = %+v", st.Loops)
	}
	if len(st.Ifs) != 1 || st.Ifs[0].Shape != IfThenElse || st.Ifs[0].Merge.Index != 6 {
		t.Errorf("if recovery = %+v", st.Ifs)
	}
	if st.UnstructuredBranches != 0 {
		t.Errorf("unstructured = %d", st.UnstructuredBranches)
	}
	if got := st.RecoveredFraction(); got != 1.0 {
		t.Errorf("recovered fraction = %v", got)
	}
}

func TestRecoverPreTestLoop(t *testing.T) {
	// Top-test: 0->1(header test); 1->2(body),3; 2->1
	blocks := nBlocks(4)
	blocks[1].Instrs = []Instr{{Op: Branch, Cond: CondGE, A: L(8), B: C(4), Target: 0x1030}}
	blocks[3].Instrs = []Instr{{Op: Ret}}
	f := link(blocks, map[int][]int{0: {1}, 1: {2, 3}, 2: {1}})
	st := Recover(f)
	if len(st.Loops) != 1 || st.Loops[0].Shape != LoopPreTest {
		t.Errorf("loop recovery = %+v", st.Loops)
	}
}

func TestRecoverIfThen(t *testing.T) {
	// 0 -> 1, 2; 1 -> 2. Merge is 2.
	blocks := nBlocks(3)
	blocks[0].Instrs = []Instr{{Op: Branch, Cond: CondNE, A: L(8), B: C(0), Target: 0x1020}}
	blocks[2].Instrs = []Instr{{Op: Ret}}
	f := link(blocks, map[int][]int{0: {1, 2}, 1: {2}})
	st := Recover(f)
	if len(st.Ifs) != 1 || st.Ifs[0].Shape != IfThen {
		t.Errorf("if recovery = %+v", st.Ifs)
	}
}

func TestCondHelpers(t *testing.T) {
	for _, c := range []Cond{CondEQ, CondNE, CondLT, CondGE, CondLE, CondGT, CondLTU, CondGEU} {
		n := c.Negate()
		for a := int32(-2); a <= 2; a++ {
			for b := int32(-2); b <= 2; b++ {
				if c.Eval(a, b) == n.Eval(a, b) {
					t.Errorf("%v and its negation agree on (%d,%d)", c, a, b)
				}
			}
		}
	}
}

func TestLiveness(t *testing.T) {
	// b0: v40 = 1; b1: v41 = v40 + 1; ret. v40 live into b1.
	blocks := nBlocks(2)
	blocks[0].Instrs = []Instr{{Op: Move, Dst: 40, A: C(1)}}
	blocks[1].Instrs = []Instr{
		{Op: Add, Dst: 41, A: L(40), B: C(1)},
		{Op: Ret},
	}
	f := link(blocks, map[int][]int{0: {1}})
	liveIn, liveOut := Liveness(f)
	if !liveIn[1][40] {
		t.Error("v40 not live into b1")
	}
	if !liveOut[0][40] {
		t.Error("v40 not live out of b0")
	}
	if liveIn[0][40] {
		t.Error("v40 live into b0 despite being defined there")
	}
	if liveOut[1][41] {
		t.Error("v41 live out of exit block")
	}
}

func TestInstrHelpers(t *testing.T) {
	add := Instr{Op: Add, Dst: 40, A: L(8), B: L(9)}
	if !add.HasDst() || len(add.Uses()) != 2 {
		t.Error("Add helpers wrong")
	}
	st := Instr{Op: Store, A: L(8), B: L(29), Width: 4}
	if st.HasDst() || len(st.Uses()) != 2 {
		t.Error("Store helpers wrong")
	}
	br := Instr{Op: Branch, A: L(8), B: C(0), Cond: CondEQ}
	if br.HasDst() || len(br.Uses()) != 1 {
		t.Error("Branch helpers wrong")
	}
	if !Add.Commutative() || Sub.Commutative() || !Xor.Commutative() {
		t.Error("Commutative wrong")
	}
	if !Shl.IsBinary() || Move.IsBinary() || Load.IsBinary() {
		t.Error("IsBinary wrong")
	}
}

func TestFuncHelpers(t *testing.T) {
	f := &Func{}
	l1 := f.NewLoc()
	l2 := f.NewLoc()
	if l1 < FirstVirtual || l2 != l1+1 {
		t.Errorf("NewLoc: %d %d", l1, l2)
	}
	b := &Block{Start: 0x2000, Instrs: []Instr{{Op: Ret}}}
	f.Blocks = append(f.Blocks, b)
	f.Reindex()
	if f.BlockAt(0x2000) != b || f.BlockAt(0x3000) != nil {
		t.Error("BlockAt wrong")
	}
	if f.NumInstrs() != 1 {
		t.Error("NumInstrs wrong")
	}
}

func TestStructureOutline(t *testing.T) {
	blocks := nBlocks(3)
	iv := Loc(40)
	blocks[0].Instrs = []Instr{{Op: Move, Dst: iv, A: C(0)}}
	blocks[1].Instrs = []Instr{
		{Op: Add, Dst: iv, A: L(iv), B: C(1)},
		{Op: Branch, Cond: CondLT, A: L(iv), B: C(10), Target: 0x1010},
	}
	f := link(blocks, map[int][]int{0: {1}, 1: {1, 2}})
	f.Name = "demo"
	st := Recover(f)
	out := st.Outline(f)
	for _, want := range []string{"demo:", "loop @0x1010", "10 iterations", "induction v40", "recovered fraction: 100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("outline missing %q:\n%s", want, out)
		}
	}
}
