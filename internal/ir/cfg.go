package ir

import "sort"

// Dominators computes the immediate dominator of every block using the
// Cooper/Harvey/Kennedy iterative algorithm. idom[entry] == entry.
func Dominators(f *Func) []int {
	n := len(f.Blocks)
	order, postIdx := reversePostorder(f)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	entry := f.Blocks[0].Index
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for postIdx[a] < postIdx[b] {
				a = idom[a]
			}
			for postIdx[b] < postIdx[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b.Index == entry {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if idom[p.Index] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// reversePostorder returns blocks in reverse postorder from the entry and
// each block's postorder index.
func reversePostorder(f *Func) ([]*Block, []int) {
	n := len(f.Blocks)
	seen := make([]bool, n)
	postIdx := make([]int, n)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		postIdx[b.Index] = len(post)
		post = append(post, b)
	}
	if n > 0 {
		dfs(f.Blocks[0])
	}
	rpo := make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	return rpo, postIdx
}

// Dominates reports whether a dominates b under the idom tree.
func Dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == idom[b] || idom[b] < 0 {
			return false
		}
		b = idom[b]
	}
}

// Loop is one natural loop.
type Loop struct {
	Header *Block
	Latch  *Block // source of the back edge (one per back edge; merged)
	Blocks map[int]*Block
	// Exits are edges leaving the loop: (from inside, to outside).
	Exits []LoopEdge
	// Depth is the nesting depth (1 = outermost).
	Depth int
	// Parent is the enclosing loop, if any.
	Parent *Loop
	// IndVars are recovered induction variables.
	IndVars []IndVar
}

// LoopEdge is a CFG edge.
type LoopEdge struct{ From, To *Block }

// Contains reports whether the loop body includes block index i.
func (l *Loop) Contains(i int) bool { _, ok := l.Blocks[i]; return ok }

// NumInstrs counts the instructions in the loop body.
func (l *Loop) NumInstrs() int {
	n := 0
	for _, b := range l.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// FindLoops detects natural loops from back edges and computes nesting.
// Blocks unreachable from the entry are ignored.
func FindLoops(f *Func) []*Loop {
	idom := Dominators(f)
	byHeader := make(map[int]*Loop)
	var loops []*Loop

	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if idom[b.Index] >= 0 && Dominates(idom, s.Index, b.Index) {
				// Back edge b -> s: natural loop with header s.
				l, ok := byHeader[s.Index]
				if !ok {
					l = &Loop{Header: s, Latch: b, Blocks: map[int]*Block{s.Index: s}}
					byHeader[s.Index] = l
					loops = append(loops, l)
				}
				// Collect body: reverse reachability from latch to header.
				stack := []*Block{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Contains(x.Index) {
						continue
					}
					l.Blocks[x.Index] = x
					for _, p := range x.Preds {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Exits, nesting, depth.
	for _, l := range loops {
		for _, b := range l.Blocks {
			for _, s := range b.Succs {
				if !l.Contains(s.Index) {
					l.Exits = append(l.Exits, LoopEdge{From: b, To: s})
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool {
			if l.Exits[i].From.Index != l.Exits[j].From.Index {
				return l.Exits[i].From.Index < l.Exits[j].From.Index
			}
			return l.Exits[i].To.Index < l.Exits[j].To.Index
		})
	}
	// Parent: the smallest strictly-containing loop.
	for _, l := range loops {
		for _, m := range loops {
			if m == l || !m.Contains(l.Header.Index) || len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header.Start < loops[j].Header.Start })
	for _, l := range loops {
		l.IndVars = findIndVars(l)
	}
	return loops
}

// IndVar is a recovered basic induction variable: a location updated once
// per iteration by a constant step, with an optional recovered bound.
type IndVar struct {
	Loc  Loc
	Step int32
	// Init is the initial value when recoverable (a constant moved into
	// Loc in a dominating predecessor of the header).
	Init    Arg
	HasInit bool
	// Limit and LimitCond describe the loop-controlling comparison when
	// the exit branch tests this variable against a constant or
	// loop-invariant location.
	Limit     Arg
	LimitCond Cond
	HasLimit  bool
}

// TripCount returns the iteration count when Init, Step, and Limit are all
// constants and the condition is a simple counted-loop test.
func (iv *IndVar) TripCount() (int64, bool) {
	if !iv.HasInit || !iv.HasLimit || !iv.Init.IsConst || !iv.Limit.IsConst || iv.Step == 0 {
		return 0, false
	}
	init, limit, step := int64(iv.Init.Val), int64(iv.Limit.Val), int64(iv.Step)
	switch iv.LimitCond {
	case CondLT, CondLTU:
		if step > 0 && limit > init {
			return (limit - init + step - 1) / step, true
		}
	case CondLE:
		if step > 0 && limit >= init {
			return (limit - init + step) / step, true
		}
	case CondGT:
		if step < 0 && limit < init {
			return (init - limit - step - 1) / -step, true
		}
	case CondGE:
		if step < 0 && limit <= init {
			return (init - limit - step) / -step, true
		}
	case CondNE:
		if step != 0 && (limit-init)%step == 0 && (limit-init)/step > 0 {
			return (limit - init) / step, true
		}
	}
	return 0, false
}

// findIndVars recovers basic induction variables of the loop: locations
// whose only in-loop updates are a single "loc = loc + c".
func findIndVars(l *Loop) []IndVar {
	updates := make(map[Loc][]*Instr)
	writes := make(map[Loc]int)
	for _, b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.HasDst() {
				continue
			}
			writes[in.Dst]++
			if in.Op == Add &&
				((!in.A.IsConst && in.A.Loc == in.Dst && in.B.IsConst) ||
					(!in.B.IsConst && in.B.Loc == in.Dst && in.A.IsConst)) {
				updates[in.Dst] = append(updates[in.Dst], in)
			}
			if in.Op == Sub && !in.A.IsConst && in.A.Loc == in.Dst && in.B.IsConst {
				updates[in.Dst] = append(updates[in.Dst], in)
			}
		}
	}
	var out []IndVar
	for loc, ups := range updates {
		if writes[loc] != 1 || len(ups) != 1 {
			continue
		}
		in := ups[0]
		var step int32
		switch {
		case in.Op == Add && in.B.IsConst:
			step = in.B.Val
		case in.Op == Add && in.A.IsConst:
			step = in.A.Val
		case in.Op == Sub:
			step = -in.B.Val
		}
		iv := IndVar{Loc: loc, Step: step}
		findIVBounds(l, &iv)
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loc < out[j].Loc })
	return out
}

// findIVBounds fills Init and Limit for an induction variable by scanning
// the header's out-of-loop predecessors and the loop's exit branches.
func findIVBounds(l *Loop, iv *IndVar) {
	// Init: last write in a predecessor of the header outside the loop.
	for _, p := range l.Header.Preds {
		if l.Contains(p.Index) {
			continue
		}
		for i := len(p.Instrs) - 1; i >= 0; i-- {
			in := &p.Instrs[i]
			if in.HasDst() && in.Dst == iv.Loc {
				if in.Op == Move {
					iv.Init = in.A
					iv.HasInit = true
				}
				break
			}
		}
	}
	// Limit: an exit branch comparing the variable, either directly or
	// through the RISC set-less-than idiom ("r1 = setlt i, n; br r1 != 0").
	for _, e := range l.Exits {
		t := e.From.Terminator()
		if t == nil || t.Op != Branch {
			continue
		}
		cmpA, cmpB, cmpCond, ok := branchComparison(e.From, t)
		if !ok {
			continue
		}
		var other Arg
		var cond Cond
		switch {
		case !cmpA.IsConst && cmpA.Loc == iv.Loc:
			other, cond = cmpB, cmpCond
		case !cmpB.IsConst && cmpB.Loc == iv.Loc:
			other, cond = cmpA, swapCond(cmpCond)
			if cond == CondNone {
				continue
			}
		default:
			continue
		}
		// The branch condition as written targets the exit or the stay
		// edge; normalize to the "stay in loop" condition.
		stays := l.Contains(blockOfTarget(e.From, t).Index)
		if !stays {
			cond = cond.Negate()
		}
		iv.Limit = other
		iv.LimitCond = cond
		iv.HasLimit = true
		break
	}
}

// branchComparison resolves the comparison a block's terminating branch
// performs, looking through the RISC "setlt + branch-nonzero" idiom.
// Returns the compared operands and the condition under which the branch
// is taken.
func branchComparison(b *Block, t *Instr) (Arg, Arg, Cond, bool) {
	if t.Op != Branch {
		return Arg{}, Arg{}, CondNone, false
	}
	// Direct comparison.
	if t.Cond != CondEQ && t.Cond != CondNE {
		return t.A, t.B, t.Cond, true
	}
	// br x ==/!= 0 where x = setlt a, b in the same block.
	zeroCmp := t.B.IsConst && t.B.Val == 0 && !t.A.IsConst
	if !zeroCmp {
		return t.A, t.B, t.Cond, true
	}
	for i := len(b.Instrs) - 2; i >= 0; i-- {
		in := &b.Instrs[i]
		if !in.HasDst() || in.Dst != t.A.Loc {
			continue
		}
		var base Cond
		switch in.Op {
		case SetLT:
			base = CondLT
		case SetLTU:
			base = CondLTU
		default:
			return t.A, t.B, t.Cond, true
		}
		if t.Cond == CondEQ { // branch taken when NOT (a < b)
			base = base.Negate()
		}
		return in.A, in.B, base, true
	}
	return t.A, t.B, t.Cond, true
}

// blockOfTarget returns the successor the branch jumps to when taken.
func blockOfTarget(b *Block, t *Instr) *Block {
	for _, s := range b.Succs {
		if s.Start == t.Target {
			return s
		}
	}
	// Degenerate: fall back to first successor.
	if len(b.Succs) > 0 {
		return b.Succs[0]
	}
	return b
}

// swapCond returns the condition with operands exchanged, or CondNone when
// the swapped form is not representable (the IR has no GTU/LEU).
func swapCond(c Cond) Cond {
	switch c {
	case CondEQ, CondNE:
		return c
	case CondLT:
		return CondGT
	case CondGT:
		return CondLT
	case CondLE:
		return CondGE
	case CondGE:
		return CondLE
	}
	return CondNone
}

// Liveness computes per-block live-in/live-out location sets.
func Liveness(f *Func) (liveIn, liveOut []map[Loc]bool) {
	n := len(f.Blocks)
	liveIn = make([]map[Loc]bool, n)
	liveOut = make([]map[Loc]bool, n)
	gen := make([]map[Loc]bool, n)
	kill := make([]map[Loc]bool, n)
	for i, b := range f.Blocks {
		liveIn[i] = map[Loc]bool{}
		liveOut[i] = map[Loc]bool{}
		gen[i] = map[Loc]bool{}
		kill[i] = map[Loc]bool{}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			for _, u := range in.Uses() {
				if !kill[i][u] {
					gen[i][u] = true
				}
			}
			if in.HasDst() {
				kill[i][in.Dst] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs {
				for l := range liveIn[s.Index] {
					if !liveOut[i][l] {
						liveOut[i][l] = true
						changed = true
					}
				}
			}
			for l := range liveOut[i] {
				if !kill[i][l] && !liveIn[i][l] {
					liveIn[i][l] = true
					changed = true
				}
			}
			for l := range gen[i] {
				if !liveIn[i][l] {
					liveIn[i][l] = true
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}
