package ir

import (
	"math/rand"
	"testing"
)

// randomCFG builds a random function-shaped CFG: entry block 0, random
// forward and backward edges, every block reachable (unreachable ones are
// fine for the algorithms but make the brute-force oracle trivial).
func randomCFG(r *rand.Rand, n int) *Func {
	blocks := make([]*Block, n)
	for i := range blocks {
		blocks[i] = &Block{Index: i, Start: uint32(0x1000 + 16*i)}
	}
	f := &Func{Blocks: blocks}
	addEdge := func(a, b int) {
		for _, s := range blocks[a].Succs {
			if s.Index == b {
				return
			}
		}
		blocks[a].Succs = append(blocks[a].Succs, blocks[b])
		blocks[b].Preds = append(blocks[b].Preds, blocks[a])
	}
	// Spanning path guarantees reachability.
	for i := 1; i < n; i++ {
		addEdge(r.Intn(i), i)
	}
	// Extra random edges (including back edges).
	for k := 0; k < n; k++ {
		addEdge(r.Intn(n), r.Intn(n))
	}
	return f
}

// reachableWithout computes which blocks are reachable from entry when
// block `cut` is removed (-1 = no cut).
func reachableWithout(f *Func, cut int) []bool {
	seen := make([]bool, len(f.Blocks))
	if cut == 0 {
		return seen
	}
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b.Index] || b.Index == cut {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(f.Blocks[0])
	return seen
}

// TestDominatorsAgainstBruteForce checks the iterative dominator algorithm
// against the definition: a dominates b iff removing a from the graph
// makes b unreachable from the entry.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(10)
		f := randomCFG(r, n)
		idom := Dominators(f)

		// Brute-force dominator sets.
		dom := make([][]bool, n)
		base := reachableWithout(f, -1)
		for a := 0; a < n; a++ {
			without := reachableWithout(f, a)
			dom[a] = make([]bool, n)
			for b := 0; b < n; b++ {
				// a dominates b: b reachable normally but not without a
				// (or a == b).
				dom[a][b] = a == b || (base[b] && !without[b])
			}
		}

		for b := 1; b < n; b++ {
			if !base[b] {
				continue
			}
			// The computed idom must dominate b.
			ib := idom[b]
			if ib < 0 || !dom[ib][b] {
				t.Fatalf("trial %d: idom[%d] = %d does not dominate", trial, b, ib)
			}
			// Immediacy: every strict dominator of b (other than b) must
			// dominate idom[b].
			for a := 0; a < n; a++ {
				if a == b || !dom[a][b] {
					continue
				}
				if a != ib && !dom[a][ib] {
					t.Fatalf("trial %d: %d dominates %d but not idom %d", trial, a, b, ib)
				}
			}
			// Dominates() must agree with the brute force for all pairs.
			for a := 0; a < n; a++ {
				if base[b] && base[a] {
					got := Dominates(idom, a, b)
					if got != dom[a][b] {
						t.Fatalf("trial %d: Dominates(%d,%d) = %v, brute force %v",
							trial, a, b, got, dom[a][b])
					}
				}
			}
		}
	}
}

// TestFindLoopsProperties checks natural-loop invariants on random CFGs:
// the header dominates every block in its loop, and the latch is in the
// loop body.
func TestFindLoopsProperties(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 150; trial++ {
		f := randomCFG(r, 2+r.Intn(10))
		idom := Dominators(f)
		for _, l := range FindLoops(f) {
			if !l.Contains(l.Header.Index) {
				t.Fatalf("trial %d: header not in its own loop", trial)
			}
			if !l.Contains(l.Latch.Index) {
				t.Fatalf("trial %d: latch not in loop", trial)
			}
			for idx := range l.Blocks {
				if !Dominates(idom, l.Header.Index, idx) {
					t.Fatalf("trial %d: header %d does not dominate member %d",
						trial, l.Header.Index, idx)
				}
			}
			for _, e := range l.Exits {
				if !l.Contains(e.From.Index) || l.Contains(e.To.Index) {
					t.Fatalf("trial %d: bad exit edge %d->%d", trial, e.From.Index, e.To.Index)
				}
			}
			if l.Parent != nil && !l.Parent.Contains(l.Header.Index) {
				t.Fatalf("trial %d: parent does not contain child header", trial)
			}
		}
	}
}

// TestLivenessAgainstDefinition checks block liveness on random CFGs with
// random instructions: a location is live-in iff some path from the block
// start reaches a use before any redefinition.
func TestLivenessAgainstDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		f := randomCFG(r, 2+r.Intn(6))
		locs := []Loc{40, 41, 42}
		for _, b := range f.Blocks {
			for k := 0; k < r.Intn(4); k++ {
				l := locs[r.Intn(len(locs))]
				if r.Intn(2) == 0 {
					b.Instrs = append(b.Instrs, Instr{Op: Move, Dst: l, A: C(1)})
				} else {
					b.Instrs = append(b.Instrs, Instr{Op: Add, Dst: 43, A: L(l), B: C(1)})
				}
			}
		}
		liveIn, _ := Liveness(f)

		// Brute force: BFS over (block, position) states.
		bruteLiveIn := func(start int, loc Loc) bool {
			type state struct{ blk int }
			seen := map[int]bool{}
			var walk func(blk int) bool
			walk = func(blk int) bool {
				if seen[blk] {
					return false
				}
				seen[blk] = true
				for i := range f.Blocks[blk].Instrs {
					in := &f.Blocks[blk].Instrs[i]
					for _, u := range in.Uses() {
						if u == loc {
							return true
						}
					}
					if in.HasDst() && in.Dst == loc {
						return false
					}
				}
				for _, s := range f.Blocks[blk].Succs {
					if walk(s.Index) {
						return true
					}
				}
				return false
			}
			_ = state{}
			return walk(start)
		}
		for _, b := range f.Blocks {
			for _, loc := range locs {
				want := bruteLiveIn(b.Index, loc)
				if liveIn[b.Index][loc] != want {
					t.Fatalf("trial %d: liveIn[b%d][%v] = %v, brute force %v",
						trial, b.Index, loc, liveIn[b.Index][loc], want)
				}
			}
		}
	}
}
