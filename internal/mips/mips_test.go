package mips

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		Zero: "$zero", SP: "$sp", RA: "$ra", T0: "$t0", S7: "$s7", A3: "$a3",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestEncodeDecodeKnownWords(t *testing.T) {
	// Hand-checked encodings against the MIPS-I manual.
	cases := []struct {
		inst Inst
		word uint32
	}{
		{Inst{Op: NOP}, 0x00000000},
		{Inst{Op: ADDU, Rd: T0, Rs: T1, Rt: T2}, 0x012a4021},
		{Inst{Op: ADDIU, Rt: SP, Rs: SP, Imm: -8}, 0x27bdfff8},
		{Inst{Op: LW, Rt: T0, Rs: SP, Imm: 4}, 0x8fa80004},
		{Inst{Op: SW, Rt: RA, Rs: SP, Imm: 0}, 0xafbf0000},
		{Inst{Op: SLL, Rd: T0, Rt: T1, Imm: 2}, 0x00094080},
		{Inst{Op: JR, Rs: RA}, 0x03e00008},
		{Inst{Op: LUI, Rt: T0, Imm: 0x1234}, 0x3c081234},
		{Inst{Op: ORI, Rt: T0, Rs: T0, Imm: 0x5678}, 0x35085678},
		{Inst{Op: BEQ, Rs: T0, Rt: Zero, Imm: 3}, 0x11000003},
		{Inst{Op: BNE, Rs: T0, Rt: T1, Imm: -2}, 0x1509fffe},
		{Inst{Op: J, Target: 0x00400000}, 0x08100000},
		{Inst{Op: JAL, Target: 0x00400008}, 0x0c100002},
		{Inst{Op: MULT, Rs: T0, Rt: T1}, 0x01090018},
		{Inst{Op: MFLO, Rd: T0}, 0x00004012},
		{Inst{Op: BREAK}, 0x0000000d},
		{Inst{Op: BGEZ, Rs: T0, Imm: 5}, 0x05010005},
		{Inst{Op: BLTZ, Rs: T0, Imm: -1}, 0x0500ffff},
	}
	for _, c := range cases {
		w, err := Encode(c.inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.inst, err)
		}
		if w != c.word {
			t.Errorf("Encode(%v) = 0x%08x, want 0x%08x", c.inst, w, c.word)
		}
		back, err := Decode(c.word)
		if err != nil {
			t.Fatalf("Decode(0x%08x): %v", c.word, err)
		}
		if back != c.inst {
			t.Errorf("Decode(0x%08x) = %+v, want %+v", c.word, back, c.inst)
		}
	}
}

// randomInst builds a random but encodable instruction.
func randomInst(r *rand.Rand) Inst {
	for {
		op := Op(r.Intn(int(numOps)))
		in := Inst{Op: op}
		reg := func() Reg { return Reg(r.Intn(32)) }
		switch op {
		case NOP, BREAK:
		case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU, SLLV, SRLV, SRAV:
			in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
		case SLL, SRL, SRA:
			in.Rd, in.Rt, in.Imm = reg(), reg(), int32(r.Intn(32))
		case MULT, MULTU, DIV, DIVU:
			in.Rs, in.Rt = reg(), reg()
		case MFHI, MFLO:
			in.Rd = reg()
		case MTHI, MTLO, JR:
			in.Rs = reg()
		case JALR:
			in.Rd, in.Rs = reg(), reg()
		case ADDI, ADDIU, SLTI, SLTIU:
			in.Rt, in.Rs, in.Imm = reg(), reg(), int32(int16(r.Uint32()))
		case ANDI, ORI, XORI:
			in.Rt, in.Rs, in.Imm = reg(), reg(), int32(r.Intn(0x10000))
		case LUI:
			in.Rt, in.Imm = reg(), int32(r.Intn(0x10000))
		case LB, LBU, LH, LHU, LW, SB, SH, SW:
			in.Rt, in.Rs, in.Imm = reg(), reg(), int32(int16(r.Uint32()))
		case BEQ, BNE:
			in.Rs, in.Rt, in.Imm = reg(), reg(), int32(int16(r.Uint32()))
		case BLEZ, BGTZ, BLTZ, BGEZ:
			in.Rs, in.Imm = reg(), int32(int16(r.Uint32()))
		case J, JAL:
			in.Target = uint32(r.Intn(1<<26)) << 2
		default:
			continue
		}
		// NOP has a canonical zero encoding; SLL $zero,... variants decode
		// back to NOP, so skip colliding random SLLs.
		if op == SLL && in.Rd == Zero && in.Rt == Zero && in.Imm == 0 {
			continue
		}
		return in
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		back, err := Decode(w)
		if err != nil {
			t.Logf("Decode(0x%08x): %v", w, err)
			return false
		}
		if back != in {
			t.Logf("round trip %+v -> 0x%08x -> %+v", in, w, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeUnknownWord(t *testing.T) {
	// Opcode 0x3f does not exist in our subset.
	if _, err := Decode(0xfc000000); err == nil {
		t.Error("Decode(0xfc000000) succeeded, want error")
	}
	// SPECIAL with unknown funct.
	if _, err := Decode(0x0000003f); err == nil {
		t.Error("Decode of unknown funct succeeded, want error")
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: ADDIU, Rt: T0, Rs: T0, Imm: 40000},
		{Op: ADDIU, Rt: T0, Rs: T0, Imm: -40000},
		{Op: ANDI, Rt: T0, Rs: T0, Imm: -1},
		{Op: LW, Rt: T0, Rs: SP, Imm: 1 << 20},
		{Op: SLL, Rd: T0, Rt: T0, Imm: 32},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded, want range error", in)
		}
	}
}

func TestInstPredicates(t *testing.T) {
	if !(Inst{Op: BEQ}).IsBranch() || (Inst{Op: J}).IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !(Inst{Op: JR}).IsJump() || (Inst{Op: BNE}).IsJump() {
		t.Error("IsJump misclassifies")
	}
	if !(Inst{Op: LW}).IsLoad() || (Inst{Op: SW}).IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !(Inst{Op: SB}).IsStore() || (Inst{Op: LB}).IsStore() {
		t.Error("IsStore misclassifies")
	}
	if (Inst{Op: LH}).MemWidth() != 2 || (Inst{Op: SW}).MemWidth() != 4 || (Inst{Op: ADD}).MemWidth() != 0 {
		t.Error("MemWidth wrong")
	}
	if !(Inst{Op: BREAK}).EndsBlock() || (Inst{Op: ADD}).EndsBlock() {
		t.Error("EndsBlock misclassifies")
	}
}

func TestInstDest(t *testing.T) {
	cases := []struct {
		in  Inst
		reg Reg
		ok  bool
	}{
		{Inst{Op: ADDU, Rd: T3}, T3, true},
		{Inst{Op: ADDIU, Rt: S0}, S0, true},
		{Inst{Op: LW, Rt: V0}, V0, true},
		{Inst{Op: JAL}, RA, true},
		{Inst{Op: SW, Rt: T0}, 0, false},
		{Inst{Op: BEQ}, 0, false},
		{Inst{Op: MULT}, 0, false},
		{Inst{Op: MFLO, Rd: T1}, T1, true},
	}
	for _, c := range cases {
		r, ok := c.in.Dest()
		if ok != c.ok || (ok && r != c.reg) {
			t.Errorf("Dest(%v) = %v,%v want %v,%v", c.in, r, ok, c.reg, c.ok)
		}
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
		# sum the numbers 1..10 into $t0
		li   $t0, 0
		li   $t1, 10
	loop:
		addu $t0, $t0, $t1
		addiu $t1, $t1, -1
		bgtz $t1, loop
		break
	`
	insts, labels, err := Assemble(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 6 {
		t.Fatalf("got %d instructions, want 6", len(insts))
	}
	if labels["loop"] != 0x1008 {
		t.Errorf("label loop = 0x%x, want 0x1008", labels["loop"])
	}
	// bgtz is at 0x1010; branch to 0x1008 means offset (0x1008-0x1014)/4 = -3.
	if insts[4].Op != BGTZ || insts[4].Imm != -3 {
		t.Errorf("bgtz = %+v, want offset -3", insts[4])
	}
	if insts[0].Op != ADDIU || insts[0].Rs != Zero {
		t.Errorf("li expanded to %+v", insts[0])
	}
}

func TestAssembleMemAndJumps(t *testing.T) {
	src := `
	start:
		lw $t0, 8($sp)
		sw $t0, -4($fp)
		jal start
		jr $ra
	`
	insts, labels, err := Assemble(src, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Imm != 8 || insts[0].Rs != SP {
		t.Errorf("lw parsed as %+v", insts[0])
	}
	if insts[1].Imm != -4 || insts[1].Rs != FP {
		t.Errorf("sw parsed as %+v", insts[1])
	}
	if insts[2].Target != labels["start"] {
		t.Errorf("jal target 0x%x, want 0x%x", insts[2].Target, labels["start"])
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate $t0",
		"addu $t0, $t1",
		"lw $t0, $t1",
		"beq $t0, $t1, nowhere",
		"addu $t0, $t1, $t9x",
		"dup: \n dup: nop",
		"li $t0, 100000",
	}
	for _, src := range bad {
		if _, _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleWords(t *testing.T) {
	words, err := AssembleWords("jr $ra", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 || words[0] != 0x03e00008 {
		t.Errorf("AssembleWords = %#v, want [0x03e00008]", words)
	}
}

func TestDisassemblyStrings(t *testing.T) {
	cases := map[string]Inst{
		"addu $t0, $t1, $t2": {Op: ADDU, Rd: T0, Rs: T1, Rt: T2},
		"lw $t0, 4($sp)":     {Op: LW, Rt: T0, Rs: SP, Imm: 4},
		"sll $t0, $t1, 2":    {Op: SLL, Rd: T0, Rt: T1, Imm: 2},
		"beq $t0, $zero, +3": {Op: BEQ, Rs: T0, Rt: Zero, Imm: 3},
		"jr $ra":             {Op: JR, Rs: RA},
		"j 0x400000":         {Op: J, Target: 0x400000},
		"nop":                {Op: NOP},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

// TestDisasmAssembleRoundTrip feeds each instruction's disassembly back
// through the assembler and requires the same instruction, for every form
// the assembler can represent (branches print relative offsets and jumps
// absolute addresses, both of which parse back).
func TestDisasmAssembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	skip := func(in Inst) bool {
		// The disassembler prints branch offsets as "+n" relative form,
		// which the assembler accepts; nothing to skip except NOP-encoded
		// collisions already avoided by randomInst.
		return false
	}
	for i := 0; i < 3000; i++ {
		in := randomInst(r)
		if skip(in) {
			continue
		}
		text := in.String()
		back, _, err := Assemble(text, 0)
		if err != nil {
			t.Fatalf("Assemble(%q): %v", text, err)
		}
		if len(back) != 1 {
			t.Fatalf("Assemble(%q) produced %d instructions", text, len(back))
		}
		if back[0] != in {
			t.Fatalf("round trip %q: %+v -> %+v", text, in, back[0])
		}
	}
}

func TestAssemblerPseudoOps(t *testing.T) {
	insts, _, err := Assemble("move $t0, $t1\nli $t2, -5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Op != ADDU || insts[0].Rd != T0 || insts[0].Rs != T1 || insts[0].Rt != Zero {
		t.Errorf("move expanded to %+v", insts[0])
	}
	if insts[1].Op != ADDIU || insts[1].Rt != T2 || insts[1].Imm != -5 {
		t.Errorf("li expanded to %+v", insts[1])
	}
}

func TestAssemblerNumericAndAliasRegs(t *testing.T) {
	insts, _, err := Assemble("addu $8, $9, $10\naddu $t0, $s8, $fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Rd != T0 || insts[0].Rs != T1 || insts[0].Rt != T2 {
		t.Errorf("numeric registers parsed as %+v", insts[0])
	}
	if insts[1].Rs != FP || insts[1].Rt != FP {
		t.Errorf("$s8 alias parsed as %+v", insts[1])
	}
}

func TestAssemblerJALRForms(t *testing.T) {
	insts, _, err := Assemble("jalr $t9\njalr $t0, $t9", 0)
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Rd != RA || insts[0].Rs != T9 {
		t.Errorf("jalr 1-operand parsed as %+v", insts[0])
	}
	if insts[1].Rd != T0 || insts[1].Rs != T9 {
		t.Errorf("jalr 2-operand parsed as %+v", insts[1])
	}
}
