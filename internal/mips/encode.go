package mips

import "fmt"

// MIPS primary opcodes and R-type function codes for the supported subset.
const (
	opSpecial = 0x00
	opRegimm  = 0x01
	opJ       = 0x02
	opJAL     = 0x03
	opBEQ     = 0x04
	opBNE     = 0x05
	opBLEZ    = 0x06
	opBGTZ    = 0x07
	opADDI    = 0x08
	opADDIU   = 0x09
	opSLTI    = 0x0a
	opSLTIU   = 0x0b
	opANDI    = 0x0c
	opORI     = 0x0d
	opXORI    = 0x0e
	opLUI     = 0x0f
	opLB      = 0x20
	opLH      = 0x21
	opLW      = 0x23
	opLBU     = 0x24
	opLHU     = 0x25
	opSB      = 0x28
	opSH      = 0x29
	opSW      = 0x2b

	fnSLL   = 0x00
	fnSRL   = 0x02
	fnSRA   = 0x03
	fnSLLV  = 0x04
	fnSRLV  = 0x06
	fnSRAV  = 0x07
	fnJR    = 0x08
	fnJALR  = 0x09
	fnBREAK = 0x0d
	fnMFHI  = 0x10
	fnMTHI  = 0x11
	fnMFLO  = 0x12
	fnMTLO  = 0x13
	fnMULT  = 0x18
	fnMULTU = 0x19
	fnDIV   = 0x1a
	fnDIVU  = 0x1b
	fnADD   = 0x20
	fnADDU  = 0x21
	fnSUB   = 0x22
	fnSUBU  = 0x23
	fnAND   = 0x24
	fnOR    = 0x25
	fnXOR   = 0x26
	fnNOR   = 0x27
	fnSLT   = 0x2a
	fnSLTU  = 0x2b

	rtBLTZ = 0x00
	rtBGEZ = 0x01
)

func rtype(fn uint32, rs, rt, rd Reg, shamt uint32) uint32 {
	return uint32(rs)<<21 | uint32(rt)<<16 | uint32(rd)<<11 | (shamt&0x1f)<<6 | fn
}

func itype(op uint32, rs, rt Reg, imm int32) uint32 {
	return op<<26 | uint32(rs)<<21 | uint32(rt)<<16 | uint32(uint16(imm))
}

var rfuncts = map[Op]uint32{
	ADD: fnADD, ADDU: fnADDU, SUB: fnSUB, SUBU: fnSUBU,
	AND: fnAND, OR: fnOR, XOR: fnXOR, NOR: fnNOR, SLT: fnSLT, SLTU: fnSLTU,
	SLLV: fnSLLV, SRLV: fnSRLV, SRAV: fnSRAV,
}

var shiftFuncts = map[Op]uint32{SLL: fnSLL, SRL: fnSRL, SRA: fnSRA}

var immOps = map[Op]uint32{
	ADDI: opADDI, ADDIU: opADDIU, SLTI: opSLTI, SLTIU: opSLTIU,
	ANDI: opANDI, ORI: opORI, XORI: opXORI,
}

var memOps = map[Op]uint32{
	LB: opLB, LBU: opLBU, LH: opLH, LHU: opLHU, LW: opLW,
	SB: opSB, SH: opSH, SW: opSW,
}

// Encode converts the instruction to its 32-bit machine encoding.
func Encode(i Inst) (uint32, error) {
	switch i.Op {
	case NOP:
		return 0, nil
	case BREAK:
		return fnBREAK, nil
	case SLL, SRL, SRA:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("mips: %s shift amount %d out of range", i.Op, i.Imm)
		}
		return rtype(shiftFuncts[i.Op], 0, i.Rt, i.Rd, uint32(i.Imm)), nil
	case MULT, MULTU, DIV, DIVU:
		fn := map[Op]uint32{MULT: fnMULT, MULTU: fnMULTU, DIV: fnDIV, DIVU: fnDIVU}[i.Op]
		return rtype(fn, i.Rs, i.Rt, 0, 0), nil
	case MFHI, MFLO:
		fn := fnMFHI
		if i.Op == MFLO {
			fn = fnMFLO
		}
		return rtype(uint32(fn), 0, 0, i.Rd, 0), nil
	case MTHI, MTLO:
		fn := fnMTHI
		if i.Op == MTLO {
			fn = fnMTLO
		}
		return rtype(uint32(fn), i.Rs, 0, 0, 0), nil
	case JR:
		return rtype(fnJR, i.Rs, 0, 0, 0), nil
	case JALR:
		return rtype(fnJALR, i.Rs, 0, i.Rd, 0), nil
	case LUI:
		return itype(opLUI, 0, i.Rt, i.Imm), nil
	case BEQ, BNE:
		op := uint32(opBEQ)
		if i.Op == BNE {
			op = opBNE
		}
		return itype(op, i.Rs, i.Rt, i.Imm), nil
	case BLEZ:
		return itype(opBLEZ, i.Rs, 0, i.Imm), nil
	case BGTZ:
		return itype(opBGTZ, i.Rs, 0, i.Imm), nil
	case BLTZ:
		return itype(opRegimm, i.Rs, Reg(rtBLTZ), i.Imm), nil
	case BGEZ:
		return itype(opRegimm, i.Rs, Reg(rtBGEZ), i.Imm), nil
	case J, JAL:
		op := uint32(opJ)
		if i.Op == JAL {
			op = opJAL
		}
		return op<<26 | (i.Target >> 2 & 0x03ffffff), nil
	}
	if fn, ok := rfuncts[i.Op]; ok {
		return rtype(fn, i.Rs, i.Rt, i.Rd, 0), nil
	}
	if op, ok := immOps[i.Op]; ok {
		if err := checkImm(i); err != nil {
			return 0, err
		}
		return itype(op, i.Rs, i.Rt, i.Imm), nil
	}
	if op, ok := memOps[i.Op]; ok {
		if i.Imm < -32768 || i.Imm > 32767 {
			return 0, fmt.Errorf("mips: %s offset %d out of range", i.Op, i.Imm)
		}
		return itype(op, i.Rs, i.Rt, i.Imm), nil
	}
	return 0, fmt.Errorf("mips: cannot encode %v", i)
}

func checkImm(i Inst) error {
	switch i.Op {
	case ANDI, ORI, XORI:
		if i.Imm < 0 || i.Imm > 0xffff {
			return fmt.Errorf("mips: %s immediate %d not a 16-bit unsigned value", i.Op, i.Imm)
		}
	default:
		if i.Imm < -32768 || i.Imm > 32767 {
			return fmt.Errorf("mips: %s immediate %d not a 16-bit signed value", i.Op, i.Imm)
		}
	}
	return nil
}

// Decode converts a 32-bit machine word to an instruction.
func Decode(w uint32) (Inst, error) {
	op := w >> 26
	rs := Reg(w >> 21 & 0x1f)
	rt := Reg(w >> 16 & 0x1f)
	rd := Reg(w >> 11 & 0x1f)
	shamt := int32(w >> 6 & 0x1f)
	simm := int32(int16(w & 0xffff))
	uimm := int32(w & 0xffff)

	switch op {
	case opSpecial:
		fn := w & 0x3f
		switch fn {
		case fnSLL:
			if w == 0 {
				return Inst{Op: NOP}, nil
			}
			return Inst{Op: SLL, Rd: rd, Rt: rt, Imm: shamt}, nil
		case fnSRL:
			return Inst{Op: SRL, Rd: rd, Rt: rt, Imm: shamt}, nil
		case fnSRA:
			return Inst{Op: SRA, Rd: rd, Rt: rt, Imm: shamt}, nil
		case fnSLLV:
			return Inst{Op: SLLV, Rd: rd, Rs: rs, Rt: rt}, nil
		case fnSRLV:
			return Inst{Op: SRLV, Rd: rd, Rs: rs, Rt: rt}, nil
		case fnSRAV:
			return Inst{Op: SRAV, Rd: rd, Rs: rs, Rt: rt}, nil
		case fnJR:
			return Inst{Op: JR, Rs: rs}, nil
		case fnJALR:
			return Inst{Op: JALR, Rd: rd, Rs: rs}, nil
		case fnBREAK:
			return Inst{Op: BREAK}, nil
		case fnMFHI:
			return Inst{Op: MFHI, Rd: rd}, nil
		case fnMTHI:
			return Inst{Op: MTHI, Rs: rs}, nil
		case fnMFLO:
			return Inst{Op: MFLO, Rd: rd}, nil
		case fnMTLO:
			return Inst{Op: MTLO, Rs: rs}, nil
		case fnMULT:
			return Inst{Op: MULT, Rs: rs, Rt: rt}, nil
		case fnMULTU:
			return Inst{Op: MULTU, Rs: rs, Rt: rt}, nil
		case fnDIV:
			return Inst{Op: DIV, Rs: rs, Rt: rt}, nil
		case fnDIVU:
			return Inst{Op: DIVU, Rs: rs, Rt: rt}, nil
		}
		for o, f := range rfuncts {
			if f == fn {
				return Inst{Op: o, Rd: rd, Rs: rs, Rt: rt}, nil
			}
		}
		return Inst{}, fmt.Errorf("mips: unknown SPECIAL funct 0x%02x in word 0x%08x", fn, w)
	case opRegimm:
		switch uint32(rt) {
		case rtBLTZ:
			return Inst{Op: BLTZ, Rs: rs, Imm: simm}, nil
		case rtBGEZ:
			return Inst{Op: BGEZ, Rs: rs, Imm: simm}, nil
		}
		return Inst{}, fmt.Errorf("mips: unknown REGIMM rt %d in word 0x%08x", rt, w)
	case opJ:
		return Inst{Op: J, Target: w << 6 >> 4}, nil
	case opJAL:
		return Inst{Op: JAL, Target: w << 6 >> 4}, nil
	case opBEQ:
		return Inst{Op: BEQ, Rs: rs, Rt: rt, Imm: simm}, nil
	case opBNE:
		return Inst{Op: BNE, Rs: rs, Rt: rt, Imm: simm}, nil
	case opBLEZ:
		return Inst{Op: BLEZ, Rs: rs, Imm: simm}, nil
	case opBGTZ:
		return Inst{Op: BGTZ, Rs: rs, Imm: simm}, nil
	case opLUI:
		return Inst{Op: LUI, Rt: rt, Imm: uimm}, nil
	}
	for o, code := range immOps {
		if code == op {
			imm := simm
			if o == ANDI || o == ORI || o == XORI {
				imm = uimm
			}
			return Inst{Op: o, Rs: rs, Rt: rt, Imm: imm}, nil
		}
	}
	for o, code := range memOps {
		if code == op {
			return Inst{Op: o, Rs: rs, Rt: rt, Imm: simm}, nil
		}
	}
	return Inst{}, fmt.Errorf("mips: unknown opcode 0x%02x in word 0x%08x", op, w)
}
