// Package mips implements the 32-bit MIPS-I integer instruction subset used
// throughout this repository: binary encoding and decoding, disassembly, and
// a small two-pass text assembler.
//
// The subset covers the instructions emitted by the MicroC compiler
// (internal/mcc) and consumed by the decompiler (internal/decompile):
// three-operand ALU arithmetic, immediates, shifts, multiply/divide with
// HI/LO, loads and stores of 1/2/4 bytes, branches, jumps (including the
// indirect jr used by switch jump tables), and BREAK, which the simulator
// treats as program halt.
//
// One deliberate simplification relative to real MIPS-I: there are no branch
// delay slots. Delay slots are an artifact of the hardware pipeline and are
// orthogonal to every technique in the reproduced paper; omitting them keeps
// the compiler, simulator and decompiler honest without changing any result.
package mips

import "fmt"

// Reg identifies one of the 32 general-purpose MIPS registers.
type Reg uint8

// Register numbers follow the standard MIPS o32 conventions.
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // function results
	V1   Reg = 3
	A0   Reg = 4 // arguments
	A1   Reg = 5
	A2   Reg = 6
	A3   Reg = 7
	T0   Reg = 8 // caller-saved temporaries
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // reserved for OS
	K1   Reg = 27
	GP   Reg = 28 // global pointer
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

var regNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional register name, e.g. "$t0".
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// Op enumerates the supported MIPS mnemonics.
type Op uint8

// Supported instructions, grouped by format.
const (
	NOP Op = iota

	// R-type three-register arithmetic and logic.
	ADD
	ADDU
	SUB
	SUBU
	AND
	OR
	XOR
	NOR
	SLT
	SLTU

	// R-type shifts by immediate (shamt in Imm) and by register.
	SLL
	SRL
	SRA
	SLLV
	SRLV
	SRAV

	// Multiply/divide with HI/LO access.
	MULT
	MULTU
	DIV
	DIVU
	MFHI
	MFLO
	MTHI
	MTLO

	// R-type jumps.
	JR
	JALR

	// BREAK halts the simulator.
	BREAK

	// I-type arithmetic and logic with immediate.
	ADDI
	ADDIU
	SLTI
	SLTIU
	ANDI
	ORI
	XORI
	LUI

	// Loads and stores. Imm is the signed offset from Rs; Rt is data.
	LB
	LBU
	LH
	LHU
	LW
	SB
	SH
	SW

	// Branches. Imm holds the signed word offset from the following
	// instruction (assembler/encoder units: instructions, not bytes).
	BEQ
	BNE
	BLEZ
	BGTZ
	BLTZ
	BGEZ

	// J-type absolute jumps. Target holds a byte address.
	J
	JAL

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", ADDU: "addu", SUB: "sub", SUBU: "subu",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor", SLT: "slt", SLTU: "sltu",
	SLL: "sll", SRL: "srl", SRA: "sra", SLLV: "sllv", SRLV: "srlv", SRAV: "srav",
	MULT: "mult", MULTU: "multu", DIV: "div", DIVU: "divu",
	MFHI: "mfhi", MFLO: "mflo", MTHI: "mthi", MTLO: "mtlo",
	JR: "jr", JALR: "jalr", BREAK: "break",
	ADDI: "addi", ADDIU: "addiu", SLTI: "slti", SLTIU: "sltiu",
	ANDI: "andi", ORI: "ori", XORI: "xori", LUI: "lui",
	LB: "lb", LBU: "lbu", LH: "lh", LHU: "lhu", LW: "lw",
	SB: "sb", SH: "sh", SW: "sw",
	BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz", BLTZ: "bltz", BGEZ: "bgez",
	J: "j", JAL: "jal",
}

// String returns the lowercase mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is a decoded MIPS instruction. Field use depends on Op:
//
//   - Three-register ops use Rd = Rs op Rt.
//   - Immediate ops use Rt = Rs op Imm.
//   - Shifts by immediate use Rd = Rt shift Imm (MIPS encodes shamt).
//   - Loads: Rt = mem[Rs+Imm]; stores: mem[Rs+Imm] = Rt.
//   - Branches compare Rs (and Rt for BEQ/BNE); Imm is a signed word
//     offset relative to the next instruction.
//   - J/JAL use Target as an absolute byte address.
type Inst struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Imm    int32
	Target uint32
}

// CostClass buckets opcodes by their cycle-model class. The simulator's
// CycleModel assigns one cost per class; the fast interpreter predecodes
// the class into a per-instruction cost, and cycle attribution uses the
// same classification so both agree by construction.
type CostClass uint8

// Cost classes, mirroring sim.CycleModel's fields. Branches carry two
// costs (taken/not-taken) and are resolved at execution time.
const (
	CostALU CostClass = iota
	CostLoad
	CostStore
	CostBranch
	CostJump
	CostMult
	CostDiv
)

// Cost returns the instruction class under the cycle model.
func (o Op) Cost() CostClass {
	switch o {
	case LB, LBU, LH, LHU, LW:
		return CostLoad
	case SB, SH, SW:
		return CostStore
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ:
		return CostBranch
	case J, JAL, JR, JALR:
		return CostJump
	case MULT, MULTU:
		return CostMult
	case DIV, DIVU:
		return CostDiv
	}
	return CostALU
}

// NumOps is the number of opcodes in the enum. Consumers that extend the
// opcode space with synthetic tags (the simulator's fused superops) start
// theirs here.
const NumOps = int(numOps)

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ:
		return true
	}
	return false
}

// IsJumpOp reports whether the opcode unconditionally transfers control.
func (o Op) IsJumpOp() bool {
	switch o {
	case J, JAL, JR, JALR:
		return true
	}
	return false
}

// EndsBlock reports whether the opcode terminates a basic block: any
// control transfer, or BREAK (the simulator's halt).
func (o Op) EndsBlock() bool {
	return o.IsCondBranch() || o.IsJumpOp() || o == BREAK
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Op.IsCondBranch() }

// IsJump reports whether the instruction unconditionally transfers control.
func (i Inst) IsJump() bool { return i.Op.IsJumpOp() }

// EndsBlock reports whether the instruction terminates a basic block.
func (i Inst) EndsBlock() bool { return i.Op.EndsBlock() }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool {
	switch i.Op {
	case LB, LBU, LH, LHU, LW:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool {
	switch i.Op {
	case SB, SH, SW:
		return true
	}
	return false
}

// MemWidth returns the access width in bytes for loads and stores, or 0.
func (i Inst) MemWidth() int {
	switch i.Op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, SW:
		return 4
	}
	return 0
}

// Dest returns the register written by the instruction and whether one is
// written at all. HI/LO side effects of MULT/DIV are not reported here.
func (i Inst) Dest() (Reg, bool) {
	switch i.Op {
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU,
		SLL, SRL, SRA, SLLV, SRLV, SRAV, MFHI, MFLO, JALR:
		return i.Rd, true
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
		LB, LBU, LH, LHU, LW:
		return i.Rt, true
	case JAL:
		return RA, true
	}
	return 0, false
}

// String disassembles the instruction using conventional MIPS syntax.
// Branch and jump targets are shown as relative word offsets and absolute
// addresses respectively since no symbol context is available here.
func (i Inst) String() string {
	switch i.Op {
	case NOP, BREAK:
		return i.Op.String()
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs, i.Rt)
	case SLLV, SRLV, SRAV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rt, i.Rs)
	case SLL, SRL, SRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rt, i.Imm)
	case MULT, MULTU, DIV, DIVU:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rs, i.Rt)
	case MFHI, MFLO:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case MTHI, MTLO:
		return fmt.Sprintf("%s %s", i.Op, i.Rs)
	case JR:
		return fmt.Sprintf("jr %s", i.Rs)
	case JALR:
		return fmt.Sprintf("jalr %s, %s", i.Rd, i.Rs)
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rt, i.Rs, i.Imm)
	case LUI:
		return fmt.Sprintf("lui %s, %d", i.Rt, i.Imm)
	case LB, LBU, LH, LHU, LW, SB, SH, SW:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rt, i.Imm, i.Rs)
	case BEQ, BNE:
		return fmt.Sprintf("%s %s, %s, %+d", i.Op, i.Rs, i.Rt, i.Imm)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s %s, %+d", i.Op, i.Rs, i.Imm)
	case J, JAL:
		return fmt.Sprintf("%s 0x%x", i.Op, i.Target)
	}
	return fmt.Sprintf("<bad %d>", uint8(i.Op))
}
