package mips

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates MIPS assembly text into instructions. It is a small
// two-pass assembler intended for tests and hand-written fixtures; the
// MicroC compiler emits Inst values directly and does not go through text.
//
// Supported syntax, one instruction per line:
//
//	label:
//	addu $t0, $t1, $t2
//	addiu $sp, $sp, -8
//	lw $t0, 4($sp)
//	beq $t0, $zero, done
//	j loop
//	nop / break
//	# comment or ; comment
//
// base is the byte address of the first instruction; it is used to resolve
// J/JAL label targets to absolute addresses. The returned map gives the
// byte address of every label.
func Assemble(src string, base uint32) ([]Inst, map[string]uint32, error) {
	type line struct {
		n    int // 1-based source line for diagnostics
		text string
	}
	var lines []line
	labels := make(map[string]uint32)

	// Pass 1: strip comments, record labels, collect instruction lines.
	pc := base
	for n, raw := range strings.Split(src, "\n") {
		s := raw
		if i := strings.IndexAny(s, "#;"); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		for {
			colon := strings.Index(s, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(s[:colon])
			if name == "" || strings.ContainsAny(name, " \t,()") {
				return nil, nil, fmt.Errorf("mips: line %d: bad label %q", n+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, nil, fmt.Errorf("mips: line %d: duplicate label %q", n+1, name)
			}
			labels[name] = pc
			s = strings.TrimSpace(s[colon+1:])
		}
		if s == "" {
			continue
		}
		lines = append(lines, line{n + 1, s})
		pc += 4
	}

	// Pass 2: parse instructions with label resolution.
	insts := make([]Inst, 0, len(lines))
	pc = base
	for _, ln := range lines {
		inst, err := parseInst(ln.text, pc, labels)
		if err != nil {
			return nil, nil, fmt.Errorf("mips: line %d: %w", ln.n, err)
		}
		insts = append(insts, inst)
		pc += 4
	}
	return insts, labels, nil
}

// AssembleWords assembles src and encodes the result to machine words.
func AssembleWords(src string, base uint32) ([]uint32, error) {
	insts, _, err := Assemble(src, base)
	if err != nil {
		return nil, err
	}
	words := make([]uint32, len(insts))
	for i, inst := range insts {
		w, err := Encode(inst)
		if err != nil {
			return nil, err
		}
		words[i] = w
	}
	return words, nil
}

func parseInst(s string, pc uint32, labels map[string]uint32) (Inst, error) {
	fields := strings.Fields(s)
	mn := strings.ToLower(fields[0])
	rest := strings.TrimSpace(s[len(fields[0]):])
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}

	var op Op = numOps
	for o := Op(0); o < numOps; o++ {
		if opNames[o] == mn {
			op = o
			break
		}
	}
	if op == numOps {
		// Common convenience pseudo-instructions.
		switch mn {
		case "move":
			if len(args) != 2 {
				return Inst{}, fmt.Errorf("move needs 2 operands")
			}
			rd, err1 := parseReg(args[0])
			rs, err2 := parseReg(args[1])
			if err1 != nil || err2 != nil {
				return Inst{}, fmt.Errorf("bad move operands %q", args)
			}
			return Inst{Op: ADDU, Rd: rd, Rs: rs, Rt: Zero}, nil
		case "li":
			if len(args) != 2 {
				return Inst{}, fmt.Errorf("li needs 2 operands")
			}
			rt, err1 := parseReg(args[0])
			v, err2 := parseImm(args[1])
			if err1 != nil || err2 != nil {
				return Inst{}, fmt.Errorf("bad li operands %q", args)
			}
			if v < -32768 || v > 32767 {
				return Inst{}, fmt.Errorf("li immediate %d out of 16-bit range (use lui/ori)", v)
			}
			return Inst{Op: ADDIU, Rt: rt, Rs: Zero, Imm: v}, nil
		}
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mn)
	}

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mn, n, len(args))
		}
		return nil
	}

	switch op {
	case NOP, BREAK:
		return Inst{Op: op}, need(0)
	case ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rd, e1 := parseReg(args[0])
		rs, e2 := parseReg(args[1])
		rt, e3 := parseReg(args[2])
		if e := firstErr(e1, e2, e3); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, nil
	case SLLV, SRLV, SRAV:
		// Conventional syntax: op rd, rt, rs (value shifted by rs).
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rd, e1 := parseReg(args[0])
		rt, e2 := parseReg(args[1])
		rs, e3 := parseReg(args[2])
		if e := firstErr(e1, e2, e3); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, nil
	case SLL, SRL, SRA:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rd, e1 := parseReg(args[0])
		rt, e2 := parseReg(args[1])
		sh, e3 := parseImm(args[2])
		if e := firstErr(e1, e2, e3); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rd: rd, Rt: rt, Imm: sh}, nil
	case MULT, MULTU, DIV, DIVU:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		rs, e1 := parseReg(args[0])
		rt, e2 := parseReg(args[1])
		if e := firstErr(e1, e2); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rs: rs, Rt: rt}, nil
	case MFHI, MFLO:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		rd, err := parseReg(args[0])
		return Inst{Op: op, Rd: rd}, err
	case MTHI, MTLO, JR:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		rs, err := parseReg(args[0])
		return Inst{Op: op, Rs: rs}, err
	case JALR:
		switch len(args) {
		case 1:
			rs, err := parseReg(args[0])
			return Inst{Op: JALR, Rd: RA, Rs: rs}, err
		case 2:
			rd, e1 := parseReg(args[0])
			rs, e2 := parseReg(args[1])
			return Inst{Op: JALR, Rd: rd, Rs: rs}, firstErr(e1, e2)
		}
		return Inst{}, fmt.Errorf("jalr needs 1 or 2 operands")
	case ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rt, e1 := parseReg(args[0])
		rs, e2 := parseReg(args[1])
		v, e3 := parseImm(args[2])
		if e := firstErr(e1, e2, e3); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rt: rt, Rs: rs, Imm: v}, nil
	case LUI:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		rt, e1 := parseReg(args[0])
		v, e2 := parseImm(args[1])
		if e := firstErr(e1, e2); e != nil {
			return Inst{}, e
		}
		return Inst{Op: LUI, Rt: rt, Imm: v}, nil
	case LB, LBU, LH, LHU, LW, SB, SH, SW:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		rt, e1 := parseReg(args[0])
		off, rs, e2 := parseMem(args[1])
		if e := firstErr(e1, e2); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rt: rt, Rs: rs, Imm: off}, nil
	case BEQ, BNE:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		rs, e1 := parseReg(args[0])
		rt, e2 := parseReg(args[1])
		off, e3 := branchOffset(args[2], pc, labels)
		if e := firstErr(e1, e2, e3); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rs: rs, Rt: rt, Imm: off}, nil
	case BLEZ, BGTZ, BLTZ, BGEZ:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		rs, e1 := parseReg(args[0])
		off, e2 := branchOffset(args[1], pc, labels)
		if e := firstErr(e1, e2); e != nil {
			return Inst{}, e
		}
		return Inst{Op: op, Rs: rs, Imm: off}, nil
	case J, JAL:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		if addr, ok := labels[args[0]]; ok {
			return Inst{Op: op, Target: addr}, nil
		}
		v, err := parseImm(args[0])
		if err != nil {
			return Inst{}, fmt.Errorf("unknown jump target %q", args[0])
		}
		return Inst{Op: op, Target: uint32(v)}, nil
	}
	return Inst{}, fmt.Errorf("unhandled mnemonic %q", mn)
}

func branchOffset(arg string, pc uint32, labels map[string]uint32) (int32, error) {
	if addr, ok := labels[arg]; ok {
		return (int32(addr) - int32(pc+4)) / 4, nil
	}
	return parseImm(arg)
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	name := s[1:]
	if n, err := strconv.Atoi(name); err == nil {
		if n < 0 || n > 31 {
			return 0, fmt.Errorf("register number %d out of range", n)
		}
		return Reg(n), nil
	}
	for i, rn := range regNames {
		if rn == name {
			return Reg(i), nil
		}
	}
	// Accept $s8 as an alias for $fp, as some toolchains print it.
	if name == "s8" {
		return FP, nil
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

func parseMem(s string) (int32, Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var off int32
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	return off, r, err
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
