package bench

// MediaBench-style and own-suite benchmark sources.

const srcAdpcm = `
// MediaBench-style adpcm: IMA ADPCM encoder step over a sample buffer.
int stepsize[16] = {7, 8, 9, 10, 11, 12, 13, 14,
	16, 17, 19, 21, 23, 25, 28, 31};
int pcm[256];
uchar code[256];

int adpcm_kernel(int n) {
	int valpred = 0;
	int index = 0;
	int i;
	for (i = 0; i < 256; i++) {
		int val = pcm[i];
		int diff = val - valpred;
		int sign = 0;
		if (diff < 0) { sign = 8; diff = -diff; }
		int step = stepsize[index];
		int delta = 0;
		int vpdiff = step >> 3;
		if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
		step = step >> 1;
		if (diff >= step) { delta += 2; diff -= step; vpdiff += step; }
		step = step >> 1;
		if (diff >= step) { delta += 1; vpdiff += step; }
		if (sign) { valpred -= vpdiff; } else { valpred += vpdiff; }
		if (valpred > 32767) { valpred = 32767; }
		if (valpred < -32768) { valpred = -32768; }
		delta |= sign;
		index += (delta & 7) - 3;
		if (index < 0) { index = 0; }
		if (index > 15) { index = 15; }
		code[i] = (uchar)delta;
	}
	return valpred;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 55;
	for (i = 0; i < 256; i++) {
		seed = lcg(seed);
		pcm[i] = ((seed >> 8) & 2047) - 1024;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 6; frame++) {
		total += adpcm_kernel(256);
	}
	int chk = total;
	for (i = 0; i < 256; i++) { chk = fold(chk, (int)code[i]); }
	return chk & 0xffff;
}
`

const srcG721 = `
// MediaBench-style g721: adaptive predictor coefficient update (sign-sign
// LMS over the two-pole, six-zero filter state).
int dq[6];
int b[6];
int sez[128];
int input[128];

int g721_kernel(int n) {
	int i;
	int acc = 0;
	for (i = 0; i < 128; i++) {
		int d = input[i];
		int sum = 0;
		int k;
		for (k = 0; k < 6; k++) {
			sum += (b[k] * dq[k]) >> 8;
		}
		sez[i] = sum;
		int err = d - sum;
		for (k = 0; k < 6; k++) {
			int adj = 0;
			if (err > 0 && dq[k] > 0) { adj = 32; }
			if (err > 0 && dq[k] < 0) { adj = -32; }
			if (err < 0 && dq[k] > 0) { adj = -32; }
			if (err < 0 && dq[k] < 0) { adj = 32; }
			b[k] = b[k] - (b[k] >> 8) + adj;
		}
		int j;
		for (j = 5; j > 0; j--) { dq[j] = dq[j - 1]; }
		dq[0] = err >> 2;
		acc += sum;
	}
	return acc;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	for (i = 0; i < 6; i++) { dq[i] = 0; b[i] = 0; }
	int seed = 202;
	for (i = 0; i < 128; i++) {
		seed = lcg(seed);
		input[i] = ((seed >> 7) & 511) - 256;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 6; frame++) {
		total += g721_kernel(128);
	}
	return total & 0xffff;
}
`

const srcJpeg = `
// MediaBench-style jpeg: 8-point 1-D forward DCT (LLM-style butterflies
// with fixed-point constants) applied to each row of a tile.
int block[64];
int coef[64];

void dct_kernel(int n) {
	int row;
	for (row = 0; row < 8; row++) {
		int base = row * 8;
		int s07 = block[base + 0] + block[base + 7];
		int d07 = block[base + 0] - block[base + 7];
		int s16 = block[base + 1] + block[base + 6];
		int d16 = block[base + 1] - block[base + 6];
		int s25 = block[base + 2] + block[base + 5];
		int d25 = block[base + 2] - block[base + 5];
		int s34 = block[base + 3] + block[base + 4];
		int d34 = block[base + 3] - block[base + 4];
		int a0 = s07 + s34;
		int a1 = s16 + s25;
		int a2 = s07 - s34;
		int a3 = s16 - s25;
		coef[base + 0] = (a0 + a1) >> 1;
		coef[base + 4] = (a0 - a1) >> 1;
		coef[base + 2] = (a2 * 17 + a3 * 7) >> 5;
		coef[base + 6] = (a2 * 7 - a3 * 17) >> 5;
		coef[base + 1] = (d07 * 23 + d16 * 19 + d25 * 13 + d34 * 4) >> 5;
		coef[base + 3] = (d07 * 19 - d16 * 4 - d25 * 23 - d34 * 13) >> 5;
		coef[base + 5] = (d07 * 13 - d16 * 23 + d25 * 4 + d34 * 19) >> 5;
		coef[base + 7] = (d07 * 4 - d16 * 13 + d25 * 19 - d34 * 23) >> 5;
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 88;
	for (i = 0; i < 64; i++) {
		seed = lcg(seed);
		block[i] = ((seed >> 6) & 255) - 128;
	}
	int frame;
	for (frame = 0; frame < 16; frame++) {
		dct_kernel(8);
	}
	int chk = 0;
	for (i = 0; i < 64; i++) { chk = fold(chk, coef[i]); }
	return chk & 0xffff;
}
`

const srcMpeg2 = `
// MediaBench-style mpeg2: motion-estimation sum of absolute differences
// between a reference macroblock and candidate positions.
uchar refblk[256];
uchar cur[320];
int sads[16];

int sad_kernel(int n) {
	int pos;
	int best = 1 << 30;
	for (pos = 0; pos < 16; pos++) {
		int sum = 0;
		int i;
		for (i = 0; i < 256; i++) {
			int d = (int)cur[i + pos] - (int)refblk[i];
			if (d < 0) { d = -d; }
			sum += d;
		}
		sads[pos] = sum;
		if (sum < best) { best = sum; }
	}
	return best;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 13;
	for (i = 0; i < 256; i++) {
		seed = lcg(seed);
		refblk[i] = (uchar)(seed >> 8);
	}
	for (i = 0; i < 320; i++) {
		seed = lcg(seed);
		cur[i] = (uchar)(seed >> 8);
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 3; frame++) {
		total += sad_kernel(16);
	}
	return total & 0xffff;
}
`

const srcBrev = `
// Own suite: bit reversal of every word in a buffer (the warp-processing
// favourite: pure bit-level parallelism).
uint buf[128];

void brev_kernel(int n) {
	int i;
	for (i = 0; i < 128; i++) {
		uint x = buf[i];
		x = ((x & 0x55555555) << 1) | ((x >> 1) & 0x55555555);
		x = ((x & 0x33333333) << 2) | ((x >> 2) & 0x33333333);
		x = ((x & 0x0f0f0f0f) << 4) | ((x >> 4) & 0x0f0f0f0f);
		x = ((x & 0x00ff00ff) << 8) | ((x >> 8) & 0x00ff00ff);
		x = (x << 16) | (x >> 16);
		buf[i] = x;
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	uint seed = 424242;
	for (i = 0; i < 128; i++) {
		seed = seed * 1103515245 + 12345;
		buf[i] = seed;
	}
	int pass;
	for (pass = 0; pass < 12; pass++) {
		brev_kernel(128);
	}
	int chk = 0;
	for (i = 0; i < 128; i++) { chk = fold(chk, (int)(buf[i] >> 12)); }
	return chk & 0xffff;
}
`

const srcMatmul = `
// Own suite: dense 12x12 integer matrix multiply (flattened indexing).
int ma[144];
int mb[144];
int mc[144];

void matmul_kernel(int n) {
	int i;
	for (i = 0; i < 12; i++) {
		int j;
		for (j = 0; j < 12; j++) {
			int acc = 0;
			int k;
			for (k = 0; k < 12; k++) {
				acc += ma[i * 12 + k] * mb[k * 12 + j];
			}
			mc[i * 12 + j] = acc;
		}
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 9;
	for (i = 0; i < 144; i++) {
		seed = lcg(seed);
		ma[i] = (seed >> 6) & 63;
		seed = lcg(seed);
		mb[i] = (seed >> 6) & 63;
	}
	int pass;
	for (pass = 0; pass < 5; pass++) {
		matmul_kernel(12);
	}
	int chk = 0;
	for (i = 0; i < 144; i++) { chk = fold(chk, mc[i]); }
	return chk & 0xffff;
}
`

const srcSobel = `
// Own suite: Sobel edge detection over a 16x16 grayscale tile
// (3x3 convolution with |gx|+|gy| magnitude).
uchar img[256];
uchar edges[256];

void sobel_kernel(int n) {
	int y;
	for (y = 1; y < 15; y++) {
		int x;
		for (x = 1; x < 15; x++) {
			int p = y * 16 + x;
			int gx = (int)img[p - 17] + 2 * (int)img[p - 1] + (int)img[p + 15]
				- (int)img[p - 15] - 2 * (int)img[p + 1] - (int)img[p + 17];
			int gy = (int)img[p - 17] + 2 * (int)img[p - 16] + (int)img[p - 15]
				- (int)img[p + 15] - 2 * (int)img[p + 16] - (int)img[p + 17];
			if (gx < 0) { gx = -gx; }
			if (gy < 0) { gy = -gy; }
			int mag = gx + gy;
			if (mag > 255) { mag = 255; }
			edges[p] = (uchar)mag;
		}
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 321;
	for (i = 0; i < 256; i++) {
		seed = lcg(seed);
		img[i] = (uchar)(seed >> 7);
	}
	int frame;
	for (frame = 0; frame < 8; frame++) {
		sobel_kernel(16);
	}
	int chk = 0;
	for (i = 0; i < 256; i++) { chk = fold(chk, (int)edges[i]); }
	return chk & 0xffff;
}
`
