// Package bench provides the 20-benchmark workload of the reproduced
// paper: kernels re-implemented in MicroC with the computational shape of
// their EEMBC, PowerStone, and MediaBench namesakes, plus the authors'
// own suite. The originals are licensed test suites; what the experiments
// actually exercise is kernel structure — tight loops dominating runtime,
// array access patterns, bit-level manipulation — which these programs
// reproduce (see DESIGN.md, substitutions).
//
// Two EEMBC-style benchmarks (routelookup, ttsprk) contain dense switch
// statements that compile to jump tables; their kernel functions fail
// CDFG recovery with indirect-jump errors, reproducing the paper's two
// documented failures.
package bench

import (
	"fmt"

	"binpart/internal/binimg"
	"binpart/internal/cache"
	"binpart/internal/mcc"
)

// Benchmark is one workload program.
type Benchmark struct {
	Name        string
	Suite       string // "EEMBC", "PowerStone", "MediaBench", "Own"
	Description string
	Source      string
	// KernelFunc names the function holding the hot loops; it is always
	// call-free so the recovered region is synthesizable.
	KernelFunc string
	// FailsRecovery marks the jump-table benchmarks whose kernel CDFG
	// cannot be recovered (indirect jumps), per the paper.
	FailsRecovery bool
	// OptSweep marks the four benchmarks used in the compiler
	// optimization-level experiment.
	OptSweep bool
}

// Compile builds the benchmark at the given optimization level.
func (b Benchmark) Compile(optLevel int) (*binimg.Image, error) {
	img, err := mcc.Compile(b.Source, mcc.Options{OptLevel: optLevel})
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return img, nil
}

// CompileCached is Compile behind a content-addressed cache keyed by the
// source text and the compiler options. The returned image is shared with
// other cache users and must be treated as read-only (every consumer in
// the pipeline is: the simulator copies data into its own pages, the
// decompiler and synthesizer only read words and symbols). A nil cache
// compiles directly.
func (b Benchmark) CompileCached(optLevel int, c *cache.Cache[*binimg.Image]) (*binimg.Image, error) {
	if c == nil {
		return b.Compile(optLevel)
	}
	return c.GetOrCompute(CompileKey(b.Source, optLevel), func() (*binimg.Image, error) {
		return b.Compile(optLevel)
	})
}

// CompileKey is the compile-stage cache key recipe: every compiler input
// that can change the produced image.
func CompileKey(source string, optLevel int) cache.Key {
	opts := mcc.Options{OptLevel: optLevel}
	return cache.NewHasher("mcc-compile").
		String(source).
		Int(int64(opts.OptLevel)).
		Uint32(opts.TextBase).
		Uint32(opts.DataBase).
		Sum()
}

// All returns the full 20-benchmark suite in a stable order.
func All() []Benchmark {
	return suite
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range suite {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// OptSweepSet returns the four benchmarks of the optimization-level
// experiment.
func OptSweepSet() []Benchmark {
	var out []Benchmark
	for _, b := range suite {
		if b.OptSweep {
			out = append(out, b)
		}
	}
	return out
}

var suite = []Benchmark{
	// ------------------------- EEMBC-style -------------------------
	{
		Name: "autcor", Suite: "EEMBC",
		Description: "fixed-point autocorrelation over a sample window",
		KernelFunc:  "autcor_kernel",
		Source:      srcAutcor,
	},
	{
		Name: "conven", Suite: "EEMBC",
		Description: "convolutional encoder (k=3 generator polynomials)",
		KernelFunc:  "conven_kernel",
		Source:      srcConven,
	},
	{
		Name: "rgbcmy", Suite: "EEMBC",
		Description: "RGB to CMY color space conversion",
		KernelFunc:  "rgbcmy_kernel",
		Source:      srcRgbcmy,
	},
	{
		Name: "routelookup", Suite: "EEMBC",
		Description:   "packet route lookup with a dense dispatch table (jump table)",
		KernelFunc:    "route_kernel",
		Source:        srcRouteLookup,
		FailsRecovery: true,
	},
	{
		Name: "ttsprk", Suite: "EEMBC",
		Description:   "engine spark timing with dense state dispatch (jump table)",
		KernelFunc:    "spark_kernel",
		Source:        srcTtsprk,
		FailsRecovery: true,
	},
	// ----------------------- PowerStone-style -----------------------
	{
		Name: "bcnt", Suite: "PowerStone",
		Description: "population count over a word array",
		KernelFunc:  "bcnt_kernel",
		Source:      srcBcnt,
	},
	{
		Name: "blit", Suite: "PowerStone",
		Description: "bit-block transfer with per-word shifting and masking",
		KernelFunc:  "blit_kernel",
		Source:      srcBlit,
	},
	{
		Name: "crc", Suite: "PowerStone",
		Description: "table-driven CRC-32 over a message buffer",
		KernelFunc:  "crc_kernel",
		Source:      srcCrc,
		OptSweep:    true,
	},
	{
		Name: "engine", Suite: "PowerStone",
		Description: "engine controller arithmetic (interpolation tables)",
		KernelFunc:  "engine_kernel",
		Source:      srcEngine,
	},
	{
		Name: "fir", Suite: "PowerStone",
		Description: "16-tap FIR filter over a sample stream",
		KernelFunc:  "fir_kernel",
		Source:      srcFir,
		OptSweep:    true,
	},
	{
		Name: "g3fax", Suite: "PowerStone",
		Description: "group-3 fax run-length expansion",
		KernelFunc:  "g3fax_kernel",
		Source:      srcG3fax,
	},
	{
		Name: "pocsag", Suite: "PowerStone",
		Description: "POCSAG pager BCH(31,21) parity check",
		KernelFunc:  "pocsag_kernel",
		Source:      srcPocsag,
	},
	{
		Name: "ucbqsort", Suite: "PowerStone",
		Description: "quicksort-suite inner kernel (insertion pass over records)",
		KernelFunc:  "sort_kernel",
		Source:      srcUcbqsort,
	},
	// ----------------------- MediaBench-style -----------------------
	{
		Name: "adpcm", Suite: "MediaBench",
		Description: "ADPCM (IMA) encode step over a sample buffer",
		KernelFunc:  "adpcm_kernel",
		Source:      srcAdpcm,
	},
	{
		Name: "g721", Suite: "MediaBench",
		Description: "G.721 predictor coefficient update loop",
		KernelFunc:  "g721_kernel",
		Source:      srcG721,
	},
	{
		Name: "jpeg", Suite: "MediaBench",
		Description: "8-point 1-D DCT over image rows (JPEG forward transform)",
		KernelFunc:  "dct_kernel",
		Source:      srcJpeg,
	},
	{
		Name: "mpeg2", Suite: "MediaBench",
		Description: "motion estimation sum-of-absolute-differences",
		KernelFunc:  "sad_kernel",
		Source:      srcMpeg2,
	},
	// --------------------------- Own suite ---------------------------
	{
		Name: "brev", Suite: "Own",
		Description: "bit reversal of a word array",
		KernelFunc:  "brev_kernel",
		Source:      srcBrev,
		OptSweep:    true,
	},
	{
		Name: "matmul", Suite: "Own",
		Description: "dense 12x12 integer matrix multiply",
		KernelFunc:  "matmul_kernel",
		Source:      srcMatmul,
		OptSweep:    true,
	},
	{
		Name: "sobel", Suite: "Own",
		Description: "Sobel edge detection over a grayscale tile",
		KernelFunc:  "sobel_kernel",
		Source:      srcSobel,
	},
}
