package bench

import (
	"errors"
	"testing"

	"binpart/internal/decompile"
	"binpart/internal/sim"
)

func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("suite has %d benchmarks, want 20 (as in the paper)", len(all))
	}
	suites := map[string]int{}
	failing := 0
	optSweep := 0
	names := map[string]bool{}
	for _, b := range all {
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
		suites[b.Suite]++
		if b.FailsRecovery {
			failing++
		}
		if b.OptSweep {
			optSweep++
		}
		if b.KernelFunc == "" || b.Description == "" {
			t.Errorf("%s: missing metadata", b.Name)
		}
	}
	if failing != 2 {
		t.Errorf("%d benchmarks marked as recovery failures, want 2 (the paper's EEMBC pair)", failing)
	}
	if optSweep != 4 {
		t.Errorf("%d benchmarks in the optimization sweep, want 4", optSweep)
	}
	for _, s := range []string{"EEMBC", "PowerStone", "MediaBench", "Own"} {
		if suites[s] == 0 {
			t.Errorf("no benchmarks from suite %s", s)
		}
	}
	if suites["EEMBC"] < 2 {
		t.Error("need at least the two failing EEMBC benchmarks")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("crc"); !ok {
		t.Error("crc not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if got := len(OptSweepSet()); got != 4 {
		t.Errorf("OptSweepSet has %d entries", got)
	}
}

// TestAllBenchmarksRunAtAllLevels is the suite's core validation: every
// benchmark compiles at O0..O3, runs to completion, and produces the SAME
// checksum at every level (the compiler levels are semantics-preserving).
func TestAllBenchmarksRunAtAllLevels(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			var want int32
			for lvl := 0; lvl <= 3; lvl++ {
				img, err := b.Compile(lvl)
				if err != nil {
					t.Fatalf("O%d: %v", lvl, err)
				}
				res, err := sim.Execute(img, sim.DefaultConfig())
				if err != nil {
					t.Fatalf("O%d: %v", lvl, err)
				}
				if lvl == 0 {
					want = res.ExitCode
					if res.Steps < 10_000 {
						t.Errorf("suspiciously short run: %d instructions", res.Steps)
					}
				} else if res.ExitCode != want {
					t.Errorf("O%d checksum %d != O0 checksum %d", lvl, res.ExitCode, want)
				}
			}
		})
	}
}

// TestRecoveryExpectations checks that exactly the marked benchmarks fail
// kernel CDFG recovery, and fail for the documented reason.
func TestRecoveryExpectations(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			img, err := b.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := decompile.Decompile(img)
			if err != nil {
				t.Fatal(err)
			}
			ferr, failed := res.Failed[b.KernelFunc]
			if b.FailsRecovery {
				if !failed {
					t.Errorf("kernel %s recovered despite jump table", b.KernelFunc)
				} else if !errors.Is(ferr, decompile.ErrIndirectJump) {
					t.Errorf("failure reason = %v, want indirect jump", ferr)
				}
				return
			}
			if failed {
				t.Errorf("kernel %s failed recovery: %v", b.KernelFunc, ferr)
			}
			if res.Func(b.KernelFunc) == nil {
				t.Errorf("kernel %s missing from recovered functions", b.KernelFunc)
			}
		})
	}
}

// TestKernelsDominateRuntime verifies the 90-10 premise: the kernel
// function accounts for the bulk of each benchmark's instruction count.
func TestKernelsDominateRuntime(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			img, err := b.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig()
			cfg.Profile = true
			res, err := sim.Execute(img, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sym, ok := img.Lookup(b.KernelFunc)
			if !ok {
				t.Fatalf("no symbol for %s", b.KernelFunc)
			}
			var inKernel, total uint64
			for pc, n := range res.Profile.InstCount {
				total += n
				if pc >= sym.Addr && pc < sym.Addr+sym.Size {
					inKernel += n
				}
			}
			frac := float64(inKernel) / float64(total)
			if frac < 0.5 {
				t.Errorf("kernel covers only %.0f%% of execution; the 90-10 premise needs a dominant kernel", 100*frac)
			}
		})
	}
}
