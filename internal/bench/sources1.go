package bench

// EEMBC-style and PowerStone-style benchmark sources. Each program keeps
// its hot loops in a dedicated call-free kernel function, initializes its
// own input data deterministically, runs the kernel over several frames,
// and returns a checksum so simulator runs are self-validating.

const srcAutcor = `
// EEMBC-style autocorrelation: fixed-point, 64-sample window, 8 lags.
int samples[64];
int acorr[8];

void autcor_kernel(int nlags) {
	int lag;
	for (lag = 0; lag < 8; lag++) {
		int sum = 0;
		int i;
		for (i = 0; i < 56; i++) {
			sum += (samples[i] * samples[i + lag]) >> 4;
		}
		acorr[lag] = sum;
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 99;
	for (i = 0; i < 64; i++) {
		seed = lcg(seed);
		samples[i] = (seed >> 8) & 255;
	}
	int frame;
	for (frame = 0; frame < 6; frame++) {
		autcor_kernel(8);
	}
	int chk = 0;
	for (i = 0; i < 8; i++) { chk = fold(chk, acorr[i]); }
	return chk & 0xffff;
}
`

const srcConven = `
// EEMBC-style convolutional encoder: constraint length 3, rate 1/2.
uchar bits[256];
uchar coded[512];

void conven_kernel(int n) {
	int state = 0;
	int i;
	for (i = 0; i < 256; i++) {
		int b = (int)bits[i];
		state = ((state << 1) | b) & 7;
		int g0 = (state ^ (state >> 1) ^ (state >> 2)) & 1;
		int g1 = (state ^ (state >> 2)) & 1;
		coded[2*i] = (uchar)g0;
		coded[2*i + 1] = (uchar)g1;
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 7;
	for (i = 0; i < 256; i++) {
		seed = lcg(seed) ^ 5;
		bits[i] = (uchar)(seed & 1);
	}
	int frame;
	for (frame = 0; frame < 8; frame++) {
		conven_kernel(256);
	}
	int chk = 0;
	for (i = 0; i < 512; i++) { chk = fold(chk, (int)coded[i]); }
	return chk;
}
`

const srcRgbcmy = `
// EEMBC-style RGB -> CMY conversion over a pixel tile.
uchar red[192];
uchar grn[192];
uchar blu[192];
uchar cyan[192];
uchar mgnt[192];
uchar yllw[192];

void rgbcmy_kernel(int n) {
	int i;
	for (i = 0; i < 192; i++) {
		cyan[i] = (uchar)(255 - (int)red[i]);
		mgnt[i] = (uchar)(255 - (int)grn[i]);
		yllw[i] = (uchar)(255 - (int)blu[i]);
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 3;
	for (i = 0; i < 192; i++) {
		seed = lcg(seed);
		red[i] = (uchar)(seed >> 3);
		grn[i] = (uchar)(seed >> 7);
		blu[i] = (uchar)(seed >> 11);
	}
	int frame;
	for (frame = 0; frame < 10; frame++) {
		rgbcmy_kernel(192);
	}
	int chk = 0;
	for (i = 0; i < 192; i++) {
		chk = fold(chk, (int)cyan[i] + (int)mgnt[i] - (int)yllw[i]);
	}
	return chk & 0xffff;
}
`

const srcRouteLookup = `
// EEMBC-style route lookup. The per-packet classification uses a dense
// switch that compiles to a jump table: an indirect jump the decompiler
// cannot recover a CDFG for (the paper's documented failure mode).
int packets[128];
int routes[128];
int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

int route_kernel(int n) {
	int i;
	int hits = 0;
	for (i = 0; i < 128; i++) {
		int p = packets[i];
		int class2 = (p >> 4) & 7;
		int port;
		switch (class2) {
		case 0: port = table[p & 15]; break;
		case 1: port = table[(p >> 2) & 15]; break;
		case 2: port = 2; break;
		case 3: port = table[(p >> 1) & 15] + 1; break;
		case 4: port = 7; break;
		case 5: port = table[(p >> 3) & 15] ^ 1; break;
		default: port = 0; break;
		}
		routes[i] = port;
		hits += port;
	}
	return hits;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 31;
	for (i = 0; i < 128; i++) {
		seed = lcg(seed) ^ 5;
		packets[i] = seed & 0x7fffffff;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 8; frame++) {
		total += route_kernel(128);
	}
	return total & 0xffff;
}
`

const srcTtsprk = `
// EEMBC-style spark timing: advance computation dispatched over a dense
// engine-state switch (jump table -> indirect jump -> recovery failure).
int rpm[96];
int load2[96];
int advance[96];

int spark_kernel(int n) {
	int i;
	int acc = 0;
	for (i = 0; i < 96; i++) {
		int state = rpm[i] & 7;
		int adv;
		switch (state) {
		case 0: adv = load2[i] >> 3; break;
		case 1: adv = (load2[i] >> 2) + 1; break;
		case 2: adv = (load2[i] >> 1) - 2; break;
		case 3: adv = load2[i] + 3; break;
		case 4: adv = (load2[i] * 3) >> 2; break;
		case 5: adv = 14; break;
		case 6: adv = (load2[i] ^ rpm[i]) & 31; break;
		default: adv = 0; break;
		}
		advance[i] = adv;
		acc += adv;
	}
	return acc;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 5;
	for (i = 0; i < 96; i++) {
		seed = lcg(seed);
		rpm[i] = (seed >> 4) & 0xfff;
		load2[i] = (seed >> 9) & 0xff;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 10; frame++) {
		total += spark_kernel(96);
	}
	return total & 0xffff;
}
`

const srcBcnt = `
// PowerStone-style bcnt: population count over a word array using the
// nibble-sum trick.
uint words[128];

int bcnt_kernel(int n) {
	int total = 0;
	int i;
	for (i = 0; i < 128; i++) {
		uint x = words[i];
		x = (x & 0x55555555) + ((x >> 1) & 0x55555555);
		x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
		x = (x + (x >> 4)) & 0x0f0f0f0f;
		x = x + (x >> 8);
		x = x + (x >> 16);
		total += (int)(x & 63);
	}
	return total;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	uint seed = 12345;
	for (i = 0; i < 128; i++) {
		seed = seed * 1103515245 + 12345;
		words[i] = seed;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 12; frame++) {
		total += bcnt_kernel(128);
	}
	return total & 0xffff;
}
`

const srcBlit = `
// PowerStone-style blit: misaligned bit-block transfer, shifting each
// source word pair into the destination.
uint src2[128];
uint dst2[128];

void blit_kernel(int shift) {
	int i;
	uint carry = 0;
	for (i = 0; i < 128; i++) {
		uint w = src2[i];
		dst2[i] = (carry << (32 - shift)) | (w >> shift);
		carry = w & ((1u << shift) - 1);
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	uint seed = 77;
	for (i = 0; i < 128; i++) {
		seed = seed * 1103515245 + 12345;
		src2[i] = seed;
	}
	int pass;
	for (pass = 0; pass < 10; pass++) {
		blit_kernel((pass & 7) + 1);
	}
	int chk = 0;
	for (i = 0; i < 128; i++) { chk = fold(chk, (int)(dst2[i] >> 16)); }
	return chk & 0xffff;
}
`

const srcCrc = `
// PowerStone-style crc: table-driven CRC-32 over a message buffer.
uint crctab[16];
uchar msg[256];

uint crc_kernel(uint seed2) {
	uint crc = seed2;
	int i;
	for (i = 0; i < 256; i++) {
		uint byte2 = (uint)msg[i];
		crc = (crc >> 4) ^ crctab[(crc ^ byte2) & 15];
		crc = (crc >> 4) ^ crctab[(crc ^ (byte2 >> 4)) & 15];
	}
	return crc;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	// Build the nibble-wide CRC-32 (reflected polynomial 0xEDB88320).
	for (i = 0; i < 16; i++) {
		uint c = (uint)i;
		int k;
		for (k = 0; k < 4; k++) {
			if (c & 1) { c = (c >> 1) ^ 0xEDB88320u; } else { c = c >> 1; }
		}
		crctab[i] = c;
	}
	uint seed = 1;
	for (i = 0; i < 256; i++) {
		seed = seed * 1103515245 + 12345;
		msg[i] = (uchar)(seed >> 16);
	}
	uint crc = 0xffffffffu;
	int frame;
	for (frame = 0; frame < 8; frame++) {
		crc = crc_kernel(crc);
	}
	return (int)(crc & 0xffff);
}
`

const srcEngine = `
// PowerStone-style engine: fuel/ignition interpolation over lookup
// tables with scaled arithmetic.
int fuel[64];
int ign[64];
int sensor[128];
int out[128];

int engine_kernel(int n) {
	int i;
	int acc = 0;
	for (i = 0; i < 128; i++) {
		int s = sensor[i];
		int idx = (s >> 3) & 63;
		int frac = s & 7;
		int base = fuel[idx];
		int next = fuel[(idx + 1) & 63];
		int f = base + (((next - base) * frac) >> 3);
		int adv = ign[idx];
		out[i] = f * 3 + adv;
		acc += out[i];
	}
	return acc;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	for (i = 0; i < 64; i++) {
		fuel[i] = 200 + i * 5;
		ign[i] = 30 - (i >> 1);
	}
	int seed = 17;
	for (i = 0; i < 128; i++) {
		seed = lcg(seed);
		sensor[i] = (seed >> 5) & 0x1ff;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 8; frame++) {
		total += engine_kernel(128);
	}
	return total & 0xffff;
}
`

const srcFir = `
// PowerStone-style fir: 16-tap integer FIR filter over a sample stream.
int taps[16] = {1, 3, -2, 5, 7, -4, 9, 11, 11, 9, -4, 7, 5, -2, 3, 1};
int inbuf[144];
int outbuf[128];

void fir_kernel(int n) {
	int i;
	for (i = 0; i < 128; i++) {
		int acc = 0;
		int j;
		for (j = 0; j < 16; j++) {
			acc += inbuf[i + j] * taps[j];
		}
		outbuf[i] = acc >> 5;
	}
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 23;
	for (i = 0; i < 144; i++) {
		seed = lcg(seed);
		inbuf[i] = (seed >> 6) & 1023;
	}
	int frame;
	for (frame = 0; frame < 4; frame++) {
		fir_kernel(128);
	}
	int chk = 0;
	for (i = 0; i < 128; i++) { chk = fold(chk, outbuf[i]); }
	return chk & 0xffff;
}
`

const srcG3fax = `
// PowerStone-style g3fax: run-length expansion of fax scan lines.
uchar runs[128];
uchar line[512];

int g3fax_kernel(int n) {
	int pos = 0;
	int color = 0;
	int i;
	for (i = 0; i < 128; i++) {
		int len = (int)runs[i] & 15;
		int k;
		for (k = 0; k < len; k++) {
			if (pos < 512) {
				line[pos] = (uchar)color;
				pos++;
			}
		}
		color = color ^ 1;
	}
	return pos;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 41;
	for (i = 0; i < 128; i++) {
		seed = lcg(seed) ^ 5;
		runs[i] = (uchar)((seed >> 3) & 15);
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 10; frame++) {
		total += g3fax_kernel(128);
	}
	int chk = total;
	for (i = 0; i < 512; i++) { chk = fold(chk, (int)line[i]); }
	return chk & 0xffff;
}
`

const srcPocsag = `
// PowerStone-style pocsag: BCH(31,21) parity computation per codeword.
uint cw[96];
uint parity[96];

int pocsag_kernel(int n) {
	int i;
	int bad = 0;
	for (i = 0; i < 96; i++) {
		uint data = cw[i];
		uint reg = data >> 10;
		int k;
		for (k = 0; k < 21; k++) {
			if (reg & 0x80000000u) {
				reg = (reg << 1) ^ 0xED200000u;
			} else {
				reg = reg << 1;
			}
		}
		parity[i] = reg >> 21;
		if (parity[i] != (data & 0x3ffu)) { bad++; }
	}
	return bad;
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	uint seed = 0xbeef;
	for (i = 0; i < 96; i++) {
		seed = seed * 1103515245 + 12345;
		cw[i] = seed;
	}
	int frame;
	int total = 0;
	for (frame = 0; frame < 6; frame++) {
		total += pocsag_kernel(96);
	}
	int chk = total;
	for (i = 0; i < 96; i++) { chk = fold(chk, (int)parity[i]); }
	return chk & 0xffff;
}
`

const srcUcbqsort = `
// PowerStone-style ucbqsort: the suite's dominant inner kernel is the
// small-partition insertion pass, reproduced here over record keys.
int keys[96];
int work[96];

int sort_kernel(int n) {
	int i;
	for (i = 0; i < 96; i++) { work[i] = keys[i]; }
	for (i = 1; i < 96; i++) {
		int v = work[i];
		int j = i - 1;
		while (j >= 0 && work[j] > v) {
			work[j + 1] = work[j];
			j--;
		}
		work[j + 1] = v;
	}
	return work[0] + work[48] + work[95];
}


// Harness helpers: keeping data generation and checksum folding in small
// functions mirrors real benchmark harnesses and leaves the glue loops in
// software (loops with calls are not hardware candidates).
int lcg(int s) { return s * 1103 + 12345; }
int fold(int c, int v) { return (c + v) ^ (c >> 9); }

int main() {
	int i;
	int seed = 1234;
	for (i = 0; i < 96; i++) {
		seed = lcg(seed);
		keys[i] = (seed >> 4) & 0xfff;
	}
	int pass;
	int total = 0;
	for (pass = 0; pass < 6; pass++) {
		total += sort_kernel(96);
	}
	return total & 0xffff;
}
`
