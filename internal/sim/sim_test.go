package sim

import (
	"strings"
	"testing"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// asmImage assembles src at the default text base into a runnable image.
func asmImage(t *testing.T, src string) *binimg.Image {
	t.Helper()
	words, err := mips.AssembleWords(src, binimg.DefaultTextBase)
	if err != nil {
		t.Fatal(err)
	}
	return &binimg.Image{
		Entry:    binimg.DefaultTextBase,
		TextBase: binimg.DefaultTextBase,
		Text:     words,
		DataBase: binimg.DefaultDataBase,
	}
}

func run(t *testing.T, src string) Result {
	t.Helper()
	res, err := Execute(asmImage(t, src), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSumLoop(t *testing.T) {
	res := run(t, `
		li $v0, 0
		li $t1, 10
	loop:
		addu $v0, $v0, $t1
		addiu $t1, $t1, -1
		bgtz $t1, loop
		break
	`)
	if res.ExitCode != 55 {
		t.Errorf("sum 1..10 = %d, want 55", res.ExitCode)
	}
	if res.Steps == 0 || res.Cycles < res.Steps {
		t.Errorf("implausible counts: steps=%d cycles=%d", res.Steps, res.Cycles)
	}
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int32
	}{
		{"addu", "li $t0, 7\n li $t1, 5\n addu $v0, $t0, $t1", 12},
		{"subu", "li $t0, 7\n li $t1, 5\n subu $v0, $t0, $t1", 2},
		{"and", "li $t0, 12\n li $t1, 10\n and $v0, $t0, $t1", 8},
		{"or", "li $t0, 12\n li $t1, 10\n or $v0, $t0, $t1", 14},
		{"xor", "li $t0, 12\n li $t1, 10\n xor $v0, $t0, $t1", 6},
		{"nor", "li $t0, -1\n li $t1, 0\n nor $v0, $t0, $t1", 0},
		{"slt true", "li $t0, -3\n li $t1, 2\n slt $v0, $t0, $t1", 1},
		{"sltu false", "li $t0, -3\n li $t1, 2\n sltu $v0, $t0, $t1", 0},
		{"sll", "li $t0, 3\n sll $v0, $t0, 4", 48},
		{"srl", "li $t0, -16\n srl $v0, $t0, 28", 15},
		{"sra", "li $t0, -16\n sra $v0, $t0, 2", -4},
		{"sllv", "li $t0, 3\n li $t1, 4\n sllv $v0, $t1, $t0", 32},
		{"mult mflo", "li $t0, -6\n li $t1, 7\n mult $t0, $t1\n mflo $v0", -42},
		{"mult mfhi", "li $t0, 0x4000\n sll $t0, $t0, 16\n mult $t0, $t0\n mfhi $v0", 0x10000000},
		{"div quot", "li $t0, -17\n li $t1, 5\n div $t0, $t1\n mflo $v0", -3},
		{"div rem", "li $t0, -17\n li $t1, 5\n div $t0, $t1\n mfhi $v0", -2},
		{"divu", "li $t0, 17\n li $t1, 5\n divu $t0, $t1\n mflo $v0", 3},
		{"div by zero", "li $t0, 9\n li $t1, 0\n div $t0, $t1\n mflo $v0", 0},
		{"addiu", "li $t0, 7\n addiu $v0, $t0, -9", -2},
		{"slti", "li $t0, -5\n slti $v0, $t0, 0", 1},
		{"sltiu", "li $t0, 3\n sltiu $v0, $t0, 10", 1},
		{"andi", "li $t0, -1\n andi $v0, $t0, 0xff", 255},
		{"ori", "ori $v0, $zero, 0x1234", 0x1234},
		{"xori", "li $t0, 0xff\n xori $v0, $t0, 0x0f", 0xf0},
		{"lui", "lui $v0, 1", 0x10000},
		{"mthi mfhi", "li $t0, 99\n mthi $t0\n mfhi $v0", 99},
		{"mtlo mflo", "li $t0, 98\n mtlo $t0\n mflo $v0", 98},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, c.body+"\nbreak")
			if res.ExitCode != c.want {
				t.Errorf("got %d, want %d", res.ExitCode, c.want)
			}
		})
	}
}

func TestMemoryOps(t *testing.T) {
	res := run(t, `
		lui $t0, 0x1000       # data base
		li  $t1, -2
		sw  $t1, 0($t0)
		lw  $v0, 0($t0)
		break
	`)
	if res.ExitCode != -2 {
		t.Errorf("sw/lw round trip = %d, want -2", res.ExitCode)
	}

	res = run(t, `
		lui $t0, 0x1000
		li  $t1, 0x180
		sb  $t1, 0($t0)       # stores 0x80
		lb  $v0, 0($t0)       # sign extends
		break
	`)
	if res.ExitCode != -128 {
		t.Errorf("sb/lb = %d, want -128", res.ExitCode)
	}

	res = run(t, `
		lui $t0, 0x1000
		li  $t1, 0x180
		sb  $t1, 0($t0)
		lbu $v0, 0($t0)
		break
	`)
	if res.ExitCode != 128 {
		t.Errorf("sb/lbu = %d, want 128", res.ExitCode)
	}

	res = run(t, `
		lui $t0, 0x1000
		li  $t1, -300
		sh  $t1, 2($t0)
		lh  $v0, 2($t0)
		break
	`)
	if res.ExitCode != -300 {
		t.Errorf("sh/lh = %d, want -300", res.ExitCode)
	}

	res = run(t, `
		lui $t0, 0x1000
		li  $t1, -300
		sh  $t1, 2($t0)
		lhu $v0, 2($t0)
		break
	`)
	if res.ExitCode != 65236 {
		t.Errorf("sh/lhu = %d, want 65236", res.ExitCode)
	}
}

func TestStackOps(t *testing.T) {
	res := run(t, `
		addiu $sp, $sp, -16
		li $t0, 77
		sw $t0, 4($sp)
		lw $v0, 4($sp)
		addiu $sp, $sp, 16
		break
	`)
	if res.ExitCode != 77 {
		t.Errorf("stack slot = %d, want 77", res.ExitCode)
	}
}

func TestCallReturn(t *testing.T) {
	res := run(t, `
		jal fn
		break
	fn:
		li $v0, 123
		jr $ra
	`)
	if res.ExitCode != 123 {
		t.Errorf("call/return = %d, want 123", res.ExitCode)
	}
}

func TestBranchVariants(t *testing.T) {
	res := run(t, `
		li $v0, 0
		li $t0, -1
		bltz $t0, a
		break
	a:	addiu $v0, $v0, 1
		bgez $zero, b
		break
	b:	addiu $v0, $v0, 1
		li $t1, 1
		blez $zero, c
		break
	c:	addiu $v0, $v0, 1
		bgtz $t1, d
		break
	d:	addiu $v0, $v0, 1
		beq $t1, $t1, e
		break
	e:	addiu $v0, $v0, 1
		bne $t1, $zero, f
		break
	f:	addiu $v0, $v0, 1
		break
	`)
	if res.ExitCode != 6 {
		t.Errorf("branch chain = %d, want 6", res.ExitCode)
	}
}

func TestErrors(t *testing.T) {
	// Misaligned load.
	_, err := Execute(asmImage(t, "lui $t0, 0x1000\n lw $v0, 2($t0)\n break"), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned load: err = %v", err)
	}
	// Null dereference.
	_, err = Execute(asmImage(t, "lw $v0, 0($zero)\n break"), DefaultConfig())
	if err == nil {
		t.Error("null load succeeded")
	}
	// Store into text.
	_, err = Execute(asmImage(t, "lui $t0, 0x40\n sw $t0, 0($t0)\n break"), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "text") {
		t.Errorf("text store: err = %v", err)
	}
	// Runaway (no break): step limit.
	cfg := DefaultConfig()
	cfg.MaxSteps = 1000
	_, err = Execute(asmImage(t, "loop: j loop"), cfg)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("runaway: err = %v", err)
	}
	// PC off the end.
	_, err = Execute(asmImage(t, "nop"), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("fallthrough off end: err = %v", err)
	}
}

func TestIndirectJumpTargetErrors(t *testing.T) {
	// A jr to a misaligned or out-of-text target must name the faulting
	// jump instruction, not fail later with a bare "PC outside text".
	_, err := Execute(asmImage(t, `
		lui $t0, 1
		ori $t0, $t0, 0x2345
		jr $t0
		break
	`), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "jr at 0x400008") ||
		!strings.Contains(err.Error(), "0x12345") {
		t.Errorf("misaligned jr target: err = %v", err)
	}

	_, err = Execute(asmImage(t, "jr $zero\n break"), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "jr at 0x400000") {
		t.Errorf("out-of-text jr target: err = %v", err)
	}

	_, err = Execute(asmImage(t, "jalr $t0, $zero\n break"), DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "jalr at 0x400000") {
		t.Errorf("out-of-text jalr target: err = %v", err)
	}
}

func TestBranchIntoMidBlock(t *testing.T) {
	// A branch targeting the middle of a straight-line run must execute
	// from the landing instruction onward (block dispatch re-enters the
	// block at an interior index).
	res := run(t, `
		li $v0, 0
		j mid
		addiu $v0, $v0, 100
	mid:
		addiu $v0, $v0, 1
		addiu $v0, $v0, 2
		break
	`)
	if res.ExitCode != 3 {
		t.Errorf("mid-block entry = %d, want 3", res.ExitCode)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	res := run(t, `
		li $t0, 5
		addu $zero, $t0, $t0
		addu $v0, $zero, $zero
		break
	`)
	if res.ExitCode != 0 {
		t.Errorf("$zero was written: got %d", res.ExitCode)
	}
}

func TestProfileCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Profile = true
	img := asmImage(t, `
		li $t1, 5
		li $v0, 0
	loop:
		addu $v0, $v0, $t1
		addiu $t1, $t1, -1
		bgtz $t1, loop
		break
	`)
	res, err := Execute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile collected")
	}
	// The loop body instruction at text base+8 runs 5 times.
	if got := res.Profile.InstCount[binimg.DefaultTextBase+8]; got != 5 {
		t.Errorf("loop head count = %d, want 5", got)
	}
	// Back edge (bgtz at +16 -> +8) taken 4 times.
	e := Edge{From: binimg.DefaultTextBase + 16, To: binimg.DefaultTextBase + 8}
	if got := res.Profile.EdgeCount[e]; got != 4 {
		t.Errorf("back edge count = %d, want 4", got)
	}
}

func TestCycleModelWeights(t *testing.T) {
	// A load must cost more than an ALU op under the default model.
	alu := run(t, "addu $t0, $t1, $t2\n break")
	ld := run(t, "lui $t0, 0x1000\n lw $t1, 0($t0)\n break")
	if ld.Cycles <= alu.Cycles {
		t.Errorf("load cycles (%d) not greater than ALU-only (%d)", ld.Cycles, alu.Cycles)
	}
}

func TestReadWriteWord(t *testing.T) {
	m, err := New(asmImage(t, "break"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.WriteWord(0x2000_0000, 0xdeadbeef)
	if got := m.ReadWord(0x2000_0000); got != 0xdeadbeef {
		t.Errorf("ReadWord = 0x%x", got)
	}
}
