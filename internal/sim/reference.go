package sim

import (
	"fmt"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// This file preserves the original per-instruction stepper — map-backed
// paged memory with byte-wise accesses, closure register writes, and
// map-based profile counters — exactly as it shipped before the fast
// interpreter replaced it as Machine.Run. It is the semantic baseline:
// the differential tests run every benchmark through both steppers and
// assert identical Steps, Cycles, ExitCode, and profile maps. It is
// deliberately not optimized; do not "improve" it.

// refMachine is the reference machine state.
type refMachine struct {
	cfg   Config
	img   *binimg.Image
	code  []mips.Inst
	regs  [32]uint32
	hi    uint32
	lo    uint32
	pc    uint32
	pages map[uint32][]byte
	prof  *Profile
}

const refPageBits = 12

// ExecuteReference loads img and runs it with the original reference
// stepper. Semantics (including error conditions hit mid-run) match the
// pre-fast-path simulator bit for bit.
func ExecuteReference(img *binimg.Image, cfg Config) (Result, error) {
	m := &refMachine{cfg: cfg, img: img, pages: make(map[uint32][]byte)}
	m.code = make([]mips.Inst, len(img.Text))
	for i, w := range img.Text {
		in, err := mips.Decode(w)
		if err != nil {
			return Result{}, fmt.Errorf("sim: text word %d: %w", i, err)
		}
		m.code[i] = in
	}
	for i, b := range img.Data {
		m.storeByte(img.DataBase+uint32(i), b)
	}
	m.pc = img.Entry
	m.regs[mips.SP] = cfg.StackTop
	if cfg.Profile {
		m.prof = &Profile{
			InstCount: make(map[uint32]uint64),
			EdgeCount: make(map[Edge]uint64),
		}
	}
	return m.run()
}

func (m *refMachine) page(addr uint32) []byte {
	pn := addr >> refPageBits
	p, ok := m.pages[pn]
	if !ok {
		p = make([]byte, 1<<refPageBits)
		m.pages[pn] = p
	}
	return p
}

func (m *refMachine) storeByte(addr uint32, b byte) {
	m.page(addr)[addr&(1<<refPageBits-1)] = b
}

func (m *refMachine) loadByte(addr uint32) byte {
	return m.page(addr)[addr&(1<<refPageBits-1)]
}

func (m *refMachine) load(addr uint32, width int) (uint32, error) {
	if addr < 0x1000 {
		return 0, fmt.Errorf("sim: load from near-null address 0x%x", addr)
	}
	if uint32(width) > 1 && addr%uint32(width) != 0 {
		return 0, fmt.Errorf("sim: misaligned %d-byte load at 0x%x", width, addr)
	}
	var v uint32
	for i := 0; i < width; i++ {
		v |= uint32(m.loadByte(addr+uint32(i))) << (8 * i)
	}
	return v, nil
}

func (m *refMachine) store(addr uint32, v uint32, width int) error {
	if addr < 0x1000 {
		return fmt.Errorf("sim: store to near-null address 0x%x", addr)
	}
	if uint32(width) > 1 && addr%uint32(width) != 0 {
		return fmt.Errorf("sim: misaligned %d-byte store at 0x%x", width, addr)
	}
	if m.img.InText(addr) {
		return fmt.Errorf("sim: store into text section at 0x%x", addr)
	}
	for i := 0; i < width; i++ {
		m.storeByte(addr+uint32(i), byte(v>>(8*i)))
	}
	return nil
}

func (m *refMachine) run() (Result, error) {
	var res Result
	maxSteps := m.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultConfig().MaxSteps
	}
	cm := m.cfg.Cycles
	if cm == (CycleModel{}) {
		cm = DefaultCycleModel
	}
	for res.Steps < maxSteps {
		if !m.img.InText(m.pc) || m.pc%4 != 0 {
			return res, fmt.Errorf("sim: PC 0x%x outside text", m.pc)
		}
		idx := (m.pc - m.img.TextBase) / 4
		in := m.code[idx]
		if m.prof != nil {
			m.prof.InstCount[m.pc]++
		}
		res.Steps++

		next := m.pc + 4
		taken := uint32(0)
		hasTarget := false

		rs := m.regs[in.Rs]
		rt := m.regs[in.Rt]
		setRd := func(v uint32) {
			if in.Rd != 0 {
				m.regs[in.Rd] = v
			}
		}
		setRt := func(v uint32) {
			if in.Rt != 0 {
				m.regs[in.Rt] = v
			}
		}

		switch in.Op {
		case mips.NOP:
			res.Cycles += cm.ALU
		case mips.BREAK:
			res.Cycles += cm.ALU
			res.ExitCode = int32(m.regs[mips.V0])
			res.Profile = m.prof
			return res, nil
		case mips.ADD, mips.ADDU:
			setRd(rs + rt)
			res.Cycles += cm.ALU
		case mips.SUB, mips.SUBU:
			setRd(rs - rt)
			res.Cycles += cm.ALU
		case mips.AND:
			setRd(rs & rt)
			res.Cycles += cm.ALU
		case mips.OR:
			setRd(rs | rt)
			res.Cycles += cm.ALU
		case mips.XOR:
			setRd(rs ^ rt)
			res.Cycles += cm.ALU
		case mips.NOR:
			setRd(^(rs | rt))
			res.Cycles += cm.ALU
		case mips.SLT:
			setRd(b2u(int32(rs) < int32(rt)))
			res.Cycles += cm.ALU
		case mips.SLTU:
			setRd(b2u(rs < rt))
			res.Cycles += cm.ALU
		case mips.SLL:
			setRd(rt << uint32(in.Imm))
			res.Cycles += cm.ALU
		case mips.SRL:
			setRd(rt >> uint32(in.Imm))
			res.Cycles += cm.ALU
		case mips.SRA:
			setRd(uint32(int32(rt) >> uint32(in.Imm)))
			res.Cycles += cm.ALU
		case mips.SLLV:
			setRd(rt << (rs & 31))
			res.Cycles += cm.ALU
		case mips.SRLV:
			setRd(rt >> (rs & 31))
			res.Cycles += cm.ALU
		case mips.SRAV:
			setRd(uint32(int32(rt) >> (rs & 31)))
			res.Cycles += cm.ALU
		case mips.MULT:
			p := int64(int32(rs)) * int64(int32(rt))
			m.lo, m.hi = uint32(p), uint32(uint64(p)>>32)
			res.Cycles += cm.Mult
		case mips.MULTU:
			p := uint64(rs) * uint64(rt)
			m.lo, m.hi = uint32(p), uint32(p>>32)
			res.Cycles += cm.Mult
		case mips.DIV:
			if rt == 0 {
				m.lo, m.hi = 0, rs // architecturally undefined; pick stable values
			} else if int32(rs) == -1<<31 && int32(rt) == -1 {
				m.lo, m.hi = rs, 0
			} else {
				m.lo = uint32(int32(rs) / int32(rt))
				m.hi = uint32(int32(rs) % int32(rt))
			}
			res.Cycles += cm.Div
		case mips.DIVU:
			if rt == 0 {
				m.lo, m.hi = 0, rs
			} else {
				m.lo, m.hi = rs/rt, rs%rt
			}
			res.Cycles += cm.Div
		case mips.MFHI:
			setRd(m.hi)
			res.Cycles += cm.ALU
		case mips.MFLO:
			setRd(m.lo)
			res.Cycles += cm.ALU
		case mips.MTHI:
			m.hi = rs
			res.Cycles += cm.ALU
		case mips.MTLO:
			m.lo = rs
			res.Cycles += cm.ALU
		case mips.ADDI, mips.ADDIU:
			setRt(rs + uint32(in.Imm))
			res.Cycles += cm.ALU
		case mips.SLTI:
			setRt(b2u(int32(rs) < in.Imm))
			res.Cycles += cm.ALU
		case mips.SLTIU:
			setRt(b2u(rs < uint32(in.Imm)))
			res.Cycles += cm.ALU
		case mips.ANDI:
			setRt(rs & uint32(uint16(in.Imm)))
			res.Cycles += cm.ALU
		case mips.ORI:
			setRt(rs | uint32(uint16(in.Imm)))
			res.Cycles += cm.ALU
		case mips.XORI:
			setRt(rs ^ uint32(uint16(in.Imm)))
			res.Cycles += cm.ALU
		case mips.LUI:
			setRt(uint32(in.Imm) << 16)
			res.Cycles += cm.ALU
		case mips.LB:
			v, err := m.load(rs+uint32(in.Imm), 1)
			if err != nil {
				return res, err
			}
			setRt(uint32(int32(int8(v))))
			res.Cycles += cm.Load
		case mips.LBU:
			v, err := m.load(rs+uint32(in.Imm), 1)
			if err != nil {
				return res, err
			}
			setRt(v)
			res.Cycles += cm.Load
		case mips.LH:
			v, err := m.load(rs+uint32(in.Imm), 2)
			if err != nil {
				return res, err
			}
			setRt(uint32(int32(int16(v))))
			res.Cycles += cm.Load
		case mips.LHU:
			v, err := m.load(rs+uint32(in.Imm), 2)
			if err != nil {
				return res, err
			}
			setRt(v)
			res.Cycles += cm.Load
		case mips.LW:
			v, err := m.load(rs+uint32(in.Imm), 4)
			if err != nil {
				return res, err
			}
			setRt(v)
			res.Cycles += cm.Load
		case mips.SB:
			if err := m.store(rs+uint32(in.Imm), rt, 1); err != nil {
				return res, err
			}
			res.Cycles += cm.Store
		case mips.SH:
			if err := m.store(rs+uint32(in.Imm), rt, 2); err != nil {
				return res, err
			}
			res.Cycles += cm.Store
		case mips.SW:
			if err := m.store(rs+uint32(in.Imm), rt, 4); err != nil {
				return res, err
			}
			res.Cycles += cm.Store
		case mips.BEQ:
			if rs == rt {
				taken, hasTarget = m.pc+4+uint32(in.Imm)*4, true
			}
		case mips.BNE:
			if rs != rt {
				taken, hasTarget = m.pc+4+uint32(in.Imm)*4, true
			}
		case mips.BLEZ:
			if int32(rs) <= 0 {
				taken, hasTarget = m.pc+4+uint32(in.Imm)*4, true
			}
		case mips.BGTZ:
			if int32(rs) > 0 {
				taken, hasTarget = m.pc+4+uint32(in.Imm)*4, true
			}
		case mips.BLTZ:
			if int32(rs) < 0 {
				taken, hasTarget = m.pc+4+uint32(in.Imm)*4, true
			}
		case mips.BGEZ:
			if int32(rs) >= 0 {
				taken, hasTarget = m.pc+4+uint32(in.Imm)*4, true
			}
		case mips.J:
			taken, hasTarget = in.Target, true
			res.Cycles += cm.Jump
		case mips.JAL:
			m.regs[mips.RA] = m.pc + 4
			taken, hasTarget = in.Target, true
			res.Cycles += cm.Jump
		case mips.JR:
			taken, hasTarget = rs, true
			res.Cycles += cm.Jump
		case mips.JALR:
			setRd(m.pc + 4)
			taken, hasTarget = rs, true
			res.Cycles += cm.Jump
		default:
			return res, fmt.Errorf("sim: unimplemented op %v at 0x%x", in.Op, m.pc)
		}

		if in.IsBranch() {
			if hasTarget {
				res.Cycles += cm.BranchTaken
			} else {
				res.Cycles += cm.BranchNot
			}
		}
		if hasTarget {
			if m.prof != nil {
				m.prof.EdgeCount[Edge{From: m.pc, To: taken}]++
			}
			m.pc = taken
		} else {
			m.pc = next
		}
	}
	return res, fmt.Errorf("sim: step limit (%d) exceeded at PC 0x%x", maxSteps, m.pc)
}
