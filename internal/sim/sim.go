// Package sim implements a functional MIPS simulator with a cycle model
// and an execution profiler. It stands in for the hypothetical-platform
// simulation infrastructure of the reproduced paper: software execution
// times come from instruction counts weighted by a published-CPI-style
// cost model, and the profiler's per-address and per-edge counts drive the
// partitioner's "most frequent loops" step.
//
// Three engines share one set of semantics (see Engine):
//
//   - EngineReference is the original per-instruction stepper
//     (reference.go), preserved as the semantic oracle.
//   - EngineBlock predecodes text into pinst records, then translates each
//     basic block once, on first execution, into a flat run of
//     tag-dispatched superops (translate.go) executed by a threaded inner
//     loop (exec.go) that accounts steps and cycles per block instead of
//     per instruction.
//   - EngineFused (the default) additionally runs a translation-time
//     peephole that fuses dominant dynamic pairs/triples — compare+branch,
//     lui+ori address formation, load+ALU, and addiu loop latches — into
//     single superops with merged cycle costs. Profile output is
//     unchanged: per-instruction counts are reconstructed from per-block
//     execution counters, so fused constituents keep their own PCs.
//
// Memory is a sparse two-level page directory with direct little-endian
// word accesses (binimg.Mem); profile counters are dense slices indexed by
// text position, converted to the map-shaped Profile only when a run
// completes. The differential tests (simdiff_test.go and the progen
// engine differentials) assert all engines produce identical Steps,
// Cycles, ExitCode, and profile maps.
package sim

import (
	"encoding/binary"
	"fmt"
	"sync"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// CycleModel gives the cost in CPU cycles of each instruction class,
// loosely following an R3000-class integer pipeline.
type CycleModel struct {
	ALU         uint64
	Load        uint64
	Store       uint64
	BranchTaken uint64
	BranchNot   uint64
	Jump        uint64
	Mult        uint64
	Div         uint64
}

// DefaultCycleModel is the model used throughout the experiments.
var DefaultCycleModel = CycleModel{
	ALU:         1,
	Load:        2,
	Store:       1,
	BranchTaken: 2,
	BranchNot:   1,
	Jump:        2,
	Mult:        10,
	Div:         35,
}

// Config controls a simulation run.
type Config struct {
	StackTop uint32
	MaxSteps uint64
	Cycles   CycleModel
	Profile  bool
	// Engine selects the execution engine (default EngineFused). All
	// engines are bit-identical; Execute dispatches EngineReference to
	// the preserved stepper, everything else to Machine.Run.
	Engine Engine
}

// DefaultConfig returns a Config suitable for the benchmark suite.
func DefaultConfig() Config {
	return Config{
		StackTop: binimg.DefaultStackTop,
		MaxSteps: 500_000_000,
		Cycles:   DefaultCycleModel,
		Profile:  false,
	}
}

// Profile holds execution counts gathered during a run.
type Profile struct {
	// InstCount maps instruction address to execution count.
	InstCount map[uint32]uint64
	// EdgeCount maps taken control-flow edges (branches and jumps only)
	// to counts; fallthroughs are not recorded.
	EdgeCount map[Edge]uint64
}

// Edge is one control transfer from From to To (byte addresses).
type Edge struct{ From, To uint32 }

// Result summarizes a completed run.
type Result struct {
	Steps    uint64 // instructions executed
	Cycles   uint64 // modeled CPU cycles
	ExitCode int32  // $v0 at the halting BREAK
	Profile  *Profile
}

// pinst is both a predecoded instruction and a translated superop — the
// two share one struct so a single backing array can hold the decoded
// text in its first half and the superop runs appended behind it.
//
// As a predecoded instruction (Machine.code), everything the interpreter
// needs per step is resolved once: register numbers as direct indices,
// the immediate in both sign- and op-specific form, the absolute target
// of static control transfers, the cycle-model cost of the instruction's
// class, the indices of this site's edge-counter slots (-1 when not
// profiling), and tix, the lazily-filled index of the translated block
// starting here (-1 until first execution).
//
// As a superop (Machine.fops), op may also hold one of the fused tags
// from translate.go, sub/x/y/z carry the extra operands fused patterns
// need, and idx is the text index of the first constituent instruction —
// the anchor for fault PCs and step rewinds. cost is not read on the
// superop path: block translation precomputes the whole block's cost.
type pinst struct {
	op         mips.Op
	rd, rs, rt uint8
	sub        uint8  // fused ops: pattern variant / condition code / ALU op
	x, y, z    uint8  // fused ops: extra register operands
	imm        int32  // raw signed immediate (SLTI compare, fused second imm)
	immU       uint32 // op-specific operand: sign- or zero-extended, or LUI-shifted
	target     uint32 // absolute taken target for branches, J, JAL
	edge       int32  // static-target edge slot (branch/J/JAL), -1 if none
	jr         int32  // dynamic-target site (JR/JALR), -1 if none
	tix        int32  // code[] only: translated-block index, -1 untranslated
	idx        int32  // fops[] only: text index of the first constituent
	cost       uint64 // predecoded cycle cost (branches resolve taken/not at run time)
}

// edgeSite is one static-target control-transfer site's profile slot.
type edgeSite struct {
	from, to uint32
	n        uint64
}

// jrSite is one dynamic-target (JR/JALR) site's profile slot; targets is
// allocated on first taken transfer.
type jrSite struct {
	from    uint32
	targets map[uint32]uint64
}

// Machine is a MIPS machine instance. Create with New, execute with Run.
type Machine struct {
	cfg  Config
	cm   CycleModel // cfg.Cycles with the default applied
	img  *binimg.Image
	code []pinst
	Regs [32]uint32
	HI   uint32
	LO   uint32
	PC   uint32
	mem  binimg.Mem

	// Threaded-code translation state. back is the shared backing array
	// for code and fops (kept across pooled reuse), tblocks is the
	// per-entry-point translation cache indexed by pinst.tix, and
	// lastSteps records the final step count of the run for FusionStats
	// coverage.
	back      []pinst
	fops      []pinst
	tblocks   []tblock
	lastSteps uint64

	// Dense profile counters, allocated only when cfg.Profile is set.
	// instCount is indexed by text position; control-transfer sites own
	// flat slots handed out at predecode time (exact-counted, so the
	// slices never grow). The threaded engine does not touch instCount in
	// its hot loop — buildProfile overlays per-block execution counters
	// onto it before converting everything to the map-shaped Profile.
	instCount []uint64
	edges     []edgeSite
	jrs       []jrSite
}

// New loads an image into a fresh machine.
func New(img *binimg.Image, cfg Config) (*Machine, error) {
	m := &Machine{}
	if err := m.init(img, cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// init (re)initializes a machine for img and cfg. On a pooled machine it
// reuses the pinst backing, translation cache, and profile-slot buffers
// when they are large enough; every retained buffer is either fully
// rewritten (code, appended slices) or explicitly cleared (instCount).
func (m *Machine) init(img *binimg.Image, cfg Config) error {
	m.cfg, m.img = cfg, img
	m.cm = cfg.Cycles
	if m.cm == (CycleModel{}) {
		m.cm = DefaultCycleModel
	}
	m.Regs = [32]uint32{}
	m.HI, m.LO, m.PC = 0, 0, 0
	m.mem.Reset() // keeps allocated pages for pooled reuse
	m.lastSteps = 0
	n := len(img.Text)
	// One backing array for the decoded text and the superop runs the
	// translator appends behind it. Translations are per entry point and
	// fusion shrinks them, so n extra records cover typical programs;
	// overflow just reallocates fops.
	if cap(m.back) < 2*n+1 {
		m.back = make([]pinst, 2*n+1)
	}
	m.code = m.back[:n:n]
	m.fops = m.back[n:n]
	for i, w := range img.Text {
		in, err := mips.Decode(w)
		if err != nil {
			return fmt.Errorf("sim: text word %d: %w", i, err)
		}
		m.code[i] = predecode(in, img.TextBase+uint32(4*i), m.cm)
	}
	// Count control-transfer sites: block terminators bound the
	// translation cache (plus static targets, which may enter runs
	// mid-way), and when profiling, the edge-slot slices are allocated
	// exactly once at their final size.
	terms, statics, branches, jrsites := 0, 0, 0, 0
	for i := range m.code {
		op := m.code[i].op
		if op.EndsBlock() {
			terms++
		}
		switch {
		case op.IsCondBranch(), op == mips.J, op == mips.JAL:
			statics++
			branches++
		case op == mips.JR, op == mips.JALR:
			jrsites++
		}
	}
	tcap := terms + statics + 1
	if tcap > n {
		tcap = n
	}
	if cap(m.tblocks) < tcap {
		m.tblocks = make([]tblock, 0, tcap)
	} else {
		m.tblocks = m.tblocks[:0]
	}
	if !cfg.Profile {
		m.instCount, m.edges, m.jrs = nil, nil, nil
	} else {
		if cap(m.instCount) >= n {
			m.instCount = m.instCount[:n]
			clear(m.instCount)
		} else {
			m.instCount = make([]uint64, n)
		}
		if branches > 0 {
			if cap(m.edges) >= branches {
				m.edges = m.edges[:0]
			} else {
				m.edges = make([]edgeSite, 0, branches)
			}
		} else {
			m.edges = nil
		}
		if jrsites > 0 {
			m.jrs = make([]jrSite, 0, jrsites)
		} else {
			m.jrs = nil
		}
		for i := range m.code {
			p := &m.code[i]
			pc := img.TextBase + uint32(4*i)
			switch {
			case p.op.IsCondBranch(), p.op == mips.J, p.op == mips.JAL:
				p.edge = int32(len(m.edges))
				m.edges = append(m.edges, edgeSite{from: pc, to: p.target})
			case p.op == mips.JR, p.op == mips.JALR:
				p.jr = int32(len(m.jrs))
				m.jrs = append(m.jrs, jrSite{from: pc})
			}
		}
	}
	m.mem.WriteBytes(img.DataBase, img.Data)
	m.PC = img.Entry
	m.Regs[mips.SP] = cfg.StackTop
	return nil
}

// predecode resolves one instruction at address pc into its hot-loop
// record. Edge-counter slots are assigned in a separate pass by New so
// their slices can be allocated at exact size.
func predecode(in mips.Inst, pc uint32, cm CycleModel) pinst {
	p := pinst{
		op: in.Op,
		rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
		imm: in.Imm, immU: uint32(in.Imm),
		edge: -1, jr: -1, tix: -1, idx: -1,
	}
	switch in.Op {
	case mips.ANDI, mips.ORI, mips.XORI:
		p.immU = uint32(uint16(in.Imm))
	case mips.LUI:
		p.immU = uint32(in.Imm) << 16
	}
	switch in.Op.Cost() {
	case mips.CostLoad:
		p.cost = cm.Load
	case mips.CostStore:
		p.cost = cm.Store
	case mips.CostJump:
		p.cost = cm.Jump
	case mips.CostMult:
		p.cost = cm.Mult
	case mips.CostDiv:
		p.cost = cm.Div
	case mips.CostBranch:
		// taken/not-taken resolved in the hot loop
	default:
		p.cost = cm.ALU
	}
	switch {
	case in.IsBranch():
		p.target = pc + 4 + uint32(in.Imm)*4
	case in.Op == mips.J || in.Op == mips.JAL:
		p.target = in.Target
	}
	return p
}

// blockTermIndex returns the text index of the basic-block terminator at
// or after entry: the first control transfer or BREAK, or the last text
// index when the block runs off the end of text (executing past it then
// faults at the loop top exactly like the reference).
func (m *Machine) blockTermIndex(entry int32) int32 {
	last := int32(len(m.code)) - 1
	end := entry
	for end < last && !m.code[end].op.EndsBlock() {
		end++
	}
	return end
}

// buildProfile converts the dense counters back to the map-shaped
// Profile consumed by the partitioner and cycle attribution. Per-block
// execution counters from the threaded engine are overlaid first: each
// completed execution of a translation retired every constituent in its
// text range exactly once.
func (m *Machine) buildProfile() *Profile {
	if m.instCount == nil {
		return nil
	}
	for bi := range m.tblocks {
		blk := &m.tblocks[bi]
		if blk.exec == 0 {
			continue
		}
		for j := blk.start; j <= blk.end; j++ {
			m.instCount[j] += blk.exec
		}
	}
	nInst, nEdge := 0, 0
	for _, c := range m.instCount {
		if c != 0 {
			nInst++
		}
	}
	for i := range m.edges {
		if m.edges[i].n != 0 {
			nEdge++
		}
	}
	p := &Profile{
		InstCount: make(map[uint32]uint64, nInst),
		EdgeCount: make(map[Edge]uint64, nEdge),
	}
	tb := m.img.TextBase
	for i, c := range m.instCount {
		if c != 0 {
			p.InstCount[tb+uint32(4*i)] = c
		}
	}
	for i := range m.edges {
		if e := &m.edges[i]; e.n != 0 {
			p.EdgeCount[Edge{From: e.from, To: e.to}] += e.n
		}
	}
	for i := range m.jrs {
		for to, c := range m.jrs[i].targets {
			p.EdgeCount[Edge{From: m.jrs[i].from, To: to}] += c
		}
	}
	return p
}

// ReadWord returns the 32-bit little-endian word at addr (for tests and
// result extraction).
func (m *Machine) ReadWord(addr uint32) uint32 { return m.mem.ReadWord(addr) }

// WriteWord stores a 32-bit little-endian word at addr.
func (m *Machine) WriteWord(addr uint32, v uint32) { m.mem.WriteWord(addr, v) }

// loadFault builds the error for a rejected load, preserving the
// reference stepper's check order: near-null before misalignment.
func loadFault(addr uint32, width int) error {
	if addr < 0x1000 {
		return fmt.Errorf("sim: load from near-null address 0x%x", addr)
	}
	return fmt.Errorf("sim: misaligned %d-byte load at 0x%x", width, addr)
}

// storeFault builds the error for a rejected store: near-null, then
// misalignment, then text-section protection.
func storeFault(addr uint32, width int) error {
	if addr < 0x1000 {
		return fmt.Errorf("sim: store to near-null address 0x%x", addr)
	}
	if width > 1 && addr%uint32(width) != 0 {
		return fmt.Errorf("sim: misaligned %d-byte store at 0x%x", width, addr)
	}
	return fmt.Errorf("sim: store into text section at 0x%x", addr)
}

// fail finalizes an erroring run: the machine PC is left at the faulting
// instruction and the partial step/cycle counts are reported.
func (m *Machine) fail(res *Result, steps, cycles uint64, pc uint32, err error) (Result, error) {
	m.PC = pc
	m.lastSteps = steps
	res.Steps, res.Cycles = steps, cycles
	return *res, err
}

// runInterp executes from pc with the given step/cycle state already
// accumulated, until BREAK, an error, or the step limit. It is the
// per-instruction tail of the threaded engine: Machine.Run delegates here
// when the remaining step budget cannot cover the next whole block, so
// truncation lands on exactly the instruction the reference stepper
// would report.
//
// The outer loop walks basic blocks: it validates the entry PC and the
// step budget once, then the inner loop retires straight-line
// instructions up to the block's terminator with no per-instruction PC
// or limit checks. Register writes are branch-free — the destination is
// always written and $zero is re-zeroed — which is observably identical
// to skipping writes to register 0.
func (m *Machine) runInterp(pc uint32, steps, cycles uint64) (Result, error) {
	var res Result
	maxSteps := m.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultConfig().MaxSteps
	}
	cm := m.cm
	code := m.code
	regs := &m.Regs
	textBase := m.img.TextBase
	textEnd := m.img.TextEnd()
	instCount := m.instCount
	profile := instCount != nil

outer:
	for {
		if steps >= maxSteps {
			return m.fail(&res, steps, cycles, pc,
				fmt.Errorf("sim: step limit (%d) exceeded at PC 0x%x", maxSteps, pc))
		}
		if pc&3 != 0 || pc < textBase || pc >= textEnd {
			return m.fail(&res, steps, cycles, pc,
				fmt.Errorf("sim: PC 0x%x outside text", pc))
		}
		idx := int32((pc - textBase) >> 2)
		end := m.blockTermIndex(idx)
		limit := end
		if n := uint64(end-idx) + 1; steps+n > maxSteps {
			// Run only the remaining budget; the loop top then reports
			// the step-limit error at the next unexecuted instruction,
			// exactly like the per-instruction stepper.
			limit = idx + int32(maxSteps-steps) - 1
		}
		for i := idx; i <= limit; i++ {
			in := &code[i]
			if profile {
				instCount[i]++
			}
			steps++
			switch in.op {
			case mips.NOP:
				cycles += in.cost
			case mips.BREAK:
				cycles += in.cost
				m.PC = textBase + uint32(4*i)
				m.lastSteps = steps
				res.Steps, res.Cycles = steps, cycles
				res.ExitCode = int32(regs[mips.V0])
				res.Profile = m.buildProfile()
				return res, nil
			case mips.ADD, mips.ADDU:
				regs[in.rd&31] = regs[in.rs&31] + regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.SUB, mips.SUBU:
				regs[in.rd&31] = regs[in.rs&31] - regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.AND:
				regs[in.rd&31] = regs[in.rs&31] & regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.OR:
				regs[in.rd&31] = regs[in.rs&31] | regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.XOR:
				regs[in.rd&31] = regs[in.rs&31] ^ regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.NOR:
				regs[in.rd&31] = ^(regs[in.rs&31] | regs[in.rt&31])
				regs[0] = 0
				cycles += in.cost
			case mips.SLT:
				regs[in.rd&31] = b2u(int32(regs[in.rs&31]) < int32(regs[in.rt&31]))
				regs[0] = 0
				cycles += in.cost
			case mips.SLTU:
				regs[in.rd&31] = b2u(regs[in.rs&31] < regs[in.rt&31])
				regs[0] = 0
				cycles += in.cost
			case mips.SLL:
				regs[in.rd&31] = regs[in.rt&31] << in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.SRL:
				regs[in.rd&31] = regs[in.rt&31] >> in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.SRA:
				regs[in.rd&31] = uint32(int32(regs[in.rt&31]) >> in.immU)
				regs[0] = 0
				cycles += in.cost
			case mips.SLLV:
				regs[in.rd&31] = regs[in.rt&31] << (regs[in.rs&31] & 31)
				regs[0] = 0
				cycles += in.cost
			case mips.SRLV:
				regs[in.rd&31] = regs[in.rt&31] >> (regs[in.rs&31] & 31)
				regs[0] = 0
				cycles += in.cost
			case mips.SRAV:
				regs[in.rd&31] = uint32(int32(regs[in.rt&31]) >> (regs[in.rs&31] & 31))
				regs[0] = 0
				cycles += in.cost
			case mips.MULT:
				p := int64(int32(regs[in.rs&31])) * int64(int32(regs[in.rt&31]))
				m.LO, m.HI = uint32(p), uint32(uint64(p)>>32)
				cycles += in.cost
			case mips.MULTU:
				p := uint64(regs[in.rs&31]) * uint64(regs[in.rt&31])
				m.LO, m.HI = uint32(p), uint32(p>>32)
				cycles += in.cost
			case mips.DIV:
				rs, rt := regs[in.rs&31], regs[in.rt&31]
				if rt == 0 {
					m.LO, m.HI = 0, rs // architecturally undefined; pick stable values
				} else if int32(rs) == -1<<31 && int32(rt) == -1 {
					m.LO, m.HI = rs, 0
				} else {
					m.LO = uint32(int32(rs) / int32(rt))
					m.HI = uint32(int32(rs) % int32(rt))
				}
				cycles += in.cost
			case mips.DIVU:
				rs, rt := regs[in.rs&31], regs[in.rt&31]
				if rt == 0 {
					m.LO, m.HI = 0, rs
				} else {
					m.LO, m.HI = rs/rt, rs%rt
				}
				cycles += in.cost
			case mips.MFHI:
				regs[in.rd&31] = m.HI
				regs[0] = 0
				cycles += in.cost
			case mips.MFLO:
				regs[in.rd&31] = m.LO
				regs[0] = 0
				cycles += in.cost
			case mips.MTHI:
				m.HI = regs[in.rs&31]
				cycles += in.cost
			case mips.MTLO:
				m.LO = regs[in.rs&31]
				cycles += in.cost
			case mips.ADDI, mips.ADDIU:
				regs[in.rt&31] = regs[in.rs&31] + in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.SLTI:
				regs[in.rt&31] = b2u(int32(regs[in.rs&31]) < in.imm)
				regs[0] = 0
				cycles += in.cost
			case mips.SLTIU:
				regs[in.rt&31] = b2u(regs[in.rs&31] < in.immU)
				regs[0] = 0
				cycles += in.cost
			case mips.ANDI:
				regs[in.rt&31] = regs[in.rs&31] & in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.ORI:
				regs[in.rt&31] = regs[in.rs&31] | in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.XORI:
				regs[in.rt&31] = regs[in.rs&31] ^ in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.LUI:
				regs[in.rt&31] = in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.LB:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 1))
				}
				v := m.mem.Page(addr)[addr&binimg.PageMask]
				regs[in.rt&31] = uint32(int32(int8(v)))
				regs[0] = 0
				cycles += in.cost
			case mips.LBU:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 1))
				}
				regs[in.rt&31] = uint32(m.mem.Page(addr)[addr&binimg.PageMask])
				regs[0] = 0
				cycles += in.cost
			case mips.LH:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&1 != 0 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 2))
				}
				v := binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[in.rt&31] = uint32(int32(int16(v)))
				regs[0] = 0
				cycles += in.cost
			case mips.LHU:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&1 != 0 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 2))
				}
				regs[in.rt&31] = uint32(binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:]))
				regs[0] = 0
				cycles += in.cost
			case mips.LW:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&3 != 0 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 4))
				}
				regs[in.rt&31] = binary.LittleEndian.Uint32(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[0] = 0
				cycles += in.cost
			case mips.SB:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || (addr >= textBase && addr < textEnd) {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), storeFault(addr, 1))
				}
				m.mem.Page(addr)[addr&binimg.PageMask] = byte(regs[in.rt&31])
				cycles += in.cost
			case mips.SH:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&1 != 0 || (addr >= textBase && addr < textEnd) {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), storeFault(addr, 2))
				}
				binary.LittleEndian.PutUint16(m.mem.Page(addr)[addr&binimg.PageMask:], uint16(regs[in.rt&31]))
				cycles += in.cost
			case mips.SW:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&3 != 0 || (addr >= textBase && addr < textEnd) {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), storeFault(addr, 4))
				}
				binary.LittleEndian.PutUint32(m.mem.Page(addr)[addr&binimg.PageMask:], regs[in.rt&31])
				cycles += in.cost
			case mips.BEQ:
				if regs[in.rs&31] == regs[in.rt&31] {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edges[in.edge].n++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BNE:
				if regs[in.rs&31] != regs[in.rt&31] {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edges[in.edge].n++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BLEZ:
				if int32(regs[in.rs&31]) <= 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edges[in.edge].n++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BGTZ:
				if int32(regs[in.rs&31]) > 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edges[in.edge].n++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BLTZ:
				if int32(regs[in.rs&31]) < 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edges[in.edge].n++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BGEZ:
				if int32(regs[in.rs&31]) >= 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edges[in.edge].n++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.J:
				cycles += in.cost
				if in.edge >= 0 {
					m.edges[in.edge].n++
				}
				pc = in.target
				continue outer
			case mips.JAL:
				regs[mips.RA] = textBase + uint32(4*i) + 4
				cycles += in.cost
				if in.edge >= 0 {
					m.edges[in.edge].n++
				}
				pc = in.target
				continue outer
			case mips.JR:
				t := regs[in.rs&31]
				cycles += in.cost
				if t&3 != 0 || t < textBase || t >= textEnd {
					here := textBase + uint32(4*i)
					return m.fail(&res, steps, cycles, here,
						fmt.Errorf("sim: jr at 0x%x: jump target 0x%x outside text", here, t))
				}
				if in.jr >= 0 {
					m.recordDynEdge(in.jr, t)
				}
				pc = t
				continue outer
			case mips.JALR:
				t := regs[in.rs&31]
				regs[in.rd&31] = textBase + uint32(4*i) + 4
				regs[0] = 0
				cycles += in.cost
				if t&3 != 0 || t < textBase || t >= textEnd {
					here := textBase + uint32(4*i)
					return m.fail(&res, steps, cycles, here,
						fmt.Errorf("sim: jalr at 0x%x: jump target 0x%x outside text", here, t))
				}
				if in.jr >= 0 {
					m.recordDynEdge(in.jr, t)
				}
				pc = t
				continue outer
			default:
				return m.fail(&res, steps, cycles, textBase+uint32(4*i),
					fmt.Errorf("sim: unimplemented op %v at 0x%x", in.op, textBase+uint32(4*i)))
			}
		}
		// The block fell through: either a not-taken branch, a block that
		// runs off the end of text, or a step-budget-limited prefix.
		pc = textBase + uint32(4*(limit+1))
	}
}

// recordDynEdge counts one taken dynamic-target transfer (JR/JALR).
func (m *Machine) recordDynEdge(site int32, to uint32) {
	s := &m.jrs[site]
	if s.targets == nil {
		s.targets = make(map[uint32]uint64)
	}
	s.targets[to]++
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// machinePool recycles Machines between Execute calls. The predecoded
// text, superop runs, translation cache, and profile slots dominate
// per-run allocation, and init fully rewrites or clears every retained
// buffer, so pooled reuse is invisible to results. Memory pages are not
// retained (each run starts from a fresh sparse Mem).
var machinePool sync.Pool

// acquire returns a Machine initialized for img/cfg, reusing a pooled
// machine's buffers when they are large enough.
func acquire(img *binimg.Image, cfg Config) (*Machine, error) {
	m, _ := machinePool.Get().(*Machine)
	if m == nil {
		m = &Machine{}
	}
	if err := m.init(img, cfg); err != nil {
		machinePool.Put(m)
		return nil, err
	}
	return m, nil
}

// release returns a Machine to the pool. The caller must be completely
// done with it: the next acquire rewrites every buffer.
func release(m *Machine) {
	machinePool.Put(m)
}

// Execute is a convenience wrapper: load img and run with cfg, dispatching
// on cfg.Engine. EngineReference runs the preserved per-instruction
// stepper; EngineBlock and EngineFused run the threaded-code engine.
// Nothing in the returned Result aliases machine state, so Execute runs
// on pooled machines.
func Execute(img *binimg.Image, cfg Config) (Result, error) {
	if cfg.Engine == EngineReference {
		return ExecuteReference(img, cfg)
	}
	m, err := acquire(img, cfg)
	if err != nil {
		return Result{}, err
	}
	res, rerr := m.Run()
	release(m)
	return res, rerr
}
