// Package sim implements a functional MIPS simulator with a cycle model
// and an execution profiler. It stands in for the hypothetical-platform
// simulation infrastructure of the reproduced paper: software execution
// times come from instruction counts weighted by a published-CPI-style
// cost model, and the profiler's per-address and per-edge counts drive the
// partitioner's "most frequent loops" step.
//
// Machine.Run is a fast-path interpreter: text is predecoded into a
// per-instruction record carrying operands, precomputed immediates,
// static control-transfer targets, and the instruction's cycle cost;
// execution dispatches over basic-block runs discovered at decode time so
// the PC-validity and step-limit checks are amortized per block; memory
// is a sparse two-level page directory with direct little-endian word
// accesses (binimg.Mem); and profile counters are dense slices indexed by
// text position, converted to the map-shaped Profile only when a run
// completes. The original per-instruction stepper is preserved in
// reference.go (ExecuteReference) and the differential tests assert both
// produce identical Steps, Cycles, ExitCode, and profile maps.
package sim

import (
	"encoding/binary"
	"fmt"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// CycleModel gives the cost in CPU cycles of each instruction class,
// loosely following an R3000-class integer pipeline.
type CycleModel struct {
	ALU         uint64
	Load        uint64
	Store       uint64
	BranchTaken uint64
	BranchNot   uint64
	Jump        uint64
	Mult        uint64
	Div         uint64
}

// DefaultCycleModel is the model used throughout the experiments.
var DefaultCycleModel = CycleModel{
	ALU:         1,
	Load:        2,
	Store:       1,
	BranchTaken: 2,
	BranchNot:   1,
	Jump:        2,
	Mult:        10,
	Div:         35,
}

// Config controls a simulation run.
type Config struct {
	StackTop uint32
	MaxSteps uint64
	Cycles   CycleModel
	Profile  bool
}

// DefaultConfig returns a Config suitable for the benchmark suite.
func DefaultConfig() Config {
	return Config{
		StackTop: binimg.DefaultStackTop,
		MaxSteps: 500_000_000,
		Cycles:   DefaultCycleModel,
		Profile:  false,
	}
}

// Profile holds execution counts gathered during a run.
type Profile struct {
	// InstCount maps instruction address to execution count.
	InstCount map[uint32]uint64
	// EdgeCount maps taken control-flow edges (branches and jumps only)
	// to counts; fallthroughs are not recorded.
	EdgeCount map[Edge]uint64
}

// Edge is one control transfer from From to To (byte addresses).
type Edge struct{ From, To uint32 }

// Result summarizes a completed run.
type Result struct {
	Steps    uint64 // instructions executed
	Cycles   uint64 // modeled CPU cycles
	ExitCode int32  // $v0 at the halting BREAK
	Profile  *Profile
}

// pinst is a predecoded instruction. Everything the hot loop needs per
// step is resolved here once: register numbers as direct indices, the
// immediate in both sign- and op-specific form, the absolute target of
// static control transfers, the cycle-model cost of the instruction's
// class, and — when profiling — the indices of this site's edge-counter
// slots (-1 otherwise, so the hot loop needs no separate profiling test).
type pinst struct {
	op         mips.Op
	rd, rs, rt uint8
	imm        int32  // raw signed immediate (SLTI compare)
	immU       uint32 // op-specific operand: sign- or zero-extended, or LUI-shifted
	target     uint32 // absolute taken target for branches, J, JAL
	cost       uint64 // predecoded cycle cost (branches resolve taken/not at run time)
	edge       int32  // static-target edge slot (branch/J/JAL), -1 if none
	jr         int32  // dynamic-target site (JR/JALR), -1 if none
}

// Machine is a MIPS machine instance. Create with New, execute with Run.
type Machine struct {
	cfg      Config
	cm       CycleModel // cfg.Cycles with the default applied
	img      *binimg.Image
	code     []pinst
	blockEnd []int32 // text index -> index of the block-terminating instruction
	Regs     [32]uint32
	HI       uint32
	LO       uint32
	PC       uint32
	mem      binimg.Mem

	// Dense profile counters, allocated only when cfg.Profile is set.
	// instCount is indexed by text position; edge counters live in flat
	// slots handed out per control-transfer site at predecode time, with
	// JR/JALR sites owning a small per-site target map since their
	// targets are dynamic. buildProfile converts all of this back to the
	// map-shaped Profile at run end.
	instCount []uint64
	edgeCount []uint64
	edgeFrom  []uint32
	edgeTo    []uint32
	jrFrom    []uint32
	jrEdges   []map[uint32]uint64
}

// New loads an image into a fresh machine.
func New(img *binimg.Image, cfg Config) (*Machine, error) {
	m := &Machine{cfg: cfg, img: img}
	m.cm = cfg.Cycles
	if m.cm == (CycleModel{}) {
		m.cm = DefaultCycleModel
	}
	if cfg.Profile {
		m.instCount = make([]uint64, len(img.Text))
	}
	m.code = make([]pinst, len(img.Text))
	for i, w := range img.Text {
		in, err := mips.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("sim: text word %d: %w", i, err)
		}
		m.code[i] = m.predecode(in, img.TextBase+uint32(4*i))
	}
	m.blockEnd = make([]int32, len(m.code))
	end := int32(len(m.code)) - 1
	for i := len(m.code) - 1; i >= 0; i-- {
		switch m.code[i].op {
		case mips.BEQ, mips.BNE, mips.BLEZ, mips.BGTZ, mips.BLTZ, mips.BGEZ,
			mips.J, mips.JAL, mips.JR, mips.JALR, mips.BREAK:
			end = int32(i)
		}
		m.blockEnd[i] = end
	}
	m.mem.WriteBytes(img.DataBase, img.Data)
	m.PC = img.Entry
	m.Regs[mips.SP] = cfg.StackTop
	return m, nil
}

// predecode resolves one instruction at address pc into its hot-loop
// record and, when profiling, allocates the site's edge-counter slot.
func (m *Machine) predecode(in mips.Inst, pc uint32) pinst {
	p := pinst{
		op: in.Op,
		rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
		imm: in.Imm, immU: uint32(in.Imm),
		edge: -1, jr: -1,
	}
	switch in.Op {
	case mips.ANDI, mips.ORI, mips.XORI:
		p.immU = uint32(uint16(in.Imm))
	case mips.LUI:
		p.immU = uint32(in.Imm) << 16
	}
	switch in.Op.Cost() {
	case mips.CostLoad:
		p.cost = m.cm.Load
	case mips.CostStore:
		p.cost = m.cm.Store
	case mips.CostJump:
		p.cost = m.cm.Jump
	case mips.CostMult:
		p.cost = m.cm.Mult
	case mips.CostDiv:
		p.cost = m.cm.Div
	case mips.CostBranch:
		// taken/not-taken resolved in the hot loop
	default:
		p.cost = m.cm.ALU
	}
	switch {
	case in.IsBranch():
		p.target = pc + 4 + uint32(in.Imm)*4
	case in.Op == mips.J || in.Op == mips.JAL:
		p.target = in.Target
	}
	if m.instCount != nil {
		switch {
		case in.IsBranch(), in.Op == mips.J, in.Op == mips.JAL:
			p.edge = int32(len(m.edgeFrom))
			m.edgeFrom = append(m.edgeFrom, pc)
			m.edgeTo = append(m.edgeTo, p.target)
			m.edgeCount = append(m.edgeCount, 0)
		case in.Op == mips.JR, in.Op == mips.JALR:
			p.jr = int32(len(m.jrFrom))
			m.jrFrom = append(m.jrFrom, pc)
			m.jrEdges = append(m.jrEdges, nil)
		}
	}
	return p
}

// buildProfile converts the dense counters back to the map-shaped
// Profile consumed by the partitioner and cycle attribution.
func (m *Machine) buildProfile() *Profile {
	if m.instCount == nil {
		return nil
	}
	nInst, nEdge := 0, 0
	for _, c := range m.instCount {
		if c != 0 {
			nInst++
		}
	}
	for _, c := range m.edgeCount {
		if c != 0 {
			nEdge++
		}
	}
	p := &Profile{
		InstCount: make(map[uint32]uint64, nInst),
		EdgeCount: make(map[Edge]uint64, nEdge),
	}
	tb := m.img.TextBase
	for i, c := range m.instCount {
		if c != 0 {
			p.InstCount[tb+uint32(4*i)] = c
		}
	}
	for s, c := range m.edgeCount {
		if c != 0 {
			p.EdgeCount[Edge{From: m.edgeFrom[s], To: m.edgeTo[s]}] += c
		}
	}
	for s, targets := range m.jrEdges {
		for to, c := range targets {
			p.EdgeCount[Edge{From: m.jrFrom[s], To: to}] += c
		}
	}
	return p
}

// ReadWord returns the 32-bit little-endian word at addr (for tests and
// result extraction).
func (m *Machine) ReadWord(addr uint32) uint32 { return m.mem.ReadWord(addr) }

// WriteWord stores a 32-bit little-endian word at addr.
func (m *Machine) WriteWord(addr uint32, v uint32) { m.mem.WriteWord(addr, v) }

// loadFault builds the error for a rejected load, preserving the
// reference stepper's check order: near-null before misalignment.
func loadFault(addr uint32, width int) error {
	if addr < 0x1000 {
		return fmt.Errorf("sim: load from near-null address 0x%x", addr)
	}
	return fmt.Errorf("sim: misaligned %d-byte load at 0x%x", width, addr)
}

// storeFault builds the error for a rejected store: near-null, then
// misalignment, then text-section protection.
func storeFault(addr uint32, width int) error {
	if addr < 0x1000 {
		return fmt.Errorf("sim: store to near-null address 0x%x", addr)
	}
	if width > 1 && addr%uint32(width) != 0 {
		return fmt.Errorf("sim: misaligned %d-byte store at 0x%x", width, addr)
	}
	return fmt.Errorf("sim: store into text section at 0x%x", addr)
}

// fail finalizes an erroring run: the machine PC is left at the faulting
// instruction and the partial step/cycle counts are reported.
func (m *Machine) fail(res *Result, steps, cycles uint64, pc uint32, err error) (Result, error) {
	m.PC = pc
	res.Steps, res.Cycles = steps, cycles
	return *res, err
}

// Run executes until BREAK, an error, or the step limit.
//
// The outer loop walks basic blocks: it validates the entry PC and the
// step budget once, then the inner loop retires straight-line
// instructions up to the block's terminator with no per-instruction PC
// or limit checks. Register writes are branch-free — the destination is
// always written and $zero is re-zeroed — which is observably identical
// to skipping writes to register 0.
func (m *Machine) Run() (Result, error) {
	var res Result
	maxSteps := m.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultConfig().MaxSteps
	}
	cm := m.cm
	code := m.code
	blockEnd := m.blockEnd
	regs := &m.Regs
	textBase := m.img.TextBase
	textEnd := m.img.TextEnd()
	instCount := m.instCount
	profile := instCount != nil
	pc := m.PC
	var steps, cycles uint64

outer:
	for {
		if steps >= maxSteps {
			return m.fail(&res, steps, cycles, pc,
				fmt.Errorf("sim: step limit (%d) exceeded at PC 0x%x", maxSteps, pc))
		}
		if pc&3 != 0 || pc < textBase || pc >= textEnd {
			return m.fail(&res, steps, cycles, pc,
				fmt.Errorf("sim: PC 0x%x outside text", pc))
		}
		idx := int32((pc - textBase) >> 2)
		end := blockEnd[idx]
		limit := end
		if n := uint64(end-idx) + 1; steps+n > maxSteps {
			// Run only the remaining budget; the loop top then reports
			// the step-limit error at the next unexecuted instruction,
			// exactly like the per-instruction stepper.
			limit = idx + int32(maxSteps-steps) - 1
		}
		for i := idx; i <= limit; i++ {
			in := &code[i]
			if profile {
				instCount[i]++
			}
			steps++
			switch in.op {
			case mips.NOP:
				cycles += in.cost
			case mips.BREAK:
				cycles += in.cost
				m.PC = textBase + uint32(4*i)
				res.Steps, res.Cycles = steps, cycles
				res.ExitCode = int32(regs[mips.V0])
				res.Profile = m.buildProfile()
				return res, nil
			case mips.ADD, mips.ADDU:
				regs[in.rd&31] = regs[in.rs&31] + regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.SUB, mips.SUBU:
				regs[in.rd&31] = regs[in.rs&31] - regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.AND:
				regs[in.rd&31] = regs[in.rs&31] & regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.OR:
				regs[in.rd&31] = regs[in.rs&31] | regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.XOR:
				regs[in.rd&31] = regs[in.rs&31] ^ regs[in.rt&31]
				regs[0] = 0
				cycles += in.cost
			case mips.NOR:
				regs[in.rd&31] = ^(regs[in.rs&31] | regs[in.rt&31])
				regs[0] = 0
				cycles += in.cost
			case mips.SLT:
				regs[in.rd&31] = b2u(int32(regs[in.rs&31]) < int32(regs[in.rt&31]))
				regs[0] = 0
				cycles += in.cost
			case mips.SLTU:
				regs[in.rd&31] = b2u(regs[in.rs&31] < regs[in.rt&31])
				regs[0] = 0
				cycles += in.cost
			case mips.SLL:
				regs[in.rd&31] = regs[in.rt&31] << in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.SRL:
				regs[in.rd&31] = regs[in.rt&31] >> in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.SRA:
				regs[in.rd&31] = uint32(int32(regs[in.rt&31]) >> in.immU)
				regs[0] = 0
				cycles += in.cost
			case mips.SLLV:
				regs[in.rd&31] = regs[in.rt&31] << (regs[in.rs&31] & 31)
				regs[0] = 0
				cycles += in.cost
			case mips.SRLV:
				regs[in.rd&31] = regs[in.rt&31] >> (regs[in.rs&31] & 31)
				regs[0] = 0
				cycles += in.cost
			case mips.SRAV:
				regs[in.rd&31] = uint32(int32(regs[in.rt&31]) >> (regs[in.rs&31] & 31))
				regs[0] = 0
				cycles += in.cost
			case mips.MULT:
				p := int64(int32(regs[in.rs&31])) * int64(int32(regs[in.rt&31]))
				m.LO, m.HI = uint32(p), uint32(uint64(p)>>32)
				cycles += in.cost
			case mips.MULTU:
				p := uint64(regs[in.rs&31]) * uint64(regs[in.rt&31])
				m.LO, m.HI = uint32(p), uint32(p>>32)
				cycles += in.cost
			case mips.DIV:
				rs, rt := regs[in.rs&31], regs[in.rt&31]
				if rt == 0 {
					m.LO, m.HI = 0, rs // architecturally undefined; pick stable values
				} else if int32(rs) == -1<<31 && int32(rt) == -1 {
					m.LO, m.HI = rs, 0
				} else {
					m.LO = uint32(int32(rs) / int32(rt))
					m.HI = uint32(int32(rs) % int32(rt))
				}
				cycles += in.cost
			case mips.DIVU:
				rs, rt := regs[in.rs&31], regs[in.rt&31]
				if rt == 0 {
					m.LO, m.HI = 0, rs
				} else {
					m.LO, m.HI = rs/rt, rs%rt
				}
				cycles += in.cost
			case mips.MFHI:
				regs[in.rd&31] = m.HI
				regs[0] = 0
				cycles += in.cost
			case mips.MFLO:
				regs[in.rd&31] = m.LO
				regs[0] = 0
				cycles += in.cost
			case mips.MTHI:
				m.HI = regs[in.rs&31]
				cycles += in.cost
			case mips.MTLO:
				m.LO = regs[in.rs&31]
				cycles += in.cost
			case mips.ADDI, mips.ADDIU:
				regs[in.rt&31] = regs[in.rs&31] + in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.SLTI:
				regs[in.rt&31] = b2u(int32(regs[in.rs&31]) < in.imm)
				regs[0] = 0
				cycles += in.cost
			case mips.SLTIU:
				regs[in.rt&31] = b2u(regs[in.rs&31] < in.immU)
				regs[0] = 0
				cycles += in.cost
			case mips.ANDI:
				regs[in.rt&31] = regs[in.rs&31] & in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.ORI:
				regs[in.rt&31] = regs[in.rs&31] | in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.XORI:
				regs[in.rt&31] = regs[in.rs&31] ^ in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.LUI:
				regs[in.rt&31] = in.immU
				regs[0] = 0
				cycles += in.cost
			case mips.LB:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 1))
				}
				v := m.mem.Page(addr)[addr&binimg.PageMask]
				regs[in.rt&31] = uint32(int32(int8(v)))
				regs[0] = 0
				cycles += in.cost
			case mips.LBU:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 1))
				}
				regs[in.rt&31] = uint32(m.mem.Page(addr)[addr&binimg.PageMask])
				regs[0] = 0
				cycles += in.cost
			case mips.LH:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&1 != 0 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 2))
				}
				v := binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[in.rt&31] = uint32(int32(int16(v)))
				regs[0] = 0
				cycles += in.cost
			case mips.LHU:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&1 != 0 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 2))
				}
				regs[in.rt&31] = uint32(binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:]))
				regs[0] = 0
				cycles += in.cost
			case mips.LW:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&3 != 0 {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), loadFault(addr, 4))
				}
				regs[in.rt&31] = binary.LittleEndian.Uint32(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[0] = 0
				cycles += in.cost
			case mips.SB:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || (addr >= textBase && addr < textEnd) {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), storeFault(addr, 1))
				}
				m.mem.Page(addr)[addr&binimg.PageMask] = byte(regs[in.rt&31])
				cycles += in.cost
			case mips.SH:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&1 != 0 || (addr >= textBase && addr < textEnd) {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), storeFault(addr, 2))
				}
				binary.LittleEndian.PutUint16(m.mem.Page(addr)[addr&binimg.PageMask:], uint16(regs[in.rt&31]))
				cycles += in.cost
			case mips.SW:
				addr := regs[in.rs&31] + in.immU
				if addr < 0x1000 || addr&3 != 0 || (addr >= textBase && addr < textEnd) {
					return m.fail(&res, steps, cycles, textBase+uint32(4*i), storeFault(addr, 4))
				}
				binary.LittleEndian.PutUint32(m.mem.Page(addr)[addr&binimg.PageMask:], regs[in.rt&31])
				cycles += in.cost
			case mips.BEQ:
				if regs[in.rs&31] == regs[in.rt&31] {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edgeCount[in.edge]++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BNE:
				if regs[in.rs&31] != regs[in.rt&31] {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edgeCount[in.edge]++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BLEZ:
				if int32(regs[in.rs&31]) <= 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edgeCount[in.edge]++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BGTZ:
				if int32(regs[in.rs&31]) > 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edgeCount[in.edge]++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BLTZ:
				if int32(regs[in.rs&31]) < 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edgeCount[in.edge]++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.BGEZ:
				if int32(regs[in.rs&31]) >= 0 {
					cycles += cm.BranchTaken
					if in.edge >= 0 {
						m.edgeCount[in.edge]++
					}
					pc = in.target
					continue outer
				}
				cycles += cm.BranchNot
			case mips.J:
				cycles += in.cost
				if in.edge >= 0 {
					m.edgeCount[in.edge]++
				}
				pc = in.target
				continue outer
			case mips.JAL:
				regs[mips.RA] = textBase + uint32(4*i) + 4
				cycles += in.cost
				if in.edge >= 0 {
					m.edgeCount[in.edge]++
				}
				pc = in.target
				continue outer
			case mips.JR:
				t := regs[in.rs&31]
				cycles += in.cost
				if t&3 != 0 || t < textBase || t >= textEnd {
					here := textBase + uint32(4*i)
					return m.fail(&res, steps, cycles, here,
						fmt.Errorf("sim: jr at 0x%x: jump target 0x%x outside text", here, t))
				}
				if in.jr >= 0 {
					m.recordDynEdge(in.jr, t)
				}
				pc = t
				continue outer
			case mips.JALR:
				t := regs[in.rs&31]
				regs[in.rd&31] = textBase + uint32(4*i) + 4
				regs[0] = 0
				cycles += in.cost
				if t&3 != 0 || t < textBase || t >= textEnd {
					here := textBase + uint32(4*i)
					return m.fail(&res, steps, cycles, here,
						fmt.Errorf("sim: jalr at 0x%x: jump target 0x%x outside text", here, t))
				}
				if in.jr >= 0 {
					m.recordDynEdge(in.jr, t)
				}
				pc = t
				continue outer
			default:
				return m.fail(&res, steps, cycles, textBase+uint32(4*i),
					fmt.Errorf("sim: unimplemented op %v at 0x%x", in.op, textBase+uint32(4*i)))
			}
		}
		// The block fell through: either a not-taken branch, a block that
		// runs off the end of text, or a step-budget-limited prefix.
		pc = textBase + uint32(4*(limit+1))
	}
}

// recordDynEdge counts one taken dynamic-target transfer (JR/JALR).
func (m *Machine) recordDynEdge(site int32, to uint32) {
	targets := m.jrEdges[site]
	if targets == nil {
		targets = make(map[uint32]uint64)
		m.jrEdges[site] = targets
	}
	targets[to]++
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Execute is a convenience wrapper: load img and run with cfg.
func Execute(img *binimg.Image, cfg Config) (Result, error) {
	m, err := New(img, cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run()
}
