// Package sim implements a functional MIPS simulator with a cycle model
// and an execution profiler. It stands in for the hypothetical-platform
// simulation infrastructure of the reproduced paper: software execution
// times come from instruction counts weighted by a published-CPI-style
// cost model, and the profiler's per-address and per-edge counts drive the
// partitioner's "most frequent loops" step.
package sim

import (
	"fmt"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// CycleModel gives the cost in CPU cycles of each instruction class,
// loosely following an R3000-class integer pipeline.
type CycleModel struct {
	ALU         uint64
	Load        uint64
	Store       uint64
	BranchTaken uint64
	BranchNot   uint64
	Jump        uint64
	Mult        uint64
	Div         uint64
}

// DefaultCycleModel is the model used throughout the experiments.
var DefaultCycleModel = CycleModel{
	ALU:         1,
	Load:        2,
	Store:       1,
	BranchTaken: 2,
	BranchNot:   1,
	Jump:        2,
	Mult:        10,
	Div:         35,
}

// Config controls a simulation run.
type Config struct {
	StackTop uint32
	MaxSteps uint64
	Cycles   CycleModel
	Profile  bool
}

// DefaultConfig returns a Config suitable for the benchmark suite.
func DefaultConfig() Config {
	return Config{
		StackTop: binimg.DefaultStackTop,
		MaxSteps: 500_000_000,
		Cycles:   DefaultCycleModel,
		Profile:  false,
	}
}

// Profile holds execution counts gathered during a run.
type Profile struct {
	// InstCount maps instruction address to execution count.
	InstCount map[uint32]uint64
	// EdgeCount maps taken control-flow edges (branches and jumps only)
	// to counts; fallthroughs are not recorded.
	EdgeCount map[Edge]uint64
}

// Edge is one control transfer from From to To (byte addresses).
type Edge struct{ From, To uint32 }

// Result summarizes a completed run.
type Result struct {
	Steps    uint64 // instructions executed
	Cycles   uint64 // modeled CPU cycles
	ExitCode int32  // $v0 at the halting BREAK
	Profile  *Profile
}

// Machine is a MIPS machine instance. Create with New, execute with Run.
type Machine struct {
	cfg   Config
	img   *binimg.Image
	code  []mips.Inst // pre-decoded text
	Regs  [32]uint32
	HI    uint32
	LO    uint32
	PC    uint32
	pages map[uint32][]byte
	prof  *Profile
}

const pageBits = 12

// New loads an image into a fresh machine.
func New(img *binimg.Image, cfg Config) (*Machine, error) {
	m := &Machine{cfg: cfg, img: img, pages: make(map[uint32][]byte)}
	m.code = make([]mips.Inst, len(img.Text))
	for i, w := range img.Text {
		in, err := mips.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("sim: text word %d: %w", i, err)
		}
		m.code[i] = in
	}
	for i, b := range img.Data {
		m.storeByte(img.DataBase+uint32(i), b)
	}
	m.PC = img.Entry
	m.Regs[mips.SP] = cfg.StackTop
	if cfg.Profile {
		m.prof = &Profile{
			InstCount: make(map[uint32]uint64),
			EdgeCount: make(map[Edge]uint64),
		}
	}
	return m, nil
}

func (m *Machine) page(addr uint32) []byte {
	pn := addr >> pageBits
	p, ok := m.pages[pn]
	if !ok {
		p = make([]byte, 1<<pageBits)
		m.pages[pn] = p
	}
	return p
}

func (m *Machine) storeByte(addr uint32, b byte) {
	m.page(addr)[addr&(1<<pageBits-1)] = b
}

func (m *Machine) loadByte(addr uint32) byte {
	return m.page(addr)[addr&(1<<pageBits-1)]
}

// ReadWord returns the 32-bit little-endian word at addr (for tests and
// result extraction).
func (m *Machine) ReadWord(addr uint32) uint32 {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.loadByte(addr+i)) << (8 * i)
	}
	return v
}

// WriteWord stores a 32-bit little-endian word at addr.
func (m *Machine) WriteWord(addr uint32, v uint32) {
	for i := uint32(0); i < 4; i++ {
		m.storeByte(addr+i, byte(v>>(8*i)))
	}
}

func (m *Machine) load(addr uint32, width int) (uint32, error) {
	if addr < 0x1000 {
		return 0, fmt.Errorf("sim: load from near-null address 0x%x", addr)
	}
	if uint32(width) > 1 && addr%uint32(width) != 0 {
		return 0, fmt.Errorf("sim: misaligned %d-byte load at 0x%x", width, addr)
	}
	var v uint32
	for i := 0; i < width; i++ {
		v |= uint32(m.loadByte(addr+uint32(i))) << (8 * i)
	}
	return v, nil
}

func (m *Machine) store(addr uint32, v uint32, width int) error {
	if addr < 0x1000 {
		return fmt.Errorf("sim: store to near-null address 0x%x", addr)
	}
	if uint32(width) > 1 && addr%uint32(width) != 0 {
		return fmt.Errorf("sim: misaligned %d-byte store at 0x%x", width, addr)
	}
	if m.img.InText(addr) {
		return fmt.Errorf("sim: store into text section at 0x%x", addr)
	}
	for i := 0; i < width; i++ {
		m.storeByte(addr+uint32(i), byte(v>>(8*i)))
	}
	return nil
}

// Run executes until BREAK, an error, or the step limit.
func (m *Machine) Run() (Result, error) {
	var res Result
	maxSteps := m.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultConfig().MaxSteps
	}
	cm := m.cfg.Cycles
	if cm == (CycleModel{}) {
		cm = DefaultCycleModel
	}
	for res.Steps < maxSteps {
		if !m.img.InText(m.PC) || m.PC%4 != 0 {
			return res, fmt.Errorf("sim: PC 0x%x outside text", m.PC)
		}
		idx := (m.PC - m.img.TextBase) / 4
		in := m.code[idx]
		if m.prof != nil {
			m.prof.InstCount[m.PC]++
		}
		res.Steps++

		next := m.PC + 4
		taken := uint32(0)
		hasTarget := false

		rs := m.Regs[in.Rs]
		rt := m.Regs[in.Rt]
		setRd := func(v uint32) {
			if in.Rd != 0 {
				m.Regs[in.Rd] = v
			}
		}
		setRt := func(v uint32) {
			if in.Rt != 0 {
				m.Regs[in.Rt] = v
			}
		}

		switch in.Op {
		case mips.NOP:
			res.Cycles += cm.ALU
		case mips.BREAK:
			res.Cycles += cm.ALU
			res.ExitCode = int32(m.Regs[mips.V0])
			res.Profile = m.prof
			return res, nil
		case mips.ADD, mips.ADDU:
			setRd(rs + rt)
			res.Cycles += cm.ALU
		case mips.SUB, mips.SUBU:
			setRd(rs - rt)
			res.Cycles += cm.ALU
		case mips.AND:
			setRd(rs & rt)
			res.Cycles += cm.ALU
		case mips.OR:
			setRd(rs | rt)
			res.Cycles += cm.ALU
		case mips.XOR:
			setRd(rs ^ rt)
			res.Cycles += cm.ALU
		case mips.NOR:
			setRd(^(rs | rt))
			res.Cycles += cm.ALU
		case mips.SLT:
			setRd(b2u(int32(rs) < int32(rt)))
			res.Cycles += cm.ALU
		case mips.SLTU:
			setRd(b2u(rs < rt))
			res.Cycles += cm.ALU
		case mips.SLL:
			setRd(rt << uint32(in.Imm))
			res.Cycles += cm.ALU
		case mips.SRL:
			setRd(rt >> uint32(in.Imm))
			res.Cycles += cm.ALU
		case mips.SRA:
			setRd(uint32(int32(rt) >> uint32(in.Imm)))
			res.Cycles += cm.ALU
		case mips.SLLV:
			setRd(rt << (rs & 31))
			res.Cycles += cm.ALU
		case mips.SRLV:
			setRd(rt >> (rs & 31))
			res.Cycles += cm.ALU
		case mips.SRAV:
			setRd(uint32(int32(rt) >> (rs & 31)))
			res.Cycles += cm.ALU
		case mips.MULT:
			p := int64(int32(rs)) * int64(int32(rt))
			m.LO, m.HI = uint32(p), uint32(uint64(p)>>32)
			res.Cycles += cm.Mult
		case mips.MULTU:
			p := uint64(rs) * uint64(rt)
			m.LO, m.HI = uint32(p), uint32(p>>32)
			res.Cycles += cm.Mult
		case mips.DIV:
			if rt == 0 {
				m.LO, m.HI = 0, rs // architecturally undefined; pick stable values
			} else if int32(rs) == -1<<31 && int32(rt) == -1 {
				m.LO, m.HI = rs, 0
			} else {
				m.LO = uint32(int32(rs) / int32(rt))
				m.HI = uint32(int32(rs) % int32(rt))
			}
			res.Cycles += cm.Div
		case mips.DIVU:
			if rt == 0 {
				m.LO, m.HI = 0, rs
			} else {
				m.LO, m.HI = rs/rt, rs%rt
			}
			res.Cycles += cm.Div
		case mips.MFHI:
			setRd(m.HI)
			res.Cycles += cm.ALU
		case mips.MFLO:
			setRd(m.LO)
			res.Cycles += cm.ALU
		case mips.MTHI:
			m.HI = rs
			res.Cycles += cm.ALU
		case mips.MTLO:
			m.LO = rs
			res.Cycles += cm.ALU
		case mips.ADDI, mips.ADDIU:
			setRt(rs + uint32(in.Imm))
			res.Cycles += cm.ALU
		case mips.SLTI:
			setRt(b2u(int32(rs) < in.Imm))
			res.Cycles += cm.ALU
		case mips.SLTIU:
			setRt(b2u(rs < uint32(in.Imm)))
			res.Cycles += cm.ALU
		case mips.ANDI:
			setRt(rs & uint32(uint16(in.Imm)))
			res.Cycles += cm.ALU
		case mips.ORI:
			setRt(rs | uint32(uint16(in.Imm)))
			res.Cycles += cm.ALU
		case mips.XORI:
			setRt(rs ^ uint32(uint16(in.Imm)))
			res.Cycles += cm.ALU
		case mips.LUI:
			setRt(uint32(in.Imm) << 16)
			res.Cycles += cm.ALU
		case mips.LB:
			v, err := m.load(rs+uint32(in.Imm), 1)
			if err != nil {
				return res, err
			}
			setRt(uint32(int32(int8(v))))
			res.Cycles += cm.Load
		case mips.LBU:
			v, err := m.load(rs+uint32(in.Imm), 1)
			if err != nil {
				return res, err
			}
			setRt(v)
			res.Cycles += cm.Load
		case mips.LH:
			v, err := m.load(rs+uint32(in.Imm), 2)
			if err != nil {
				return res, err
			}
			setRt(uint32(int32(int16(v))))
			res.Cycles += cm.Load
		case mips.LHU:
			v, err := m.load(rs+uint32(in.Imm), 2)
			if err != nil {
				return res, err
			}
			setRt(v)
			res.Cycles += cm.Load
		case mips.LW:
			v, err := m.load(rs+uint32(in.Imm), 4)
			if err != nil {
				return res, err
			}
			setRt(v)
			res.Cycles += cm.Load
		case mips.SB:
			if err := m.store(rs+uint32(in.Imm), rt, 1); err != nil {
				return res, err
			}
			res.Cycles += cm.Store
		case mips.SH:
			if err := m.store(rs+uint32(in.Imm), rt, 2); err != nil {
				return res, err
			}
			res.Cycles += cm.Store
		case mips.SW:
			if err := m.store(rs+uint32(in.Imm), rt, 4); err != nil {
				return res, err
			}
			res.Cycles += cm.Store
		case mips.BEQ:
			if rs == rt {
				taken, hasTarget = m.PC+4+uint32(in.Imm)*4, true
			}
		case mips.BNE:
			if rs != rt {
				taken, hasTarget = m.PC+4+uint32(in.Imm)*4, true
			}
		case mips.BLEZ:
			if int32(rs) <= 0 {
				taken, hasTarget = m.PC+4+uint32(in.Imm)*4, true
			}
		case mips.BGTZ:
			if int32(rs) > 0 {
				taken, hasTarget = m.PC+4+uint32(in.Imm)*4, true
			}
		case mips.BLTZ:
			if int32(rs) < 0 {
				taken, hasTarget = m.PC+4+uint32(in.Imm)*4, true
			}
		case mips.BGEZ:
			if int32(rs) >= 0 {
				taken, hasTarget = m.PC+4+uint32(in.Imm)*4, true
			}
		case mips.J:
			taken, hasTarget = in.Target, true
			res.Cycles += cm.Jump
		case mips.JAL:
			m.Regs[mips.RA] = m.PC + 4
			taken, hasTarget = in.Target, true
			res.Cycles += cm.Jump
		case mips.JR:
			taken, hasTarget = rs, true
			res.Cycles += cm.Jump
		case mips.JALR:
			setRd(m.PC + 4)
			taken, hasTarget = rs, true
			res.Cycles += cm.Jump
		default:
			return res, fmt.Errorf("sim: unimplemented op %v at 0x%x", in.Op, m.PC)
		}

		if in.IsBranch() {
			if hasTarget {
				res.Cycles += cm.BranchTaken
			} else {
				res.Cycles += cm.BranchNot
			}
		}
		if hasTarget {
			if m.prof != nil {
				m.prof.EdgeCount[Edge{From: m.PC, To: taken}]++
			}
			m.PC = taken
		} else {
			m.PC = next
		}
	}
	return res, fmt.Errorf("sim: step limit (%d) exceeded at PC 0x%x", maxSteps, m.PC)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Execute is a convenience wrapper: load img and run with cfg.
func Execute(img *binimg.Image, cfg Config) (Result, error) {
	m, err := New(img, cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run()
}
