// Threaded-code translation and the superinstruction-fusion peephole.
//
// Each basic block is translated once, on first execution, into a flat
// run of superops (pinst records tagged by op) that exec.go dispatches
// without per-instruction step, cycle, or profile accounting — the block
// totals are precomputed here. Translations are keyed by entry point:
// a jump into the middle of a straight-line run simply gets its own
// translation starting there, so fusion never needs control-flow
// legality analysis (a fused pair can only be entered at its head).
// Text is immutable, so translations are never invalidated.
//
// Fusion is built on a micro-ALU normalization: every simple ALU op —
// three-register forms, immediates, shifts by constant or register, and
// LUI — reduces to one of eleven branchless micro-kinds of the shape
// d = kind(a, b, imm) with unused register operands pointed at $zero
// (micro, microOf). That one normalization lets generic pair patterns
// (alu+alu, alu+load, load+alu, alu+store, store+alu, alu+branch) cover
// the dominant dynamic pairs without enumerating opcode combinations.
package sim

import "binpart/internal/mips"

// Fused superop tags, continuing the mips.Op space. Every fused op
// emulates its constituents strictly in order — including intermediate
// register writes and $zero re-zeroing — so it is observably identical
// to executing them one at a time.
// Beyond the generic category tags, the dynamically dominant
// combinations get specialized tags whose exec bodies are fully inline
// with no secondary dispatch at all: pair-frequency counts across the
// benchmark suite show uADD (addiu/addu) halves and LW/SW memory halves
// in nearly all of the top pairs, so those spellings carry the bulk of
// retired fused steps on a single indirect jump each.
const (
	// fuseAluAlu: two simple ALU ops. First: sub=kind, rd=a1, rs/rt
	// sources, immU. Second: kind in target's low byte, x=d2, y/z
	// sources, imm.
	fuseAluAlu = mips.Op(mips.NumOps) + iota
	fuseAddAdd // both halves uADD
	fuseAddAlu // first half uADD, second generic
	fuseAluAdd // first generic, second uADD
	// fuseAluBranch: a simple ALU op (sub=kind, rd, rs, rt, immU) then
	// any conditional branch (cond in z, operands x ? y) — covers the
	// compare+branch and addiu loop-latch idioms.
	fuseAluBranch
	// fuseAddiuAddiuBranch: two ADDIUs (rt,rs,immU and rd,x,imm) then a
	// conditional branch (sub=cond) on y ? z — the two-counter latch.
	fuseAddiuAddiuBranch
	// fuseLuiOri: LUI r, hi then ORI d, r, lo — 32-bit constant
	// formation. imm holds the LUI value, immU the combined constant;
	// rs=r, rd=d.
	fuseLuiOri
	// fuseLoadAlu: a load (sub=mips.Op, rt, base rs, offset immU) then a
	// simple ALU op (kind in target's low byte, x=d, y/z sources, imm).
	fuseLoadAlu
	fuseLwAlu // the load is LW (inline body, no width dispatch)
	// fuseAluLoad: a simple ALU op (sub=kind, rd, rs, rt, immU) then a
	// load (mips.Op in target's low byte, dest x, base y, offset imm).
	fuseAluLoad
	fuseAluLw  // the load is LW
	fuseAluLbu // the load is LBU
	// fuseAluStore: a simple ALU op (sub=kind, rd, rs, rt, immU) then a
	// store (mips.Op in target's low byte, data x, base y, offset imm).
	fuseAluStore
	fuseAluSw // the store is SW
	// fuseStoreAlu: a store (sub=mips.Op, data rt, base rs, offset immU)
	// then a simple ALU op (kind in target's low byte, x=d, y/z, imm).
	fuseStoreAlu
	fuseSwAlu // the store is SW
	// fuseMultMflo: MULT/MULTU (sub distinguishes, rs, rt) then MFLO rd.
	fuseMultMflo
)

// Micro-ALU kinds. Each simple ALU op normalizes to d = micro(kind, a,
// b, imm) with a = regs[s1], b = regs[s2]; immediate forms point the
// unused source at $zero so the same branchless body serves both (e.g.
// ORI is a|b|imm with b read from $zero, LUI additionally reads a from
// $zero, SLL's shift amount is (a&31)|imm with a from $zero for the
// immediate form and imm=0 for SLLV).
const (
	uADD uint8 = iota
	uSUB
	uAND
	uOR
	uXOR
	uNOR
	uSLT
	uSLTU
	uSLL
	uSRL
	uSRA
)

// The micro-ALU evaluator is split in two so each half fits the
// compiler's inlining budget: a single function covering all eleven
// kinds costs ~113 nodes against the budget of 80, and an out-of-line
// call (plus its own dispatch) at every fused-op body would cost as much
// as the instruction dispatch that fusion removes. Exec sites branch on
// kind < uSLT and get both halves inlined (see the microALU pattern in
// exec.go).

// microArith evaluates the arithmetic/logical micro-kinds (< uSLT).
func microArith(kind uint8, a, b, imm uint32) uint32 {
	switch kind {
	case uADD:
		return a + b + imm
	case uSUB:
		return a - b
	case uAND:
		return a & (b | imm)
	case uOR:
		return a | b | imm
	case uXOR:
		return a ^ (b | imm)
	}
	return ^(a | b | imm) // uNOR
}

// microCmpShift evaluates the comparison and shift micro-kinds (>= uSLT).
func microCmpShift(kind uint8, a, b, imm uint32) uint32 {
	switch kind {
	case uSLT:
		return b2u(int32(a) < int32(b|imm))
	case uSLTU:
		return b2u(a < (b | imm))
	case uSLL:
		return b << ((a & 31) | imm)
	case uSRL:
		return b >> ((a & 31) | imm)
	}
	return uint32(int32(b) >> ((a & 31) | imm)) // uSRA
}

// microOf normalizes a predecoded instruction to its micro-ALU form.
// ok is false for anything that is not a simple one-destination ALU op
// (memory, control, HI/LO, BREAK, NOP).
func microOf(p *pinst) (kind, d, s1, s2 uint8, imm uint32, ok bool) {
	switch p.op {
	case mips.ADD, mips.ADDU:
		return uADD, p.rd, p.rs, p.rt, 0, true
	case mips.ADDI, mips.ADDIU:
		return uADD, p.rt, p.rs, 0, p.immU, true
	case mips.SUB, mips.SUBU:
		return uSUB, p.rd, p.rs, p.rt, 0, true
	case mips.AND:
		return uAND, p.rd, p.rs, p.rt, 0, true
	case mips.ANDI:
		return uAND, p.rt, p.rs, 0, p.immU, true
	case mips.OR:
		return uOR, p.rd, p.rs, p.rt, 0, true
	case mips.ORI:
		return uOR, p.rt, p.rs, 0, p.immU, true
	case mips.LUI:
		return uOR, p.rt, 0, 0, p.immU, true
	case mips.XOR:
		return uXOR, p.rd, p.rs, p.rt, 0, true
	case mips.XORI:
		return uXOR, p.rt, p.rs, 0, p.immU, true
	case mips.NOR:
		return uNOR, p.rd, p.rs, p.rt, 0, true
	case mips.SLT:
		return uSLT, p.rd, p.rs, p.rt, 0, true
	case mips.SLTI:
		return uSLT, p.rt, p.rs, 0, p.immU, true
	case mips.SLTU:
		return uSLTU, p.rd, p.rs, p.rt, 0, true
	case mips.SLTIU:
		return uSLTU, p.rt, p.rs, 0, p.immU, true
	case mips.SLL:
		return uSLL, p.rd, 0, p.rt, p.immU, true
	case mips.SLLV:
		return uSLL, p.rd, p.rs, p.rt, 0, true
	case mips.SRL:
		return uSRL, p.rd, 0, p.rt, p.immU, true
	case mips.SRLV:
		return uSRL, p.rd, p.rs, p.rt, 0, true
	case mips.SRA:
		return uSRA, p.rd, 0, p.rt, p.immU, true
	case mips.SRAV:
		return uSRA, p.rd, p.rs, p.rt, 0, true
	}
	return 0, 0, 0, 0, 0, false
}

// Branch condition codes for fused branches (takeBranch).
const (
	condEQ uint8 = iota
	condNE
	condLEZ
	condGTZ
	condLTZ
	condGEZ
)

// takeBranch evaluates a fused branch condition. Single-operand
// conditions ignore b.
func takeBranch(cond uint8, a, b uint32) bool {
	switch cond {
	case condEQ:
		return a == b
	case condNE:
		return a != b
	case condLEZ:
		return int32(a) <= 0
	case condGTZ:
		return int32(a) > 0
	case condLTZ:
		return int32(a) < 0
	}
	return int32(a) >= 0 // condGEZ
}

// condOf maps a conditional-branch pinst to a fused condition code and
// its operand registers.
func condOf(p *pinst) (cond, x, y uint8) {
	switch p.op {
	case mips.BEQ:
		return condEQ, p.rs, p.rt
	case mips.BNE:
		return condNE, p.rs, p.rt
	case mips.BLEZ:
		return condLEZ, p.rs, 0
	case mips.BGTZ:
		return condGTZ, p.rs, 0
	case mips.BLTZ:
		return condLTZ, p.rs, 0
	}
	return condGEZ, p.rs, 0 // mips.BGEZ
}

// Fusion patterns, indexed for static/dynamic accounting.
const (
	patAluAlu = iota
	patAluBranch
	patAddiuAddiuBranch
	patLuiOri
	patLoadAlu
	patAluLoad
	patAluStore
	patStoreAlu
	patMultMflo
	numPatterns
)

// patternNames and patternWidths describe each pattern for FusionStats;
// width is the number of constituent instructions a fused op retires.
var patternNames = [numPatterns]string{
	patAluAlu:           "alu+alu",
	patAluBranch:        "alu+branch",
	patAddiuAddiuBranch: "addiu+addiu+branch",
	patLuiOri:           "lui+ori",
	patLoadAlu:          "load+alu",
	patAluLoad:          "alu+load",
	patAluStore:         "alu+store",
	patStoreAlu:         "store+alu",
	patMultMflo:         "mult+mflo",
}

var patternWidths = [numPatterns]uint32{
	patAluAlu:           2,
	patAluBranch:        2,
	patAddiuAddiuBranch: 3,
	patLuiOri:           2,
	patLoadAlu:          2,
	patAluLoad:          2,
	patAluStore:         2,
	patStoreAlu:         2,
	patMultMflo:         2,
}

// tblock is one translated basic block, keyed by its entry point
// (code[start].tix). steps and cost are the totals for one complete
// execution, charged up front by Run and rewound by blockFault if a
// constituent faults; exec counts completed executions and reconstructs
// per-instruction profile counts in buildProfile.
type tblock struct {
	off   int32 // first superop in Machine.fops
	n     int32 // number of superops
	start int32 // entry text index
	end   int32 // terminator text index
	next  int32 // fallthrough successor tblock, -1 until first taken
	steps uint64
	cost  uint64
	exec  uint64
	fused uint32              // constituents retired via fused ops per execution
	pat   [numPatterns]uint32 // static fused-op count per pattern
}

func isLoadOp(op mips.Op) bool {
	switch op {
	case mips.LB, mips.LBU, mips.LH, mips.LHU, mips.LW:
		return true
	}
	return false
}

func isStoreOp(op mips.Op) bool {
	switch op {
	case mips.SB, mips.SH, mips.SW:
		return true
	}
	return false
}

// translate builds the superop run for the block entered at text index
// entry, caches it, and returns its tblock index.
func (m *Machine) translate(entry int32) int32 {
	code := m.code
	end := m.blockTermIndex(entry)
	fuse := m.cfg.Engine != EngineBlock

	blk := tblock{
		off:   int32(len(m.fops)),
		start: entry,
		end:   end,
		next:  -1,
		steps: uint64(end-entry) + 1,
	}
	for j := entry; j <= end; j++ {
		blk.cost += code[j].cost
	}

	for i := entry; i <= end; {
		p := &code[i]
		if fuse {
			if pat, f := m.fusePair(p, i, end); pat >= 0 {
				m.fops = append(m.fops, f)
				blk.pat[pat]++
				i += int32(patternWidths[pat])
				continue
			}
		}
		f := *p
		f.idx = i
		// code[i].tix marks i as a block entry; in a fop the field caches
		// the fused op's own branch target instead, so clear it.
		f.tix = -1
		if f.op == mips.JAL || f.op == mips.JALR {
			// Precompute the return address.
			f.immU = m.img.TextBase + uint32(4*i) + 4
		}
		m.fops = append(m.fops, f)
		i++
	}

	blk.n = int32(len(m.fops)) - blk.off
	for k, c := range blk.pat {
		blk.fused += c * patternWidths[k]
	}
	m.tblocks = append(m.tblocks, blk)
	tix := int32(len(m.tblocks) - 1)
	code[entry].tix = tix
	return tix
}

// tixFor resolves a control-transfer target PC to its translated-block
// index, translating the block on first arrival. It returns -1 for a
// target outside text (or misaligned); the caller reports the fault.
// Run caches the result in the transferring superop (f.tix) or block
// (tblock.next), so steady-state execution chains block to block without
// touching PC arithmetic or the code array again.
func (m *Machine) tixFor(pc uint32) int32 {
	if pc&3 != 0 || pc < m.img.TextBase || pc >= m.img.TextEnd() {
		return -1
	}
	idx := int32((pc - m.img.TextBase) >> 2)
	t := m.code[idx].tix
	if t < 0 {
		t = m.translate(idx)
	}
	return t
}

// fusePair tries every fusion pattern at text index i (p = &code[i],
// end = the block terminator's index). On a match it returns the pattern
// index and the fused superop; otherwise pattern -1.
func (m *Machine) fusePair(p *pinst, i, end int32) (int, pinst) {
	code := m.code
	// Conditional branches only appear at end, so a branch matched in a
	// pattern is always the block terminator.
	if i+2 <= end && p.op == mips.ADDIU && code[i+1].op == mips.ADDIU &&
		code[i+2].op.IsCondBranch() {
		a2, br := &code[i+1], &code[i+2]
		cond, bx, by := condOf(br)
		return patAddiuAddiuBranch, pinst{
			op: fuseAddiuAddiuBranch, sub: cond,
			rt: p.rt, rs: p.rs, immU: p.immU,
			rd: a2.rt, x: a2.rs, imm: a2.imm,
			y: bx, z: by,
			target: br.target, edge: br.edge, jr: -1, tix: -1, idx: i,
		}
	}
	if i+1 > end {
		return -1, pinst{}
	}
	next := &code[i+1]
	if p.op == mips.LUI && p.rt != 0 && next.op == mips.ORI && next.rs == p.rt {
		return patLuiOri, pinst{
			op: fuseLuiOri,
			rs: p.rt, imm: int32(p.immU),
			rd: next.rt, immU: p.immU | next.immU,
			edge: -1, jr: -1, tix: -1, idx: i,
		}
	}
	if (p.op == mips.MULT || p.op == mips.MULTU) && next.op == mips.MFLO {
		sub := uint8(0)
		if p.op == mips.MULTU {
			sub = 1
		}
		return patMultMflo, pinst{
			op: fuseMultMflo, sub: sub,
			rs: p.rs, rt: p.rt, rd: next.rd,
			edge: -1, jr: -1, tix: -1, idx: i,
		}
	}
	if k1, d1, a1, b1, imm1, ok := microOf(p); ok {
		switch {
		case next.op.IsCondBranch():
			cond, bx, by := condOf(next)
			return patAluBranch, pinst{
				op: fuseAluBranch, sub: k1,
				rd: d1, rs: a1, rt: b1, immU: imm1,
				x: bx, y: by, z: cond,
				target: next.target, edge: next.edge, jr: -1, tix: -1, idx: i,
			}
		case isLoadOp(next.op):
			op := fuseAluLoad
			switch next.op {
			case mips.LW:
				op = fuseAluLw
			case mips.LBU:
				op = fuseAluLbu
			}
			return patAluLoad, pinst{
				op: op, sub: k1,
				rd: d1, rs: a1, rt: b1, immU: imm1,
				target: uint32(next.op), x: next.rt, y: next.rs, imm: next.imm,
				edge: -1, jr: -1, tix: -1, idx: i,
			}
		case isStoreOp(next.op):
			op := fuseAluStore
			if next.op == mips.SW {
				op = fuseAluSw
			}
			return patAluStore, pinst{
				op: op, sub: k1,
				rd: d1, rs: a1, rt: b1, immU: imm1,
				target: uint32(next.op), x: next.rt, y: next.rs, imm: next.imm,
				edge: -1, jr: -1, tix: -1, idx: i,
			}
		}
		if k2, d2, a2, b2, imm2, ok2 := microOf(next); ok2 {
			op := fuseAluAlu
			switch {
			case k1 == uADD && k2 == uADD:
				op = fuseAddAdd
			case k1 == uADD:
				op = fuseAddAlu
			case k2 == uADD:
				op = fuseAluAdd
			}
			return patAluAlu, pinst{
				op: op, sub: k1,
				rd: d1, rs: a1, rt: b1, immU: imm1,
				target: uint32(k2), x: d2, y: a2, z: b2, imm: int32(imm2),
				edge: -1, jr: -1, tix: -1, idx: i,
			}
		}
		return -1, pinst{}
	}
	if isLoadOp(p.op) {
		if k2, d2, a2, b2, imm2, ok2 := microOf(next); ok2 {
			op := fuseLoadAlu
			if p.op == mips.LW {
				op = fuseLwAlu
			}
			return patLoadAlu, pinst{
				op: op, sub: uint8(p.op),
				rt: p.rt, rs: p.rs, immU: p.immU,
				target: uint32(k2), x: d2, y: a2, z: b2, imm: int32(imm2),
				edge: -1, jr: -1, tix: -1, idx: i,
			}
		}
		return -1, pinst{}
	}
	if isStoreOp(p.op) {
		if k2, d2, a2, b2, imm2, ok2 := microOf(next); ok2 {
			op := fuseStoreAlu
			if p.op == mips.SW {
				op = fuseSwAlu
			}
			return patStoreAlu, pinst{
				op: op, sub: uint8(p.op),
				rt: p.rt, rs: p.rs, immU: p.immU,
				target: uint32(k2), x: d2, y: a2, z: b2, imm: int32(imm2),
				edge: -1, jr: -1, tix: -1, idx: i,
			}
		}
	}
	return -1, pinst{}
}

// PatternStat is one fusion pattern's contribution: Static counts fused
// superops across all translated blocks, Dynamic counts fused superops
// actually retired.
type PatternStat struct {
	Name    string `json:"name"`
	Width   int    `json:"width"`
	Static  uint64 `json:"static"`
	Dynamic uint64 `json:"dynamic"`
}

// FusionStats summarizes what translation and fusion did during a run.
// Coverage is the fraction of retired steps that executed inside a fused
// superop.
type FusionStats struct {
	Engine     string        `json:"engine"`
	Blocks     int           `json:"blocks"`
	Steps      uint64        `json:"steps"`
	FusedSteps uint64        `json:"fused_steps"`
	Coverage   float64       `json:"coverage"`
	Patterns   []PatternStat `json:"patterns"`
}

// FusionStats reports translation and fusion counters for the machine's
// last run. Valid after Run returns.
func (m *Machine) FusionStats() FusionStats {
	s := FusionStats{
		Engine:   m.cfg.Engine.String(),
		Blocks:   len(m.tblocks),
		Steps:    m.lastSteps,
		Patterns: make([]PatternStat, numPatterns),
	}
	for k := range s.Patterns {
		s.Patterns[k] = PatternStat{Name: patternNames[k], Width: int(patternWidths[k])}
	}
	for bi := range m.tblocks {
		blk := &m.tblocks[bi]
		s.FusedSteps += blk.exec * uint64(blk.fused)
		for k, c := range blk.pat {
			s.Patterns[k].Static += uint64(c)
			s.Patterns[k].Dynamic += blk.exec * uint64(c)
		}
	}
	if s.Steps > 0 {
		s.Coverage = float64(s.FusedSteps) / float64(s.Steps)
	}
	return s
}

// Merge accumulates another run's fusion stats into s (for aggregate
// reporting across a batch). Engine and pattern shapes must match; the
// first non-empty Engine wins.
func (s *FusionStats) Merge(o FusionStats) {
	if s.Engine == "" {
		s.Engine = o.Engine
	}
	s.Blocks += o.Blocks
	s.Steps += o.Steps
	s.FusedSteps += o.FusedSteps
	if len(s.Patterns) == 0 {
		s.Patterns = make([]PatternStat, len(o.Patterns))
		copy(s.Patterns, o.Patterns)
	} else {
		for k := range o.Patterns {
			if k < len(s.Patterns) {
				s.Patterns[k].Static += o.Patterns[k].Static
				s.Patterns[k].Dynamic += o.Patterns[k].Dynamic
			}
		}
	}
	if s.Steps > 0 {
		s.Coverage = float64(s.FusedSteps) / float64(s.Steps)
	}
}
