// The threaded-code execution engine (EngineBlock / EngineFused).
//
// Run walks basic blocks: each entry PC is validated once, the block's
// translation is looked up (or built, translate.go), the whole block's
// steps and cycles are charged up front, and the inner loop dispatches
// superops with no per-instruction accounting at all — no step counter,
// no cycle add for straight-line ops, no profile increment (per-block
// execution counters reconstruct per-instruction counts at run end).
// Faulting constituents rewind the up-front charge (blockFault) so
// steps, cycles, and the faulting PC match the reference stepper bit
// for bit; a step budget that cannot cover the next whole block hands
// the rest of the run to the per-instruction interpreter (runInterp),
// which truncates on exactly the right instruction.
package sim

import (
	"encoding/binary"
	"fmt"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// Run executes until BREAK, an error, or the step limit, using the
// threaded-code engine (with fusion unless cfg.Engine is EngineBlock).
func (m *Machine) Run() (Result, error) {
	var res Result
	maxSteps := m.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultConfig().MaxSteps
	}
	cm := m.cm
	code := m.code
	regs := &m.Regs
	textBase := m.img.TextBase
	textEnd := m.img.TextEnd()
	pc := m.PC
	var steps, cycles uint64

	if pc&3 != 0 || pc < textBase || pc >= textEnd {
		return m.fail(&res, steps, cycles, pc,
			fmt.Errorf("sim: PC 0x%x outside text", pc))
	}
	tix := code[(pc-textBase)>>2].tix
	if tix < 0 {
		tix = m.translate(int32((pc - textBase) >> 2))
	}

outer:
	for {
		blk := &m.tblocks[tix]
		if steps+blk.steps > maxSteps {
			// The budget expires inside (or right at) this block: finish the
			// run on the per-instruction interpreter, which clamps to the
			// exact step and reports the step limit at the right PC.
			return m.runInterp(textBase+uint32(4*blk.start), steps, cycles)
		}
		steps += blk.steps
		cycles += blk.cost
		blk.exec++
		off := blk.off
		run := m.fops[off : off+blk.n]
		for fi := 0; fi < len(run); fi++ {
			f := &run[fi]
			switch f.op {
			case mips.NOP:
			case mips.BREAK:
				m.PC = textBase + uint32(4*f.idx)
				m.lastSteps = steps
				res.Steps, res.Cycles = steps, cycles
				res.ExitCode = int32(regs[mips.V0])
				res.Profile = m.buildProfile()
				return res, nil
			case mips.ADD, mips.ADDU:
				regs[f.rd&31] = regs[f.rs&31] + regs[f.rt&31]
				regs[0] = 0
			case mips.SUB, mips.SUBU:
				regs[f.rd&31] = regs[f.rs&31] - regs[f.rt&31]
				regs[0] = 0
			case mips.AND:
				regs[f.rd&31] = regs[f.rs&31] & regs[f.rt&31]
				regs[0] = 0
			case mips.OR:
				regs[f.rd&31] = regs[f.rs&31] | regs[f.rt&31]
				regs[0] = 0
			case mips.XOR:
				regs[f.rd&31] = regs[f.rs&31] ^ regs[f.rt&31]
				regs[0] = 0
			case mips.NOR:
				regs[f.rd&31] = ^(regs[f.rs&31] | regs[f.rt&31])
				regs[0] = 0
			case mips.SLT:
				regs[f.rd&31] = b2u(int32(regs[f.rs&31]) < int32(regs[f.rt&31]))
				regs[0] = 0
			case mips.SLTU:
				regs[f.rd&31] = b2u(regs[f.rs&31] < regs[f.rt&31])
				regs[0] = 0
			case mips.SLL:
				regs[f.rd&31] = regs[f.rt&31] << f.immU
				regs[0] = 0
			case mips.SRL:
				regs[f.rd&31] = regs[f.rt&31] >> f.immU
				regs[0] = 0
			case mips.SRA:
				regs[f.rd&31] = uint32(int32(regs[f.rt&31]) >> f.immU)
				regs[0] = 0
			case mips.SLLV:
				regs[f.rd&31] = regs[f.rt&31] << (regs[f.rs&31] & 31)
				regs[0] = 0
			case mips.SRLV:
				regs[f.rd&31] = regs[f.rt&31] >> (regs[f.rs&31] & 31)
				regs[0] = 0
			case mips.SRAV:
				regs[f.rd&31] = uint32(int32(regs[f.rt&31]) >> (regs[f.rs&31] & 31))
				regs[0] = 0
			case mips.MULT:
				p := int64(int32(regs[f.rs&31])) * int64(int32(regs[f.rt&31]))
				m.LO, m.HI = uint32(p), uint32(uint64(p)>>32)
			case mips.MULTU:
				p := uint64(regs[f.rs&31]) * uint64(regs[f.rt&31])
				m.LO, m.HI = uint32(p), uint32(p>>32)
			case mips.DIV:
				rs, rt := regs[f.rs&31], regs[f.rt&31]
				if rt == 0 {
					m.LO, m.HI = 0, rs // architecturally undefined; pick stable values
				} else if int32(rs) == -1<<31 && int32(rt) == -1 {
					m.LO, m.HI = rs, 0
				} else {
					m.LO = uint32(int32(rs) / int32(rt))
					m.HI = uint32(int32(rs) % int32(rt))
				}
			case mips.DIVU:
				rs, rt := regs[f.rs&31], regs[f.rt&31]
				if rt == 0 {
					m.LO, m.HI = 0, rs
				} else {
					m.LO, m.HI = rs/rt, rs%rt
				}
			case mips.MFHI:
				regs[f.rd&31] = m.HI
				regs[0] = 0
			case mips.MFLO:
				regs[f.rd&31] = m.LO
				regs[0] = 0
			case mips.MTHI:
				m.HI = regs[f.rs&31]
			case mips.MTLO:
				m.LO = regs[f.rs&31]
			case mips.ADDI, mips.ADDIU:
				regs[f.rt&31] = regs[f.rs&31] + f.immU
				regs[0] = 0
			case mips.SLTI:
				regs[f.rt&31] = b2u(int32(regs[f.rs&31]) < f.imm)
				regs[0] = 0
			case mips.SLTIU:
				regs[f.rt&31] = b2u(regs[f.rs&31] < f.immU)
				regs[0] = 0
			case mips.ANDI:
				regs[f.rt&31] = regs[f.rs&31] & f.immU
				regs[0] = 0
			case mips.ORI:
				regs[f.rt&31] = regs[f.rs&31] | f.immU
				regs[0] = 0
			case mips.XORI:
				regs[f.rt&31] = regs[f.rs&31] ^ f.immU
				regs[0] = 0
			case mips.LUI:
				regs[f.rt&31] = f.immU
				regs[0] = 0
			case mips.LB:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, 1))
				}
				v := m.mem.Page(addr)[addr&binimg.PageMask]
				regs[f.rt&31] = uint32(int32(int8(v)))
				regs[0] = 0
			case mips.LBU:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, 1))
				}
				regs[f.rt&31] = uint32(m.mem.Page(addr)[addr&binimg.PageMask])
				regs[0] = 0
			case mips.LH:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&1 != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, 2))
				}
				v := binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[f.rt&31] = uint32(int32(int16(v)))
				regs[0] = 0
			case mips.LHU:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&1 != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, 2))
				}
				regs[f.rt&31] = uint32(binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:]))
				regs[0] = 0
			case mips.LW:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&3 != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, 4))
				}
				regs[f.rt&31] = binary.LittleEndian.Uint32(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[0] = 0
			case mips.SB:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || (addr >= textBase && addr < textEnd) {
					return m.blockFault(&res, steps, cycles, blk, f.idx, storeFault(addr, 1))
				}
				m.mem.Page(addr)[addr&binimg.PageMask] = byte(regs[f.rt&31])
			case mips.SH:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&1 != 0 || (addr >= textBase && addr < textEnd) {
					return m.blockFault(&res, steps, cycles, blk, f.idx, storeFault(addr, 2))
				}
				binary.LittleEndian.PutUint16(m.mem.Page(addr)[addr&binimg.PageMask:], uint16(regs[f.rt&31]))
			case mips.SW:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&3 != 0 || (addr >= textBase && addr < textEnd) {
					return m.blockFault(&res, steps, cycles, blk, f.idx, storeFault(addr, 4))
				}
				binary.LittleEndian.PutUint32(m.mem.Page(addr)[addr&binimg.PageMask:], regs[f.rt&31])
			case mips.BEQ:
				if regs[f.rs&31] == regs[f.rt&31] {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case mips.BNE:
				if regs[f.rs&31] != regs[f.rt&31] {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case mips.BLEZ:
				if int32(regs[f.rs&31]) <= 0 {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case mips.BGTZ:
				if int32(regs[f.rs&31]) > 0 {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case mips.BLTZ:
				if int32(regs[f.rs&31]) < 0 {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case mips.BGEZ:
				if int32(regs[f.rs&31]) >= 0 {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case mips.J:
				if f.edge >= 0 {
					m.edges[f.edge].n++
				}
				goto taken
			case mips.JAL:
				regs[mips.RA] = f.immU // precomputed return address
				if f.edge >= 0 {
					m.edges[f.edge].n++
				}
				goto taken
			case mips.JR:
				t := regs[f.rs&31]
				if t&3 != 0 || t < textBase || t >= textEnd {
					// The jump's step and cost are already charged — the
					// reference charges both before the target check.
					here := textBase + uint32(4*f.idx)
					return m.fail(&res, steps, cycles, here,
						fmt.Errorf("sim: jr at 0x%x: jump target 0x%x outside text", here, t))
				}
				if f.jr >= 0 {
					m.recordDynEdge(f.jr, t)
				}
				// Dynamic target: resolve the block index each time.
				tix = code[(t-textBase)>>2].tix
				if tix < 0 {
					tix = m.translate(int32((t - textBase) >> 2))
				}
				continue outer
			case mips.JALR:
				t := regs[f.rs&31]
				regs[f.rd&31] = f.immU // precomputed return address
				regs[0] = 0
				if t&3 != 0 || t < textBase || t >= textEnd {
					here := textBase + uint32(4*f.idx)
					return m.fail(&res, steps, cycles, here,
						fmt.Errorf("sim: jalr at 0x%x: jump target 0x%x outside text", here, t))
				}
				if f.jr >= 0 {
					m.recordDynEdge(f.jr, t)
				}
				tix = code[(t-textBase)>>2].tix
				if tix < 0 {
					tix = m.translate(int32((t - textBase) >> 2))
				}
				continue outer

			// Fused ALU halves use the split micro evaluator: both
			// microArith and microCmpShift inline (a single full-width
			// evaluator would blow the inlining budget and cost a call
			// plus a second dispatch per half — see translate.go).
			case fuseAddAdd:
				regs[f.rd&31] = regs[f.rs&31] + regs[f.rt&31] + f.immU
				regs[0] = 0
				regs[f.x&31] = regs[f.y&31] + regs[f.z&31] + uint32(f.imm)
				regs[0] = 0
			case fuseAddAlu:
				regs[f.rd&31] = regs[f.rs&31] + regs[f.rt&31] + f.immU
				regs[0] = 0
				if k2 := uint8(f.target); k2 < uSLT {
					regs[f.x&31] = microArith(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				} else {
					regs[f.x&31] = microCmpShift(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				}
				regs[0] = 0
			case fuseAluAdd:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				regs[f.x&31] = regs[f.y&31] + regs[f.z&31] + uint32(f.imm)
				regs[0] = 0
			case fuseAluAlu:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				if k2 := uint8(f.target); k2 < uSLT {
					regs[f.x&31] = microArith(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				} else {
					regs[f.x&31] = microCmpShift(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				}
				regs[0] = 0
			case fuseAluBranch:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				if takeBranch(f.z, regs[f.x&31], regs[f.y&31]) {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			case fuseLuiOri:
				regs[f.rs&31] = uint32(f.imm) // the LUI half (rs != $zero by pattern)
				regs[f.rd&31] = f.immU        // the combined constant
				regs[0] = 0
			case fuseLwAlu:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&3 != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, 4))
				}
				regs[f.rt&31] = binary.LittleEndian.Uint32(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[0] = 0
				if k2 := uint8(f.target); k2 < uSLT {
					regs[f.x&31] = microArith(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				} else {
					regs[f.x&31] = microCmpShift(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				}
				regs[0] = 0
			case fuseLoadAlu:
				addr := regs[f.rs&31] + f.immU
				v, w := m.loadMem(mips.Op(f.sub), addr)
				if w != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, loadFault(addr, w))
				}
				regs[f.rt&31] = v
				regs[0] = 0
				if k2 := uint8(f.target); k2 < uSLT {
					regs[f.x&31] = microArith(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				} else {
					regs[f.x&31] = microCmpShift(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				}
				regs[0] = 0
			case fuseAluLw:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				addr := regs[f.y&31] + uint32(f.imm)
				if addr < 0x1000 || addr&3 != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx+1, loadFault(addr, 4))
				}
				regs[f.x&31] = binary.LittleEndian.Uint32(m.mem.Page(addr)[addr&binimg.PageMask:])
				regs[0] = 0
			case fuseAluLbu:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				addr := regs[f.y&31] + uint32(f.imm)
				if addr < 0x1000 {
					return m.blockFault(&res, steps, cycles, blk, f.idx+1, loadFault(addr, 1))
				}
				regs[f.x&31] = uint32(m.mem.Page(addr)[addr&binimg.PageMask])
				regs[0] = 0
			case fuseAluLoad:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				addr := regs[f.y&31] + uint32(f.imm)
				v, w := m.loadMem(mips.Op(f.target), addr)
				if w != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx+1, loadFault(addr, w))
				}
				regs[f.x&31] = v
				regs[0] = 0
			case fuseAluSw:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				addr := regs[f.y&31] + uint32(f.imm)
				if addr < 0x1000 || addr&3 != 0 || (addr >= textBase && addr < textEnd) {
					return m.blockFault(&res, steps, cycles, blk, f.idx+1, storeFault(addr, 4))
				}
				binary.LittleEndian.PutUint32(m.mem.Page(addr)[addr&binimg.PageMask:], regs[f.x&31])
			case fuseAluStore:
				if f.sub < uSLT {
					regs[f.rd&31] = microArith(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				} else {
					regs[f.rd&31] = microCmpShift(f.sub, regs[f.rs&31], regs[f.rt&31], f.immU)
				}
				regs[0] = 0
				addr := regs[f.y&31] + uint32(f.imm)
				if w := m.storeMem(mips.Op(f.target), addr, regs[f.x&31]); w != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx+1, storeFault(addr, w))
				}
			case fuseSwAlu:
				addr := regs[f.rs&31] + f.immU
				if addr < 0x1000 || addr&3 != 0 || (addr >= textBase && addr < textEnd) {
					return m.blockFault(&res, steps, cycles, blk, f.idx, storeFault(addr, 4))
				}
				binary.LittleEndian.PutUint32(m.mem.Page(addr)[addr&binimg.PageMask:], regs[f.rt&31])
				if k2 := uint8(f.target); k2 < uSLT {
					regs[f.x&31] = microArith(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				} else {
					regs[f.x&31] = microCmpShift(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				}
				regs[0] = 0
			case fuseStoreAlu:
				addr := regs[f.rs&31] + f.immU
				if w := m.storeMem(mips.Op(f.sub), addr, regs[f.rt&31]); w != 0 {
					return m.blockFault(&res, steps, cycles, blk, f.idx, storeFault(addr, w))
				}
				if k2 := uint8(f.target); k2 < uSLT {
					regs[f.x&31] = microArith(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				} else {
					regs[f.x&31] = microCmpShift(k2, regs[f.y&31], regs[f.z&31], uint32(f.imm))
				}
				regs[0] = 0
			case fuseMultMflo:
				var lo, hi uint32
				if f.sub == 0 { // MULT
					p := int64(int32(regs[f.rs&31])) * int64(int32(regs[f.rt&31]))
					lo, hi = uint32(p), uint32(uint64(p)>>32)
				} else { // MULTU
					p := uint64(regs[f.rs&31]) * uint64(regs[f.rt&31])
					lo, hi = uint32(p), uint32(p>>32)
				}
				m.LO, m.HI = lo, hi
				regs[f.rd&31] = lo
				regs[0] = 0
			case fuseAddiuAddiuBranch:
				regs[f.rt&31] = regs[f.rs&31] + f.immU
				regs[0] = 0
				regs[f.rd&31] = regs[f.x&31] + uint32(f.imm)
				regs[0] = 0
				if takeBranch(f.sub, regs[f.y&31], regs[f.z&31]) {
					cycles += cm.BranchTaken
					if f.edge >= 0 {
						m.edges[f.edge].n++
					}
					goto taken
				}
				cycles += cm.BranchNot
			default:
				here := textBase + uint32(4*f.idx)
				return m.fail(&res, steps, cycles, here,
					fmt.Errorf("sim: unimplemented op %v at 0x%x", f.op, here))
			}
			continue

			// A taken branch or direct jump: chain straight to the target
			// block, resolving and caching its index in the superop on
			// first use. After the first taken transfer, steady-state
			// execution never recomputes or validates the target PC.
		taken:
			t := f.tix
			if t < 0 {
				tgt := f.target
				if t = m.tixFor(tgt); t < 0 {
					return m.edgeFail(&res, steps, cycles, tgt, maxSteps)
				}
				// Store via index: tixFor may have grown m.fops, moving the
				// backing array out from under f.
				m.fops[off+int32(fi)].tix = t
			}
			tix = t
			continue outer
		}
		// The block fell through its not-taken terminator (or ran off the
		// end of text). Chain to the cached fallthrough successor.
		nf := blk.next
		if nf < 0 {
			fpc := textBase + uint32(4*(blk.end+1))
			if nf = m.tixFor(fpc); nf < 0 {
				return m.edgeFail(&res, steps, cycles, fpc, maxSteps)
			}
			m.tblocks[tix].next = nf
		}
		tix = nf
	}
}

// edgeFail reports the right error after a control transfer to an
// invalid PC. The reference stepper checks the step budget before PC
// validity at the top of its loop, so a run that spends its last step on
// the transfer reports the step limit, not the bad PC.
func (m *Machine) edgeFail(res *Result, steps, cycles uint64, target uint32, maxSteps uint64) (Result, error) {
	if steps >= maxSteps {
		return m.fail(res, steps, cycles, target,
			fmt.Errorf("sim: step limit (%d) exceeded at PC 0x%x", maxSteps, target))
	}
	return m.fail(res, steps, cycles, target,
		fmt.Errorf("sim: PC 0x%x outside text", target))
}

// loadMem performs a load of kind op (LB/LBU/LH/LHU/LW) at addr for a
// fused superop. A nonzero returned width signals a fault (near-null or
// misaligned) and is the access width for the fault message; the fault
// conditions match the plain dispatch cases exactly.
func (m *Machine) loadMem(op mips.Op, addr uint32) (uint32, int) {
	switch op {
	case mips.LB:
		if addr < 0x1000 {
			return 0, 1
		}
		return uint32(int32(int8(m.mem.Page(addr)[addr&binimg.PageMask]))), 0
	case mips.LBU:
		if addr < 0x1000 {
			return 0, 1
		}
		return uint32(m.mem.Page(addr)[addr&binimg.PageMask]), 0
	case mips.LH:
		if addr < 0x1000 || addr&1 != 0 {
			return 0, 2
		}
		v := binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:])
		return uint32(int32(int16(v))), 0
	case mips.LHU:
		if addr < 0x1000 || addr&1 != 0 {
			return 0, 2
		}
		return uint32(binary.LittleEndian.Uint16(m.mem.Page(addr)[addr&binimg.PageMask:])), 0
	}
	// mips.LW
	if addr < 0x1000 || addr&3 != 0 {
		return 0, 4
	}
	return binary.LittleEndian.Uint32(m.mem.Page(addr)[addr&binimg.PageMask:]), 0
}

// storeMem performs a store of kind op (SB/SH/SW) at addr for a fused
// superop, returning a nonzero access width on fault (near-null,
// misaligned, or text-protected).
func (m *Machine) storeMem(op mips.Op, addr, v uint32) int {
	textBase, textEnd := m.img.TextBase, m.img.TextEnd()
	switch op {
	case mips.SB:
		if addr < 0x1000 || (addr >= textBase && addr < textEnd) {
			return 1
		}
		m.mem.Page(addr)[addr&binimg.PageMask] = byte(v)
	case mips.SH:
		if addr < 0x1000 || addr&1 != 0 || (addr >= textBase && addr < textEnd) {
			return 2
		}
		binary.LittleEndian.PutUint16(m.mem.Page(addr)[addr&binimg.PageMask:], uint16(v))
	default: // mips.SW
		if addr < 0x1000 || addr&3 != 0 || (addr >= textBase && addr < textEnd) {
			return 4
		}
		binary.LittleEndian.PutUint32(m.mem.Page(addr)[addr&binimg.PageMask:], v)
	}
	return 0
}

// blockFault finalizes a run that faulted at text index ti inside a
// block whose full steps and cost were charged up front: the steps after
// the faulting constituent are rewound (the fault's own step counts),
// the cycles from the faulting constituent onward are rewound (its own
// cycles are not charged — matching the reference), and the block's
// execution counter is rolled back so profile reconstruction stays
// exact.
func (m *Machine) blockFault(res *Result, steps, cycles uint64, blk *tblock, ti int32, err error) (Result, error) {
	blk.exec--
	done := uint64(ti - blk.start) // constituents fully retired before the fault
	steps = steps - blk.steps + done + 1
	var tail uint64
	for j := ti; j <= blk.end; j++ {
		tail += m.code[j].cost
	}
	cycles -= tail
	return m.fail(res, steps, cycles, m.img.TextBase+uint32(4*ti), err)
}
