// Batched multi-core simulation. Images are immutable and each job gets
// its own Machine, so a batch shares no mutable state at all — RunBatch
// just fans jobs out over a worker pool and fills a result slice in
// order.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"binpart/internal/binimg"
)

// BatchJob is one independent simulation: an image plus its config.
type BatchJob struct {
	Img *binimg.Image
	Cfg Config
}

// BatchResult is one job's outcome. Fusion carries the translation and
// fusion counters for the threaded engines (zero-valued for
// EngineReference, which has neither).
type BatchResult struct {
	Res    Result
	Err    error
	Dur    time.Duration
	Fusion FusionStats
}

// RunBatch executes every job and returns results in job order. workers
// <= 0 means GOMAXPROCS. Job errors land in the corresponding
// BatchResult — the batch itself never fails, so callers can triage
// per-job.
func RunBatch(jobs []BatchJob, workers int) []BatchResult {
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runOneJob(jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// runOneJob executes a single batch job, harvesting fusion stats from
// the threaded engines before the pooled machine is recycled.
func runOneJob(j BatchJob) BatchResult {
	start := time.Now()
	if j.Cfg.Engine == EngineReference {
		res, err := ExecuteReference(j.Img, j.Cfg)
		return BatchResult{Res: res, Err: err, Dur: time.Since(start)}
	}
	m, err := acquire(j.Img, j.Cfg)
	if err != nil {
		return BatchResult{Err: err, Dur: time.Since(start)}
	}
	res, err := m.Run()
	fus := m.FusionStats()
	release(m)
	return BatchResult{Res: res, Err: err, Dur: time.Since(start), Fusion: fus}
}
