package sim

import (
	"fmt"
	"testing"
)

// This file pins the fused engine's fault and truncation semantics:
// when a fault or the step limit lands on a constituent *inside* a
// fused superinstruction, the engine must report exactly what the
// per-instruction reference stepper reports — same error text (and
// therefore the same faulting PC), same retired step count, same cycle
// total. The superop's merged accounting has to be unwound to the
// faulting constituent, never rounded to the superop boundary.

// engineCases runs src on all three engines under cfg and requires
// bit-identical outcomes, errors included.
func engineCases(t *testing.T, src string, cfg Config) {
	t.Helper()
	img := asmImage(t, src)
	ref, refErr := ExecuteReference(img, cfg)
	for _, eng := range []Engine{EngineBlock, EngineFused} {
		ecfg := cfg
		ecfg.Engine = eng
		got, err := Execute(img, ecfg)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("%s: err %v, reference err %v", eng, err, refErr)
		}
		if err != nil && err.Error() != refErr.Error() {
			t.Errorf("%s: err %q, reference %q", eng, err, refErr)
		}
		if got.Steps != ref.Steps || got.Cycles != ref.Cycles || got.ExitCode != ref.ExitCode {
			t.Errorf("%s: steps=%d cycles=%d exit=%d, reference steps=%d cycles=%d exit=%d",
				eng, got.Steps, got.Cycles, got.ExitCode, ref.Steps, ref.Cycles, ref.ExitCode)
		}
	}
}

// TestFusedFaultPCs places faults on specific constituents of fusible
// pairs: the memory op after an ALU op, the memory op before an ALU op,
// a text-protected store inside a pair, and an indirect jump whose
// fault message must name the jump's own PC.
func TestFusedFaultPCs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		// addiu+lw is the dominant fused pair; the lw (second
		// constituent) takes a misaligned address.
		{"alu+lw misaligned", `
			lui $t1, 0x1000
			addiu $t1, $t1, 2
			lw $v0, 0($t1)
			break
		`},
		// mult+mflo pair first so the following addiu+lw pair starts on
		// an even superop boundary, then the load faults.
		{"paired then alu+lw fault", `
			mult $t0, $t0
			mflo $t0
			lui $t1, 0x1000
			addiu $t1, $t1, 2
			lw $v0, 0($t1)
			break
		`},
		// Load-first pair: the lw (first constituent) faults before its
		// ALU partner executes.
		{"lw+alu null", `
			lw $t0, 0($zero)
			addu $v0, $t0, $t0
			break
		`},
		// Store into text inside an alu+sw pair.
		{"alu+sw text store", `
			lui $t1, 0x40
			addiu $t2, $zero, 7
			sw $t2, 0($t1)
			break
		`},
		// sw+alu pair where the store (first constituent) faults.
		{"sw+alu text store", `
			lui $t1, 0x40
			sw $t1, 0($t1)
			addiu $v0, $v0, 1
			break
		`},
		// Conditional branch fused with its compare, target outside
		// text (branch off the end).
		{"cmp+branch off end", `
			addiu $t0, $zero, 1
			slti $t1, $t0, 5
			bne $t1, $zero, off
			break
		`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			src := c.src
			if c.name == "cmp+branch off end" {
				// Label past the end of text: branch to the word after
				// break.
				src = `
			addiu $t0, $zero, 1
			slti $t1, $t0, 5
			bne $t1, $zero, off
			break
		off:
		`
			}
			engineCases(t, src, DefaultConfig())
		})
	}
}

// TestFusedBadJRAfterFusedRun pins the threaded engines' indirect-jump
// fault contract after a fused run: the error names the jr's own PC and
// target (richer than the reference's bare "PC outside text", by
// design — see TestIndirectJumpTargetErrors), while the step and cycle
// accounting still matches the reference exactly (the jump's step and
// cycles are charged before the target check, as the reference does).
func TestFusedBadJRAfterFusedRun(t *testing.T) {
	src := `
		addiu $t0, $zero, 3
		addiu $t1, $t1, 5
		addu $t2, $t0, $t1
		jr $t2
		break
	`
	img := asmImage(t, src)
	ref, refErr := ExecuteReference(img, DefaultConfig())
	if refErr == nil {
		t.Fatal("reference did not fault")
	}
	for _, eng := range []Engine{EngineBlock, EngineFused} {
		cfg := DefaultConfig()
		cfg.Engine = eng
		got, err := Execute(img, cfg)
		if err == nil {
			t.Fatalf("%s: no error", eng)
		}
		want := "sim: jr at 0x40000c: jump target 0x8 outside text"
		if err.Error() != want {
			t.Errorf("%s: err %q, want %q", eng, err, want)
		}
		if got.Steps != ref.Steps || got.Cycles != ref.Cycles {
			t.Errorf("%s: steps=%d cycles=%d, reference steps=%d cycles=%d",
				eng, got.Steps, got.Cycles, ref.Steps, ref.Cycles)
		}
	}
}

// TestFusedStepLimitTruncation sweeps the step limit across a loop body
// built from fusible pairs, so the limit lands on every constituent
// offset — including mid-superop — and the truncated steps, cycles, and
// error text must match the reference stepper at every limit.
func TestFusedStepLimitTruncation(t *testing.T) {
	src := `
		addiu $t1, $zero, 8
	loop:
		addiu $t2, $t2, 3
		addu $t3, $t2, $t1
		sll $t4, $t3, 1
		addiu $t1, $t1, -1
		bgtz $t1, loop
		break
	`
	for limit := uint64(1); limit <= 45; limit++ {
		limit := limit
		t.Run(fmt.Sprintf("limit-%d", limit), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MaxSteps = limit
			engineCases(t, src, cfg)
		})
	}
}

// TestFusedStepLimitProfiled repeats the truncation sweep with
// profiling on: the partial instruction counts the fused engine
// reconstructs from block overlays are not part of Result on error
// (Profile is nil on any error), but steps/cycles must still agree.
func TestFusedStepLimitProfiled(t *testing.T) {
	src := `
		addiu $t1, $zero, 6
	loop:
		addiu $t2, $t2, 1
		addu $t3, $t2, $t2
		addiu $t1, $t1, -1
		bgtz $t1, loop
		break
	`
	for _, limit := range []uint64{1, 3, 5, 11, 17, 23} {
		cfg := DefaultConfig()
		cfg.Profile = true
		cfg.MaxSteps = limit
		img := asmImage(t, src)
		ref, refErr := ExecuteReference(img, cfg)
		for _, eng := range []Engine{EngineBlock, EngineFused} {
			ecfg := cfg
			ecfg.Engine = eng
			got, err := Execute(img, ecfg)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("limit %d %s: err %v, reference %v", limit, eng, err, refErr)
			}
			if err != nil && err.Error() != refErr.Error() {
				t.Errorf("limit %d %s: err %q, reference %q", limit, eng, err, refErr)
			}
			if got.Steps != ref.Steps || got.Cycles != ref.Cycles {
				t.Errorf("limit %d %s: steps=%d cycles=%d, reference steps=%d cycles=%d",
					limit, eng, got.Steps, got.Cycles, ref.Steps, ref.Cycles)
			}
			if (got.Profile == nil) != (ref.Profile == nil) {
				t.Errorf("limit %d %s: profile presence %v, reference %v",
					limit, eng, got.Profile != nil, ref.Profile != nil)
			}
		}
	}
}
