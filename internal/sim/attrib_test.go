package sim

import (
	"testing"

	"binpart/internal/binimg"
	"binpart/internal/mips"
)

func TestAttributeCycles(t *testing.T) {
	src := `
		li   $t1, 4
		li   $v0, 0
	loop:
		addu $v0, $v0, $t1
		lw   $t2, 0($sp)
		addiu $t1, $t1, -1
		bgtz $t1, loop
		break
	`
	words, err := mips.AssembleWords(src, binimg.DefaultTextBase)
	if err != nil {
		t.Fatal(err)
	}
	img := &binimg.Image{
		Entry: binimg.DefaultTextBase, TextBase: binimg.DefaultTextBase,
		Text: words, DataBase: binimg.DefaultDataBase,
	}
	cfg := DefaultConfig()
	cfg.Profile = true
	res, err := Execute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cyc := AttributeCycles(img, res.Profile, cfg.Cycles)

	base := img.TextBase
	// The loop body runs 4 times; the load at +12 costs Load cycles each.
	if got, want := cyc[base+12], 4*cfg.Cycles.Load; got != want {
		t.Errorf("load cycles = %d, want %d", got, want)
	}
	// The branch at +20: taken 3 times, not taken once.
	wantBr := 3*cfg.Cycles.BranchTaken + 1*cfg.Cycles.BranchNot
	if got := cyc[base+20]; got != wantBr {
		t.Errorf("branch cycles = %d, want %d", got, wantBr)
	}
	// Plain ALU op at +8 costs ALU each of its 4 executions.
	if got, want := cyc[base+8], 4*cfg.Cycles.ALU; got != want {
		t.Errorf("alu cycles = %d, want %d", got, want)
	}
	// Total attribution equals the run's cycle count.
	var sum uint64
	for _, c := range cyc {
		sum += c
	}
	if sum != res.Cycles {
		t.Errorf("attributed %d cycles, run reported %d", sum, res.Cycles)
	}
}

func TestAttributeCyclesMultDiv(t *testing.T) {
	src := `
		li $t0, 6
		li $t1, 7
		mult $t0, $t1
		mflo $v0
		div $t0, $t1
		break
	`
	words, _ := mips.AssembleWords(src, binimg.DefaultTextBase)
	img := &binimg.Image{
		Entry: binimg.DefaultTextBase, TextBase: binimg.DefaultTextBase,
		Text: words, DataBase: binimg.DefaultDataBase,
	}
	cfg := DefaultConfig()
	cfg.Profile = true
	res, err := Execute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cyc := AttributeCycles(img, res.Profile, cfg.Cycles)
	if got := cyc[img.TextBase+8]; got != cfg.Cycles.Mult {
		t.Errorf("mult cycles = %d, want %d", got, cfg.Cycles.Mult)
	}
	if got := cyc[img.TextBase+16]; got != cfg.Cycles.Div {
		t.Errorf("div cycles = %d, want %d", got, cfg.Cycles.Div)
	}
}
