package sim

import (
	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// AttributeCycles converts an execution profile into per-address cycle
// counts under the cycle model: each instruction's executions multiplied
// by its class cost, with branches split between taken and not-taken
// using the recorded edge counts. The partitioner uses this to know how
// many CPU cycles each loop consumed.
func AttributeCycles(img *binimg.Image, prof *Profile, cm CycleModel) map[uint32]uint64 {
	if cm == (CycleModel{}) {
		cm = DefaultCycleModel
	}
	out := make(map[uint32]uint64, len(prof.InstCount))
	takenFrom := make(map[uint32]uint64)
	for e, n := range prof.EdgeCount {
		takenFrom[e.From] += n
	}
	for pc, count := range prof.InstCount {
		w, err := img.WordAt(pc)
		if err != nil {
			continue
		}
		in, err := mips.Decode(w)
		if err != nil {
			continue
		}
		// The class comes from the same decode metadata the interpreter
		// predecodes from, so attribution and execution always agree.
		var cycles uint64
		switch in.Op.Cost() {
		case mips.CostBranch:
			taken := takenFrom[pc]
			if taken > count {
				taken = count
			}
			cycles = taken*cm.BranchTaken + (count-taken)*cm.BranchNot
		case mips.CostJump:
			cycles = count * cm.Jump
		case mips.CostLoad:
			cycles = count * cm.Load
		case mips.CostStore:
			cycles = count * cm.Store
		case mips.CostMult:
			cycles = count * cm.Mult
		case mips.CostDiv:
			cycles = count * cm.Div
		default:
			cycles = count * cm.ALU
		}
		out[pc] = cycles
	}
	return out
}
