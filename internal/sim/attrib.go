package sim

import (
	"binpart/internal/binimg"
	"binpart/internal/mips"
)

// AttributeCycles converts an execution profile into per-address cycle
// counts under the cycle model: each instruction's executions multiplied
// by its class cost, with branches split between taken and not-taken
// using the recorded edge counts. The partitioner uses this to know how
// many CPU cycles each loop consumed.
func AttributeCycles(img *binimg.Image, prof *Profile, cm CycleModel) map[uint32]uint64 {
	if cm == (CycleModel{}) {
		cm = DefaultCycleModel
	}
	out := make(map[uint32]uint64, len(prof.InstCount))
	takenFrom := make(map[uint32]uint64)
	for e, n := range prof.EdgeCount {
		takenFrom[e.From] += n
	}
	for pc, count := range prof.InstCount {
		w, err := img.WordAt(pc)
		if err != nil {
			continue
		}
		in, err := mips.Decode(w)
		if err != nil {
			continue
		}
		var cycles uint64
		switch {
		case in.IsBranch():
			taken := takenFrom[pc]
			if taken > count {
				taken = count
			}
			cycles = taken*cm.BranchTaken + (count-taken)*cm.BranchNot
		case in.IsJump():
			cycles = count * cm.Jump
		case in.IsLoad():
			cycles = count * cm.Load
		case in.IsStore():
			cycles = count * cm.Store
		case in.Op == mips.MULT || in.Op == mips.MULTU:
			cycles = count * cm.Mult
		case in.Op == mips.DIV || in.Op == mips.DIVU:
			cycles = count * cm.Div
		default:
			cycles = count * cm.ALU
		}
		out[pc] = cycles
	}
	return out
}
