package sim

import "fmt"

// Engine selects the execution engine behind Execute. All engines are
// bit-identical — same Steps, Cycles, ExitCode, error conditions, and
// Profile maps — and the differential suite (simdiff_test.go plus the
// progen engine differentials) holds them to that; they differ only in
// throughput.
type Engine uint8

const (
	// EngineFused is the default (zero value): threaded-code blocks with
	// superinstruction fusion. Each basic block is translated once, on
	// first execution, into a flat run of tag-dispatched superops;
	// dominant dynamic pairs/triples (compare+branch, lui+ori address
	// formation, load+op, addiu loop latches) collapse into single fused
	// ops with merged cycle costs.
	EngineFused Engine = iota
	// EngineBlock is threaded-code translation without the fusion
	// peephole: one superop per instruction. The ablation point that
	// separates the translation win from the fusion win.
	EngineBlock
	// EngineReference is the preserved original per-instruction stepper
	// (ExecuteReference): the semantic baseline, deliberately unoptimized.
	EngineReference
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineFused:
		return "fused"
	case EngineBlock:
		return "block"
	case EngineReference:
		return "reference"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "fused", "":
		return EngineFused, nil
	case "block":
		return EngineBlock, nil
	case "reference":
		return EngineReference, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want reference, block, or fused)", s)
}
