package synth

import (
	"fmt"
	"sort"

	"binpart/internal/alias"
	"binpart/internal/binimg"
	"binpart/internal/fpga"
	"binpart/internal/ir"
)

// Options configures synthesis of one region.
type Options struct {
	Resources Resources
	// ClockNs is the target clock period (chaining budget); zero selects
	// DefaultTargetClockNs.
	ClockNs float64
	// Pipeline enables modulo-style loop pipelining of single-block
	// inner loops (on by default through DefaultOptions).
	Pipeline bool
	// MoveArrays moves the region's resolved data objects into FPGA
	// block RAM (partitioning step 2 of the paper).
	MoveArrays bool
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{Resources: DefaultResources, Pipeline: true, MoveArrays: true}
}

// PipeInfo describes one pipelined loop in a design.
type PipeInfo struct {
	// HeaderIndex is the loop header's block index in the source Func.
	HeaderIndex int
	// BodyIndex is the pipelined body block's index.
	BodyIndex int
	// II is the initiation interval in cycles.
	II int
	// Depth is the pipeline depth (states of one iteration).
	Depth int
}

// MemObject is a data object moved into on-chip block RAM.
type MemObject struct {
	Sym   string
	Bytes int
}

// Design is the synthesized RTL-level result for one region.
type Design struct {
	Name    string
	ClockNs float64
	Area    fpga.Area
	// BlockStates maps source block index to its control-step count.
	BlockStates map[int]int
	Pipelines   []PipeInfo
	MemObjects  []MemObject
	// scheds retains the schedules for VHDL emission.
	scheds map[int]*scheduleResult
	// Blocks retains the synthesized region for VHDL emission.
	Blocks []*ir.Block
}

// ClockMHz returns the design's achievable clock in MHz.
func (d *Design) ClockMHz() float64 { return fpga.MHz(d.ClockNs) }

// GateEquivalent returns the conventional equivalent-gate area metric.
func (d *Design) GateEquivalent() int { return d.Area.GateEquivalent() }

// Schedule exposes a block's scheduled operations for the VHDL backend:
// for each instruction index, the control step it executes in.
func (d *Design) Schedule(blockIndex int) (states int, stepOf []int, ok bool) {
	sr, found := d.scheds[blockIndex]
	if !found {
		return 0, nil, false
	}
	stepOf = make([]int, len(sr.g.nodes))
	for i, n := range sr.g.nodes {
		stepOf[i] = n.state
	}
	return sr.states, stepOf, true
}

// Region selects the blocks of a function to synthesize. A nil block set
// means the whole function.
type Region struct {
	Func   *ir.Func
	Blocks map[int]*ir.Block // nil = all
	Name   string
}

// LoopRegion builds a Region from a recovered loop.
func LoopRegion(f *ir.Func, l *ir.Loop) Region {
	return Region{
		Func:   f,
		Blocks: l.Blocks,
		Name:   fmt.Sprintf("%s_loop_0x%x", f.Name, l.Header.Start),
	}
}

// FuncRegion builds a Region covering an entire function, supporting the
// paper's "synthesizing an entire software application" use.
func FuncRegion(f *ir.Func) Region {
	return Region{Func: f, Name: f.Name}
}

func (r Region) blocks() []*ir.Block {
	if r.Blocks == nil {
		return r.Func.Blocks
	}
	out := make([]*ir.Block, 0, len(r.Blocks))
	for _, b := range r.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Synthesize maps a region onto an FSM-with-datapath design. img provides
// data symbols for alias-driven memory disambiguation and block-RAM
// sizing; it may be nil (conservative aliasing, no array migration).
func Synthesize(r Region, img *binimg.Image, opts Options) (*Design, error) {
	blocks := r.blocks()
	if len(blocks) == 0 {
		return nil, fmt.Errorf("synth: empty region %q", r.Name)
	}
	for _, b := range blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.Call {
				return nil, fmt.Errorf("synth: region %q contains a call at 0x%x; inline or exclude it", r.Name, b.Instrs[i].Addr)
			}
			if b.Instrs[i].Op == ir.IJump && b.Instrs[i].Table == nil {
				return nil, fmt.Errorf("synth: region %q contains an unresolved indirect jump at 0x%x", r.Name, b.Instrs[i].Addr)
			}
		}
	}
	var am *alias.Info
	if img != nil {
		am = alias.Analyze(r.Func, img)
	}

	d := &Design{
		Name:        r.Name,
		BlockStates: map[int]int{},
		scheds:      map[int]*scheduleResult{},
		Blocks:      blocks,
	}
	var scheds []*scheduleResult
	var maxChain float64
	for _, b := range blocks {
		g := buildDFG(b, am)
		sr := schedule(g, opts.Resources, opts.ClockNs)
		scheds = append(scheds, sr)
		d.scheds[b.Index] = sr
		d.BlockStates[b.Index] = sr.states
		if sr.maxChain > maxChain {
			maxChain = sr.maxChain
		}
	}
	d.ClockNs = fpga.ClockFromCriticalPath(maxChain)

	al := allocate(scheds)
	maxStates := 0
	for _, sr := range scheds {
		if sr.states > maxStates {
			maxStates = sr.states
		}
	}
	d.Area = al.area(maxStates)

	// Loop pipelining of single-block inner loops.
	if opts.Pipeline {
		d.Pipelines = pipelineLoops(r, d, opts.Resources)
	}

	// Array migration into block RAM.
	if opts.MoveArrays && am != nil {
		blockSet := map[int]*ir.Block{}
		for _, b := range blocks {
			blockSet[b.Index] = b
		}
		syms, _ := am.Footprint(blockSet)
		banks := opts.Resources.MemBanks
		if banks < 1 {
			banks = 1
		}
		for _, s := range syms {
			if sym, ok := findSymbol(img, s); ok {
				d.MemObjects = append(d.MemObjects, MemObject{Sym: s, Bytes: int(sym.Size)})
				// Banking splits the object across at least `banks`
				// BRAMs and adds per-bank port/decode logic.
				brams := fpga.BRAMsFor(int(sym.Size))
				if brams < banks {
					brams = banks
				}
				d.Area = d.Area.Add(fpga.Area{BRAM: brams})
				if banks > 1 {
					extra := fpga.CostOf(fpga.ClassMemPort, 32).Area
					for k := 1; k < banks; k++ {
						d.Area = d.Area.Add(extra)
					}
				}
			}
		}
	}
	return d, nil
}

func findSymbol(img *binimg.Image, name string) (binimg.Symbol, bool) {
	if img == nil {
		return binimg.Symbol{}, false
	}
	return img.Lookup(name)
}

// pipelineLoops computes initiation intervals for pipelinable loops in
// the region: single-block bodies (plus the rotated test header) whose
// iterations can overlap. II = max(resource II, recurrence II).
func pipelineLoops(r Region, d *Design, res Resources) []PipeInfo {
	var out []PipeInfo
	loops := ir.FindLoops(r.Func)
	for _, l := range loops {
		if r.Blocks != nil {
			inRegion := true
			for idx := range l.Blocks {
				if _, ok := r.Blocks[idx]; !ok {
					inRegion = false
				}
			}
			if !inRegion {
				continue
			}
		}
		if len(l.Blocks) > 2 {
			continue
		}
		// Identify the work block (bulk of instructions) and require the
		// other block (if any) to be a pure test. Iterate in block-index
		// order so ties break deterministically.
		idxs := make([]int, 0, len(l.Blocks))
		for idx := range l.Blocks {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		var body *ir.Block
		for _, idx := range idxs {
			if b := l.Blocks[idx]; body == nil || len(b.Instrs) > len(body.Instrs) {
				body = b
			}
		}
		sr, ok := d.scheds[body.Index]
		if !ok {
			continue
		}
		ii := resourceII(sr, res)
		if rec := recurrenceII(sr); rec > ii {
			ii = rec
		}
		if ii < 1 {
			ii = 1
		}
		out = append(out, PipeInfo{
			HeaderIndex: l.Header.Index,
			BodyIndex:   body.Index,
			II:          ii,
			Depth:       sr.states,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BodyIndex < out[j].BodyIndex })
	return out
}

// resourceII is the initiation interval forced by shared resources. Each
// known data object owns a dual-ported block RAM (partitioning step 2
// moved it on chip), so memory pressure is per object.
func resourceII(sr *scheduleResult, res Resources) int {
	memPerObj := map[string]int{}
	mult, div := 0, 0
	for _, n := range sr.g.nodes {
		if _, counts := opClass(n.in); !counts {
			continue
		}
		switch n.class {
		case fpga.ClassMemPort:
			memPerObj[n.memObj]++
		case fpga.ClassMult:
			mult++
		case fpga.ClassDiv:
			div++
		}
	}
	ii := 1
	if ports := res.effectivePorts(); ports > 0 {
		for _, c := range memPerObj {
			ii = maxI(ii, ceilDiv(c, ports))
		}
	}
	if res.Multipliers > 0 {
		ii = maxI(ii, ceilDiv(mult, res.Multipliers))
	}
	if res.Dividers > 0 && div > 0 {
		ii = maxI(ii, ceilDiv(div, res.Dividers))
	}
	return ii
}

// recurrenceII is the initiation interval forced by loop-carried scalar
// dependences: for each location both read-before-write and written in
// the block, the chain from first read to last write must fit in II.
// Pure accumulators — a location read exactly once, by the associative
// self-update that writes it — are re-associated into a reduction tree
// and contribute no recurrence.
func recurrenceII(sr *scheduleResult) int {
	b := sr.g.block
	written := map[ir.Loc]int{} // loc -> completion state of final write
	firstRead := map[ir.Loc]int{}
	def := map[ir.Loc]bool{}
	readCount := map[ir.Loc]int{}
	selfAssoc := map[ir.Loc]bool{}
	for i, n := range sr.g.nodes {
		in := &b.Instrs[i]
		for _, u := range in.Uses() {
			readCount[u]++
			if !def[u] {
				if _, seen := firstRead[u]; !seen {
					firstRead[u] = n.state
				}
			}
		}
		if in.HasDst() {
			def[in.Dst] = true
			written[in.Dst] = n.state
			isAssoc := in.Op == ir.Add || in.Op == ir.Xor || in.Op == ir.Or || in.Op == ir.And
			readsSelf := (!in.A.IsConst && in.A.Loc == in.Dst) || (!in.B.IsConst && in.B.Loc == in.Dst)
			selfAssoc[in.Dst] = isAssoc && readsSelf
		}
	}
	ii := 1
	for loc, r := range firstRead {
		w, ok := written[loc]
		if !ok {
			continue
		}
		if selfAssoc[loc] && readCount[loc] == 1 {
			continue // tree-reducible accumulator
		}
		if span := w - r + 1; span > ii {
			ii = span
		}
	}
	return ii
}

// Cycles estimates the hardware cycles to execute the region once, given
// per-block execution counts (from profiling). Pipelined loop bodies
// contribute iterations*II + depth; other blocks contribute
// executions*states.
func (d *Design) Cycles(blockExecs map[int]uint64) float64 {
	pipelined := map[int]PipeInfo{}
	for _, p := range d.Pipelines {
		pipelined[p.BodyIndex] = p
	}
	var total float64
	for idx, states := range d.BlockStates {
		execs := blockExecs[idx]
		if p, ok := pipelined[idx]; ok {
			if execs > 0 {
				total += float64(execs)*float64(p.II) + float64(p.Depth)
			}
			// The rotated test header folds into the pipeline control.
			continue
		}
		if p, isHdr := headerOf(d.Pipelines, idx); isHdr {
			_ = p
			continue
		}
		total += float64(execs) * float64(states)
	}
	return total
}

func headerOf(pipes []PipeInfo, idx int) (PipeInfo, bool) {
	for _, p := range pipes {
		if p.HeaderIndex == idx && p.BodyIndex != idx {
			return p, true
		}
	}
	return PipeInfo{}, false
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
