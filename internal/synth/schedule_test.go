package synth

import (
	"math/rand"
	"testing"

	"binpart/internal/fpga"
	"binpart/internal/ir"
)

// randomBlock builds a random but well-formed straight-line block over
// virtual locations, ending in a Ret.
func randomBlock(r *rand.Rand, n int) *ir.Block {
	b := &ir.Block{}
	var defined []ir.Loc
	next := ir.FirstVirtual
	arg := func() ir.Arg {
		if len(defined) == 0 || r.Intn(3) == 0 {
			return ir.C(int32(r.Intn(64) + 1))
		}
		return ir.L(defined[r.Intn(len(defined))])
	}
	ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.ShrL, ir.Div}
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0: // load
			base := next
			next++
			b.Instrs = append(b.Instrs,
				ir.Instr{Op: ir.Move, Dst: base, A: ir.C(0x1000_0000)},
				ir.Instr{Op: ir.Load, Dst: next, A: ir.L(base), Off: int32(4 * r.Intn(16)), Width: 4})
			defined = append(defined, base, next)
			next++
		case 1: // store
			if len(defined) > 0 {
				base := next
				next++
				b.Instrs = append(b.Instrs,
					ir.Instr{Op: ir.Move, Dst: base, A: ir.C(0x1000_0100)},
					ir.Instr{Op: ir.Store, A: arg(), B: ir.L(base), Off: int32(4 * r.Intn(16)), Width: 4})
				defined = append(defined, base)
			}
		default:
			op := ops[r.Intn(len(ops))]
			in := ir.Instr{Op: op, Dst: next, A: arg(), B: arg()}
			if r.Intn(2) == 0 {
				in.WidthBits = 4 + r.Intn(29)
			}
			b.Instrs = append(b.Instrs, in)
			defined = append(defined, next)
			next++
		}
	}
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.Ret})
	return b
}

// TestScheduleRespectsConstraints is the scheduler's core property test:
// on random blocks, every data dependence must be ordered (chained
// same-state or strictly earlier) and per-state resource usage must stay
// within the configured limits.
func TestScheduleRespectsConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	res := Resources{MemPorts: 1, Multipliers: 2, Dividers: 1}
	for trial := 0; trial < 200; trial++ {
		b := randomBlock(r, 3+r.Intn(25))
		b.Index = 0
		g := buildDFG(b, nil)
		sr := schedule(g, res, 0)

		// Dependence order.
		for _, n := range sr.g.nodes {
			for _, d := range n.preds {
				p := sr.g.nodes[d.from]
				if d.chainable {
					if p.state > n.state {
						t.Fatalf("trial %d: pred state %d after consumer %d\n%s",
							trial, p.state, n.state, sr.debugString())
					}
				} else if p.state >= n.state {
					t.Fatalf("trial %d: non-chainable pred state %d not before %d\n%s",
						trial, p.state, n.state, sr.debugString())
				}
			}
		}

		// Resource usage per state. Multicycle nodes occupy their start
		// state (state - span + 1); recompute conservatively by class.
		usage := map[int]map[fpga.OpClass]int{}
		for _, n := range sr.g.nodes {
			if _, counts := opClass(n.in); !counts {
				continue
			}
			if usage[n.state] == nil {
				usage[n.state] = map[fpga.OpClass]int{}
			}
			switch n.class {
			case fpga.ClassMemPort, fpga.ClassMult, fpga.ClassDiv:
				usage[n.state][n.class]++
			}
		}
		for s, byClass := range usage {
			if byClass[fpga.ClassMemPort] > res.MemPorts {
				t.Fatalf("trial %d state %d: %d mem ops > %d ports",
					trial, s, byClass[fpga.ClassMemPort], res.MemPorts)
			}
			if byClass[fpga.ClassMult] > res.Multipliers {
				t.Fatalf("trial %d state %d: mult overuse", trial, s)
			}
		}

		// Chain delays never exceed the budget.
		if sr.maxChain > DefaultTargetClockNs+1e-9 {
			t.Fatalf("trial %d: chain %.2f ns over budget", trial, sr.maxChain)
		}
		if sr.states < 1 {
			t.Fatalf("trial %d: %d states", trial, sr.states)
		}
	}
}

func TestChainingPacksIndependentOps(t *testing.T) {
	// A short chain of cheap logic ops fits one state.
	b := &ir.Block{Instrs: []ir.Instr{
		{Op: ir.And, Dst: 40, A: ir.C(1), B: ir.C(2)},
		{Op: ir.Or, Dst: 41, A: ir.L(40), B: ir.C(4)},
		{Op: ir.Xor, Dst: 42, A: ir.L(41), B: ir.C(8)},
		{Op: ir.Ret},
	}}
	b.Index = 0
	sr := schedule(buildDFG(b, nil), DefaultResources, 0)
	if sr.states != 1 {
		t.Errorf("3 chained logic ops took %d states, want 1\n%s", sr.states, sr.debugString())
	}
}

func TestMulticycleDivider(t *testing.T) {
	// A 32-bit divider exceeds any reasonable clock budget and must span
	// multiple states, delaying its consumer.
	b := &ir.Block{Instrs: []ir.Instr{
		{Op: ir.Div, Dst: 40, A: ir.C(100), B: ir.C(7)},
		{Op: ir.Add, Dst: 41, A: ir.L(40), B: ir.C(1)},
		{Op: ir.Ret},
	}}
	b.Index = 0
	sr := schedule(buildDFG(b, nil), DefaultResources, 0)
	if sr.states < 3 {
		t.Errorf("divider + consumer in %d states; expected multicycle span\n%s",
			sr.states, sr.debugString())
	}
	div, add := sr.g.nodes[0], sr.g.nodes[1]
	if add.state <= div.state {
		t.Errorf("consumer at state %d not after divider completion %d", add.state, div.state)
	}
}

func TestMemoryDependenceOrdering(t *testing.T) {
	// Store then load of the same (unknown) object must serialize.
	b := &ir.Block{Instrs: []ir.Instr{
		{Op: ir.Move, Dst: 40, A: ir.C(0x1000_0000)},
		{Op: ir.Store, A: ir.C(7), B: ir.L(40), Width: 4},
		{Op: ir.Load, Dst: 41, A: ir.L(40), Width: 4},
		{Op: ir.Ret},
	}}
	b.Index = 0
	sr := schedule(buildDFG(b, nil), DefaultResources, 0)
	st, ld := sr.g.nodes[1], sr.g.nodes[2]
	if ld.state <= st.state {
		t.Errorf("load at state %d not after conflicting store at %d", ld.state, st.state)
	}
}

func TestWidthBucketing(t *testing.T) {
	cases := map[int]int{1: 4, 4: 4, 5: 8, 8: 8, 9: 16, 16: 16, 17: 32, 32: 32}
	for w, want := range cases {
		if got := widthBucket(w); got != want {
			t.Errorf("widthBucket(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestAllocationCountsPeakConcurrency(t *testing.T) {
	// Two adds in one state need two adders; a third add in a later
	// state shares them (plus mux overhead).
	b := &ir.Block{Instrs: []ir.Instr{
		{Op: ir.Add, Dst: 40, A: ir.C(1), B: ir.C(2)},
		{Op: ir.Add, Dst: 41, A: ir.C(3), B: ir.C(4)},
		{Op: ir.Mul, Dst: 42, A: ir.L(40), B: ir.L(41)},
		{Op: ir.Add, Dst: 43, A: ir.L(42), B: ir.C(5)},
		{Op: ir.Ret},
	}}
	b.Index = 0
	sr := schedule(buildDFG(b, nil), DefaultResources, 0)
	al := allocate([]*scheduleResult{sr})
	addUnits := 0
	for _, c := range al.units[fpga.ClassAdd] {
		addUnits += c
	}
	if addUnits < 1 || addUnits > 3 {
		t.Errorf("adder allocation = %d", addUnits)
	}
	area := al.area(sr.states)
	if area.Slices <= 0 {
		t.Errorf("area = %+v", area)
	}
	if al.regs == 0 {
		t.Error("no registers allocated despite cross-state values")
	}
}

func TestDesignScheduleAccessor(t *testing.T) {
	f := &ir.Func{Blocks: []*ir.Block{{Instrs: []ir.Instr{
		{Op: ir.Add, Dst: 40, A: ir.C(1), B: ir.C(2)},
		{Op: ir.Ret},
	}}}}
	f.Reindex()
	d, err := Synthesize(FuncRegion(f), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	states, stepOf, ok := d.Schedule(0)
	if !ok || states < 1 || len(stepOf) != 2 {
		t.Errorf("Schedule(0) = %d,%v,%v", states, stepOf, ok)
	}
	if _, _, ok := d.Schedule(99); ok {
		t.Error("Schedule(99) reported ok")
	}
}

func TestDesignCyclesPipelined(t *testing.T) {
	d := &Design{
		BlockStates: map[int]int{1: 4, 2: 1},
		Pipelines:   []PipeInfo{{HeaderIndex: 2, BodyIndex: 1, II: 2, Depth: 4}},
	}
	execs := map[int]uint64{1: 100, 2: 101}
	// Pipelined body: 100*2 + 4 = 204; header folded into control.
	if got := d.Cycles(execs); got != 204 {
		t.Errorf("Cycles = %v, want 204", got)
	}
	// Without pipelines: 100*4 + 101*1.
	d2 := &Design{BlockStates: map[int]int{1: 4, 2: 1}}
	if got := d2.Cycles(execs); got != 501 {
		t.Errorf("sequential Cycles = %v, want 501", got)
	}
}
