package synth

import (
	"testing"

	"binpart/internal/binimg"
	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/fpga"
	"binpart/internal/ir"
	"binpart/internal/mcc"
)

const firSrc = `
	int x[64];
	int h[8];
	int y[64];
	int kernel(int n) {
		int i;
		int j;
		for (i = 0; i < 56; i++) {
			int acc = 0;
			for (j = 0; j < 8; j++) { acc += x[i + j] * h[j]; }
			y[i] = acc >> 4;
		}
		return y[0];
	}
	int main() { return kernel(0); }
`

func kernelFunc(t *testing.T, src string, lvl int) (*ir.Func, *binimg.Image) {
	t.Helper()
	img, err := mcc.Compile(src, mcc.Options{OptLevel: lvl})
	if err != nil {
		t.Fatal(err)
	}
	res, err := decompile.Decompile(img)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Func("kernel")
	if f == nil {
		t.Fatal("kernel not recovered")
	}
	dopt.Optimize(f)
	return f, img
}

func TestSynthesizeLoopBasics(t *testing.T) {
	f, img := kernelFunc(t, firSrc, 2)
	loops := ir.FindLoops(f)
	if len(loops) == 0 {
		t.Fatal("no loops recovered")
	}
	// Pick the innermost loop (greatest depth).
	inner := loops[0]
	for _, l := range loops {
		if l.Depth > inner.Depth {
			inner = l
		}
	}
	d, err := Synthesize(LoopRegion(f, inner), img, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.ClockNs < 2 || d.ClockNs > 20 {
		t.Errorf("clock %.2f ns outside plausible Virtex-II range", d.ClockNs)
	}
	if d.Area.Slices <= 0 {
		t.Errorf("area = %+v, want positive slices", d.Area)
	}
	if d.GateEquivalent() <= 0 {
		t.Error("no gate-equivalent area")
	}
	if len(d.BlockStates) == 0 {
		t.Error("no block schedules")
	}
	for idx, states := range d.BlockStates {
		if states <= 0 {
			t.Errorf("block %d has %d states", idx, states)
		}
	}
	if len(d.Pipelines) == 0 {
		t.Errorf("inner loop not pipelined: %+v", d)
	}
	for _, p := range d.Pipelines {
		if p.II < 1 || p.Depth < p.II {
			t.Errorf("bad pipeline %+v", p)
		}
	}
	if len(d.MemObjects) == 0 {
		t.Error("no arrays moved to block RAM")
	}
}

func TestPipeliningReducesCycles(t *testing.T) {
	f, img := kernelFunc(t, firSrc, 2)
	loops := ir.FindLoops(f)
	inner := loops[0]
	for _, l := range loops {
		if l.Depth > inner.Depth {
			inner = l
		}
	}
	region := LoopRegion(f, inner)

	on := DefaultOptions()
	off := DefaultOptions()
	off.Pipeline = false
	dOn, err := Synthesize(region, img, on)
	if err != nil {
		t.Fatal(err)
	}
	dOff, err := Synthesize(region, img, off)
	if err != nil {
		t.Fatal(err)
	}

	// Synthetic profile: body runs 1000 times.
	execs := map[int]uint64{}
	for idx := range dOn.BlockStates {
		execs[idx] = 1000
	}
	cOn, cOff := dOn.Cycles(execs), dOff.Cycles(execs)
	if cOn >= cOff {
		t.Errorf("pipelined cycles %.0f not below sequential %.0f", cOn, cOff)
	}
}

func TestWidthReductionShrinksArea(t *testing.T) {
	src := `
		uchar a[64];
		uchar b[64];
		int kernel(int n) {
			int i;
			for (i = 0; i < 64; i++) { b[i] = (uchar)((a[i] & 15) + 3); }
			return (int)b[0];
		}
		int main() { return kernel(0); }
	`
	// With width annotations (full dopt pipeline).
	f1, img1 := kernelFunc(t, src, 1)
	loops := ir.FindLoops(f1)
	d1, err := Synthesize(LoopRegion(f1, loops[0]), img1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Without width annotations: strip them.
	f2, img2 := kernelFunc(t, src, 1)
	for _, b := range f2.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].WidthBits = 0
		}
	}
	loops2 := ir.FindLoops(f2)
	d2, err := Synthesize(LoopRegion(f2, loops2[0]), img2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d1.Area.Slices >= d2.Area.Slices {
		t.Errorf("width-reduced area (%d slices) not below full-width (%d)", d1.Area.Slices, d2.Area.Slices)
	}
}

func TestSynthesizeWholeFunction(t *testing.T) {
	f, img := kernelFunc(t, `
		int tab[16];
		int kernel(int n) {
			int s = 0;
			int i;
			for (i = 0; i < 16; i++) {
				if (tab[i] > 0) { s += tab[i]; } else { s -= 1; }
			}
			return s;
		}
		int main() { return kernel(0); }
	`, 1)
	d, err := Synthesize(FuncRegion(f), img, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.BlockStates) != len(f.Blocks) {
		t.Errorf("scheduled %d blocks, function has %d", len(d.BlockStates), len(f.Blocks))
	}
}

func TestSynthesizeRejectsCalls(t *testing.T) {
	f, img := kernelFunc(t, `
		int leaf(int x) { return x + 1; }
		int kernel(int n) {
			int s = 0;
			int i;
			for (i = 0; i < 4; i++) { s += leaf(i); }
			return s;
		}
		int main() { return kernel(0); }
	`, 1)
	if _, err := Synthesize(FuncRegion(f), img, DefaultOptions()); err == nil {
		t.Error("synthesizing a region with calls succeeded, want error")
	}
}

func TestMemoryPortConstraintLengthensSchedule(t *testing.T) {
	// One array hit four times per iteration: its private block RAM's
	// ports set the initiation interval.
	f, img := kernelFunc(t, `
		int a[64];
		int d2[32];
		int kernel(int n) {
			int i;
			for (i = 0; i < 16; i++) {
				d2[i] = a[i] + a[i + 16] + a[i + 32] + a[i + 48];
			}
			return d2[0];
		}
		int main() { return kernel(0); }
	`, 2)
	loops := ir.FindLoops(f)
	one := DefaultOptions()
	one.Resources.MemPorts = 1
	four := DefaultOptions()
	four.Resources.MemPorts = 4
	dOne, err := Synthesize(LoopRegion(f, loops[0]), img, one)
	if err != nil {
		t.Fatal(err)
	}
	dFour, err := Synthesize(LoopRegion(f, loops[0]), img, four)
	if err != nil {
		t.Fatal(err)
	}
	iiOne, iiFour := maxII(dOne), maxII(dFour)
	if iiOne <= iiFour {
		t.Errorf("II with 1 port (%d) not above II with 4 ports (%d)", iiOne, iiFour)
	}
}

func maxII(d *Design) int {
	m := 0
	for _, p := range d.Pipelines {
		if p.II > m {
			m = p.II
		}
	}
	return m
}

func TestRecurrenceLimitsII(t *testing.T) {
	// A tight loop-carried dependence (crc feedback) must keep II >= the
	// feedback chain length even with abundant resources.
	f, img := kernelFunc(t, `
		uint table[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
		uint kernel(uint seedv) {
			uint crc = seedv;
			int i;
			for (i = 0; i < 64; i++) {
				crc = (crc << 4) ^ table[(crc >> 28) & 15];
			}
			return crc;
		}
		int main() { return (int)kernel(7); }
	`, 2)
	loops := ir.FindLoops(f)
	// At the default 8 ns budget the whole feedback chains into a single
	// state and II = 1 is legal. A tight 3 ns clock splits the chain
	// (shift -> table load -> xor) over several states, and the
	// loop-carried recurrence must then hold II above 1 even with
	// abundant resources.
	opts := DefaultOptions()
	opts.Resources = Resources{MemPorts: 16, Multipliers: 16, Dividers: 4}
	opts.ClockNs = 3.0
	d, err := Synthesize(LoopRegion(f, loops[0]), img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ii := maxII(d); ii < 2 {
		t.Errorf("recurrence-bound II = %d, want >= 2", ii)
	}
	// And the relaxed default clock still yields a valid design.
	relaxed := DefaultOptions()
	d2, err := Synthesize(LoopRegion(f, loops[0]), img, relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if ii := maxII(d2); ii < 1 {
		t.Errorf("II = %d", ii)
	}
}

func TestDesignCostMonotonicInWidth(t *testing.T) {
	for _, cls := range []fpga.OpClass{fpga.ClassAdd, fpga.ClassMult, fpga.ClassDiv, fpga.ClassLogic} {
		c8 := fpga.CostOf(cls, 8)
		c32 := fpga.CostOf(cls, 32)
		if c32.Area.Slices < c8.Area.Slices || c32.Area.Mult18 < c8.Area.Mult18 {
			t.Errorf("%v: 32-bit cheaper than 8-bit", cls)
		}
		if c32.DelayNs < c8.DelayNs {
			t.Errorf("%v: 32-bit faster than 8-bit", cls)
		}
	}
}

func TestMemoryBankingRaisesThroughput(t *testing.T) {
	// Four accesses per iteration to one array saturate its dual-ported
	// BRAM (II = 2); banking across 4 BRAMs must cut the initiation
	// interval and cost extra BRAM blocks.
	f, img := kernelFunc(t, `
		int a[64];
		int d2[16];
		int kernel(int n) {
			int i;
			for (i = 0; i < 16; i++) {
				d2[i] = a[i] + a[i + 16] + a[i + 32] + a[i + 48];
			}
			return d2[0];
		}
		int main() { return kernel(0); }
	`, 2)
	loops := ir.FindLoops(f)
	inner := loops[0]
	for _, l := range loops {
		if l.Depth > inner.Depth {
			inner = l
		}
	}
	plain := DefaultOptions()
	banked := DefaultOptions()
	banked.Resources.MemBanks = 4
	dPlain, err := Synthesize(LoopRegion(f, inner), img, plain)
	if err != nil {
		t.Fatal(err)
	}
	dBanked, err := Synthesize(LoopRegion(f, inner), img, banked)
	if err != nil {
		t.Fatal(err)
	}
	if maxII(dBanked) >= maxII(dPlain) {
		t.Errorf("banking did not reduce II: %d -> %d", maxII(dPlain), maxII(dBanked))
	}
	if dBanked.Area.BRAM <= dPlain.Area.BRAM {
		t.Errorf("banking did not cost BRAMs: %d -> %d", dPlain.Area.BRAM, dBanked.Area.BRAM)
	}
}
