// Package synth implements the behavioral synthesis tool of the
// reproduced paper ("a behavioral synthesis tool that we implemented
// ourselves"): decompiled CDFG in, register-transfer-level design out.
// The stages are classic high-level synthesis:
//
//   - dataflow graph construction per basic block, with memory edges
//     pruned by alias analysis;
//   - resource-constrained list scheduling with operator chaining under a
//     target clock period;
//   - functional-unit allocation/binding by peak concurrency, with
//     multiplexer and register overheads;
//   - modulo-style loop pipelining for single-block inner loops
//     (II = max(resource II, recurrence II));
//   - area/clock estimation against the Virtex-II model (internal/fpga)
//     and VHDL emission (internal/vhdl).
package synth

import (
	"fmt"
	"sort"

	"binpart/internal/alias"
	"binpart/internal/fpga"
	"binpart/internal/ir"
)

// Resources bounds the expensive shared units available to a design.
type Resources struct {
	MemPorts    int // concurrent block-RAM accesses per cycle (per object)
	Multipliers int
	Dividers    int
	// MemBanks partitions each known data object stride-interleaved
	// across this many block RAMs, multiplying its effective ports.
	// 1 (or 0) means no banking. Banking adds address-decode logic and
	// extra BRAM blocks but relieves port-bound loop pipelines.
	MemBanks int
}

// effectivePorts is the per-object concurrent access budget.
func (r Resources) effectivePorts() int {
	banks := r.MemBanks
	if banks < 1 {
		banks = 1
	}
	return r.MemPorts * banks
}

// DefaultResources matches a mid-size Virtex-II deployment.
var DefaultResources = Resources{MemPorts: 2, Multipliers: 8, Dividers: 1}

// node is one operation in a block's dataflow graph.
type node struct {
	idx    int // instruction index within the block
	in     *ir.Instr
	preds  []dep
	succs  []int
	state  int     // assigned control step
	finish float64 // accumulated combinational delay at end of its state
	class  fpga.OpClass
	width  int
	isMem  bool
	// memObj is the resolved data object of a memory op. Each known
	// object lives in its own dual-ported block RAM (the paper's step 2
	// moves arrays into FPGA memory "increasing parallelism"), so port
	// contention is per object; unresolved accesses share one default
	// port pair.
	memObj string
}

// dep is a dependence edge; chainable edges allow same-state execution.
type dep struct {
	from      int
	chainable bool
}

// dfg is the per-block dataflow graph.
type dfg struct {
	nodes []*node
	block *ir.Block
}

// opClass maps an IR operation to its FPGA cost class. The bool result is
// false for operations that consume no datapath resources (moves are
// wiring, constants are literals).
func opClass(in *ir.Instr) (fpga.OpClass, bool) {
	switch in.Op {
	case ir.Add, ir.Sub:
		return fpga.ClassAdd, true
	case ir.And, ir.Or, ir.Xor:
		return fpga.ClassLogic, true
	case ir.Shl, ir.ShrL, ir.ShrA:
		if in.B.IsConst {
			return fpga.ClassShiftC, true
		}
		return fpga.ClassShiftV, true
	case ir.SetLT, ir.SetLTU:
		return fpga.ClassCompare, true
	case ir.Mul, ir.MulH, ir.MulHU:
		return fpga.ClassMult, true
	case ir.Div, ir.DivU, ir.Rem, ir.RemU:
		return fpga.ClassDiv, true
	case ir.Load, ir.Store:
		return fpga.ClassMemPort, true
	case ir.Branch:
		return fpga.ClassCompare, true
	}
	return fpga.ClassLogic, false
}

// buildDFG constructs the dataflow graph of a block: true data
// dependences via reaching definitions, plus ordering edges between
// conflicting memory operations (alias-pruned), plus edges keeping the
// terminator last.
func buildDFG(b *ir.Block, am *alias.Info) *dfg {
	g := &dfg{block: b}
	lastDef := map[ir.Loc]int{}
	var memOps []int

	addDep := func(n *node, from int, chainable bool) {
		for _, d := range n.preds {
			if d.from == from {
				return
			}
		}
		n.preds = append(n.preds, dep{from: from, chainable: chainable})
		g.nodes[from].succs = append(g.nodes[from].succs, n.idx)
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		cls, _ := opClass(in)
		n := &node{idx: i, in: in, class: cls, width: opWidth(in)}
		g.nodes = append(g.nodes, n)

		for _, u := range in.Uses() {
			if d, ok := lastDef[u]; ok {
				n.preds = append(n.preds, dep{from: d, chainable: true})
				g.nodes[d].succs = append(g.nodes[d].succs, i)
			}
		}
		if in.Op == ir.Load || in.Op == ir.Store {
			n.isMem = true
			if am != nil {
				if r := am.RefOf(in); r.Known {
					n.memObj = r.Sym
				}
			}
			for _, m := range memOps {
				mn := g.nodes[m]
				if mn.in.Op == ir.Store || in.Op == ir.Store {
					if am == nil || am.RefOf(mn.in).Conflicts(am.RefOf(in)) {
						addDep(n, m, false)
					}
				}
			}
			memOps = append(memOps, i)
		}
		if in.Op == ir.Branch || in.Op == ir.Jump || in.Op == ir.IJump || in.Op == ir.Ret || in.Op == ir.Halt {
			// Terminators run after everything with a side effect.
			for _, m := range memOps {
				addDep(n, m, false)
			}
		}
		if in.HasDst() {
			lastDef[in.Dst] = i
		}
	}
	return g
}

// opWidth returns the operator width assigned by size reduction, or 32.
func opWidth(in *ir.Instr) int {
	if in.WidthBits > 0 {
		return in.WidthBits
	}
	if in.Op == ir.Load || in.Op == ir.Store {
		return 8 * in.Width
	}
	return 32
}

// scheduleResult is the outcome of list scheduling one block.
type scheduleResult struct {
	g      *dfg
	states int
	// maxChain is the longest combinational chain in any state (ns).
	maxChain float64
}

// DefaultTargetClockNs is the default chaining budget: operations chain
// combinationally within a state while the accumulated delay stays under
// this period.
const DefaultTargetClockNs = 8.0

// schedule performs resource-constrained list scheduling with chaining
// under the given clock budget (ns).
func schedule(g *dfg, res Resources, clockNs float64) *scheduleResult {
	if clockNs <= 0 {
		clockNs = DefaultTargetClockNs
	}
	type slot struct {
		mem  map[string]int // per data object; "" = shared default pair
		mult int
		div  int
	}
	usage := []slot{{mem: map[string]int{}}}
	ensure := func(s int) {
		for len(usage) <= s {
			usage = append(usage, slot{mem: map[string]int{}})
		}
	}
	hasRoom := func(s int, n *node) bool {
		ensure(s)
		switch n.class {
		case fpga.ClassMemPort:
			return usage[s].mem[n.memObj] < res.effectivePorts()
		case fpga.ClassMult:
			return usage[s].mult < res.Multipliers
		case fpga.ClassDiv:
			return usage[s].div < res.Dividers
		}
		return true
	}
	take := func(s int, n *node) {
		ensure(s)
		switch n.class {
		case fpga.ClassMemPort:
			usage[s].mem[n.memObj]++
		case fpga.ClassMult:
			usage[s].mult++
		case fpga.ClassDiv:
			usage[s].div++
		}
	}

	// Process in instruction order — already a topological order of the
	// DFG since edges point backwards.
	maxState := 0
	var maxChain float64
	for _, n := range g.nodes {
		cost := fpga.CostOf(n.class, n.width)
		if _, counts := opClass(n.in); !counts {
			cost.DelayNs = 0.05 // moves and nops are wiring
		}
		// Operations slower than the clock budget become multicycle
		// units spanning several states.
		span := 1
		delay := cost.DelayNs
		if delay > clockNs {
			span = int(delay/clockNs) + 1
			delay = clockNs // occupies whole states; nothing chains after
		}

		earliest := 0
		var chainIn float64
		for {
			moved := false
			chainIn = 0
			for _, d := range n.preds {
				p := g.nodes[d.from]
				min := p.state
				if !d.chainable {
					min = p.state + 1
				}
				if min > earliest {
					earliest = min
					moved = true
				}
				if d.chainable && p.state == earliest && p.finish > chainIn {
					chainIn = p.finish
				}
			}
			if span > 1 && chainIn > 0 {
				// Multicycle units start on a register boundary.
				earliest++
				moved = true
				continue
			}
			if span == 1 && chainIn+delay > clockNs {
				earliest++
				moved = true
				continue
			}
			if !hasRoom(earliest, n) {
				earliest++
				moved = true
				continue
			}
			if !moved {
				break
			}
		}
		take(earliest, n)
		// n.state records the completion state so successors wait for
		// multicycle units.
		n.state = earliest + span - 1
		n.finish = chainIn + delay
		if span > 1 {
			n.finish = clockNs
		}
		if n.state > maxState {
			maxState = n.state
		}
		if n.finish > maxChain {
			maxChain = n.finish
		}
	}
	// Control leaves the block when its terminator fires, so the
	// terminator must sit in the final state even when its operands are
	// ready earlier (an unconditional jump has no data dependences at all
	// and would otherwise schedule into state 0, truncating the block's
	// FSM).
	if len(g.nodes) > 0 {
		last := g.nodes[len(g.nodes)-1]
		switch last.in.Op {
		case ir.Branch, ir.Jump, ir.IJump, ir.Ret, ir.Halt:
			last.state = maxState
		}
	}
	return &scheduleResult{g: g, states: maxState + 1, maxChain: maxChain}
}

// allocation summarizes functional-unit binding for area estimation.
type allocation struct {
	// units[class] = per-width peak concurrency.
	units map[fpga.OpClass]map[int]int
	// sharedOps[class] counts ops beyond the unit count (mux overhead).
	muxes int
	// regs is the number of 32-bit-equivalent registers needed for
	// values crossing state boundaries.
	regs int
}

// allocate derives the unit allocation from a set of scheduled blocks.
func allocate(scheds []*scheduleResult) *allocation {
	al := &allocation{units: map[fpga.OpClass]map[int]int{}}
	totalOps := map[fpga.OpClass]int{}
	for _, sr := range scheds {
		perState := map[int]map[fpga.OpClass]map[int]int{}
		for _, n := range sr.g.nodes {
			if _, counts := opClass(n.in); !counts {
				continue
			}
			if perState[n.state] == nil {
				perState[n.state] = map[fpga.OpClass]map[int]int{}
			}
			if perState[n.state][n.class] == nil {
				perState[n.state][n.class] = map[int]int{}
			}
			w := widthBucket(n.width)
			perState[n.state][n.class][w]++
			totalOps[n.class]++
		}
		for _, classes := range perState {
			for cls, widths := range classes {
				if al.units[cls] == nil {
					al.units[cls] = map[int]int{}
				}
				for w, c := range widths {
					if c > al.units[cls][w] {
						al.units[cls][w] = c
					}
				}
			}
		}
		// Registers: producer values consumed in a later state.
		for _, n := range sr.g.nodes {
			crossing := false
			for _, s := range n.succs {
				if sr.g.nodes[s].state > n.state {
					crossing = true
				}
			}
			if crossing {
				al.regs++
			}
		}
	}
	// Multiplexer overhead: each op beyond its unit's first binding needs
	// operand steering.
	for cls, widths := range al.units {
		unitCount := 0
		for _, c := range widths {
			unitCount += c
		}
		if extra := totalOps[cls] - unitCount; extra > 0 {
			al.muxes += extra
		}
	}
	return al
}

// widthBucket rounds widths up to hardware-friendly sizes so that ops of
// similar width share a unit.
func widthBucket(w int) int {
	switch {
	case w <= 4:
		return 4
	case w <= 8:
		return 8
	case w <= 16:
		return 16
	default:
		return 32
	}
}

// area converts an allocation plus control overhead into an area vector.
func (al *allocation) area(states int) fpga.Area {
	var a fpga.Area
	for cls, widths := range al.units {
		for w, count := range widths {
			c := fpga.CostOf(cls, w)
			for i := 0; i < count; i++ {
				a = a.Add(c.Area)
			}
		}
	}
	for i := 0; i < al.muxes; i++ {
		a = a.Add(fpga.CostOf(fpga.ClassMux, 32).Area)
	}
	for i := 0; i < al.regs; i++ {
		a = a.Add(fpga.CostOf(fpga.ClassReg, 32).Area)
	}
	// FSM: one-hot state register plus next-state/decode logic.
	a = a.Add(fpga.Area{Slices: states/2 + 8})
	return a
}

// debugString renders a schedule for tests and tooling.
func (sr *scheduleResult) debugString() string {
	byState := map[int][]*node{}
	maxS := 0
	for _, n := range sr.g.nodes {
		byState[n.state] = append(byState[n.state], n)
		if n.state > maxS {
			maxS = n.state
		}
	}
	out := ""
	for s := 0; s <= maxS; s++ {
		out += fmt.Sprintf("state %d:\n", s)
		ns := byState[s]
		sort.Slice(ns, func(i, j int) bool { return ns[i].idx < ns[j].idx })
		for _, n := range ns {
			out += fmt.Sprintf("\t%s (w%d, end %.2fns)\n", n.in, n.width, n.finish)
		}
	}
	return out
}
