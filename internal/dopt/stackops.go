package dopt

import (
	"sort"

	"binpart/internal/ir"
)

// StackReport summarizes what stack operation removal did.
type StackReport struct {
	// SlotsPromoted is the number of distinct frame slots promoted to
	// virtual registers.
	SlotsPromoted int
	// OpsRewritten counts loads/stores turned into register moves.
	OpsRewritten int
	// AdjustsRemoved counts deleted stack pointer adjustments.
	AdjustsRemoved int
	// EscapedSlots counts frame offsets whose address escaped (local
	// arrays); these stay in memory.
	EscapedSlots int
}

// RemoveStackOps performs the paper's "stack operation removal": frame
// slots that are only ever accessed as word-sized sp-relative loads and
// stores are promoted to virtual registers, which erases callee-save
// spills and scalar spill traffic; stack pointer adjustments are deleted
// when nothing else uses the stack pointer.
//
// Soundness assumptions (standard for binary-level tools operating on
// well-formed compiler output): the stack pointer is only modified by
// constant adjustments, and escaped frame addresses (local arrays) access
// only their own object, never neighbouring slots.
func RemoveStackOps(f *ir.Func) StackReport {
	var rep StackReport

	// 1. Compute the sp delta (relative to function entry) at block entry.
	//    Bail out on any non-constant sp definition.
	delta := make([]int64, len(f.Blocks))
	seen := make([]bool, len(f.Blocks))
	const unknown = int64(1) << 40
	for i := range delta {
		delta[i] = unknown
	}
	if len(f.Blocks) == 0 {
		return rep
	}
	delta[0] = 0
	work := []*ir.Block{f.Blocks[0]}
	seen[0] = true
	ok := true
	for len(work) > 0 && ok {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		d := delta[b.Index]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && in.Dst == ir.RegSP {
				if in.Op == ir.Add && !in.A.IsConst && in.A.Loc == ir.RegSP && in.B.IsConst {
					d += int64(in.B.Val)
				} else {
					ok = false
					break
				}
			}
		}
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				delta[s.Index] = d
				work = append(work, s)
			} else if delta[s.Index] != d {
				ok = false
			}
		}
	}
	if !ok {
		return rep
	}

	// 2. Classify every sp use, keyed by canonical frame offset
	//    (entry-relative).
	type access struct {
		blk  int
		idx  int
		load bool
	}
	slots := map[int64][]access{}
	badSlot := map[int64]bool{}
	escaped := map[int64]bool{}
	otherUse := false
	for bi, b := range f.Blocks {
		d := delta[bi]
		if d == unknown {
			continue // unreachable
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Add && in.HasDst() && in.Dst == ir.RegSP &&
				!in.A.IsConst && in.A.Loc == ir.RegSP && in.B.IsConst {
				d += int64(in.B.Val)
				continue
			}
			usesSP := false
			for _, u := range in.Uses() {
				if u == ir.RegSP {
					usesSP = true
				}
			}
			if !usesSP {
				if in.HasDst() && in.Dst == ir.RegSP {
					// sp = const — already rejected above.
					otherUse = true
				}
				continue
			}
			switch {
			case in.Op == ir.Load && !in.A.IsConst && in.A.Loc == ir.RegSP:
				key := d + int64(in.Off)
				slots[key] = append(slots[key], access{bi, i, true})
				if in.Width != 4 {
					badSlot[key] = true
				}
			case in.Op == ir.Store && !in.B.IsConst && in.B.Loc == ir.RegSP:
				if !in.A.IsConst && in.A.Loc == ir.RegSP {
					otherUse = true // storing sp itself: frame address escapes
					continue
				}
				key := d + int64(in.Off)
				slots[key] = append(slots[key], access{bi, i, false})
				if in.Width != 4 {
					badSlot[key] = true
				}
			case in.Op == ir.Add && in.Dst == ir.RegSP && !in.A.IsConst && in.A.Loc == ir.RegSP && in.B.IsConst:
				// sp adjust, handled in step 1.
			case in.Op == ir.Add && !in.A.IsConst && in.A.Loc == ir.RegSP && in.B.IsConst:
				// x = sp + c: address of a frame object escapes.
				escaped[d+int64(in.B.Val)] = true
			case in.Op == ir.Add && !in.B.IsConst && in.B.Loc == ir.RegSP && in.A.IsConst:
				escaped[d+int64(in.A.Val)] = true
			case in.Op == ir.Move && !in.A.IsConst && in.A.Loc == ir.RegSP:
				otherUse = true
			case in.Op == ir.Ret || in.Op == ir.Call || in.Op == ir.Halt:
				// ABI-level use; does not touch this frame's slots.
			default:
				otherUse = true
			}
		}
	}
	rep.EscapedSlots = len(escaped)

	// 3. Promote every clean slot to a fresh virtual location, in slot
	// order so the assigned location numbers don't depend on map
	// iteration (lifted IR must be bit-identical run to run — it is
	// content-addressed by the stage caches).
	keys := make([]int64, 0, len(slots))
	for key := range slots {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	locOf := map[int64]ir.Loc{}
	for _, key := range keys {
		if badSlot[key] || escaped[key] {
			continue
		}
		accs := slots[key]
		loc := f.NewLoc()
		locOf[key] = loc
		rep.SlotsPromoted++
		for _, a := range accs {
			in := &f.Blocks[a.blk].Instrs[a.idx]
			if a.load {
				*in = ir.Instr{Op: ir.Move, Dst: in.Dst, A: ir.L(loc), Addr: in.Addr}
			} else {
				*in = ir.Instr{Op: ir.Move, Dst: loc, A: in.A, Addr: in.Addr}
			}
			rep.OpsRewritten++
		}
	}

	// 4. Delete sp adjustments when the frame is gone entirely.
	remainingMem := false
	for key := range slots {
		if _, promoted := locOf[key]; !promoted {
			remainingMem = true
		}
	}
	if !otherUse && !remainingMem && len(escaped) == 0 {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.Add && in.Dst == ir.RegSP && !in.A.IsConst && in.A.Loc == ir.RegSP && in.B.IsConst {
					*in = ir.Instr{Op: ir.Nop, Addr: in.Addr}
					rep.AdjustsRemoved++
				}
			}
		}
	}
	return rep
}
