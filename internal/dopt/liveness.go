package dopt

import "binpart/internal/ir"

// locSet is a dense bitset over a function's location space. The
// liveness analyses run to a fixpoint over every block several times per
// Cleanup, so the sets use flat words instead of maps: one backing array
// per analysis call, no per-iteration allocation.
type locSet []uint64

func (s locSet) has(l ir.Loc) bool { return s[l>>6]&(1<<(uint(l)&63)) != 0 }
func (s locSet) set(l ir.Loc)      { s[l>>6] |= 1 << (uint(l) & 63) }
func (s locSet) clear(l ir.Loc)    { s[l>>6] &^= 1 << (uint(l) & 63) }

func (s locSet) reset() {
	for i := range s {
		s[i] = 0
	}
}

// or unions t into s and reports whether s gained any location.
func (s locSet) or(t locSet) bool {
	changed := false
	for i, w := range t {
		if nw := s[i] | w; nw != s[i] {
			s[i] = nw
			changed = true
		}
	}
	return changed
}

// locSpace returns the size of f's location space: one past the largest
// location any instruction references, covering physical registers,
// HI/LO, and every virtual location passes have allocated.
func locSpace(f *ir.Func) int {
	max := ir.FirstVirtual
	if f.NextLoc > max {
		max = f.NextLoc
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && in.Dst >= max {
				max = in.Dst + 1
			}
			if !in.A.IsConst && in.A.Loc >= max {
				max = in.A.Loc + 1
			}
			if !in.B.IsConst && in.B.Loc >= max {
				max = in.B.Loc + 1
			}
		}
	}
	return int(max)
}

// newLocSets carves n+extra bitsets for a location space of size space
// out of one backing allocation. The first n are returned as a slice;
// scratch sets follow at indices n..n+extra-1 of the second return.
func newLocSets(n, extra, space int) ([]locSet, []locSet) {
	words := (space + 63) / 64
	backing := make([]uint64, (n+extra)*words)
	sets := make([]locSet, n+extra)
	for i := range sets {
		sets[i] = locSet(backing[i*words : (i+1)*words])
	}
	return sets[:n], sets[n:]
}
