package dopt

import "binpart/internal/ir"

// WidthReport summarizes operator size reduction.
type WidthReport struct {
	// OpsNarrowed counts binary operations annotated with a width below
	// 32 bits.
	OpsNarrowed int
	// TotalOps counts all annotated binary operations.
	TotalOps int
	// BitsSaved sums (32 - width) over narrowed operations; proportional
	// to functional-unit area saved in synthesis.
	BitsSaved int
}

// ReduceWidths performs the paper's "operator size reduction": a
// flow-insensitive bit-width analysis over the function that annotates
// every binary operation with the number of low bits a synthesized
// functional unit actually needs. Widths start at 32 and shrink
// monotonically to a fixpoint, so the result is sound for any execution.
func ReduceWidths(f *ir.Func) WidthReport {
	width := map[ir.Loc]int{}
	get := func(a ir.Arg) int {
		if a.IsConst {
			return constBits(a.Val)
		}
		if a.Loc == ir.RegZero {
			return 1
		}
		if w, ok := width[a.Loc]; ok {
			return w
		}
		return 32
	}

	defWidth := func(in *ir.Instr) int {
		switch in.Op {
		case ir.Move:
			return get(in.A)
		case ir.Load:
			return 8 * in.Width
		case ir.SetLT, ir.SetLTU:
			return 1
		case ir.Add, ir.Sub:
			return min32(maxInt(get(in.A), get(in.B)) + 1)
		case ir.Mul:
			return min32(get(in.A) + get(in.B))
		case ir.MulH, ir.MulHU:
			return 32
		case ir.Div, ir.DivU, ir.Rem, ir.RemU:
			return get(in.A)
		case ir.And:
			return minInt(get(in.A), get(in.B))
		case ir.Or, ir.Xor:
			return maxInt(get(in.A), get(in.B))
		case ir.Shl:
			if in.B.IsConst {
				return min32(get(in.A) + int(in.B.Val&31))
			}
			return 32
		case ir.ShrL, ir.ShrA:
			if in.B.IsConst {
				w := get(in.A) - int(in.B.Val&31)
				if w < 1 {
					return 1
				}
				return w
			}
			return get(in.A)
		}
		return 32
	}

	// Iterate to a (greatest) fixpoint. Widths can only shrink from the
	// implicit initial 32, so iteration terminates.
	for round := 0; round < 40; round++ {
		changed := false
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if !in.HasDst() {
					continue
				}
				w := defWidth(in)
				old, ok := width[in.Dst]
				if !ok {
					old = 32
				}
				// Join over multiple defs: a location needs the max
				// width of anything stored in it.
				nw := w
				if ok && old > nw {
					nw = old
				}
				if !ok || nw != old {
					// First sight: install; afterwards only grow.
					if !ok {
						width[in.Dst] = w
						changed = true
					} else if nw > old {
						width[in.Dst] = nw
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	var rep WidthReport
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.Op.IsBinary() {
				continue
			}
			// The location's joined width governs downstream users, but
			// the unit computing this particular def only needs w bits.
			w := defWidth(in)
			in.WidthBits = w
			rep.TotalOps++
			if w < 32 {
				rep.OpsNarrowed++
				rep.BitsSaved += 32 - w
			}
		}
	}
	return rep
}

// constBits returns the significant low bits of a constant; negative
// values need full width under two's complement.
func constBits(v int32) int {
	if v < 0 {
		return 32
	}
	n := 0
	for x := uint32(v); x != 0; x >>= 1 {
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

func min32(v int) int {
	if v > 32 {
		return 32
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
