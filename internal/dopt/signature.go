package dopt

import "binpart/internal/ir"

// InferParams recovers a function's parameter arity from the binary: the
// argument registers ($a0..$a3) that are read before being written on
// some path from the entry. Classic decompilation signature recovery —
// a compiled callee only reads an argument register "live-in" if the
// source function declared that parameter. The o32 convention fills
// argument registers left to right, so the arity is the highest live-in
// argument register plus one.
func InferParams(f *ir.Func) int {
	liveIn, _ := abiLiveness(f)
	if len(f.Blocks) == 0 {
		return 0
	}
	arity := 0
	for i := 0; i < 4; i++ {
		if liveIn[f.Blocks[0].Index].has(ir.RegA0 + ir.Loc(i)) {
			arity = i + 1
		}
	}
	return arity
}

// InferReturns reports whether the function produces a result: some path
// writes $v0 after which no other write clobbers it before return. The
// ABI-aware liveness already treats $v0 as live at Ret, so a simpler
// sufficient check is used: any reachable definition of $v0.
func InferReturns(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.HasDst() && in.Dst == ir.RegV0 {
				return true
			}
		}
	}
	return false
}
