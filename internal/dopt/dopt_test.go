package dopt

import (
	"testing"

	"binpart/internal/binimg"
	"binpart/internal/decompile"
	"binpart/internal/ir"
	"binpart/internal/mcc"
)

// decompileFunc compiles src at the given level and returns the named
// recovered function plus the image (for data initialization).
func decompileFunc(t *testing.T, src string, lvl int, name string) (*ir.Func, *binimg.Image) {
	t.Helper()
	img, err := mcc.Compile(src, mcc.Options{OptLevel: lvl})
	if err != nil {
		t.Fatal(err)
	}
	res, err := decompile.Decompile(img)
	if err != nil {
		t.Fatal(err)
	}
	if ferr, ok := res.Failed[name]; ok {
		t.Fatalf("recovery of %s failed: %v", name, ferr)
	}
	f := res.Func(name)
	if f == nil {
		t.Fatalf("function %s not recovered", name)
	}
	return f, img
}

// evalKernel runs a call-free function under the IR interpreter with the
// image's initialized data and the given integer arguments, returning the
// result register and the final data-section bytes.
func evalKernel(t *testing.T, f *ir.Func, img *binimg.Image, args ...int32) (int32, []byte) {
	t.Helper()
	st := ir.NewEvalState()
	st.Regs[ir.RegSP] = 0x7fff0000
	for i, a := range args {
		st.Regs[ir.RegA0+ir.Loc(i)] = a
	}
	for i, bv := range img.Data {
		st.Mem[img.DataBase+uint32(i)] = bv
	}
	if err := ir.Eval(f, st); err != nil {
		t.Fatalf("eval %s: %v", f.Name, err)
	}
	data := make([]byte, len(img.Data))
	for i := range data {
		data[i] = st.Mem[img.DataBase+uint32(i)]
	}
	return st.Regs[ir.RegV0], data
}

const sumKernel = `
	int a[16];
	int seed;
	int kernel(int n) {
		int s = 0;
		int i;
		for (i = 0; i < 16; i++) { s += a[i] * n; }
		return s;
	}
	int main() {
		int i;
		for (i = 0; i < 16; i++) { a[i] = i - 5; }
		return kernel(3);
	}
`

// TestOptimizePreservesSemantics is the central property: for a corpus of
// kernels and every optimization level, the full dopt pipeline must leave
// the observable behaviour (result + data section) unchanged.
func TestOptimizePreservesSemantics(t *testing.T) {
	kernels := []struct {
		name string
		fn   string
		src  string
		args []int32
	}{
		{"sum-mul", "kernel", sumKernel, []int32{7}},
		{"crc-ish", "kernel", `
			uint table[16] = {0, 79764919, 159529838, 222504540,
				319059676, 398814059, 445009080, 507990021,
				638119352, 583659535, 797628118, 726387553,
				890018160, 835552979, 1015980042, 944750013};
			uint kernel(uint seedv) {
				uint crc = seedv;
				int i;
				for (i = 0; i < 64; i++) {
					crc = (crc << 4) ^ table[(crc >> 28) & 15];
				}
				return (uint)crc;
			}
			int main() { return (int)kernel(12345); }
		`, []int32{12345}},
		{"narrow-bytes", "kernel", `
			uchar img[32];
			int kernel(int n) {
				int s = 0;
				int i;
				for (i = 0; i < n; i++) {
					img[i] = (uchar)(img[i] + 3);
					s += (int)img[i];
				}
				return s;
			}
			int main() { return kernel(32); }
		`, []int32{32}},
		{"store-heavy", "kernel", `
			short out[24];
			int kernel(int bias) {
				int i;
				int acc = bias;
				for (i = 0; i < 24; i++) {
					acc = acc * 5 + i;
					out[i] = (short)acc;
				}
				return acc;
			}
			int main() { return kernel(1); }
		`, []int32{1}},
	}
	for _, k := range kernels {
		for lvl := 0; lvl <= 3; lvl++ {
			name := k.name
			t.Run(name, func(t *testing.T) {
				fBefore, img := decompileFunc(t, k.src, lvl, k.fn)
				wantV, wantMem := evalKernel(t, fBefore, img, k.args...)

				fAfter, img2 := decompileFunc(t, k.src, lvl, k.fn)
				Optimize(fAfter)
				gotV, gotMem := evalKernel(t, fAfter, img2, k.args...)

				if gotV != wantV {
					t.Errorf("O%d: result changed: %d -> %d\nafter:\n%s", lvl, wantV, gotV, fAfter)
				}
				for i := range wantMem {
					if wantMem[i] != gotMem[i] {
						t.Errorf("O%d: data[%d] changed: %d -> %d", lvl, i, wantMem[i], gotMem[i])
						break
					}
				}
			})
		}
	}
}

func TestConstPropRemovesISAOverhead(t *testing.T) {
	f, _ := decompileFunc(t, sumKernel, 1, "kernel")
	// Raw lifted code models moves as "add rd, rs, r0".
	rawAdds := countOp(f, ir.Add)
	Cleanup(f)
	if got := countOp(f, ir.Add); got >= rawAdds {
		t.Errorf("adds before %d, after cleanup %d; expected reduction", rawAdds, got)
	}
	// Induction variable must now be recoverable with trip count 16.
	loops := ir.FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(loops), f)
	}
	found := false
	for _, iv := range loops[0].IndVars {
		if n, ok := iv.TripCount(); ok && n == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("no induction variable with trip count 16 after cleanup: %+v\n%s", loops[0].IndVars, f)
	}
}

func TestStackOperationRemoval(t *testing.T) {
	// A function with calls saves $ra and callee-saved registers; a
	// spilling function adds spill slots. All of that traffic must go.
	src := `
		int g;
		int leaf(int x) { return x * x; }
		int kernel(int n) {
			int a = 1, b = 2, c = 3, d = 4, e = 5, f2 = 6, h = 7, i2 = 8;
			int j = 9, k = 10, l = 11, m = 12, o = 13, p = 14, q = 15;
			int r = 16, s = 17, u = 18, v = 19, w = 20, x = 21, y = 22;
			int sum = 0;
			int i;
			for (i = 0; i < n; i++) {
				sum += leaf(i) + a+b+c+d+e+f2+h+i2+j+k+l+m+o+p+q+r+s+u+v+w+x+y;
			}
			return sum;
		}
		int main() { return kernel(4); }
	`
	f, _ := decompileFunc(t, src, 1, "kernel")
	before := countStackAccesses(f)
	if before == 0 {
		t.Fatalf("expected sp-relative traffic in kernel:\n%s", f)
	}
	Cleanup(f)
	rep := RemoveStackOps(f)
	Cleanup(f)
	if rep.SlotsPromoted == 0 {
		t.Errorf("no slots promoted: %+v\n%s", rep, f)
	}
	after := countStackAccesses(f)
	if after >= before {
		t.Errorf("stack accesses before %d, after %d", before, after)
	}
}

func countStackAccesses(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Load && !in.A.IsConst && in.A.Loc == ir.RegSP {
				n++
			}
			if in.Op == ir.Store && !in.B.IsConst && in.B.Loc == ir.RegSP {
				n++
			}
		}
	}
	return n
}

func TestStrengthPromotionRecoversMultiply(t *testing.T) {
	// x*11 strength-reduces to shifts/adds at O2; promotion must bring
	// the multiply back.
	src := `
		int a[8];
		int kernel(int n) {
			int s = 0;
			int i;
			for (i = 0; i < 8; i++) { s += a[i] * 11; }
			return s;
		}
		int main() { return kernel(8); }
	`
	f, img := decompileFunc(t, src, 2, "kernel")
	if countOp(f, ir.Mul) != 0 {
		t.Fatalf("O2 binary still contains a multiply; strength reduction did not fire:\n%s", f)
	}
	want, _ := evalKernel(t, f, img)

	f2, img2 := decompileFunc(t, src, 2, "kernel")
	Cleanup(f2)
	rep := PromoteStrength(f2)
	if rep.Multiplies == 0 {
		t.Fatalf("no multiply promoted: %+v\n%s", rep, f2)
	}
	Cleanup(f2)
	muls := countOp(f2, ir.Mul)
	if muls == 0 {
		t.Errorf("promoted multiply disappeared:\n%s", f2)
	}
	got, _ := evalKernel(t, f2, img2)
	if got != want {
		t.Errorf("promotion changed result: %d -> %d", want, got)
	}
	// The recovered constant must be 11.
	found := false
	for _, b := range f2.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Mul && ((in.A.IsConst && in.A.Val == 11) || (in.B.IsConst && in.B.Val == 11)) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no multiply by 11 recovered:\n%s", f2)
	}
}

func TestStrengthReduce(t *testing.T) {
	f := &ir.Func{Blocks: []*ir.Block{{Instrs: []ir.Instr{
		{Op: ir.Mul, Dst: 40, A: ir.L(8), B: ir.C(8)},
		{Op: ir.DivU, Dst: 41, A: ir.L(8), B: ir.C(16)},
		{Op: ir.RemU, Dst: 42, A: ir.L(8), B: ir.C(4)},
		{Op: ir.Mul, Dst: 43, A: ir.L(8), B: ir.C(10)}, // not a power of two
		{Op: ir.Ret},
	}}}}
	f.Reindex()
	n := StrengthReduce(f)
	if n != 3 {
		t.Errorf("reduced %d ops, want 3", n)
	}
	ins := f.Blocks[0].Instrs
	if ins[0].Op != ir.Shl || ins[0].B.Val != 3 {
		t.Errorf("mul by 8 -> %v", &ins[0])
	}
	if ins[1].Op != ir.ShrL || ins[1].B.Val != 4 {
		t.Errorf("divu by 16 -> %v", &ins[1])
	}
	if ins[2].Op != ir.And || ins[2].B.Val != 3 {
		t.Errorf("remu by 4 -> %v", &ins[2])
	}
	if ins[3].Op != ir.Mul {
		t.Errorf("mul by 10 -> %v (should stay)", &ins[3])
	}
}

func TestRerollUndoesUnrolling(t *testing.T) {
	src := `
		int a[16];
		int b[16];
		int kernel(int n) {
			int i;
			for (i = 0; i < 16; i++) { b[i] = a[i] * n + i; }
			int s = 0;
			for (i = 0; i < 16; i++) { s += b[i]; }
			return s;
		}
		int main() { return kernel(3); }
	`
	// O3 unrolls both loops by 4.
	f3, img3 := decompileFunc(t, src, 3, "kernel")
	want, wantMem := evalKernel(t, f3, img3, 3)

	f, img := decompileFunc(t, src, 3, "kernel")
	Cleanup(f)
	sizeBefore := f.NumInstrs()
	rep := Reroll(f)
	if len(rep.Rerolled) == 0 {
		t.Fatalf("no loops rerolled:\n%s", f)
	}
	for _, k := range rep.Rerolled {
		if k != 4 {
			t.Errorf("reroll factor = %d, want 4", k)
		}
	}
	Cleanup(f)
	if got := f.NumInstrs(); got >= sizeBefore {
		t.Errorf("size before %d, after %d; rerolling should shrink the CDFG", sizeBefore, got)
	}
	// Trip counts must now be 16 with step 1 (or equivalent byte step 4).
	loops := ir.FindLoops(f)
	for _, l := range loops {
		okTrip := false
		for _, iv := range l.IndVars {
			if n, ok := iv.TripCount(); ok && n == 16 {
				okTrip = true
			}
		}
		if !okTrip {
			t.Errorf("rerolled loop lost trip count 16: %+v", l.IndVars)
		}
	}
	got, gotMem := evalKernel(t, f, img, 3)
	if got != want {
		t.Errorf("reroll changed result: %d -> %d\n%s", want, got, f)
	}
	for i := range wantMem {
		if wantMem[i] != gotMem[i] {
			t.Errorf("reroll changed data[%d]: %d -> %d", i, wantMem[i], gotMem[i])
			break
		}
	}
}

func TestRerollRejectsNaturalRepetition(t *testing.T) {
	// A body with repeated groups whose progression does not match the
	// induction step must NOT be rerolled.
	src := `
		int a[32];
		int kernel(int n) {
			int s = 0;
			int i;
			for (i = 0; i < 16; i++) {
				s += a[i];
				s += a[i + 16];
			}
			return s;
		}
		int main() { return kernel(0); }
	`
	f, img := decompileFunc(t, src, 1, "kernel")
	want, _ := evalKernel(t, f, img, 0)
	Cleanup(f)
	Reroll(f)
	got, _ := evalKernel(t, f, img, 0)
	if got != want {
		t.Errorf("reroll broke semantics: %d -> %d\n%s", want, got, f)
	}
}

func TestWidthReductionOnBytes(t *testing.T) {
	src := `
		uchar pix[16];
		int kernel(int n) {
			int s = 0;
			int i;
			for (i = 0; i < 16; i++) { s += (int)((uchar)(pix[i] & 15)); }
			return s;
		}
		int main() { return kernel(0); }
	`
	f, _ := decompileFunc(t, src, 1, "kernel")
	Cleanup(f)
	rep := ReduceWidths(f)
	if rep.TotalOps == 0 || rep.OpsNarrowed == 0 {
		t.Errorf("no operators narrowed: %+v\n%s", rep, f)
	}
	// The &15 mask must make some operator 4 bits wide.
	has4 := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if w := b.Instrs[i].WidthBits; w > 0 && w <= 8 {
				has4 = true
			}
		}
	}
	if !has4 {
		t.Errorf("no narrow (<=8 bit) operator found:\n%s", f)
	}
}

func TestOptimizeShrinksCode(t *testing.T) {
	for lvl := 0; lvl <= 3; lvl++ {
		f, _ := decompileFunc(t, sumKernel, lvl, "kernel")
		before := f.NumInstrs()
		rep := Optimize(f)
		after := f.NumInstrs()
		if after >= before {
			t.Errorf("O%d: %d instrs before, %d after; pipeline should shrink code\n%+v", lvl, before, after, rep)
		}
	}
}

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestSignatureInference(t *testing.T) {
	src := `
		int two(int a, int b) { return a + b; }
		int zero() { return 7; }
		void sink(int a) { }
		int pass(int a, int b, int c, int d) { return two(a, d) + c + b; }
		int main() { sink(1); return pass(1, 2, 3, 4) + zero(); }
	`
	img, err := mcc.Compile(src, mcc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := decompile.Decompile(img)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		args int
		ret  bool
	}{
		"two":  {2, true},
		"zero": {0, true},
		// sink never reads its parameter, so the binary carries no
		// evidence of it; 0 is the correct inference from a binary.
		"sink": {0, false},
		"pass": {4, true},
	}
	for name, w := range want {
		f := res.Func(name)
		if f == nil {
			t.Fatalf("%s not recovered", name)
		}
		Cleanup(f)
		if got := InferParams(f); got != w.args {
			t.Errorf("%s: inferred %d args, want %d", name, got, w.args)
		}
		if got := InferReturns(f); got != w.ret {
			t.Errorf("%s: inferred returns=%v, want %v", name, got, w.ret)
		}
	}
}
