package dopt

import "binpart/internal/ir"

// StrengthReduce rewrites multiplications, unsigned divisions and
// remainders by powers of two into shifts and masks. For synthesis this
// trades a multiplier/divider block for wiring. Returns the number of
// instructions rewritten.
func StrengthReduce(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.Mul:
				c, x, ok := constSide(in)
				if ok && isPow2(c) {
					*in = ir.Instr{Op: ir.Shl, Dst: in.Dst, A: x, B: ir.C(log2u(c)), Addr: in.Addr}
					n++
				}
			case ir.DivU:
				if in.B.IsConst && isPow2(in.B.Val) {
					*in = ir.Instr{Op: ir.ShrL, Dst: in.Dst, A: in.A, B: ir.C(log2u(in.B.Val)), Addr: in.Addr}
					n++
				}
			case ir.RemU:
				if in.B.IsConst && isPow2(in.B.Val) {
					*in = ir.Instr{Op: ir.And, Dst: in.Dst, A: in.A, B: ir.C(in.B.Val - 1), Addr: in.Addr}
					n++
				}
			}
		}
	}
	return n
}

func constSide(in *ir.Instr) (int32, ir.Arg, bool) {
	if in.B.IsConst && !in.A.IsConst {
		return in.B.Val, in.A, true
	}
	if in.A.IsConst && !in.B.IsConst {
		return in.A.Val, in.B, true
	}
	return 0, ir.Arg{}, false
}

func isPow2(v int32) bool { return v > 0 && v&(v-1) == 0 }

func log2u(v int32) int32 {
	n := int32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// PromoteReport summarizes strength promotion.
type PromoteReport struct {
	// Multiplies is the number of multiplications recovered.
	Multiplies int
	// OpsCollapsed is the number of shift/add/sub instructions subsumed.
	OpsCollapsed int
}

// PromoteStrength performs the paper's "strength promotion": shift/add/sub
// sequences that compute x*C (the residue of compiler strength reduction)
// are folded back into a single multiplication, restoring the synthesis
// tool's freedom to pick the best implementation. Only sequences of at
// least two operations with a non-power-of-two coefficient are promoted
// (a single shift is already the best hardware).
//
// Compilers reuse registers freely, so the analysis works over reaching
// definitions within a block rather than register names: each operand is
// resolved to the instruction that defined it, and an intermediate
// definition may be subsumed only if that one instruction is its sole
// consumer and its value does not escape the block.
func PromoteStrength(f *ir.Func) PromoteReport {
	var rep PromoteReport
	_, liveOut := abiLiveness(f)

	for _, b := range f.Blocks {
		bc := newBlockChains(b, liveOut[b.Index])
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.Add && in.Op != ir.Sub {
				continue
			}
			base, coeff, members, ok := bc.linearChain(i)
			if !ok || len(members) < 2 || isPow2(coeff) || coeff == 0 || coeff == 1 {
				continue
			}
			*in = ir.Instr{Op: ir.Mul, Dst: in.Dst, A: ir.L(base), B: ir.C(coeff), Addr: in.Addr}
			rep.Multiplies++
			rep.OpsCollapsed += len(members)
			// Definitions changed; rebuild the block's def chains.
			bc = newBlockChains(b, liveOut[b.Index])
		}
	}
	return rep
}

// blockChains resolves in-block reaching definitions: for every
// instruction operand, which instruction (index) defined it, and for
// every definition, how many in-block consumers it has and whether its
// value escapes the block.
type blockChains struct {
	b *ir.Block
	// defOfA/defOfB: per instruction, the in-block def index of the A/B
	// operand, or -1 (defined outside the block / constant).
	defOfA, defOfB []int
	useCount       []int
	escapes        []bool
}

func newBlockChains(b *ir.Block, liveOut locSet) *blockChains {
	n := len(b.Instrs)
	bc := &blockChains{
		b:        b,
		defOfA:   make([]int, n),
		defOfB:   make([]int, n),
		useCount: make([]int, n),
		escapes:  make([]bool, n),
	}
	lastDef := map[ir.Loc]int{}
	resolve := func(a ir.Arg) int {
		if a.IsConst {
			return -1
		}
		if d, ok := lastDef[a.Loc]; ok {
			return d
		}
		return -1
	}
	var ub [2]ir.Loc
	for i := range b.Instrs {
		in := &b.Instrs[i]
		bc.defOfA[i] = resolve(in.A)
		bc.defOfB[i] = resolve(in.B)
		// Count consumers: every read of a location resolves to its
		// reaching def.
		for _, u := range effUses(in, ub[:0]) {
			if d, ok := lastDef[u]; ok {
				bc.useCount[d]++
			}
		}
		if in.HasDst() {
			lastDef[in.Dst] = i
		}
	}
	// The final def of a live-out location escapes; so does anything a
	// call could observe indirectly (covered by effUses of the call).
	for loc, d := range lastDef {
		if liveOut.has(loc) {
			bc.escapes[d] = true
		}
	}
	return bc
}

// linearChain tries to express the value computed at instruction index
// root as coeff*base, where base is a specific reaching definition (or a
// block-external location). Returns the base location, coefficient, and
// the chain member indices that the promotion subsumes.
func (bc *blockChains) linearChain(root int) (ir.Loc, int32, []int, bool) {
	var base ir.Loc
	baseDef := -2 // reaching def of the base; -1 = defined outside block
	haveBase := false
	var members []int

	var eval func(a ir.Arg, def int) (int64, bool)
	eval = func(a ir.Arg, def int) (int64, bool) {
		if a.IsConst {
			// Only a literal zero is compatible with pure x*C form
			// (it contributes coefficient 0, e.g. "sub 0, x").
			if a.Val == 0 {
				return 0, true
			}
			return 0, false
		}
		if def >= 0 {
			in := &bc.b.Instrs[def]
			if bc.useCount[def] == 1 && !bc.escapes[def] {
				switch in.Op {
				case ir.Shl:
					if in.B.IsConst {
						if c, ok := eval(in.A, bc.defOfA[def]); ok {
							members = append(members, def)
							return c << uint(in.B.Val&31), true
						}
					}
				case ir.Add, ir.Sub:
					l, ok := eval(in.A, bc.defOfA[def])
					if !ok {
						break
					}
					r, ok2 := eval(in.B, bc.defOfB[def])
					if !ok2 {
						break
					}
					members = append(members, def)
					if in.Op == ir.Add {
						return l + r, true
					}
					return l - r, true
				case ir.Mul:
					// A multiply by a constant composes linearly; this
					// lets an outer chain subsume an inner promotion.
					if in.B.IsConst {
						if c, ok := eval(in.A, bc.defOfA[def]); ok {
							members = append(members, def)
							return c * int64(in.B.Val), true
						}
					} else if in.A.IsConst {
						if c, ok := eval(in.B, bc.defOfB[def]); ok {
							members = append(members, def)
							return c * int64(in.A.Val), true
						}
					}
				case ir.Move:
					if !in.A.IsConst {
						if c, ok := eval(in.A, bc.defOfA[def]); ok {
							members = append(members, def)
							return c, true
						}
					}
				}
			}
		}
		// Leaf: a use of the base value. All leaves must refer to the
		// same reaching definition.
		if !haveBase {
			base, baseDef, haveBase = a.Loc, def, true
		}
		if a.Loc != base || def != baseDef {
			return 0, false
		}
		return 1, true
	}

	in := &bc.b.Instrs[root]
	l, ok := eval(in.A, bc.defOfA[root])
	if !ok {
		return 0, 0, nil, false
	}
	r, ok := eval(in.B, bc.defOfB[root])
	if !ok {
		return 0, 0, nil, false
	}
	var coeff int64
	if in.Op == ir.Add {
		coeff = l + r
	} else {
		coeff = l - r
	}
	if !haveBase || coeff < -(1<<31) || coeff > (1<<31)-1 {
		return 0, 0, nil, false
	}
	// The promoted multiply reads the base at root; the base's reaching
	// def at root must still be baseDef (no redefinition in between).
	cur := -1
	for i := 0; i < root; i++ {
		if bc.b.Instrs[i].HasDst() && bc.b.Instrs[i].Dst == base {
			cur = i
		}
	}
	if cur != baseDef {
		return 0, 0, nil, false
	}
	return base, int32(coeff), members, true
}
