// Package dopt implements the decompiler optimizations of the reproduced
// paper, in two groups:
//
// Instruction-set overhead removal:
//   - constant propagation (turns "addu rd, rs, $zero" register moves and
//     "addiu rd, $zero, imm" constant loads back into moves/constants,
//     then propagates)
//   - operator size reduction (bit-width analysis annotating each
//     operation with the width a synthesized functional unit needs)
//   - strength reduction (multiplication/division by powers of two become
//     shifts for synthesis)
//   - stack operation removal (callee-save boilerplate disappears, scalar
//     spill slots are promoted to virtual registers)
//
// Undoing software compiler optimizations:
//   - strength promotion (shift/add sequences computing x*C are folded
//     back into a single multiplication so the synthesis tool can choose
//     the best implementation)
//   - loop rerolling (bodies unrolled by the compiler are rolled back,
//     shrinking the CDFG and re-exposing the memory access pattern)
package dopt

import "binpart/internal/ir"

// ConstProp performs per-block constant and copy propagation. The zero
// register is treated as the constant 0, which is what collapses the
// MIPS idioms "addu rd, rs, $zero" (move) and "addiu rt, $zero, imm"
// (constant load). Returns the number of instructions simplified.
func ConstProp(f *ir.Func) int {
	// The per-block environment is an epoch-stamped dense array over the
	// function's location space: entering a block bumps the epoch instead
	// of clearing (or reallocating) the bindings, and a binding counts
	// only if its stamp matches the current epoch. ConstProp runs inside
	// Cleanup's fixpoint, so keeping this loop allocation-light matters.
	env := constEnv{
		val:   make([]ir.Arg, locSpace(f)),
		stamp: make([]uint32, locSpace(f)),
	}
	changed := 0
	for _, b := range f.Blocks {
		env.epoch++
		for i := range b.Instrs {
			in := &b.Instrs[i]
			beforeOp, beforeA, beforeB := in.Op, in.A, in.B
			switch {
			case in.Op.IsBinary():
				in.A, in.B = env.sub(in.A), env.sub(in.B)
				simplify(in)
			case in.Op == ir.Move || in.Op == ir.IJump || in.Op == ir.Load:
				in.A = env.sub(in.A)
			case in.Op == ir.Store:
				in.A, in.B = env.sub(in.A), env.sub(in.B)
			case in.Op == ir.Branch:
				in.A, in.B = env.sub(in.A), env.sub(in.B)
			}
			if in.Op != beforeOp || in.A != beforeA || in.B != beforeB {
				changed++
			}
			if in.HasDst() {
				env.invalidate(in.Dst)
				if in.Op == ir.Move && (in.A.IsConst || in.A.Loc != in.Dst) {
					env.define(in.Dst, in.A)
				}
			}
			if in.Op == ir.Call {
				// Calls clobber the caller-saved state.
				for _, l := range callClobbered {
					env.invalidate(l)
				}
			}
		}
	}
	return changed
}

// constEnv is ConstProp's per-block binding environment: location ->
// known Arg, valid only while the stamp matches the current epoch.
type constEnv struct {
	val   []ir.Arg
	stamp []uint32
	epoch uint32
}

func (e *constEnv) sub(a ir.Arg) ir.Arg {
	if a.IsConst {
		return a
	}
	if a.Loc == ir.RegZero {
		return ir.C(0)
	}
	if e.stamp[a.Loc] == e.epoch {
		return e.val[a.Loc]
	}
	return a
}

func (e *constEnv) define(l ir.Loc, a ir.Arg) {
	e.val[l] = a
	e.stamp[l] = e.epoch
}

// invalidate drops the binding for l and every copy binding that reads
// it.
func (e *constEnv) invalidate(l ir.Loc) {
	e.stamp[l] = 0
	for k := range e.val {
		if e.stamp[k] == e.epoch && !e.val[k].IsConst && e.val[k].Loc == l {
			e.stamp[k] = 0
		}
	}
}

// callClobbered lists locations a call may redefine (MIPS o32
// caller-saved set plus HI/LO and the linkage registers).
var callClobbered = func() []ir.Loc {
	regs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 26, 27, 31}
	out := make([]ir.Loc, 0, len(regs)+2)
	for _, r := range regs {
		out = append(out, ir.Loc(r))
	}
	return append(out, ir.LocHI, ir.LocLO)
}()

// callUses lists locations a call may read (argument registers and sp).
var callUses = []ir.Loc{ir.RegA0, ir.RegA0 + 1, ir.RegA0 + 2, ir.RegA0 + 3, ir.RegSP}

// retUses lists locations live at a function return under this system's
// ABI: the 32-bit result, callee-saved registers, and the stack/frame/
// link registers. ($v1 would join for 64-bit results, which MicroC has
// none of; treating it as dead lets DCE remove leftover temporaries.)
var retUses = func() []ir.Loc {
	out := []ir.Loc{ir.RegV0, ir.RegSP, ir.RegFP, ir.RegRA}
	for r := 16; r <= 23; r++ {
		out = append(out, ir.Loc(r))
	}
	return out
}()

// simplify folds a binary instruction with known-constant inputs and
// applies algebraic identities, possibly rewriting it to a Move.
func simplify(in *ir.Instr) {
	if !in.Op.IsBinary() {
		return
	}
	if in.A.IsConst && in.B.IsConst {
		if v, ok := evalBinary(in.Op, in.A.Val, in.B.Val); ok {
			*in = ir.Instr{Op: ir.Move, Dst: in.Dst, A: ir.C(v), Addr: in.Addr}
			return
		}
	}
	isC := func(a ir.Arg, v int32) bool { return a.IsConst && a.Val == v }
	toMove := func(a ir.Arg) {
		*in = ir.Instr{Op: ir.Move, Dst: in.Dst, A: a, Addr: in.Addr}
	}
	switch in.Op {
	case ir.Add:
		if isC(in.B, 0) {
			toMove(in.A)
		} else if isC(in.A, 0) {
			toMove(in.B)
		}
	case ir.Sub:
		if isC(in.B, 0) {
			toMove(in.A)
		}
	case ir.Or, ir.Xor:
		if isC(in.B, 0) {
			toMove(in.A)
		} else if isC(in.A, 0) {
			toMove(in.B)
		}
	case ir.And:
		if isC(in.A, 0) || isC(in.B, 0) {
			toMove(ir.C(0))
		} else if isC(in.B, -1) {
			toMove(in.A)
		}
	case ir.Mul:
		if isC(in.A, 0) || isC(in.B, 0) {
			toMove(ir.C(0))
		} else if isC(in.B, 1) {
			toMove(in.A)
		} else if isC(in.A, 1) {
			toMove(in.B)
		}
	case ir.Shl, ir.ShrL, ir.ShrA:
		if isC(in.B, 0) {
			toMove(in.A)
		}
	}
}

// evalBinary folds an IR binary op over constants.
func evalBinary(op ir.Op, a, b int32) (int32, bool) {
	ua, ub := uint32(a), uint32(b)
	switch op {
	case ir.Add:
		return a + b, true
	case ir.Sub:
		return a - b, true
	case ir.Mul:
		return a * b, true
	case ir.MulH:
		return int32(uint64(int64(a)*int64(b)) >> 32), true
	case ir.MulHU:
		return int32(uint64(ua) * uint64(ub) >> 32), true
	case ir.Div:
		if b == 0 {
			return 0, false
		}
		if a == -1<<31 && b == -1 {
			return a, true
		}
		return a / b, true
	case ir.DivU:
		if b == 0 {
			return 0, false
		}
		return int32(ua / ub), true
	case ir.Rem:
		if b == 0 {
			return 0, false
		}
		if a == -1<<31 && b == -1 {
			return 0, true
		}
		return a % b, true
	case ir.RemU:
		if b == 0 {
			return 0, false
		}
		return int32(ua % ub), true
	case ir.And:
		return a & b, true
	case ir.Or:
		return a | b, true
	case ir.Xor:
		return a ^ b, true
	case ir.Shl:
		return a << (ub & 31), true
	case ir.ShrL:
		return int32(ua >> (ub & 31)), true
	case ir.ShrA:
		return a >> (ub & 31), true
	case ir.SetLT:
		if a < b {
			return 1, true
		}
		return 0, true
	case ir.SetLTU:
		if ua < ub {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// FoldMoves collapses adjacent "x = op ...; y = x" pairs into
// "y = op ..." when the intermediate x is dead afterwards (not read again
// in the block and not live out of it). This removes the temp-and-move
// shape register allocation leaves behind and is what re-exposes
// induction variables ("r14 = add r25, 1; r25 = r14" becomes
// "r25 = add r25, 1"). Registers are freely reused by compilers, so the
// deadness check must be liveness-based rather than use-count-based.
func FoldMoves(f *ir.Func) int {
	_, liveOut := abiLiveness(f)
	folded := 0
	for _, b := range f.Blocks {
		for i := 1; i < len(b.Instrs); i++ {
			mv := &b.Instrs[i]
			if mv.Op != ir.Move || mv.A.IsConst {
				continue
			}
			x := mv.A.Loc
			if x == ir.RegZero || x == mv.Dst {
				continue
			}
			prev := &b.Instrs[i-1]
			if !prev.HasDst() || prev.Dst != x || prev.Op == ir.Move {
				continue
			}
			if usedLater(b, i+1, x) || liveOut[b.Index].has(x) {
				continue
			}
			prev.Dst = mv.Dst
			*mv = ir.Instr{Op: ir.Nop, Addr: mv.Addr}
			folded++
		}
	}
	return folded
}

// usedLater reports whether loc is read in b at or after index from,
// before being redefined.
func usedLater(b *ir.Block, from int, loc ir.Loc) bool {
	var ub [2]ir.Loc
	for i := from; i < len(b.Instrs); i++ {
		in := &b.Instrs[i]
		for _, u := range effUses(in, ub[:0]) {
			if u == loc {
				return true
			}
		}
		if in.Op == ir.Call {
			// The call may observe caller-saved state only via args,
			// which effUses covers; a clobber ends the live range.
			for _, l := range callClobbered {
				if l == loc {
					return false
				}
			}
		}
		if in.HasDst() && in.Dst == loc {
			return false
		}
	}
	return false
}

// abiLiveness computes block liveness with ABI-aware uses (calls read
// argument registers, returns read the ABI-live set). The returned sets
// share one backing allocation; treat them as read-only.
func abiLiveness(f *ir.Func) (liveIn, liveOut []locSet) {
	n := len(f.Blocks)
	sets, scratch := newLocSets(2*n, 1, locSpace(f))
	liveIn, liveOut = sets[:n], sets[n:]
	live := scratch[0]
	var ub [2]ir.Loc
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			live.reset()
			for _, s := range b.Succs {
				live.or(liveIn[s.Index])
			}
			if liveOut[i].or(live) {
				changed = true
			}
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				in := &b.Instrs[j]
				if in.HasDst() {
					live.clear(in.Dst)
				}
				if in.Op == ir.Call {
					for _, l := range callClobbered {
						live.clear(l)
					}
				}
				for _, u := range effUses(in, ub[:0]) {
					live.set(u)
				}
			}
			if liveIn[i].or(live) {
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

// effUses extends Instr.Uses with ABI effects: calls read the argument
// registers, returns read the ABI-live set. ABI ops return shared
// package-level slices and other ops append into buf, so a caller-held
// buffer of capacity two makes the call allocation-free; the result is
// only valid until buf's next reuse and must not be mutated.
func effUses(in *ir.Instr, buf []ir.Loc) []ir.Loc {
	switch in.Op {
	case ir.Call:
		return callUses
	case ir.Ret:
		return retUses
	case ir.Halt:
		return haltUses
	}
	return in.AppendUses(buf)
}

var haltUses = []ir.Loc{ir.RegV0}

// DeadCode removes pure instructions whose destinations are never live,
// using backwards per-instruction liveness with ABI-aware uses. Returns
// the number of instructions removed.
func DeadCode(f *ir.Func) int {
	// Block-level liveness with ABI uses folded in.
	n := len(f.Blocks)
	liveIn, scratch := newLocSets(n, 1, locSpace(f))
	live := scratch[0]
	var ub [2]ir.Loc
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			live.reset()
			for _, s := range b.Succs {
				live.or(liveIn[s.Index])
			}
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				in := &b.Instrs[j]
				if in.HasDst() {
					live.clear(in.Dst)
				}
				if in.Op == ir.Call {
					for _, l := range callClobbered {
						live.clear(l)
					}
				}
				for _, u := range effUses(in, ub[:0]) {
					live.set(u)
				}
			}
			if liveIn[i].or(live) {
				changed = true
			}
		}
	}

	removed := 0
	for i := n - 1; i >= 0; i-- {
		b := f.Blocks[i]
		live.reset()
		for _, s := range b.Succs {
			live.or(liveIn[s.Index])
		}
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			in := &b.Instrs[j]
			if in.HasDst() && !live.has(in.Dst) && pure(in) {
				*in = ir.Instr{Op: ir.Nop, Addr: in.Addr}
				removed++
				continue
			}
			if in.HasDst() {
				live.clear(in.Dst)
			}
			if in.Op == ir.Call {
				for _, l := range callClobbered {
					live.clear(l)
				}
			}
			for _, u := range effUses(in, ub[:0]) {
				live.set(u)
			}
		}
	}
	// Drop accumulated Nops.
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != ir.Nop {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	return removed
}

// pure reports whether removing the instruction is safe when its result
// is dead. Loads are pure in this memory model (no volatile/IO).
func pure(in *ir.Instr) bool {
	if in.Op.IsBinary() {
		return true
	}
	return in.Op == ir.Move || in.Op == ir.Load
}

// GlobalConstProp propagates constants across blocks in the simple
// single-definition case: a location whose only definition in the whole
// function is a constant move *in the entry block* holds that constant at
// every later program point (the entry block dominates everything, and a
// single def cannot be shadowed). Returns substitutions made.
func GlobalConstProp(f *ir.Func) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	defCount := map[ir.Loc]int{}
	constVal := map[ir.Loc]int32{}
	inEntry := map[ir.Loc]bool{}
	for bi, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.HasDst() {
				continue
			}
			defCount[in.Dst]++
			if in.Op == ir.Move && in.A.IsConst {
				constVal[in.Dst] = in.A.Val
				inEntry[in.Dst] = bi == 0
			} else {
				delete(constVal, in.Dst)
			}
		}
	}
	// Only locations with exactly one def: a constant move in the entry
	// block.
	sub := map[ir.Loc]int32{}
	for loc, v := range constVal {
		if defCount[loc] == 1 && inEntry[loc] {
			sub[loc] = v
		}
	}
	if len(sub) == 0 {
		return 0
	}
	n := 0
	seenDef := map[ir.Loc]bool{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			rewrite := func(a *ir.Arg) {
				if a.IsConst {
					return
				}
				if v, ok := sub[a.Loc]; ok && seenDef[a.Loc] {
					*a = ir.C(v)
					n++
				}
			}
			switch {
			case in.Op.IsBinary() || in.Op == ir.Branch || in.Op == ir.Store:
				rewrite(&in.A)
				rewrite(&in.B)
			case in.Op == ir.Move || in.Op == ir.Load || in.Op == ir.IJump:
				rewrite(&in.A)
			}
			if in.HasDst() {
				if _, ok := sub[in.Dst]; ok {
					seenDef[in.Dst] = true
				}
			}
		}
	}
	return n
}

// Cleanup iterates ConstProp, FoldMoves and DeadCode to a fixpoint; this
// is the paper's "constant propagation" overhead-removal stage.
func Cleanup(f *ir.Func) {
	for i := 0; i < 8; i++ {
		c := ConstProp(f)
		c += GlobalConstProp(f)
		c += FoldMoves(f)
		c += DeadCode(f)
		if c == 0 {
			return
		}
	}
}
