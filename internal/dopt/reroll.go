package dopt

import (
	"sort"

	"binpart/internal/ir"
)

// RerollReport summarizes loop rerolling over a function.
type RerollReport struct {
	// Rerolled lists the unroll factors undone, one entry per loop.
	Rerolled []int
	// InstrsRemoved counts instructions eliminated by rerolling.
	InstrsRemoved int
	// Factors maps rewritten block indices to their reroll factor: the
	// block now executes Factor times as many iterations as a profile of
	// the original binary reports. Cycle estimators must scale.
	Factors map[int]int
}

// Reroll performs the paper's "loop rerolling": it detects loop bodies
// consisting of k copies of a statement group whose induction uses step
// from copy to copy, keeps one copy, and divides every induction step by
// k. This shrinks the CDFG (important for dynamic synthesis) and
// re-exposes the original memory access pattern.
//
// Register allocators rename temporaries freely between copies and
// interleave induction-offset computations ("r12 = add i, 1") with the
// copied work, so textual comparison is hopeless. The matcher instead
// proves a positional reaching-definition isomorphism:
//
//   - "offset definitions" — additions of a constant to an induction
//     variable — are lifted out of the stream and tracked as symbolic
//     bindings (iv, c), transitively;
//   - the remaining core must split into k equal contiguous groups;
//   - at matching positions, instructions must agree on op/width/cond,
//     and each operand must either (a) carry offset bindings progressing
//     by exactly step/k per copy, (b) resolve to the same matched
//     position of its own group (renamed temps), (c) resolve to the same
//     external definition (loop-invariant inputs), or (d) form a
//     reduction: the same register, fed by the previous copy at a
//     position where copy 0 writes that register.
//
// Anything else aborts the reroll, so the rewrite is semantics-preserving
// by construction.
func Reroll(f *ir.Func) RerollReport {
	rep := RerollReport{Factors: map[int]int{}}
	for {
		loops := ir.FindLoops(f)
		done := true
		for _, l := range loops {
			if k, removed, body := tryReroll(f, l); k > 1 {
				rep.Rerolled = append(rep.Rerolled, k)
				rep.InstrsRemoved += removed
				for idx := range l.Blocks {
					rep.Factors[idx] *= k
					if rep.Factors[idx] == 0 {
						rep.Factors[idx] = k
					}
				}
				_ = body
				done = false
				break
			}
		}
		if done {
			return rep
		}
	}
}

func tryReroll(f *ir.Func, l *ir.Loop) (factor, removed, bodyIdx int) {
	if len(l.IndVars) == 0 || len(l.Blocks) > 2 {
		return 0, 0, 0
	}
	ivStep := map[ir.Loc]int32{}
	for _, iv := range l.IndVars {
		ivStep[iv.Loc] = iv.Step
	}
	// Scan candidates in block-index order: l.Blocks is a map, and if two
	// blocks both update every induction variable the rewrite must not
	// depend on iteration order.
	bidx := make([]int, 0, len(l.Blocks))
	for idx := range l.Blocks {
		bidx = append(bidx, idx)
	}
	sort.Ints(bidx)
	var body *ir.Block
	for _, idx := range bidx {
		if b := l.Blocks[idx]; countIVUpdates(b, ivStep) == len(l.IndVars) {
			body = b
			break
		}
	}
	if body == nil {
		return 0, 0, 0
	}
	// Locations defined anywhere in the loop (for invariance checks) and
	// whether any loop block writes memory.
	defsInLoop := map[ir.Loc]bool{}
	loopStores := false
	for _, b := range l.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].HasDst() {
				defsInLoop[b.Instrs[i].Dst] = true
			}
			if b.Instrs[i].Op == ir.Store {
				loopStores = true
			}
		}
	}
	_, liveOut := abiLiveness(f)
	m := newRerollMatcher(body, ivStep, liveOut[body.Index], defsInLoop, loopStores)
	if m == nil {
		return 0, 0, 0
	}
	for _, k := range []int{8, 4, 2} {
		if !stepsDivisible(l.IndVars, int32(k)) {
			continue
		}
		if m.match(k) {
			before := len(body.Instrs)
			m.apply(k)
			return k, before - len(body.Instrs), body.Index
		}
	}
	return 0, 0, 0
}

func countIVUpdates(b *ir.Block, ivStep map[ir.Loc]int32) int {
	n := 0
	for i := range b.Instrs {
		if isIVUpdate(&b.Instrs[i], ivStep) {
			n++
		}
	}
	return n
}

func isIVUpdate(in *ir.Instr, ivStep map[ir.Loc]int32) bool {
	if !in.HasDst() {
		return false
	}
	if _, ok := ivStep[in.Dst]; !ok {
		return false
	}
	if in.Op == ir.Add &&
		((!in.A.IsConst && in.A.Loc == in.Dst && in.B.IsConst) ||
			(!in.B.IsConst && in.B.Loc == in.Dst && in.A.IsConst)) {
		return true
	}
	if in.Op == ir.Sub && !in.A.IsConst && in.A.Loc == in.Dst && in.B.IsConst {
		return true
	}
	return false
}

func stepsDivisible(ivs []ir.IndVar, k int32) bool {
	for _, iv := range ivs {
		if iv.Step%k != 0 || iv.Step/k == 0 {
			return false
		}
	}
	return true
}

// instrClass labels each body instruction for the matcher.
type instrClass int

const (
	classCore instrClass = iota
	classOffset
	classInvariant
	classUpdate
	classTerm
)

// offsetBinding is the symbolic value (iv + c) carried by an offset def.
type offsetBinding struct {
	iv ir.Loc
	c  int32
}

// reduction records a loop-carried accumulator chain discovered during
// matching: copy j reads (at read position p, operand slot) the value the
// previous copy wrote at position q; copies may rename the accumulator
// register, so the kept copy is rewritten to use the carried register.
type reduction struct {
	q       int    // core position (within group) of the carried write
	carried ir.Loc // register holding the loop-carried input of copy 0
	readPos []int  // core positions (within group) reading the carried value
	readA   []bool // true when the A operand is the carried read
}

// rerollMatcher holds the analyzed body block.
type rerollMatcher struct {
	b       *ir.Block
	ivStep  map[ir.Loc]int32
	classes []instrClass
	// binding[i] is the symbolic (iv+c) computed by offset def i.
	binding map[int]offsetBinding
	// defOf[i][0/1] is the in-block reaching def of instr i's A/B operand.
	bc *blockChains
	// core lists the stream indices of core instructions in order.
	core []int
	// coreIdx maps stream index -> core position, or -1.
	coreIdx    []int
	liveOut    locSet
	defsInLoop map[ir.Loc]bool
	loopStores bool
	// reductions maps the carried-write position q to its chain info;
	// populated during match, consumed by apply.
	reductions map[int]*reduction
	// dstMismatch records positions where copies rename the destination;
	// each must be resolved by a reduction.
	dstMismatch map[int]bool
}

func newRerollMatcher(b *ir.Block, ivStep map[ir.Loc]int32, liveOut locSet, defsInLoop map[ir.Loc]bool, loopStores bool) *rerollMatcher {
	m := &rerollMatcher{
		b:          b,
		ivStep:     ivStep,
		classes:    make([]instrClass, len(b.Instrs)),
		binding:    map[int]offsetBinding{},
		bc:         newBlockChains(b, liveOut),
		coreIdx:    make([]int, len(b.Instrs)),
		liveOut:    liveOut,
		defsInLoop: defsInLoop,
		loopStores: loopStores,
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		m.coreIdx[i] = -1
		switch {
		case in.Op == ir.Nop:
			m.classes[i] = classTerm // ignorable
		case in.Op == ir.Jump || in.Op == ir.Branch || in.Op == ir.Ret || in.Op == ir.Halt:
			if i != len(b.Instrs)-1 {
				return nil
			}
			m.classes[i] = classTerm
		case in.Op == ir.Call || in.Op == ir.IJump:
			return nil
		case isIVUpdate(in, ivStep):
			m.classes[i] = classUpdate
		default:
			if bind, ok := m.offsetDef(i); ok {
				m.classes[i] = classOffset
				m.binding[i] = bind
				continue
			}
			if m.invariantDef(i) {
				// Loop-invariant computation (CSE leftovers, hoisted
				// address math, invariant reloads); it is shared across
				// copies rather than replicated, so it floats outside
				// the matched groups.
				m.classes[i] = classInvariant
				continue
			}
			m.classes[i] = classCore
			m.coreIdx[i] = len(m.core)
			m.core = append(m.core, i)
		}
	}
	return m
}

// invariantDef reports whether instruction i computes a loop-invariant
// value: a pure operation whose operands are constants, locations never
// defined in the loop, or other invariant definitions. Loads qualify only
// when the loop writes no memory at all.
func (m *rerollMatcher) invariantDef(i int) bool {
	in := &m.b.Instrs[i]
	if !in.HasDst() {
		return false
	}
	if _, isIV := m.ivStep[in.Dst]; isIV {
		return false
	}
	switch {
	case in.Op.IsBinary() || in.Op == ir.Move:
	case in.Op == ir.Load:
		if m.loopStores {
			return false
		}
	default:
		return false
	}
	check := func(a ir.Arg, def int) bool {
		if a.IsConst {
			return true
		}
		if def >= 0 {
			return m.classes[def] == classInvariant
		}
		return !m.defsInLoop[a.Loc]
	}
	switch {
	case in.Op == ir.Move || in.Op == ir.Load:
		return check(in.A, m.bc.defOfA[i])
	default:
		return check(in.A, m.bc.defOfA[i]) && check(in.B, m.bc.defOfB[i])
	}
}

// invariantEqual reports whether two invariant definitions compute the
// same value: either literally the same instruction, or structurally
// identical trees over shared inputs.
func (m *rerollMatcher) invariantEqual(d0, dj int) bool {
	if d0 == dj {
		return true
	}
	if d0 < 0 || dj < 0 {
		return false
	}
	a := &m.b.Instrs[d0]
	b := &m.b.Instrs[dj]
	if a.Op != b.Op || a.Width != b.Width || a.Signed != b.Signed || a.Off != b.Off {
		return false
	}
	argEq := func(x, y ir.Arg, dx, dy int) bool {
		if x.IsConst != y.IsConst {
			return false
		}
		if x.IsConst {
			return x.Val == y.Val
		}
		if dx < 0 && dy < 0 {
			return x.Loc == y.Loc
		}
		return m.invariantEqual(dx, dy)
	}
	if !argEq(a.A, b.A, m.bc.defOfA[d0], m.bc.defOfA[dj]) {
		return false
	}
	if a.Op == ir.Move || a.Op == ir.Load {
		return true
	}
	return argEq(a.B, b.B, m.bc.defOfB[d0], m.bc.defOfB[dj])
}

// offsetDef recognizes "x = add/sub (iv or offset-bound), const" where x
// is not itself an induction variable and the value never escapes.
func (m *rerollMatcher) offsetDef(i int) (offsetBinding, bool) {
	in := &m.b.Instrs[i]
	if in.Op != ir.Add && in.Op != ir.Sub {
		return offsetBinding{}, false
	}
	if _, isIV := m.ivStep[in.Dst]; isIV {
		return offsetBinding{}, false
	}
	if m.bc.escapes[i] {
		return offsetBinding{}, false
	}
	var u ir.Arg
	var c int32
	var uDef int
	switch {
	case !in.A.IsConst && in.B.IsConst:
		u, c, uDef = in.A, in.B.Val, m.bc.defOfA[i]
		if in.Op == ir.Sub {
			c = -c
		}
	case in.Op == ir.Add && in.A.IsConst && !in.B.IsConst:
		u, c, uDef = in.B, in.A.Val, m.bc.defOfB[i]
	default:
		return offsetBinding{}, false
	}
	if bind, ok := m.operandBinding(u, uDef); ok {
		return offsetBinding{iv: bind.iv, c: bind.c + c}, true
	}
	return offsetBinding{}, false
}

// operandBinding resolves an operand to a symbolic (iv + c) value if it is
// an induction variable or an offset def.
func (m *rerollMatcher) operandBinding(a ir.Arg, def int) (offsetBinding, bool) {
	if a.IsConst {
		return offsetBinding{}, false
	}
	if def >= 0 {
		if bind, ok := m.binding[def]; ok {
			return bind, true
		}
		return offsetBinding{}, false
	}
	// Defined outside the block: the induction variable itself (its
	// in-block update is classified separately and always follows the
	// core in unrolled bodies; a core read after the update would resolve
	// to the update instr, which carries no binding and fails the match).
	if _, ok := m.ivStep[a.Loc]; ok {
		return offsetBinding{iv: a.Loc, c: 0}, true
	}
	return offsetBinding{}, false
}

// match verifies the k-way isomorphism.
func (m *rerollMatcher) match(k int) bool {
	n := len(m.core)
	if n < 2 || n%k != 0 {
		return false
	}
	m.reductions = map[int]*reduction{}
	m.dstMismatch = map[int]bool{}
	g := n / k // group length
	for j := 1; j < k; j++ {
		for p := 0; p < g; p++ {
			i0 := m.core[p]
			ij := m.core[j*g+p]
			if !m.matchInstr(j, k, g, p, i0, ij) {
				return false
			}
		}
	}
	return m.validateReductions(k, g)
}

// validateReductions checks that every reduction chain is well formed and
// every destination rename is explained by one.
func (m *rerollMatcher) validateReductions(k, g int) bool {
	for q, red := range m.reductions {
		// The final copy's write must land in the carried register so the
		// live-out value is where downstream code expects it.
		last := &m.b.Instrs[m.core[(k-1)*g+q]]
		if !last.HasDst() || last.Dst != red.carried {
			return false
		}
		// Intermediate copies' carried writes must have exactly one
		// consumer (the next copy); otherwise renaming the kept copy's
		// destination would break another reader.
		for j := 0; j < k-1; j++ {
			if m.bc.useCount[m.core[j*g+q]] != 1 {
				return false
			}
		}
		// After renaming, a read placed after the carried write would see
		// the current iteration's value instead of the previous one.
		for _, p := range red.readPos {
			if p > q {
				return false
			}
		}
	}
	for p := range m.dstMismatch {
		if _, ok := m.reductions[p]; !ok {
			return false
		}
	}
	return true
}

func (m *rerollMatcher) matchInstr(j, k, g, p, i0, ij int) bool {
	a := &m.b.Instrs[i0]
	b := &m.b.Instrs[ij]
	if a.Op != b.Op || a.Width != b.Width || a.Signed != b.Signed || a.Cond != b.Cond {
		return false
	}
	if a.HasDst() != b.HasDst() {
		return false
	}
	if a.HasDst() && a.Dst != b.Dst && (m.bc.escapes[i0] || m.bc.escapes[ij]) {
		// An escaping renamed destination is only legal as a reduction
		// accumulator; validated after the full match.
		m.dstMismatch[p] = true
	}
	// Offsets: for loads/stores the displacement may progress if the base
	// operand's binding progression absorbs it; combined below.
	offDelta := b.Off - a.Off

	okA := m.matchOperand(j, k, g, p, true, a.A, b.A, m.bc.defOfA[i0], m.bc.defOfA[ij],
		pick(a.Op == ir.Load, offDelta, 0))
	okB := m.matchOperand(j, k, g, p, false, a.B, b.B, m.bc.defOfB[i0], m.bc.defOfB[ij],
		pick(a.Op == ir.Store, offDelta, 0))
	if !okA || !okB {
		return false
	}
	// A displacement delta is only allowed on the memory base operand;
	// for everything else offsets must agree.
	if a.Op != ir.Load && a.Op != ir.Store && offDelta != 0 {
		return false
	}
	return true
}

func pick(cond bool, a, b int32) int32 {
	if cond {
		return a
	}
	return b
}

// matchOperand checks one operand pair at group distance j. p is the core
// position within the group and slotA says which operand slot this is
// (for reduction bookkeeping). extraDelta is the load/store displacement
// difference to absorb into the induction progression when this operand
// is the memory base.
func (m *rerollMatcher) matchOperand(j, k, g, p int, slotA bool, a0, aj ir.Arg, d0, dj int, extraDelta int32) bool {
	if a0.IsConst != aj.IsConst {
		return false
	}
	if a0.IsConst {
		return a0.Val == aj.Val && extraDelta == 0
	}
	b0, ok0 := m.operandBinding(a0, d0)
	bj, okj := m.operandBinding(aj, dj)
	if ok0 || okj {
		if !ok0 || !okj || b0.iv != bj.iv {
			return false
		}
		step := m.ivStep[b0.iv]
		want := step / int32(k) * int32(j)
		return (bj.c+extraDelta)-b0.c == want
	}
	// Loop-invariant definitions: both sides must compute the same
	// invariant value (usually literally the same shared instruction).
	inv0 := d0 >= 0 && m.classes[d0] == classInvariant
	invj := dj >= 0 && m.classes[dj] == classInvariant
	if inv0 || invj {
		if !inv0 || !invj || extraDelta != 0 {
			return false
		}
		return m.invariantEqual(d0, dj)
	}
	if extraDelta != 0 {
		return false
	}
	// Both core or external.
	c0, cj := coreOf(m.coreIdx, d0), coreOf(m.coreIdx, dj)
	switch {
	case c0 >= 0 && cj >= 0:
		// Renamed temps: same position within their own groups, exactly
		// one group apart per copy distance.
		return cj%g == c0%g && cj/g == c0/g+j
	case c0 < 0 && cj < 0:
		return a0.Loc == aj.Loc && d0 == dj
	case c0 < 0 && cj >= 0:
		// Reduction: copy j reads what the previous copy wrote; copy 0
		// reads the loop-carried input (an external definition). The
		// accumulator register may be renamed between copies.
		if cj/g != j-1 {
			return false
		}
		q := cj % g
		red, ok := m.reductions[q]
		if !ok {
			red = &reduction{q: q, carried: a0.Loc}
			m.reductions[q] = red
			red.readPos = append(red.readPos, p)
			red.readA = append(red.readA, slotA)
		} else if red.carried != a0.Loc {
			return false
		} else if j == 1 {
			// Another read site discovered during the first copy pass.
			seen := false
			for idx, rp := range red.readPos {
				if rp == p && red.readA[idx] == slotA {
					seen = true
				}
			}
			if !seen {
				red.readPos = append(red.readPos, p)
				red.readA = append(red.readA, slotA)
			}
		}
		return true
	default:
		return false
	}
}

func coreOf(coreIdx []int, def int) int {
	if def < 0 {
		return -1
	}
	return coreIdx[def]
}

// apply rewrites the body: keep the first group's core instructions plus
// any offset/invariant defs they depend on, rename reduction accumulators
// to the loop-carried register, scale induction updates by 1/k, keep the
// terminator, and drop everything else.
func (m *rerollMatcher) apply(k int) {
	g := len(m.core) / k

	// Reduction renames on the kept copy.
	for q, red := range m.reductions {
		w := &m.b.Instrs[m.core[q]]
		w.Dst = red.carried
		for idx, p := range red.readPos {
			r := &m.b.Instrs[m.core[p]]
			if red.readA[idx] {
				r.A.Loc = red.carried
			} else {
				r.B.Loc = red.carried
			}
		}
	}

	keep := make([]bool, len(m.b.Instrs))
	for p := 0; p < g; p++ {
		keep[m.core[p]] = true
	}
	for i, cls := range m.classes {
		switch cls {
		case classUpdate, classTerm:
			keep[i] = true
		case classInvariant:
			if m.bc.escapes[i] {
				keep[i] = true
			}
		}
	}
	// Offset and invariant defs: keep those (transitively) feeding kept
	// instructions.
	for changed := true; changed; {
		changed = false
		for i := range m.b.Instrs {
			if !keep[i] {
				continue
			}
			for _, d := range []int{m.bc.defOfA[i], m.bc.defOfB[i]} {
				if d >= 0 && !keep[d] && (m.classes[d] == classOffset || m.classes[d] == classInvariant) {
					keep[d] = true
					changed = true
				}
			}
		}
	}
	var out []ir.Instr
	for i := range m.b.Instrs {
		if !keep[i] {
			continue
		}
		in := m.b.Instrs[i]
		if m.classes[i] == classUpdate {
			if in.A.IsConst {
				in.A.Val /= int32(k)
			} else {
				in.B.Val /= int32(k)
			}
		}
		out = append(out, in)
	}
	m.b.Instrs = out
}
