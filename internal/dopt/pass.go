package dopt

import "binpart/internal/ir"

// Report aggregates what every decompiler optimization did to a function.
type Report struct {
	// MovesFolded counts temp-and-move pairs collapsed by FoldMoves.
	MovesFolded int
	// DeadRemoved counts instructions removed by dead code elimination.
	DeadRemoved int
	Stack       StackReport
	Reroll      RerollReport
	Promote     PromoteReport
	// StrengthReduced counts power-of-two mul/div/rem turned into shifts.
	StrengthReduced int
	Width           WidthReport
}

// Config toggles individual passes off for ablation studies; the zero
// value runs the full pipeline.
type Config struct {
	NoStackRemoval bool
	NoReroll       bool
	NoPromote      bool
	NoStrengthRed  bool
	NoWidthReduce  bool
}

// Optimize runs the full decompiler optimization pipeline on f in the
// paper's order: instruction-set overhead removal (constant propagation,
// stack operation removal, strength reduction, operator size reduction)
// and compiler-optimization undoing (loop rerolling, strength promotion).
func Optimize(f *ir.Func) Report {
	return OptimizeWith(f, Config{})
}

// OptimizeWith runs the pipeline with selected passes disabled.
func OptimizeWith(f *ir.Func, cfg Config) Report {
	var rep Report

	// Instruction-set overhead removal.
	ConstProp(f)
	rep.MovesFolded += FoldMoves(f)
	rep.DeadRemoved += DeadCode(f)
	Cleanup(f)
	if !cfg.NoStackRemoval {
		rep.Stack = RemoveStackOps(f)
		Cleanup(f)
	}

	// Undo compiler optimizations.
	if !cfg.NoReroll {
		rep.Reroll = Reroll(f)
	}
	if !cfg.NoPromote {
		rep.Promote = PromoteStrength(f)
	}
	Cleanup(f)

	// Final synthesis-oriented rewrites and annotations.
	if !cfg.NoStrengthRed {
		rep.StrengthReduced = StrengthReduce(f)
		Cleanup(f)
	}
	if !cfg.NoWidthReduce {
		rep.Width = ReduceWidths(f)
	}
	return rep
}
