package core

import (
	"reflect"
	"testing"

	"binpart/internal/bench"
	"binpart/internal/cache"
	"binpart/internal/sim"
)

// TestSimCodecRoundTrip pins the simulation result's wire format: a
// profiled run must decode back to a deeply equal value.
func TestSimCodecRoundTrip(t *testing.T) {
	b, _ := bench.ByName("crc")
	img, err := b.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Profile = true
	res, err := sim.Execute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	codec := SimCodec()
	blob, err := codec.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("sim result changed across the codec:\n got %+v\nwant %+v", got, res)
	}
}

// TestAnalysisCodecRoundTrip checks the lossy-by-design Analysis wire
// format: a decoded Analysis must evaluate to a Report with an identical
// fingerprint (options, metrics, regions, footprints, outlines, dopt
// logs), losing only the candidates' Design pointers.
func TestAnalysisCodecRoundTrip(t *testing.T) {
	b, _ := bench.ByName("crc")
	img, err := b.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	a, err := Analyze(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	codec := AnalysisCodec()
	blob, err := codec.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := Evaluate(a, opts.Platform, 0, opts.Algorithm)
	have := Evaluate(got, opts.Platform, 0, opts.Algorithm)
	if fullFingerprint(have) != fullFingerprint(want) {
		t.Errorf("decoded analysis evaluates differently:\n got %s\nwant %s",
			fullFingerprint(have), fullFingerprint(want))
	}
	for _, c := range got.Candidates {
		if c.Design != nil {
			t.Errorf("candidate %s kept a Design across the wire", c.Name)
		}
	}
}

// TestRemoteSharedAnalysis is the distributed-sweep contract end to end:
// worker A analyzes through a shared cache server; worker B — a fresh
// process-equivalent cache set — must fetch that Analysis remotely
// (skipping sim/lift/synth entirely) and evaluate byte-identically.
func TestRemoteSharedAnalysis(t *testing.T) {
	srv, err := cache.ListenAndServe("127.0.0.1:0", cache.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	newRemoteCaches := func() *Caches {
		rt, err := cache.NewRemoteTier([]string{srv.Addr()}, cache.RemoteConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return NewCaches().WithRemote(rt, true)
	}

	b, _ := bench.ByName("crc")
	img, err := b.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()

	cachesA := newRemoteCaches()
	a, err := AnalyzeWith(img, opts, cachesA)
	if err != nil {
		t.Fatal(err)
	}
	if s := cachesA.Analysis.Stats(); s.Misses != 1 {
		t.Fatalf("worker A stats = %+v, want one analysis miss", s)
	}

	cachesB := newRemoteCaches()
	bAnalysis, err := AnalyzeWith(img, opts, cachesB)
	if err != nil {
		t.Fatal(err)
	}
	if s := cachesB.Analysis.Stats(); s.RemoteHits != 1 || s.Misses != 0 {
		t.Errorf("worker B stats = %+v, want one remote analysis hit", s)
	}
	// B's sim cache must be untouched: the analysis hit skipped the stage.
	if s := cachesB.Sim.Stats(); s.Hits+s.Misses != 0 {
		t.Errorf("worker B ran simulation despite a remote analysis hit: %+v", s)
	}

	want := Evaluate(a, opts.Platform, 0, opts.Algorithm)
	have := Evaluate(bAnalysis, opts.Platform, 0, opts.Algorithm)
	if fullFingerprint(have) != fullFingerprint(want) {
		t.Errorf("remote analysis evaluates differently:\n got %s\nwant %s",
			fullFingerprint(have), fullFingerprint(want))
	}
}
