package core

import (
	"testing"

	"binpart/internal/bench"
	"binpart/internal/binimg"
	"binpart/internal/platform"
	"binpart/internal/sim"
	"binpart/internal/vhdl"
)

func runBench(t *testing.T, name string, lvl int, opts Options) *Report {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	img, err := b.Compile(lvl)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEndToEndCRC(t *testing.T) {
	rep := runBench(t, "crc", 1, DefaultOptions())
	if rep.SWCycles == 0 {
		t.Fatal("no software cycles")
	}
	if len(rep.Regions) == 0 {
		t.Fatal("no candidate regions")
	}
	sel := rep.SelectedRegions()
	if len(sel) == 0 {
		t.Fatalf("nothing selected for hardware; regions: %+v", rep.Regions)
	}
	if rep.Metrics.AppSpeedup <= 1.0 {
		t.Errorf("application speedup %.2f, want > 1", rep.Metrics.AppSpeedup)
	}
	if rep.Metrics.KernelSpeedup < rep.Metrics.AppSpeedup {
		t.Errorf("kernel speedup %.2f below app speedup %.2f",
			rep.Metrics.KernelSpeedup, rep.Metrics.AppSpeedup)
	}
	if rep.Metrics.EnergySavings <= 0 {
		t.Errorf("energy savings %.2f, want positive", rep.Metrics.EnergySavings)
	}
	if rep.Metrics.AreaGates <= 0 {
		t.Error("no area consumed")
	}
	// The checksum must match the benchmark's software result.
	b, _ := bench.ByName("crc")
	img, _ := b.Compile(1)
	res, err := sim.Execute(img, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExitCode != res.ExitCode {
		t.Errorf("profiled run checksum %d != plain run %d", rep.ExitCode, res.ExitCode)
	}
}

func TestVHDLForSelectedRegions(t *testing.T) {
	rep := runBench(t, "fir", 1, DefaultOptions())
	files, err := rep.VHDL()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no VHDL emitted")
	}
	for name, text := range files {
		if err := vhdl.Check(text); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestJumpTableBenchmarkDegradesGracefully(t *testing.T) {
	// Under the paper's flow (switch-table recovery off), routelookup's
	// kernel fails CDFG recovery; the flow must still complete (the
	// kernel simply stays in software).
	opts := DefaultOptions()
	opts.RecoverJumpTables = false
	rep := runBench(t, "routelookup", 1, opts)
	if rep.Recovery.FuncsFailed == 0 {
		t.Error("expected a recovery failure")
	}
	if _, ok := rep.Recovery.FailReasons["route_kernel"]; !ok {
		t.Errorf("route_kernel missing from failures: %v", rep.Recovery.FailReasons)
	}
	// Speedup may be modest (main's loops remain available) but the
	// pipeline must produce coherent metrics.
	if rep.Metrics.SWTimeS <= 0 || rep.Metrics.HWSWTimeS <= 0 {
		t.Errorf("bad metrics: %+v", rep.Metrics)
	}
}

func TestPlatformSweepShape(t *testing.T) {
	b, _ := bench.ByName("brev")
	img, err := b.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	speeds := map[string]float64{}
	for name, p := range map[string]platform.Platform{
		"40": platform.MIPS40, "200": platform.MIPS200, "400": platform.MIPS400,
	} {
		opts := DefaultOptions()
		opts.Platform = p
		rep, err := Run(img, opts)
		if err != nil {
			t.Fatal(err)
		}
		speeds[name] = rep.Metrics.AppSpeedup
	}
	if !(speeds["40"] > speeds["200"] && speeds["200"] > speeds["400"]) {
		t.Errorf("speedups not decreasing with CPU clock: %v", speeds)
	}
}

func TestAreaBudgetLimitsSelection(t *testing.T) {
	opts := DefaultOptions()
	opts.AreaBudgetGates = 1 // nothing fits
	rep := runBench(t, "fir", 1, opts)
	if len(rep.SelectedRegions()) != 0 {
		t.Error("regions selected under a 1-gate budget")
	}
	if rep.Metrics.AppSpeedup != 1 {
		t.Errorf("speedup %.2f with empty partition, want 1", rep.Metrics.AppSpeedup)
	}
}

func TestAlgorithmsProduceValidPartitions(t *testing.T) {
	for _, alg := range []Algorithm{AlgNinetyTen, AlgGreedy, AlgGCLP} {
		opts := DefaultOptions()
		opts.Algorithm = alg
		rep := runBench(t, "adpcm", 1, opts)
		if rep.Metrics.AppSpeedup < 1 {
			t.Errorf("%v: speedup %.2f < 1", alg, rep.Metrics.AppSpeedup)
		}
		budget := opts.AreaBudgetGates
		if budget == 0 {
			continue
		}
		total := 0
		for _, r := range rep.SelectedRegions() {
			total += r.AreaGates
		}
		if budget > 0 && total > budget {
			t.Errorf("%v: area %d over budget", alg, total)
		}
	}
}

func TestRecoveryStatsPopulated(t *testing.T) {
	rep := runBench(t, "matmul", 3, DefaultOptions())
	if rep.Recovery.FuncsRecovered == 0 || rep.Recovery.LoopsFound == 0 {
		t.Errorf("empty recovery stats: %+v", rep.Recovery)
	}
	// matmul at O3 exercises loop rerolling.
	if rep.Recovery.RerolledLoops == 0 {
		t.Errorf("no loops rerolled on O3 matmul: %+v", rep.Recovery)
	}
	if rep.PartitionTime <= 0 {
		t.Error("partition time not measured")
	}
}

func TestOptLevelsAllPartitionable(t *testing.T) {
	for lvl := 0; lvl <= 3; lvl++ {
		rep := runBench(t, "fir", lvl, DefaultOptions())
		if rep.Metrics.AppSpeedup <= 1 {
			t.Errorf("O%d: speedup %.2f, want > 1", lvl, rep.Metrics.AppSpeedup)
		}
	}
}

func TestFunctionGranularity(t *testing.T) {
	// The paper's "synthesizing an entire software application" use:
	// whole call-free functions become the hardware regions.
	opts := DefaultOptions()
	opts.Granularity = GranFunctions
	rep := runBench(t, "brev", 1, opts)
	found := false
	for _, r := range rep.SelectedRegions() {
		if r.Func == "brev_kernel" && r.Name == "brev_kernel" {
			found = true
		}
	}
	if !found {
		t.Errorf("brev_kernel not selected as a whole function; regions: %+v", rep.Regions)
	}
	if rep.Metrics.AppSpeedup <= 1 {
		t.Errorf("speedup %.2f at function granularity", rep.Metrics.AppSpeedup)
	}
	// Loop granularity on the same binary must also work and produce a
	// comparable result.
	repLoops := runBench(t, "brev", 1, DefaultOptions())
	if repLoops.Metrics.AppSpeedup <= 1 {
		t.Errorf("loop-granularity speedup %.2f", repLoops.Metrics.AppSpeedup)
	}
}

func TestAllBenchmarksEmitCheckedVHDL(t *testing.T) {
	// System-level sweep: every selected region of every benchmark must
	// synthesize to VHDL that passes the structural checker, with a
	// testbench to match.
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			img, err := b.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(img, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			files, err := rep.VHDL()
			if err != nil {
				t.Fatal(err)
			}
			for name, text := range files {
				if err := vhdl.Check(text); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
			for _, r := range rep.SelectedRegions() {
				tb, err := vhdl.EmitTestbench(r.Design)
				if err != nil {
					t.Fatal(err)
				}
				if err := vhdl.Check(tb); err != nil {
					t.Errorf("%s testbench: %v", r.Name, err)
				}
			}
		})
	}
}

func TestRunRejectsBadImages(t *testing.T) {
	// No functions at all.
	img := &binimg.Image{
		Entry:    binimg.DefaultTextBase,
		TextBase: binimg.DefaultTextBase,
		DataBase: binimg.DefaultDataBase,
	}
	if _, err := Run(img, DefaultOptions()); err == nil {
		t.Error("Run on empty image succeeded")
	}
}

func TestJumpTableExtensionAcceleratesFailedBenchmarks(t *testing.T) {
	// With the indirect-jump extension, the paper's two failing EEMBC
	// benchmarks become partitionable and accelerate.
	for _, name := range []string{"routelookup", "ttsprk"} {
		baseOpts := DefaultOptions()
		baseOpts.RecoverJumpTables = false // the paper's flow
		base := runBench(t, name, 1, baseOpts)
		opts := DefaultOptions()
		opts.RecoverJumpTables = true
		ext := runBench(t, name, 1, opts)
		if ext.Recovery.FuncsFailed != 0 {
			t.Errorf("%s: still %d failures with extension: %v",
				name, ext.Recovery.FuncsFailed, ext.Recovery.FailReasons)
		}
		if ext.Metrics.AppSpeedup <= base.Metrics.AppSpeedup {
			t.Errorf("%s: extension speedup %.2f not above baseline %.2f",
				name, ext.Metrics.AppSpeedup, base.Metrics.AppSpeedup)
		}
		if ext.Metrics.AppSpeedup < 1.5 {
			t.Errorf("%s: extension speedup %.2f too small", name, ext.Metrics.AppSpeedup)
		}
		// The VHDL for the switch-containing kernel must still check out.
		files, err := ext.VHDL()
		if err != nil {
			t.Fatal(err)
		}
		for rn, text := range files {
			if err := vhdl.Check(text); err != nil {
				t.Errorf("%s/%s: %v", name, rn, err)
			}
		}
	}
}
