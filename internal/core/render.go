package core

import (
	"fmt"
	"sort"
	"strings"

	"binpart/internal/fpga"
	"binpart/internal/obs"
	"binpart/internal/platform"
)

// RenderReport renders a partition report in the canonical text form
// shared by the bparts CLI and the bpartd daemon — the two surfaces must
// stay byte-identical for the same inputs, which is why the rendering
// lives here rather than in either command. With structure set, the
// recovered control-structure outlines are included.
func RenderReport(rep *Report, structure bool) string {
	var b strings.Builder
	opts := rep.Options
	fmt.Fprintf(&b, "platform: %s\n", opts.Platform.Name)
	fmt.Fprintf(&b, "software-only: %d cycles (%.3f ms), exit code %d\n",
		rep.SWCycles, rep.Metrics.SWTimeS*1e3, rep.ExitCode)
	fmt.Fprintf(&b, "recovery: %d functions, %d failed", rep.Recovery.FuncsRecovered, rep.Recovery.FuncsFailed)
	for _, name := range renderKeys(rep.Recovery.FailReasons) {
		fmt.Fprintf(&b, "\n  %s: %s", name, rep.Recovery.FailReasons[name])
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "decompiler: %d loops rerolled, %d multiplies promoted, %d stack slots promoted, %d operators narrowed\n",
		rep.Recovery.RerolledLoops, rep.Recovery.PromotedMultiplies,
		rep.Recovery.StackSlotsPromoted, rep.Recovery.OpsNarrowed)

	if structure {
		fmt.Fprintf(&b, "\nrecovered structure:\n")
		for _, name := range renderKeys(rep.Outlines) {
			fmt.Fprintln(&b, rep.Outlines[name])
		}
	}

	fmt.Fprintf(&b, "\ncandidate regions:\n")
	for _, r := range rep.Regions {
		mark := " "
		if r.Selected {
			mark = fmt.Sprintf("*%d", r.Step)
		}
		fmt.Fprintf(&b, "  %-2s %-32s sw=%-9d hw=%-9.0f clk=%.1fns area=%-7d mem=%v\n",
			mark, r.Name, r.SWCycles, r.HWCycles, r.HWClockNs, r.AreaGates, r.Footprint)
	}

	m := rep.Metrics
	fmt.Fprintf(&b, "\npartition (%s, %v):\n", opts.Algorithm, rep.PartitionTime)
	fmt.Fprintf(&b, "  application speedup: %.2fx\n", m.AppSpeedup)
	fmt.Fprintf(&b, "  kernel speedup:      %.2fx\n", m.KernelSpeedup)
	fmt.Fprintf(&b, "  energy savings:      %.1f%%\n", 100*m.EnergySavings)
	fmt.Fprintf(&b, "  area:                %d equivalent gates\n", m.AreaGates)
	return b.String()
}

// RenderSweepHeader renders the one-line sweep banner for mode
// ("devices" or "clocks") under opts.
func RenderSweepHeader(mode string, opts Options) string {
	switch mode {
	case "devices":
		return fmt.Sprintf("area sweep (%s @ %.0f MHz, %s):\n", opts.Algorithm, opts.Platform.CPUMHz, "Virtex-II catalog")
	case "clocks":
		return fmt.Sprintf("clock sweep (%s, %s):\n", opts.Algorithm, opts.Platform.Device.Name)
	}
	return ""
}

// RenderSweepLine renders one priced sweep point.
func RenderSweepLine(label string, rep *Report) string {
	m := rep.Metrics
	return fmt.Sprintf("  %-10s speedup %6.2fx  kernel %6.2fx  energy %5.1f%%  area %7d gates  selected %d\n",
		label, m.AppSpeedup, m.KernelSpeedup, 100*m.EnergySavings, m.AreaGates, len(rep.SelectedRegions()))
}

// SweepPoint is one priced point of a sweep: its row label, the rendered
// row, and the report it came from.
type SweepPoint struct {
	Label string
	Text  string
	Rep   *Report
}

// DeviceSweepPoints prices the analysis across the Virtex-II catalog at
// the analysis clock, one point per device.
func DeviceSweepPoints(a *Analysis, opts Options, sc *obs.Scope) []SweepPoint {
	pts := make([]SweepPoint, 0, len(fpga.Catalog))
	for _, dev := range fpga.Catalog {
		rep := EvaluateScoped(a, platform.MIPS(opts.Platform.CPUMHz, dev), 0, opts.Algorithm, sc)
		pts = append(pts, SweepPoint{Label: dev.Name, Text: RenderSweepLine(dev.Name, rep), Rep: rep})
	}
	return pts
}

// ClockSweepPoints prices the analysis at each CPU clock on the
// analysis device, one point per clock.
func ClockSweepPoints(a *Analysis, opts Options, clocks []float64, sc *obs.Scope) []SweepPoint {
	pts := make([]SweepPoint, 0, len(clocks))
	for _, mhz := range clocks {
		label := fmt.Sprintf("%.0fMHz", mhz)
		rep := EvaluateScoped(a, platform.MIPS(mhz, opts.Platform.Device), 0, opts.Algorithm, sc)
		pts = append(pts, SweepPoint{Label: label, Text: RenderSweepLine(label, rep), Rep: rep})
	}
	return pts
}

// renderKeys orders a string-keyed map for deterministic rendering.
func renderKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
