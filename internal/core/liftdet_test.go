package core

import (
	"testing"

	"binpart/internal/bench"
	"binpart/internal/decompile"
	"binpart/internal/dopt"
)

// TestLiftOutlineDeterminism pins bit-identical lift output across
// repeated runs on one image, including the virtual register numbers
// that appear in the recovered-structure outlines. Stack-slot promotion
// once assigned fresh locations in map-iteration order, so a cached
// LiftResult could disagree with a fresh lift on induction variable
// names — caught by the Analyze/monolithic differential test and fixed
// by promoting slots in slot order.
func TestLiftOutlineDeterminism(t *testing.T) {
	b, _ := bench.ByName("engine")
	img, err := b.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	var first map[string]string
	for i := 0; i < 30; i++ {
		lr, err := computeLift(img, decompile.Options{}, dopt.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = lr.Outlines
			continue
		}
		for name, o := range lr.Outlines {
			if o != first[name] {
				t.Fatalf("run %d: outline %s differs:\n--- first ---\n%s--- now ---\n%s", i, name, first[name], o)
			}
		}
	}
}
