package core

import (
	"fmt"
	"sort"
	"strings"

	"binpart/internal/binimg"
	"binpart/internal/cache"
	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/obs"
	"binpart/internal/obs/hist"
	"binpart/internal/sim"
	"binpart/internal/synth"
)

// Caches bundles the content-addressed stage caches of the flow. All
// fields are optional (nil disables that stage's cache) and a nil *Caches
// disables caching entirely, so RunWith(img, opts, nil) ≡ Run(img, opts).
//
// Cached values are shared: a hit returns the same pointers a previous
// run produced. Every consumer in this package treats them as immutable —
// profiles are only read, lifted functions are only traversed, designs
// are only costed and emitted — which is what makes sharing across a
// concurrent experiment sweep safe (and what `go test -race` checks).
type Caches struct {
	// Compile memoizes MicroC compilation: source text + mcc options.
	Compile *cache.Cache[*binimg.Image]
	// Sim memoizes profiling simulation: image bytes + sim config.
	Sim *cache.Cache[sim.Result]
	// Lift memoizes decompilation plus the decompiler-optimization
	// pipeline: image bytes + decompile options + dopt config.
	Lift *cache.Cache[*LiftResult]
	// Synth memoizes behavioral synthesis: the region's CDFG signature
	// plus the synthesis configuration.
	Synth *cache.Cache[*synth.Design]
	// Analysis memoizes the assembled platform-independent Analysis:
	// image bytes + every option the analysis stages read (the platform,
	// area budget, and algorithm are evaluate-time inputs and excluded).
	Analysis *cache.Cache[*Analysis]
}

// Default per-stage capacities. The suite has 20 benchmarks x 4 opt
// levels; synthesis sees a few candidate regions per binary.
const (
	defaultCompileEntries  = 256
	defaultSimEntries      = 256
	defaultLiftEntries     = 256
	defaultSynthEntries    = 2048
	defaultAnalysisEntries = 256
)

// NewCaches builds an in-memory cache set with default capacities.
func NewCaches() *Caches {
	return &Caches{
		Compile:  cache.New[*binimg.Image](defaultCompileEntries),
		Sim:      cache.New[sim.Result](defaultSimEntries),
		Lift:     cache.New[*LiftResult](defaultLiftEntries),
		Synth:    cache.New[*synth.Design](defaultSynthEntries),
		Analysis: cache.New[*Analysis](defaultAnalysisEntries),
	}
}

// compileCodec round-trips compiled images through the SBF byte format.
func compileCodec() cache.Codec[*binimg.Image] {
	return cache.Codec[*binimg.Image]{
		Marshal:   func(im *binimg.Image) ([]byte, error) { return im.Marshal() },
		Unmarshal: binimg.Unmarshal,
	}
}

// WithDisk attaches an unbounded on-disk tier under dir to the stages
// whose values have a byte format: compilation (SBF images) and
// simulation (gob results). The Analysis stage stays off disk so a warm
// single-process run keeps candidate Designs (VHDL emission) intact.
func (c *Caches) WithDisk(dir string) (*Caches, error) {
	return c.WithDiskMax(dir, 0)
}

// WithDiskMax is WithDisk with a byte budget: when the directory's blobs
// exceed maxBytes, the store evicts oldest-mtime-first in a background
// sweep (0 means unbounded). This is the -cachedir-max flag.
func (c *Caches) WithDiskMax(dir string, maxBytes int64) (*Caches, error) {
	store, err := cache.OpenDiskMax(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	c.Compile.WithTiers(compileCodec(), store)
	c.Sim.WithTiers(SimCodec(), store)
	return c, nil
}

// WithRemote attaches a shared network cache tier (see cache.RemoteTier)
// to the serializable stages: compilation, simulation, and — when
// shareAnalysis is set — the assembled Analysis. Sharing the Analysis is
// what lets distributed workers converge on one cache (an Analysis hit
// skips sim+lift+synth entirely), but a remotely fetched Analysis has no
// candidate Designs, so front-ends that emit VHDL must pass
// shareAnalysis=false.
func (c *Caches) WithRemote(rt *cache.RemoteTier, shareAnalysis bool) *Caches {
	c.Compile.WithTiers(compileCodec(), rt)
	c.Sim.WithTiers(SimCodec(), rt)
	if shareAnalysis {
		c.Analysis.WithTiers(AnalysisCodec(), rt)
	}
	return c
}

// cacheNames is the rendering order of the stage caches; StatsMap carries
// the same names as keys, so manifests and the stats table agree.
var cacheNames = []string{"compile", "sim", "lift", "synth", "analysis"}

// StatsMap snapshots every stage cache's counters, keyed by stage name.
// This is the accounting surface shared by the -stats table and the run
// manifest: both render the same snapshot type, so they reconcile exactly.
func (c *Caches) StatsMap() map[string]cache.Stats {
	if c == nil {
		return nil
	}
	return map[string]cache.Stats{
		"compile":  c.Compile.Stats(),
		"sim":      c.Sim.Stats(),
		"lift":     c.Lift.Stats(),
		"synth":    c.Synth.Stats(),
		"analysis": c.Analysis.Stats(),
	}
}

// TierLatencyMap snapshots every stage cache's per-tier read-latency
// histograms, keyed by stage name then tier name. Stages with no backing
// tiers are omitted, so a memory-only run contributes nothing.
func (c *Caches) TierLatencyMap() map[string]map[string]hist.Snapshot {
	if c == nil {
		return nil
	}
	out := map[string]map[string]hist.Snapshot{}
	for name, lats := range map[string]map[string]hist.Snapshot{
		"compile":  c.Compile.TierLatencies(),
		"sim":      c.Sim.TierLatencies(),
		"lift":     c.Lift.TierLatencies(),
		"synth":    c.Synth.TierLatencies(),
		"analysis": c.Analysis.TierLatencies(),
	} {
		if len(lats) > 0 {
			out[name] = lats
		}
	}
	return out
}

// StatsString formats per-stage hit/miss/eviction counters.
func (c *Caches) StatsString() string {
	if c == nil {
		return "cache: disabled\n"
	}
	stats := c.StatsMap()
	var b strings.Builder
	b.WriteString("cache  stage      hits   miss  disk  remote  rwait  wait  corrupt  evict  entries\n")
	for _, name := range cacheNames {
		s := stats[name]
		fmt.Fprintf(&b, "cache  %-8s %6d %6d %5d %7d %6d %5d %7d %6d %8d\n",
			name, s.Hits, s.Misses, s.DiskHits, s.RemoteHits, s.RemoteWaits, s.Waits, s.Corrupt, s.Evictions, s.Entries)
	}
	return b.String()
}

// ImageKey content-addresses a binary image: every field the simulator,
// decompiler, and synthesizer can observe. The hash is memoized on the
// image (see binimg.Image.Key), so repeated stage-cache lookups on one
// image don't rehash its text section.
func ImageKey(img *binimg.Image) cache.Key {
	return img.Key()
}

func hashSimConfig(h *cache.Hasher, cfg sim.Config) {
	h.Uint32(cfg.StackTop).Uint64(cfg.MaxSteps).Bool(cfg.Profile)
	h.Int(int64(cfg.Engine))
	cm := cfg.Cycles
	h.Uint64(cm.ALU).Uint64(cm.Load).Uint64(cm.Store)
	h.Uint64(cm.BranchTaken).Uint64(cm.BranchNot).Uint64(cm.Jump)
	h.Uint64(cm.Mult).Uint64(cm.Div)
}

func hashDoptConfig(h *cache.Hasher, c dopt.Config) {
	h.Bool(c.NoStackRemoval).Bool(c.NoReroll).Bool(c.NoPromote)
	h.Bool(c.NoStrengthRed).Bool(c.NoWidthReduce)
}

func hashSynthOptions(h *cache.Hasher, o synth.Options) {
	h.Int(int64(o.Resources.MemPorts)).Int(int64(o.Resources.Multipliers))
	h.Int(int64(o.Resources.Dividers)).Int(int64(o.Resources.MemBanks))
	h.Float64(o.ClockNs).Bool(o.Pipeline).Bool(o.MoveArrays)
}

func simKey(imgKey cache.Key, cfg sim.Config) cache.Key {
	h := cache.NewHasher("sim")
	h.Bytes(imgKey[:])
	hashSimConfig(h, cfg)
	return h.Sum()
}

// SimKey exposes the simulation stage's cache key so batch front-ends
// (the experiment corpus harness) can pre-warm Caches.Sim with results
// produced by sim.RunBatch.
func SimKey(imgKey cache.Key, cfg sim.Config) cache.Key {
	return simKey(imgKey, cfg)
}

func liftKey(imgKey cache.Key, dec decompile.Options, cfg dopt.Config) cache.Key {
	h := cache.NewHasher("lift")
	h.Bytes(imgKey[:]).Bool(dec.RecoverJumpTables)
	hashDoptConfig(h, cfg)
	return h.Sum()
}

// funcSignature content-addresses a lifted function's CDFG: every block's
// instructions (all operand, width, and control fields) plus the CFG edge
// structure. Two functions with equal signatures schedule, allocate, and
// cost identically.
func funcSignature(f *ir.Func) cache.Key {
	h := cache.NewHasher("cdfg")
	h.String(f.Name).Uint32(f.Entry).Int(int64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.Int(int64(b.Index)).Uint32(b.Start).Int(int64(len(b.Instrs)))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			h.Int(int64(in.Op)).Int(int64(in.Dst))
			h.Bool(in.A.IsConst).Int(int64(in.A.Loc)).Int(int64(in.A.Val))
			h.Bool(in.B.IsConst).Int(int64(in.B.Loc)).Int(int64(in.B.Val))
			h.Int(int64(in.Off)).Int(int64(in.Width)).Bool(in.Signed)
			h.Int(int64(in.Cond)).Uint32(in.Target).Uint32(in.Addr)
			h.Int(int64(in.WidthBits))
			h.Int(int64(len(in.Table)))
			for _, t := range in.Table {
				h.Uint32(t)
			}
		}
		h.Int(int64(len(b.Succs)))
		for _, s := range b.Succs {
			h.Int(int64(s.Index))
		}
	}
	return h.Sum()
}

// synthCtx threads the synthesis cache and the observability scope
// through candidate construction. The zero/nil context synthesizes
// directly and records nothing.
type synthCtx struct {
	caches *Caches
	imgKey cache.Key
	// sig is the enclosing function's CDFG signature, computed once per
	// function while building its candidates.
	sig cache.Key
	// obs attributes per-region synth spans to the current sweep point.
	obs *obs.Scope
}

// synthesize is synth.Synthesize behind the content-addressed cache. The
// key covers the function CDFG, the region's block subset, the image key
// (alias analysis and block-RAM sizing read the symbol table), and the
// synthesis options; the platform's CPU clock and FPGA device are
// deliberately excluded — synthesis is platform-independent, which is
// what makes the clock and area sweeps nearly free on a warm cache.
func (sc *synthCtx) synthesize(r synth.Region, img *binimg.Image, opts synth.Options) (*synth.Design, error) {
	if sc == nil || sc.caches == nil || sc.caches.Synth == nil {
		var scope *obs.Scope
		if sc != nil {
			scope = sc.obs
		}
		sp := scope.Start(obs.StageSynth)
		d, err := synth.Synthesize(r, img, opts)
		sp.End()
		return d, err
	}
	h := cache.NewHasher("synth")
	h.Bytes(sc.imgKey[:]).Bytes(sc.sig[:]).String(r.Name)
	if r.Blocks == nil {
		h.Int(-1)
	} else {
		idx := make([]int, 0, len(r.Blocks))
		for i := range r.Blocks {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		h.Int(int64(len(idx)))
		for _, i := range idx {
			h.Int(int64(i))
		}
	}
	hashSynthOptions(h, opts)
	sp := sc.obs.Start(obs.StageSynth)
	d, out, err := sc.caches.Synth.GetOrComputeOutcome(h.Sum(), func() (*synth.Design, error) {
		return synth.Synthesize(r, img, opts)
	})
	sp.SetOutcome(out)
	sp.End()
	return d, err
}

// LiftResult is the cached product of decompilation plus the decompiler
// optimization pipeline. Everything here is shared across runs on a cache
// hit and must be treated as read-only.
type LiftResult struct {
	Dec *decompile.Result
	// Reports holds the per-function decompiler-optimization logs.
	Reports map[string]dopt.Report
	// Factors holds per-function reroll factors (block index -> factor).
	Factors map[string]map[int]int
	// Outlines renders each function's recovered control structure.
	Outlines map[string]string
	// Recovery aggregates recovery statistics; FailReasons is shared.
	Recovery RecoveryStats
}

// computeLift runs decompilation, the dopt pipeline, and structure
// recovery — steps 2 and 3 of the flow — producing the cacheable product.
func computeLift(img *binimg.Image, decOpts decompile.Options, cfg dopt.Config) (*LiftResult, error) {
	dec, err := decompile.DecompileWith(img, decOpts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lr := &LiftResult{
		Dec:      dec,
		Reports:  map[string]dopt.Report{},
		Factors:  map[string]map[int]int{},
		Outlines: map[string]string{},
	}
	lr.Recovery.FailReasons = map[string]string{}
	for name, ferr := range dec.Failed {
		lr.Recovery.FuncsFailed++
		lr.Recovery.FailReasons[name] = ferr.Error()
	}
	for _, f := range dec.Funcs {
		lr.Recovery.FuncsRecovered++
		dr := dopt.OptimizeWith(f, cfg)
		lr.Reports[f.Name] = dr
		lr.Factors[f.Name] = dr.Reroll.Factors
		lr.Recovery.RerolledLoops += len(dr.Reroll.Rerolled)
		lr.Recovery.PromotedMultiplies += dr.Promote.Multiplies
		lr.Recovery.StackSlotsPromoted += dr.Stack.SlotsPromoted
		lr.Recovery.OpsNarrowed += dr.Width.OpsNarrowed

		st := ir.Recover(f)
		sig := fmt.Sprintf("  signature: %s(%d args)", f.Name, dopt.InferParams(f))
		if dopt.InferReturns(f) {
			sig += " -> value"
		}
		lr.Outlines[f.Name] = st.Outline(f) + sig + "\n"
		for _, l := range st.Loops {
			lr.Recovery.LoopsFound++
			if l.Shape != ir.LoopOther {
				lr.Recovery.LoopsShaped++
			}
		}
		for _, i := range st.Ifs {
			lr.Recovery.IfsFound++
			if i.Shape != ir.IfUnstructured {
				lr.Recovery.IfsShaped++
			}
		}
	}
	return lr, nil
}

func copyStringMap[V any](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
