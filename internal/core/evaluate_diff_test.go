package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"binpart/internal/bench"
	"binpart/internal/binimg"
	"binpart/internal/decompile"
	"binpart/internal/fpga"
	"binpart/internal/ir"
	"binpart/internal/partition"
	"binpart/internal/platform"
	"binpart/internal/sim"
)

// runMonolithic is the pre-split RunWith flow, preserved as a reference
// implementation: every stage runs inline in one pass, candidates are
// priced for the platform the moment they are built (not at evaluate
// time), and the report's regions are assembled directly. The split
// Analyze+Evaluate path must be indistinguishable from it on every
// observable output.
func runMonolithic(img *binimg.Image, opts Options) (*Report, error) {
	if opts.Platform.CPUMHz == 0 {
		opts.Platform = platform.MIPS200
	}
	if opts.AreaBudgetGates == 0 {
		opts.AreaBudgetGates = fpga.Area{
			Slices: opts.Platform.Device.Slices,
			Mult18: opts.Platform.Device.Mult18,
		}.GateEquivalent()
	}
	opts.Sim.Profile = true
	rep := &Report{Options: opts}

	// 1. Profile the all-software execution.
	res, err := sim.Execute(img, opts.Sim)
	if err != nil {
		return nil, fmt.Errorf("core: software simulation: %w", err)
	}
	rep.ExitCode = res.ExitCode
	rep.SWCycles = res.Cycles
	cycAt := sim.AttributeCycles(img, res.Profile, opts.Sim.Cycles)

	// 2+3. Decompile and run the decompiler optimization pipeline.
	lr, err := computeLift(img, decompile.Options{RecoverJumpTables: opts.RecoverJumpTables}, opts.Dopt)
	if err != nil {
		return nil, err
	}
	rep.Recovery = lr.Recovery
	rep.Recovery.FailReasons = copyStringMap(lr.Recovery.FailReasons)
	rep.DoptReports = copyStringMap(lr.Reports)
	rep.Outlines = copyStringMap(lr.Outlines)

	sctx := &synthCtx{}

	// 4. Build candidates, priced immediately for the platform.
	var cands []*partition.Candidate
	addCand := func(rc *RegionCandidate) {
		rr := &RegionReport{
			Name:        rc.Name,
			Func:        rc.Func,
			SWCycles:    rc.SWCycles,
			HWCycles:    rc.HWCycles,
			HWClockNs:   rc.HWClockNs,
			Invocations: rc.Invocations,
			AreaGates:   rc.AreaGates,
			Footprint:   rc.Footprint,
			Design:      rc.Design,
		}
		rep.Regions = append(rep.Regions, rr)
		cands = append(cands, &partition.Candidate{
			Name:       rr.Name,
			SWTimeNs:   float64(rr.SWCycles) / opts.Platform.CPUMHz * 1000,
			HWTimeNs:   rr.HWCycles*rr.HWClockNs + float64(rr.Invocations*opts.Platform.CommCPUCycles)/opts.Platform.CPUMHz*1000,
			AreaGates:  rr.AreaGates,
			Footprint:  rr.Footprint,
			SizeInstrs: rc.SizeInstrs,
			IsLoop:     true,
			Payload:    rr,
		})
	}
	for _, f := range lr.Dec.Funcs {
		if f.Name == "_start" {
			continue
		}
		extents := blockExtents(f, img)
		if opts.Granularity == GranFunctions {
			rc, err := buildFuncCandidate(f, img, extents, res.Profile, cycAt, lr.Factors[f.Name], opts, sctx)
			if err == nil && rc != nil {
				addCand(rc)
			}
			continue
		}
		for _, l := range ir.FindLoops(f) {
			if l.Depth != 1 || !synthesizable(l) {
				continue
			}
			rc, err := buildCandidate(f, l, img, extents, res.Profile, cycAt, lr.Factors[f.Name], opts, sctx)
			if err != nil || rc == nil {
				continue
			}
			addCand(rc)
		}
	}
	sort.Slice(rep.Regions, func(i, j int) bool { return rep.Regions[i].SWCycles > rep.Regions[j].SWCycles })

	// 5. Partition.
	start := time.Now()
	var pres *partition.Result
	switch opts.Algorithm {
	case AlgGreedy:
		pres = partition.GreedyKnapsack(cands, opts.AreaBudgetGates)
	case AlgGCLP:
		pres = partition.GCLP(cands, opts.AreaBudgetGates)
	default:
		pres = partition.Partition(cands, opts.AreaBudgetGates, opts.Partition)
	}
	rep.PartitionTime = time.Since(start)

	// 6. Evaluate on the platform.
	var regions []platform.Region
	for _, c := range pres.Selected {
		rr := c.Payload.(*RegionReport)
		rr.Selected = true
		rr.Step = pres.Step[c.Name]
		regions = append(regions, platform.Region{
			Name:        rr.Name,
			SWCycles:    rr.SWCycles,
			HWCycles:    rr.HWCycles,
			HWClockNs:   rr.HWClockNs,
			Invocations: rr.Invocations,
			AreaGates:   rr.AreaGates,
			ActiveGates: rr.AreaGates,
		})
	}
	rep.Metrics = opts.Platform.Evaluate(res.Cycles, regions)
	return rep, nil
}

// fullFingerprint renders every observable field of a Report except the
// measured PartitionTime: options, metrics, recovery, every region with
// its footprint, the per-function optimization logs, and the recovered
// structure outlines.
func fullFingerprint(rep *Report) string {
	s := fmt.Sprintf("opts=%+v\n", rep.Options)
	s += runFingerprint(rep)
	for _, r := range rep.Regions {
		s += fmt.Sprintf("footprint %s func=%s fp=%v\n", r.Name, r.Func, r.Footprint)
	}
	names := make([]string, 0, len(rep.Outlines))
	for name := range rep.Outlines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s += fmt.Sprintf("outline %s:\n%s", name, rep.Outlines[name])
		s += fmt.Sprintf("dopt %s: %+v\n", name, rep.DoptReports[name])
	}
	return s
}

// TestEvaluateMatchesMonolithic is the differential guarantee behind the
// analyze-once/evaluate-many split: across every benchmark, every
// optimization level, and a sweep of area budgets, clock rates, and all
// three partitioners, Analyze+Evaluate must produce Reports identical to
// the pre-split single-pass flow on every field except the wall-clock
// PartitionTime. One Analysis per (benchmark, level) serves all sweep
// points, exactly as the rewritten experiment sweeps use it.
func TestEvaluateMatchesMonolithic(t *testing.T) {
	type point struct {
		name   string
		mhz    float64
		device fpga.Device
		budget int
		alg    Algorithm
	}
	dev := platform.MIPS200.Device
	points := []point{
		// Area sweep: full device, a mid budget, a tight budget.
		{name: "area-full", mhz: 200, device: dev, budget: 0, alg: AlgNinetyTen},
		{name: "area-mid", mhz: 200, device: dev, budget: 20000, alg: AlgNinetyTen},
		{name: "area-tight", mhz: 200, device: dev, budget: 6000, alg: AlgNinetyTen},
		// Clock sweep.
		{name: "clock-40", mhz: 40, device: dev, budget: 0, alg: AlgNinetyTen},
		{name: "clock-400", mhz: 400, device: dev, budget: 0, alg: AlgNinetyTen},
		// All three partitioners.
		{name: "alg-90-10", mhz: 200, device: dev, budget: 0, alg: AlgNinetyTen},
		{name: "alg-greedy", mhz: 200, device: dev, budget: 0, alg: AlgGreedy},
		{name: "alg-gclp", mhz: 200, device: dev, budget: 0, alg: AlgGCLP},
	}

	for _, b := range bench.All() {
		for lvl := 0; lvl <= 3; lvl++ {
			img, err := b.Compile(lvl)
			if err != nil {
				t.Fatalf("%s -O%d: compile: %v", b.Name, lvl, err)
			}
			a, err := Analyze(img, DefaultOptions())
			if err != nil {
				t.Fatalf("%s -O%d: analyze: %v", b.Name, lvl, err)
			}
			for _, pt := range points {
				opts := DefaultOptions()
				opts.Platform = platform.MIPS(pt.mhz, pt.device)
				opts.AreaBudgetGates = pt.budget
				opts.Algorithm = pt.alg

				want, err := runMonolithic(img, opts)
				if err != nil {
					t.Fatalf("%s -O%d %s: monolithic: %v", b.Name, lvl, pt.name, err)
				}
				got := Evaluate(a, opts.Platform, opts.AreaBudgetGates, opts.Algorithm)
				if gf, wf := fullFingerprint(got), fullFingerprint(want); gf != wf {
					t.Fatalf("%s -O%d %s: split flow differs from monolithic:\n--- monolithic ---\n%s--- split ---\n%s",
						b.Name, lvl, pt.name, wf, gf)
				}
			}
		}
	}
}

// TestRunWithMatchesMonolithic checks the composed RunWith entry point
// (cached and uncached) against the monolithic reference on the default
// configuration, so the thin composition itself — default handling
// included — is covered, not just the Evaluate layer.
func TestRunWithMatchesMonolithic(t *testing.T) {
	caches := NewCaches()
	for _, name := range []string{"crc", "fir", "matmul"} {
		b, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		img, err := b.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := runMonolithic(img, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ { // second run is fully warm
			got, err := RunWith(img, DefaultOptions(), caches)
			if err != nil {
				t.Fatal(err)
			}
			if gf, wf := fullFingerprint(got), fullFingerprint(want); gf != wf {
				t.Fatalf("%s run %d: RunWith differs from monolithic:\n--- monolithic ---\n%s--- RunWith ---\n%s",
					name, run, wf, gf)
			}
		}
	}
}
