package core

import (
	"fmt"
	"sort"
	"time"

	"binpart/internal/binimg"
	"binpart/internal/cache"
	"binpart/internal/decompile"
	"binpart/internal/dopt"
	"binpart/internal/fpga"
	"binpart/internal/ir"
	"binpart/internal/obs"
	"binpart/internal/partition"
	"binpart/internal/platform"
	"binpart/internal/sim"
	"binpart/internal/synth"
)

// RegionCandidate is one hardware candidate as the analysis stages see
// it: profile cycles, synthesized design cost, and memory footprint.
// Every field is platform-independent — the simulator's cycle model, the
// decompiler, and the behavioral synthesizer never observe the CPU clock
// or the FPGA device — which is what lets one Analysis serve every sweep
// point. The platform-dependent times (partition.Candidate.SWTimeNs /
// HWTimeNs) are derived from these fields at evaluate time.
type RegionCandidate struct {
	Name        string
	Func        string
	SWCycles    uint64
	HWCycles    float64
	HWClockNs   float64
	Invocations uint64
	AreaGates   int
	Footprint   []string
	SizeInstrs  int
	Design      *synth.Design
}

// Analysis is the immutable product of the flow's heavy stages —
// profiling simulation, decompilation + decompiler optimization, and
// behavioral synthesis of every candidate region — for one binary under
// one analysis configuration. It is platform-independent: pricing the
// candidates for a platform, partitioning, and evaluating the result is
// Evaluate's job and costs microseconds, so sweeps over area budgets,
// clock rates, or partitioners build the Analysis once and fan the sweep
// points over Evaluate.
//
// All reference-typed fields (maps, designs, footprints) are shared with
// the stage caches and with every Report derived from this Analysis, and
// must be treated as read-only.
type Analysis struct {
	// opts records the options the analysis ran under (with Sim.Profile
	// forced on). Evaluate substitutes the platform-dependent fields —
	// Platform, AreaBudgetGates, Algorithm — per call.
	opts     Options
	ExitCode int32
	// SWCycles is the all-software cycle count from simulation.
	SWCycles uint64
	Recovery RecoveryStats
	// DoptReports holds the per-function decompiler-optimization logs.
	DoptReports map[string]dopt.Report
	// Outlines renders each recovered function's control structure.
	Outlines map[string]string
	// Candidates holds every synthesizable region in discovery order.
	Candidates []*RegionCandidate
}

// Analyze runs the platform-independent stages of the flow — simulate,
// decompile + optimize, and synthesize every candidate — without caching.
func Analyze(img *binimg.Image, opts Options) (*Analysis, error) {
	return AnalyzeWith(img, opts, nil)
}

// AnalyzeWith is Analyze through a cache set: the simulation, lift, and
// synthesis stages are memoized individually, and the assembled Analysis
// itself is memoized under a key covering the image and every option
// that can influence it (the platform, area budget, and algorithm are
// excluded — they are evaluate-time inputs).
func AnalyzeWith(img *binimg.Image, opts Options, caches *Caches) (*Analysis, error) {
	return AnalyzeScoped(img, opts, caches, nil)
}

// AnalyzeScoped is AnalyzeWith under an observability scope: the analyze
// stage and its sub-stages (sim, lift, per-region synth) each record a
// span with their cache outcome. A nil scope records nothing and adds no
// allocations — the disabled fast path the Stage* benchmark gates hold to
// zero overhead.
func AnalyzeScoped(img *binimg.Image, opts Options, caches *Caches, sc *obs.Scope) (*Analysis, error) {
	opts.Sim.Profile = true
	sp := sc.Start(obs.StageAnalyze)
	var a *Analysis
	var err error
	if caches != nil && caches.Analysis != nil {
		var out cache.Outcome
		a, out, err = caches.Analysis.GetOrComputeOutcome(analysisKey(img.Key(), opts), func() (*Analysis, error) {
			return computeAnalysis(img, opts, caches, sc)
		})
		sp.SetOutcome(out)
	} else {
		a, err = computeAnalysis(img, opts, caches, sc)
	}
	if a != nil {
		sp.SetRegions(uint64(len(a.Candidates)))
	}
	sp.End()
	return a, err
}

// analysisKey covers the image plus every Options field the analysis
// stages read. Partition options are evaluate-time inputs, but they are
// recorded in the artifact's options (Evaluate reads them), so they
// separate cache entries too.
func analysisKey(imgKey cache.Key, opts Options) cache.Key {
	h := cache.NewHasher("analysis")
	h.Bytes(imgKey[:])
	hashSimConfig(h, opts.Sim)
	h.Bool(opts.RecoverJumpTables)
	hashDoptConfig(h, opts.Dopt)
	hashSynthOptions(h, opts.Synth)
	h.Int(int64(opts.Granularity))
	po := opts.Partition
	h.Float64(po.CoverageTarget).Int(int64(po.MaxLoopInstrs))
	h.Bool(po.SkipAliasStep).Bool(po.SkipFillStep)
	return h.Sum()
}

// computeAnalysis is stages 1-4 of the flow (see RunWith's doc): profile,
// lift, and candidate construction, stopping short of anything that reads
// the platform.
func computeAnalysis(img *binimg.Image, opts Options, caches *Caches, sc *obs.Scope) (*Analysis, error) {
	a := &Analysis{opts: opts}

	var imgKey cache.Key
	if caches != nil {
		imgKey = img.Key()
	}

	// 1. Profile the all-software execution.
	simSp := sc.Start(obs.StageSim)
	simSp.SetEngine(opts.Sim.Engine.String())
	res, simOut, err := simulate(img, opts, imgKey, caches)
	simSp.SetOutcome(simOut)
	simSp.SetInstrs(res.Steps)
	simSp.End()
	if err != nil {
		return nil, fmt.Errorf("core: software simulation: %w", err)
	}
	a.ExitCode = res.ExitCode
	a.SWCycles = res.Cycles
	cycAt := sim.AttributeCycles(img, res.Profile, opts.Sim.Cycles)

	// 2+3. Decompile and run the decompiler optimization pipeline.
	decOpts := decompile.Options{RecoverJumpTables: opts.RecoverJumpTables}
	var lr *LiftResult
	liftSp := sc.Start(obs.StageLift)
	if caches != nil && caches.Lift != nil {
		var out cache.Outcome
		lr, out, err = caches.Lift.GetOrComputeOutcome(liftKey(imgKey, decOpts, opts.Dopt), func() (*LiftResult, error) {
			return computeLift(img, decOpts, opts.Dopt)
		})
		liftSp.SetOutcome(out)
	} else {
		lr, err = computeLift(img, decOpts, opts.Dopt)
	}
	if lr != nil {
		liftSp.SetRegions(uint64(lr.Recovery.FuncsRecovered))
	}
	liftSp.End()
	if err != nil {
		return nil, err
	}
	a.Recovery = lr.Recovery
	a.DoptReports = lr.Reports
	a.Outlines = lr.Outlines

	// 4. Build candidates: outermost loops (default), or whole call-free
	// functions when running at function granularity.
	sctx := &synthCtx{caches: caches, imgKey: imgKey, obs: sc}
	for _, f := range lr.Dec.Funcs {
		if f.Name == "_start" {
			continue
		}
		if caches != nil && caches.Synth != nil {
			sctx.sig = funcSignature(f)
		}
		extents := blockExtents(f, img)
		if opts.Granularity == GranFunctions {
			rc, err := buildFuncCandidate(f, img, extents, res.Profile, cycAt, lr.Factors[f.Name], opts, sctx)
			if err == nil && rc != nil {
				a.Candidates = append(a.Candidates, rc)
			}
			continue
		}
		for _, l := range ir.FindLoops(f) {
			if l.Depth != 1 || !synthesizable(l) {
				continue
			}
			rc, err := buildCandidate(f, l, img, extents, res.Profile, cycAt, lr.Factors[f.Name], opts, sctx)
			if err != nil || rc == nil {
				continue
			}
			a.Candidates = append(a.Candidates, rc)
		}
	}
	return a, nil
}

// Evaluate prices the analysis' candidates for one platform, partitions
// under the area budget (0 selects the platform device's full capacity),
// and evaluates the chosen partition — microseconds per call. Partition
// options come from the analysis' recorded options.
func Evaluate(a *Analysis, p platform.Platform, areaBudgetGates int, alg Algorithm) *Report {
	return EvaluateScoped(a, p, areaBudgetGates, alg, nil)
}

// EvaluateScoped is Evaluate under an observability scope: the evaluate
// stage records one span per call with the number of regions partitioned
// to hardware. A nil scope records nothing.
func EvaluateScoped(a *Analysis, p platform.Platform, areaBudgetGates int, alg Algorithm, sc *obs.Scope) *Report {
	opts := a.opts
	opts.Platform = p
	opts.AreaBudgetGates = areaBudgetGates
	opts.Algorithm = alg
	return evaluateOpts(a, opts, sc)
}

// evaluateOpts is the platform-dependent tail of the flow: candidate
// pricing, partitioning, and platform evaluation. The Report's top-level
// maps and regions are freshly built per call, so concurrent evaluations
// of one Analysis are safe and a Report's Selected/Step marks are its
// own.
func evaluateOpts(a *Analysis, opts Options, sc *obs.Scope) *Report {
	sp := sc.Start(obs.StageEvaluate)
	if opts.Platform.CPUMHz == 0 {
		opts.Platform = platform.MIPS200
	}
	if opts.AreaBudgetGates == 0 {
		opts.AreaBudgetGates = fpga.Area{
			Slices: opts.Platform.Device.Slices,
			Mult18: opts.Platform.Device.Mult18,
		}.GateEquivalent()
	}
	opts.Sim.Profile = true
	rep := &Report{
		Options:  opts,
		ExitCode: a.ExitCode,
		SWCycles: a.SWCycles,
		Recovery: a.Recovery,
	}
	rep.Recovery.FailReasons = copyStringMap(a.Recovery.FailReasons)
	rep.DoptReports = copyStringMap(a.DoptReports)
	rep.Outlines = copyStringMap(a.Outlines)

	// Price the candidates: software time from the CPU clock, hardware
	// time from the synthesized clock plus the per-invocation
	// communication overhead on the CPU side.
	var cands []*partition.Candidate
	for _, rc := range a.Candidates {
		rr := &RegionReport{
			Name:        rc.Name,
			Func:        rc.Func,
			SWCycles:    rc.SWCycles,
			HWCycles:    rc.HWCycles,
			HWClockNs:   rc.HWClockNs,
			Invocations: rc.Invocations,
			AreaGates:   rc.AreaGates,
			Footprint:   rc.Footprint,
			Design:      rc.Design,
		}
		rep.Regions = append(rep.Regions, rr)
		cands = append(cands, &partition.Candidate{
			Name:       rc.Name,
			SWTimeNs:   float64(rc.SWCycles) / opts.Platform.CPUMHz * 1000,
			HWTimeNs:   rc.HWCycles*rc.HWClockNs + float64(rc.Invocations*opts.Platform.CommCPUCycles)/opts.Platform.CPUMHz*1000,
			AreaGates:  rc.AreaGates,
			Footprint:  rc.Footprint,
			SizeInstrs: rc.SizeInstrs,
			IsLoop:     true,
			Payload:    rr,
		})
	}
	sort.Slice(rep.Regions, func(i, j int) bool { return rep.Regions[i].SWCycles > rep.Regions[j].SWCycles })

	// 5. Partition (timed: the paper's heuristic targets dynamic use).
	start := time.Now()
	var pres *partition.Result
	switch opts.Algorithm {
	case AlgGreedy:
		pres = partition.GreedyKnapsack(cands, opts.AreaBudgetGates)
	case AlgGCLP:
		pres = partition.GCLP(cands, opts.AreaBudgetGates)
	default:
		pres = partition.Partition(cands, opts.AreaBudgetGates, opts.Partition)
	}
	rep.PartitionTime = time.Since(start)

	// 6. Evaluate on the platform.
	var regions []platform.Region
	for _, c := range pres.Selected {
		rr := c.Payload.(*RegionReport)
		rr.Selected = true
		rr.Step = pres.Step[c.Name]
		regions = append(regions, platform.Region{
			Name:        rr.Name,
			SWCycles:    rr.SWCycles,
			HWCycles:    rr.HWCycles,
			HWClockNs:   rr.HWClockNs,
			Invocations: rr.Invocations,
			AreaGates:   rr.AreaGates,
			ActiveGates: rr.AreaGates,
		})
	}
	rep.Metrics = opts.Platform.Evaluate(a.SWCycles, regions)
	sp.SetSelected(uint64(len(pres.Selected)))
	sp.End()
	return rep
}

// simulate is stage 1 behind its cache, reporting how the cache served it
// (OutcomeNone when uncached).
func simulate(img *binimg.Image, opts Options, imgKey cache.Key, caches *Caches) (sim.Result, cache.Outcome, error) {
	if caches != nil && caches.Sim != nil {
		return caches.Sim.GetOrComputeOutcome(simKey(imgKey, opts.Sim), func() (sim.Result, error) {
			return sim.Execute(img, opts.Sim)
		})
	}
	res, err := sim.Execute(img, opts.Sim)
	return res, cache.OutcomeNone, err
}
