// Package core is this repository's primary contribution: the paper's
// decompilation-based binary-level hardware/software partitioning flow,
// assembled from the substrate packages into one pipeline:
//
//	binary ──simulate/profile──► hot spots
//	   │
//	   └─decompile──► CDFG ──decompiler optimizations──► clean CDFG
//	          │                                             │
//	          └── control structure recovery                │
//	                                                        ▼
//	     candidates (loops + times + areas + footprints) ──► partitioner
//	                                                        │
//	                 behavioral synthesis + Virtex-II model ◄┘
//	                                                        │
//	                   platform evaluation (speedup/energy) ▼ + VHDL
//
// The tool is compiler-independent by construction: its only input is an
// SBF binary image, no matter which source language or compiler (or
// optimization level) produced it.
package core

import (
	"time"

	"binpart/internal/alias"
	"binpart/internal/binimg"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/obs"
	"binpart/internal/partition"
	"binpart/internal/platform"
	"binpart/internal/sim"
	"binpart/internal/synth"
	"binpart/internal/vhdl"
)

// Algorithm selects the partitioning heuristic.
type Algorithm int

const (
	AlgNinetyTen Algorithm = iota // the paper's 3-step heuristic
	AlgGreedy                     // Henkel-style gain/area knapsack
	AlgGCLP                       // simplified Kalavade/Lee
)

func (a Algorithm) String() string {
	switch a {
	case AlgNinetyTen:
		return "90-10"
	case AlgGreedy:
		return "greedy"
	case AlgGCLP:
		return "gclp"
	}
	return "unknown"
}

// Granularity selects the regions offered to the partitioner.
type Granularity int

const (
	// GranLoops offers outermost loops (the paper's default flow).
	GranLoops Granularity = iota
	// GranFunctions offers whole call-free functions, supporting the
	// paper's "synthesizing an entire software application, not just
	// kernels" use.
	GranFunctions
)

// Options configures a partitioning run.
type Options struct {
	Platform platform.Platform
	// AreaBudgetGates caps the hardware partition; 0 means the
	// platform device's full logic capacity.
	AreaBudgetGates int
	Partition       partition.Options
	Synth           synth.Options
	Dopt            dopt.Config
	Algorithm       Algorithm
	Granularity     Granularity
	// RecoverJumpTables enables switch-table recovery in the
	// decompiler: register-indirect jumps that follow the jump-table
	// idiom become resolved multi-way branches. On in DefaultOptions,
	// closing the paper's 18/20 recovery gap (all 20 kernels recover);
	// set it false to reproduce the paper's two indirect-jump failures.
	RecoverJumpTables bool
	Sim               sim.Config
}

// DefaultOptions targets the paper's 200 MHz MIPS + XC2V2000 platform.
func DefaultOptions() Options {
	cfg := sim.DefaultConfig()
	cfg.Profile = true
	return Options{
		Platform:          platform.MIPS200,
		Partition:         partition.DefaultOptions(),
		Synth:             synth.DefaultOptions(),
		RecoverJumpTables: true,
		Sim:               cfg,
	}
}

// RegionReport describes one hardware candidate after synthesis.
type RegionReport struct {
	Name        string
	Func        string
	SWCycles    uint64
	HWCycles    float64
	HWClockNs   float64
	Invocations uint64
	AreaGates   int
	Footprint   []string
	Selected    bool
	Step        int // partitioning step that chose it (0 if unselected)
	Design      *synth.Design
}

// RecoveryStats aggregates control-structure recovery over the binary.
type RecoveryStats struct {
	FuncsRecovered int
	FuncsFailed    int
	FailReasons    map[string]string
	LoopsFound     int
	LoopsShaped    int // classified as while/do-while/self
	IfsFound       int
	IfsShaped      int
	// RerolledLoops and PromotedMultiplies summarize the
	// compiler-optimization-undoing passes.
	RerolledLoops      int
	PromotedMultiplies int
	StackSlotsPromoted int
	OpsNarrowed        int
}

// Report is the full outcome of a partitioning run.
type Report struct {
	Options  Options
	ExitCode int32
	// SWCycles is the all-software cycle count from simulation.
	SWCycles uint64
	Regions  []*RegionReport
	Metrics  platform.Metrics
	Recovery RecoveryStats
	// PartitionTime is how long candidate selection took (the paper
	// stresses fast partitioning for dynamic-synthesis integration).
	PartitionTime time.Duration
	// DoptReports holds the per-function decompiler-optimization logs.
	DoptReports map[string]dopt.Report
	// Outlines renders each recovered function's control structure
	// (loops, induction variables, conditionals) as text.
	Outlines map[string]string
}

// SelectedRegions returns the regions chosen for hardware.
func (r *Report) SelectedRegions() []*RegionReport {
	var out []*RegionReport
	for _, reg := range r.Regions {
		if reg.Selected {
			out = append(out, reg)
		}
	}
	return out
}

// VHDL emits the RTL for every selected region, keyed by region name.
func (r *Report) VHDL() (map[string]string, error) {
	out := map[string]string{}
	for _, reg := range r.SelectedRegions() {
		text, err := vhdl.Emit(reg.Design)
		if err != nil {
			return nil, err
		}
		out[reg.Name] = text
	}
	return out, nil
}

// Run executes the full flow on a binary image without caching.
func Run(img *binimg.Image, opts Options) (*Report, error) {
	return RunWith(img, opts, nil)
}

// RunWith executes the full flow on a binary image, memoizing the
// simulation, lift (decompile + dopt), synthesis, and assembled-analysis
// stages through the given cache set. A nil cache set computes everything
// directly. The returned Report is freshly built either way; only stage
// products (profiles, lifted functions, designs) are shared with other
// runs, and those are treated as immutable throughout this package.
//
// RunWith is a thin composition of the two layers of the flow: the
// platform-independent AnalyzeWith (simulate, lift, synthesize — see
// analysis.go) and the platform-dependent evaluate tail (candidate
// pricing, partitioning, platform evaluation). Sweeps that vary only the
// platform, area budget, or algorithm should call AnalyzeWith once and
// Evaluate per point instead.
func RunWith(img *binimg.Image, opts Options, caches *Caches) (*Report, error) {
	return RunScoped(img, opts, caches, nil)
}

// RunScoped is RunWith under an observability scope (see AnalyzeScoped):
// every stage of the flow records a span attributed to the scope's
// benchmark, opt level, and worker. A nil scope records nothing and adds
// no allocations.
func RunScoped(img *binimg.Image, opts Options, caches *Caches, sc *obs.Scope) (*Report, error) {
	a, err := AnalyzeScoped(img, opts, caches, sc)
	if err != nil {
		return nil, err
	}
	return evaluateOpts(a, opts, sc), nil
}

// buildFuncCandidate synthesizes an entire call-free function as one
// hardware region.
func buildFuncCandidate(f *ir.Func, img *binimg.Image,
	extents map[int][2]uint32, prof *sim.Profile, cycAt map[uint32]uint64,
	rerollFactors map[int]int, opts Options, sctx *synthCtx) (*RegionCandidate, error) {

	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Call || (in.Op == ir.IJump && in.Table == nil) {
				return nil, nil // not synthesizable as a whole
			}
		}
	}
	var swCycles uint64
	blockExecs := map[int]uint64{}
	for _, b := range f.Blocks {
		ext := extents[b.Index]
		for pc := ext[0]; pc < ext[1]; pc += 4 {
			swCycles += cycAt[pc]
		}
		execs := prof.InstCount[ext[0]]
		if k, ok := rerollFactors[b.Index]; ok && k > 1 {
			execs *= uint64(k)
		}
		blockExecs[b.Index] = execs
	}
	if swCycles == 0 {
		return nil, nil
	}
	invocations := prof.InstCount[f.Entry]
	if invocations == 0 {
		invocations = 1
	}
	d, err := sctx.synthesize(synth.FuncRegion(f), img, opts.Synth)
	if err != nil {
		return nil, err
	}
	am := alias.Analyze(f, img)
	fp, _ := am.FuncFootprint(f)
	return &RegionCandidate{
		Name:        d.Name,
		Func:        f.Name,
		SWCycles:    swCycles,
		HWCycles:    d.Cycles(blockExecs),
		HWClockNs:   d.ClockNs,
		Invocations: invocations,
		AreaGates:   d.GateEquivalent(),
		Footprint:   fp,
		SizeInstrs:  f.NumInstrs(),
		Design:      d,
	}, nil
}

// synthesizable rejects loops containing calls or unresolved indirect
// jumps.
func synthesizable(l *ir.Loop) bool {
	for _, b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Call || (in.Op == ir.IJump && in.Table == nil) {
				return false
			}
		}
	}
	return true
}

// blockExtents computes each block's original address range [start,end).
func blockExtents(f *ir.Func, img *binimg.Image) map[int][2]uint32 {
	starts := make([]uint32, len(f.Blocks))
	for i, b := range f.Blocks {
		starts[i] = b.Start
	}
	end := img.TextEnd()
	if s, ok := img.SymbolAt(f.Entry); ok && s.Size > 0 {
		end = s.Addr + s.Size
	}
	out := map[int][2]uint32{}
	for i, b := range f.Blocks {
		e := end
		if i+1 < len(f.Blocks) {
			e = starts[i+1]
		}
		out[b.Index] = [2]uint32{b.Start, e}
	}
	return out
}

// buildCandidate synthesizes one loop region and gathers its profile
// numbers.
func buildCandidate(f *ir.Func, l *ir.Loop, img *binimg.Image,
	extents map[int][2]uint32, prof *sim.Profile, cycAt map[uint32]uint64,
	rerollFactors map[int]int, opts Options, sctx *synthCtx) (*RegionCandidate, error) {

	// Software cycles and block execution counts from the profile.
	var swCycles uint64
	blockExecs := map[int]uint64{}
	for idx := range l.Blocks {
		ext := extents[idx]
		for pc := ext[0]; pc < ext[1]; pc += 4 {
			swCycles += cycAt[pc]
		}
		execs := prof.InstCount[ext[0]]
		if k, ok := rerollFactors[idx]; ok && k > 1 {
			execs *= uint64(k)
		}
		blockExecs[idx] = execs
	}
	if swCycles == 0 {
		return nil, nil // never executed; not a candidate
	}

	// Invocations: header executions minus re-entries from inside the
	// loop. Taken branches are in the edge profile; fallthrough and
	// unconditional flows contribute the predecessor's execution count.
	takenFrom := map[uint32]uint64{}
	for e, n := range prof.EdgeCount {
		takenFrom[e.From] += n
	}
	headerExecs := prof.InstCount[l.Header.Start]
	var backFlow uint64
	for _, p := range l.Header.Preds {
		if !l.Contains(p.Index) {
			continue
		}
		execs := prof.InstCount[p.Start]
		t := p.Terminator()
		switch {
		case t == nil:
			backFlow += execs
		case t.Op == ir.Jump:
			backFlow += execs
		case t.Op == ir.Branch:
			taken := prof.EdgeCount[sim.Edge{From: t.Addr, To: l.Header.Start}]
			if t.Target == l.Header.Start {
				backFlow += taken
			} else if execs >= takenFrom[t.Addr] {
				backFlow += execs - takenFrom[t.Addr]
			}
		default:
			backFlow += execs
		}
	}
	invocations := uint64(1)
	if headerExecs > backFlow {
		invocations = headerExecs - backFlow
	}

	d, err := sctx.synthesize(synth.LoopRegion(f, l), img, opts.Synth)
	if err != nil {
		return nil, err
	}
	am := alias.Analyze(f, img)
	fp, _ := am.Footprint(l.Blocks)

	return &RegionCandidate{
		Name:        d.Name,
		Func:        f.Name,
		SWCycles:    swCycles,
		HWCycles:    d.Cycles(blockExecs),
		HWClockNs:   d.ClockNs,
		Invocations: invocations,
		AreaGates:   d.GateEquivalent(),
		Footprint:   fp,
		SizeInstrs:  l.NumInstrs(),
		Design:      d,
	}, nil
}
