package core

import (
	"fmt"
	"testing"

	"binpart/internal/mcc"
	"binpart/internal/progen"
)

// runFingerprint renders every profile- and synthesis-derived number in a
// Report except the measured PartitionTime.
func runFingerprint(rep *Report) string {
	s := fmt.Sprintf("exit=%d sw=%d metrics=%+v recovery=%+v\n",
		rep.ExitCode, rep.SWCycles, rep.Metrics, rep.Recovery)
	for _, r := range rep.Regions {
		s += fmt.Sprintf("region %s sw=%d hw=%.6f clk=%.6f inv=%d area=%d sel=%v step=%d\n",
			r.Name, r.SWCycles, r.HWCycles, r.HWClockNs, r.Invocations,
			r.AreaGates, r.Selected, r.Step)
	}
	return s
}

// TestRunDeterminism requires the whole flow to be a pure function of the
// binary and options: repeated runs on the same image must agree on every
// region cost and metric. The flow iterates several Go maps (loop block
// sets, profiles, symbol tables); any order-dependent choice surfaces
// here as a flaky diff — which is also what would break the byte-identical
// guarantee of the parallel experiment executor and the coherence of the
// stage cache. (Regression: pipeline body selection for two-block loops
// used to follow map order when both blocks tied on size.)
func TestRunDeterminism(t *testing.T) {
	cfg := progen.Config{MaxStmts: 6, MaxDepth: 3, MaxLoops: 3, Arrays: true, UnrollFriendly: true}
	opts := DefaultOptions()
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Generate(seed*29+5, cfg)
		for lvl := 2; lvl <= 3; lvl++ {
			img, err := mcc.Compile(p.Source, mcc.Options{OptLevel: lvl})
			if err != nil {
				t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
			}
			var want string
			for run := 0; run < 3; run++ {
				rep, err := Run(img, opts)
				if err != nil {
					t.Fatalf("seed %d O%d: %v", p.Seed, lvl, err)
				}
				got := runFingerprint(rep)
				if run == 0 {
					want = got
				} else if got != want {
					t.Fatalf("seed %d O%d: run %d differs:\n--- first ---\n%s--- run %d ---\n%s\n%s",
						p.Seed, lvl, run, want, run, got, p.Source)
				}
			}
		}
	}
}
