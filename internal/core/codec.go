package core

import (
	"bytes"
	"encoding/gob"

	"binpart/internal/cache"
	"binpart/internal/dopt"
	"binpart/internal/sim"
)

// Codecs for the tiered cache (disk and remote): each stage whose value
// has a byte format gets a cache.Codec so its results can cross process
// boundaries. Compilation already round-trips through binimg; this file
// adds simulation results (plain data, gob) and the assembled Analysis.
//
// The Analysis codec is lossy by design: synth.Design holds the lifted
// function's cyclic CDFG and unexported schedules, neither of which
// serializes, so candidates cross the wire without their Design. That
// loses nothing a sweep reads — Evaluate prices candidates from the
// platform-independent numbers (SWCycles, HWCycles, HWClockNs,
// AreaGates) — but Report.VHDL needs the Design, so front-ends that emit
// VHDL must not attach this codec (see cmd/bparts -vhdl).

// SimCodec round-trips sim.Result through gob. Profiles are maps of
// plain counters; the whole value is platform-independent data.
func SimCodec() cache.Codec[sim.Result] {
	return cache.Codec[sim.Result]{
		Marshal: func(r sim.Result) ([]byte, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(r); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Unmarshal: func(b []byte) (sim.Result, error) {
			var r sim.Result
			err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r)
			return r, err
		},
	}
}

// regionCandidateWire is RegionCandidate minus the non-serializable
// Design pointer.
type regionCandidateWire struct {
	Name        string
	Func        string
	SWCycles    uint64
	HWCycles    float64
	HWClockNs   float64
	Invocations uint64
	AreaGates   int
	Footprint   []string
	SizeInstrs  int
}

// analysisWire is the gob image of an Analysis: the unexported options
// become an exported field and candidates lose their Designs.
type analysisWire struct {
	Opts        Options
	ExitCode    int32
	SWCycles    uint64
	Recovery    RecoveryStats
	DoptReports map[string]dopt.Report
	Outlines    map[string]string
	Candidates  []regionCandidateWire
}

// AnalysisCodec round-trips *Analysis (minus candidate Designs) through
// gob. A decoded Analysis evaluates and reports identically to the
// original except for VHDL emission.
func AnalysisCodec() cache.Codec[*Analysis] {
	return cache.Codec[*Analysis]{
		Marshal: func(a *Analysis) ([]byte, error) {
			w := analysisWire{
				Opts:        a.opts,
				ExitCode:    a.ExitCode,
				SWCycles:    a.SWCycles,
				Recovery:    a.Recovery,
				DoptReports: a.DoptReports,
				Outlines:    a.Outlines,
				Candidates:  make([]regionCandidateWire, len(a.Candidates)),
			}
			for i, c := range a.Candidates {
				w.Candidates[i] = regionCandidateWire{
					Name:        c.Name,
					Func:        c.Func,
					SWCycles:    c.SWCycles,
					HWCycles:    c.HWCycles,
					HWClockNs:   c.HWClockNs,
					Invocations: c.Invocations,
					AreaGates:   c.AreaGates,
					Footprint:   c.Footprint,
					SizeInstrs:  c.SizeInstrs,
				}
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(w); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Unmarshal: func(b []byte) (*Analysis, error) {
			var w analysisWire
			if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
				return nil, err
			}
			a := &Analysis{
				opts:        w.Opts,
				ExitCode:    w.ExitCode,
				SWCycles:    w.SWCycles,
				Recovery:    w.Recovery,
				DoptReports: w.DoptReports,
				Outlines:    w.Outlines,
				Candidates:  make([]*RegionCandidate, len(w.Candidates)),
			}
			for i, c := range w.Candidates {
				a.Candidates[i] = &RegionCandidate{
					Name:        c.Name,
					Func:        c.Func,
					SWCycles:    c.SWCycles,
					HWCycles:    c.HWCycles,
					HWClockNs:   c.HWClockNs,
					Invocations: c.Invocations,
					AreaGates:   c.AreaGates,
					Footprint:   c.Footprint,
					SizeInstrs:  c.SizeInstrs,
				}
			}
			return a, nil
		},
	}
}
