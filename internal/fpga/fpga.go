// Package fpga models a Xilinx Virtex-II class FPGA: a device catalog and
// per-operator area/delay cost tables. It substitutes for the Xilinx ISE
// backend of the reproduced paper — ISE is used there only to obtain area
// and clock estimates for the generated RTL, which this model produces
// analytically from datasheet-order-of-magnitude constants.
//
// Area is tracked in slices (each Virtex-II slice holds two 4-input LUTs
// and two flip-flops), dedicated MULT18X18 blocks, and block RAMs. The
// conventional "equivalent logic gates" metric reported by the paper is
// derived at a fixed gates-per-slice factor.
package fpga

import "fmt"

// Device is one member of the Virtex-II family.
type Device struct {
	Name   string
	Slices int
	Mult18 int // dedicated 18x18 multiplier blocks
	BRAM   int // 18 Kbit block RAMs
}

// Catalog lists the Virtex-II family, smallest to largest (XC2V40 through
// XC2V8000), with datasheet resource counts.
var Catalog = []Device{
	{"XC2V40", 256, 4, 4},
	{"XC2V80", 512, 8, 8},
	{"XC2V250", 1536, 24, 24},
	{"XC2V500", 3072, 32, 32},
	{"XC2V1000", 5120, 40, 40},
	{"XC2V1500", 7680, 48, 48},
	{"XC2V2000", 10752, 56, 56},
	{"XC2V3000", 14336, 96, 96},
	{"XC2V4000", 23040, 120, 120},
	{"XC2V6000", 33792, 144, 144},
	{"XC2V8000", 46592, 168, 168},
}

// ByName returns the catalog device with the given name.
func ByName(name string) (Device, error) {
	for _, d := range Catalog {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("fpga: unknown device %q", name)
}

// Area is a resource usage vector.
type Area struct {
	Slices int
	Mult18 int
	BRAM   int
}

// Add accumulates another area vector.
func (a Area) Add(b Area) Area {
	return Area{a.Slices + b.Slices, a.Mult18 + b.Mult18, a.BRAM + b.BRAM}
}

// FitsIn reports whether the area fits the device.
func (a Area) FitsIn(d Device) bool {
	return a.Slices <= d.Slices && a.Mult18 <= d.Mult18 && a.BRAM <= d.BRAM
}

// GatesPerSlice converts slices to the "equivalent logic gates" metric:
// two 4-input LUTs (~12 gates each) plus two flip-flops (~6 gates each).
const GatesPerSlice = 36

// GatesPerMult18 is the equivalent gate count of a dedicated multiplier.
const GatesPerMult18 = 2600

// GateEquivalent converts an area vector to equivalent logic gates.
// Block RAM is memory, not logic, and is conventionally excluded.
func (a Area) GateEquivalent() int {
	return a.Slices*GatesPerSlice + a.Mult18*GatesPerMult18
}

// OpClass classifies datapath operators for costing.
type OpClass int

const (
	ClassAdd     OpClass = iota // add, subtract, compare-producing adders
	ClassLogic                  // and/or/xor
	ClassShiftC                 // shift by constant (wiring only)
	ClassShiftV                 // barrel shifter
	ClassCompare                // relational comparison
	ClassMult                   // multiplication
	ClassDiv                    // division/remainder
	ClassReg                    // pipeline/architectural register
	ClassMux                    // 2:1 datapath multiplexer
	ClassMemPort                // block-RAM port interface logic
)

// Cost is the implementation cost of one operator instance.
type Cost struct {
	Area    Area
	DelayNs float64
}

// routingFactor inflates raw logic delays to account for interconnect;
// Virtex-II routing typically dominates at this ratio.
const routingFactor = 1.35

// ffSetupNs is clock-to-out plus setup overhead added to every register
// boundary when estimating the achievable clock.
const ffSetupNs = 1.2

// CostOf returns the cost of one operator of the given class at the given
// bit width (1..32). Widths below come from the decompiler's operator
// size reduction; narrower operators are cheaper and faster, which is the
// point of that pass.
func CostOf(class OpClass, width int) Cost {
	if width <= 0 || width > 32 {
		width = 32
	}
	w := float64(width)
	switch class {
	case ClassAdd:
		return Cost{Area{Slices: (width + 1) / 2}, (0.6 + 0.055*w) * routingFactor}
	case ClassLogic:
		return Cost{Area{Slices: (width + 1) / 2}, 0.45 * routingFactor}
	case ClassShiftC:
		return Cost{Area{}, 0.05} // routing only
	case ClassShiftV:
		levels := 5 // log2(32)
		return Cost{Area{Slices: width * levels / 4}, (0.4*float64(levels) + 0.3) * routingFactor}
	case ClassCompare:
		return Cost{Area{Slices: (width + 1) / 2}, (0.6 + 0.055*w) * routingFactor}
	case ClassMult:
		blocks := (width + 17) / 18
		return Cost{Area{Mult18: blocks * blocks}, (4.4 + 0.4*float64(blocks-1)) * routingFactor}
	case ClassDiv:
		// Combinational restoring array divider: quadratic area, long
		// delay; synthesis avoids these when strength reduction can.
		return Cost{Area{Slices: width * width / 3}, (1.1 * w) * routingFactor}
	case ClassReg:
		return Cost{Area{Slices: (width + 1) / 2}, 0}
	case ClassMux:
		return Cost{Area{Slices: (width + 1) / 2}, 0.35 * routingFactor}
	case ClassMemPort:
		return Cost{Area{Slices: 20, BRAM: 0}, 2.1 * routingFactor}
	}
	return Cost{Area{Slices: width}, 1.0}
}

// BRAMsFor returns the number of 18 Kbit block RAMs needed to hold a
// memory region of the given byte size (dual-ported, 32-bit lanes).
func BRAMsFor(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	const bramBytes = 18 * 1024 / 8
	return (bytes + bramBytes - 1) / bramBytes
}

// ClockFromCriticalPath converts a worst-case combinational path delay to
// an achievable clock period, adding register overhead, and returns the
// period in nanoseconds.
func ClockFromCriticalPath(pathNs float64) float64 {
	return pathNs + ffSetupNs
}

// MHz converts a period in nanoseconds to a frequency in MHz.
func MHz(periodNs float64) float64 {
	if periodNs <= 0 {
		return 0
	}
	return 1000.0 / periodNs
}
