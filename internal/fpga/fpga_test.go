package fpga

import (
	"testing"
	"testing/quick"
)

func TestCatalogOrderedAndComplete(t *testing.T) {
	if len(Catalog) != 11 {
		t.Fatalf("catalog has %d devices, want 11 (XC2V40..XC2V8000)", len(Catalog))
	}
	for i := 1; i < len(Catalog); i++ {
		prev, cur := Catalog[i-1], Catalog[i]
		if cur.Slices <= prev.Slices {
			t.Errorf("%s slices (%d) not above %s (%d)", cur.Name, cur.Slices, prev.Name, prev.Slices)
		}
		if cur.Mult18 < prev.Mult18 || cur.BRAM < prev.BRAM {
			t.Errorf("%s resources shrink vs %s", cur.Name, prev.Name)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("XC2V1000")
	if err != nil || d.Slices != 5120 {
		t.Errorf("ByName(XC2V1000) = %+v, %v", d, err)
	}
	if _, err := ByName("XC9999"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestAreaArithmetic(t *testing.T) {
	a := Area{Slices: 10, Mult18: 1, BRAM: 2}
	b := Area{Slices: 5, Mult18: 2, BRAM: 0}
	sum := a.Add(b)
	if sum != (Area{Slices: 15, Mult18: 3, BRAM: 2}) {
		t.Errorf("Add = %+v", sum)
	}
	small, _ := ByName("XC2V40")
	if (Area{Slices: 257}).FitsIn(small) {
		t.Error("oversized area fits XC2V40")
	}
	if !(Area{Slices: 256, Mult18: 4, BRAM: 4}).FitsIn(small) {
		t.Error("exact-fit area rejected")
	}
	if (Area{Slices: 1, Mult18: 5}).FitsIn(small) {
		t.Error("too many multipliers fit")
	}
}

func TestGateEquivalent(t *testing.T) {
	a := Area{Slices: 100, Mult18: 2, BRAM: 7}
	want := 100*GatesPerSlice + 2*GatesPerMult18
	if got := a.GateEquivalent(); got != want {
		t.Errorf("GateEquivalent = %d, want %d (BRAM must not count)", got, want)
	}
}

func TestCostMonotonicity(t *testing.T) {
	classes := []OpClass{ClassAdd, ClassLogic, ClassShiftV, ClassCompare, ClassMult, ClassDiv, ClassReg, ClassMux}
	f := func(w8 uint8) bool {
		w := int(w8%31) + 1
		for _, cls := range classes {
			lo, hi := CostOf(cls, w), CostOf(cls, w+1)
			if hi.Area.Slices < lo.Area.Slices || hi.Area.Mult18 < lo.Area.Mult18 {
				return false
			}
			if hi.DelayNs < lo.DelayNs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostSanity(t *testing.T) {
	// A constant shift is free; a barrel shifter is not.
	if CostOf(ClassShiftC, 32).Area.Slices != 0 {
		t.Error("constant shift consumes slices")
	}
	if CostOf(ClassShiftV, 32).Area.Slices == 0 {
		t.Error("barrel shifter is free")
	}
	// A 32-bit multiply uses dedicated blocks, not slices.
	m := CostOf(ClassMult, 32)
	if m.Area.Mult18 != 4 {
		t.Errorf("32-bit multiply uses %d MULT18s, want 4 (2x2)", m.Area.Mult18)
	}
	// An 18-bit multiply fits one block.
	if CostOf(ClassMult, 18).Area.Mult18 != 1 {
		t.Error("18-bit multiply should fit one MULT18")
	}
	// Dividers are painfully large and slow (synthesis should avoid).
	d := CostOf(ClassDiv, 32)
	if d.Area.Slices < 100 || d.DelayNs < 20 {
		t.Errorf("divider suspiciously cheap: %+v", d)
	}
	// Out-of-range widths clamp to 32.
	if CostOf(ClassAdd, 0) != CostOf(ClassAdd, 32) || CostOf(ClassAdd, 99) != CostOf(ClassAdd, 32) {
		t.Error("width clamping broken")
	}
}

func TestBRAMsFor(t *testing.T) {
	cases := map[int]int{
		0:    0,
		-5:   0,
		1:    1,
		2304: 1, // exactly 18 Kbit
		2305: 2,
		4608: 2,
	}
	for bytes, want := range cases {
		if got := BRAMsFor(bytes); got != want {
			t.Errorf("BRAMsFor(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestClockHelpers(t *testing.T) {
	if p := ClockFromCriticalPath(6.8); p <= 6.8 {
		t.Errorf("clock period %v must include register overhead", p)
	}
	if mhz := MHz(10); mhz != 100 {
		t.Errorf("MHz(10ns) = %v, want 100", mhz)
	}
	if MHz(0) != 0 {
		t.Error("MHz(0) should be 0")
	}
}
