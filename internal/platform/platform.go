// Package platform models the paper's hypothetical single-chip
// microprocessor/FPGA platform: a MIPS core at a configurable clock next
// to a Virtex-II fabric, with a communication cost per accelerator
// invocation and an analytic power model. It turns partitioning results
// into the metrics the paper reports: application speedup, kernel
// speedup, and energy savings.
package platform

import (
	"fmt"

	"binpart/internal/fpga"
)

// Platform describes one microprocessor/FPGA configuration.
type Platform struct {
	Name   string
	CPUMHz float64
	Device fpga.Device

	// CPUActiveW is the core's power while executing.
	CPUActiveW float64
	// CPUIdleFrac is the fraction of active power the core burns while
	// stalled waiting for the FPGA.
	CPUIdleFrac float64
	// FPGAStaticW is the fabric's static power (drawn whenever the
	// design is configured).
	FPGAStaticW float64
	// FPGADynWPerGateMHz scales dynamic fabric power with active logic
	// and clock.
	FPGADynWPerGateMHz float64
	// CommCPUCycles is the per-invocation cost of starting the
	// accelerator and exchanging arguments/results over the on-chip bus.
	CommCPUCycles uint64
}

// cpuWattsPerMHz is the dynamic power density of the modeled MIPS core.
const cpuWattsPerMHz = 2.5e-3

// MIPS returns a platform with the given CPU clock and device, using the
// power constants shared by all experiments.
func MIPS(mhz float64, dev fpga.Device) Platform {
	return Platform{
		Name:               fmt.Sprintf("MIPS-%.0f/%s", mhz, dev.Name),
		CPUMHz:             mhz,
		Device:             dev,
		CPUActiveW:         cpuWattsPerMHz * mhz,
		CPUIdleFrac:        0.35,
		FPGAStaticW:        0.08,
		FPGADynWPerGateMHz: 9.0e-8,
		CommCPUCycles:      60,
	}
}

// The paper's three evaluation platforms (Virtex-II XC2V2000 fabric).
func defaultDevice() fpga.Device {
	d, _ := fpga.ByName("XC2V2000")
	return d
}

// Standard platforms evaluated in the paper's results section.
var (
	MIPS40  = MIPS(40, defaultDevice())
	MIPS200 = MIPS(200, defaultDevice())
	MIPS400 = MIPS(400, defaultDevice())
)

// Region is one hardware-mapped region's contribution.
type Region struct {
	Name string
	// SWCycles is the CPU cycles the region consumed in the all-software
	// run.
	SWCycles uint64
	// HWCycles is the accelerator cycles for all executions.
	HWCycles float64
	// HWClockNs is the synthesized design's clock period.
	HWClockNs float64
	// Invocations is how many times the CPU starts the accelerator.
	Invocations uint64
	// AreaGates is the design's equivalent-gate area.
	AreaGates int
	// ActiveGates participates in dynamic power (== AreaGates here).
	ActiveGates int
}

// HWSeconds is the region's total hardware execution time.
func (r Region) HWSeconds() float64 { return r.HWCycles * r.HWClockNs * 1e-9 }

// Metrics aggregates a partitioned application's evaluation.
type Metrics struct {
	SWTimeS       float64
	HWSWTimeS     float64
	AppSpeedup    float64
	KernelSpeedup float64
	EnergySWJ     float64
	EnergyHWSWJ   float64
	// EnergySavings is 1 - EnergyHWSW/EnergySW (the paper's "%" metric).
	EnergySavings float64
	AreaGates     int
}

// Evaluate computes the metrics for an application whose all-software run
// took totalSWCycles on this platform's CPU, with the given regions moved
// to hardware.
func (p Platform) Evaluate(totalSWCycles uint64, regions []Region) Metrics {
	cpuHz := p.CPUMHz * 1e6
	swTime := float64(totalSWCycles) / cpuHz

	var kernelSW, kernelHW float64
	var area int
	var fpgaDynE float64
	for _, r := range regions {
		kernelSW += float64(r.SWCycles) / cpuHz
		t := r.HWSeconds() + float64(r.Invocations*p.CommCPUCycles)/cpuHz
		kernelHW += t
		area += r.AreaGates
		mhz := fpga.MHz(r.HWClockNs)
		fpgaDynE += p.FPGADynWPerGateMHz * float64(r.ActiveGates) * mhz * r.HWSeconds()
	}
	hwswTime := swTime - kernelSW + kernelHW

	m := Metrics{
		SWTimeS:   swTime,
		HWSWTimeS: hwswTime,
		AreaGates: area,
	}
	if hwswTime > 0 {
		m.AppSpeedup = swTime / hwswTime
	}
	if kernelHW > 0 {
		m.KernelSpeedup = kernelSW / kernelHW
	}

	// Energy. Software-only: CPU active the whole run. Partitioned: CPU
	// active for the software residue, idling while the FPGA runs. The
	// fabric is power-gated when inactive (the standard assumption for
	// this platform class), so both its static and dynamic power apply
	// only during hardware execution.
	m.EnergySWJ = p.CPUActiveW * swTime
	cpuE := p.CPUActiveW*(swTime-kernelSW) + p.CPUActiveW*p.CPUIdleFrac*kernelHW
	fpgaE := p.FPGAStaticW*kernelHW + fpgaDynE
	m.EnergyHWSWJ = cpuE + fpgaE
	if m.EnergySWJ > 0 {
		m.EnergySavings = 1 - m.EnergyHWSWJ/m.EnergySWJ
	}
	return m
}
