package platform

import (
	"testing"

	"binpart/internal/fpga"
)

func sampleRegion() Region {
	return Region{
		Name:        "kernel",
		SWCycles:    9_000_000,
		HWCycles:    150_000,
		HWClockNs:   8,
		Invocations: 1,
		AreaGates:   20000,
		ActiveGates: 20000,
	}
}

func TestEvaluateBasicShape(t *testing.T) {
	m := MIPS200.Evaluate(10_000_000, []Region{sampleRegion()})
	if m.AppSpeedup <= 1 {
		t.Errorf("app speedup %.2f, want > 1", m.AppSpeedup)
	}
	if m.KernelSpeedup <= m.AppSpeedup {
		t.Errorf("kernel speedup (%.1f) should exceed app speedup (%.1f) by Amdahl",
			m.KernelSpeedup, m.AppSpeedup)
	}
	if m.EnergySavings <= 0 || m.EnergySavings >= 1 {
		t.Errorf("energy savings %.2f outside (0,1)", m.EnergySavings)
	}
	if m.HWSWTimeS >= m.SWTimeS {
		t.Error("partitioned time not below software time")
	}
}

func TestSlowerCPUGainsMore(t *testing.T) {
	// The same hardware helps a slow CPU more: speedup(40) > speedup(200)
	// > speedup(400), and energy savings order matches (the paper's
	// platform sweep shape).
	r := sampleRegion()
	// Cycle counts are CPU-frequency independent in this model.
	m40 := MIPS40.Evaluate(10_000_000, []Region{r})
	m200 := MIPS200.Evaluate(10_000_000, []Region{r})
	m400 := MIPS400.Evaluate(10_000_000, []Region{r})
	if !(m40.AppSpeedup > m200.AppSpeedup && m200.AppSpeedup > m400.AppSpeedup) {
		t.Errorf("speedups not decreasing with CPU clock: %.2f, %.2f, %.2f",
			m40.AppSpeedup, m200.AppSpeedup, m400.AppSpeedup)
	}
	if !(m40.EnergySavings > m200.EnergySavings && m200.EnergySavings > m400.EnergySavings) {
		t.Errorf("savings not decreasing with CPU clock: %.2f, %.2f, %.2f",
			m40.EnergySavings, m200.EnergySavings, m400.EnergySavings)
	}
}

func TestNoRegionsMeansNoChange(t *testing.T) {
	m := MIPS200.Evaluate(5_000_000, nil)
	if m.AppSpeedup != 1 {
		t.Errorf("speedup with empty partition = %v, want 1", m.AppSpeedup)
	}
	if m.HWSWTimeS != m.SWTimeS {
		t.Error("time changed with empty partition")
	}
	// FPGA static power still makes the "partitioned" system cost a bit
	// more energy, so savings must be <= 0.
	if m.EnergySavings > 0 {
		t.Errorf("positive savings (%v) with no hardware regions", m.EnergySavings)
	}
}

func TestCommunicationOverheadHurts(t *testing.T) {
	few := sampleRegion()
	few.Invocations = 1
	many := sampleRegion()
	many.Invocations = 100_000
	mFew := MIPS200.Evaluate(10_000_000, []Region{few})
	mMany := MIPS200.Evaluate(10_000_000, []Region{many})
	if mMany.AppSpeedup >= mFew.AppSpeedup {
		t.Errorf("invocation overhead did not reduce speedup: %.2f vs %.2f",
			mMany.AppSpeedup, mFew.AppSpeedup)
	}
}

func TestCPUPowerScalesWithClock(t *testing.T) {
	if MIPS400.CPUActiveW <= MIPS200.CPUActiveW || MIPS200.CPUActiveW <= MIPS40.CPUActiveW {
		t.Error("CPU power not increasing with clock")
	}
}

func TestMIPSConstructor(t *testing.T) {
	dev, err := fpga.ByName("XC2V500")
	if err != nil {
		t.Fatal(err)
	}
	p := MIPS(100, dev)
	if p.CPUMHz != 100 || p.Device.Name != "XC2V500" {
		t.Errorf("MIPS() = %+v", p)
	}
	if p.Name == "" {
		t.Error("empty platform name")
	}
}

func TestHWSeconds(t *testing.T) {
	r := Region{HWCycles: 1000, HWClockNs: 10}
	if got := r.HWSeconds(); got != 1e-5 {
		t.Errorf("HWSeconds = %v, want 1e-5", got)
	}
}
