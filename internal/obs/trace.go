package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"binpart/internal/cache"
)

// TraceWriter is the sink behind -trace: a file, gzip-compressed when the
// path ends in ".gz" (merged distributed traces get large). Stream spans
// into Writer(), then Close — which flushes every layer and reports the
// first error, so a full disk surfaces as a nonzero exit instead of a
// silently truncated trace.
type TraceWriter struct {
	f  *os.File
	gz *gzip.Writer
	w  io.Writer
}

// CreateTrace opens path for trace output, stacking a gzip layer when the
// path ends in ".gz".
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tw := &TraceWriter{f: f, w: f}
	if strings.HasSuffix(path, ".gz") {
		tw.gz = gzip.NewWriter(f)
		tw.w = tw.gz
	}
	return tw, nil
}

// Writer is the stream to hand to Recorder.StreamTo.
func (t *TraceWriter) Writer() io.Writer { return t.w }

// Close flushes the gzip layer (if any) and the file, reporting the
// first error.
func (t *TraceWriter) Close() error {
	var first error
	if t.gz != nil {
		if err := t.gz.Close(); err != nil {
			first = err
		}
	}
	if err := t.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// TraceFile is one parsed trace stream: the header tags, every span, and
// the cache-accounting trailer (nil when the producer emitted none).
type TraceFile struct {
	Trace       string
	Proc        string
	EpochUnixUS int64
	Spans       []SpanRecord
	Caches      map[string]cache.Stats
}

// ReadTrace parses a trace file written by StreamTo/EmitCaches,
// transparently ungzipping when the path ends in ".gz". Unknown meta
// kinds are skipped, so readers stay compatible with newer producers.
func ReadTrace(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	tf, err := parseTrace(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tf, nil
}

func parseTrace(r io.Reader) (*TraceFile, error) {
	tf := &TraceFile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Meta lines carry a non-empty "meta" field; everything else is
		// a span. Peek cheaply before committing to a schema.
		var probe struct {
			Meta string `json:"meta"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("bad trace line: %w", err)
		}
		if probe.Meta == "" {
			var sp SpanRecord
			if err := json.Unmarshal(line, &sp); err != nil {
				return nil, fmt.Errorf("bad span line: %w", err)
			}
			tf.Spans = append(tf.Spans, sp)
			continue
		}
		var meta TraceMeta
		if err := json.Unmarshal(line, &meta); err != nil {
			return nil, fmt.Errorf("bad meta line: %w", err)
		}
		switch meta.Meta {
		case MetaTrace:
			tf.Trace = meta.Trace
			tf.Proc = meta.Proc
			tf.EpochUnixUS = meta.EpochUnixUS
		case MetaCaches:
			tf.Caches = mergeCacheStats(tf.Caches, meta.Caches)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tf, nil
}

// mergeCacheStats sums b into a per stage key. Entries/Evictions are
// per-process gauges of independent memories, so they sum too: the
// merged view is "across all processes of the run".
func mergeCacheStats(a, b map[string]cache.Stats) map[string]cache.Stats {
	if b == nil {
		return a
	}
	if a == nil {
		a = map[string]cache.Stats{}
	}
	for k, s := range b {
		t := a[k]
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Evictions += s.Evictions
		t.DiskHits += s.DiskHits
		t.RemoteHits += s.RemoteHits
		t.RemoteWaits += s.RemoteWaits
		t.Waits += s.Waits
		t.Corrupt += s.Corrupt
		t.Entries += s.Entries
		a[k] = t
	}
	return a
}

// MergeTraces combines the parent's trace with every worker's into one
// coherent run trace: worker span timestamps are realigned from their
// process epoch onto the earliest epoch, spans are tagged with their
// process label, cache accounting is summed, and the result is sorted by
// adjusted start time. Every part must carry the same non-empty trace ID
// — a mismatch means the caller merged files from different runs.
func MergeTraces(parts []*TraceFile) (*TraceFile, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("merge: no trace parts")
	}
	trace := parts[0].Trace
	if trace == "" {
		return nil, fmt.Errorf("merge: part %q has no trace ID", parts[0].Proc)
	}
	epoch := parts[0].EpochUnixUS
	for _, p := range parts[1:] {
		if p.Trace != trace {
			return nil, fmt.Errorf("merge: trace ID mismatch: %q (proc %q) vs %q", p.Trace, p.Proc, trace)
		}
		if p.EpochUnixUS < epoch {
			epoch = p.EpochUnixUS
		}
	}

	merged := &TraceFile{Trace: trace, EpochUnixUS: epoch}
	for _, p := range parts {
		shift := p.EpochUnixUS - epoch
		for _, sp := range p.Spans {
			sp.StartUS += shift
			if sp.Trace == "" {
				sp.Trace = trace
			}
			if sp.Proc == "" {
				sp.Proc = p.Proc
			}
			merged.Spans = append(merged.Spans, sp)
		}
		merged.Caches = mergeCacheStats(merged.Caches, p.Caches)
	}
	sort.SliceStable(merged.Spans, func(i, j int) bool {
		return merged.Spans[i].StartUS < merged.Spans[j].StartUS
	})
	return merged, nil
}

// Write serializes the trace file back to the stream format: header meta
// line, spans in order, cache trailer.
func (tf *TraceFile) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(TraceMeta{Meta: MetaTrace, Trace: tf.Trace, Proc: tf.Proc, EpochUnixUS: tf.EpochUnixUS}); err != nil {
		return err
	}
	for i := range tf.Spans {
		if err := enc.Encode(&tf.Spans[i]); err != nil {
			return err
		}
	}
	if tf.Caches != nil {
		if err := enc.Encode(TraceMeta{Meta: MetaCaches, Caches: tf.Caches}); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the trace to path via TraceWriter (gzipped for .gz).
func (tf *TraceFile) WriteFile(path string) error {
	tw, err := CreateTrace(path)
	if err != nil {
		return err
	}
	if err := tf.Write(tw.Writer()); err != nil {
		tw.Close()
		return err
	}
	return tw.Close()
}

// CacheForStage maps a span stage to the key its stage cache reports
// under in Stats maps ("" for stages with no cache). The analysis cache
// predates the span layer and kept its longer name.
var CacheForStage = map[string]string{
	StageAnalyze: "analysis",
	StageCompile: "compile",
	StageSim:     "sim",
	StageLift:    "lift",
	StageSynth:   "synth",
}

// Reconcile checks the trace's span outcomes against its cache
// accounting: for every stage with a cache, spans tagged
// hit+wait+disk+remote+rwait must equal the cache's Hits, and
// miss+corrupt its Misses. The invariant holds per process and is
// preserved by summation, so it must also hold for a merged distributed
// trace — a mismatch means spans or stats were dropped in flight.
func (tf *TraceFile) Reconcile() error {
	if tf.Caches == nil {
		return fmt.Errorf("reconcile: trace has no cache accounting trailer")
	}
	totals := AggregateRecords(tf.Spans)
	var problems []string
	for _, st := range totals {
		key := CacheForStage[st.Stage]
		if key == "" {
			continue
		}
		cs, ok := tf.Caches[key]
		if !ok {
			continue
		}
		if got, want := st.Hit+st.Wait+st.Disk+st.Remote+st.RemoteWait, cs.Hits; got != want {
			problems = append(problems, fmt.Sprintf("%s: span hits %d != cache hits %d", st.Stage, got, want))
		}
		if got, want := st.Miss+st.Corrupt, cs.Misses; got != want {
			problems = append(problems, fmt.Sprintf("%s: span misses %d != cache misses %d", st.Stage, got, want))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("reconcile: %s", strings.Join(problems, "; "))
	}
	return nil
}
