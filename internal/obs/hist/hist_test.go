package hist

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecordAllocFree pins the hot-path contract: recording into a live
// histogram allocates nothing.
func TestRecordAllocFree(t *testing.T) {
	h := &Histogram{}
	allocs := testing.AllocsPerRun(100, func() {
		h.Record(1234 * time.Nanosecond)
		h.Record(5 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.0f per run, want 0", allocs)
	}
}

// TestBucketBounds pins the layout: a value lands in the bucket whose
// upper bound is the smallest >= the value.
func TestBucketBounds(t *testing.T) {
	cases := []struct {
		ns     uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
		if c.ns > 0 && BucketUpperNs(c.bucket) < c.ns {
			t.Errorf("BucketUpperNs(%d) = %d < sample %d", c.bucket, BucketUpperNs(c.bucket), c.ns)
		}
	}
}

// TestMergeEqualsConcatenation is the distributed-trace property: the
// merge of N worker histograms must be bucket-exact equal to one
// histogram fed the concatenation of every worker's samples. This is
// what lets the parent of a -dist run reconstruct suite-wide
// percentiles from per-worker snapshots.
func TestMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const workers = 5
	whole := &Histogram{}
	parts := make([]*Histogram, workers)
	for w := range parts {
		parts[w] = &Histogram{}
		n := 100 + rng.Intn(400)
		for i := 0; i < n; i++ {
			// Log-uniform samples: exercise every decade from ns to s.
			d := time.Duration(1 << uint(rng.Intn(31)))
			d += time.Duration(rng.Int63n(int64(d) + 1))
			parts[w].Record(d)
			whole.Record(d)
		}
	}

	var merged Snapshot
	for _, p := range parts {
		merged = merged.Merge(p.Snapshot())
	}
	if want := whole.Snapshot(); merged != want {
		t.Fatalf("merged snapshot differs from concatenated histogram:\n got %+v\nwant %+v", merged, want)
	}
}

// TestQuantiles checks rank resolution against a known distribution.
func TestQuantiles(t *testing.T) {
	var s Snapshot
	// 90 samples in the ~1µs bucket, 10 in the ~1ms bucket.
	for i := 0; i < 90; i++ {
		s.Observe(800 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		s.Observe(900 * time.Microsecond)
	}
	if p50 := s.QuantileNs(0.5); p50 >= uint64(time.Millisecond) {
		t.Errorf("p50 = %dns landed in the slow bucket", p50)
	}
	if p99 := s.QuantileNs(0.99); p99 < uint64(512*time.Microsecond) {
		t.Errorf("p99 = %dns missed the slow bucket", p99)
	}
	if got := (Snapshot{}).QuantileNs(0.99); got != 0 {
		t.Errorf("empty snapshot p99 = %d, want 0", got)
	}
	if us := s.QuantileUS(0.5); us < 1 {
		t.Errorf("sub-ms quantile rounded to %dus, want >= 1", us)
	}
}

// TestConcurrentRecord runs racing recorders; -race is the assertion,
// the count check just keeps the work observable.
func TestConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

// TestPromExposition checks the text format: TYPE headers once per
// family, escaped labels, summary quantiles plus _sum/_count.
func TestPromExposition(t *testing.T) {
	var b strings.Builder
	p := NewProm(&b)
	p.Counter("x_total", Label("stage", "sim"), 3)
	p.Counter("x_total", Label("stage", "lift"), 4)
	p.Gauge("y", "", 1.5)

	var s Snapshot
	s.Observe(100 * time.Microsecond)
	s.Observe(200 * time.Microsecond)
	p.Summary("lat_seconds", Labels(Label("peer", `a"b`)), s)

	out := b.String()
	if strings.Count(out, "# TYPE x_total counter") != 1 {
		t.Errorf("x_total TYPE header not emitted exactly once:\n%s", out)
	}
	for _, want := range []string{
		`x_total{stage="sim"} 3`,
		`x_total{stage="lift"} 4`,
		"y 1.5",
		`lat_seconds{peer="a\"b",quantile="0.5"}`,
		`lat_seconds_sum{peer="a\"b"}`,
		`lat_seconds_count{peer="a\"b"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	var empty strings.Builder
	NewProm(&empty).Summary("z", "", Snapshot{})
	if empty.Len() != 0 {
		t.Errorf("empty summary emitted output: %q", empty.String())
	}
}
