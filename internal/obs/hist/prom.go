package hist

import (
	"fmt"
	"io"
	"strings"
)

// Prom writes the Prometheus text exposition format (version 0.0.4):
// one `# TYPE` header per metric family, then one sample per line.
// Callers group samples of one family together, as the format requires;
// Prom tracks which families it has typed so interleaved helpers stay
// legal.
type Prom struct {
	w     io.Writer
	typed map[string]string
}

// NewProm starts an exposition onto w.
func NewProm(w io.Writer) *Prom {
	return &Prom{w: w, typed: map[string]string{}}
}

// header emits the TYPE line once per family.
func (p *Prom) header(name, typ string) {
	if p.typed[name] == "" {
		fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
		p.typed[name] = typ
	}
}

// sample writes one metric line. labels is the pre-rendered inner label
// list (`stage="sim",tier="disk"`) or "".
func (p *Prom) sample(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(p.w, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(p.w, "%s{%s} %g\n", name, labels, v)
}

// Counter emits one counter sample.
func (p *Prom) Counter(name, labels string, v float64) {
	p.header(name, "counter")
	p.sample(name, labels, v)
}

// Gauge emits one gauge sample.
func (p *Prom) Gauge(name, labels string, v float64) {
	p.header(name, "gauge")
	p.sample(name, labels, v)
}

// Quantiles is the set every latency summary exposes.
var Quantiles = []float64{0.5, 0.9, 0.95, 0.99}

// Summary emits a latency snapshot as a Prometheus summary in seconds:
// one sample per quantile in Quantiles plus the _sum and _count series.
// Empty snapshots are skipped entirely, keeping scrape output compact.
func (p *Prom) Summary(name, labels string, s Snapshot) {
	if s.Empty() {
		return
	}
	p.header(name, "summary")
	for _, q := range Quantiles {
		ql := fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q))
		if labels != "" {
			ql = labels + "," + ql
		}
		p.sample(name, ql, s.QuantileSeconds(q))
	}
	p.sample(name+"_sum", labels, float64(s.SumNs)/1e9)
	p.sample(name+"_count", labels, float64(s.Count))
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Label renders one escaped key="value" pair for the labels arguments.
func Label(key, value string) string {
	return key + `="` + labelEscaper.Replace(value) + `"`
}

// Labels joins rendered pairs.
func Labels(pairs ...string) string { return strings.Join(pairs, ",") }
