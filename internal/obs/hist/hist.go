// Package hist provides the fixed log-bucketed latency histograms
// behind the observability layer's p50/p90/p99 surfaces. It is a leaf
// package — no binpart imports — so both internal/obs (stage spans) and
// internal/cache (tier probes, remote peers, the cache server) can
// record into the same bucket layout and their snapshots merge
// bucket-exactly across processes.
//
// The layout is one bucket per power of two of nanoseconds: a recorded
// duration d lands in bucket bits.Len64(d), so bucket i covers
// [2^(i-1), 2^i) ns and its reported upper bound is 2^i ns. 64 buckets
// cover every int64 duration; there is no configuration, which is what
// makes merges across workers trivially exact. Quantiles are resolved
// to a bucket upper bound — deterministic, bucket-exact, and within 2x
// of the true value, which is the right precision for spotting a p99
// three orders of magnitude above the p50.
//
// Histogram is the live, concurrency-safe accumulator: recording is two
// atomic adds and allocates nothing, so it can sit on cache and network
// hot paths. Snapshot is the frozen value type that travels through
// stats tables, manifests, and /metrics.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count: one per power of two of
// nanoseconds, covering every representable duration.
const NumBuckets = 64

// Histogram is a live log-bucketed latency accumulator. The zero value
// is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds recorded
}

// Record adds one duration. Negative durations clamp to zero. The call
// is two atomic adds and never allocates.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// bucketOf maps a nanosecond value to its bucket index: the value's bit
// length, so bucket i covers [2^(i-1), 2^i).
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketUpperNs is the inclusive upper bound reported for bucket i, in
// nanoseconds: 2^i - 1 (the largest value whose bit length is i).
func BucketUpperNs(i int) uint64 {
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Snapshot freezes the histogram into a value. Concurrent recorders may
// race individual buckets; each bucket read is atomic, so a snapshot
// taken mid-run is a consistent-enough lower bound per bucket.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumNs = h.sum.Load()
	return s
}

// Snapshot is a frozen histogram: the serializable, mergeable value
// behind stats tables, manifests, and /metrics.
type Snapshot struct {
	Counts [NumBuckets]uint64 `json:"counts"`
	Count  uint64             `json:"count"`
	SumNs  uint64             `json:"sum_ns"`
}

// Empty reports whether nothing was recorded.
func (s Snapshot) Empty() bool { return s.Count == 0 }

// Merge adds other into s bucket-by-bucket. Because every histogram
// shares the one fixed layout, merging worker snapshots is exactly the
// histogram of the concatenated samples.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.SumNs += other.SumNs
	return s
}

// Observe adds one duration to a frozen snapshot: the path used when a
// histogram is rebuilt from recorded spans rather than accumulated live.
func (s *Snapshot) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	s.Counts[bucketOf(ns)]++
	s.Count++
	s.SumNs += ns
}

// QuantileNs resolves quantile q (0 < q <= 1) to the upper bound of the
// bucket holding the q-th sample, in nanoseconds. An empty snapshot
// reports 0.
func (s Snapshot) QuantileNs(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	// The q-th sample by rank, ceiling: q=0.5 of 4 samples is rank 2.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(NumBuckets - 1)
}

// QuantileUS is QuantileNs in integer microseconds (rounding up below a
// microsecond so a nonzero latency never reports as 0).
func (s Snapshot) QuantileUS(q float64) int64 {
	ns := s.QuantileNs(q)
	if ns == 0 {
		return 0
	}
	us := ns / 1e3
	if us == 0 {
		us = 1
	}
	if us > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(us)
}

// QuantileSeconds is QuantileNs in float seconds, for /metrics.
func (s Snapshot) QuantileSeconds(q float64) float64 {
	return float64(s.QuantileNs(q)) / 1e9
}
