package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"binpart/internal/cache"
)

// debugSources holds what the expvar callbacks read. Set by ServeDebug;
// the callbacks are registered once per process (expvar.Publish panics on
// duplicates) and always read the latest sources.
var debugSources struct {
	mu     sync.Mutex
	rec    *Recorder
	caches func() map[string]cache.Stats
}

var publishOnce sync.Once

// ServeDebug starts an HTTP listener for long sweeps: /debug/vars serves
// expvar (including binpart.stages, the live per-stage span totals, and
// binpart.caches, the live cache counters) and /debug/pprof/* serves
// net/pprof. rec and caches may be nil. Returns the bound address (useful
// with ":0"); the listener runs until the process exits.
func ServeDebug(addr string, rec *Recorder, caches func() map[string]cache.Stats) (string, error) {
	debugSources.mu.Lock()
	debugSources.rec = rec
	debugSources.caches = caches
	debugSources.mu.Unlock()

	publishOnce.Do(func() {
		expvar.Publish("binpart.stages", expvar.Func(func() any {
			debugSources.mu.Lock()
			r := debugSources.rec
			debugSources.mu.Unlock()
			return r.StageTotals()
		}))
		expvar.Publish("binpart.caches", expvar.Func(func() any {
			debugSources.mu.Lock()
			f := debugSources.caches
			debugSources.mu.Unlock()
			if f == nil {
				return nil
			}
			return f()
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux) //nolint:errcheck // debug listener lives until process exit
	return ln.Addr().String(), nil
}
