package obs

import (
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"binpart/internal/cache"
	"binpart/internal/obs/hist"
)

// DebugSources is what the debug listener reads: the live recorder, the
// per-stage cache counters, the per-tier read-latency histograms, and
// the client-side remote-peer wire metrics. Every field may be nil —
// the corresponding metrics are simply absent.
type DebugSources struct {
	Rec           *Recorder
	Caches        func() map[string]cache.Stats
	TierLatencies func() map[string]map[string]hist.Snapshot
	Peers         func() []cache.PeerMetrics
}

// debugSources holds what the expvar callbacks read. Set by ServeDebug;
// the callbacks are registered once per process (expvar.Publish panics on
// duplicates) and always read the latest sources.
var debugSources struct {
	mu  sync.Mutex
	src DebugSources
}

var publishOnce sync.Once

// ServeDebug starts an HTTP listener for long sweeps: /debug/vars serves
// expvar (including binpart.stages, the live per-stage span totals, and
// binpart.caches, the live cache counters), /debug/pprof/* serves
// net/pprof, and /metrics serves the Prometheus text exposition —
// stage counters and latency summaries, per-tier cache latencies, and
// per-peer remote wire metrics. Returns the bound address (useful with
// ":0"); the listener runs until the process exits.
func ServeDebug(addr string, src DebugSources) (string, error) {
	debugSources.mu.Lock()
	debugSources.src = src
	debugSources.mu.Unlock()

	publishOnce.Do(func() {
		expvar.Publish("binpart.stages", expvar.Func(func() any {
			return currentSources().Rec.StageTotals()
		}))
		expvar.Publish("binpart.caches", expvar.Func(func() any {
			if f := currentSources().Caches; f != nil {
				return f()
			}
			return nil
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteMetrics(w, currentSources())
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux) //nolint:errcheck // debug listener lives until process exit
	return ln.Addr().String(), nil
}

func currentSources() DebugSources {
	debugSources.mu.Lock()
	defer debugSources.mu.Unlock()
	return debugSources.src
}

// WriteMetrics renders the sweep-side metrics in the Prometheus text
// exposition format: per-stage span counters, cache-outcome counters,
// and latency summaries; per-stage per-tier cache read latencies; and
// per-peer remote wire metrics. The cache server's own /metrics (see
// cache.Server.WriteMetrics) is the other half of the surface.
func WriteMetrics(w io.Writer, src DebugSources) {
	p := hist.NewProm(w)
	totals := src.Rec.StageTotals()
	for _, st := range totals {
		p.Counter("binpart_stage_spans_total", hist.Label("stage", st.Stage), float64(st.Spans))
	}
	for _, st := range totals {
		p.Counter("binpart_stage_wall_seconds_total", hist.Label("stage", st.Stage), float64(st.WallUS)/1e6)
	}
	for _, st := range totals {
		stage := hist.Label("stage", st.Stage)
		for _, oc := range []struct {
			name string
			n    uint64
		}{
			{"hit", st.Hit}, {"miss", st.Miss}, {"wait", st.Wait},
			{"disk", st.Disk}, {"remote", st.Remote}, {"rwait", st.RemoteWait},
			{"corrupt", st.Corrupt},
		} {
			if oc.n > 0 {
				p.Counter("binpart_stage_cache_outcomes_total",
					hist.Labels(stage, hist.Label("outcome", oc.name)), float64(oc.n))
			}
		}
	}
	for _, st := range totals {
		p.Summary("binpart_stage_latency_seconds", hist.Label("stage", st.Stage), st.Latency)
	}
	if src.Caches != nil {
		stats := src.Caches()
		names := sortedKeys(stats)
		// Group by family, not by cache: the exposition format wants
		// every sample of one family contiguous.
		for _, name := range names {
			p.Counter("binpart_cache_hits_total", hist.Label("cache", name), float64(stats[name].Hits))
		}
		for _, name := range names {
			p.Counter("binpart_cache_misses_total", hist.Label("cache", name), float64(stats[name].Misses))
		}
		for _, name := range names {
			p.Counter("binpart_cache_evictions_total", hist.Label("cache", name), float64(stats[name].Evictions))
		}
		for _, name := range names {
			p.Gauge("binpart_cache_entries", hist.Label("cache", name), float64(stats[name].Entries))
		}
	}
	if src.TierLatencies != nil {
		lats := src.TierLatencies()
		for _, name := range sortedKeys(lats) {
			tiers := lats[name]
			for _, tier := range sortedKeys(tiers) {
				p.Summary("binpart_cache_tier_latency_seconds",
					hist.Labels(hist.Label("cache", name), hist.Label("tier", tier)), tiers[tier])
			}
		}
	}
	if src.Peers != nil {
		peers := src.Peers()
		for _, pm := range peers {
			p.Counter("binpart_remote_peer_ops_total", hist.Label("peer", pm.Addr), float64(pm.Ops))
		}
		for _, pm := range peers {
			p.Counter("binpart_remote_peer_errs_total", hist.Label("peer", pm.Addr), float64(pm.Errs))
		}
		for _, pm := range peers {
			peer := hist.Label("peer", pm.Addr)
			p.Counter("binpart_remote_peer_bytes_total",
				hist.Labels(peer, hist.Label("direction", "in")), float64(pm.BytesIn))
			p.Counter("binpart_remote_peer_bytes_total",
				hist.Labels(peer, hist.Label("direction", "out")), float64(pm.BytesOut))
		}
		for _, pm := range peers {
			p.Summary("binpart_remote_peer_rtt_seconds", hist.Label("peer", pm.Addr), pm.RTT)
		}
	}
}

// sortedKeys orders a string-keyed map for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
