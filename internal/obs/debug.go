package obs

import (
	"context"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"binpart/internal/cache"
	"binpart/internal/obs/hist"
)

// DebugSources is what the debug listener reads: the live recorder, the
// per-stage cache counters, the per-tier read-latency histograms, and
// the client-side remote-peer wire metrics. Every field may be nil —
// the corresponding metrics are simply absent.
type DebugSources struct {
	Rec           *Recorder
	Caches        func() map[string]cache.Stats
	TierLatencies func() map[string]map[string]hist.Snapshot
	Peers         func() []cache.PeerMetrics
	// Extra, when set, is appended to the /metrics exposition after the
	// standard families — how a front-end (the bpartd daemon) publishes
	// its own counters through the shared ops surface.
	Extra func(io.Writer)
}

// debugSources holds what the expvar callbacks read. Set by ServeDebug;
// the callbacks are registered once per process (expvar.Publish panics on
// duplicates) and always read the latest sources.
var debugSources struct {
	mu  sync.Mutex
	src DebugSources
}

var publishOnce sync.Once

// DebugServer is the handle returned by ServeDebug: the ops listener on
// a properly configured http.Server. Callers register extra routes with
// Handle before traffic matters and tear the listener down with
// Shutdown (drains in-flight scrapes) or Close (abrupt).
type DebugServer struct {
	addr string
	mux  *http.ServeMux
	srv  *http.Server
	done chan struct{} // closed when the Serve goroutine returns
}

// ServeDebug starts an HTTP listener for long sweeps and daemons:
// /debug/vars serves expvar (including binpart.stages, the live
// per-stage span totals, and binpart.caches, the live cache counters),
// /debug/pprof/* serves net/pprof, and /metrics serves the Prometheus
// text exposition — stage counters and latency summaries, per-tier
// cache latencies, per-peer remote wire metrics, and whatever
// src.Extra appends. The listener runs on an http.Server with
// read-header and idle timeouts so a slow or stalled client cannot
// wedge it; stop it with Shutdown or Close on the returned handle.
func ServeDebug(addr string, src DebugSources) (*DebugServer, error) {
	debugSources.mu.Lock()
	debugSources.src = src
	debugSources.mu.Unlock()

	publishOnce.Do(func() {
		expvar.Publish("binpart.stages", expvar.Func(func() any {
			return currentSources().Rec.StageTotals()
		}))
		expvar.Publish("binpart.caches", expvar.Func(func() any {
			if f := currentSources().Caches; f != nil {
				return f()
			}
			return nil
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s := currentSources()
		WriteMetrics(w, s)
		if s.Extra != nil {
			s.Extra(w)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		addr: ln.Addr().String(),
		mux:  mux,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       time.Minute,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		d.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown/Close
	}()
	return d, nil
}

// Addr is the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr }

// Handle registers an extra route on the ops mux — how bpartd mounts
// /healthz and /readyz next to the shared /metrics and pprof surface.
func (d *DebugServer) Handle(pattern string, h http.Handler) { d.mux.Handle(pattern, h) }

// Shutdown stops accepting connections and drains in-flight requests,
// then waits for the serve loop to exit.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	err := d.srv.Shutdown(ctx)
	select {
	case <-d.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close tears the listener and all connections down immediately.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}

func currentSources() DebugSources {
	debugSources.mu.Lock()
	defer debugSources.mu.Unlock()
	return debugSources.src
}

// WriteMetrics renders the sweep-side metrics in the Prometheus text
// exposition format: per-stage span counters, cache-outcome counters,
// and latency summaries; per-stage per-tier cache read latencies; and
// per-peer remote wire metrics. The cache server's own /metrics (see
// cache.Server.WriteMetrics) is the other half of the surface.
func WriteMetrics(w io.Writer, src DebugSources) {
	p := hist.NewProm(w)
	totals := src.Rec.StageTotals()
	for _, st := range totals {
		p.Counter("binpart_stage_spans_total", hist.Label("stage", st.Stage), float64(st.Spans))
	}
	for _, st := range totals {
		p.Counter("binpart_stage_wall_seconds_total", hist.Label("stage", st.Stage), float64(st.WallUS)/1e6)
	}
	for _, st := range totals {
		stage := hist.Label("stage", st.Stage)
		for _, oc := range []struct {
			name string
			n    uint64
		}{
			{"hit", st.Hit}, {"miss", st.Miss}, {"wait", st.Wait},
			{"disk", st.Disk}, {"remote", st.Remote}, {"rwait", st.RemoteWait},
			{"corrupt", st.Corrupt},
		} {
			if oc.n > 0 {
				p.Counter("binpart_stage_cache_outcomes_total",
					hist.Labels(stage, hist.Label("outcome", oc.name)), float64(oc.n))
			}
		}
	}
	for _, st := range totals {
		p.Summary("binpart_stage_latency_seconds", hist.Label("stage", st.Stage), st.Latency)
	}
	if src.Caches != nil {
		stats := src.Caches()
		names := sortedKeys(stats)
		// Group by family, not by cache: the exposition format wants
		// every sample of one family contiguous.
		for _, name := range names {
			p.Counter("binpart_cache_hits_total", hist.Label("cache", name), float64(stats[name].Hits))
		}
		for _, name := range names {
			p.Counter("binpart_cache_misses_total", hist.Label("cache", name), float64(stats[name].Misses))
		}
		for _, name := range names {
			p.Counter("binpart_cache_evictions_total", hist.Label("cache", name), float64(stats[name].Evictions))
		}
		for _, name := range names {
			p.Gauge("binpart_cache_entries", hist.Label("cache", name), float64(stats[name].Entries))
		}
	}
	if src.TierLatencies != nil {
		lats := src.TierLatencies()
		for _, name := range sortedKeys(lats) {
			tiers := lats[name]
			for _, tier := range sortedKeys(tiers) {
				p.Summary("binpart_cache_tier_latency_seconds",
					hist.Labels(hist.Label("cache", name), hist.Label("tier", tier)), tiers[tier])
			}
		}
	}
	if src.Peers != nil {
		peers := src.Peers()
		for _, pm := range peers {
			p.Counter("binpart_remote_peer_ops_total", hist.Label("peer", pm.Addr), float64(pm.Ops))
		}
		for _, pm := range peers {
			p.Counter("binpart_remote_peer_errs_total", hist.Label("peer", pm.Addr), float64(pm.Errs))
		}
		for _, pm := range peers {
			peer := hist.Label("peer", pm.Addr)
			p.Counter("binpart_remote_peer_bytes_total",
				hist.Labels(peer, hist.Label("direction", "in")), float64(pm.BytesIn))
			p.Counter("binpart_remote_peer_bytes_total",
				hist.Labels(peer, hist.Label("direction", "out")), float64(pm.BytesOut))
		}
		for _, pm := range peers {
			p.Summary("binpart_remote_peer_rtt_seconds", hist.Label("peer", pm.Addr), pm.RTT)
		}
	}
}

// sortedKeys orders a string-keyed map for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
