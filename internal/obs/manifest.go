package obs

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"binpart/internal/cache"
)

// Manifest is the run record written alongside sweep output: what ran
// (tool, arguments, toolchain, source revision), how long it took, the
// per-stage span totals, and the cache accounting. The cache numbers are
// snapshots of the same counters -cachestats/-stats print, so a manifest
// reconciles exactly with the stats table of the run that produced it.
type Manifest struct {
	Tool    string                 `json:"tool"`
	Trace   string                 `json:"trace,omitempty"`
	Args    []string               `json:"args,omitempty"`
	Go      string                 `json:"go"`
	OS      string                 `json:"os"`
	Arch    string                 `json:"arch"`
	Git     string                 `json:"git,omitempty"`
	Start   time.Time              `json:"start"`
	WallUS  int64                  `json:"wall_us"`
	Workers int                    `json:"workers"`
	Spans   int                    `json:"spans"`
	Stages  []StageTotal           `json:"stages,omitempty"`
	Caches  map[string]cache.Stats `json:"caches,omitempty"`
	// Interrupted marks a run cut short by a signal: the manifest and
	// trace cover only the work that finished before the cancel.
	Interrupted bool `json:"interrupted,omitempty"`
}

// BuildManifest assembles a manifest from a finished run. rec may be nil
// (no spans were recorded); caches may be nil (caching was disabled).
func BuildManifest(tool string, args []string, workers int, rec *Recorder, caches map[string]cache.Stats) Manifest {
	m := Manifest{
		Tool:    tool,
		Args:    args,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Git:     GitDescribe("."),
		Workers: workers,
		Caches:  caches,
	}
	if rec != nil {
		m.Trace = rec.TraceID()
		m.Start = rec.epoch
		m.WallUS = time.Since(rec.epoch).Microseconds()
		m.Stages = rec.StageTotals()
		for _, st := range m.Stages {
			m.Spans += st.Spans
		}
	}
	return m
}

// Write marshals the manifest as indented JSON to path.
func (m Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GitDescribe identifies the source revision under dir, best effort:
// `git describe --always --dirty --tags`, falling back to "" when git or
// the repository is unavailable (manifests must never fail a run).
func GitDescribe(dir string) string {
	cmd := exec.Command("git", "describe", "--always", "--dirty", "--tags")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
