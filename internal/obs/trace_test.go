package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"binpart/internal/cache"
)

// traceWithSpans builds a recorder with n synthetic spans and returns
// its trace-file form.
func traceWithSpans(t *testing.T, trace, proc string, n int, outcome cache.Outcome) *Recorder {
	t.Helper()
	rec := NewRecorder()
	rec.SetTrace(trace, proc)
	sc := rec.Scope("fir", 0, 0)
	for i := 0; i < n; i++ {
		sp := sc.Start(StageSim)
		sp.SetOutcome(outcome)
		sp.End()
	}
	return rec
}

// TestTraceGzipRoundTrip is the satellite contract: a .gz trace path
// compresses transparently, and ReadTrace recovers the exact stream —
// header, spans, and the cache trailer.
func TestTraceGzipRoundTrip(t *testing.T) {
	for _, name := range []string{"t.jsonl", "t.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			tw, err := CreateTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			rec := traceWithSpans(t, "abc123", "1/2", 4, cache.OutcomeMiss)
			rec.StreamTo(tw.Writer())
			// Re-emit the spans recorded before streaming started by
			// writing them through a fresh pass: StreamTo only mirrors
			// spans emitted after it, so emit live ones too.
			sc := rec.Scope("brev", 2, 1)
			sp := sc.Start(StageLift)
			sp.SetOutcome(cache.OutcomeHit)
			sp.End()
			rec.EmitCaches(map[string]cache.Stats{"sim": {Hits: 1, Misses: 4}})
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := tw.Close(); err != nil {
				t.Fatal(err)
			}

			tf, err := ReadTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			if tf.Trace != "abc123" || tf.Proc != "1/2" || tf.EpochUnixUS == 0 {
				t.Errorf("header lost: %+v", tf)
			}
			if len(tf.Spans) != 1 {
				t.Fatalf("got %d streamed spans, want 1", len(tf.Spans))
			}
			sp0 := tf.Spans[0]
			if sp0.Stage != StageLift || sp0.Bench != "brev" || sp0.Trace != "abc123" || sp0.Proc != "1/2" {
				t.Errorf("span lost fields: %+v", sp0)
			}
			if tf.Caches["sim"].Misses != 4 {
				t.Errorf("cache trailer lost: %+v", tf.Caches)
			}
		})
	}
}

// TestMergeTraces merges a parent part and two worker files: every span
// must carry the shared trace ID and its process label, timestamps must
// land on the earliest epoch's timeline in sorted order, and the summed
// cache stats must reconcile against the merged span outcomes.
func TestMergeTraces(t *testing.T) {
	mkPart := func(proc string, epoch int64, starts []int64, outcome string) *TraceFile {
		tf := &TraceFile{Trace: "run1", Proc: proc, EpochUnixUS: epoch}
		for _, s := range starts {
			tf.Spans = append(tf.Spans, SpanRecord{
				Stage: StageSim, StartUS: s, DurUS: 10, Cache: outcome,
			})
		}
		return tf
	}
	parent := mkPart("parent", 1_000_000, []int64{50}, "hit")
	w0 := mkPart("0/2", 1_000_100, []int64{0, 30}, "miss")
	w1 := mkPart("1/2", 999_900, []int64{10}, "remote")
	parent.Caches = map[string]cache.Stats{"sim": {Hits: 1}}
	w0.Caches = map[string]cache.Stats{"sim": {Misses: 2}}
	w1.Caches = map[string]cache.Stats{"sim": {Hits: 1, RemoteHits: 1}}

	merged, err := MergeTraces([]*TraceFile{parent, w0, w1})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Trace != "run1" || merged.EpochUnixUS != 999_900 {
		t.Errorf("merged header: %+v", merged)
	}
	if len(merged.Spans) != 4 {
		t.Fatalf("merged %d spans, want 4", len(merged.Spans))
	}
	var prev int64 = -1
	procs := map[string]int{}
	for _, sp := range merged.Spans {
		if sp.Trace != "run1" {
			t.Errorf("span lost trace ID: %+v", sp)
		}
		if sp.StartUS < prev {
			t.Errorf("spans out of order: %d after %d", sp.StartUS, prev)
		}
		prev = sp.StartUS
		procs[sp.Proc]++
	}
	if procs["parent"] != 1 || procs["0/2"] != 2 || procs["1/2"] != 1 {
		t.Errorf("proc tags = %v", procs)
	}
	// w1's epoch is the earliest; its span keeps StartUS 10. w0's spans
	// shift by +200, the parent's by +100.
	if got := merged.Spans[0].StartUS; got != 10 {
		t.Errorf("first span start = %d, want 10", got)
	}
	if s := merged.Caches["sim"]; s.Hits != 2 || s.Misses != 2 || s.RemoteHits != 1 {
		t.Errorf("summed caches = %+v", s)
	}
	if err := merged.Reconcile(); err != nil {
		t.Errorf("merged trace failed reconciliation: %v", err)
	}
}

// TestMergeTraceIDMismatch: merging parts of different runs must fail
// loudly, not produce a chimera trace.
func TestMergeTraceIDMismatch(t *testing.T) {
	a := &TraceFile{Trace: "run1"}
	b := &TraceFile{Trace: "run2", Proc: "0/2"}
	if _, err := MergeTraces([]*TraceFile{a, b}); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("merge of different runs: err = %v, want trace ID mismatch", err)
	}
	if _, err := MergeTraces(nil); err == nil {
		t.Fatal("merge of nothing succeeded")
	}
	if _, err := MergeTraces([]*TraceFile{{}}); err == nil {
		t.Fatal("merge of untagged part succeeded")
	}
}

// TestReconcileDetectsDrift: a trace whose span outcomes disagree with
// its cache accounting must fail Reconcile with the stage named.
func TestReconcileDetectsDrift(t *testing.T) {
	tf := &TraceFile{
		Trace: "run1",
		Spans: []SpanRecord{
			{Stage: StageSim, Cache: "hit"},
			{Stage: StageSim, Cache: "miss"},
		},
		Caches: map[string]cache.Stats{"sim": {Hits: 2, Misses: 1}},
	}
	err := tf.Reconcile()
	if err == nil || !strings.Contains(err.Error(), "sim") {
		t.Fatalf("drifted trace reconciled: %v", err)
	}
	tf.Caches["sim"] = cache.Stats{Hits: 1, Misses: 1}
	if err := tf.Reconcile(); err != nil {
		t.Fatalf("consistent trace failed: %v", err)
	}
	// The analyze stage reports under the "analysis" cache key.
	tf.Spans = append(tf.Spans, SpanRecord{Stage: StageAnalyze, Cache: "disk"})
	tf.Caches["analysis"] = cache.Stats{Hits: 1}
	if err := tf.Reconcile(); err != nil {
		t.Fatalf("analyze/analysis mapping broken: %v", err)
	}
	if (&TraceFile{}).Reconcile() == nil {
		t.Fatal("trace without accounting reconciled")
	}
}

// TestMergedPercentilesAreBucketExact: stage percentiles computed from a
// merged trace must equal those computed from the concatenated spans —
// the histogram-merge property surfaced at the trace level.
func TestMergedPercentilesAreBucketExact(t *testing.T) {
	var all []SpanRecord
	parts := make([]*TraceFile, 3)
	for p := range parts {
		parts[p] = &TraceFile{Trace: "run1", Proc: "w", EpochUnixUS: 1}
		for i := 0; i < 50; i++ {
			sp := SpanRecord{Stage: StageSynth, DurUS: int64((p + 1) * (i + 1) * 37)}
			parts[p].Spans = append(parts[p].Spans, sp)
			all = append(all, sp)
		}
	}
	merged, err := MergeTraces(parts)
	if err != nil {
		t.Fatal(err)
	}
	got := AggregateRecords(merged.Spans)
	want := AggregateRecords(all)
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("aggregation shape: %d vs %d stages", len(got), len(want))
	}
	if got[0].P50US != want[0].P50US || got[0].P90US != want[0].P90US || got[0].P99US != want[0].P99US {
		t.Errorf("merged percentiles %d/%d/%d != concatenated %d/%d/%d",
			got[0].P50US, got[0].P90US, got[0].P99US,
			want[0].P50US, want[0].P90US, want[0].P99US)
	}
	if got[0].Latency != want[0].Latency {
		t.Errorf("merged latency histogram differs from concatenated")
	}
}

// TestFormatStageTablePercentiles checks the -stats table renders the
// new percentile columns.
func TestFormatStageTablePercentiles(t *testing.T) {
	rec := NewRecorder()
	sc := rec.Scope("fir", 0, 0)
	sp := sc.Start(StageSim)
	time.Sleep(time.Millisecond)
	sp.End()
	table := rec.Table()
	for _, want := range []string{"p50(us)", "p90(us)", "p99(us)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	totals := rec.StageTotals()
	if totals[0].P99US < 1000 {
		t.Errorf("1ms span reports p99 %dus", totals[0].P99US)
	}
}
