package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"binpart/internal/cache"
	"binpart/internal/obs/hist"
)

// TestNilDisabledPath checks the whole disabled surface: a nil recorder
// hands out nil scopes, nil scopes start inert spans, and every method is
// a safe no-op.
func TestNilDisabledPath(t *testing.T) {
	var rec *Recorder
	sc := rec.Scope("bench", 2, 1)
	if sc != nil {
		t.Fatalf("nil recorder returned a live scope")
	}
	sp := sc.Start(StageSim)
	sp.SetOutcome(cache.OutcomeHit)
	sp.SetInstrs(1)
	sp.SetRegions(2)
	sp.SetSelected(3)
	sp.End()

	if got := rec.Spans(); got != nil {
		t.Errorf("nil recorder spans = %v", got)
	}
	if got := rec.StageTotals(); got != nil {
		t.Errorf("nil recorder totals = %v", got)
	}
	if err := rec.Flush(); err != nil {
		t.Errorf("nil recorder flush = %v", err)
	}
	rec.StreamTo(&bytes.Buffer{})
}

// TestDisabledPathAllocs pins the contract the Stage* benchmark gates
// depend on: with recording off, the full span protocol allocates nothing.
func TestDisabledPathAllocs(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		sc := rec.Scope("bench", 2, 1)
		sp := sc.Start(StageSim)
		sp.SetOutcome(cache.OutcomeMiss)
		sp.SetInstrs(42)
		sp.SetRegions(7)
		sp.SetSelected(1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.0f per run, want 0", allocs)
	}
}

// TestSpanRecordingAndAggregation drives a recorder through a synthetic
// two-benchmark run and checks the per-stage totals, ordering, and the
// rendered table.
func TestSpanRecordingAndAggregation(t *testing.T) {
	rec := NewRecorder()
	a := rec.Scope("fir", 0, 0)
	b := rec.Scope("brev", 2, 1)

	sp := a.Start(StageSim)
	sp.SetOutcome(cache.OutcomeMiss)
	sp.SetInstrs(1000)
	sp.End()

	sp = b.Start(StageSim)
	sp.SetOutcome(cache.OutcomeHit)
	sp.SetInstrs(500)
	sp.End()

	sp = a.Start(StageLift)
	sp.SetOutcome(cache.OutcomeDisk)
	sp.SetRegions(3)
	sp.End()

	sp = b.Start(StageEvaluate)
	sp.SetSelected(2)
	sp.End()

	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[1].Bench != "brev" || spans[1].Level != 2 || spans[1].Worker != 1 {
		t.Errorf("attribution lost: %+v", spans[1])
	}

	totals := rec.StageTotals()
	order := make([]string, len(totals))
	byStage := map[string]StageTotal{}
	for i, st := range totals {
		order[i] = st.Stage
		byStage[st.Stage] = st
	}
	want := []string{StageSim, StageLift, StageEvaluate}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("stage order = %v, want %v", order, want)
	}
	sim := byStage[StageSim]
	if sim.Spans != 2 || sim.Hit != 1 || sim.Miss != 1 || sim.Instrs != 1500 {
		t.Errorf("sim totals = %+v", sim)
	}
	if lift := byStage[StageLift]; lift.Disk != 1 || lift.Regions != 3 {
		t.Errorf("lift totals = %+v", lift)
	}
	if ev := byStage[StageEvaluate]; ev.Selected != 2 {
		t.Errorf("evaluate totals = %+v", ev)
	}

	table := rec.Table()
	for _, want := range []string{"sim", "lift", "evaluate", "1500 instructions simulated", "3 regions recovered", "2 selected"} {
		if !bytes.Contains([]byte(table), []byte(want)) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestStreamJSONL checks the -trace surface: a meta header line carrying
// the trace context, then one JSON object per span, in emission order,
// with the documented field names.
func TestStreamJSONL(t *testing.T) {
	rec := NewRecorder()
	rec.SetTrace("deadbeef", "0/2")
	var buf bytes.Buffer
	rec.StreamTo(&buf)

	sc := rec.Scope("fir", 1, 3)
	for i := 0; i < 5; i++ {
		sp := sc.Start(StageSynth)
		sp.SetOutcome(cache.OutcomeMiss)
		sp.End()
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	scanner := bufio.NewScanner(&buf)
	n, metas := 0, 0
	for scanner.Scan() {
		var line struct {
			Meta   string `json:"meta"`
			Stage  string `json:"stage"`
			Bench  string `json:"bench"`
			Level  int    `json:"opt"`
			Worker int    `json:"worker"`
			Trace  string `json:"trace"`
			Proc   string `json:"proc"`
			Epoch  int64  `json:"epoch_unix_us"`
			Cache  string `json:"cache"`
			DurUS  *int64 `json:"dur_us"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if line.Meta != "" {
			if metas != 0 || n != 0 {
				t.Errorf("meta line %q after %d spans, want exactly one header", line.Meta, n)
			}
			if line.Meta != MetaTrace || line.Trace != "deadbeef" || line.Proc != "0/2" || line.Epoch == 0 {
				t.Errorf("bad stream header: %+v", line)
			}
			metas++
			continue
		}
		if line.Stage != StageSynth || line.Bench != "fir" || line.Level != 1 || line.Worker != 3 {
			t.Errorf("line %d attribution: %+v", n, line)
		}
		if line.Trace != "deadbeef" || line.Proc != "0/2" {
			t.Errorf("line %d trace tags: %+v", n, line)
		}
		if line.Cache != "miss" {
			t.Errorf("line %d cache = %q, want miss", n, line.Cache)
		}
		if line.DurUS == nil {
			t.Errorf("line %d missing dur_us", n)
		}
		n++
	}
	if metas != 1 || n != 5 {
		t.Errorf("streamed %d meta + %d span lines, want 1 + 5", metas, n)
	}
}

// TestManifestRoundTrip builds a manifest from a live recorder and cache
// snapshot, writes it, reads it back, and checks the reconciliation
// surface: span totals and cache counters survive the round trip exactly.
func TestManifestRoundTrip(t *testing.T) {
	rec := NewRecorder()
	sc := rec.Scope("fir", 0, 0)
	sp := sc.Start(StageSim)
	sp.SetOutcome(cache.OutcomeMiss)
	sp.SetInstrs(123)
	sp.End()
	sp = sc.Start(StageLift)
	sp.SetOutcome(cache.OutcomeHit)
	sp.End()

	caches := map[string]cache.Stats{
		"sim":  {Hits: 0, Misses: 1},
		"lift": {Hits: 1, Misses: 0},
	}
	m := BuildManifest("test", []string{"-table", "1"}, 4, rec, caches)
	if m.Spans != 2 {
		t.Errorf("manifest spans = %d, want 2", m.Spans)
	}
	if m.Workers != 4 || m.Tool != "test" {
		t.Errorf("manifest header = %+v", m)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spans != m.Spans || len(back.Stages) != len(m.Stages) {
		t.Errorf("round trip lost stages: %+v vs %+v", back, m)
	}
	if fmt.Sprint(back.Caches) != fmt.Sprint(caches) {
		t.Errorf("round trip lost cache stats: %+v vs %+v", back.Caches, caches)
	}
}

// TestBuildManifestNil checks the degenerate inputs the CLIs can produce:
// no recorder and no caches must still yield a writable manifest.
func TestBuildManifestNil(t *testing.T) {
	m := BuildManifest("test", nil, 1, nil, nil)
	if m.Spans != 0 || m.Stages != nil {
		t.Errorf("nil recorder produced stages: %+v", m)
	}
	if err := m.Write(filepath.Join(t.TempDir(), "m.json")); err != nil {
		t.Fatal(err)
	}
}

// TestServeDebug smoke-tests the -debug-addr listener: expvar must serve
// the live per-stage totals and cache counters, and /metrics the
// Prometheus exposition with stage, tier, and peer series.
func TestServeDebug(t *testing.T) {
	rec := NewRecorder()
	sp := rec.Scope("fir", 0, 0).Start(StageSim)
	sp.End()

	dbg, err := ServeDebug("127.0.0.1:0", DebugSources{
		Rec: rec,
		Caches: func() map[string]cache.Stats {
			return map[string]cache.Stats{"sim": {Hits: 7}}
		},
		TierLatencies: func() map[string]map[string]hist.Snapshot {
			var s hist.Snapshot
			s.Observe(3 * time.Millisecond)
			return map[string]map[string]hist.Snapshot{"sim": {"disk": s}}
		},
		Peers: func() []cache.PeerMetrics {
			var rtt hist.Snapshot
			rtt.Observe(time.Millisecond)
			return []cache.PeerMetrics{{Addr: "127.0.0.1:9736", Ops: 3, RTT: rtt}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	addr := dbg.Addr()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Stages []StageTotal           `json:"binpart.stages"`
		Caches map[string]cache.Stats `json:"binpart.caches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if len(vars.Stages) != 1 || vars.Stages[0].Stage != StageSim {
		t.Errorf("expvar stages = %+v", vars.Stages)
	}
	if vars.Caches["sim"].Hits != 7 {
		t.Errorf("expvar caches = %+v", vars.Caches)
	}

	mresp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`binpart_stage_spans_total{stage="sim"} 1`,
		`binpart_cache_hits_total{cache="sim"} 7`,
		`binpart_stage_latency_seconds{stage="sim",quantile="0.5"}`,
		`binpart_stage_latency_seconds{stage="sim",quantile="0.95"}`,
		`binpart_stage_latency_seconds{stage="sim",quantile="0.99"}`,
		`binpart_cache_tier_latency_seconds{cache="sim",tier="disk",quantile="0.99"}`,
		`binpart_remote_peer_ops_total{peer="127.0.0.1:9736"} 3`,
		`binpart_remote_peer_rtt_seconds{peer="127.0.0.1:9736",quantile="0.5"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestSpanOutcomeReconciliation pins the span↔counter invariant the
// manifest property test in exper relies on: per cache, summing span
// outcomes must reproduce the aggregate Stats exactly.
func TestSpanOutcomeReconciliation(t *testing.T) {
	c := cache.New[int](8)
	rec := NewRecorder()
	sc := rec.Scope("x", 0, 0)
	key := func(i int) cache.Key { return cache.NewHasher("t").Int(int64(i)).Sum() }

	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			sp := sc.Start(StageSim)
			_, out, err := c.GetOrComputeOutcome(key(i), func() (int, error) { return i, nil })
			if err != nil {
				t.Fatal(err)
			}
			sp.SetOutcome(out)
			sp.End()
		}
	}

	st := rec.StageTotals()[0]
	s := c.Stats()
	if st.Hit+st.Wait+st.Disk+st.Remote+st.RemoteWait != s.Hits {
		t.Errorf("span hits %d+%d+%d+%d+%d != cache hits %d",
			st.Hit, st.Wait, st.Disk, st.Remote, st.RemoteWait, s.Hits)
	}
	if st.Miss+st.Corrupt != s.Misses {
		t.Errorf("span misses %d+%d != cache misses %d", st.Miss, st.Corrupt, s.Misses)
	}
}
