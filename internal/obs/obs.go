// Package obs is the pipeline's observability layer: stage-scoped spans,
// per-stage aggregation, run manifests, and a debug HTTP listener.
//
// A Recorder collects Spans — one per pipeline stage execution, tagged
// with the benchmark, optimization level, worker id, wall time, cache
// outcome, and the stage's key counters — from the flow (core.Analyze /
// core.Evaluate), the content-addressed stage caches, and the experiment
// executor. A nil *Recorder (and the nil *Scope it hands out) is the
// disabled fast path: every method returns immediately and allocates
// nothing, so threading observability through the hot pipeline costs a
// pointer test when it is off. The cmd/benchjson Stage* allocs/op gates
// hold the disabled path to zero overhead.
//
// Spans surface three ways: streamed as JSONL while the run executes
// (-trace), aggregated into a per-stage table at exit (-stats), and
// folded into a run manifest written alongside sweep output (-manifest,
// see manifest.go). For long sweeps, ServeDebug (debug.go) exposes the
// same aggregates over expvar plus net/pprof.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"binpart/internal/cache"
)

// Canonical stage names. The pipeline emits exactly these; the table and
// manifest render them in pipeline order.
const (
	StageJob      = "job"      // one sweep point end to end (executor)
	StageAnalyze  = "analyze"  // assembled platform-independent analysis
	StageCompile  = "compile"  // MicroC compilation
	StageSim      = "sim"      // profiling simulation
	StageLift     = "lift"     // decompile + decompiler optimizations
	StageSynth    = "synth"    // behavioral synthesis of one region
	StageEvaluate = "evaluate" // price + partition + platform evaluation
)

// stageRank orders known stages pipeline-first; unknown stages sort after
// by name, so the table and manifest are deterministic at any worker count.
var stageRank = map[string]int{
	StageJob:      0,
	StageAnalyze:  1,
	StageCompile:  2,
	StageSim:      3,
	StageLift:     4,
	StageSynth:    5,
	StageEvaluate: 6,
}

// Span is one recorded stage execution. The exported fields are the trace
// schema; Start/Dur are filled in by End.
type Span struct {
	rec   *Recorder
	begin time.Time

	Stage  string
	Bench  string // benchmark name or input path ("" if not attributable)
	Level  int    // compiler optimization level (-1 when unknown)
	Worker int    // executor worker id (0 for serial / unpooled work)
	// Start is the span's offset from the recorder's epoch; Dur its wall
	// time. Both are set by End.
	Start time.Duration
	Dur   time.Duration
	// Outcome is the stage-cache outcome (OutcomeNone for uncached work).
	Outcome cache.Outcome
	// Engine is the simulator engine that produced a sim span ("" for
	// stages where the engine is irrelevant).
	Engine string
	// Counters. Zero means "not applicable" and is omitted from the trace.
	Instrs   uint64 // instructions simulated
	Regions  uint64 // regions/functions recovered (lift), candidates (analyze)
	Selected uint64 // regions partitioned to hardware
}

// SetOutcome records the stage-cache outcome.
func (s *Span) SetOutcome(o cache.Outcome) {
	if s.rec == nil {
		return
	}
	s.Outcome = o
}

// SetEngine records the simulator engine behind a sim span.
func (s *Span) SetEngine(engine string) {
	if s.rec == nil {
		return
	}
	s.Engine = engine
}

// SetInstrs records instructions simulated.
func (s *Span) SetInstrs(n uint64) {
	if s.rec == nil {
		return
	}
	s.Instrs = n
}

// SetRegions records regions recovered / candidates built.
func (s *Span) SetRegions(n uint64) {
	if s.rec == nil {
		return
	}
	s.Regions = n
}

// SetSelected records regions partitioned to hardware.
func (s *Span) SetSelected(n uint64) {
	if s.rec == nil {
		return
	}
	s.Selected = n
}

// End stamps the span's duration and emits it to the recorder. A span
// from a nil scope is a no-op.
func (s *Span) End() {
	if s.rec == nil {
		return
	}
	now := time.Now()
	s.Dur = now.Sub(s.begin)
	s.Start = s.begin.Sub(s.rec.epoch)
	s.rec.emit(*s)
}

// Scope carries the attribution attributes — benchmark, opt level, worker
// id — that every span under one sweep point shares. A nil *Scope is the
// disabled path; it starts inert spans and costs one pointer test.
type Scope struct {
	r      *Recorder
	bench  string
	level  int
	worker int
}

// Start opens a span for one stage execution under this scope.
func (s *Scope) Start(stage string) Span {
	if s == nil {
		return Span{}
	}
	return Span{
		rec:    s.r,
		begin:  time.Now(),
		Stage:  stage,
		Bench:  s.bench,
		Level:  s.level,
		Worker: s.worker,
	}
}

// Recorder collects spans from a run. Safe for concurrent use by every
// worker of a sweep. The zero value is not usable; create with
// NewRecorder. A nil *Recorder is the disabled fast path.
type Recorder struct {
	epoch time.Time

	mu        sync.Mutex
	spans     []Span
	bw        *bufio.Writer
	enc       *json.Encoder
	streamErr error
}

// NewRecorder starts a recorder; its epoch is the creation time.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Scope returns span attribution for one sweep point. bench may be a
// benchmark name or an input path; level is the compiler optimization
// level (-1 when unknown); worker is the executor worker id. On a nil
// recorder it returns nil, the disabled scope.
func (r *Recorder) Scope(bench string, level, worker int) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, bench: bench, level: level, worker: worker}
}

// StreamTo mirrors every span to w as one JSON object per line, in
// emission order (see spanJSON for the schema). Call before the run
// starts; finish with Flush.
func (r *Recorder) StreamTo(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.bw = bufio.NewWriter(w)
	r.enc = json.NewEncoder(r.bw)
	r.mu.Unlock()
}

// Flush drains the stream buffer and reports the first stream error.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bw != nil {
		if err := r.bw.Flush(); err != nil && r.streamErr == nil {
			r.streamErr = err
		}
	}
	return r.streamErr
}

// spanJSON is the trace line schema. Durations are integer microseconds:
// stable to diff, trivial to load into anything.
type spanJSON struct {
	Stage    string `json:"stage"`
	Bench    string `json:"bench,omitempty"`
	Level    int    `json:"opt"`
	Worker   int    `json:"worker"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Cache    string `json:"cache,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Instrs   uint64 `json:"instrs,omitempty"`
	Regions  uint64 `json:"regions,omitempty"`
	Selected uint64 `json:"selected,omitempty"`
}

func (s *Span) toJSON() spanJSON {
	return spanJSON{
		Stage:    s.Stage,
		Bench:    s.Bench,
		Level:    s.Level,
		Worker:   s.Worker,
		StartUS:  s.Start.Microseconds(),
		DurUS:    s.Dur.Microseconds(),
		Cache:    s.Outcome.String(),
		Engine:   s.Engine,
		Instrs:   s.Instrs,
		Regions:  s.Regions,
		Selected: s.Selected,
	}
}

func (r *Recorder) emit(sp Span) {
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	if r.enc != nil {
		if err := r.enc.Encode(sp.toJSON()); err != nil && r.streamErr == nil {
			r.streamErr = err
		}
	}
	r.mu.Unlock()
}

// Spans returns a snapshot copy of every span recorded so far.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// StageTotal aggregates every span of one stage: span count, total wall
// time, cache outcomes, and counter sums.
type StageTotal struct {
	Stage      string `json:"stage"`
	Spans      int    `json:"spans"`
	WallUS     int64  `json:"wall_us"`
	Hit        uint64 `json:"hit"`
	Miss       uint64 `json:"miss"`
	Wait       uint64 `json:"wait"`
	Disk       uint64 `json:"disk"`
	Remote     uint64 `json:"remote"`
	RemoteWait uint64 `json:"rwait"`
	Corrupt    uint64 `json:"corrupt"`
	Instrs     uint64 `json:"instrs,omitempty"`
	Regions    uint64 `json:"regions,omitempty"`
	Selected   uint64 `json:"selected,omitempty"`
}

// StageTotals aggregates the recorded spans per stage, in pipeline order
// (unknown stages after, by name). A nil recorder returns nil.
func (r *Recorder) StageTotals() []StageTotal {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	byStage := map[string]*StageTotal{}
	for i := range r.spans {
		sp := &r.spans[i]
		st := byStage[sp.Stage]
		if st == nil {
			st = &StageTotal{Stage: sp.Stage}
			byStage[sp.Stage] = st
		}
		st.Spans++
		st.WallUS += sp.Dur.Microseconds()
		switch sp.Outcome {
		case cache.OutcomeHit:
			st.Hit++
		case cache.OutcomeMiss:
			st.Miss++
		case cache.OutcomeWait:
			st.Wait++
		case cache.OutcomeDisk:
			st.Disk++
		case cache.OutcomeRemote:
			st.Remote++
		case cache.OutcomeRemoteWait:
			st.RemoteWait++
		case cache.OutcomeCorrupt:
			st.Corrupt++
		}
		st.Instrs += sp.Instrs
		st.Regions += sp.Regions
		st.Selected += sp.Selected
	}
	r.mu.Unlock()

	out := make([]StageTotal, 0, len(byStage))
	for _, st := range byStage {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := stageRank[out[i].Stage]
		rj, jKnown := stageRank[out[j].Stage]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown != jKnown:
			return iKnown
		default:
			return out[i].Stage < out[j].Stage
		}
	})
	return out
}

// Table renders the per-stage aggregation as the -stats text table.
func (r *Recorder) Table() string {
	if r == nil {
		return "obs: disabled\n"
	}
	totals := r.StageTotals()
	var b strings.Builder
	b.WriteString("obs    stage     spans   wall(ms)    hit   miss   wait   disk remote  rwait corrupt\n")
	var instrs, regions, selected uint64
	for _, st := range totals {
		fmt.Fprintf(&b, "obs    %-8s %6d %10.1f %6d %6d %6d %6d %6d %6d %7d\n",
			st.Stage, st.Spans, float64(st.WallUS)/1e3,
			st.Hit, st.Miss, st.Wait, st.Disk, st.Remote, st.RemoteWait, st.Corrupt)
		instrs += st.Instrs
		regions += st.Regions
		selected += st.Selected
	}
	fmt.Fprintf(&b, "obs    counters: %d instructions simulated, %d regions recovered, %d selected for hardware\n",
		instrs, regions, selected)
	return b.String()
}
