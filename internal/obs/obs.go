// Package obs is the pipeline's observability layer: stage-scoped spans,
// per-stage aggregation, run manifests, and a debug HTTP listener.
//
// A Recorder collects Spans — one per pipeline stage execution, tagged
// with the benchmark, optimization level, worker id, wall time, cache
// outcome, and the stage's key counters — from the flow (core.Analyze /
// core.Evaluate), the content-addressed stage caches, and the experiment
// executor. A nil *Recorder (and the nil *Scope it hands out) is the
// disabled fast path: every method returns immediately and allocates
// nothing, so threading observability through the hot pipeline costs a
// pointer test when it is off. The cmd/benchjson Stage* allocs/op gates
// hold the disabled path to zero overhead.
//
// Spans surface three ways: streamed as JSONL while the run executes
// (-trace), aggregated into a per-stage table at exit (-stats), and
// folded into a run manifest written alongside sweep output (-manifest,
// see manifest.go). For long sweeps, ServeDebug (debug.go) exposes the
// same aggregates over expvar plus net/pprof.
package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"binpart/internal/cache"
	"binpart/internal/obs/hist"
)

// Canonical stage names. The pipeline emits exactly these; the table and
// manifest render them in pipeline order.
const (
	StageJob      = "job"      // one sweep point end to end (executor)
	StageAnalyze  = "analyze"  // assembled platform-independent analysis
	StageCompile  = "compile"  // MicroC compilation
	StageSim      = "sim"      // profiling simulation
	StageLift     = "lift"     // decompile + decompiler optimizations
	StageSynth    = "synth"    // behavioral synthesis of one region
	StageEvaluate = "evaluate" // price + partition + platform evaluation
)

// stageRank orders known stages pipeline-first; unknown stages sort after
// by name, so the table and manifest are deterministic at any worker count.
var stageRank = map[string]int{
	StageJob:      0,
	StageAnalyze:  1,
	StageCompile:  2,
	StageSim:      3,
	StageLift:     4,
	StageSynth:    5,
	StageEvaluate: 6,
}

// Span is one recorded stage execution. The exported fields are the trace
// schema; Start/Dur are filled in by End.
type Span struct {
	rec   *Recorder
	begin time.Time

	Stage  string
	Bench  string // benchmark name or input path ("" if not attributable)
	Level  int    // compiler optimization level (-1 when unknown)
	Worker int    // executor worker id (0 for serial / unpooled work)
	// Start is the span's offset from the recorder's epoch; Dur its wall
	// time. Both are set by End.
	Start time.Duration
	Dur   time.Duration
	// Outcome is the stage-cache outcome (OutcomeNone for uncached work).
	Outcome cache.Outcome
	// Engine is the simulator engine that produced a sim span ("" for
	// stages where the engine is irrelevant).
	Engine string
	// Counters. Zero means "not applicable" and is omitted from the trace.
	Instrs   uint64 // instructions simulated
	Regions  uint64 // regions/functions recovered (lift), candidates (analyze)
	Selected uint64 // regions partitioned to hardware
}

// SetOutcome records the stage-cache outcome.
func (s *Span) SetOutcome(o cache.Outcome) {
	if s.rec == nil {
		return
	}
	s.Outcome = o
}

// SetEngine records the simulator engine behind a sim span.
func (s *Span) SetEngine(engine string) {
	if s.rec == nil {
		return
	}
	s.Engine = engine
}

// SetInstrs records instructions simulated.
func (s *Span) SetInstrs(n uint64) {
	if s.rec == nil {
		return
	}
	s.Instrs = n
}

// SetRegions records regions recovered / candidates built.
func (s *Span) SetRegions(n uint64) {
	if s.rec == nil {
		return
	}
	s.Regions = n
}

// SetSelected records regions partitioned to hardware.
func (s *Span) SetSelected(n uint64) {
	if s.rec == nil {
		return
	}
	s.Selected = n
}

// End stamps the span's duration and emits it to the recorder. A span
// from a nil scope is a no-op.
func (s *Span) End() {
	if s.rec == nil {
		return
	}
	now := time.Now()
	s.Dur = now.Sub(s.begin)
	s.Start = s.begin.Sub(s.rec.epoch)
	s.rec.emit(*s)
}

// Scope carries the attribution attributes — benchmark, opt level, worker
// id — that every span under one sweep point shares. A nil *Scope is the
// disabled path; it starts inert spans and costs one pointer test.
type Scope struct {
	r      *Recorder
	bench  string
	level  int
	worker int
}

// Start opens a span for one stage execution under this scope.
func (s *Scope) Start(stage string) Span {
	if s == nil {
		return Span{}
	}
	return Span{
		rec:    s.r,
		begin:  time.Now(),
		Stage:  stage,
		Bench:  s.bench,
		Level:  s.level,
		Worker: s.worker,
	}
}

// Recorder collects spans from a run. Safe for concurrent use by every
// worker of a sweep. The zero value is not usable; create with
// NewRecorder. A nil *Recorder is the disabled fast path.
type Recorder struct {
	epoch time.Time

	mu        sync.Mutex
	traceID   string
	proc      string
	spans     []Span
	bw        *bufio.Writer
	enc       *json.Encoder
	streamErr error
}

// NewRecorder starts a recorder; its epoch is the creation time.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// NewTraceID mints a random 128-bit run/trace identifier as lowercase
// hex. The parent of a distributed sweep mints one and hands it to every
// worker process, so all their spans tag into one coherent trace.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a time-derived ID rather than an empty one.
		return fmt.Sprintf("t%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// SetTrace tags every subsequently emitted span (and the stream's meta
// header) with a trace ID and a process label. proc is "" in a
// single-process run and "k/N" in shard k of a distributed sweep. Call
// before StreamTo.
func (r *Recorder) SetTrace(traceID, proc string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceID = traceID
	r.proc = proc
	r.mu.Unlock()
}

// EpochUnixMicro is the recorder's absolute epoch — what span StartUS
// offsets are relative to. The distributed merge uses it to place this
// process's spans on the combined timeline. 0 on a nil recorder.
func (r *Recorder) EpochUnixMicro() int64 {
	if r == nil {
		return 0
	}
	return r.epoch.UnixMicro()
}

// TraceID returns the tag set by SetTrace ("" when untagged).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// Scope returns span attribution for one sweep point. bench may be a
// benchmark name or an input path; level is the compiler optimization
// level (-1 when unknown); worker is the executor worker id. On a nil
// recorder it returns nil, the disabled scope.
func (r *Recorder) Scope(bench string, level, worker int) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, bench: bench, level: level, worker: worker}
}

// StreamTo mirrors every span to w as one JSON object per line, in
// emission order (see SpanRecord for the schema). The stream opens with
// one TraceMeta header line carrying the trace ID, process label, and
// absolute epoch — what the distributed merge needs to align worker
// timelines. Call before the run starts; finish with Flush.
func (r *Recorder) StreamTo(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.bw = bufio.NewWriter(w)
	r.enc = json.NewEncoder(r.bw)
	r.encodeLocked(TraceMeta{
		Meta:        MetaTrace,
		Trace:       r.traceID,
		Proc:        r.proc,
		EpochUnixUS: r.epoch.UnixMicro(),
	})
	r.mu.Unlock()
}

// encodeLocked writes one JSON line to the stream, recording the first
// error. Callers hold r.mu.
func (r *Recorder) encodeLocked(v any) {
	if r.enc == nil {
		return
	}
	if err := r.enc.Encode(v); err != nil && r.streamErr == nil {
		r.streamErr = err
	}
}

// EmitCaches appends a cache-accounting meta line to the stream: the
// same per-stage counter snapshot the -stats table prints. A worker of
// a distributed sweep emits it as the trace's trailer so the parent can
// reconcile merged span counts against summed per-tier cache stats
// without a side channel. No-op when not streaming.
func (r *Recorder) EmitCaches(stats map[string]cache.Stats) {
	if r == nil || stats == nil {
		return
	}
	r.mu.Lock()
	r.encodeLocked(TraceMeta{Meta: MetaCaches, Caches: stats})
	r.mu.Unlock()
}

// Flush drains the stream buffer and reports the first stream error.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bw != nil {
		if err := r.bw.Flush(); err != nil && r.streamErr == nil {
			r.streamErr = err
		}
	}
	return r.streamErr
}

// Trace meta line kinds (the TraceMeta.Meta field).
const (
	// MetaTrace is the stream header: trace ID, process label, epoch.
	MetaTrace = "trace"
	// MetaCaches is the accounting trailer: per-stage cache counters.
	MetaCaches = "caches"
)

// TraceMeta is the schema of the non-span lines in a trace stream. A
// line is a meta line iff its "meta" field is non-empty; everything else
// is a SpanRecord. Readers that predate a given meta kind skip it.
type TraceMeta struct {
	Meta        string                 `json:"meta"`
	Trace       string                 `json:"trace,omitempty"`
	Proc        string                 `json:"proc,omitempty"`
	EpochUnixUS int64                  `json:"epoch_unix_us,omitempty"`
	Caches      map[string]cache.Stats `json:"caches,omitempty"`
}

// SpanRecord is the trace line schema. Durations are integer
// microseconds: stable to diff, trivial to load into anything. Trace
// and Proc repeat the stream header's tags on every line so a merged
// trace stays self-describing span by span.
type SpanRecord struct {
	Stage    string `json:"stage"`
	Bench    string `json:"bench,omitempty"`
	Level    int    `json:"opt"`
	Worker   int    `json:"worker"`
	Trace    string `json:"trace,omitempty"`
	Proc     string `json:"proc,omitempty"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Cache    string `json:"cache,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Instrs   uint64 `json:"instrs,omitempty"`
	Regions  uint64 `json:"regions,omitempty"`
	Selected uint64 `json:"selected,omitempty"`
}

// toRecord renders a span for the trace stream, tagged with the
// recorder's trace context. Callers hold r.mu.
func (r *Recorder) toRecord(s *Span) SpanRecord {
	return SpanRecord{
		Stage:    s.Stage,
		Bench:    s.Bench,
		Level:    s.Level,
		Worker:   s.Worker,
		Trace:    r.traceID,
		Proc:     r.proc,
		StartUS:  s.Start.Microseconds(),
		DurUS:    s.Dur.Microseconds(),
		Cache:    s.Outcome.String(),
		Engine:   s.Engine,
		Instrs:   s.Instrs,
		Regions:  s.Regions,
		Selected: s.Selected,
	}
}

func (r *Recorder) emit(sp Span) {
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	if r.enc != nil {
		r.encodeLocked(r.toRecord(&sp))
	}
	r.mu.Unlock()
}

// Records renders every recorded span as its trace-line form, tagged
// with the recorder's trace context — what the distributed merge feeds
// alongside the worker files.
func (r *Recorder) Records() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	for i := range r.spans {
		out[i] = r.toRecord(&r.spans[i])
	}
	return out
}

// Spans returns a snapshot copy of every span recorded so far.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// StageTotal aggregates every span of one stage: span count, total wall
// time, latency percentiles, cache outcomes, and counter sums. The
// percentiles are bucket upper bounds of the stage's fixed log-bucketed
// latency histogram (see internal/obs/hist), so aggregating a merged
// distributed trace yields exactly the percentiles of the concatenated
// worker samples.
type StageTotal struct {
	Stage      string        `json:"stage"`
	Spans      int           `json:"spans"`
	WallUS     int64         `json:"wall_us"`
	P50US      int64         `json:"p50_us,omitempty"`
	P90US      int64         `json:"p90_us,omitempty"`
	P99US      int64         `json:"p99_us,omitempty"`
	Hit        uint64        `json:"hit"`
	Miss       uint64        `json:"miss"`
	Wait       uint64        `json:"wait"`
	Disk       uint64        `json:"disk"`
	Remote     uint64        `json:"remote"`
	RemoteWait uint64        `json:"rwait"`
	Corrupt    uint64        `json:"corrupt"`
	Instrs     uint64        `json:"instrs,omitempty"`
	Regions    uint64        `json:"regions,omitempty"`
	Selected   uint64        `json:"selected,omitempty"`
	Latency    hist.Snapshot `json:"-"`
}

// countOutcome routes a span's cache-outcome string to its StageTotal
// counter. The strings are cache.Outcome.String() values; counting by
// string keeps merged traces (which only have the JSONL form)
// aggregatable by the same code as live spans.
func (st *StageTotal) countOutcome(outcome string) {
	switch outcome {
	case "hit":
		st.Hit++
	case "miss":
		st.Miss++
	case "wait":
		st.Wait++
	case "disk":
		st.Disk++
	case "remote":
		st.Remote++
	case "rwait":
		st.RemoteWait++
	case "corrupt":
		st.Corrupt++
	}
}

// AggregateRecords folds trace lines into per-stage totals, in pipeline
// order (unknown stages after, by name). It serves both the live
// recorder (via StageTotals) and merged distributed traces, which exist
// only in SpanRecord form.
func AggregateRecords(records []SpanRecord) []StageTotal {
	byStage := map[string]*StageTotal{}
	for i := range records {
		sp := &records[i]
		st := byStage[sp.Stage]
		if st == nil {
			st = &StageTotal{Stage: sp.Stage}
			byStage[sp.Stage] = st
		}
		st.Spans++
		st.WallUS += sp.DurUS
		st.Latency.Observe(time.Duration(sp.DurUS) * time.Microsecond)
		st.countOutcome(sp.Cache)
		st.Instrs += sp.Instrs
		st.Regions += sp.Regions
		st.Selected += sp.Selected
	}

	out := make([]StageTotal, 0, len(byStage))
	for _, st := range byStage {
		st.P50US = st.Latency.QuantileUS(0.50)
		st.P90US = st.Latency.QuantileUS(0.90)
		st.P99US = st.Latency.QuantileUS(0.99)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, iKnown := stageRank[out[i].Stage]
		rj, jKnown := stageRank[out[j].Stage]
		switch {
		case iKnown && jKnown:
			return ri < rj
		case iKnown != jKnown:
			return iKnown
		default:
			return out[i].Stage < out[j].Stage
		}
	})
	return out
}

// StageTotals aggregates the recorded spans per stage, in pipeline order
// (unknown stages after, by name). A nil recorder returns nil.
func (r *Recorder) StageTotals() []StageTotal {
	if r == nil {
		return nil
	}
	return AggregateRecords(r.Records())
}

// Table renders the per-stage aggregation as the -stats text table.
func (r *Recorder) Table() string {
	if r == nil {
		return "obs: disabled\n"
	}
	return FormatStageTable(r.StageTotals())
}

// FormatStageTable renders stage totals as the -stats text table; the
// trace-merge path reuses it for the merged view.
func FormatStageTable(totals []StageTotal) string {
	var b strings.Builder
	b.WriteString("obs    stage     spans   wall(ms)  p50(us)  p90(us)  p99(us)    hit   miss   wait   disk remote  rwait corrupt\n")
	var instrs, regions, selected uint64
	for _, st := range totals {
		fmt.Fprintf(&b, "obs    %-8s %6d %10.1f %8d %8d %8d %6d %6d %6d %6d %6d %6d %7d\n",
			st.Stage, st.Spans, float64(st.WallUS)/1e3,
			st.P50US, st.P90US, st.P99US,
			st.Hit, st.Miss, st.Wait, st.Disk, st.Remote, st.RemoteWait, st.Corrupt)
		instrs += st.Instrs
		regions += st.Regions
		selected += st.Selected
	}
	fmt.Fprintf(&b, "obs    counters: %d instructions simulated, %d regions recovered, %d selected for hardware\n",
		instrs, regions, selected)
	return b.String()
}
