package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cand(name string, sw, hw float64, area int, fp ...string) *Candidate {
	return &Candidate{
		Name: name, SWTimeNs: sw, HWTimeNs: hw, AreaGates: area,
		Footprint: fp, SizeInstrs: 30, IsLoop: true,
	}
}

func TestStep1PicksHotLoops(t *testing.T) {
	cands := []*Candidate{
		cand("hot", 9000, 500, 10000),
		cand("warm", 900, 100, 10000),
		cand("cold", 100, 50, 10000),
	}
	res := Partition(cands, 100000, DefaultOptions())
	if res.Step["hot"] != 1 {
		t.Errorf("hot loop selected in step %d, want 1", res.Step["hot"])
	}
	// hot covers 90% of loop time, so warm/cold are not step-1 picks.
	if res.Step["warm"] == 1 {
		t.Error("warm loop selected in step 1 despite coverage target met")
	}
}

func TestStep2PullsAliasAffineRegions(t *testing.T) {
	cands := []*Candidate{
		cand("hot", 9500, 500, 10000, "buf"),
		cand("sharer", 300, 200, 10000, "buf"),
		cand("stranger", 300, 200, 10000, "other"),
	}
	opts := DefaultOptions()
	opts.SkipFillStep = true
	res := Partition(cands, 100000, opts)
	if res.Step["sharer"] != 2 {
		t.Errorf("sharer selected in step %d, want 2 (alias affinity)", res.Step["sharer"])
	}
	if _, ok := res.Step["stranger"]; ok {
		t.Error("stranger selected despite no shared memory and fill disabled")
	}
}

func TestStep3FillsUntilBudget(t *testing.T) {
	cands := []*Candidate{
		cand("hot", 9500, 500, 10000, "a"),
		cand("dense", 400, 100, 1000, "b"),
		cand("sparse", 400, 100, 40000, "c"),
	}
	res := Partition(cands, 12000, DefaultOptions())
	if res.Step["dense"] != 3 {
		t.Errorf("dense selected in step %d, want 3", res.Step["dense"])
	}
	if _, ok := res.Step["sparse"]; ok {
		t.Error("sparse selected despite exceeding budget")
	}
	if res.TotalGates > 12000 {
		t.Errorf("budget violated: %d > 12000", res.TotalGates)
	}
}

func TestAreaConstraintRespected(t *testing.T) {
	cands := []*Candidate{
		cand("a", 5000, 100, 9000),
		cand("b", 4000, 100, 9000),
		cand("c", 3000, 100, 9000),
	}
	res := Partition(cands, 10000, DefaultOptions())
	if res.TotalGates > 10000 {
		t.Errorf("area %d exceeds budget", res.TotalGates)
	}
	if len(res.Selected) != 1 {
		t.Errorf("selected %d regions, want exactly 1 under this budget", len(res.Selected))
	}
}

func TestNegativeGainExcluded(t *testing.T) {
	cands := []*Candidate{
		cand("loser", 100, 5000, 1000), // hardware slower than software
		cand("winner", 5000, 100, 1000),
	}
	res := Partition(cands, 100000, DefaultOptions())
	if _, ok := res.Step["loser"]; ok {
		t.Error("region with negative gain was selected")
	}
	if _, ok := res.Step["winner"]; !ok {
		t.Error("winner not selected")
	}
}

func TestWholeApplicationWhenSpaceAllows(t *testing.T) {
	// Paper: "This final step allows an entire application to be
	// synthesized if space allows."
	var cands []*Candidate
	for i := 0; i < 10; i++ {
		cands = append(cands, cand(string(rune('a'+i)), 1000, 100, 1000))
	}
	res := Partition(cands, 1<<30, DefaultOptions())
	if len(res.Selected) != len(cands) {
		t.Errorf("selected %d of %d regions with unlimited area", len(res.Selected), len(cands))
	}
}

func TestSizeCapInStep1(t *testing.T) {
	big := cand("big", 9000, 100, 1000)
	big.SizeInstrs = 10000
	small := cand("small", 1000, 100, 1000)
	opts := DefaultOptions()
	opts.SkipAliasStep = true
	opts.SkipFillStep = true
	res := Partition([]*Candidate{big, small}, 100000, opts)
	if _, ok := res.Step["big"]; ok {
		t.Error("oversized loop selected in step 1")
	}
	if res.Step["small"] != 1 {
		t.Error("small hot loop not selected")
	}
}

func TestBaselinesRespectBudget(t *testing.T) {
	cands := []*Candidate{
		cand("a", 9000, 500, 15000),
		cand("b", 4000, 400, 8000),
		cand("c", 2000, 300, 4000),
		cand("d", 1000, 200, 2000),
	}
	for name, run := range map[string]func() *Result{
		"greedy": func() *Result { return GreedyKnapsack(cands, 10000) },
		"gclp":   func() *Result { return GCLP(cands, 10000) },
		"90-10":  func() *Result { return Partition(cands, 10000, DefaultOptions()) },
	} {
		res := run()
		if res.TotalGates > 10000 {
			t.Errorf("%s violates budget: %d", name, res.TotalGates)
		}
	}
}

func TestExhaustiveIsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 2 + r.Intn(8)
		var cands []*Candidate
		for i := 0; i < n; i++ {
			cands = append(cands, cand(
				string(rune('a'+i)),
				float64(100+r.Intn(5000)),
				float64(50+r.Intn(2000)),
				500+r.Intn(8000),
			))
		}
		budget := 2000 + r.Intn(20000)
		opt, err := Exhaustive(cands, budget)
		if err != nil {
			return false
		}
		// No heuristic may beat the exhaustive optimum.
		for _, res := range []*Result{
			Partition(cands, budget, DefaultOptions()),
			GreedyKnapsack(cands, budget),
			GCLP(cands, budget),
		} {
			if res.Time(cands) < opt.Time(cands)-1e-6 {
				return false
			}
			if res.TotalGates > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveRejectsLargeInputs(t *testing.T) {
	var cands []*Candidate
	for i := 0; i < 21; i++ {
		cands = append(cands, cand(string(rune('a'+i)), 100, 50, 100))
	}
	if _, err := Exhaustive(cands, 1000); err == nil {
		t.Error("Exhaustive accepted 21 candidates")
	}
}

func TestResultTime(t *testing.T) {
	cands := []*Candidate{
		cand("a", 1000, 100, 100),
		cand("b", 2000, 300, 100),
	}
	res := &Result{Selected: []*Candidate{cands[0]}, Step: map[string]int{"a": 1}}
	// a in hardware (100), b in software (2000).
	if got := res.Time(cands); got != 2100 {
		t.Errorf("Time = %v, want 2100", got)
	}
}

func TestCoverageTargetVariants(t *testing.T) {
	// Raising the coverage target pulls more loops into step 1.
	cands := []*Candidate{
		cand("a", 5000, 100, 1000),
		cand("b", 3000, 100, 1000),
		cand("c", 1500, 100, 1000),
		cand("d", 500, 100, 1000),
	}
	lo := DefaultOptions()
	lo.CoverageTarget = 0.5
	lo.SkipAliasStep, lo.SkipFillStep = true, true
	hi := DefaultOptions()
	hi.CoverageTarget = 0.99
	hi.SkipAliasStep, hi.SkipFillStep = true, true
	nLo := len(Partition(cands, 1<<30, lo).Selected)
	nHi := len(Partition(cands, 1<<30, hi).Selected)
	if nHi <= nLo {
		t.Errorf("coverage 0.99 selected %d, coverage 0.5 selected %d", nHi, nLo)
	}
}

func TestGCLPPhaseSwitch(t *testing.T) {
	// With most time already moved to hardware, GCLP switches to
	// area-driven selection: between two equal-gain candidates it must
	// prefer the denser one once criticality is low.
	cands := []*Candidate{
		cand("huge", 100000, 100, 100), // selected first, drops GC below 0.5
		cand("dense", 1000, 100, 500),
		cand("sparse", 1100, 100, 20000),
	}
	res := GCLP(cands, 100+500) // room for huge + dense only
	if _, ok := res.Step["dense"]; !ok {
		t.Errorf("GCLP did not pick the dense candidate: %+v", res.Step)
	}
}

func TestPartitionEmptyAndDegenerate(t *testing.T) {
	if res := Partition(nil, 1000, DefaultOptions()); len(res.Selected) != 0 || res.TotalGates != 0 {
		t.Errorf("empty input produced %+v", res)
	}
	// Zero-area candidates must not divide by zero in step 3.
	z := cand("z", 100, 10, 0)
	if res := Partition([]*Candidate{z}, 1000, DefaultOptions()); res.TotalGates != 0 {
		// Step 1 may admit it (area 0 always fits); either way no panic
		// and no budget damage.
		_ = res
	}
	if res, err := Exhaustive(nil, 10); err != nil || len(res.Selected) != 0 {
		t.Errorf("exhaustive on empty input: %v %+v", err, res)
	}
}

func TestStepAttribution(t *testing.T) {
	cands := []*Candidate{
		cand("hot", 9500, 500, 1000, "m"),
		cand("affine", 200, 100, 1000, "m"),
		cand("fill", 200, 100, 1000, "x"),
	}
	res := Partition(cands, 1<<30, DefaultOptions())
	if res.Step["hot"] != 1 || res.Step["affine"] != 2 || res.Step["fill"] != 3 {
		t.Errorf("step attribution = %v", res.Step)
	}
}
