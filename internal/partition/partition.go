// Package partition implements hardware/software partitioning. The
// primary algorithm is the paper's fast three-step 90-10 heuristic:
//
//  1. Profiling identifies the most frequent few loops — typically 90 %
//     of execution in a few dozen lines — and puts them in hardware.
//  2. Alias information pulls in regions touching the same memory as the
//     selected loops, so those arrays can move into FPGA block RAM.
//  3. Remaining regions are added by profit density until the area
//     constraint is hit (allowing whole-application synthesis when the
//     device is large enough).
//
// The paper chooses this heuristic over classic formulations for speed
// (it targets integration with dynamic partitioning), so the package also
// provides the comparison baselines it cites: a Henkel-style greedy
// gain/area knapsack, a simplified Kalavade/Lee GCLP, and exact
// exhaustive search for small candidate sets.
package partition

import (
	"fmt"
	"sort"
)

// Candidate is one region eligible for hardware implementation.
type Candidate struct {
	// Name identifies the region for reports.
	Name string
	// SWTimeNs is the profiled time the region spends on the CPU per
	// application run.
	SWTimeNs float64
	// HWTimeNs is the estimated time of the hardware implementation per
	// application run, including per-invocation communication.
	HWTimeNs float64
	// AreaGates is the estimated equivalent-gate cost.
	AreaGates int
	// Footprint lists the data objects the region accesses (for step 2).
	Footprint []string
	// SizeInstrs is the region's static size ("a few dozen lines").
	SizeInstrs int
	// IsLoop marks loop regions (step 1 considers only loops).
	IsLoop bool
	// Payload carries caller context (e.g. the synthesized design).
	Payload any
}

// Gain is the time saved by moving the candidate to hardware.
func (c *Candidate) Gain() float64 { return c.SWTimeNs - c.HWTimeNs }

// Options tunes the 90-10 heuristic.
type Options struct {
	// CoverageTarget is the fraction of loop execution time step 1
	// covers; the paper's rule of thumb is 0.9.
	CoverageTarget float64
	// MaxLoopInstrs caps the size of step-1 loops ("a few dozen lines").
	MaxLoopInstrs int
	// SkipAliasStep disables step 2 (for ablation).
	SkipAliasStep bool
	// SkipFillStep disables step 3 (for ablation).
	SkipFillStep bool
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{CoverageTarget: 0.9, MaxLoopInstrs: 150}
}

// Result is a chosen partition.
type Result struct {
	Selected []*Candidate
	// Step maps candidate name to the step (1..3) that selected it.
	Step map[string]int
	// TotalGates is the area consumed.
	TotalGates int
}

// selectedTime sums HW time over selected and SW time over the rest.
func totalTime(cands []*Candidate, chosen map[*Candidate]bool) float64 {
	var t float64
	for _, c := range cands {
		if chosen[c] {
			t += c.HWTimeNs
		} else {
			t += c.SWTimeNs
		}
	}
	return t
}

// Partition runs the three-step 90-10 heuristic under an equivalent-gate
// budget.
func Partition(cands []*Candidate, budgetGates int, opts Options) *Result {
	if opts.CoverageTarget <= 0 {
		opts.CoverageTarget = 0.9
	}
	if opts.MaxLoopInstrs <= 0 {
		opts.MaxLoopInstrs = 150
	}
	res := &Result{Step: map[string]int{}}
	chosen := map[*Candidate]bool{}
	area := 0
	add := func(c *Candidate, step int) bool {
		if chosen[c] || area+c.AreaGates > budgetGates {
			return false
		}
		chosen[c] = true
		area += c.AreaGates
		res.Selected = append(res.Selected, c)
		res.Step[c.Name] = step
		return true
	}

	// Step 1: most frequent loops up to the coverage target.
	loops := make([]*Candidate, 0, len(cands))
	var loopTotal float64
	for _, c := range cands {
		if c.IsLoop {
			loops = append(loops, c)
			loopTotal += c.SWTimeNs
		}
	}
	sort.SliceStable(loops, func(i, j int) bool { return loops[i].SWTimeNs > loops[j].SWTimeNs })
	var covered float64
	for _, c := range loops {
		if loopTotal > 0 && covered/loopTotal >= opts.CoverageTarget {
			break
		}
		if c.SizeInstrs > opts.MaxLoopInstrs || c.Gain() <= 0 {
			continue
		}
		if add(c, 1) {
			covered += c.SWTimeNs
		}
	}

	// Step 2: alias affinity — regions sharing arrays with the hardware
	// partition, so the arrays can live in FPGA memory.
	if !opts.SkipAliasStep {
		inHW := map[string]bool{}
		for c := range chosen {
			for _, s := range c.Footprint {
				inHW[s] = true
			}
		}
		for _, c := range cands {
			if chosen[c] || c.Gain() <= 0 {
				continue
			}
			affine := false
			for _, s := range c.Footprint {
				if inHW[s] {
					affine = true
				}
			}
			if affine {
				add(c, 2)
			}
		}
	}

	// Step 3: fill by profit density until the constraint is violated;
	// an entire application can be synthesized if space allows.
	if !opts.SkipFillStep {
		rest := make([]*Candidate, 0, len(cands))
		for _, c := range cands {
			if !chosen[c] && c.Gain() > 0 && c.AreaGates > 0 {
				rest = append(rest, c)
			}
		}
		sort.SliceStable(rest, func(i, j int) bool {
			return rest[i].Gain()/float64(rest[i].AreaGates) > rest[j].Gain()/float64(rest[j].AreaGates)
		})
		for _, c := range rest {
			add(c, 3)
		}
	}

	res.TotalGates = area
	return res
}

// GreedyKnapsack is the Henkel-style baseline: pure gain/area ordering.
func GreedyKnapsack(cands []*Candidate, budgetGates int) *Result {
	res := &Result{Step: map[string]int{}}
	order := make([]*Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Gain() > 0 && c.AreaGates > 0 {
			order = append(order, c)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Gain()/float64(order[i].AreaGates) > order[j].Gain()/float64(order[j].AreaGates)
	})
	area := 0
	for _, c := range order {
		if area+c.AreaGates > budgetGates {
			continue
		}
		area += c.AreaGates
		res.Selected = append(res.Selected, c)
		res.Step[c.Name] = 1
	}
	res.TotalGates = area
	return res
}

// GCLP is a simplified Kalavade/Lee global-criticality/local-phase
// baseline: it alternates between time-driven and area-driven selection
// depending on how critical the remaining deadline is, using the
// all-software time as the implicit deadline reference.
func GCLP(cands []*Candidate, budgetGates int) *Result {
	res := &Result{Step: map[string]int{}}
	remaining := append([]*Candidate(nil), cands...)
	chosen := map[*Candidate]bool{}
	area := 0

	var totalSW float64
	for _, c := range cands {
		totalSW += c.SWTimeNs
	}
	for len(remaining) > 0 {
		// Global criticality: fraction of time still spent in software
		// regions; high GC favors the biggest time winner, low GC favors
		// the densest.
		var swLeft float64
		for _, c := range remaining {
			if !chosen[c] {
				swLeft += c.SWTimeNs
			}
		}
		gc := 0.0
		if totalSW > 0 {
			gc = swLeft / totalSW
		}
		var best *Candidate
		var bestKey float64
		for _, c := range remaining {
			if chosen[c] || c.Gain() <= 0 || area+c.AreaGates > budgetGates {
				continue
			}
			var key float64
			if gc > 0.5 {
				key = c.Gain()
			} else {
				key = c.Gain() / float64(c.AreaGates+1)
			}
			if best == nil || key > bestKey {
				best, bestKey = c, key
			}
		}
		if best == nil {
			break
		}
		chosen[best] = true
		area += best.AreaGates
		res.Selected = append(res.Selected, best)
		res.Step[best.Name] = 1
	}
	res.TotalGates = area
	return res
}

// Exhaustive finds the optimal subset by enumeration; it refuses inputs
// beyond 20 candidates.
func Exhaustive(cands []*Candidate, budgetGates int) (*Result, error) {
	if len(cands) > 20 {
		return nil, fmt.Errorf("partition: exhaustive search limited to 20 candidates, got %d", len(cands))
	}
	bestMask := 0
	bestTime := totalTime(cands, nil)
	for mask := 0; mask < 1<<len(cands); mask++ {
		area := 0
		chosen := map[*Candidate]bool{}
		for i, c := range cands {
			if mask&(1<<i) != 0 {
				area += c.AreaGates
				chosen[c] = true
			}
		}
		if area > budgetGates {
			continue
		}
		if t := totalTime(cands, chosen); t < bestTime {
			bestTime, bestMask = t, mask
		}
	}
	res := &Result{Step: map[string]int{}}
	for i, c := range cands {
		if bestMask&(1<<i) != 0 {
			res.Selected = append(res.Selected, c)
			res.Step[c.Name] = 1
			res.TotalGates += c.AreaGates
		}
	}
	return res, nil
}

// Time returns the application time of a partitioning decision over the
// candidate set (software time for unselected, hardware for selected).
func (r *Result) Time(cands []*Candidate) float64 {
	chosen := map[*Candidate]bool{}
	for _, c := range r.Selected {
		chosen[c] = true
	}
	return totalTime(cands, chosen)
}
