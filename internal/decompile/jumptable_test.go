package decompile

import (
	"testing"

	"binpart/internal/bench"
	"binpart/internal/dopt"
	"binpart/internal/ir"
	"binpart/internal/mcc"
	"binpart/internal/sim"
)

const dispatchSrc = `
	int weights[8] = {3, 1, 4, 1, 5, 9, 2, 6};
	int kernel(int n) {
		int s = 0;
		int i;
		for (i = 0; i < 64; i++) {
			int v;
			switch (i & 7) {
			case 0: v = weights[0] + i; break;
			case 1: v = weights[1] - i; break;
			case 2: v = weights[2] ^ i; break;
			case 3: v = weights[3] << 1; break;
			case 4: v = weights[4] >> 1; break;
			case 5: v = weights[5] * 3; break;
			case 6: v = weights[6] | i; break;
			default: v = weights[7] & i; break;
			}
			s += v;
		}
		return s & 0xffff;
	}
	int main() { return kernel(0); }
`

func TestJumpTableRecoveryOffByDefault(t *testing.T) {
	img, err := mcc.Compile(dispatchSrc, mcc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decompile(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, failed := res.Failed["kernel"]; !failed {
		t.Fatal("kernel recovered without the jump-table option; the paper's failure mode is gone")
	}
}

func TestJumpTableRecovery(t *testing.T) {
	for lvl := 0; lvl <= 3; lvl++ {
		img, err := mcc.Compile(dispatchSrc, mcc.Options{OptLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		res, err := DecompileWith(img, Options{RecoverJumpTables: true})
		if err != nil {
			t.Fatal(err)
		}
		if ferr, failed := res.Failed["kernel"]; failed {
			t.Fatalf("O%d: recovery failed despite option: %v", lvl, ferr)
		}
		f := res.Func("kernel")

		// The indirect jump must be resolved with 8 entries.
		found := false
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.IJump {
					if in.Table == nil {
						t.Fatalf("O%d: IJump left unresolved", lvl)
					}
					// The table spans the explicit cases 0..6; the default
					// arm goes through the bound check instead.
					if len(in.Table) != 7 {
						t.Errorf("O%d: table has %d entries, want 7", lvl, len(in.Table))
					}
					found = true
					// The switch head must have edges to every distinct
					// target.
					if len(b.Succs) < 2 {
						t.Errorf("O%d: switch head has %d successors", lvl, len(b.Succs))
					}
				}
			}
		}
		if !found {
			t.Fatalf("O%d: no IJump in recovered kernel", lvl)
		}

		// Differential: the recovered, optimized CDFG must compute what
		// the binary computes.
		simRes, err := sim.Execute(img, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		dopt.Optimize(f)
		st := ir.NewEvalState()
		st.Regs[ir.RegSP] = 0x7fff0000
		for i, bv := range img.Data {
			st.Mem[img.DataBase+uint32(i)] = bv
		}
		if err := ir.Eval(f, st); err != nil {
			t.Fatalf("O%d: eval: %v\n%s", lvl, err, f)
		}
		if st.Regs[ir.RegV0] != simRes.ExitCode {
			t.Errorf("O%d: recovered kernel = %d, binary = %d", lvl, st.Regs[ir.RegV0], simRes.ExitCode)
		}
	}
}

func TestJumpTableRecoveryOnEEMBCBenchmarks(t *testing.T) {
	// The two benchmarks the paper loses become recoverable.
	for _, name := range []string{"routelookup", "ttsprk"} {
		b, _ := bench.ByName(name)
		img, err := b.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DecompileWith(img, Options{RecoverJumpTables: true})
		if err != nil {
			t.Fatal(err)
		}
		if ferr, failed := res.Failed[b.KernelFunc]; failed {
			t.Errorf("%s: still failing with extension: %v", name, ferr)
		}
	}
}

func TestJumpTableRejectsBogusPatterns(t *testing.T) {
	// A jr through a register that is NOT fed by a table load must still
	// fail even with the option on (e.g. a computed goto).
	img, err := mcc.Compile(dispatchSrc, mcc.Options{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the table so an entry points outside the function: the
	// resolver must reject it. Find the kernel's jump table in data (its
	// entries point into text) and break one.
	corrupted := false
	for off := 0; off+4 <= len(img.Data); off += 4 {
		w := uint32(img.Data[off]) | uint32(img.Data[off+1])<<8 |
			uint32(img.Data[off+2])<<16 | uint32(img.Data[off+3])<<24
		if img.InText(w) {
			img.Data[off] = 0xFF
			img.Data[off+1] = 0xFF
			img.Data[off+2] = 0xFF
			img.Data[off+3] = 0x7F
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no table entry found to corrupt")
	}
	res, err := DecompileWith(img, Options{RecoverJumpTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, failed := res.Failed["kernel"]; !failed {
		t.Error("corrupted jump table accepted")
	}
}
